// Package mmm is a Go library for efficient multi-model management: it
// saves and recovers *sets* of deep-learning models that share one
// architecture but have diverging parameters (one model per battery
// cell, per user, per device, ...), reproducing the approaches of
// "Efficient Multi-Model Management" (EDBT 2023).
//
// # Approaches
//
//   - NewBaseline: one metadata document, one architecture definition,
//     and one concatenated parameter binary per set. Fast saves, fast
//     independent recovery.
//   - NewUpdate: Baseline for the initial set, then only hash-detected
//     changed layers per derived set. Much smaller derived saves, a
//     recursive (but bounded, see Update.SnapshotInterval) recovery.
//   - NewProvenance: Baseline for the initial set, then training
//     provenance (pipeline info once, one dataset reference per updated
//     model) instead of parameters. Tiny derived saves; recovery
//     re-executes training deterministically and is therefore exact but
//     compute-heavy.
//   - NewMMlibBase: the single-model reference point the paper compares
//     against (per-model metadata, architecture, code, environment);
//     provided for benchmarking, not for production use.
//
// Advise picks an approach for a scenario, implementing the heuristic
// selection the paper names as future work.
//
// # Quickstart
//
//	stores := mmm.NewMemStores()
//	approach := mmm.NewBaseline(stores, mmm.WithConcurrency(8))
//	set, _ := mmm.NewModelSet(mmm.FFNN48(), 1000, seed)
//	res, _ := approach.SaveContext(ctx, mmm.SaveRequest{Set: set})
//	recovered, _ := approach.RecoverContext(ctx, res.SetID)
//
// Saves and recoveries take a context and honor cancellation: an
// interrupted save rolls back everything it wrote. WithConcurrency
// sets the per-operation worker count; results are bit-identical at
// any setting, so concurrency is purely a throughput knob.
//
// See examples/ for complete programs, including the paper's battery
// fleet scenario and bit-exact provenance recovery.
package mmm

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/cluster"
	"github.com/mmm-go/mmm/internal/codec"
	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/scrub"
	"github.com/mmm-go/mmm/internal/server"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
	"github.com/mmm-go/mmm/internal/tensor"
	"github.com/mmm-go/mmm/internal/version"
	"github.com/mmm-go/mmm/internal/workload"
)

// Version is the library's build stamp, reported by every node on
// GET /api/version and checked by the cluster router's preflight:
// members whose version or storage policy differs from the cluster's
// are refused, because mixed policies silently break byte-identical
// recovery.
const Version = version.Version

// Cluster layer (see internal/cluster and docs/ARCHITECTURE.md
// "Cluster"): consistent-hash placement of sets over replicated
// mmserve nodes behind a stateless router that speaks the same HTTP
// dialect as a single node.
type (
	// ClusterRouterConfig tunes a router: replication factor R, write
	// quorum W, virtual nodes, request limits, mixed-version policy.
	ClusterRouterConfig = cluster.RouterConfig
	// ClusterMember is one mmserve node in a cluster: a stable name
	// (the ring identity) and a base URL.
	ClusterMember = cluster.Member
	// ClusterRebalanceReport sums what a rebalance moved — and, via
	// ChunkCacheHits vs BytesFetched, proves it moved only missing
	// chunks.
	ClusterRebalanceReport = cluster.RebalanceReport
)

// NewClusterRouter builds a stateless router over an empty membership
// table; register members with AddMember and run CheckMembers before
// serving. cmd/mmrouter is the ready-made binary around it.
var NewClusterRouter = cluster.NewRouter

// Core management types.
type (
	// Approach is a multi-model management strategy: Save a set of
	// models, Recover it later by its set ID.
	Approach = core.Approach
	// ModelSet is an in-memory set of models sharing one architecture.
	ModelSet = core.ModelSet
	// SaveRequest describes one save operation (the set, its base set,
	// and — for Provenance — what was retrained and how).
	SaveRequest = core.SaveRequest
	// SaveResult reports the new set ID and what the save cost.
	SaveResult = core.SaveResult
	// ModelUpdate records one model's retraining within a cycle.
	ModelUpdate = core.ModelUpdate
	// TrainInfo is the cycle-shared training-pipeline description.
	TrainInfo = core.TrainInfo
	// Stores bundles the document store, blob store, and dataset
	// registry an approach persists into.
	Stores = core.Stores
	// Baseline is the full-snapshot multi-model approach.
	Baseline = core.Baseline
	// Update is the delta approach.
	Update = core.Update
	// Provenance is the provenance approach.
	Provenance = core.Provenance
	// MMlibBase is the single-model reference approach.
	MMlibBase = core.MMlibBase
	// RecoveryBudget bounds provenance retraining during recovery.
	RecoveryBudget = core.RecoveryBudget
	// PartialRecoverer recovers a subset of a saved set's models — the
	// paper's post-accident access pattern. All four approaches
	// implement it.
	PartialRecoverer = core.PartialRecoverer
	// PartialRecovery is the result of a selective recovery.
	PartialRecovery = core.PartialRecovery
	// Pruner expires saved sets while keeping recovery chains intact.
	Pruner = core.Pruner
	// PruneReport summarizes a prune operation.
	PruneReport = core.PruneReport
	// Verifier checks store integrity without materializing models.
	Verifier = core.Verifier
	// Issue is one problem found by store verification.
	Issue = core.Issue
	// Lineager exposes a saved set's recovery chain.
	Lineager = core.Lineager
	// Exporter writes a set's recovery chain to a portable tar archive.
	Exporter = core.Exporter
	// SetInfo is the public view of a saved set's metadata.
	SetInfo = core.SetInfo
	// Scenario describes a deployment for approach selection.
	Scenario = core.Scenario
	// Recommendation is Advise's ranked answer.
	Recommendation = core.Recommendation
	// FsckOptions configures a store-wide integrity check.
	FsckOptions = core.FsckOptions
	// FsckReport is the result of Fsck: committed sets seen, bytes
	// checksummed, and every issue found.
	FsckReport = core.FsckReport
	// FsckIssue is one problem found by Fsck.
	FsckIssue = core.FsckIssue
	// DuReport is the result of a storage-accounting scan: logical
	// versus physical bytes per set and store-wide, plus the dedup
	// ratio.
	DuReport = core.DuReport
	// DuSet is one committed set's storage occupancy within a DuReport.
	DuSet = core.DuSet
	// GCReport summarizes a dedup chunk garbage-collection pass.
	GCReport = core.GCReport
)

// Model and training types.
type (
	// Architecture is a model's computational structure.
	Architecture = nn.Architecture
	// Model is an instantiated architecture with parameters.
	Model = nn.Model
	// TrainConfig fully describes one deterministic training run.
	TrainConfig = nn.TrainConfig
	// TrainingData is the sample view the trainer consumes.
	TrainingData = nn.Data
	// Tensor is a dense float32 tensor — model inputs, outputs, and
	// parameters.
	Tensor = tensor.Tensor
)

// NewTensor returns a tensor of the given shape backed by a copy of
// data (e.g. NewTensor([]float32{i, t, q, soc}, 4) as an FFNN input).
var NewTensor = tensor.FromSlice

// Dataset types.
type (
	// DatasetSpec deterministically describes one generated dataset.
	DatasetSpec = dataset.Spec
	// Dataset is materialized training data.
	Dataset = dataset.Dataset
	// DatasetRegistry is the external training-data store Provenance
	// references into.
	DatasetRegistry = dataset.Registry
)

// Workload types.
type (
	// WorkloadConfig parameterizes the paper's U1/U3 fleet scenario.
	WorkloadConfig = workload.Config
	// Fleet is a running scenario.
	Fleet = workload.Fleet
)

// Approach constructors.
var (
	NewBaseline   = core.NewBaseline
	NewUpdate     = core.NewUpdate
	NewProvenance = core.NewProvenance
	NewMMlibBase  = core.NewMMlibBase
)

// Option configures an approach at construction time.
type Option = core.Option

// WithConcurrency sets how many workers an approach uses for the
// per-model portions of saves and recoveries. The default is
// runtime.GOMAXPROCS(0); 1 forces serial execution. Outputs are
// byte-identical at every setting.
var WithConcurrency = core.WithConcurrency

// MetricsRegistry holds runtime metrics: counters, gauges, and
// histograms, renderable as Prometheus text or a human summary.
type MetricsRegistry = obs.Registry

// DefaultMetrics is the process-wide metrics registry. Approaches and
// instrumented stores record into it unless redirected with
// WithMetrics, and the management server's GET /metrics renders it.
var DefaultMetrics = obs.Default

// NewMetricsRegistry returns an empty, isolated metrics registry.
var NewMetricsRegistry = obs.New

// WithMetrics directs an approach's operation metrics (TTS/TTR
// histograms, error and integrity counters) into a specific registry
// instead of DefaultMetrics.
var WithMetrics = core.WithMetrics

// WithDedup routes every blob the approach writes through the store's
// content-addressed deduplicating chunk layer: identical chunks are
// stored once and shared across sets and approaches, with recovered
// parameters bit-identical to a plain save. SaveResult.BytesWritten
// then reports physical bytes (new chunks plus the recipe), which is
// how dedup savings become visible per save.
var WithDedup = core.WithDedup

// WithCodec selects, by registered ID, the compression codec an
// approach encodes its blobs with: Update diff blobs directly, and —
// under WithDedup — every blob's CAS chunk bodies, fanned out across
// the WithConcurrency worker pool. The codec ID is persisted alongside
// the data and every encoded artifact is self-describing, so stores
// remain readable regardless of what codec later writers configure.
// Built-in IDs: CodecNone, CodecZlib, CodecTLZ.
var WithCodec = core.WithCodec

// WithChunkCache attaches an in-memory serving-tier cache of at most
// the given bytes to the approach's blob store: decoded chunk bodies
// (admission weighted by how many sets share each chunk), parsed CAS
// recipes, and per-set chunk indexes. Repeated recoveries of warm sets
// then skip store round trips and codec decode work entirely. The
// cache lives on the store — approaches sharing a store share it, the
// largest requested budget wins — and recovered bytes are identical
// with or without it.
var WithChunkCache = core.WithChunkCache

// Codec is a pluggable compression codec; implement it and register
// with RegisterCodec to store blobs in a custom encoding.
type Codec = codec.Codec

// RegisterCodec adds a codec to the process-wide registry under its
// ID() and Wire() identifiers. Register at init time, before any store
// writes; both identifiers are persisted on disk and must never be
// reused for a different encoding.
var RegisterCodec = codec.Register

// Built-in codec IDs for WithCodec.
const (
	// CodecNone stores blobs raw (the default).
	CodecNone = codec.NoneID
	// CodecZlib is DEFLATE via compress/zlib — best ratio, slowest.
	CodecZlib = codec.ZlibID
	// CodecTLZ is the tensor-tuned LZ codec: a byte-plane/XOR-delta
	// pre-transform over float32 data followed by a fast LZ77 pass.
	CodecTLZ = codec.TLZID
)

// CodecIDs lists every registered codec ID, sorted.
var CodecIDs = codec.IDs

// Sentinel errors, testable with errors.Is across every layer
// (including the HTTP client, which maps server responses back onto
// them).
var (
	// ErrSetNotFound reports a recover/lineage request for an unknown
	// set ID.
	ErrSetNotFound = core.ErrSetNotFound
	// ErrCorruptBlob reports a stored artifact that fails structural or
	// hash validation during recovery.
	ErrCorruptBlob = core.ErrCorruptBlob
	// ErrBudgetExceeded reports a request that exceeds a configured
	// size or compute budget.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrChecksumMismatch reports a stored blob whose bytes no longer
	// match the checksum recorded when it was written — bit rot or
	// external modification, as opposed to the structural damage
	// ErrCorruptBlob reports.
	ErrChecksumMismatch = core.ErrChecksumMismatch
	// ErrBaseMismatch reports a derived save whose set is structurally
	// incompatible with its declared base (different architecture,
	// parameter count, or model count).
	ErrBaseMismatch = core.ErrBaseMismatch
)

// Fsck checks the whole store across every approach's namespace:
// verifies each blob against its recorded checksum, each committed set
// against its referenced artifacts, and reports crash debris (orphaned
// blobs and documents invisible to reads). With FsckOptions.Repair it
// additionally deletes the orphans; damaged committed data is only ever
// reported, never deleted.
var Fsck = core.Fsck

// Du scans the managed blob namespaces and reports logical versus
// physical occupancy per set and store-wide — the deduplication and
// compression savings ledger. Each set row also names the codec it was
// saved with.
var Du = core.Du

// GCStore deletes unreferenced deduplicated chunks from the store's
// CAS layer; pass DefaultMetrics (or nil) as the registry.
var GCStore = core.GCStore

// NewModelSet builds n freshly initialized models of arch, seeded
// reproducibly.
var NewModelSet = core.NewModelSet

// NewMemStores returns in-memory stores for tests and quickstarts.
var NewMemStores = core.NewMemStores

// Advise recommends a management approach for a scenario.
var Advise = core.Advise

// ImportArchive restores an exported recovery-chain archive into
// stores.
var ImportArchive = core.ImportArchive

// Paper architectures.
var (
	// FFNN48 is the 4,993-parameter battery-cell model.
	FFNN48 = nn.FFNN48
	// FFNN69 is the 10,075-parameter battery-cell model.
	FFNN69 = nn.FFNN69
	// CIFARNet is the 6,882-parameter image classifier.
	CIFARNet = nn.CIFARNet
	// FFNN builds a custom fully connected architecture.
	FFNN = nn.FFNN
	// ArchitectureByName resolves one of the paper architectures.
	ArchitectureByName = nn.ByName
)

// NewModel instantiates an architecture with seeded parameters.
var NewModel = nn.NewModel

// Train runs deterministic mini-batch SGD (bit-reproducible given
// equal inputs — the property provenance recovery relies on).
var Train = nn.Train

// Evaluate returns a model's mean loss over data.
var Evaluate = nn.Evaluate

// SaveModel writes one model as a self-contained deployable file
// (architecture + parameters); LoadModel reads it back.
var (
	SaveModel = nn.SaveModel
	LoadModel = nn.LoadModel
)

// GenerateDataset materializes the dataset described by spec.
var GenerateDataset = dataset.Generate

// NewDatasetRegistry returns an in-memory dataset registry.
var NewDatasetRegistry = dataset.NewRegistry

// OpenDatasetRegistry returns a registry persisted under dir.
var OpenDatasetRegistry = dataset.OpenRegistry

// Workload constructors.
var (
	// NewFleet builds the U1 state of a scenario.
	NewFleet = workload.New
	// DefaultWorkload is the paper's default battery scenario.
	DefaultWorkload = workload.DefaultConfig
	// CIFARWorkload is the paper's image-classification scenario.
	CIFARWorkload = workload.CIFARConfig
)

// Remote management service (see cmd/mmserve).
type (
	// ManagementServer is an http.Handler exposing the four approaches
	// over REST; parameters travel as raw binary multipart parts.
	ManagementServer = server.Server
	// ManagementClient talks to a ManagementServer: Save, Recover,
	// RecoverModels, Verify, Prune, PutDataset.
	ManagementClient = server.Client
)

// NewManagementServer builds an HTTP management service over stores.
var NewManagementServer = server.New

// Resilience layer (see internal/server and docs/ARCHITECTURE.md).
type (
	// ManagementServerConfig tunes per-request limits: handling
	// deadline, body size cap, and the Retry-After hint sent while
	// draining.
	ManagementServerConfig = server.Config
	// ClientRetryPolicy configures the management client's jittered
	// exponential backoff.
	ClientRetryPolicy = server.RetryPolicy
	// ClientBreaker is the client's consecutive-failure circuit
	// breaker.
	ClientBreaker = server.Breaker
)

var (
	// NewManagementServerWithConfig builds a management service with
	// explicit limits and a metrics registry.
	NewManagementServerWithConfig = server.NewWithConfig
	// ServeManagement runs a management server until ctx is canceled,
	// then drains gracefully (see cmd/mmserve for the full protocol).
	ServeManagement = server.ListenAndServe
	// ServeManagementListener is ServeManagement over an existing
	// listener (e.g. one wrapped by internal/netchaos).
	ServeManagementListener = server.ServeListener
	// ErrCircuitOpen reports a request refused by the client breaker.
	ErrCircuitOpen = server.ErrCircuitOpen
)

// Pull protocol: clients with a PullCache recover deduplicated sets
// chunk-wise — recipe diff against the local cache, parallel ranged
// chunk fetches with digest verification, resume after mid-chunk
// faults — and fall back to the multipart download when the server or
// set cannot serve chunks. See docs/ARCHITECTURE.md, "Transfer
// protocol".
type (
	// PullCache is the client-side content-addressed chunk cache a
	// ManagementClient diffs recoveries against.
	PullCache = server.PullCache
)

var (
	// NewPullCache wraps a blob store as a pull cache.
	NewPullCache = server.NewPullCache
	// OpenPullCache opens (creating if needed) an on-disk pull cache.
	OpenPullCache = server.OpenPullCache
)

// Self-healing: a background scrubber incrementally verifies every
// chunk, recipe, refcount, and blob checksum; corrupt bodies are moved
// to a quarantine namespace (reads fail fast, evidence preserved) and,
// when a repair peer is configured, re-fetched by digest over the pull
// protocol and restored. See docs/ARCHITECTURE.md, "Self-healing &
// scrub".
type (
	// Scrubber walks the store verifying integrity, resumable across
	// restarts via a persisted cursor.
	Scrubber = scrub.Scrubber
	// ScrubConfig tunes rate limits, batch size, repair peer, and
	// metrics registry.
	ScrubConfig = scrub.Config
	// ScrubReport summarizes one scrub pass or step.
	ScrubReport = scrub.Report
	// ScrubFinding is one integrity problem a scrub found.
	ScrubFinding = scrub.Finding
	// ChunkFetcher fetches chunk bytes by digest from a healthy peer;
	// *ManagementClient satisfies it.
	ChunkFetcher = scrub.ChunkFetcher
)

// NewScrubber builds a scrubber over a store's blobs and documents.
var NewScrubber = scrub.New

// Degraded recovery: RecoverModelsContext with WithPartialResults
// returns every model that survives and a report naming the ones that
// did not, instead of failing the whole call on the first bad blob.
type (
	// RecoverOption configures a RecoverModelsContext call.
	RecoverOption = core.RecoverOption
	// RecoveryReport summarizes a degraded recovery.
	RecoveryReport = core.RecoveryReport
	// ModelFailure names one model lost during degraded recovery.
	ModelFailure = core.ModelFailure
)

// WithPartialResults opts a recovery into degraded mode, filling
// report with the outcome.
var WithPartialResults = core.WithPartialResults

// Model-quality metrics.
var (
	// MAE is the mean absolute error of a model over data.
	MAE = nn.MAE
	// RMSE is the root-mean-square error of a model over data.
	RMSE = nn.RMSE
	// Accuracy is the argmax classification accuracy over one-hot data.
	Accuracy = nn.Accuracy
)

// StoreOptions configures OpenDirStoresWith.
type StoreOptions struct {
	// RetryAttempts wraps the blob and document backends in a retry
	// layer that re-issues transiently failing operations up to this
	// many total tries with exponential backoff. Values below 2 disable
	// retrying. Every backend operation is idempotent, so retrying is
	// always safe.
	RetryAttempts int
	// DurableSync makes every blob and document write fsync the file
	// before the atomic rename publishes it, and fsync the parent
	// directory afterwards, so commits survive power loss — the
	// difference between crash safety (always on, via temp+rename) and
	// power-failure safety. Servers should enable it; unit tests and
	// benchmarks usually skip the ~milliseconds per write.
	DurableSync bool
}

// OpenDirStores returns stores persisted under dir (blobs/, docs/, and
// datasets/ subdirectories), suitable for durable model management.
func OpenDirStores(dir string) (Stores, error) {
	return OpenDirStoresWith(dir, StoreOptions{})
}

// OpenDirStoresWith is OpenDirStores with explicit store options.
func OpenDirStoresWith(dir string, opts StoreOptions) (Stores, error) {
	openDir := backend.NewDir
	if opts.DurableSync {
		openDir = backend.NewDirSync
	}
	blobs, err := openDir(dir + "/blobs")
	if err != nil {
		return Stores{}, fmt.Errorf("mmm: opening blob store: %w", err)
	}
	docs, err := openDir(dir + "/docs")
	if err != nil {
		return Stores{}, fmt.Errorf("mmm: opening doc store: %w", err)
	}
	reg, err := dataset.OpenRegistry(dir + "/datasets")
	if err != nil {
		return Stores{}, fmt.Errorf("mmm: opening dataset registry: %w", err)
	}
	// Instrumented sits inside Retry so every physical attempt shows up
	// in the op counters, and retries in their own counter.
	var blobBE, docBE backend.Backend = backend.Instrument(blobs, nil, "blobs"),
		backend.Instrument(docs, nil, "docs")
	if opts.RetryAttempts > 1 {
		blobBE = &backend.Retry{Inner: blobBE, Attempts: opts.RetryAttempts,
			OnRetry: backend.RetryCounter(nil, "blobs").Inc}
		docBE = &backend.Retry{Inner: docBE, Attempts: opts.RetryAttempts,
			OnRetry: backend.RetryCounter(nil, "docs").Inc}
	}
	return Stores{
		Docs:     docstore.New(docBE, latency.CostModel{}, nil),
		Blobs:    blobstore.New(blobBE, latency.CostModel{}, nil),
		Datasets: reg,
	}, nil
}
