package mmm_test

import (
	"fmt"
	"sync"
	"testing"

	mmm "github.com/mmm-go/mmm"
)

// Integration tests: multi-approach, multi-cycle, cross-boundary flows
// through the public API only.

// buildScenario runs a small fleet through cycles update cycles, saving
// with every approach, and returns per-approach set IDs plus the truth
// state after every save.
func buildScenario(t *testing.T, n, cycles int) (stores mmm.Stores, ids map[string][]string, truths []*mmm.ModelSet) {
	t.Helper()
	stores = mmm.NewMemStores()
	cfg := mmm.DefaultWorkload()
	cfg.NumModels = n
	cfg.FullUpdateRate = 0.1
	cfg.PartialUpdateRate = 0.1
	cfg.SamplesPerDataset = 40
	cfg.Epochs = 1
	fleet, err := mmm.NewFleet(cfg, stores.Datasets)
	if err != nil {
		t.Fatal(err)
	}
	approaches := map[string]mmm.Approach{
		"baseline":   mmm.NewBaseline(stores),
		"mmlib":      mmm.NewMMlibBase(stores),
		"update":     mmm.NewUpdate(stores),
		"provenance": mmm.NewProvenance(stores),
	}
	ids = map[string][]string{}
	save := func(updates []mmm.ModelUpdate) {
		for name, a := range approaches {
			base := ""
			if len(ids[name]) > 0 {
				base = ids[name][len(ids[name])-1]
			}
			res, err := a.Save(mmm.SaveRequest{
				Set: fleet.Set, Base: base, Updates: updates, Train: fleet.TrainInfo(),
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			ids[name] = append(ids[name], res.SetID)
		}
		truths = append(truths, fleet.Set.Clone())
	}
	save(nil)
	for c := 0; c < cycles; c++ {
		updates, err := fleet.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		save(updates)
	}
	return stores, ids, truths
}

// approachByName is a helper for tests that need to reconstruct an
// approach over existing stores.
func approachByName(t *testing.T, name string, stores *mmm.Stores) mmm.Approach {
	t.Helper()
	switch name {
	case "baseline":
		return mmm.NewBaseline(*stores)
	case "mmlib":
		return mmm.NewMMlibBase(*stores)
	case "update":
		return mmm.NewUpdate(*stores)
	case "provenance":
		return mmm.NewProvenance(*stores)
	}
	t.Fatalf("unknown approach %s", name)
	return nil
}

func TestRecoveryAgreesAcrossApproachesAndCycles(t *testing.T) {
	stores, ids, truths := buildScenario(t, 12, 3)
	for name, setIDs := range ids {
		a := approachByName(t, name, &stores)
		for i, id := range setIDs {
			got, err := a.Recover(id)
			if err != nil {
				t.Fatalf("%s: recover %s: %v", name, id, err)
			}
			if !truths[i].Equal(got) {
				t.Fatalf("%s: use case %d recovered incorrectly", name, i)
			}
		}
	}
}

func TestConcurrentRecovery(t *testing.T) {
	// Saved sets are immutable; concurrent recoveries from shared
	// stores must all succeed and agree.
	stores, ids, truths := buildScenario(t, 10, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for name, setIDs := range ids {
		for i, id := range setIDs {
			wg.Add(1)
			go func(name, id string, i int) {
				defer wg.Done()
				a := approachByName(t, name, &stores)
				got, err := a.Recover(id)
				if err != nil {
					errs <- fmt.Errorf("%s/%s: %w", name, id, err)
					return
				}
				if !truths[i].Equal(got) {
					errs <- fmt.Errorf("%s/%s: wrong recovery", name, id)
				}
			}(name, id, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCrossApproachMigration(t *testing.T) {
	// Migrate an archive: recover a set saved with MMlib-base and
	// re-save it with Baseline; the recovered contents must survive the
	// migration bit for bit.
	stores, ids, truths := buildScenario(t, 8, 1)
	mlib := approachByName(t, "mmlib", &stores)
	last := ids["mmlib"][len(ids["mmlib"])-1]
	set, err := mlib.Recover(last)
	if err != nil {
		t.Fatal(err)
	}
	bl := approachByName(t, "baseline", &stores)
	res, err := bl.Save(mmm.SaveRequest{Set: set})
	if err != nil {
		t.Fatal(err)
	}
	migrated, err := bl.Recover(res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !truths[len(truths)-1].Equal(migrated) {
		t.Fatal("migration lost data")
	}
}

func TestSelectiveRecoveryThroughFacade(t *testing.T) {
	stores, ids, truths := buildScenario(t, 15, 2)
	for name, setIDs := range ids {
		a := approachByName(t, name, &stores)
		pr, ok := a.(mmm.PartialRecoverer)
		if !ok {
			t.Fatalf("%s does not implement PartialRecoverer", name)
		}
		got, err := pr.RecoverModels(setIDs[len(setIDs)-1], []int{0, 7, 14})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		truth := truths[len(truths)-1]
		for _, idx := range []int{0, 7, 14} {
			if !truth.Models[idx].ParamsEqual(got.Models[idx]) {
				t.Fatalf("%s: model %d wrong in selective recovery", name, idx)
			}
		}
	}
}

func TestPruneAndVerifyThroughFacade(t *testing.T) {
	stores, ids, truths := buildScenario(t, 8, 2)
	u := approachByName(t, "update", &stores)
	pruner, ok := u.(mmm.Pruner)
	if !ok {
		t.Fatal("Update does not implement Pruner")
	}
	last := ids["update"][len(ids["update"])-1]
	report, err := pruner.Prune([]string{last})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Kept) != 3 { // the full chain
		t.Fatalf("kept %v", report.Kept)
	}
	verifier, ok := u.(mmm.Verifier)
	if !ok {
		t.Fatal("Update does not implement Verifier")
	}
	issues, err := verifier.VerifyStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("issues after prune: %v", issues)
	}
	got, err := u.Recover(last)
	if err != nil {
		t.Fatal(err)
	}
	if !truths[len(truths)-1].Equal(got) {
		t.Fatal("recovery wrong after prune")
	}
}

func TestOnDiskEndToEnd(t *testing.T) {
	// Full lifecycle against directory-backed stores, reopened between
	// phases like separate processes would.
	dir := t.TempDir()
	var lastID string
	var truth *mmm.ModelSet
	{
		stores, err := mmm.OpenDirStores(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mmm.DefaultWorkload()
		cfg.NumModels = 10
		cfg.SamplesPerDataset = 40
		cfg.Epochs = 1
		fleet, err := mmm.NewFleet(cfg, stores.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		p := mmm.NewProvenance(stores)
		res, err := p.Save(mmm.SaveRequest{Set: fleet.Set})
		if err != nil {
			t.Fatal(err)
		}
		updates, err := fleet.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		res2, err := p.Save(mmm.SaveRequest{
			Set: fleet.Set, Base: res.SetID, Updates: updates, Train: fleet.TrainInfo(),
		})
		if err != nil {
			t.Fatal(err)
		}
		lastID = res2.SetID
		truth = fleet.Set.Clone()
	}
	{
		stores, err := mmm.OpenDirStores(dir)
		if err != nil {
			t.Fatal(err)
		}
		p := mmm.NewProvenance(stores)
		got, err := p.Recover(lastID)
		if err != nil {
			t.Fatal(err)
		}
		if !truth.Equal(got) {
			t.Fatal("on-disk provenance recovery not exact across reopen")
		}
	}
}

func TestConcurrentSavesAcrossApproaches(t *testing.T) {
	// All four approaches persist into one shared store pair; saving
	// concurrently must not corrupt any of them.
	stores := mmm.NewMemStores()
	set, err := mmm.NewModelSet(mmm.FFNN48(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	approaches := []mmm.Approach{
		mmm.NewBaseline(stores),
		mmm.NewMMlibBase(stores),
		mmm.NewUpdate(stores),
		mmm.NewProvenance(stores),
	}
	var wg sync.WaitGroup
	ids := make([]string, len(approaches))
	errs := make(chan error, len(approaches))
	for i, a := range approaches {
		wg.Add(1)
		go func(i int, a mmm.Approach) {
			defer wg.Done()
			res, err := a.Save(mmm.SaveRequest{Set: set})
			if err != nil {
				errs <- fmt.Errorf("%s: %w", a.Name(), err)
				return
			}
			ids[i] = res.SetID
		}(i, a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, a := range approaches {
		got, err := a.Recover(ids[i])
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if !set.Equal(got) {
			t.Fatalf("%s: concurrent save corrupted the set", a.Name())
		}
	}
}
