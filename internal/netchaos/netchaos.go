// Package netchaos injects network-level faults deterministically, so
// resilience tests can prove what the storage-level crash machinery
// (internal/storage/sim) proves for durability: that the save/recover
// path survives the failures production networks actually produce.
//
// Two injection points cover both halves of a connection:
//
//   - Transport wraps an http.RoundTripper on the client side and
//     injects connection resets, dropped responses (the request WAS
//     processed — the dangerous case for exactly-once semantics),
//     synthesized 503 bursts, truncated response bodies, and latency.
//   - Listener wraps a net.Listener on the server side and injects
//     accept-time resets, mid-response truncation, and latency.
//
// All decisions derive from a SplitMix64 seed (internal/rng), so a
// failing chaos run replays exactly from its seed. A Script overrides
// the probabilistic plan with an explicit fault sequence for tests
// that need one precise failure at one precise point.
package netchaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/mmm-go/mmm/internal/rng"
)

// Fault enumerates the injectable network faults.
type Fault int

// The fault kinds. FaultNone passes the operation through untouched.
const (
	FaultNone Fault = iota
	// FaultReset fails the operation before the request reaches the
	// server (client) or closes the connection at accept (server).
	FaultReset
	// FaultDropResponse delivers the request, lets the server process
	// it fully, then discards the response and reports a reset — the
	// case that makes naive retry a duplicate-write machine.
	FaultDropResponse
	// FaultServerBusy synthesizes a 503 with a Retry-After header
	// without delivering the request (client transport only).
	FaultServerBusy
	// FaultTruncate delivers the request but cuts the response body
	// short (client) or closes the connection after a byte budget
	// (server).
	FaultTruncate
	// FaultLatency delays the operation, then passes it through.
	FaultLatency
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultReset:
		return "reset"
	case FaultDropResponse:
		return "drop-response"
	case FaultServerBusy:
		return "server-busy"
	case FaultTruncate:
		return "truncate"
	case FaultLatency:
		return "latency"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Config selects which faults an injector produces and how often.
// Probabilities are evaluated cumulatively in the declared order
// against one uniform draw per operation, so they must sum to ≤ 1.
type Config struct {
	// Seed drives every probabilistic decision. The same seed over the
	// same operation sequence yields the same fault sequence.
	Seed uint64
	// Reset, DropResponse, ServerBusy, Truncate are per-operation
	// injection probabilities in [0, 1].
	Reset        float64
	DropResponse float64
	ServerBusy   float64
	Truncate     float64
	// LatencyP is the probability of injecting Latency extra delay.
	LatencyP float64
	Latency  time.Duration
	// MaxFaults bounds the total number of injected faults; once
	// reached, everything passes through. 0 means unlimited — combine
	// with a retry budget that exceeds the expected fault count, or
	// chaos can starve the operation forever.
	MaxFaults int
	// Script, when non-empty, replaces the probabilistic plan: faults
	// are consumed in order, one per operation, and operations beyond
	// the script pass through untouched.
	Script []Fault
}

// planner hands out the fault for each successive operation.
type planner struct {
	cfg      Config
	mu       sync.Mutex
	rng      *rng.RNG
	pos      int // script position
	injected int
	perFault map[Fault]int
}

func newPlanner(cfg Config) *planner {
	return &planner{cfg: cfg, rng: rng.New(cfg.Seed), perFault: map[Fault]int{}}
}

func (p *planner) next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := FaultNone
	switch {
	case len(p.cfg.Script) > 0:
		if p.pos < len(p.cfg.Script) {
			f = p.cfg.Script[p.pos]
			p.pos++
		}
	case p.cfg.MaxFaults > 0 && p.injected >= p.cfg.MaxFaults:
	default:
		u := p.rng.Float64()
		for _, c := range []struct {
			prob float64
			f    Fault
		}{
			{p.cfg.Reset, FaultReset},
			{p.cfg.DropResponse, FaultDropResponse},
			{p.cfg.ServerBusy, FaultServerBusy},
			{p.cfg.Truncate, FaultTruncate},
			{p.cfg.LatencyP, FaultLatency},
		} {
			if u < c.prob {
				f = c.f
				break
			}
			u -= c.prob
		}
	}
	if f != FaultNone {
		p.injected++
		p.perFault[f]++
	}
	return f
}

// count returns how many faults were injected so far.
func (p *planner) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// resetErr is the error used for injected resets. It wraps
// syscall.ECONNRESET so error classifiers treat it exactly like a real
// peer reset.
func resetErr(when string) error {
	return fmt.Errorf("netchaos: connection reset %s: %w", when, syscall.ECONNRESET)
}

// Transport is a fault-injecting http.RoundTripper.
type Transport struct {
	base http.RoundTripper
	plan *planner
}

// NewTransport wraps base (nil means http.DefaultTransport) with fault
// injection per cfg.
func NewTransport(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, plan: newPlanner(cfg)}
}

// Injected returns how many faults the transport injected so far.
func (t *Transport) Injected() int { return t.plan.count() }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch f := t.plan.next(); f {
	case FaultReset:
		return nil, resetErr("before request")
	case FaultDropResponse:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server processed the request; the client never learns.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, resetErr("while reading response")
	case FaultServerBusy:
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header: http.Header{
				"Retry-After":  []string{"0"},
				"Content-Type": []string{"application/json"},
			},
			Body:          io.NopCloser(strings.NewReader(`{"error":"netchaos: injected overload"}`)),
			ContentLength: -1,
			Request:       req,
		}, nil
	case FaultTruncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		keep := int64(64)
		if resp.ContentLength > 1 {
			keep = resp.ContentLength / 2
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: keep}
		return resp, nil
	case FaultLatency:
		if d := t.plan.cfg.Latency; d > 0 {
			select {
			case <-time.After(d):
			case <-req.Context().Done():
				return nil, req.Context().Err()
			}
		}
		return t.base.RoundTrip(req)
	default:
		return t.base.RoundTrip(req)
	}
}

// truncatedBody yields the first remaining bytes of rc, then reports a
// reset — what a connection cut mid-response looks like to a reader.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, resetErr("mid-body")
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == nil && b.remaining <= 0 {
		err = resetErr("mid-body")
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Listener is a fault-injecting net.Listener: each accepted connection
// draws one fault that shapes its whole lifetime.
type Listener struct {
	net.Listener
	plan *planner
}

// WrapListener wraps ln with fault injection per cfg. Only FaultReset
// (close at accept), FaultTruncate (close after a byte budget of
// writes), and FaultLatency (delay each write) apply; other kinds pass
// through.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, plan: newPlanner(cfg)}
}

// Injected returns how many faults the listener injected so far.
func (l *Listener) Injected() int { return l.plan.count() }

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	switch l.plan.next() {
	case FaultReset:
		c.Close()
		return c, nil
	case FaultTruncate:
		return &truncatedConn{Conn: c, budget: 256}, nil
	case FaultLatency:
		return &slowConn{Conn: c, delay: l.plan.cfg.Latency}, nil
	default:
		return c, nil
	}
}

// truncatedConn closes the connection once budget response bytes have
// been written.
type truncatedConn struct {
	net.Conn
	mu     sync.Mutex
	budget int64
}

func (c *truncatedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		c.Conn.Close()
		return 0, resetErr("mid-response")
	}
	if int64(len(p)) > c.budget {
		n, _ := c.Conn.Write(p[:c.budget])
		c.budget = 0
		c.Conn.Close()
		return n, resetErr("mid-response")
	}
	n, err := c.Conn.Write(p)
	c.budget -= int64(n)
	return n, err
}

// slowConn delays every write by a fixed amount.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (c *slowConn) Write(p []byte) (int, error) {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.Conn.Write(p)
}
