package netchaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
)

// faultSequence draws n faults from a fresh planner with cfg.
func faultSequence(cfg Config, n int) []Fault {
	p := newPlanner(cfg)
	out := make([]Fault, n)
	for i := range out {
		out[i] = p.next()
	}
	return out
}

func TestPlannerDeterministicFromSeed(t *testing.T) {
	cfg := Config{Seed: 42, Reset: 0.2, DropResponse: 0.2, ServerBusy: 0.2, Truncate: 0.1}
	a := faultSequence(cfg, 200)
	b := faultSequence(cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	var injected int
	for _, f := range a {
		if f != FaultNone {
			injected++
		}
	}
	// ~70% fault rate over 200 draws: both pure-pass and pure-fault
	// sequences would mean the probabilities are ignored.
	if injected == 0 || injected == len(a) {
		t.Fatalf("injected %d/%d faults, want a mix", injected, len(a))
	}

	cfg.Seed = 43
	c := faultSequence(cfg, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestPlannerScriptAndMaxFaults(t *testing.T) {
	script := []Fault{FaultReset, FaultNone, FaultServerBusy}
	got := faultSequence(Config{Script: script}, 5)
	want := []Fault{FaultReset, FaultNone, FaultServerBusy, FaultNone, FaultNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scripted draw %d = %v, want %v", i, got[i], want[i])
		}
	}

	p := newPlanner(Config{Seed: 1, Reset: 1, MaxFaults: 3})
	var injected int
	for i := 0; i < 10; i++ {
		if p.next() != FaultNone {
			injected++
		}
	}
	if injected != 3 {
		t.Fatalf("MaxFaults=3 injected %d faults", injected)
	}
}

func TestTransportFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1024))
	}))
	defer ts.Close()

	tr := NewTransport(nil, Config{Script: []Fault{
		FaultReset, FaultServerBusy, FaultDropResponse, FaultTruncate, FaultNone,
	}})
	client := &http.Client{Transport: tr}

	// Reset: the request never happens.
	if _, err := client.Get(ts.URL); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("reset fault: err = %v, want ECONNRESET", err)
	}

	// ServerBusy: synthesized 503 with Retry-After.
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("busy fault: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// DropResponse: the handler ran, but the client sees a reset.
	if _, err := client.Get(ts.URL); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("drop fault: err = %v, want ECONNRESET", err)
	}

	// Truncate: headers arrive, the body dies halfway.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("truncate fault: read err = %v, want ECONNRESET", err)
	}
	if len(body) == 0 || len(body) >= 1024 {
		t.Fatalf("truncate fault delivered %d of 1024 bytes", len(body))
	}

	// Script exhausted: clean pass-through.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != 1024 {
		t.Fatalf("pass-through read %d bytes, err %v", len(body), err)
	}
	if tr.Injected() != 4 {
		t.Fatalf("Injected() = %d, want 4", tr.Injected())
	}
}

func TestListenerTruncation(t *testing.T) {
	inner := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("y", 64*1024))
	}))
	inner.Listener = WrapListener(inner.Listener, Config{Script: []Fault{FaultTruncate}})
	inner.Start()
	defer inner.Close()

	resp, err := http.Get(inner.URL)
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("truncating listener delivered the full response")
	}

	// The script is spent; the next connection works end to end.
	resp, err = http.Get(inner.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != 64*1024 {
		t.Fatalf("post-chaos read %d bytes, err %v", len(body), err)
	}
}
