package netchaos

import (
	"net"
	"sync"
)

// NodeGate wraps a listener with whole-node fault control — the
// cluster-drill counterpart to the per-connection faults of Listener.
// Kill simulates a node dying (listener closed, every live connection
// severed, one-way); Partition simulates a network cut (existing
// connections severed, new ones refused) that Heal reverses. Chaos
// tests wrap an httptest server's listener and flip nodes mid-workload
// to prove the router's failover and the cluster's recovery
// guarantees.
type NodeGate struct {
	inner net.Listener

	mu          sync.Mutex
	conns       map[net.Conn]struct{}
	killed      bool
	partitioned bool
}

// NewNodeGate wraps ln. The returned gate is the listener to serve on.
func NewNodeGate(ln net.Listener) *NodeGate {
	return &NodeGate{inner: ln, conns: map[net.Conn]struct{}{}}
}

// Accept implements net.Listener. While partitioned, accepted
// connections are closed immediately — the TCP handshake may succeed
// (the kernel already completed it) but no byte will ever flow, which
// is exactly how a mid-connection network cut presents.
func (g *NodeGate) Accept() (net.Conn, error) {
	for {
		c, err := g.inner.Accept()
		if err != nil {
			return nil, err
		}
		g.mu.Lock()
		if g.killed || g.partitioned {
			g.mu.Unlock()
			_ = c.Close()
			continue
		}
		gc := &gatedConn{Conn: c, gate: g}
		g.conns[gc] = struct{}{}
		g.mu.Unlock()
		return gc, nil
	}
}

// Close implements net.Listener.
func (g *NodeGate) Close() error { return g.inner.Close() }

// Addr implements net.Listener.
func (g *NodeGate) Addr() net.Addr { return g.inner.Addr() }

// Kill simulates the node dying: the listener closes and every live
// connection is severed. One-way — a killed node returns as a NEW
// listener (a restart), never by un-killing.
func (g *NodeGate) Kill() {
	g.mu.Lock()
	g.killed = true
	conns := g.takeConns()
	g.mu.Unlock()
	_ = g.inner.Close()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Partition cuts the node off: live connections are severed and new
// ones die at accept. The process keeps running — unlike Kill, Heal
// restores service on the same listener.
func (g *NodeGate) Partition() {
	g.mu.Lock()
	g.partitioned = true
	conns := g.takeConns()
	g.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Heal ends a partition.
func (g *NodeGate) Heal() {
	g.mu.Lock()
	g.partitioned = false
	g.mu.Unlock()
}

// takeConns drains the tracked-connection set; callers hold g.mu.
func (g *NodeGate) takeConns() []net.Conn {
	out := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		out = append(out, c)
	}
	g.conns = map[net.Conn]struct{}{}
	return out
}

// gatedConn deregisters itself on close so the gate only severs live
// connections.
type gatedConn struct {
	net.Conn
	gate *NodeGate
	once sync.Once
}

func (c *gatedConn) Close() error {
	c.once.Do(func() {
		c.gate.mu.Lock()
		delete(c.gate.conns, c)
		c.gate.mu.Unlock()
	})
	return c.Conn.Close()
}
