// Package hashing computes layer-parameter hashes for the Update
// approach's change detection.
//
// The paper: "We calculate the parameter hashes for every model and
// layer and save them. We identify all changed parameters based on the
// hash information of the previous model set" — hashing lets the
// approach detect changes "without having to load the full
// representation of the previous model". SHA-256 over the raw
// little-endian float32 bytes makes hash equality imply bit equality
// for practical purposes, so applying diffs reproduces parameters
// exactly.
package hashing

import (
	"crypto/sha256"
	"encoding/hex"

	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/tensor"
)

// HashSize is the character length of one layer hash as stored: a full
// hex-encoded SHA-256, matching the storage profile of the paper's
// Update approach (its per-layer "hash info" is the dominant part of
// the U3 hash documents).
const HashSize = 64

// Tensor returns the hash of a parameter tensor's raw bytes.
func Tensor(t *tensor.Tensor) string {
	sum := sha256.Sum256(t.Bytes())
	return hex.EncodeToString(sum[:])
}

// Model returns the hash of every parameter tensor of m, in parameter
// dictionary order, keyed by dictionary key.
func Model(m *nn.Model) map[string]string {
	out := make(map[string]string)
	for _, p := range m.Params() {
		out[p.Name] = Tensor(p.Tensor)
	}
	return out
}

// ModelList returns the hashes of m's parameters as a slice aligned
// with the architecture's ParamKeys order. Slices serialize smaller
// than maps and preserve order.
func ModelList(m *nn.Model) []string {
	params := m.Params()
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = Tensor(p.Tensor)
	}
	return out
}

// DiffKeys compares two aligned hash slices and returns the indices
// that differ. A length mismatch reports every index as changed.
func DiffKeys(prev, cur []string) []int {
	if len(prev) != len(cur) {
		all := make([]int, len(cur))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var changed []int
	for i := range cur {
		if prev[i] != cur[i] {
			changed = append(changed, i)
		}
	}
	return changed
}
