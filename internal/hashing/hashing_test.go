package hashing

import (
	"testing"
	"testing/quick"

	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/tensor"
)

func TestTensorHashStable(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3}, 3)
	b := tensor.FromSlice([]float32{1, 2, 3}, 3)
	if Tensor(a) != Tensor(b) {
		t.Fatal("identical tensors hash differently")
	}
}

func TestTensorHashSensitive(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3}, 3)
	b := tensor.FromSlice([]float32{1, 2, 3.0000002}, 3)
	if Tensor(a) == Tensor(b) {
		t.Fatal("one-ulp change not detected")
	}
}

func TestTensorHashLength(t *testing.T) {
	h := Tensor(tensor.New(5))
	if len(h) != HashSize {
		t.Fatalf("hash length %d, want %d", len(h), HashSize)
	}
}

func TestModelHashes(t *testing.T) {
	m := nn.MustNewModel(nn.FFNN48(), 1)
	hs := Model(m)
	if len(hs) != 8 {
		t.Fatalf("FFNN-48 has %d hashed params, want 8", len(hs))
	}
	if _, ok := hs["fc1.weight"]; !ok {
		t.Fatal("missing fc1.weight hash")
	}
}

func TestModelListAlignedWithParamKeys(t *testing.T) {
	m := nn.MustNewModel(nn.FFNN48(), 1)
	list := ModelList(m)
	keys := m.Arch.ParamKeys()
	if len(list) != len(keys) {
		t.Fatalf("list length %d, keys %d", len(list), len(keys))
	}
	byKey := Model(m)
	for i, k := range keys {
		if list[i] != byKey[k] {
			t.Fatalf("list[%d] does not match hash of %s", i, k)
		}
	}
}

func TestModelHashDetectsLayerChange(t *testing.T) {
	a := nn.MustNewModel(nn.FFNN48(), 1)
	b := a.Clone()
	w, err := b.LayerParam("fc3.weight")
	if err != nil {
		t.Fatal(err)
	}
	w.Data[0] += 0.5

	changed := DiffKeys(ModelList(a), ModelList(b))
	if len(changed) != 1 {
		t.Fatalf("changed indices = %v, want exactly one", changed)
	}
	keys := a.Arch.ParamKeys()
	if keys[changed[0]] != "fc3.weight" {
		t.Fatalf("changed key = %s, want fc3.weight", keys[changed[0]])
	}
}

func TestDiffKeysIdentical(t *testing.T) {
	m := nn.MustNewModel(nn.FFNN48(), 1)
	if d := DiffKeys(ModelList(m), ModelList(m)); len(d) != 0 {
		t.Fatalf("identical model reports changes: %v", d)
	}
}

func TestDiffKeysLengthMismatch(t *testing.T) {
	d := DiffKeys([]string{"a"}, []string{"x", "y", "z"})
	if len(d) != 3 {
		t.Fatalf("length mismatch diff = %v, want all 3 indices", d)
	}
}

func TestQuickHashDeterministic(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		a := tensor.FromSlice(vals, len(vals))
		return Tensor(a) == Tensor(a.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
