package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), the format every Prometheus-
// compatible scraper accepts. Rendered by hand on purpose: the whole
// repo is dependency-free, and the format is a few lines of escaping
// rules, not a client library's worth of machinery.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	var lastName string
	for _, s := range samples {
		if s.Name != lastName {
			if help := r.Help(s.Name); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastName = s.Name
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, s Sample) error {
	switch s.Kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, renderLabels(s.Labels, "", ""), s.Value)
		return err
	case KindHistogram:
		cum := int64(0)
		for i, c := range s.Buckets {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = formatFloat(s.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, renderLabels(s.Labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, renderLabels(s.Labels, "", ""), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, renderLabels(s.Labels, "", ""), s.Count)
		return err
	}
	return fmt.Errorf("obs: unknown metric kind %q", s.Kind)
}

// renderLabels renders a label set as {k="v",...}, optionally appending
// one extra pair (the histogram "le" label). Empty sets render as "".
func renderLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeValue(l.Value))
	}
	if extraKey != "" {
		if len(sorted) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: integral
// values without exponent noise, +Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func escapeHelp(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(s)
}

func escapeValue(s string) string {
	// %q in renderLabels already escapes quotes and backslashes; this
	// hook exists for newline normalization so one odd label cannot
	// break the whole exposition.
	return strings.ReplaceAll(s, "\n", " ")
}

// Summary renders the registry as indented human-readable text for CLI
// output (mmstore -v, mmbench). Histograms show count/mean rather than
// buckets: a terminal reader wants "37 saves averaging 12ms", not
// cumulative bucket math.
func (r *Registry) Summary() string {
	samples := r.Snapshot()
	if len(samples) == 0 {
		return "(no metrics recorded)\n"
	}
	var b strings.Builder
	var lastName string
	for _, s := range samples {
		if s.Name != lastName {
			fmt.Fprintf(&b, "%s\n", s.Name)
			lastName = s.Name
		}
		label := renderLabels(s.Labels, "", "")
		if label == "" {
			label = "{}"
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(&b, "  %-48s %d\n", label, s.Value)
		case KindHistogram:
			mean := 0.0
			if s.Count > 0 {
				mean = s.Sum / float64(s.Count)
			}
			fmt.Fprintf(&b, "  %-48s count=%d sum=%s mean=%s\n", label, s.Count, formatFloat(s.Sum), formatFloat(mean))
		}
	}
	return b.String()
}
