package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("ops_total", L("op", "put"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("ops_total", L("op", "put")); again != c {
		t.Fatal("same name+labels should return the same counter")
	}
	if other := r.Counter("ops_total", L("op", "get")); other == c {
		t.Fatal("different labels should return a different counter")
	}

	g := r.Gauge("in_flight")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 102.565 {
		t.Fatalf("sum = %v, want 102.565", got)
	}
	// Bounds are inclusive: 0.01 lands in the first bucket.
	want := []int64{2, 1, 1, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x_total")
}

// TestConcurrentIncrements exercises counter, gauge, and histogram
// writes plus series creation and snapshots from many goroutines; run
// under -race it is the package's data-race check for the 8-worker pool
// scenario.
func TestConcurrentIncrements(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("conc_total", L("w", "shared")).Inc()
				r.Gauge("conc_gauge").Add(1)
				r.Histogram("conc_seconds", TimeBuckets).Observe(0.003)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := r.Counter("conc_total", L("w", "shared")).Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("conc_gauge").Value(); got != total {
		t.Fatalf("gauge = %d, want %d", got, total)
	}
	h := r.Histogram("conc_seconds", TimeBuckets)
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	if got, want := h.Sum(), 0.003*float64(total); got < want*0.999 || got > want*1.001 {
		t.Fatalf("histogram sum = %v, want ~%v", got, want)
	}
}

func TestSnapshotDeterministicAndReset(t *testing.T) {
	r := New()
	r.Counter("b_total", L("x", "2")).Inc()
	r.Counter("b_total", L("x", "1")).Inc()
	r.Counter("a_total").Inc()
	s := r.Snapshot()
	if len(s) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(s))
	}
	if s[0].Name != "a_total" || s[1].Labels[0].Value != "1" || s[2].Labels[0].Value != "2" {
		t.Fatalf("snapshot not sorted: %+v", s)
	}

	r.Reset()
	if got := len(r.Snapshot()); got != 0 {
		t.Fatalf("snapshot after reset has %d series, want 0", got)
	}
	// Families survive reset; new series start from zero.
	if got := r.Counter("a_total").Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Describe("mmm_save_seconds", "Time to save a model set.")
	h := r.Histogram("mmm_save_seconds", []float64{0.1, 1}, L("approach", "Update"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	r.Counter("mmm_backend_ops_total", L("store", "blobs"), L("op", "put")).Add(7)
	r.Gauge("mmm_inflight").Set(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP mmm_save_seconds Time to save a model set.",
		"# TYPE mmm_save_seconds histogram",
		`mmm_save_seconds_bucket{approach="Update",le="0.1"} 1`,
		`mmm_save_seconds_bucket{approach="Update",le="1"} 2`,
		`mmm_save_seconds_bucket{approach="Update",le="+Inf"} 3`,
		`mmm_save_seconds_sum{approach="Update"} 3.55`,
		`mmm_save_seconds_count{approach="Update"} 3`,
		"# TYPE mmm_backend_ops_total counter",
		`mmm_backend_ops_total{op="put",store="blobs"} 7`,
		"# TYPE mmm_inflight gauge",
		"mmm_inflight 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// The text format requires every line to be a comment or a sample.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestSummary(t *testing.T) {
	r := New()
	r.Counter("ops_total", L("op", "put")).Add(3)
	r.Histogram("lat_seconds", []float64{1}).Observe(0.5)
	out := r.Summary()
	for _, want := range []string{"ops_total", `{op="put"}`, "count=1", "mean=0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q\n---\n%s", want, out)
		}
	}
	if got := New().Summary(); !strings.Contains(got, "no metrics") {
		t.Errorf("empty summary = %q", got)
	}
}

func TestSpan(t *testing.T) {
	s := StartSpan("save", "Update", "up-000001")
	base := time.Now()
	step := 0
	s.now = func() time.Time { step++; return base.Add(time.Duration(step) * 10 * time.Millisecond) }
	s.Start = base
	s.last = base

	s.Phase("diff")
	s.Phase("write")
	var ended *Span
	s.OnEnd(func(sp *Span) { ended = sp })
	s.End(nil)
	s.End(errors.New("ignored")) // second End is a no-op

	if ended != s {
		t.Fatal("OnEnd hook did not fire with the span")
	}
	if s.Err() != nil {
		t.Fatalf("err = %v, want nil (second End must not overwrite)", s.Err())
	}
	ph := s.Phases()
	if len(ph) != 2 || ph[0].Name != "diff" || ph[1].Name != "write" {
		t.Fatalf("phases = %+v", ph)
	}
	if ph[0].Dur != 10*time.Millisecond || ph[1].Dur != 10*time.Millisecond {
		t.Fatalf("phase durations = %v, %v", ph[0].Dur, ph[1].Dur)
	}
	if s.Duration() != 30*time.Millisecond {
		t.Fatalf("duration = %v, want 30ms", s.Duration())
	}
	line := s.String()
	for _, want := range []string{"save", "approach=Update", "set=up-000001", "diff=10ms", "ok"} {
		if !strings.Contains(line, want) {
			t.Errorf("span line missing %q: %s", want, line)
		}
	}

	agg := PhaseBreakdown([]*Span{s, s})
	if len(agg) != 2 || agg[0].Dur != 20*time.Millisecond {
		t.Fatalf("breakdown = %+v", agg)
	}
}
