package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// spanSeq numbers spans process-wide so concurrent operations are
// distinguishable in logs.
var spanSeq atomic.Int64

// Span is a lightweight per-operation trace: one save, recover, or
// partial recover, with named phase timings. It is not a distributed
// tracing span — there is no propagation — just enough structure to
// answer "where did this operation's time go" from a log line.
//
// A span is owned by one operation but phases may be marked from the
// goroutine running it; the internal lock makes concurrent Phase calls
// safe if an operation fans out.
type Span struct {
	ID       string
	Op       string // "save", "recover", "partial_recover", ...
	Approach string
	SetID    string
	Start    time.Time

	mu     sync.Mutex
	phases []Phase
	last   time.Time
	end    time.Time
	err    error
	onEnd  func(*Span)
	now    func() time.Time
}

// Phase is one named step of a span with its duration.
type Phase struct {
	Name string
	Dur  time.Duration
}

// StartSpan opens a span for op on approach/setID. setID may be empty
// when the operation allocates the ID itself; call SetID's setter once
// known.
func StartSpan(op, approach, setID string) *Span {
	now := time.Now()
	return &Span{
		ID:       fmt.Sprintf("op-%06d", spanSeq.Add(1)),
		Op:       op,
		Approach: approach,
		SetID:    setID,
		Start:    now,
		last:     now,
		now:      time.Now,
	}
}

// OnEnd registers fn to run when End is called, after the duration is
// final. Used to feed span results into metrics without the call sites
// caring.
func (s *Span) OnEnd(fn func(*Span)) *Span {
	s.mu.Lock()
	s.onEnd = fn
	s.mu.Unlock()
	return s
}

// Phase closes the current phase under name: the elapsed time since the
// previous Phase call (or the span start) is recorded against it.
func (s *Span) Phase(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.phases = append(s.phases, Phase{Name: name, Dur: now.Sub(s.last)})
	s.last = now
}

// End closes the span with the operation's outcome and fires any OnEnd
// hook. It is safe to call once; later calls are no-ops.
func (s *Span) End(err error) {
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = s.now()
	s.err = err
	hook := s.onEnd
	s.mu.Unlock()
	if hook != nil {
		hook(s)
	}
}

// Duration returns the span's total wall time (so far, if not ended).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return s.now().Sub(s.Start)
	}
	return s.end.Sub(s.Start)
}

// Err returns the outcome recorded at End (nil before End).
func (s *Span) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Phases returns a copy of the recorded phases in order.
func (s *Span) Phases() []Phase {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Phase(nil), s.phases...)
}

// String renders the span as a single log-friendly line, e.g.
//
//	op-000003 save approach=Update set=up-000002 total=12.3ms phases[diff=8.1ms write=4.2ms] ok
func (s *Span) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s approach=%s", s.ID, s.Op, s.Approach)
	if s.SetID != "" {
		fmt.Fprintf(&b, " set=%s", s.SetID)
	}
	total := s.end.Sub(s.Start)
	if s.end.IsZero() {
		total = s.now().Sub(s.Start)
	}
	fmt.Fprintf(&b, " total=%s", total.Round(time.Microsecond))
	if len(s.phases) > 0 {
		b.WriteString(" phases[")
		for i, p := range s.phases {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%s", p.Name, p.Dur.Round(time.Microsecond))
		}
		b.WriteByte(']')
	}
	if s.err != nil {
		fmt.Fprintf(&b, " err=%q", s.err.Error())
	} else if !s.end.IsZero() {
		b.WriteString(" ok")
	}
	return b.String()
}

// PhaseBreakdown aggregates phases by name, longest first — handy for a
// quick profile over a batch of spans.
func PhaseBreakdown(spans []*Span) []Phase {
	total := map[string]time.Duration{}
	for _, s := range spans {
		for _, p := range s.Phases() {
			total[p.Name] += p.Dur
		}
	}
	out := make([]Phase, 0, len(total))
	for name, d := range total {
		out = append(out, Phase{Name: name, Dur: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dur != out[j].Dur {
			return out[i].Dur > out[j].Dur
		}
		return out[i].Name < out[j].Name
	})
	return out
}
