// Package obs is the runtime observability layer of the model
// management system: dependency-free metrics (atomic counters, gauges,
// and fixed-bucket histograms) plus lightweight per-operation trace
// spans.
//
// The paper evaluates three quantities — storage consumption,
// time-to-save (TTS), and time-to-recover (TTR) — but until this
// package they were only measurable by running the offline experiment
// harness. obs makes them first-class runtime signals: the storage
// backends count operations, bytes, errors, and retries; the core
// save/recover paths record TTS/TTR histograms, diff sizes, chain
// depths, and integrity failures; and mmserve renders everything as
// Prometheus text on GET /metrics.
//
// Everything is safe for concurrent use: metric values are single
// atomic words (histogram buckets are an array of them), so recording
// from the 8-worker save/recover pool costs a few uncontended atomic
// adds per operation. Series creation takes a registry lock, so hot
// paths should look series up once and hold on to them where possible —
// though lookup itself is a map read under a mutex and remains cheap
// relative to any store I/O.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the metric kinds a registry can hold.
type Kind string

// Supported metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are upper
// bucket boundaries (inclusive), in increasing order; an implicit +Inf
// bucket catches everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// TimeBuckets are the default histogram bounds for durations in
// seconds: 1ms to 60s, roughly geometric. They cover everything from an
// in-memory save of a small set to a provenance retraining chain.
var TimeBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets are the default histogram bounds for byte sizes: 1 KiB to
// 1 GiB in powers of four.
var SizeBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// DepthBuckets are the default histogram bounds for recovery-chain
// depths.
var DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64}

// RatioBuckets are the default histogram bounds for dimensionless
// ratios such as compressed-size / logical-size: 1 means "no change",
// below 1 is a win, above 1 an expansion that keep-if-smaller logic
// should have rejected.
var RatioBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1, 1.1}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	key    string // canonical label rendering, sort and identity key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all series of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds metric families and hands out their series. The zero
// value is not usable; call New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry: the approaches, storage
// backends, and HTTP server record here unless configured otherwise,
// and mmserve's GET /metrics renders it.
var Default = New()

// labelKey renders labels canonically: sorted by key, escaped, joined.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// Describe sets the help text of a metric family, creating the family
// lazily if it does not exist yet. Describing is optional; undescribed
// families render without a # HELP line.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
		return
	}
	r.families[name] = &family{name: name, help: help, series: map[string]*series{}}
}

// get returns (creating if needed) the series of name with labels,
// checking the kind matches any previous registration.
func (r *Registry) get(name string, kind Kind, bounds []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind == "" {
		f.kind = kind
		if kind == KindHistogram {
			f.bounds = append([]float64(nil), bounds...)
			sort.Float64s(f.bounds)
		}
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...), key: key}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series of name with labels, creating it
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.get(name, KindCounter, nil, labels).c
}

// Gauge returns the gauge series of name with labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.get(name, KindGauge, nil, labels).g
}

// Histogram returns the histogram series of name with labels, creating
// it on first use. The bounds of the first creation win; later calls
// for the same family reuse them regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return r.get(name, KindHistogram, bounds, labels).h
}

// Sample is one series' state in a Snapshot.
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Value is the counter or gauge value.
	Value int64
	// Histogram state; Buckets is non-cumulative, the last entry being
	// the +Inf bucket.
	Count   int64
	Sum     float64
	Bounds  []float64
	Buckets []int64
}

// Help returns the help text registered for a family ("" if none).
func (r *Registry) Help(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f.help
	}
	return ""
}

// Snapshot returns the state of every series, sorted by family name and
// label key. Values are read atomically per word; a snapshot taken
// while writers are active is internally consistent per value, not
// across values — exactly what a metrics scrape needs.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Sample
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			sample := Sample{Name: n, Labels: s.labels, Kind: f.kind}
			switch f.kind {
			case KindCounter:
				sample.Value = s.c.Value()
			case KindGauge:
				sample.Value = s.g.Value()
			case KindHistogram:
				sample.Count = s.h.Count()
				sample.Sum = s.h.Sum()
				sample.Bounds = s.h.Bounds()
				sample.Buckets = s.h.BucketCounts()
			}
			out = append(out, sample)
		}
	}
	r.mu.Unlock()
	return out
}

// Reset removes every series while keeping family registrations (kind,
// bounds, help), so a benchmark can isolate per-run measurements.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		f.series = map[string]*series{}
	}
}
