// Package cifar generates synthetic CIFAR-10-like image data.
//
// The paper's second use case trains a small CNN on CIFAR-10. The real
// dataset is an external download; the management approaches never look
// at pixel content, only at the parameter tensors training produces, so
// a deterministic synthetic source with the same shape (32×32×3 images,
// 10 classes) exercises the identical code path. Images have
// class-dependent structure (orientation, color, frequency) so the CNN
// has an actual signal to learn, which keeps training dynamics — and
// therefore parameter divergence between models — realistic.
package cifar

import (
	"math"

	"github.com/mmm-go/mmm/internal/rng"
	"github.com/mmm-go/mmm/internal/tensor"
)

// NumClasses is the number of image classes, matching CIFAR-10.
const NumClasses = 10

// Size is the image edge length in pixels.
const Size = 32

// Channels is the number of color channels.
const Channels = 3

// Image generates one synthetic image of the given class. Pixels are
// roughly zero-centered (range ≈ [-1, 1]), so no further input
// normalization is needed. Equal (class, r-stream) pairs give identical
// images.
func Image(class int, r *rng.RNG) *tensor.Tensor {
	if class < 0 || class >= NumClasses {
		panic("cifar: class out of range")
	}
	img := tensor.New(Channels, Size, Size)

	// Class signature: a sinusoidal grating whose orientation and
	// frequency are class-specific, with class-specific channel gains.
	angle := float64(class) * math.Pi / NumClasses
	freq := 0.2 + 0.08*float64(class%5)
	cos, sin := math.Cos(angle), math.Sin(angle)
	gains := [Channels]float64{
		0.5 + 0.5*math.Cos(float64(class)),
		0.5 + 0.5*math.Sin(float64(class)*1.7),
		0.5 + 0.5*math.Cos(float64(class)*2.3+1),
	}
	phase := 2 * math.Pi * r.Float64()

	for c := 0; c < Channels; c++ {
		for y := 0; y < Size; y++ {
			for x := 0; x < Size; x++ {
				proj := (float64(x)*cos + float64(y)*sin) * freq
				v := gains[c]*math.Sin(proj+phase) + 0.25*r.NormFloat64()
				img.Data[(c*Size+y)*Size+x] = float32(v)
			}
		}
	}
	return img
}

// OneHot returns the one-hot label vector for class.
func OneHot(class int) *tensor.Tensor {
	if class < 0 || class >= NumClasses {
		panic("cifar: class out of range")
	}
	y := tensor.New(NumClasses)
	y.Data[class] = 1
	return y
}

// Batch generates n (image, one-hot label) pairs with classes cycling
// deterministically and per-image noise drawn from r.
func Batch(n int, r *rng.RNG) (xs, ys []*tensor.Tensor) {
	xs = make([]*tensor.Tensor, n)
	ys = make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		class := i % NumClasses
		xs[i] = Image(class, r)
		ys[i] = OneHot(class)
	}
	return xs, ys
}
