package cifar

import (
	"math"
	"testing"

	"github.com/mmm-go/mmm/internal/rng"
)

func TestImageShapeAndRange(t *testing.T) {
	img := Image(3, rng.New(1))
	if len(img.Shape) != 3 || img.Shape[0] != Channels || img.Shape[1] != Size || img.Shape[2] != Size {
		t.Fatalf("image shape %v", img.Shape)
	}
	for i, v := range img.Data {
		if math.IsNaN(float64(v)) {
			t.Fatalf("pixel %d is NaN", i)
		}
		if v < -3 || v > 3 {
			t.Fatalf("pixel %d = %v, outside plausible range", i, v)
		}
	}
}

func TestImageDeterministic(t *testing.T) {
	a := Image(5, rng.New(9))
	b := Image(5, rng.New(9))
	if !a.Equal(b) {
		t.Fatal("same (class, stream) produced different images")
	}
}

func TestImageClassesDiffer(t *testing.T) {
	a := Image(0, rng.New(9))
	b := Image(1, rng.New(9))
	if a.Equal(b) {
		t.Fatal("different classes produced identical images")
	}
}

func TestImagePanicsOnBadClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Image(-1) did not panic")
		}
	}()
	Image(-1, rng.New(1))
}

func TestOneHot(t *testing.T) {
	y := OneHot(7)
	for i, v := range y.Data {
		want := float32(0)
		if i == 7 {
			want = 1
		}
		if v != want {
			t.Fatalf("OneHot(7)[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestBatchCyclesClasses(t *testing.T) {
	xs, ys := Batch(25, rng.New(3))
	if len(xs) != 25 || len(ys) != 25 {
		t.Fatalf("Batch lengths %d/%d, want 25", len(xs), len(ys))
	}
	for i, y := range ys {
		if y.Data[i%NumClasses] != 1 {
			t.Fatalf("sample %d not labeled class %d", i, i%NumClasses)
		}
	}
}
