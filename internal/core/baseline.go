package core

import (
	"context"
	"fmt"
)

// Baseline is the paper's first multi-model approach: it represents a
// set of n models by exactly three artifacts — one metadata document,
// one architecture definition, and one binary file concatenating all
// models' parameters. Compared to saving models individually this
// removes the redundant per-model metadata/architecture/keys (O1) and
// collapses O(n) store writes into O(1) (O3), while every set remains
// independently recoverable.
type Baseline struct {
	stores  Stores
	ids     idAllocator
	workers int
	metrics *approachObs
	dedup   bool
	codec   string
}

// collection and blob namespace of Baseline.
const (
	baselineCollection = "baseline_sets"
	baselineBlobPrefix = "baseline"
)

// NewBaseline returns a Baseline approach over the given stores.
func NewBaseline(stores Stores, opts ...Option) *Baseline {
	s := newSettings(opts)
	s.attachCache(stores)
	return &Baseline{stores: stores, ids: idAllocator{prefix: "bl"}, workers: s.workers,
		metrics: newApproachObs(s.metrics, "Baseline"), dedup: s.dedup, codec: s.codec}
}

// Name implements Approach.
func (b *Baseline) Name() string { return "Baseline" }

// SaveContext implements Approach. Baseline treats initial and derived
// sets identically: every save is a full, self-contained snapshot, so
// req.Base and req.Updates are ignored by design.
func (b *Baseline) SaveContext(ctx context.Context, req SaveRequest) (SaveResult, error) {
	sp := b.metrics.begin("save", "")
	res, err := b.save(ctx, req)
	sp.SetID = res.SetID
	b.metrics.endSave(sp, res, err)
	return res, err
}

func (b *Baseline) save(ctx context.Context, req SaveRequest) (SaveResult, error) {
	if err := validateSave(req); err != nil {
		return SaveResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return SaveResult{}, err
	}

	existing, err := b.stores.Docs.IDs(baselineCollection)
	if err != nil {
		return SaveResult{}, err
	}
	setID, err := chooseSetID(req, &b.ids, existing)
	if err != nil {
		return SaveResult{}, err
	}

	cdc, err := resolveCodec(b.codec)
	if err != nil {
		return SaveResult{}, err
	}
	op := newSaveOp(b.stores, b.dedup, cdc, b.codec, b.workers, b.metrics.reg)
	if err := fullSave(ctx, op, baselineCollection, baselineBlobPrefix, b.Name(), setID, req, nil, nil, b.workers); err != nil {
		op.rollback()
		return SaveResult{}, err
	}
	return op.result(setID), nil
}

// Save implements Approach.
//
// Deprecated: use SaveContext.
func (b *Baseline) Save(req SaveRequest) (SaveResult, error) {
	return b.SaveContext(context.Background(), req)
}

// RecoverContext implements Approach: load metadata and architecture,
// then decode all parameters from the single binary file.
func (b *Baseline) RecoverContext(ctx context.Context, setID string) (*ModelSet, error) {
	sp := b.metrics.begin("recover", setID)
	set, err := b.recover(ctx, setID)
	b.metrics.endRecover(sp, 0, err)
	return set, err
}

func (b *Baseline) recover(ctx context.Context, setID string) (*ModelSet, error) {
	meta, err := loadMeta(b.stores, baselineCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != b.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not Baseline", setID, meta.Approach)
	}
	return fullRecover(ctx, b.stores, baselineBlobPrefix, meta, b.workers)
}

// Recover implements Approach.
//
// Deprecated: use RecoverContext.
func (b *Baseline) Recover(setID string) (*ModelSet, error) {
	return b.RecoverContext(context.Background(), setID)
}

// SetIDs lists all sets saved by this approach, in save order.
func (b *Baseline) SetIDs() ([]string, error) {
	return b.stores.Docs.IDs(baselineCollection)
}
