package core

import "fmt"

// Baseline is the paper's first multi-model approach: it represents a
// set of n models by exactly three artifacts — one metadata document,
// one architecture definition, and one binary file concatenating all
// models' parameters. Compared to saving models individually this
// removes the redundant per-model metadata/architecture/keys (O1) and
// collapses O(n) store writes into O(1) (O3), while every set remains
// independently recoverable.
type Baseline struct {
	stores Stores
	ids    idAllocator
}

// collection and blob namespace of Baseline.
const (
	baselineCollection = "baseline_sets"
	baselineBlobPrefix = "baseline"
)

// NewBaseline returns a Baseline approach over the given stores.
func NewBaseline(stores Stores) *Baseline {
	return &Baseline{stores: stores, ids: idAllocator{prefix: "bl"}}
}

// Name implements Approach.
func (b *Baseline) Name() string { return "Baseline" }

// Save implements Approach. Baseline treats initial and derived sets
// identically: every save is a full, self-contained snapshot, so
// req.Base and req.Updates are ignored by design.
func (b *Baseline) Save(req SaveRequest) (SaveResult, error) {
	if err := validateSave(req); err != nil {
		return SaveResult{}, err
	}
	startBytes := b.stores.writtenBytes()
	startOps := b.stores.writeOps()

	existing, err := b.stores.Docs.IDs(baselineCollection)
	if err != nil {
		return SaveResult{}, err
	}
	setID := b.ids.allocate(existing)

	if err := fullSave(b.stores, baselineCollection, baselineBlobPrefix, b.Name(), setID, req, nil); err != nil {
		return SaveResult{}, err
	}
	return SaveResult{
		SetID:        setID,
		BytesWritten: b.stores.writtenBytes() - startBytes,
		WriteOps:     b.stores.writeOps() - startOps,
	}, nil
}

// Recover implements Approach: load metadata and architecture, then
// read all parameters sequentially from the single binary file.
func (b *Baseline) Recover(setID string) (*ModelSet, error) {
	meta, err := loadMeta(b.stores, baselineCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != b.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not Baseline", setID, meta.Approach)
	}
	return fullRecover(b.stores, baselineBlobPrefix, meta)
}

// SetIDs lists all sets saved by this approach, in save order.
func (b *Baseline) SetIDs() ([]string, error) {
	return b.stores.Docs.IDs(baselineCollection)
}
