package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 37
		hits := make([]atomic.Int32, n)
		err := Run(context.Background(), workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunSerialOrder(t *testing.T) {
	var order []int
	err := Run(context.Background(), 1, 5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial run out of order: %v", order)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Run(context.Background(), workers, 100, func(i int) error {
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
	}
}

func TestRunErrorStopsRemainingTasks(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(context.Background(), 2, 10000, func(i int) error {
		ran.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if n := ran.Load(); n > 4 {
		t.Fatalf("%d tasks ran after the first error", n)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := Run(ctx, workers, 10000, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n > 10+int32(workers) {
			t.Fatalf("workers=%d: %d tasks ran after cancellation", workers, n)
		}
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := Run(ctx, workers, 5, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: tasks ran under a cancelled context", workers)
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(context.Background(), 4, 0, func(i int) error { return errors.New("no") }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers must be at least 1")
	}
}
