// Package pool provides the bounded worker pool the management
// approaches use for their per-model work: parameter serialization and
// layer hashing on the save path, parameter decoding, diff application,
// and retraining on the recover path.
//
// The design follows the chunked fan-out idiom of parallel encoders:
// the caller partitions its work into n independent index-addressed
// tasks whose outputs land in disjoint, pre-sized slots (a slice entry,
// a sub-slice of one preallocated buffer). Workers pull indices from a
// shared counter, so results are bitwise independent of scheduling and
// a run with one worker is byte-identical to a run with many.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the default concurrency of the approaches:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes fn(0), fn(1), ..., fn(n-1) using at most workers
// goroutines and returns the first error encountered. After an error or
// a context cancellation, remaining tasks are skipped (tasks already
// running are allowed to finish). With workers <= 1 the tasks run
// serially on the calling goroutine, in index order.
//
// fn must be safe for concurrent invocation with distinct indices when
// workers > 1.
func Run(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}

	// Workers pull the next index from a shared counter; the first
	// error cancels the run and wins.
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
