package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

// saveProvenanceChain mirrors saveUpdateChain for the Provenance
// approach: U1 + cycles×U3 with real (small) deterministic training.
func saveProvenanceChain(t *testing.T, p *Provenance, st Stores, cycles int) (ids []string, truths []*ModelSet) {
	t.Helper()
	set := mustNewSet(t, 6)
	res := mustSave(t, p, SaveRequest{Set: set})
	ids = append(ids, res.SetID)
	truths = append(truths, set.Clone())
	for c := 1; c <= cycles; c++ {
		updates := runCycle(t, set, st.Datasets, c, []int{c % 6}, []int{(c + 2) % 6})
		res = mustSave(t, p, SaveRequest{
			Set: set, Base: ids[len(ids)-1], Updates: updates, Train: testTrainInfo(),
		})
		ids = append(ids, res.SetID)
		truths = append(truths, set.Clone())
	}
	return ids, truths
}

func TestProvenanceRecoveryIsBitExact(t *testing.T) {
	// The headline property: recovery by re-training reproduces the
	// saved models exactly, across a chain of derived sets.
	st := NewMemStores()
	p := NewProvenance(st)
	ids, truths := saveProvenanceChain(t, p, st, 3)
	for i, id := range ids {
		got := mustRecover(t, p, id)
		if !truths[i].Equal(got) {
			t.Fatalf("set %d (%s): provenance recovery is not bit-exact", i, id)
		}
	}
}

func TestProvenanceDerivedSavesTiny(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	set := mustNewSetArch(t, nn.FFNN48(), 20)
	resFull := mustSave(t, p, SaveRequest{Set: set})

	updates := runCycle(t, set, st.Datasets, 1, []int{0, 1}, []int{2})
	resDerived := mustSave(t, p, SaveRequest{
		Set: set, Base: resFull.SetID, Updates: updates, Train: testTrainInfo(),
	})
	// The paper: Provenance U3 storage is ~99.8% below the snapshot
	// approaches. With 20 (instead of 5000) FFNN-48 models the fixed
	// provenance payload weighs relatively more, but the derived save
	// must still be a small fraction of the full snapshot.
	if resDerived.BytesWritten*20 > resFull.BytesWritten {
		t.Fatalf("derived provenance save (%d B) not ≤ 5%% of full save (%d B)",
			resDerived.BytesWritten, resFull.BytesWritten)
	}
	// And independent of the parameter payload: no blob writes at all.
	var diff int64
	if ids, err := st.Blobs.Keys(); err == nil {
		for _, k := range ids {
			if strings.Contains(k, resDerived.SetID) {
				diff++
			}
		}
	}
	if diff != 0 {
		t.Fatalf("derived provenance save wrote %d blobs, want 0", diff)
	}
}

func TestProvenanceDerivedRequiresTrainInfo(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	set := mustNewSet(t, 3)
	res := mustSave(t, p, SaveRequest{Set: set})
	updates := runCycle(t, set, st.Datasets, 1, []int{0}, nil)
	if _, err := p.Save(SaveRequest{Set: set, Base: res.SetID, Updates: updates}); err == nil {
		t.Fatal("derived provenance save without training info accepted")
	}
}

func TestProvenanceRejectsUnknownDatasetRef(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	set := mustNewSet(t, 3)
	res := mustSave(t, p, SaveRequest{Set: set})
	bad := []ModelUpdate{{ModelIndex: 0, DatasetID: "ds-unknown", Seed: 1}}
	_, err := p.Save(SaveRequest{Set: set, Base: res.SetID, Updates: bad, Train: testTrainInfo()})
	if err == nil {
		t.Fatal("provenance save with unresolvable dataset reference accepted")
	}
}

func TestProvenanceRejectsInvalidTrainConfig(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	set := mustNewSet(t, 3)
	res := mustSave(t, p, SaveRequest{Set: set})
	info := testTrainInfo()
	info.Config.Epochs = 0
	if _, err := p.Save(SaveRequest{Set: set, Base: res.SetID, Train: info}); err == nil {
		t.Fatal("invalid training config accepted")
	}
}

func TestProvenanceEnvironmentMismatchRefused(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, _ := saveProvenanceChain(t, p, st, 1)

	// Forge a training document recorded on an incompatible environment.
	var train TrainInfo
	if err := st.Docs.Get(provenanceTrainCollection, ids[1], &train); err != nil {
		t.Fatal(err)
	}
	train.Environment.FrameworkVer = "nn-0.0.1-incompatible"
	if err := st.Docs.Insert(provenanceTrainCollection, ids[1], train); err != nil {
		t.Fatal(err)
	}
	_, err := p.Recover(ids[1])
	if err == nil || !strings.Contains(err.Error(), "environment") {
		t.Fatalf("environment mismatch not refused: %v", err)
	}
}

func TestProvenanceRecoveryBudgetRunsButInexact(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, truths := saveProvenanceChain(t, p, st, 2)

	p.RecoveryBudget = &RecoveryBudget{MaxUpdatesPerSet: 1, MaxSamples: 10, MaxEpochs: 1}
	got, err := p.Recover(ids[2])
	if err != nil {
		t.Fatalf("budgeted recovery failed: %v", err)
	}
	if got.Len() != truths[2].Len() {
		t.Fatal("budgeted recovery changed set size")
	}
	// The budget trades exactness for speed (the paper's own reduced
	// training); with 2 updates per cycle and budget 1 the result must
	// differ from the truth.
	if truths[2].Equal(got) {
		t.Fatal("budgeted recovery unexpectedly exact — budget had no effect")
	}

	p.RecoveryBudget = nil
	exact := mustRecover(t, p, ids[2])
	if !truths[2].Equal(exact) {
		t.Fatal("unbudgeted recovery no longer exact")
	}
}

func TestProvenanceChainDepth(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, _ := saveProvenanceChain(t, p, st, 2)
	for i, id := range ids {
		depth, err := p.ChainDepth(id)
		if err != nil {
			t.Fatal(err)
		}
		if depth != i {
			t.Errorf("set %s depth = %d, want %d", id, depth, i)
		}
	}
}

func TestProvenanceRecoverUnknownSet(t *testing.T) {
	p := NewProvenance(NewMemStores())
	if _, err := p.Recover("pv-404"); !errors.Is(err, ErrSetNotFound) {
		t.Fatal("unknown set recovered")
	}
}

func TestProvenanceDeletedUpdateDocDetected(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, _ := saveProvenanceChain(t, p, st, 1)
	if err := st.Docs.Delete(provenanceUpdateCollection, ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Recover(ids[1]); err == nil {
		t.Fatal("set with missing update records recovered")
	}
}

func TestProvenanceSnapshotIntervalBoundsChain(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	p.SnapshotInterval = 2

	set := mustNewSet(t, 6)
	res := mustSave(t, p, SaveRequest{Set: set})
	ids := []string{res.SetID}
	truths := []*ModelSet{set.Clone()}
	for c := 1; c <= 4; c++ {
		updates := runCycle(t, set, st.Datasets, c, []int{c % 6}, nil)
		res = mustSave(t, p, SaveRequest{
			Set: set, Base: ids[len(ids)-1], Updates: updates, Train: testTrainInfo(),
		})
		ids = append(ids, res.SetID)
		truths = append(truths, set.Clone())
	}
	for i, id := range ids {
		depth, err := p.ChainDepth(id)
		if err != nil {
			t.Fatal(err)
		}
		if depth >= p.SnapshotInterval {
			t.Errorf("set %s depth = %d, exceeds snapshot interval", id, depth)
		}
		got := mustRecover(t, p, id)
		if !truths[i].Equal(got) {
			t.Errorf("set %d recovered incorrectly with snapshots", i)
		}
	}
}

func TestProvenanceDeepChain(t *testing.T) {
	// Chains well beyond the paper's 3 cycles recover exactly.
	st := NewMemStores()
	p := NewProvenance(st)
	set := mustNewSet(t, 4)
	res := mustSave(t, p, SaveRequest{Set: set})
	base := res.SetID
	for c := 1; c <= 10; c++ {
		updates := runCycle(t, set, st.Datasets, c, []int{c % 4}, nil)
		r, err := p.Save(SaveRequest{
			Set: set, Base: base, Updates: updates, Train: testTrainInfo(),
		})
		if err != nil {
			t.Fatal(err)
		}
		base = r.SetID
	}
	depth, err := p.ChainDepth(base)
	if err != nil {
		t.Fatal(err)
	}
	if depth != 10 {
		t.Fatalf("depth = %d, want 10", depth)
	}
	got := mustRecover(t, p, base)
	if !set.Equal(got) {
		t.Fatal("10-level provenance chain not bit-exact")
	}
}
