package core

import (
	"context"
	"fmt"

	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/env"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/tensor"
)

// Provenance is the paper's provenance approach: derived model sets are
// represented by the information needed to reproduce their training
// rather than by parameters. Per derived set it saves the model
// metadata, the training info, and the environment exactly once, plus
// one dataset *reference* per updated model (optimization O2: the
// pipeline information is not duplicated per model, and the training
// data — which exists anyway — is referenced, not copied).
//
// Recovery is recursive and compute-bound: recover the base set, then
// "update every model by deterministically repeating its training on
// the associated dataset". Because this library's trainer is
// bit-deterministic, recovery is exact.
type Provenance struct {
	stores  Stores
	ids     idAllocator
	workers int
	metrics *approachObs
	dedup   bool
	codec   string

	// RecoveryBudget, when non-nil, caps the retraining work during
	// recovery — the paper's own measurement trick ("we — exclusively
	// for this approach — only train one model with reduced data per
	// iteration. This leads to the same trends for the TTR"). Budgeted
	// recovery preserves timing shape but is NOT exact; leave nil for
	// correct recovery.
	RecoveryBudget *RecoveryBudget
	// SnapshotInterval k > 0 forces a full snapshot whenever the
	// recovery chain would otherwise grow to k, bounding the recursive
	// retraining exactly like Update's snapshots bound its diff chains
	// (§2.2's intermediate-snapshot remedy applied to provenance).
	// 0 disables snapshots (the paper's evaluated configuration).
	SnapshotInterval int
}

// RecoveryBudget bounds provenance retraining during recovery.
type RecoveryBudget struct {
	// MaxUpdatesPerSet caps how many recorded updates are re-executed
	// per derived set (0 = all).
	MaxUpdatesPerSet int
	// MaxSamples truncates each training dataset (0 = full data).
	MaxSamples int
	// MaxEpochs caps the epochs of each re-executed training
	// (0 = recorded value).
	MaxEpochs int
}

// Collections and blob namespace of Provenance.
const (
	provenanceCollection       = "provenance_sets"
	provenanceTrainCollection  = "provenance_train"
	provenanceUpdateCollection = "provenance_updates"
	provenanceBlobPrefix       = "provenance"
)

// NewProvenance returns a Provenance approach over the given stores.
func NewProvenance(stores Stores, opts ...Option) *Provenance {
	s := newSettings(opts)
	s.attachCache(stores)
	return &Provenance{stores: stores, ids: idAllocator{prefix: "pv"}, workers: s.workers,
		metrics: newApproachObs(s.metrics, "Provenance"), dedup: s.dedup, codec: s.codec}
}

// Name implements Approach.
func (p *Provenance) Name() string { return "Provenance" }

// updatesDoc persists the per-model update records of one derived set.
type updatesDoc struct {
	Updates []ModelUpdate `json:"updates"`
}

// SaveContext implements Approach. Initial sets are saved with
// Baseline's logic (complete representations); derived sets save
// provenance only.
func (p *Provenance) SaveContext(ctx context.Context, req SaveRequest) (SaveResult, error) {
	sp := p.metrics.begin("save", "")
	res, err := p.save(ctx, req)
	sp.SetID = res.SetID
	p.metrics.endSave(sp, res, err)
	return res, err
}

func (p *Provenance) save(ctx context.Context, req SaveRequest) (SaveResult, error) {
	if err := validateSave(req); err != nil {
		return SaveResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return SaveResult{}, err
	}

	existing, err := p.stores.Docs.IDs(provenanceCollection)
	if err != nil {
		return SaveResult{}, err
	}
	setID, err := chooseSetID(req, &p.ids, existing)
	if err != nil {
		return SaveResult{}, err
	}

	full := req.Base == ""
	if !full && p.SnapshotInterval > 0 {
		baseMeta, err := loadMeta(p.stores, provenanceCollection, req.Base)
		if err != nil {
			return SaveResult{}, fmt.Errorf("core: provenance save: %w", err)
		}
		if baseMeta.Depth+1 >= p.SnapshotInterval {
			// Cut the retraining chain with a full snapshot.
			full = true
		}
	}
	cdc, err := resolveCodec(p.codec)
	if err != nil {
		return SaveResult{}, err
	}
	op := newSaveOp(p.stores, p.dedup, cdc, p.codec, p.workers, p.metrics.reg)
	if full {
		err = fullSave(ctx, op, provenanceCollection, provenanceBlobPrefix, p.Name(), setID, req, nil, nil, p.workers)
	} else {
		err = p.saveDerived(ctx, op, setID, req)
	}
	if err != nil {
		op.rollback()
		return SaveResult{}, err
	}
	return op.result(setID), nil
}

// Save implements Approach.
//
// Deprecated: use SaveContext.
func (p *Provenance) Save(req SaveRequest) (SaveResult, error) {
	return p.SaveContext(context.Background(), req)
}

func (p *Provenance) saveDerived(ctx context.Context, op *saveOp, setID string, req SaveRequest) error {
	if req.Train == nil {
		return fmt.Errorf("core: provenance save of a derived set requires training info")
	}
	if err := req.Train.Config.Validate(); err != nil {
		return fmt.Errorf("core: provenance training config: %w", err)
	}
	baseMeta, err := loadMeta(p.stores, provenanceCollection, req.Base)
	if err != nil {
		return fmt.Errorf("core: provenance save: %w", err)
	}
	// Recovery replays training on top of the base's models, so a base
	// with a different architecture or model count can never reproduce
	// this set.
	if baseMeta.ArchName != req.Set.Arch.Name || baseMeta.ParamCount != req.Set.Arch.ParamCount() {
		return fmt.Errorf("core: provenance save: base %q is %q with %d params, set is %q with %d params: %w",
			req.Base, baseMeta.ArchName, baseMeta.ParamCount,
			req.Set.Arch.Name, req.Set.Arch.ParamCount(), ErrBaseMismatch)
	}
	if baseMeta.NumModels != len(req.Set.Models) {
		return fmt.Errorf("core: provenance save: base has %d models, set has %d: %w",
			baseMeta.NumModels, len(req.Set.Models), ErrBaseMismatch)
	}
	// Saving provenance that cannot be resolved would make the set
	// unrecoverable; fail fast instead.
	for _, u := range req.Updates {
		if _, err := p.stores.Datasets.Spec(u.DatasetID); err != nil {
			return fmt.Errorf("core: provenance save: update of model %d: %w", u.ModelIndex, err)
		}
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	// Training info and environment once per set, references per model.
	if err := op.insertDoc(provenanceTrainCollection, setID, req.Train); err != nil {
		return fmt.Errorf("core: writing training info: %w", err)
	}
	if err := op.insertDoc(provenanceUpdateCollection, setID, updatesDoc{Updates: req.Updates}); err != nil {
		return fmt.Errorf("core: writing update records: %w", err)
	}
	meta := setMeta{
		SetID: setID, Approach: p.Name(), Kind: "derived",
		Base: req.Base, Depth: baseMeta.Depth + 1,
		ArchName: req.Set.Arch.Name, NumModels: len(req.Set.Models),
		ParamCount: req.Set.Arch.ParamCount(), Codec: op.codecID,
	}
	if err := op.insertDoc(provenanceCollection, setID, meta); err != nil {
		return fmt.Errorf("core: writing metadata: %w", err)
	}
	return nil
}

// RecoverContext implements Approach. Re-executed trainings are the
// single most compute-heavy loop in the repository; updates are grouped
// by model and retrained on the worker pool — parallel across models,
// in recorded order within each model, so the result is bit-identical
// at any concurrency.
func (p *Provenance) RecoverContext(ctx context.Context, setID string) (*ModelSet, error) {
	sp := p.metrics.begin("recover", setID)
	visited := map[string]bool{}
	set, err := p.recover(ctx, setID, visited)
	p.metrics.endRecover(sp, len(visited)-1, err)
	return set, err
}

func (p *Provenance) recover(ctx context.Context, setID string, visited map[string]bool) (*ModelSet, error) {
	if err := checkChain(visited, setID); err != nil {
		return nil, err
	}
	meta, err := loadMeta(p.stores, provenanceCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != p.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not Provenance", setID, meta.Approach)
	}
	if meta.Kind == "full" {
		return fullRecover(ctx, p.stores, provenanceBlobPrefix, meta, p.workers)
	}

	set, err := p.recover(ctx, meta.Base, visited)
	if err != nil {
		return nil, fmt.Errorf("core: recovering base of %q: %w", setID, err)
	}

	var train TrainInfo
	if err := p.stores.Docs.Get(provenanceTrainCollection, setID, &train); err != nil {
		return nil, fmt.Errorf("core: loading training info: %w", err)
	}
	// Exact reproduction is only defined for a matching environment.
	if current := env.Capture(); !train.Environment.Equal(current) {
		return nil, fmt.Errorf("core: recorded environment (%s/%s, %s) does not match current (%s/%s, %s); provenance recovery would not reproduce the saved models",
			train.Environment.OS, train.Environment.Arch, train.Environment.FrameworkVer,
			current.OS, current.Arch, current.FrameworkVer)
	}
	var updates updatesDoc
	if err := p.stores.Docs.Get(provenanceUpdateCollection, setID, &updates); err != nil {
		return nil, fmt.Errorf("core: loading update records: %w", err)
	}

	todo := updates.Updates
	if b := p.RecoveryBudget; b != nil && b.MaxUpdatesPerSet > 0 && len(todo) > b.MaxUpdatesPerSet {
		todo = todo[:b.MaxUpdatesPerSet]
	}
	// Group the re-executions by model: updates of distinct models are
	// independent, updates of one model must replay in recorded order.
	order := make([]int, 0, len(todo))
	perModel := make(map[int][]ModelUpdate, len(todo))
	for _, u := range todo {
		if u.ModelIndex < 0 || u.ModelIndex >= len(set.Models) {
			return nil, fmt.Errorf("core: update record references model %d outside set of %d",
				u.ModelIndex, len(set.Models))
		}
		if _, ok := perModel[u.ModelIndex]; !ok {
			order = append(order, u.ModelIndex)
		}
		perModel[u.ModelIndex] = append(perModel[u.ModelIndex], u)
	}
	err = pool.Run(ctx, p.workers, len(order), func(k int) error {
		for _, u := range perModel[order[k]] {
			data, err := p.stores.Datasets.Materialize(u.DatasetID)
			if err != nil {
				return fmt.Errorf("core: resolving dataset of model %d: %w", u.ModelIndex, err)
			}
			cfg := train.Config
			cfg.Seed = u.Seed
			cfg.TrainLayers = u.TrainLayers

			var trainData nn.Data = data
			if b := p.RecoveryBudget; b != nil {
				if b.MaxSamples > 0 && data.Len() > b.MaxSamples {
					trainData = truncatedData{data: data, n: b.MaxSamples}
				}
				if b.MaxEpochs > 0 && cfg.Epochs > b.MaxEpochs {
					cfg.Epochs = b.MaxEpochs
				}
			}
			if _, err := nn.Train(set.Models[u.ModelIndex], trainData, cfg); err != nil {
				return fmt.Errorf("core: re-training model %d: %w", u.ModelIndex, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// Recover implements Approach.
//
// Deprecated: use RecoverContext.
func (p *Provenance) Recover(setID string) (*ModelSet, error) {
	return p.RecoverContext(context.Background(), setID)
}

// SetIDs lists all sets saved by this approach, in save order.
func (p *Provenance) SetIDs() ([]string, error) {
	return p.stores.Docs.IDs(provenanceCollection)
}

// ChainDepth returns the recovery-chain length of setID.
func (p *Provenance) ChainDepth(setID string) (int, error) {
	meta, err := loadMeta(p.stores, provenanceCollection, setID)
	if err != nil {
		return 0, err
	}
	return meta.Depth, nil
}

// truncatedData exposes only the first n samples of data.
type truncatedData struct {
	data nn.Data
	n    int
}

// Len implements nn.Data.
func (t truncatedData) Len() int { return t.n }

// Sample implements nn.Data.
func (t truncatedData) Sample(i int) (*tensor.Tensor, *tensor.Tensor) {
	return t.data.Sample(i)
}
