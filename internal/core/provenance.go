package core

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/env"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/tensor"
)

// Provenance is the paper's provenance approach: derived model sets are
// represented by the information needed to reproduce their training
// rather than by parameters. Per derived set it saves the model
// metadata, the training info, and the environment exactly once, plus
// one dataset *reference* per updated model (optimization O2: the
// pipeline information is not duplicated per model, and the training
// data — which exists anyway — is referenced, not copied).
//
// Recovery is recursive and compute-bound: recover the base set, then
// "update every model by deterministically repeating its training on
// the associated dataset". Because this library's trainer is
// bit-deterministic, recovery is exact.
type Provenance struct {
	stores Stores
	ids    idAllocator

	// RecoveryBudget, when non-nil, caps the retraining work during
	// recovery — the paper's own measurement trick ("we — exclusively
	// for this approach — only train one model with reduced data per
	// iteration. This leads to the same trends for the TTR"). Budgeted
	// recovery preserves timing shape but is NOT exact; leave nil for
	// correct recovery.
	RecoveryBudget *RecoveryBudget
	// SnapshotInterval k > 0 forces a full snapshot whenever the
	// recovery chain would otherwise grow to k, bounding the recursive
	// retraining exactly like Update's snapshots bound its diff chains
	// (§2.2's intermediate-snapshot remedy applied to provenance).
	// 0 disables snapshots (the paper's evaluated configuration).
	SnapshotInterval int
}

// RecoveryBudget bounds provenance retraining during recovery.
type RecoveryBudget struct {
	// MaxUpdatesPerSet caps how many recorded updates are re-executed
	// per derived set (0 = all).
	MaxUpdatesPerSet int
	// MaxSamples truncates each training dataset (0 = full data).
	MaxSamples int
	// MaxEpochs caps the epochs of each re-executed training
	// (0 = recorded value).
	MaxEpochs int
}

// Collections and blob namespace of Provenance.
const (
	provenanceCollection       = "provenance_sets"
	provenanceTrainCollection  = "provenance_train"
	provenanceUpdateCollection = "provenance_updates"
	provenanceBlobPrefix       = "provenance"
)

// NewProvenance returns a Provenance approach over the given stores.
func NewProvenance(stores Stores) *Provenance {
	return &Provenance{stores: stores, ids: idAllocator{prefix: "pv"}}
}

// Name implements Approach.
func (p *Provenance) Name() string { return "Provenance" }

// updatesDoc persists the per-model update records of one derived set.
type updatesDoc struct {
	Updates []ModelUpdate `json:"updates"`
}

// Save implements Approach. Initial sets are saved with Baseline's
// logic (complete representations); derived sets save provenance only.
func (p *Provenance) Save(req SaveRequest) (SaveResult, error) {
	if err := validateSave(req); err != nil {
		return SaveResult{}, err
	}
	startBytes := p.stores.writtenBytes()
	startOps := p.stores.writeOps()

	existing, err := p.stores.Docs.IDs(provenanceCollection)
	if err != nil {
		return SaveResult{}, err
	}
	setID := p.ids.allocate(existing)

	full := req.Base == ""
	if !full && p.SnapshotInterval > 0 {
		baseMeta, err := loadMeta(p.stores, provenanceCollection, req.Base)
		if err != nil {
			return SaveResult{}, fmt.Errorf("core: provenance save: %w", err)
		}
		if baseMeta.Depth+1 >= p.SnapshotInterval {
			// Cut the retraining chain with a full snapshot.
			full = true
		}
	}
	if full {
		if err := fullSave(p.stores, provenanceCollection, provenanceBlobPrefix, p.Name(), setID, req, nil); err != nil {
			return SaveResult{}, err
		}
	} else {
		if err := p.saveDerived(setID, req); err != nil {
			return SaveResult{}, err
		}
	}
	return SaveResult{
		SetID:        setID,
		BytesWritten: p.stores.writtenBytes() - startBytes,
		WriteOps:     p.stores.writeOps() - startOps,
	}, nil
}

func (p *Provenance) saveDerived(setID string, req SaveRequest) error {
	if req.Train == nil {
		return fmt.Errorf("core: provenance save of a derived set requires training info")
	}
	if err := req.Train.Config.Validate(); err != nil {
		return fmt.Errorf("core: provenance training config: %w", err)
	}
	baseMeta, err := loadMeta(p.stores, provenanceCollection, req.Base)
	if err != nil {
		return fmt.Errorf("core: provenance save: %w", err)
	}
	if baseMeta.NumModels != len(req.Set.Models) {
		return fmt.Errorf("core: provenance save: base has %d models, set has %d",
			baseMeta.NumModels, len(req.Set.Models))
	}
	// Saving provenance that cannot be resolved would make the set
	// unrecoverable; fail fast instead.
	for _, u := range req.Updates {
		if _, err := p.stores.Datasets.Spec(u.DatasetID); err != nil {
			return fmt.Errorf("core: provenance save: update of model %d: %w", u.ModelIndex, err)
		}
	}

	// Training info and environment once per set, references per model.
	if err := p.stores.Docs.Insert(provenanceTrainCollection, setID, req.Train); err != nil {
		return fmt.Errorf("core: writing training info: %w", err)
	}
	if err := p.stores.Docs.Insert(provenanceUpdateCollection, setID, updatesDoc{Updates: req.Updates}); err != nil {
		return fmt.Errorf("core: writing update records: %w", err)
	}
	meta := setMeta{
		SetID: setID, Approach: p.Name(), Kind: "derived",
		Base: req.Base, Depth: baseMeta.Depth + 1,
		ArchName: req.Set.Arch.Name, NumModels: len(req.Set.Models),
		ParamCount: req.Set.Arch.ParamCount(),
	}
	if err := p.stores.Docs.Insert(provenanceCollection, setID, meta); err != nil {
		return fmt.Errorf("core: writing metadata: %w", err)
	}
	return nil
}

// Recover implements Approach.
func (p *Provenance) Recover(setID string) (*ModelSet, error) {
	meta, err := loadMeta(p.stores, provenanceCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != p.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not Provenance", setID, meta.Approach)
	}
	if meta.Kind == "full" {
		return fullRecover(p.stores, provenanceBlobPrefix, meta)
	}

	set, err := p.Recover(meta.Base)
	if err != nil {
		return nil, fmt.Errorf("core: recovering base of %q: %w", setID, err)
	}

	var train TrainInfo
	if err := p.stores.Docs.Get(provenanceTrainCollection, setID, &train); err != nil {
		return nil, fmt.Errorf("core: loading training info: %w", err)
	}
	// Exact reproduction is only defined for a matching environment.
	if current := env.Capture(); !train.Environment.Equal(current) {
		return nil, fmt.Errorf("core: recorded environment (%s/%s, %s) does not match current (%s/%s, %s); provenance recovery would not reproduce the saved models",
			train.Environment.OS, train.Environment.Arch, train.Environment.FrameworkVer,
			current.OS, current.Arch, current.FrameworkVer)
	}
	var updates updatesDoc
	if err := p.stores.Docs.Get(provenanceUpdateCollection, setID, &updates); err != nil {
		return nil, fmt.Errorf("core: loading update records: %w", err)
	}

	todo := updates.Updates
	if b := p.RecoveryBudget; b != nil && b.MaxUpdatesPerSet > 0 && len(todo) > b.MaxUpdatesPerSet {
		todo = todo[:b.MaxUpdatesPerSet]
	}
	for _, u := range todo {
		if u.ModelIndex < 0 || u.ModelIndex >= len(set.Models) {
			return nil, fmt.Errorf("core: update record references model %d outside set of %d",
				u.ModelIndex, len(set.Models))
		}
		data, err := p.stores.Datasets.Materialize(u.DatasetID)
		if err != nil {
			return nil, fmt.Errorf("core: resolving dataset of model %d: %w", u.ModelIndex, err)
		}
		cfg := train.Config
		cfg.Seed = u.Seed
		cfg.TrainLayers = u.TrainLayers

		var trainData nn.Data = data
		if b := p.RecoveryBudget; b != nil {
			if b.MaxSamples > 0 && data.Len() > b.MaxSamples {
				trainData = truncatedData{data: data, n: b.MaxSamples}
			}
			if b.MaxEpochs > 0 && cfg.Epochs > b.MaxEpochs {
				cfg.Epochs = b.MaxEpochs
			}
		}
		if _, err := nn.Train(set.Models[u.ModelIndex], trainData, cfg); err != nil {
			return nil, fmt.Errorf("core: re-training model %d: %w", u.ModelIndex, err)
		}
	}
	return set, nil
}

// SetIDs lists all sets saved by this approach, in save order.
func (p *Provenance) SetIDs() ([]string, error) {
	return p.stores.Docs.IDs(provenanceCollection)
}

// ChainDepth returns the recovery-chain length of setID.
func (p *Provenance) ChainDepth(setID string) (int, error) {
	meta, err := loadMeta(p.stores, provenanceCollection, setID)
	if err != nil {
		return 0, err
	}
	return meta.Depth, nil
}

// truncatedData exposes only the first n samples of data.
type truncatedData struct {
	data nn.Data
	n    int
}

// Len implements nn.Data.
func (t truncatedData) Len() int { return t.n }

// Sample implements nn.Data.
func (t truncatedData) Sample(i int) (*tensor.Tensor, *tensor.Tensor) {
	return t.data.Sample(i)
}
