// Package core implements the paper's contribution: four approaches to
// multi-model management, i.e. saving and recovering *sets* of deep
// learning models that share one architecture but have different
// parameters.
//
//   - MMlibBase saves every model of a set individually, with per-model
//     metadata, architecture, parameter dictionary keys, pipeline code,
//     and environment info — the reference point the paper compares
//     against (its prior work's baseline).
//   - Baseline saves metadata and architecture once per set and
//     concatenates all parameters into a single binary file
//     (optimizations O1 "redundant model data" and O3 "write overhead").
//   - Update saves only hash-detected changed layers relative to a base
//     set (plus the hash info itself), recovering recursively.
//   - Provenance saves training provenance (pipeline info once, one
//     dataset reference per updated model) instead of parameters,
//     recovering by deterministically re-executing training
//     (optimizations O2 "redundant provenance data" and O3).
//
// All four persist into the same two stores (a document store for
// metadata and a blob store for binaries) plus an external dataset
// registry, so their storage consumption, time-to-save, and
// time-to-recover are directly comparable.
package core

import (
	"context"
	"fmt"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/env"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
)

// ModelSet is an in-memory set of models sharing one architecture —
// the unit all approaches save and recover.
type ModelSet struct {
	Arch   *nn.Architecture
	Models []*nn.Model
}

// NewModelSet builds n freshly initialized models of arch. Model i is
// seeded with a per-index derivation of seed, so fleets are
// reproducible while every model starts distinct.
func NewModelSet(arch *nn.Architecture, n int, seed uint64) (*ModelSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: model set size must be positive, got %d", n)
	}
	set := &ModelSet{Arch: arch, Models: make([]*nn.Model, n)}
	for i := range set.Models {
		m, err := nn.NewModel(arch, modelSeed(seed, i))
		if err != nil {
			return nil, err
		}
		set.Models[i] = m
	}
	return set, nil
}

// modelSeed derives the init seed of model i from a fleet seed.
func modelSeed(fleetSeed uint64, i int) uint64 {
	return fleetSeed*0x9e3779b97f4a7c15 + uint64(i) + 1
}

// Clone deep-copies the set (models and their parameters).
func (s *ModelSet) Clone() *ModelSet {
	c := &ModelSet{Arch: s.Arch, Models: make([]*nn.Model, len(s.Models))}
	for i, m := range s.Models {
		c.Models[i] = m.Clone()
	}
	return c
}

// Len returns the number of models in the set.
func (s *ModelSet) Len() int { return len(s.Models) }

// Equal reports whether two sets hold bit-identical parameters.
func (s *ModelSet) Equal(o *ModelSet) bool {
	if len(s.Models) != len(o.Models) {
		return false
	}
	for i := range s.Models {
		if !s.Models[i].ParamsEqual(o.Models[i]) {
			return false
		}
	}
	return true
}

// Stores bundles the storage services an approach persists into. The
// dataset registry is the *external* training-data store: referenced,
// never written, by the approaches (optimization O2).
type Stores struct {
	Docs     *docstore.Store
	Blobs    *blobstore.Store
	Datasets *dataset.Registry
}

// NewMemStores returns uninstrumented in-memory stores, convenient for
// tests and library quickstarts.
func NewMemStores() Stores {
	return Stores{
		Docs:     docstore.NewMem(),
		Blobs:    blobstore.NewMem(),
		Datasets: dataset.NewRegistry(),
	}
}

// TrainInfo is the training-pipeline description shared by all models
// of one update cycle. The Provenance approach persists it once per set
// (MMlib-style management would persist the code and environment per
// model).
type TrainInfo struct {
	// Config holds the cycle's shared hyperparameters. Per-model seed
	// and layer selection live in ModelUpdate.
	Config nn.TrainConfig `json:"config"`
	// Environment is the captured execution environment.
	Environment env.Info `json:"environment"`
	// PipelineCode is the source of the training pipeline. Exact
	// reproduction requires the pipeline itself to be versioned.
	PipelineCode string `json:"pipeline_code"`
}

// ModelUpdate records that one model of the set was retrained in this
// cycle: on which data, which layers (empty = full update), and with
// which shuffle seed.
type ModelUpdate struct {
	ModelIndex  int      `json:"model_index"`
	DatasetID   string   `json:"dataset_id"`
	TrainLayers []string `json:"train_layers,omitempty"`
	Seed        uint64   `json:"seed"`
}

// SaveRequest describes one save operation.
type SaveRequest struct {
	// Set is the current state of all models.
	Set *ModelSet
	// Base is the ID of the previously saved set this one derives from.
	// Empty means an initial save (the paper's use case U1).
	Base string
	// Updates lists the models retrained since Base (the paper's use
	// case U3). Approaches that save full representations ignore it;
	// Provenance persists it instead of parameters.
	Updates []ModelUpdate
	// Train is the cycle's training-pipeline description. Required by
	// Provenance for derived saves.
	Train *TrainInfo
	// SetID, when non-empty, is a caller-chosen ID to save under
	// instead of drawing from the approach's sequential allocator. The
	// cluster layer depends on it: every replica of one logical save
	// must land under the same ID on every owner node, which
	// per-node counters cannot guarantee. The ID must be a safe path
	// segment (letters, digits, '.', '_', '-', at most 120 bytes,
	// starting with a letter or digit); an ID already present in the
	// approach's namespace fails the save with ErrSetExists.
	SetID string
}

// SaveResult reports what a save cost.
type SaveResult struct {
	// SetID identifies the saved set for later recovery.
	SetID string
	// BytesWritten is the storage consumed by this save across the
	// document and blob stores (the paper's storage-consumption metric;
	// referenced datasets are excluded, matching the paper).
	BytesWritten int64
	// WriteOps is the number of store write operations issued — the
	// quantity optimization O3 minimizes.
	WriteOps int64
}

// Approach is a multi-model management strategy.
//
// The context-aware methods are the primary API: per-model work (
// serialization, hashing, decoding, retraining) runs on the approach's
// worker pool (see WithConcurrency) and honors ctx cancellation. A
// cancelled or failed save rolls back the artifacts it already wrote,
// so the store never holds a partially saved set.
type Approach interface {
	// Name returns the approach's evaluation label.
	Name() string
	// SaveContext persists the model set and returns its new set ID.
	SaveContext(ctx context.Context, req SaveRequest) (SaveResult, error)
	// RecoverContext loads the set saved under setID, exactly as saved
	// (Provenance with a recovery budget is the documented exception).
	// Unknown set IDs return an error wrapping ErrSetNotFound.
	RecoverContext(ctx context.Context, setID string) (*ModelSet, error)
	// Save persists the model set and returns its new set ID.
	//
	// Deprecated: use SaveContext. Save is SaveContext with
	// context.Background().
	Save(req SaveRequest) (SaveResult, error)
	// Recover loads the set saved under setID.
	//
	// Deprecated: use RecoverContext. Recover is RecoverContext with
	// context.Background().
	Recover(setID string) (*ModelSet, error)
}

// validateSave checks the universally required request fields.
func validateSave(req SaveRequest) error {
	if req.Set == nil || len(req.Set.Models) == 0 {
		return fmt.Errorf("core: save requires a non-empty model set")
	}
	for _, m := range req.Set.Models {
		if m.Arch.Name != req.Set.Arch.Name {
			return fmt.Errorf("core: model architecture %q does not match set architecture %q",
				m.Arch.Name, req.Set.Arch.Name)
		}
	}
	for _, u := range req.Updates {
		if u.ModelIndex < 0 || u.ModelIndex >= len(req.Set.Models) {
			return fmt.Errorf("core: update references model %d outside set of %d",
				u.ModelIndex, len(req.Set.Models))
		}
	}
	if req.SetID != "" {
		if err := ValidateSetID(req.SetID); err != nil {
			return err
		}
	}
	return nil
}

// PipelineCode is a snapshot of the training-pipeline source recorded
// in provenance (and redundantly per model by MMlibBase). It mirrors
// the pipeline actually implemented by this library so that a recovered
// provenance record documents real behaviour.
const PipelineCode = `# Training pipeline recorded for provenance-based model recovery.
#
# Recovery contract: given (base parameters, dataset reference, config,
# seed), re-executing this pipeline reproduces the saved model
# parameters bit-for-bit. All randomness is derived from the recorded
# seed; data pre-processing (normalization) is part of the dataset
# generator and keyed by the dataset reference.

def update_model(base_model, dataset_ref, config, seed):
    data = dataset_registry.materialize(dataset_ref)   # normalized samples
    model = base_model.clone()
    rng = SplitMix64(seed).derive("shuffle")
    order = list(range(len(data)))
    for epoch in range(config.epochs):
        rng.shuffle(order)
        for batch in chunks(order, config.batch_size):
            grads = zero_like(model.trainable(config.train_layers))
            for i in batch:
                x, y = data[i]
                pred = model.forward(x)
                loss, dpred = config.loss(pred, y)
                grads += model.backward(dpred)
            model.trainable(config.train_layers).axpy(
                -config.learning_rate / len(batch), grads)
    return model

# Environment constraints for exact reproduction:
#  - framework version must match the recorded environment snapshot
#  - float32 parameter arithmetic, float64 loss accumulation
#  - single-threaded gradient accumulation in sample order
`
