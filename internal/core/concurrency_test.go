package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// approachesUnderTest builds all four approaches over st with the given
// concurrency.
func approachesUnderTest(st Stores, workers int) []Approach {
	opt := WithConcurrency(workers)
	return []Approach{
		NewBaseline(st, opt),
		NewUpdate(st, opt),
		NewProvenance(st, opt),
		NewMMlibBase(st, opt),
	}
}

// TestParallelSaveDeterministic saves the same scenario serially and
// with 8 workers and requires identical set IDs, identical save costs,
// byte-identical blob contents, and bit-identical recovered models —
// concurrency must be a pure throughput knob.
func TestParallelSaveDeterministic(t *testing.T) {
	reg := dataset.NewRegistry()
	set := mustNewSet(t, 12)
	updates := runCycle(t, set, reg, 1, []int{2}, []int{5, 9})
	finalState := set.Clone()

	for i := range approachesUnderTest(NewMemStores(), 1) {
		stSerial := Stores{Docs: NewMemStores().Docs, Blobs: NewMemStores().Blobs, Datasets: reg}
		stParallel := Stores{Docs: NewMemStores().Docs, Blobs: NewMemStores().Blobs, Datasets: reg}
		serial := approachesUnderTest(stSerial, 1)[i]
		parallel := approachesUnderTest(stParallel, 8)[i]
		t.Run(serial.Name(), func(t *testing.T) {
			ctx := context.Background()
			// U1: the initial full save. Use the pre-cycle state so the
			// derived save below has honest deltas.
			initial := mustNewSet(t, 12)
			reqs := []SaveRequest{
				{Set: initial},
				{Set: finalState, Updates: updates, Train: testTrainInfo()},
			}
			var ids [2][]string
			for uc, req := range reqs {
				if uc == 1 {
					req.Base = ids[0][0]
				}
				resSerial, err := serial.SaveContext(ctx, req)
				if err != nil {
					t.Fatalf("serial save %d: %v", uc, err)
				}
				reqP := req
				if uc == 1 {
					reqP.Base = ids[1][0]
				}
				resParallel, err := parallel.SaveContext(ctx, reqP)
				if err != nil {
					t.Fatalf("parallel save %d: %v", uc, err)
				}
				if resSerial.SetID != resParallel.SetID {
					t.Fatalf("save %d: set ID %q (serial) vs %q (8 workers)", uc, resSerial.SetID, resParallel.SetID)
				}
				if resSerial.BytesWritten != resParallel.BytesWritten || resSerial.WriteOps != resParallel.WriteOps {
					t.Errorf("save %d: cost (%d B, %d ops) serial vs (%d B, %d ops) parallel",
						uc, resSerial.BytesWritten, resSerial.WriteOps, resParallel.BytesWritten, resParallel.WriteOps)
				}
				ids[0] = append(ids[0], resSerial.SetID)
				ids[1] = append(ids[1], resParallel.SetID)
			}

			// Every stored blob must be byte-identical.
			keysSerial, err := stSerial.Blobs.Keys()
			if err != nil {
				t.Fatal(err)
			}
			keysParallel, err := stParallel.Blobs.Keys()
			if err != nil {
				t.Fatal(err)
			}
			if len(keysSerial) != len(keysParallel) {
				t.Fatalf("blob keys: %v serial vs %v parallel", keysSerial, keysParallel)
			}
			for _, k := range keysSerial {
				a, err := stSerial.Blobs.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				b, err := stParallel.Blobs.Get(k)
				if err != nil {
					t.Fatalf("blob %q missing from parallel store: %v", k, err)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("blob %q differs between serial and parallel save", k)
				}
			}

			// Both recoveries must reproduce the final state bit-exactly.
			for uc, want := range []*ModelSet{initial, finalState} {
				gotSerial, err := serial.RecoverContext(ctx, ids[0][uc])
				if err != nil {
					t.Fatalf("serial recover %d: %v", uc, err)
				}
				gotParallel, err := parallel.RecoverContext(ctx, ids[1][uc])
				if err != nil {
					t.Fatalf("parallel recover %d: %v", uc, err)
				}
				if !want.Equal(gotSerial) || !want.Equal(gotParallel) {
					t.Errorf("use case %d: recovered parameters differ from saved state", uc)
				}
			}

			// Selective recovery must be deterministic too.
			prSerial, ok := serial.(PartialRecoverer)
			if !ok {
				return
			}
			prParallel := parallel.(PartialRecoverer)
			a, err := prSerial.RecoverModelsContext(ctx, ids[0][1], []int{2, 9})
			if err != nil {
				t.Fatalf("serial selective recover: %v", err)
			}
			b, err := prParallel.RecoverModelsContext(ctx, ids[1][1], []int{2, 9})
			if err != nil {
				t.Fatalf("parallel selective recover: %v", err)
			}
			for _, idx := range []int{2, 9} {
				if !finalState.Models[idx].ParamsEqual(a.Models[idx]) || !finalState.Models[idx].ParamsEqual(b.Models[idx]) {
					t.Errorf("selective recovery of model %d not bit-identical", idx)
				}
			}
		})
	}
}

// cancellingBackend cancels a context after a fixed number of Puts,
// simulating an interrupt that arrives while a save is writing.
type cancellingBackend struct {
	backend.Backend
	mu     sync.Mutex
	after  int
	cancel context.CancelFunc
}

func (c *cancellingBackend) Put(key string, data []byte) error {
	err := c.Backend.Put(key, data)
	c.mu.Lock()
	c.after--
	if c.after == 0 {
		c.cancel()
	}
	c.mu.Unlock()
	return err
}

// TestSaveCancellationLeavesNoOrphans interrupts a save after its first
// blob write and requires full rollback: no blobs, no documents, and a
// clean verifier report.
func TestSaveCancellationLeavesNoOrphans(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cb := &cancellingBackend{Backend: backend.NewMem(), after: 1, cancel: cancel}
	st := NewMemStores()
	st.Blobs = blobstore.New(cb, latency.CostModel{}, nil)

	b := NewBaseline(st, WithConcurrency(4))
	_, err := b.SaveContext(ctx, SaveRequest{Set: mustNewSet(t, 8)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled save returned %v, want context.Canceled", err)
	}

	keys, err := st.Blobs.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("cancelled save left orphaned blobs: %v", keys)
	}
	ids, err := st.Docs.IDs(baselineCollection)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("cancelled save left metadata documents: %v", ids)
	}
	issues, err := b.VerifyStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Errorf("store not clean after cancelled save: %v", issues)
	}
}

// TestRecoverPreCancelled requires every approach to refuse work on an
// already-cancelled context.
func TestRecoverPreCancelled(t *testing.T) {
	st := NewMemStores()
	ctx := context.Background()
	for _, a := range approachesUnderTest(st, 2) {
		res, err := a.SaveContext(ctx, SaveRequest{Set: mustNewSet(t, 4)})
		if err != nil {
			t.Fatalf("%s: save: %v", a.Name(), err)
		}
		cancelled, cancel := context.WithCancel(ctx)
		cancel()
		if _, err := a.RecoverContext(cancelled, res.SetID); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: recover on cancelled context returned %v, want context.Canceled", a.Name(), err)
		}
	}
}

// TestConcurrentSavesAttributeCosts runs two saves on the same stores
// at the same time and requires each SaveResult to report exactly its
// own bytes — the per-operation accounting the global store counters
// could not provide.
func TestConcurrentSavesAttributeCosts(t *testing.T) {
	// Reference costs from solo saves on fresh stores.
	small, large := mustNewSet(t, 4), mustNewSet(t, 16)
	soloSmall, err := NewBaseline(NewMemStores()).SaveContext(context.Background(), SaveRequest{Set: small})
	if err != nil {
		t.Fatal(err)
	}
	soloLarge, err := NewBaseline(NewMemStores()).SaveContext(context.Background(), SaveRequest{Set: large})
	if err != nil {
		t.Fatal(err)
	}

	st := NewMemStores()
	b := NewBaseline(st, WithConcurrency(4))
	var wg sync.WaitGroup
	results := make([]SaveResult, 2)
	errs := make([]error, 2)
	for i, set := range []*ModelSet{small, large} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = b.SaveContext(context.Background(), SaveRequest{Set: set})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent save %d: %v", i, err)
		}
	}
	if results[0].SetID == results[1].SetID {
		t.Fatalf("concurrent saves share set ID %q", results[0].SetID)
	}
	if results[0].BytesWritten != soloSmall.BytesWritten || results[0].WriteOps != soloSmall.WriteOps {
		t.Errorf("small save attributed (%d B, %d ops), solo reference (%d B, %d ops)",
			results[0].BytesWritten, results[0].WriteOps, soloSmall.BytesWritten, soloSmall.WriteOps)
	}
	if results[1].BytesWritten != soloLarge.BytesWritten || results[1].WriteOps != soloLarge.WriteOps {
		t.Errorf("large save attributed (%d B, %d ops), solo reference (%d B, %d ops)",
			results[1].BytesWritten, results[1].WriteOps, soloLarge.BytesWritten, soloLarge.WriteOps)
	}
	// Both sets must still recover cleanly.
	for i, want := range []*ModelSet{small, large} {
		got, err := b.RecoverContext(context.Background(), results[i].SetID)
		if err != nil {
			t.Fatalf("recover after concurrent saves: %v", err)
		}
		if !want.Equal(got) {
			t.Errorf("set %d corrupted by concurrent save", i)
		}
	}
}

// faultyStores builds Stores whose blob and document traffic runs
// through Faulty wrappers, exposing both the wrappers and the raw
// backends underneath.
func faultyStores(reg *dataset.Registry) (st Stores, fBlob, fDoc *backend.Faulty, rawBlob, rawDoc *backend.Mem) {
	rawBlob, rawDoc = backend.NewMem(), backend.NewMem()
	fBlob, fDoc = backend.NewFaulty(rawBlob), backend.NewFaulty(rawDoc)
	st = Stores{
		Docs:     docstore.New(fDoc, latency.CostModel{}, nil),
		Blobs:    blobstore.New(fBlob, latency.CostModel{}, nil),
		Datasets: reg,
	}
	return st, fBlob, fDoc, rawBlob, rawDoc
}

// residualKeys returns every raw backend key, including internal ones
// like checksum manifests that the stores hide — rollback must remove
// those too.
func residualKeys(t *testing.T, backends ...*backend.Mem) []string {
	t.Helper()
	var all []string
	for _, b := range backends {
		keys, err := b.Keys()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, keys...)
	}
	return all
}

// TestFaultInjectedSavesRollBackCompletely drives every approach with 8
// workers against stores that die after k writes, for every k up to a
// full save, and requires a failed save to leave ZERO residual raw
// backend keys — no blobs, no documents, and no checksum manifests.
func TestFaultInjectedSavesRollBackCompletely(t *testing.T) {
	builders := map[string]func(Stores) Approach{
		"MMlibBase":  func(st Stores) Approach { return NewMMlibBase(st, WithConcurrency(8)) },
		"Baseline":   func(st Stores) Approach { return NewBaseline(st, WithConcurrency(8)) },
		"Update":     func(st Stores) Approach { return NewUpdate(st, WithConcurrency(8)) },
		"Provenance": func(st Stores) Approach { return NewProvenance(st, WithConcurrency(8)) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for k := 0; ; k++ {
				reg := dataset.NewRegistry()
				st, fBlob, _, rawBlob, rawDoc := faultyStores(reg)
				a := build(st)
				fBlob.FailPutsAfter(k)
				set := mustNewSet(t, 5)
				_, err := a.SaveContext(context.Background(), SaveRequest{Set: set})
				if err == nil {
					// k grew past the save's write count: the fleet saved
					// clean. Recover to close the cycle and stop.
					if k == 0 {
						t.Fatal("save succeeded with FailPutsAfter(0)")
					}
					return
				}
				if !errors.Is(err, backend.ErrInjected) {
					t.Fatalf("k=%d: save failed with %v, want injected fault", k, err)
				}
				if keys := residualKeys(t, rawBlob, rawDoc); len(keys) != 0 {
					t.Fatalf("k=%d: failed save left residual keys %v", k, keys)
				}
			}
		})
	}
}

// TestFaultInjectedDocWritesRollBackCompletely is the document-store
// mirror: the doc backend dies after k writes mid-save.
func TestFaultInjectedDocWritesRollBackCompletely(t *testing.T) {
	for k := 0; ; k++ {
		st, _, fDoc, rawBlob, rawDoc := faultyStores(dataset.NewRegistry())
		a := NewMMlibBase(st, WithConcurrency(8)) // most documents per save
		fDoc.FailPutsAfter(k)
		_, err := a.SaveContext(context.Background(), SaveRequest{Set: mustNewSet(t, 5)})
		if err == nil {
			if k == 0 {
				t.Fatal("save succeeded with FailPutsAfter(0)")
			}
			return
		}
		if !errors.Is(err, backend.ErrInjected) {
			t.Fatalf("k=%d: save failed with %v, want injected fault", k, err)
		}
		if keys := residualKeys(t, rawBlob, rawDoc); len(keys) != 0 {
			t.Fatalf("k=%d: failed save left residual keys %v", k, keys)
		}
	}
}

// TestRollbackWithFailingDeletesIsRepairable models the worst case: the
// save fails AND the rollback's deletes fail too. The debris this
// leaves must be exactly what fsck classifies as orphans and repairs.
func TestRollbackWithFailingDeletesIsRepairable(t *testing.T) {
	st, fBlob, _, rawBlob, rawDoc := faultyStores(dataset.NewRegistry())
	b := NewBaseline(st, WithConcurrency(8))
	fBlob.FailPutsAfter(2)      // fail while writing params.bin
	fBlob.FailNextDeletes(1000) // rollback cannot delete blobs either
	if _, err := b.SaveContext(context.Background(), SaveRequest{Set: mustNewSet(t, 5)}); err == nil {
		t.Fatal("save unexpectedly succeeded")
	}
	fBlob.FailNextDeletes(0)
	if keys := residualKeys(t, rawBlob, rawDoc); len(keys) == 0 {
		t.Skip("rollback succeeded despite injected delete faults")
	}
	report, err := Fsck(st, FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Damaged() {
		t.Fatalf("rollback debris misclassified as damage:\n%v", report.Issues)
	}
	if keys := residualKeys(t, rawBlob, rawDoc); len(keys) != 0 {
		t.Fatalf("fsck repair left residual keys %v", keys)
	}
}

// TestRecoverModelsFaultInjection exercises the selective-recovery read
// path (GetRange) under injected faults: the fault surfaces as an
// error, and the same call succeeds once the fault clears.
func TestRecoverModelsFaultInjection(t *testing.T) {
	st, fBlob, _, _, _ := faultyStores(dataset.NewRegistry())
	b := NewBaseline(st, WithConcurrency(8))
	set := mustNewSet(t, 6)
	res, err := b.SaveContext(context.Background(), SaveRequest{Set: set})
	if err != nil {
		t.Fatal(err)
	}

	fBlob.FailNextRangeGets(1)
	if _, err := b.RecoverModelsContext(context.Background(), res.SetID, []int{1, 4}); !errors.Is(err, backend.ErrInjected) {
		t.Fatalf("selective recovery with injected range fault returned %v, want ErrInjected", err)
	}
	partial, err := b.RecoverModelsContext(context.Background(), res.SetID, []int{1, 4})
	if err != nil {
		t.Fatalf("selective recovery after fault cleared: %v", err)
	}
	for _, idx := range []int{1, 4} {
		if !set.Models[idx].ParamsEqual(partial.Models[idx]) {
			t.Errorf("model %d not bit-identical after fault recovery", idx)
		}
	}

	// A Retry wrapper underneath absorbs the same transient fault.
	rawBlob2 := backend.NewMem()
	fBlob2 := backend.NewFaulty(rawBlob2)
	retried := Stores{
		Docs:     docstore.NewMem(),
		Blobs:    blobstore.New(&backend.Retry{Inner: fBlob2, Sleep: func(d time.Duration) {}}, latency.CostModel{}, nil),
		Datasets: dataset.NewRegistry(),
	}
	b2 := NewBaseline(retried, WithConcurrency(8))
	res2, err := b2.SaveContext(context.Background(), SaveRequest{Set: set})
	if err != nil {
		t.Fatal(err)
	}
	fBlob2.FailNextRangeGets(1)
	partial2, err := b2.RecoverModelsContext(context.Background(), res2.SetID, []int{2})
	if err != nil {
		t.Fatalf("selective recovery through Retry wrapper: %v", err)
	}
	if !set.Models[2].ParamsEqual(partial2.Models[2]) {
		t.Error("model 2 not bit-identical through Retry wrapper")
	}
}
