package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"github.com/mmm-go/mmm/internal/nn"
)

// setMeta is the per-set metadata document shared by all approaches.
// For the full-snapshot approaches this is the *only* metadata saved
// for the whole set — the core of optimization O1.
type setMeta struct {
	SetID      string `json:"set_id"`
	Approach   string `json:"approach"`
	Kind       string `json:"kind"` // "full" or "derived"
	Base       string `json:"base,omitempty"`
	Depth      int    `json:"depth"` // recovery-chain length; 0 for full saves
	ArchName   string `json:"arch_name"`
	NumModels  int    `json:"num_models"`
	ParamCount int    `json:"param_count"`
}

// idAllocator hands out sequential set IDs per approach, resuming from
// whatever is already stored (so reopened on-disk stores keep counting).
type idAllocator struct {
	mu     sync.Mutex
	prefix string
	next   int
	inited bool
}

func (a *idAllocator) allocate(existing []string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inited {
		a.next = len(existing) + 1
		a.inited = true
	}
	id := fmt.Sprintf("%s-%06d", a.prefix, a.next)
	a.next++
	return id
}

// concatParams serializes all models' parameters back to back — one
// binary artifact for the whole set. This is Baseline's central move:
// "we iterate over all models, concatenate the floating-point numbers
// representing the parameters, and save them to one binary file".
func concatParams(set *ModelSet) []byte {
	perModel := set.Arch.ParamBytes()
	buf := make([]byte, 0, perModel*len(set.Models))
	for _, m := range set.Models {
		buf = m.AppendParamBytes(buf)
	}
	return buf
}

// buildSetFromParams reconstructs n models of arch by reading their
// parameters sequentially from one concatenated binary buffer: "we read
// the parameters sequentially from the parameter file to fully recover
// all models".
func buildSetFromParams(arch *nn.Architecture, n int, data []byte) (*ModelSet, error) {
	perModel := arch.ParamBytes()
	if len(data) != perModel*n {
		return nil, fmt.Errorf("core: parameter blob has %d bytes, want %d (%d models × %d)",
			len(data), perModel*n, n, perModel)
	}
	set := &ModelSet{Arch: arch, Models: make([]*nn.Model, n)}
	for i := 0; i < n; i++ {
		m, err := nn.NewModelUninitialized(arch)
		if err != nil {
			return nil, err
		}
		if _, err := m.SetParamBytes(data[i*perModel : (i+1)*perModel]); err != nil {
			return nil, fmt.Errorf("core: recovering model %d: %w", i, err)
		}
		set.Models[i] = m
	}
	return set, nil
}

// saveArchBlob persists the (single, shared) architecture definition.
func saveArchBlob(st Stores, key string, arch *nn.Architecture) error {
	blob, err := json.Marshal(arch)
	if err != nil {
		return fmt.Errorf("core: marshaling architecture: %w", err)
	}
	if err := st.Blobs.Put(key, blob); err != nil {
		return fmt.Errorf("core: writing architecture: %w", err)
	}
	return nil
}

// loadArchBlob reads an architecture definition back.
func loadArchBlob(st Stores, key string) (*nn.Architecture, error) {
	blob, err := st.Blobs.Get(key)
	if err != nil {
		return nil, fmt.Errorf("core: reading architecture: %w", err)
	}
	var arch nn.Architecture
	if err := json.Unmarshal(blob, &arch); err != nil {
		return nil, fmt.Errorf("core: parsing architecture: %w", err)
	}
	if err := arch.Validate(); err != nil {
		return nil, fmt.Errorf("core: stored architecture invalid: %w", err)
	}
	return &arch, nil
}

// fullSave implements "Baseline's logic": one metadata document, one
// architecture blob, one concatenated parameter blob. Update and
// Provenance reuse it for their initial sets. extend, when non-nil, may
// mutate the metadata document before it is written.
func fullSave(st Stores, collection, blobPrefix, approach, setID string, req SaveRequest, extend func(*setMeta)) error {
	meta := setMeta{
		SetID:      setID,
		Approach:   approach,
		Kind:       "full",
		ArchName:   req.Set.Arch.Name,
		NumModels:  len(req.Set.Models),
		ParamCount: req.Set.Arch.ParamCount(),
	}
	if extend != nil {
		extend(&meta)
	}
	if err := saveArchBlob(st, blobPrefix+"/"+setID+"/arch.json", req.Set.Arch); err != nil {
		return err
	}
	if err := st.Blobs.Put(blobPrefix+"/"+setID+"/params.bin", concatParams(req.Set)); err != nil {
		return fmt.Errorf("core: writing parameters: %w", err)
	}
	if err := st.Docs.Insert(collection, setID, meta); err != nil {
		return fmt.Errorf("core: writing metadata: %w", err)
	}
	return nil
}

// fullRecover reverses fullSave.
func fullRecover(st Stores, blobPrefix string, meta setMeta) (*ModelSet, error) {
	arch, err := loadArchBlob(st, blobPrefix+"/"+meta.SetID+"/arch.json")
	if err != nil {
		return nil, err
	}
	data, err := st.Blobs.Get(blobPrefix + "/" + meta.SetID + "/params.bin")
	if err != nil {
		return nil, fmt.Errorf("core: reading parameters: %w", err)
	}
	return buildSetFromParams(arch, meta.NumModels, data)
}

// loadMeta fetches a set's metadata document.
func loadMeta(st Stores, collection, setID string) (setMeta, error) {
	var meta setMeta
	if err := st.Docs.Get(collection, setID, &meta); err != nil {
		return setMeta{}, fmt.Errorf("core: loading metadata of %q: %w", setID, err)
	}
	return meta, nil
}
