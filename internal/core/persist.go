package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"github.com/mmm-go/mmm/internal/codec"
	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// setMeta is the per-set metadata document shared by all approaches.
// For the full-snapshot approaches this is the *only* metadata saved
// for the whole set — the core of optimization O1.
type setMeta struct {
	SetID      string `json:"set_id"`
	Approach   string `json:"approach"`
	Kind       string `json:"kind"` // "full" or "derived"
	Base       string `json:"base,omitempty"`
	Depth      int    `json:"depth"` // recovery-chain length; 0 for full saves
	ArchName   string `json:"arch_name"`
	NumModels  int    `json:"num_models"`
	ParamCount int    `json:"param_count"`
	// Codec is the compression codec ID the set was saved with (""
	// for none, including every pre-codec set). Recovery never needs
	// it — encoded artifacts are self-describing — but du, inspect,
	// and the server surface it.
	Codec string `json:"codec,omitempty"`
}

// idAllocator hands out sequential set IDs per approach, resuming from
// whatever is already stored (so reopened on-disk stores keep counting).
type idAllocator struct {
	mu     sync.Mutex
	prefix string
	next   int
	inited bool
}

func (a *idAllocator) allocate(existing []string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inited {
		a.next = len(existing) + 1
		a.inited = true
	}
	id := fmt.Sprintf("%s-%06d", a.prefix, a.next)
	a.next++
	return id
}

// ValidateSetID checks that an explicit set ID is usable as a blob and
// document key: set IDs become path segments in the dir backend, so
// anything that could traverse or collide with reserved names is
// rejected before a byte is written.
func ValidateSetID(id string) error {
	if id == "" || len(id) > 120 {
		return fmt.Errorf("core: set ID must be 1-120 bytes, got %d", len(id))
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 {
				return fmt.Errorf("core: set ID %q must start with a letter or digit", id)
			}
		default:
			return fmt.Errorf("core: set ID %q contains illegal byte %q", id, c)
		}
	}
	return nil
}

// chooseSetID resolves the ID one save will commit under: the request's
// explicit ID when given (rejecting IDs already present — sets are
// immutable, and replication reads "present" as "complete"), or the
// next sequential ID otherwise. existing is the approach collection's
// current document ID list.
func chooseSetID(req SaveRequest, ids *idAllocator, existing []string) (string, error) {
	if req.SetID == "" {
		return ids.allocate(existing), nil
	}
	for _, have := range existing {
		if have == req.SetID {
			return "", fmt.Errorf("core: explicit-ID save of %q: %w", req.SetID, ErrSetExists)
		}
	}
	return req.SetID, nil
}

// saveOp tracks every write one save operation issues so that (1) the
// SaveResult reports exactly this save's bytes and write ops — global
// store counters misattribute costs when saves run concurrently — and
// (2) a failed or cancelled save can roll its artifacts back, leaving
// no orphaned blobs or documents behind.
type saveOp struct {
	st      Stores
	dedup   bool        // route blob writes through the CAS layer
	codec   codec.Codec // per-chunk/diff compression; nil stores raw
	codecID string      // configured codec ID as persisted in metadata
	workers int         // encode fan-out under dedup
	reg     *obs.Registry
	mu      sync.Mutex
	bytes   int64
	ops     int64
	blobs   []savedBlob // written blobs, in write order
	docs    [][2]string // written (collection, id) pairs, in write order
}

// savedBlob records one written blob and how it was written, so
// rollback can undo it the matching way (raw delete vs. CAS release).
type savedBlob struct {
	key   string
	dedup bool
}

func newSaveOp(st Stores, dedup bool, cdc codec.Codec, codecID string, workers int, reg *obs.Registry) *saveOp {
	return &saveOp{st: st, dedup: dedup, codec: cdc, codecID: codecID, workers: workers, reg: reg}
}

// putBlob writes a blob and records its cost.
func (op *saveOp) putBlob(key string, data []byte) error {
	return op.putBlobHinted(key, data, cas.Hints{})
}

// putBlobHinted is putBlob with chunk-boundary hints for the CAS
// layer. Under dedup the recorded cost is the write's *physical*
// footprint — newly stored chunk bytes plus the recipe — so
// SaveResult.BytesWritten reflects what the store actually grew by;
// refcount updates are bookkeeping and not counted as write ops.
func (op *saveOp) putBlobHinted(key string, data []byte, hints cas.Hints) error {
	if !op.dedup {
		if err := op.st.Blobs.Put(key, data); err != nil {
			return err
		}
		op.mu.Lock()
		op.bytes += int64(len(data))
		op.ops++
		op.blobs = append(op.blobs, savedBlob{key: key})
		op.mu.Unlock()
		return nil
	}
	res, err := cas.For(op.st.Blobs).PutEncoded(key, data, 0, hints,
		cas.Encoding{Codec: op.codec, Workers: op.workers}, op.reg)
	if err != nil {
		return err
	}
	op.mu.Lock()
	op.bytes += res.PhysicalBytes
	op.ops += res.WriteOps
	op.blobs = append(op.blobs, savedBlob{key: key, dedup: true})
	op.mu.Unlock()
	return nil
}

// putBlobRaw writes a blob directly to the blob store even under
// dedup. Tiny derived artifacts (the per-set chunk index) are not
// worth chunking — and must stay raw so reading them never recurses
// through the CAS layer they describe. Any cached parse of a previous
// blob under the key is invalidated.
func (op *saveOp) putBlobRaw(key string, data []byte) error {
	if err := op.st.Blobs.Put(key, data); err != nil {
		return err
	}
	cas.For(op.st.Blobs).InvalidateRaw(key)
	op.mu.Lock()
	op.bytes += int64(len(data))
	op.ops++
	op.blobs = append(op.blobs, savedBlob{key: key})
	op.mu.Unlock()
	return nil
}

// insertDoc writes a document and records its cost (the encoded JSON
// length, matching the document store's own accounting).
func (op *saveOp) insertDoc(collection, id string, doc any) error {
	n, err := op.st.Docs.InsertSized(collection, id, doc)
	if err != nil {
		return err
	}
	op.mu.Lock()
	op.bytes += n
	op.ops++
	op.docs = append(op.docs, [2]string{collection, id})
	op.mu.Unlock()
	return nil
}

// rollback deletes everything the save wrote, newest first, so an
// aborted save leaves the store exactly as it found it. Deletion
// errors are ignored: rollback runs on an already-failing path and
// must not mask the original error.
func (op *saveOp) rollback() {
	op.mu.Lock()
	defer op.mu.Unlock()
	for i := len(op.docs) - 1; i >= 0; i-- {
		_ = op.st.Docs.Delete(op.docs[i][0], op.docs[i][1])
	}
	for i := len(op.blobs) - 1; i >= 0; i-- {
		if op.blobs[i].dedup {
			// Releasing drops exactly the references this save took; a
			// failed cas.Put has already undone its own partial work.
			_, _ = cas.For(op.st.Blobs).Release(op.blobs[i].key, op.reg)
		} else {
			_ = op.st.Blobs.Delete(op.blobs[i].key)
			cas.For(op.st.Blobs).InvalidateRaw(op.blobs[i].key)
		}
	}
}

// result reports what this save wrote.
func (op *saveOp) result(setID string) SaveResult {
	op.mu.Lock()
	defer op.mu.Unlock()
	return SaveResult{SetID: setID, BytesWritten: op.bytes, WriteOps: op.ops}
}

// concatParams serializes all models' parameters back to back — one
// binary artifact for the whole set. This is Baseline's central move:
// "we iterate over all models, concatenate the floating-point numbers
// representing the parameters, and save them to one binary file".
// Every model's bytes land at a precomputed offset, so workers fill
// disjoint regions and the result is byte-identical at any concurrency.
func concatParams(ctx context.Context, set *ModelSet, workers int) ([]byte, error) {
	perModel := set.Arch.ParamBytes()
	buf := make([]byte, perModel*len(set.Models))
	err := pool.Run(ctx, workers, len(set.Models), func(i int) error {
		dst := buf[i*perModel : i*perModel : (i+1)*perModel]
		out := set.Models[i].AppendParamBytes(dst)
		if len(out) != perModel {
			return fmt.Errorf("core: model %d serialized to %d bytes, want %d", i, len(out), perModel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// buildSetFromParams reconstructs n models of arch by reading their
// parameters from one concatenated binary buffer: "we read the
// parameters sequentially from the parameter file to fully recover all
// models". Model offsets are a pure function of the architecture, so
// workers decode disjoint segments into disjoint slots.
func buildSetFromParams(ctx context.Context, arch *nn.Architecture, n int, data []byte, workers int) (*ModelSet, error) {
	perModel := arch.ParamBytes()
	if len(data) != perModel*n {
		return nil, fmt.Errorf("core: parameter blob has %d bytes, want %d (%d models × %d): %w",
			len(data), perModel*n, n, perModel, ErrCorruptBlob)
	}
	set := &ModelSet{Arch: arch, Models: make([]*nn.Model, n)}
	err := pool.Run(ctx, workers, n, func(i int) error {
		m, err := nn.NewModelUninitialized(arch)
		if err != nil {
			return err
		}
		if _, err := m.SetParamBytes(data[i*perModel : (i+1)*perModel]); err != nil {
			return fmt.Errorf("core: recovering model %d: %w", i, err)
		}
		set.Models[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// saveArchBlob persists the (single, shared) architecture definition.
func saveArchBlob(op *saveOp, key string, arch *nn.Architecture) error {
	blob, err := json.Marshal(arch)
	if err != nil {
		return fmt.Errorf("core: marshaling architecture: %w", err)
	}
	if err := op.putBlob(key, blob); err != nil {
		return fmt.Errorf("core: writing architecture: %w", err)
	}
	return nil
}

// loadArchBlob reads an architecture definition back.
func loadArchBlob(st Stores, key string) (*nn.Architecture, error) {
	blob, err := getBlob(st, key)
	if err != nil {
		return nil, fmt.Errorf("core: reading architecture: %w", err)
	}
	var arch nn.Architecture
	if err := json.Unmarshal(blob, &arch); err != nil {
		return nil, fmt.Errorf("core: parsing architecture: %w", err)
	}
	if err := arch.Validate(); err != nil {
		return nil, fmt.Errorf("core: stored architecture invalid: %w", err)
	}
	return &arch, nil
}

// fullSave implements "Baseline's logic": one metadata document, one
// architecture blob, one concatenated parameter blob. Update and
// Provenance reuse it for their initial sets. extend, when non-nil, may
// mutate the metadata document before it is written. The metadata
// document is written last: a set only becomes visible once its
// artifacts are complete. preMeta, when non-nil, runs after the blobs
// but before the metadata document — the hook for approaches that must
// persist auxiliary documents inside the same commit boundary (a crash
// after the metadata write must never leave them missing).
func fullSave(ctx context.Context, op *saveOp, collection, blobPrefix, approach, setID string, req SaveRequest, extend func(*setMeta), preMeta func() error, workers int) error {
	meta := setMeta{
		SetID:      setID,
		Approach:   approach,
		Kind:       "full",
		ArchName:   req.Set.Arch.Name,
		NumModels:  len(req.Set.Models),
		ParamCount: req.Set.Arch.ParamCount(),
		Codec:      op.codecID,
	}
	if extend != nil {
		extend(&meta)
	}
	if err := saveArchBlob(op, blobPrefix+"/"+setID+"/arch.json", req.Set.Arch); err != nil {
		return err
	}
	params, err := concatParams(ctx, req.Set, workers)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Chunking at model-size stride keeps every unchanged model's
	// chunks byte-identical across saves — the layout-stability the
	// dedup layer's write-skipping depends on.
	if err := op.putBlobHinted(blobPrefix+"/"+setID+"/params.bin", params,
		cas.Hints{Stride: req.Set.Arch.ParamBytes()}); err != nil {
		return fmt.Errorf("core: writing parameters: %w", err)
	}
	// Dedup saves also persist the params blob's chunk index, inside
	// the commit boundary: selective recovery resolves chunks from it
	// without walking the recipe.
	if err := writeChunkIndex(op, blobPrefix, setID, int64(req.Set.Arch.ParamBytes())); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if preMeta != nil {
		if err := preMeta(); err != nil {
			return err
		}
	}
	if err := op.insertDoc(collection, setID, meta); err != nil {
		return fmt.Errorf("core: writing metadata: %w", err)
	}
	return nil
}

// fullRecover reverses fullSave.
func fullRecover(ctx context.Context, st Stores, blobPrefix string, meta setMeta, workers int) (*ModelSet, error) {
	arch, err := loadArchBlob(st, blobPrefix+"/"+meta.SetID+"/arch.json")
	if err != nil {
		return nil, err
	}
	data, err := getBlob(st, blobPrefix+"/"+meta.SetID+"/params.bin")
	if err != nil {
		return nil, fmt.Errorf("core: reading parameters: %w", err)
	}
	return buildSetFromParams(ctx, arch, meta.NumModels, data, workers)
}

// loadMeta fetches a set's metadata document. A missing document means
// the set was never saved (in this approach's namespace): callers get
// an error wrapping ErrSetNotFound.
func loadMeta(st Stores, collection, setID string) (setMeta, error) {
	var meta setMeta
	if err := st.Docs.Get(collection, setID, &meta); err != nil {
		if backend.IsNotFound(err) {
			return setMeta{}, fmt.Errorf("core: loading metadata of %q: %w", setID, ErrSetNotFound)
		}
		return setMeta{}, fmt.Errorf("core: loading metadata of %q: %w", setID, err)
	}
	return meta, nil
}
