package core

import (
	"errors"
	"testing"
)

// saveDedupBaseline saves a small dedup fleet and returns the approach,
// stores, truth set, set ID, and the chunk index's blob key.
func saveDedupBaseline(t *testing.T, n int) (*Baseline, Stores, *ModelSet, string, string) {
	t.Helper()
	st := NewMemStores()
	b := NewBaseline(st, WithDedup())
	set := mustNewSet(t, n)
	res := mustSave(t, b, SaveRequest{Set: set})
	return b, st, set, res.SetID, chunkIndexKey(baselineBlobPrefix, res.SetID)
}

func TestChunkIndexWrittenOnlyForDedupSaves(t *testing.T) {
	_, st, _, _, idxKey := saveDedupBaseline(t, 3)
	if _, err := st.Blobs.Size(idxKey); err != nil {
		t.Fatalf("dedup save left no chunk index at %s: %v", idxKey, err)
	}

	stPlain := NewMemStores()
	bPlain := NewBaseline(stPlain)
	res := mustSave(t, bPlain, SaveRequest{Set: mustNewSet(t, 3)})
	if _, err := stPlain.Blobs.Size(chunkIndexKey(baselineBlobPrefix, res.SetID)); err == nil {
		t.Fatal("plain save wrote a chunk index; only dedup saves have a recipe to index")
	}
}

func TestChunkIndexMissingFallsBackToRangedReads(t *testing.T) {
	// Pre-index stores have no params.idx; selective recovery must fall
	// back to ranged recipe reads and return the same bytes.
	b, st, set, setID, idxKey := saveDedupBaseline(t, 5)
	if err := st.Blobs.Delete(idxKey); err != nil {
		t.Fatal(err)
	}
	checkPartial(t, b, setID, set, []int{0, 3})
}

func TestChunkIndexCorruptSurfacesErrCorruptBlob(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"garbage", func([]byte) []byte { return []byte("not an index at all") }},
		{"bad magic", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[0] ^= 0xFF
			return out
		}},
		{"truncated", func(raw []byte) []byte {
			return append([]byte(nil), raw[:len(raw)-3]...)
		}},
		{"trailing byte", func(raw []byte) []byte {
			return append(append([]byte(nil), raw...), 0x00)
		}},
		{"empty", func([]byte) []byte { return []byte{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, st, _, setID, idxKey := saveDedupBaseline(t, 4)
			raw, err := st.Blobs.Get(idxKey)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Blobs.Put(idxKey, tc.corrupt(raw)); err != nil {
				t.Fatal(err)
			}
			_, err = b.RecoverModels(setID, []int{1})
			if !errors.Is(err, ErrCorruptBlob) {
				t.Fatalf("corrupt chunk index: got %v, want ErrCorruptBlob", err)
			}
		})
	}
}

func TestChunkIndexSurvivesFsck(t *testing.T) {
	// The index is part of a committed set: a read-only Fsck pass must
	// not classify it as an orphan, and a repair pass must not delete it.
	_, st, _, _, idxKey := saveDedupBaseline(t, 3)
	rep, err := Fsck(st, FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, issue := range rep.Issues {
		t.Errorf("fsck issue on a freshly saved store: %+v", issue)
	}
	if _, err := st.Blobs.Size(idxKey); err != nil {
		t.Fatalf("fsck repair removed the chunk index: %v", err)
	}
}
