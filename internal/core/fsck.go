package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Store-wide fsck: where VerifyStore asks "does every committed set
// have its artifacts?", Fsck additionally asks the converse — "does
// every artifact belong to a committed set?" — and verifies every blob
// against its recorded checksums. The two directions together give the
// store's durability invariant: metadata present ⇔ all referenced
// artifacts present and intact, and nothing else in the namespaces.
//
// Unreferenced artifacts are the residue of a crash mid-save: saves
// write blobs and auxiliary documents first and commit by writing the
// set metadata document last, so a crash leaves artifacts without
// metadata, never the reverse. Those orphans are invisible to every
// read path and safe to delete; Repair does so. Corrupt-but-referenced
// blobs are the opposite case — real data gone bad — and are only ever
// reported.

// Fsck issue kinds.
const (
	// FsckChecksum is a blob whose bytes fail checksum verification.
	FsckChecksum = "checksum"
	// FsckManifest is a checksum manifest entry without its blob.
	FsckManifest = "manifest"
	// FsckUnchecksummed is a blob with no recorded checksums.
	FsckUnchecksummed = "unchecksummed"
	// FsckOrphanBlob is a blob no committed set references.
	FsckOrphanBlob = "orphan-blob"
	// FsckOrphanDoc is a document no committed set references.
	FsckOrphanDoc = "orphan-doc"
	// FsckSet is a committed set with missing or inconsistent artifacts.
	FsckSet = "set"
	// FsckQuarantine is a corrupt body the scrubber moved aside. Entries
	// whose original is unreferenced are deletable debris; referenced
	// ones are preserved evidence of damage.
	FsckQuarantine = "quarantine"
)

// FsckIssue is one problem found by Fsck.
type FsckIssue struct {
	// Kind classifies the issue (the Fsck* constants).
	Kind string `json:"kind"`
	// Key is the blob key the issue concerns, if any.
	Key string `json:"key,omitempty"`
	// Collection and DocID name the document the issue concerns, if any.
	Collection string `json:"collection,omitempty"`
	DocID      string `json:"doc_id,omitempty"`
	// SetID is the committed set the issue concerns, if any.
	SetID string `json:"set_id,omitempty"`
	// Problem describes the issue.
	Problem string `json:"problem"`
	// Orphan marks debris of an uncommitted save: invisible to reads and
	// safe to delete. Issues with Orphan false are never auto-repaired.
	Orphan bool `json:"orphan,omitempty"`
	// Repaired reports that this run deleted the orphan.
	Repaired bool `json:"repaired,omitempty"`
	// RepairError records why this run failed to delete the orphan.
	RepairError string `json:"repair_error,omitempty"`
}

func (i FsckIssue) String() string {
	loc := i.Key
	if loc == "" && i.Collection != "" {
		loc = i.Collection + "/" + i.DocID
	}
	if loc == "" {
		loc = i.SetID
	}
	s := fmt.Sprintf("[%s] %s: %s", i.Kind, loc, i.Problem)
	if i.Repaired {
		s += " (repaired)"
	}
	if i.RepairError != "" {
		s += " (repair failed: " + i.RepairError + ")"
	}
	return s
}

// FsckOptions configures a Fsck run.
type FsckOptions struct {
	// Repair deletes orphaned partial writes (and dangling manifest
	// entries). Corrupt or missing referenced artifacts are never
	// touched.
	Repair bool
}

// FsckReport is the result of a Fsck run.
type FsckReport struct {
	// Sets is the number of committed sets seen across all approaches.
	Sets int `json:"sets"`
	// BytesVerified counts blob bytes read for checksum verification.
	BytesVerified int64 `json:"bytes_verified"`
	// Issues lists everything found, in deterministic order.
	Issues []FsckIssue `json:"issues,omitempty"`
}

// Clean reports whether the store has no issues at all.
func (r *FsckReport) Clean() bool { return len(r.Issues) == 0 }

// Damaged reports whether any issue concerns committed data (anything
// beyond deletable orphans).
func (r *FsckReport) Damaged() bool { return r.DamagedCount() > 0 }

// DamagedCount counts the issues that concern committed data.
func (r *FsckReport) DamagedCount() int {
	n := 0
	for _, i := range r.Issues {
		if !i.Orphan {
			n++
		}
	}
	return n
}

// refSet is the closure of artifacts committed sets reference.
type refSet struct {
	blobs map[string]bool    // blob keys
	docs  map[[2]string]bool // (collection, id)
	// unsafePrefix marks approach blob namespaces where reference
	// analysis is incomplete (unreadable set metadata): orphan
	// classification there would risk deleting live data.
	unsafePrefix map[string]bool
	// unsafeCols marks document collections with the same problem: the
	// per-set auxiliary documents cannot be enumerated without the set
	// metadata, so nothing in these collections may be classified as an
	// orphan.
	unsafeCols map[string]bool
}

func newRefSet() *refSet {
	return &refSet{
		blobs:        map[string]bool{},
		docs:         map[[2]string]bool{},
		unsafePrefix: map[string]bool{},
		unsafeCols:   map[string]bool{},
	}
}

func (r *refSet) blob(key string)    { r.blobs[key] = true }
func (r *refSet) doc(col, id string) { r.docs[[2]string{col, id}] = true }
func (r *refSet) fullBlobs(prefix, id string) {
	r.blob(prefix + "/" + id + "/arch.json")
	r.blob(prefix + "/" + id + "/params.bin")
	// The chunk index is optional (dedup saves only); referencing a
	// blob that does not exist merely suppresses orphan classification.
	r.blob(prefix + "/" + id + "/" + chunkIndexFile)
}

// fsckCollections are the document collections fsck owns. Documents in
// other collections are outside the management system and left alone.
var fsckCollections = []string{
	mmlibSetCollection, mmlibMetaCollection, mmlibEnvCollection, mmlibCodeCollection,
	baselineCollection,
	updateCollection, updateHashCollection, updateDiffCollection,
	provenanceCollection, provenanceTrainCollection, provenanceUpdateCollection,
}

// fsckBlobPrefixes are the blob namespaces fsck owns.
var fsckBlobPrefixes = []string{
	mmlibBlobPrefix, baselineBlobPrefix, updateBlobPrefix, provenanceBlobPrefix,
}

// references computes every artifact the committed sets of all four
// approaches reference. sets is the number of committed sets seen.
func references(st Stores) (refs *refSet, sets int, err error) {
	refs = newRefSet()

	// MMlibBase: per-model bundles.
	ids, err := st.Docs.IDs(mmlibSetCollection)
	if err != nil {
		return nil, 0, err
	}
	for _, id := range ids {
		sets++
		refs.doc(mmlibSetCollection, id)
		meta, err := loadMeta(st, mmlibSetCollection, id)
		if err != nil {
			// The per-model document IDs need meta.NumModels; without it
			// none of the auxiliary collections can be classified safely.
			refs.unsafePrefix[mmlibBlobPrefix] = true
			refs.unsafeCols[mmlibMetaCollection] = true
			refs.unsafeCols[mmlibEnvCollection] = true
			refs.unsafeCols[mmlibCodeCollection] = true
			continue
		}
		for i := 0; i < meta.NumModels; i++ {
			modelID := fmt.Sprintf("%s-m%05d", id, i)
			refs.doc(mmlibMetaCollection, modelID)
			refs.doc(mmlibEnvCollection, modelID)
			refs.doc(mmlibCodeCollection, modelID)
			refs.blob(fmt.Sprintf("%s/%s/%d/arch.json", mmlibBlobPrefix, id, i))
			refs.blob(fmt.Sprintf("%s/%s/%d/params.bin", mmlibBlobPrefix, id, i))
		}
	}

	// Baseline: one metadata document, two blobs.
	ids, err = st.Docs.IDs(baselineCollection)
	if err != nil {
		return nil, 0, err
	}
	for _, id := range ids {
		sets++
		refs.doc(baselineCollection, id)
		if _, err := loadMeta(st, baselineCollection, id); err != nil {
			refs.unsafePrefix[baselineBlobPrefix] = true
			continue
		}
		refs.fullBlobs(baselineBlobPrefix, id)
	}

	// Update: hash document always; full blobs or diff document + blob.
	ids, err = st.Docs.IDs(updateCollection)
	if err != nil {
		return nil, 0, err
	}
	for _, id := range ids {
		sets++
		refs.doc(updateCollection, id)
		refs.doc(updateHashCollection, id)
		meta, err := loadMeta(st, updateCollection, id)
		if err != nil {
			// Kind is unknown, so reference the diff document too (its ID
			// is the set ID): a reference to a document that turns out not
			// to exist only suppresses orphan classification.
			refs.unsafePrefix[updateBlobPrefix] = true
			refs.doc(updateDiffCollection, id)
			continue
		}
		if meta.Kind == "full" {
			refs.fullBlobs(updateBlobPrefix, id)
		} else {
			refs.doc(updateDiffCollection, id)
			refs.blob(updateBlobPrefix + "/" + id + "/diff.bin")
		}
	}

	// Provenance: full blobs or training-replay documents.
	ids, err = st.Docs.IDs(provenanceCollection)
	if err != nil {
		return nil, 0, err
	}
	for _, id := range ids {
		sets++
		refs.doc(provenanceCollection, id)
		meta, err := loadMeta(st, provenanceCollection, id)
		if err != nil {
			refs.unsafePrefix[provenanceBlobPrefix] = true
			refs.doc(provenanceTrainCollection, id)
			refs.doc(provenanceUpdateCollection, id)
			continue
		}
		if meta.Kind == "full" {
			refs.fullBlobs(provenanceBlobPrefix, id)
		} else {
			refs.doc(provenanceTrainCollection, id)
			refs.doc(provenanceUpdateCollection, id)
		}
	}
	return refs, sets, nil
}

// ownedPrefix returns the approach blob namespace key belongs to, or "".
func ownedPrefix(key string) string {
	for _, p := range fsckBlobPrefixes {
		if strings.HasPrefix(key, p+"/") {
			return p
		}
	}
	return ""
}

// Fsck checks the whole store: per-blob checksums, set completeness for
// every approach, and the absence of orphaned partial writes. With
// opts.Repair, orphans are deleted; everything else is only reported.
// When repairs fail the full report is still returned alongside the
// aggregate error, with each failure recorded on its issue.
func Fsck(st Stores, opts FsckOptions) (*FsckReport, error) {
	report := &FsckReport{}
	refs, sets, err := references(st)
	if err != nil {
		return nil, err
	}
	report.Sets = sets

	// Direction 1: every committed set's artifacts present and
	// consistent. VerifyStore also covers Update/Provenance base chains.
	for _, v := range []Verifier{
		NewMMlibBase(st), NewBaseline(st), NewUpdate(st), NewProvenance(st),
	} {
		issues, err := v.VerifyStore()
		if err != nil {
			return nil, err
		}
		for _, i := range issues {
			report.Issues = append(report.Issues, FsckIssue{
				Kind: FsckSet, SetID: i.SetID, Problem: i.Problem,
			})
		}
	}

	// CAS direction: recipe/chunk/refcount consistency. Runs before the
	// checksum direction so debris it identifies (orphan chunks, stale
	// recipes) also classifies checksum findings on those keys as
	// orphans.
	casInfo, err := casFsck(st, refs, report)
	if err != nil {
		return nil, err
	}
	casRepairs := casInfo.repairs

	// Direction 2a: blob bytes match their recorded checksums.
	integrity, bytesRead, err := st.Blobs.Integrity()
	if err != nil {
		return nil, err
	}
	report.BytesVerified = bytesRead
	flagged := map[string]bool{}
	for _, i := range integrity {
		flagged[i.Key] = true
		prefix := ownedPrefix(i.Key)
		orphanable := (prefix != "" && !refs.unsafePrefix[prefix] && !refs.blobs[i.Key]) || casInfo.orphan[i.Key]
		var kind string
		switch {
		case i.Mismatch:
			kind = FsckChecksum
		case i.Dangling:
			// A manifest entry without its blob is pure bookkeeping
			// debris regardless of references; deleting it never loses
			// data.
			kind = FsckManifest
			orphanable = true
		default:
			kind = FsckUnchecksummed
		}
		// A live refcount with checksum trouble (crash between the ref
		// write and its manifest) is drift, not damage: repair rewrites
		// it from the surviving recipes instead of deleting it.
		if rewrite, ok := casInfo.refRewrite[i.Key]; ok && !i.Dangling {
			orphanable = true
			casRepairs[casRepairKey(kind, i.Key)] = rewrite
		}
		report.Issues = append(report.Issues, FsckIssue{
			Kind: kind, Key: i.Key, Problem: i.Problem, Orphan: orphanable,
		})
	}

	// Direction 2b: no unreferenced blobs in owned namespaces.
	keys, err := st.Blobs.Keys()
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		prefix := ownedPrefix(key)
		if prefix == "" || refs.blobs[key] || flagged[key] || refs.unsafePrefix[prefix] {
			continue
		}
		report.Issues = append(report.Issues, FsckIssue{
			Kind: FsckOrphanBlob, Key: key,
			Problem: "blob not referenced by any committed set (orphaned partial write)",
			Orphan:  true,
		})
	}

	// Direction 2c: no unreferenced documents in owned collections.
	for _, col := range fsckCollections {
		if refs.unsafeCols[col] {
			continue
		}
		ids, err := st.Docs.IDs(col)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if refs.docs[[2]string{col, id}] {
				continue
			}
			report.Issues = append(report.Issues, FsckIssue{
				Kind: FsckOrphanDoc, Collection: col, DocID: id,
				Problem: "document not referenced by any committed set (orphaned partial write)",
				Orphan:  true,
			})
		}
	}

	sort.SliceStable(report.Issues, func(a, b int) bool {
		ia, ib := report.Issues[a], report.Issues[b]
		if ia.Kind != ib.Kind {
			return ia.Kind < ib.Kind
		}
		if ia.Key != ib.Key {
			return ia.Key < ib.Key
		}
		if ia.Collection != ib.Collection {
			return ia.Collection < ib.Collection
		}
		return ia.DocID+ia.SetID < ib.DocID+ib.SetID
	})

	if opts.Repair {
		// One failed deletion must not abandon the rest of the repairs
		// (or the report): record it on the issue, keep going, and hand
		// the caller the full report next to the aggregate error.
		var repairErrs []error
		for k := range report.Issues {
			issue := &report.Issues[k]
			if !issue.Orphan {
				continue
			}
			var err error
			switch {
			case casRepairs[casRepairKey(issue.Kind, issue.Key)] != nil:
				if err = casRepairs[casRepairKey(issue.Kind, issue.Key)](); err != nil {
					err = fmt.Errorf("core: fsck repair of %q: %w", issue.Key, err)
				}
			case issue.Key != "":
				// Blobs.Delete removes the blob and its manifest entry;
				// for dangling manifests the blob half is a no-op.
				if err = st.Blobs.Delete(issue.Key); err != nil {
					err = fmt.Errorf("core: fsck repair of blob %q: %w", issue.Key, err)
				}
			case issue.Collection != "":
				if err = st.Docs.Delete(issue.Collection, issue.DocID); err != nil {
					err = fmt.Errorf("core: fsck repair of %s/%s: %w", issue.Collection, issue.DocID, err)
				}
			}
			if err != nil {
				issue.RepairError = err.Error()
				repairErrs = append(repairErrs, err)
				continue
			}
			issue.Repaired = true
		}
		if len(repairErrs) > 0 {
			return report, errors.Join(repairErrs...)
		}
	}
	return report, nil
}
