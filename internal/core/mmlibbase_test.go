package core

import (
	"testing"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

func TestMMlibRoundTrip(t *testing.T) {
	st := NewMemStores()
	m := NewMMlibBase(st)
	set := mustNewSet(t, 8)
	res := mustSave(t, m, SaveRequest{Set: set})
	got := mustRecover(t, m, res.SetID)
	if !set.Equal(got) {
		t.Fatal("recovered set differs from saved set")
	}
}

func TestMMlibPerModelOverhead(t *testing.T) {
	st := NewMemStores()
	m := NewMMlibBase(st)
	set := mustNewSet(t, 20)
	res := mustSave(t, m, SaveRequest{Set: set})

	paramBytes := int64(set.Arch.ParamBytes() * set.Len())
	overheadPerModel := (res.BytesWritten - paramBytes) / int64(set.Len())
	// The paper: "an overhead of approximately 8 KB per model".
	if overheadPerModel < 5*1024 || overheadPerModel > 12*1024 {
		t.Fatalf("per-model overhead = %d bytes, want ≈ 8 KiB", overheadPerModel)
	}
}

func TestMMlibWriteOpsLinear(t *testing.T) {
	st := NewMemStores()
	m := NewMMlibBase(st)
	set := mustNewSet(t, 10)
	res := mustSave(t, m, SaveRequest{Set: set})
	// 3 documents + 2 blobs per model, plus one set document.
	want := int64(5*set.Len() + 1)
	if res.WriteOps != want {
		t.Fatalf("write ops = %d, want %d", res.WriteOps, want)
	}
}

func TestMMlibStorageExceedsBaseline(t *testing.T) {
	// The core comparison of the paper's Figure 3 at U1: MMlib-base
	// must consume clearly more storage than Baseline for equal sets.
	st := NewMemStores()
	set := mustNewSet(t, 20)
	resBaseline := mustSave(t, NewBaseline(st), SaveRequest{Set: set})
	resMMlib := mustSave(t, NewMMlibBase(st), SaveRequest{Set: set})
	if resMMlib.BytesWritten <= resBaseline.BytesWritten {
		t.Fatalf("MMlib-base wrote %d bytes, Baseline %d — expected MMlib to exceed",
			resMMlib.BytesWritten, resBaseline.BytesWritten)
	}
}

func TestMMlibFrameParamsRoundTrip(t *testing.T) {
	set := mustNewSet(t, 1)
	src := set.Models[0]
	dst := src.Clone()
	dst.Params()[0].Tensor.Fill(0)
	if err := unframeParams(dst, frameParams(src)); err != nil {
		t.Fatal(err)
	}
	if !src.ParamsEqual(dst) {
		t.Fatal("framed round trip lost parameters")
	}
}

func TestMMlibUnframeRejectsCorruption(t *testing.T) {
	set := mustNewSet(t, 1)
	src := set.Models[0]
	good := frameParams(src)

	cases := map[string][]byte{
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0, 1, 2),
		"empty":          {},
		"garbage":        {0xff, 0xff, 0xff},
	}
	for name, buf := range cases {
		if err := unframeParams(src.Clone(), buf); err == nil {
			t.Errorf("%s state dict accepted", name)
		}
	}

	// Corrupt a dictionary key in place.
	bad := append([]byte{}, good...)
	bad[2] ^= 0xff // first key byte
	if err := unframeParams(src.Clone(), bad); err == nil {
		t.Error("state dict with wrong key accepted")
	}
}

func TestMMlibRecoverMissingModelDoc(t *testing.T) {
	st := NewMemStores()
	m := NewMMlibBase(st)
	set := mustNewSet(t, 3)
	res := mustSave(t, m, SaveRequest{Set: set})
	if err := st.Docs.Delete(mmlibMetaCollection, res.SetID+"-m00001"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(res.SetID); err == nil {
		t.Fatal("set with missing model document recovered")
	}
}

func TestMMlibSaveFaultMidway(t *testing.T) {
	faulty := backend.NewFaulty(backend.NewMem())
	st := NewMemStores()
	st.Blobs = blobstore.New(faulty, latency.CostModel{}, nil)
	m := NewMMlibBase(st)
	// Let a handful of per-model blob writes succeed, then die: the
	// save must report the failure, not silently persist half a set.
	faulty.FailPutsAfter(7)
	if _, err := m.Save(SaveRequest{Set: mustNewSet(t, 10)}); err == nil {
		t.Fatal("mid-save fault not surfaced")
	}
}

func TestModelClassCodeMentionsLayers(t *testing.T) {
	code := modelClassCode(testArch())
	for _, want := range []string{"fc1", "fc2", "Linear", "forward"} {
		if !contains(code, want) {
			t.Errorf("model class code missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestDependencyFreezeRealistic(t *testing.T) {
	deps := dependencyFreeze()
	if len(deps) < 50 {
		t.Fatalf("dependency freeze has %d entries, want a realistic pip freeze", len(deps))
	}
	found := false
	for _, d := range deps {
		if d == "torch==1.7.1" { // the paper's framework version
			found = true
		}
	}
	if !found {
		t.Error("freeze does not pin the paper's framework version")
	}
}
