package core

import (
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// Fsck and Du must account for the quarantine namespace the scrubber
// populates: a quarantined chunk that committed recipes still reference
// is damage (named as quarantined, with the preserved copy's location),
// an unreferenced quarantine entry is deletable debris, and Du reports
// the dead weight.

func TestFsckReportsQuarantinedReferencedChunk(t *testing.T) {
	st, _, _ := rawStores()
	b := NewBaseline(st, WithDedup())
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})
	key := baselineBlobPrefix + "/" + res.SetID + "/params.bin"
	cs := cas.For(st.Blobs)
	r, err := cs.Recipe(key)
	if err != nil {
		t.Fatalf("Recipe: %v", err)
	}
	hash := r.Chunks[0].Hash
	if moved, err := cs.QuarantineChunk(hash); err != nil || !moved {
		t.Fatalf("QuarantineChunk = (%v, %v)", moved, err)
	}

	report := mustFsck(t, st, FsckOptions{})
	var found *FsckIssue
	for i, issue := range report.Issues {
		if issue.Kind == FsckCASChunk && issue.Key == cas.ChunkKey(hash) {
			found = &report.Issues[i]
		}
	}
	if found == nil {
		t.Fatalf("fsck did not report the quarantined chunk:\n%v", report.Issues)
	}
	if found.Orphan {
		t.Fatal("referenced quarantined chunk classified as deletable")
	}
	if !strings.Contains(found.Problem, "quarantined") {
		t.Fatalf("problem does not name the quarantine: %s", found.Problem)
	}
	if !report.Damaged() {
		t.Fatal("quarantined referenced chunk did not count as damage")
	}

	// Repair must preserve the evidence: the quarantined copy survives a
	// repair pass, because only a restore (or re-save) heals damage.
	mustFsck(t, st, FsckOptions{Repair: true})
	if !st.Blobs.HasQuarantined(cas.ChunkKey(hash)) {
		t.Fatal("fsck repair deleted the quarantined copy of damaged data")
	}
}

func TestFsckRepairsUnreferencedQuarantineDebris(t *testing.T) {
	st, _, _ := rawStores()
	// An orphan blob in an owned namespace that then rots and gets
	// quarantined: pure debris, fsck -repair removes it.
	orphanKey := baselineBlobPrefix + "/deadbeef/params.bin"
	if err := st.Blobs.Put(orphanKey, []byte("orphaned rotting bytes")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Blobs.Quarantine(orphanKey); err != nil {
		t.Fatal(err)
	}

	report := mustFsck(t, st, FsckOptions{})
	var found *FsckIssue
	for i, issue := range report.Issues {
		if issue.Kind == FsckQuarantine {
			found = &report.Issues[i]
		}
	}
	if found == nil {
		t.Fatalf("fsck did not list the quarantine entry:\n%v", report.Issues)
	}
	if !found.Orphan {
		t.Fatalf("unreferenced quarantine entry not classified deletable: %+v", *found)
	}
	if found.Key != blobstore.QuarantineKey(orphanKey) {
		t.Fatalf("issue key = %s, want %s", found.Key, blobstore.QuarantineKey(orphanKey))
	}

	mustFsck(t, st, FsckOptions{Repair: true})
	if st.Blobs.HasQuarantined(orphanKey) {
		t.Fatal("fsck repair left the quarantine debris behind")
	}
	if report := mustFsck(t, st, FsckOptions{}); !report.Clean() {
		t.Fatalf("store not clean after quarantine repair:\n%v", report.Issues)
	}
}

func TestDuCountsQuarantine(t *testing.T) {
	st, _, _ := rawStores()
	b := NewBaseline(st, WithDedup())
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})
	before, err := Du(st)
	if err != nil {
		t.Fatal(err)
	}
	if before.QuarantinedCount != 0 || before.QuarantinedBytes != 0 {
		t.Fatalf("healthy store reports quarantine: %+v", before)
	}

	key := baselineBlobPrefix + "/" + res.SetID + "/params.bin"
	r, err := cas.For(st.Blobs).Recipe(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cas.For(st.Blobs).QuarantineChunk(r.Chunks[0].Hash); err != nil {
		t.Fatal(err)
	}
	after, err := Du(st)
	if err != nil {
		t.Fatal(err)
	}
	if after.QuarantinedCount != 1 || after.QuarantinedBytes == 0 {
		t.Fatalf("quarantine not accounted: count=%d bytes=%d",
			after.QuarantinedCount, after.QuarantinedBytes)
	}
	// The moved body left PhysicalBytes.
	if after.ChunkBytes >= before.ChunkBytes {
		t.Fatalf("chunk bytes did not shrink: before=%d after=%d", before.ChunkBytes, after.ChunkBytes)
	}
}
