package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/obs"
)

// flipByte corrupts one byte of a stored blob underneath the blob
// store, so the recorded checksums stay stale — the way real bit rot
// arrives.
func flipByte(t *testing.T, be interface {
	Get(string) ([]byte, error)
	Put(string, []byte) error
}, key string, off int) {
	t.Helper()
	raw, err := be.Get(key)
	if err != nil {
		t.Fatalf("reading %s for corruption: %v", key, err)
	}
	raw[off] ^= 0xFF
	if err := be.Put(key, raw); err != nil {
		t.Fatal(err)
	}
}

func TestDegradedRecoveryMMlibSkipsCorruptModel(t *testing.T) {
	st, blobBE, _ := rawStores()
	reg := obs.New()
	m := NewMMlibBase(st, WithMetrics(reg))
	set := mustNewSet(t, 6)
	res := mustSave(t, m, SaveRequest{Set: set})
	all := []int{0, 1, 2, 3, 4, 5}

	flipByte(t, blobBE, fmt.Sprintf("%s/%s/%d/params.bin", mmlibBlobPrefix, res.SetID, 2), 10)

	// Default mode keeps the fail-closed contract.
	if _, err := m.RecoverModelsContext(context.Background(), res.SetID, all); !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("strict recovery: err = %v, want ErrChecksumMismatch", err)
	}

	// Degraded mode returns the n-1 survivors plus a report naming the
	// casualty.
	var report RecoveryReport
	rec, err := m.RecoverModelsContext(context.Background(), res.SetID, all, WithPartialResults(&report))
	if err != nil {
		t.Fatalf("degraded recovery: %v", err)
	}
	if len(rec.Models) != 5 {
		t.Fatalf("recovered %d models, want 5", len(rec.Models))
	}
	if _, ok := rec.Models[2]; ok {
		t.Fatal("corrupt model 2 present in degraded result")
	}
	for _, i := range []int{0, 1, 3, 4, 5} {
		if !rec.Models[i].ParamsEqual(set.Models[i]) {
			t.Fatalf("model %d recovered incorrectly", i)
		}
	}
	if report.Requested != 6 || report.Recovered != 5 || report.Skipped != 1 {
		t.Fatalf("report = %+v", report)
	}
	if !report.Degraded() {
		t.Fatal("report not marked degraded")
	}
	if len(report.Failures) != 1 || report.Failures[0].ModelIndex != 2 {
		t.Fatalf("failures = %+v", report.Failures)
	}
	if !strings.Contains(report.Failures[0].Error, "model 2") {
		t.Fatalf("failure does not name the model: %q", report.Failures[0].Error)
	}
	if got := reg.Counter(MetricDegradedSkips, obs.L("approach", m.Name())).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricDegradedSkips, got)
	}

	// A nil report enables the mode without collecting the outcome.
	rec, err = m.RecoverModelsContext(context.Background(), res.SetID, all, WithPartialResults(nil))
	if err != nil || len(rec.Models) != 5 {
		t.Fatalf("nil-report degraded recovery: %d models, err %v", len(rec.Models), err)
	}
}

func TestDegradedRecoveryUpdateChainSkipsDiffDamage(t *testing.T) {
	st, blobBE, _ := rawStores()
	u := NewUpdate(st)
	set := mustNewSet(t, 6)
	base := mustSave(t, u, SaveRequest{Set: set})
	runCycle(t, set, st.Datasets, 1, []int{2}, []int{5})
	derived := mustSave(t, u, SaveRequest{Set: set, Base: base.SetID})

	flipByte(t, blobBE, updateBlobPrefix+"/"+derived.SetID+"/diff.bin", 0)

	if _, err := u.RecoverModelsContext(context.Background(), derived.SetID, []int{1, 2, 5}); !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("strict recovery: err = %v, want ErrChecksumMismatch", err)
	}

	// Models 2 and 5 depend on the damaged diff blob; model 1 is
	// untouched since the base save and must still recover.
	var report RecoveryReport
	rec, err := u.RecoverModelsContext(context.Background(), derived.SetID, []int{1, 2, 5}, WithPartialResults(&report))
	if err != nil {
		t.Fatalf("degraded recovery: %v", err)
	}
	if len(rec.Models) != 1 {
		t.Fatalf("recovered %d models, want 1", len(rec.Models))
	}
	if !rec.Models[1].ParamsEqual(set.Models[1]) {
		t.Fatal("surviving model 1 recovered incorrectly")
	}
	if report.Requested != 3 || report.Recovered != 1 || report.Skipped != 2 {
		t.Fatalf("report = %+v", report)
	}
	if len(report.Failures) != 2 || report.Failures[0].ModelIndex != 2 || report.Failures[1].ModelIndex != 5 {
		t.Fatalf("failures = %+v", report.Failures)
	}
}

func TestDegradedRecoveryProvenanceSkipsLostDataset(t *testing.T) {
	st, _, _ := rawStores()
	p := NewProvenance(st)
	set := mustNewSet(t, 4)
	base := mustSave(t, p, SaveRequest{Set: set})
	updates := runCycle(t, set, st.Datasets, 1, []int{1}, nil)
	derived := mustSave(t, p, SaveRequest{
		Set: set, Base: base.SetID, Updates: updates, Train: testTrainInfo(),
	})

	// Replace the dataset registry with an empty one: replaying model 1's
	// training can no longer resolve its dataset.
	lost := st
	lost.Datasets = dataset.NewRegistry()
	pLost := NewProvenance(lost)

	if _, err := pLost.RecoverModelsContext(context.Background(), derived.SetID, []int{0, 1}); err == nil {
		t.Fatal("strict recovery succeeded without the dataset")
	}

	var report RecoveryReport
	rec, err := pLost.RecoverModelsContext(context.Background(), derived.SetID, []int{0, 1}, WithPartialResults(&report))
	if err != nil {
		t.Fatalf("degraded recovery: %v", err)
	}
	if len(rec.Models) != 1 || rec.Models[0] == nil {
		t.Fatalf("recovered %v, want model 0 only", rec.Models)
	}
	if !rec.Models[0].ParamsEqual(set.Models[0]) {
		t.Fatal("surviving model 0 recovered incorrectly")
	}
	if report.Skipped != 1 || len(report.Failures) != 1 || report.Failures[0].ModelIndex != 1 {
		t.Fatalf("report = %+v", report)
	}
}

func TestDegradedRecoveryAllLostFails(t *testing.T) {
	st, blobBE, _ := rawStores()
	b := NewBaseline(st)
	set := mustNewSet(t, 3)
	res := mustSave(t, b, SaveRequest{Set: set})

	// The test architecture packs every model into the first checksum
	// chunk, so one flipped byte takes out every ranged read.
	flipByte(t, blobBE, baselineBlobPrefix+"/"+res.SetID+"/params.bin", 4)

	var report RecoveryReport
	_, err := b.RecoverModelsContext(context.Background(), res.SetID, []int{0, 1, 2}, WithPartialResults(&report))
	if err == nil {
		t.Fatal("degraded recovery that lost every model succeeded")
	}
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("all-lost error does not carry the cause: %v", err)
	}
	if report.Recovered != 0 || report.Skipped != 3 {
		t.Fatalf("report = %+v", report)
	}
}

func TestDegradedRecoveryCancellationNotAbsorbed(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := b.RecoverModelsContext(ctx, res.SetID, []int{0, 1, 2}, WithPartialResults(nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled degraded recovery: err = %v, want context.Canceled", err)
	}
}

func TestRecoveryReportString(t *testing.T) {
	clean := &RecoveryReport{SetID: "bl-000001", Requested: 4, Recovered: 4}
	if clean.Degraded() {
		t.Fatal("clean report marked degraded")
	}
	if s := clean.String(); !strings.Contains(s, "4/4") {
		t.Fatalf("clean String() = %q", s)
	}
	degraded := &RecoveryReport{
		SetID: "bl-000002", Requested: 4, Recovered: 3, Skipped: 1,
		Failures: []ModelFailure{{ModelIndex: 2, Error: "corrupt blob"}},
	}
	s := degraded.String()
	if !strings.Contains(s, "3/4") || !strings.Contains(s, "model 2") {
		t.Fatalf("degraded String() = %q", s)
	}
	var nilReport *RecoveryReport
	if nilReport.Degraded() {
		t.Fatal("nil report marked degraded")
	}
}
