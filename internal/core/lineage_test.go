package core

import (
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

func TestLineageUpdateChain(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	ids, _ := saveUpdateChain(t, u, st, 3)
	chain, err := u.Lineage(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 4 {
		t.Fatalf("lineage length %d, want 4", len(chain))
	}
	// Newest first, ending at the full snapshot.
	for i, info := range chain {
		if info.SetID != ids[3-i] {
			t.Errorf("lineage[%d] = %s, want %s", i, info.SetID, ids[3-i])
		}
	}
	if chain[len(chain)-1].Kind != "full" {
		t.Error("lineage does not end at a full snapshot")
	}
	if chain[0].Kind != "derived" || chain[0].Depth != 3 {
		t.Errorf("head of lineage = %+v", chain[0])
	}
}

func TestLineageBaselineSingle(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})
	chain, err := b.Lineage(res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].Kind != "full" {
		t.Fatalf("baseline lineage = %+v", chain)
	}
	if chain[0].ArchName != "test-ffnn" || chain[0].NumModels != 3 {
		t.Fatalf("lineage info incomplete: %+v", chain[0])
	}
}

func TestLineageProvenance(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, _ := saveProvenanceChain(t, p, st, 2)
	chain, err := p.Lineage(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("lineage length %d, want 3", len(chain))
	}
}

func TestLineageSnapshotShortensChain(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.SnapshotInterval = 2
	ids, _ := saveUpdateChain(t, u, st, 4)
	chain, err := u.Lineage(ids[4])
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) > 2 {
		t.Fatalf("lineage length %d with snapshot interval 2", len(chain))
	}
}

func TestLineageUnknownSet(t *testing.T) {
	u := NewUpdate(NewMemStores())
	if _, err := u.Lineage("up-404"); err == nil {
		t.Fatal("unknown set lineage accepted")
	}
}

func TestLineageDetectsBrokenChain(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	ids, _ := saveUpdateChain(t, u, st, 2)
	if err := st.Docs.Delete(updateCollection, ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Lineage(ids[2]); err == nil {
		t.Fatal("broken chain lineage accepted")
	}
}

// TestProvenanceWithAdamOptimizer proves the provenance contract covers
// the optimizer choice: derived sets trained with Adam recover exactly.
func TestProvenanceWithAdamOptimizer(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	set := mustNewSetArch(t, nn.FFNN48(), 5)
	res := mustSave(t, p, SaveRequest{Set: set})

	info := testTrainInfo()
	info.Config.Optimizer = nn.OptimizerConfig{Name: "adam"}

	// Train two models with Adam on cycle data, recording updates.
	var updates []ModelUpdate
	for _, idx := range []int{1, 3} {
		spec := testDatasetSpec(idx, 1)
		id, err := st.Datasets.Put(spec)
		if err != nil {
			t.Fatal(err)
		}
		data, err := st.Datasets.Materialize(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := info.Config
		cfg.Seed = uint64(idx)
		if _, err := nn.Train(set.Models[idx], data, cfg); err != nil {
			t.Fatal(err)
		}
		updates = append(updates, ModelUpdate{ModelIndex: idx, DatasetID: id, Seed: cfg.Seed})
	}
	res2, err := p.Save(SaveRequest{Set: set, Base: res.SetID, Updates: updates, Train: info})
	if err != nil {
		t.Fatal(err)
	}
	got := mustRecover(t, p, res2.SetID)
	if !set.Equal(got) {
		t.Fatal("provenance recovery with Adam optimizer not bit-exact")
	}
}
