package core

import (
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

func TestDeltaEncodingRoundTrip(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.DeltaEncoding = true
	u.Compress = true
	ids, truths := saveUpdateChain(t, u, st, 3)
	for i, id := range ids {
		got := mustRecover(t, u, id)
		if !truths[i].Equal(got) {
			t.Fatalf("set %d (%s) recovered incorrectly under delta encoding", i, id)
		}
	}
}

func TestDeltaEncodingPartialRecovery(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.DeltaEncoding = true
	u.Compress = true
	ids, truths := saveUpdateChain(t, u, st, 2)
	for i, id := range ids {
		checkPartial(t, u, id, truths[i], []int{0, 3, 7})
	}
}

func TestDeltaEncodingCompressesBetterThanRaw(t *testing.T) {
	// The point of XOR deltas: a fine-tuned layer's floats share sign,
	// exponent, and high mantissa bits with their base values, so the
	// XOR stream zlib-compresses much better than the raw floats do.
	run := func(delta bool) int64 {
		st := NewMemStores()
		u := NewUpdate(st)
		u.Compress = true
		u.DeltaEncoding = delta
		set := mustNewSetArch(t, nn.FFNN48(), 10)
		resFull := mustSave(t, u, SaveRequest{Set: set})
		// A gentle fine-tune: tiny nudges leave the high float bits
		// intact (exactly what one retraining cycle does).
		w, err := set.Models[2].LayerParam("fc2.weight")
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Data {
			w.Data[i] *= 1.0001
		}
		res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})

		// Verify correctness along the way.
		got := mustRecover(t, u, res.SetID)
		if !set.Equal(got) {
			t.Fatal("recovery wrong")
		}
		// Compare the diff blobs themselves: the per-set hash documents
		// are identical fixed overhead in both configurations.
		size, err := st.Blobs.Size(updateBlobPrefix + "/" + res.SetID + "/diff.bin")
		if err != nil {
			t.Fatal(err)
		}
		return size
	}
	raw := run(false)
	delta := run(true)
	if !(delta < raw*7/10) {
		t.Fatalf("delta-encoded diff blob (%d B) not well below raw compressed blob (%d B)", delta, raw)
	}
}

func TestDeltaEncodingMarkedInDiffDoc(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.DeltaEncoding = true
	set := mustNewSet(t, 4)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	runCycle(t, set, st.Datasets, 1, []int{0}, nil)
	res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})

	var diff diffDoc
	if err := st.Docs.Get(updateDiffCollection, res.SetID, &diff); err != nil {
		t.Fatal(err)
	}
	if !diff.Delta {
		t.Fatal("delta flag not recorded")
	}
	// A reader without DeltaEncoding configured must still recover
	// correctly — the flag lives in the data, not the approach config.
	reader := NewUpdate(st)
	got := mustRecover(t, reader, res.SetID)
	if !set.Equal(got) {
		t.Fatal("plain reader failed to recover delta-encoded set")
	}
}

func TestDeltaEncodingEmptyDiff(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.DeltaEncoding = true
	set := mustNewSet(t, 4)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})
	got := mustRecover(t, u, res.SetID)
	if !set.Equal(got) {
		t.Fatal("unchanged delta-encoded set recovered incorrectly")
	}
	var diff diffDoc
	if err := st.Docs.Get(updateDiffCollection, res.SetID, &diff); err != nil {
		t.Fatal(err)
	}
	if diff.Delta {
		t.Fatal("empty diff should not be marked delta (no base values were read)")
	}
}
