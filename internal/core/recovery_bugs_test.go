package core

import (
	"bytes"
	"compress/zlib"
	"errors"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

// Regression tests for the recovery-path hardening: metadata cycles,
// truncated hash documents, oversized compressed diff blobs, and
// derived saves against an incompatible base. Each corruption is the
// kind fsck or a hostile store could present; recovery must fail with
// a typed error, never crash or return wrong parameters.

// plantUpdateCycle saves full A and derived B, then rewrites A's
// metadata to be derived from B — a two-set metadata cycle that no
// crash-consistent writer produces but a corrupted store can.
func plantUpdateCycle(t *testing.T, u *Update, st Stores) (idA, idB string) {
	t.Helper()
	set := mustNewSet(t, 4)
	resA := mustSave(t, u, SaveRequest{Set: set})
	runCycle(t, set, st.Datasets, 1, []int{0}, nil)
	resB := mustSave(t, u, SaveRequest{Set: set, Base: resA.SetID})

	var meta setMeta
	if err := st.Docs.Get(updateCollection, resA.SetID, &meta); err != nil {
		t.Fatal(err)
	}
	meta.Kind = "derived"
	meta.Base = resB.SetID
	if err := st.Docs.Insert(updateCollection, resA.SetID, meta); err != nil {
		t.Fatal(err)
	}
	return resA.SetID, resB.SetID
}

func TestUpdateBaseChainCycleDetected(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	_, idB := plantUpdateCycle(t, u, st)

	// Full recovery must fail with the corruption sentinel instead of
	// recursing forever.
	if _, err := u.Recover(idB); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("recover over cyclic chain: err = %v, want ErrCorruptBlob", err)
	}
	// Selective recovery walks the same chain.
	if _, err := u.RecoverModels(idB, []int{0}); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("partial recover over cyclic chain: err = %v, want ErrCorruptBlob", err)
	}
	// VerifyStore flags every set trapped in the cycle.
	issues, err := u.VerifyStore()
	if err != nil {
		t.Fatal(err)
	}
	cycleIssues := 0
	for _, i := range issues {
		if strings.Contains(i.Problem, "cycle") {
			cycleIssues++
		}
	}
	if cycleIssues == 0 {
		t.Fatalf("VerifyStore over cyclic chain reported no cycle: %v", issues)
	}
}

func TestFsckReportsBaseChainCycle(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	plantUpdateCycle(t, u, st)

	report, err := Fsck(st, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range report.Issues {
		if strings.Contains(i.Problem, "cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck missed the metadata cycle: %+v", report.Issues)
	}
}

func TestProvenanceBaseChainCycleDetected(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	set := mustNewSet(t, 4)
	resA := mustSave(t, p, SaveRequest{Set: set})
	updates := runCycle(t, set, st.Datasets, 1, []int{0}, nil)
	resB := mustSave(t, p, SaveRequest{
		Set: set, Base: resA.SetID, Updates: updates, Train: testTrainInfo(),
	})

	var meta setMeta
	if err := st.Docs.Get(provenanceCollection, resA.SetID, &meta); err != nil {
		t.Fatal(err)
	}
	meta.Kind = "derived"
	meta.Base = resB.SetID
	if err := st.Docs.Insert(provenanceCollection, resA.SetID, meta); err != nil {
		t.Fatal(err)
	}

	if _, err := p.Recover(resB.SetID); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("provenance recover over cyclic chain: err = %v, want ErrCorruptBlob", err)
	}
	if _, err := p.RecoverModels(resB.SetID, []int{0}); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("provenance partial recover over cyclic chain: err = %v, want ErrCorruptBlob", err)
	}
	issues, err := p.VerifyStore()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range issues {
		if strings.Contains(i.Problem, "cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("provenance VerifyStore missed the cycle: %v", issues)
	}
}

// saveUpdateDerived saves a full base plus one derived set and returns
// the derived set's ID with the stores for tampering.
func saveUpdateDerived(t *testing.T, u *Update, st Stores) string {
	t.Helper()
	set := mustNewSet(t, 4)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	runCycle(t, set, st.Datasets, 1, []int{0}, []int{2})
	res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})
	return res.SetID
}

func TestUpdateTruncatedHashDocDetected(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	id := saveUpdateDerived(t, u, st)

	// Truncate the hash document so the diff's entries point past it.
	var hashes hashDoc
	if err := st.Docs.Get(updateHashCollection, id, &hashes); err != nil {
		t.Fatal(err)
	}
	truncated := hashDoc{Models: hashes.Models[:0]}
	if err := st.Docs.Insert(updateHashCollection, id, truncated); err != nil {
		t.Fatal(err)
	}

	if _, err := u.Recover(id); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("recover with truncated hash doc: err = %v, want ErrCorruptBlob", err)
	}
	if _, err := u.RecoverModels(id, []int{0}); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("partial recover with truncated hash doc: err = %v, want ErrCorruptBlob", err)
	}
}

// plantCompressedDiff returns a derived set whose diff blob is
// zlib-compressed, plus the exact decompressed size the diff list
// implies.
func plantCompressedDiff(t *testing.T, u *Update, st Stores) (id string, want int) {
	t.Helper()
	set := mustNewSetArch(t, nn.FFNN48(), 4)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	// Sparsify a layer so zlib wins decisively and Compressed is set.
	w, err := set.Models[0].LayerParam("fc2.weight")
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Data {
		if i%10 != 0 {
			w.Data[i] = 0
		}
	}
	res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})

	var diff diffDoc
	if err := st.Docs.Get(updateDiffCollection, res.SetID, &diff); err != nil {
		t.Fatal(err)
	}
	if diffCodecID(diff) == "" {
		t.Fatal("sparsified diff was not compressed; test needs a compressed blob")
	}
	sizes := paramByteSizes(set.Arch)
	for _, e := range diff.Entries {
		want += sizes[e.P]
	}
	return res.SetID, want
}

func TestUpdateOversizedCompressedDiffDetected(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.Compress = true
	id, want := plantCompressedDiff(t, u, st)

	// A decompression bomb: a small valid zlib stream that inflates to
	// more than the diff list implies. The bounded reader must stop at
	// want+1 bytes and reject, not buffer the whole expansion.
	var bomb bytes.Buffer
	zw := zlib.NewWriter(&bomb)
	if _, err := zw.Write(make([]byte, want+1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	key := updateBlobPrefix + "/" + id + "/diff.bin"
	if err := st.Blobs.Put(key, bomb.Bytes()); err != nil {
		t.Fatal(err)
	}

	if _, err := u.Recover(id); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("recover of oversized compressed diff: err = %v, want ErrCorruptBlob", err)
	}
	if _, err := u.RecoverModels(id, []int{0}); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("partial recover of oversized compressed diff: err = %v, want ErrCorruptBlob", err)
	}
}

func TestUpdateUndersizedCompressedDiffDetected(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.Compress = true
	id, want := plantCompressedDiff(t, u, st)
	if want < 2 {
		t.Fatalf("diff too small to truncate (%d bytes)", want)
	}

	var short bytes.Buffer
	zw := zlib.NewWriter(&short)
	if _, err := zw.Write(make([]byte, want/2)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	key := updateBlobPrefix + "/" + id + "/diff.bin"
	if err := st.Blobs.Put(key, short.Bytes()); err != nil {
		t.Fatal(err)
	}

	if _, err := u.Recover(id); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("recover of undersized compressed diff: err = %v, want ErrCorruptBlob", err)
	}
}

func TestUpdateSaveBaseArchMismatch(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	res := mustSave(t, u, SaveRequest{Set: mustNewSet(t, 4)})

	// Different parameter count.
	wider := mustNewSetArch(t, nn.FFNN("test-ffnn", 4, []int{9}, 1), 4)
	if _, err := u.Save(SaveRequest{Set: wider, Base: res.SetID}); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("derived save with different param count: err = %v, want ErrBaseMismatch", err)
	}
	// Same shape under a different architecture name.
	renamed := mustNewSetArch(t, nn.FFNN("other-ffnn", 4, []int{8}, 1), 4)
	if _, err := u.Save(SaveRequest{Set: renamed, Base: res.SetID}); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("derived save with renamed arch: err = %v, want ErrBaseMismatch", err)
	}
}

func TestProvenanceSaveBaseArchMismatch(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	res := mustSave(t, p, SaveRequest{Set: mustNewSet(t, 4)})

	wider := mustNewSetArch(t, nn.FFNN("test-ffnn", 4, []int{9}, 1), 4)
	_, err := p.Save(SaveRequest{
		Set: wider, Base: res.SetID, Train: testTrainInfo(),
	})
	if !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("provenance derived save with different param count: err = %v, want ErrBaseMismatch", err)
	}
}
