package core

import (
	"errors"
	"fmt"
	"testing"
)

// deltaSave produces a two-save chain (full base + one incremental)
// under the given approach and returns the base and delta set IDs.
func deltaSave(t *testing.T, a Approach, st Stores, set *ModelSet) (string, string) {
	t.Helper()
	base := mustSave(t, a, SaveRequest{Set: set, Train: testTrainInfo()})
	updates := runCycle(t, set, st.Datasets, 1, []int{1}, []int{3})
	delta := mustSave(t, a, SaveRequest{
		Set: set, Base: base.SetID, Updates: updates, Train: testTrainInfo(),
	})
	return base.SetID, delta.SetID
}

// TestPartialRecoveryErrorPaths sabotages one stored artifact at a
// time and asserts selective recovery fails loudly — never a panic,
// never silently wrong models. Each case builds a fresh store, saves,
// breaks exactly one piece, and recovers.
func TestPartialRecoveryErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		// setup saves into st and returns the recoverer plus the set ID
		// to recover after sabotage.
		setup func(t *testing.T, st Stores) (PartialRecoverer, string)
		// sabotage breaks one artifact of the set (or its chain).
		sabotage func(t *testing.T, st Stores, setID string)
		indices  []int
		// wantErr, when non-nil, must match via errors.Is.
		wantErr error
	}{
		{
			name: "baseline missing arch blob",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				b := NewBaseline(st)
				return b, mustSave(t, b, SaveRequest{Set: mustNewSet(t, 4)}).SetID
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteBlob(t, st, baselineBlobPrefix+"/"+setID+"/arch.json")
			},
			indices: []int{0},
		},
		{
			name: "baseline missing params blob",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				b := NewBaseline(st)
				return b, mustSave(t, b, SaveRequest{Set: mustNewSet(t, 4)}).SetID
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteBlob(t, st, baselineBlobPrefix+"/"+setID+"/params.bin")
			},
			indices: []int{1, 2},
		},
		{
			name: "baseline truncated params blob",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				b := NewBaseline(st)
				return b, mustSave(t, b, SaveRequest{Set: mustNewSet(t, 4)}).SetID
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				key := baselineBlobPrefix + "/" + setID + "/params.bin"
				raw, err := st.Blobs.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Blobs.Put(key, raw[:len(raw)/2]); err != nil {
					t.Fatal(err)
				}
			},
			// Only the last model's range is gone; earlier ones survive.
			indices: []int{3},
		},
		{
			name: "baseline unknown set",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				return NewBaseline(st), "bl-does-not-exist"
			},
			sabotage: func(*testing.T, Stores, string) {},
			indices:  []int{0},
			wantErr:  ErrSetNotFound,
		},
		{
			name: "mmlib missing model metadata doc",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				m := NewMMlibBase(st)
				return m, mustSave(t, m, SaveRequest{Set: mustNewSet(t, 4)}).SetID
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteDoc(t, st, mmlibMetaCollection, fmt.Sprintf("%s-m%05d", setID, 2))
			},
			indices: []int{2},
		},
		{
			name: "mmlib missing model params blob",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				m := NewMMlibBase(st)
				return m, mustSave(t, m, SaveRequest{Set: mustNewSet(t, 4)}).SetID
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteBlob(t, st, fmt.Sprintf("%s/%s/%d/params.bin", mmlibBlobPrefix, setID, 1))
			},
			indices: []int{1},
		},
		{
			name: "update delta missing diff list doc",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				u := NewUpdate(st)
				_, delta := deltaSave(t, u, st, mustNewSet(t, 5))
				return u, delta
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteDoc(t, st, updateDiffCollection, setID)
			},
			indices: []int{1},
		},
		{
			name: "update delta missing hash doc",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				u := NewUpdate(st)
				_, delta := deltaSave(t, u, st, mustNewSet(t, 5))
				return u, delta
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteDoc(t, st, updateHashCollection, setID)
			},
			indices: []int{1},
		},
		{
			name: "update delta missing diff blob",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				u := NewUpdate(st)
				_, delta := deltaSave(t, u, st, mustNewSet(t, 5))
				return u, delta
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteBlob(t, st, updateBlobPrefix+"/"+setID+"/diff.bin")
			},
			// Model 1 was fully retrained in the cycle, so its diff
			// segments live in the deleted blob.
			indices: []int{1},
		},
		{
			name: "update delta missing base layer",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				u := NewUpdate(st)
				base, delta := deltaSave(t, u, st, mustNewSet(t, 5))
				mustDeleteDoc(t, st, updateCollection, base)
				return u, delta
			},
			sabotage: func(*testing.T, Stores, string) {},
			indices:  []int{0},
			wantErr:  ErrSetNotFound,
		},
		{
			name: "provenance delta missing train doc",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				p := NewProvenance(st)
				_, delta := deltaSave(t, p, st, mustNewSet(t, 5))
				return p, delta
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteDoc(t, st, provenanceTrainCollection, setID)
			},
			indices: []int{1},
		},
		{
			name: "provenance delta missing update records",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				p := NewProvenance(st)
				_, delta := deltaSave(t, p, st, mustNewSet(t, 5))
				return p, delta
			},
			sabotage: func(t *testing.T, st Stores, setID string) {
				mustDeleteDoc(t, st, provenanceUpdateCollection, setID)
			},
			indices: []int{1},
		},
		{
			name: "provenance delta missing base layer",
			setup: func(t *testing.T, st Stores) (PartialRecoverer, string) {
				p := NewProvenance(st)
				base, delta := deltaSave(t, p, st, mustNewSet(t, 5))
				mustDeleteDoc(t, st, provenanceCollection, base)
				return p, delta
			},
			sabotage: func(*testing.T, Stores, string) {},
			indices:  []int{2},
			wantErr:  ErrSetNotFound,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := NewMemStores()
			r, setID := tc.setup(t, st)
			tc.sabotage(t, st, setID)
			rec, err := r.RecoverModels(setID, tc.indices)
			if err == nil {
				t.Fatalf("sabotaged recovery succeeded with %d models", len(rec.Models))
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func mustDeleteBlob(t *testing.T, st Stores, key string) {
	t.Helper()
	if err := st.Blobs.Delete(key); err != nil {
		t.Fatalf("deleting blob %s: %v", key, err)
	}
}

func mustDeleteDoc(t *testing.T, st Stores, collection, id string) {
	t.Helper()
	if err := st.Docs.Delete(collection, id); err != nil {
		t.Fatalf("deleting doc %s/%s: %v", collection, id, err)
	}
}
