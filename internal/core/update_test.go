package core

import (
	"errors"
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

// saveUpdateChain drives a U1 + k×U3 scenario through an Update
// approach and returns the set IDs and the in-memory truth after each
// save.
func saveUpdateChain(t *testing.T, u *Update, st Stores, cycles int) (ids []string, truths []*ModelSet) {
	t.Helper()
	set := mustNewSet(t, 8)
	res := mustSave(t, u, SaveRequest{Set: set})
	ids = append(ids, res.SetID)
	truths = append(truths, set.Clone())
	for c := 1; c <= cycles; c++ {
		updates := runCycle(t, set, st.Datasets, c, []int{c % 8, (c + 3) % 8}, []int{(c + 5) % 8})
		res = mustSave(t, u, SaveRequest{Set: set, Base: ids[len(ids)-1], Updates: updates})
		ids = append(ids, res.SetID)
		truths = append(truths, set.Clone())
	}
	return ids, truths
}

func TestUpdateRoundTripAcrossCycles(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	ids, truths := saveUpdateChain(t, u, st, 3)
	for i, id := range ids {
		got := mustRecover(t, u, id)
		if !truths[i].Equal(got) {
			t.Fatalf("set %d (%s) recovered incorrectly", i, id)
		}
	}
}

func TestUpdateDerivedSavesAreSmall(t *testing.T) {
	// Paper proportions need the real model: with FFNN-48 and a 10%
	// update rate, a derived save (changed layers + hash info) is a
	// small fraction of a full snapshot.
	st := NewMemStores()
	u := NewUpdate(st)
	set := mustNewSetArch(t, nn.FFNN48(), 20)
	resFull := mustSave(t, u, SaveRequest{Set: set})

	updates := runCycle(t, set, st.Datasets, 1, []int{0}, []int{1})
	resDerived := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID, Updates: updates})

	if resDerived.BytesWritten >= resFull.BytesWritten {
		t.Fatalf("derived save (%d B) not smaller than full save (%d B)",
			resDerived.BytesWritten, resFull.BytesWritten)
	}
	// 2 of 20 models changed (one fully, one partially): the derived
	// save must stay well under half of a full snapshot even with hash
	// info included.
	if resDerived.BytesWritten > resFull.BytesWritten/2 {
		t.Fatalf("derived save too large: %d vs full %d", resDerived.BytesWritten, resFull.BytesWritten)
	}
}

func TestUpdateDiffListMatchesTraining(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	set := mustNewSet(t, 6)
	resFull := mustSave(t, u, SaveRequest{Set: set})

	// Model 2: full update; model 4: partial (last layer only).
	runCycle(t, set, st.Datasets, 1, []int{2}, []int{4})
	resDerived := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})

	var diff diffDoc
	if err := st.Docs.Get(updateDiffCollection, resDerived.SetID, &diff); err != nil {
		t.Fatal(err)
	}
	keys := set.Arch.ParamKeys()
	last := lastLayerOf(set.Arch)
	touched := map[int]map[string]bool{}
	for _, e := range diff.Entries {
		if touched[e.M] == nil {
			touched[e.M] = map[string]bool{}
		}
		touched[e.M][keys[e.P]] = true
	}
	if len(touched) != 2 {
		t.Fatalf("diff touches models %v, want exactly {2, 4}", touched)
	}
	if len(touched[2]) != len(keys) {
		t.Errorf("fully updated model 2 has %d changed params, want all %d", len(touched[2]), len(keys))
	}
	for key := range touched[4] {
		if key != last+".weight" && key != last+".bias" {
			t.Errorf("partially updated model 4 changed %s, want only %s.*", key, last)
		}
	}
}

func TestUpdateNoChangesDiffEmpty(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	set := mustNewSet(t, 4)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	// Save again without touching any model.
	resDerived := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})

	var diff diffDoc
	if err := st.Docs.Get(updateDiffCollection, resDerived.SetID, &diff); err != nil {
		t.Fatal(err)
	}
	if len(diff.Entries) != 0 {
		t.Fatalf("diff has %d entries for an unchanged set", len(diff.Entries))
	}
	got := mustRecover(t, u, resDerived.SetID)
	if !set.Equal(got) {
		t.Fatal("unchanged derived set recovered incorrectly")
	}
}

func TestUpdateChainDepthGrows(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	ids, _ := saveUpdateChain(t, u, st, 3)
	for i, id := range ids {
		depth, err := u.ChainDepth(id)
		if err != nil {
			t.Fatal(err)
		}
		if depth != i {
			t.Errorf("set %s depth = %d, want %d", id, depth, i)
		}
	}
}

func TestUpdateSnapshotIntervalBoundsChain(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.SnapshotInterval = 2
	ids, truths := saveUpdateChain(t, u, st, 5)
	// Depths must cycle 0,1,0,1,... instead of growing.
	for i, id := range ids {
		depth, err := u.ChainDepth(id)
		if err != nil {
			t.Fatal(err)
		}
		if depth >= u.SnapshotInterval {
			t.Errorf("set %s depth = %d, exceeds snapshot interval", id, depth)
		}
		got := mustRecover(t, u, id)
		if !truths[i].Equal(got) {
			t.Errorf("set %d recovered incorrectly with snapshots", i)
		}
	}
}

func TestUpdateCompressionRoundTripAndSmaller(t *testing.T) {
	plain := NewUpdate(NewMemStores())
	compressed := NewUpdate(NewMemStores())
	compressed.Compress = true

	// A realistic compressible update: pruning-style sparsification
	// zeroes most of a layer (common when deployed models are pruned
	// between cycles), which zlib crunches dramatically.
	run := func(u *Update) (int64, *ModelSet, string) {
		set := mustNewSetArch(t, nn.FFNN48(), 10)
		resFull := mustSave(t, u, SaveRequest{Set: set})
		w, err := set.Models[0].LayerParam("fc2.weight")
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Data {
			if i%10 != 0 {
				w.Data[i] = 0
			}
		}
		res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})
		return res.BytesWritten, set.Clone(), res.SetID
	}
	plainBytes, plainTruth, plainID := run(plain)
	compBytes, compTruth, compID := run(compressed)

	if compBytes >= plainBytes {
		t.Errorf("compressed derived save (%d B) not smaller than plain (%d B)", compBytes, plainBytes)
	}
	if got := mustRecover(t, plain, plainID); !plainTruth.Equal(got) {
		t.Error("plain recovery wrong")
	}
	if got := mustRecover(t, compressed, compID); !compTruth.Equal(got) {
		t.Error("compressed recovery wrong")
	}
}

func TestUpdateCompressionSkippedWhenUnhelpful(t *testing.T) {
	// Freshly trained float parameters are near-incompressible; the
	// approach must fall back to the raw blob rather than growing it.
	st := NewMemStores()
	u := NewUpdate(st)
	u.Compress = true
	set := mustNewSet(t, 6)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	runCycle(t, set, st.Datasets, 1, []int{0, 1}, nil)
	res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})

	var diff diffDoc
	if err := st.Docs.Get(updateDiffCollection, res.SetID, &diff); err != nil {
		t.Fatal(err)
	}
	// Whether or not zlib happened to win, recovery must be exact.
	got := mustRecover(t, u, res.SetID)
	if !set.Equal(got) {
		t.Fatal("recovery wrong after compression decision")
	}
}

func TestUpdateCorruptDiffBlobDetected(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	set := mustNewSet(t, 4)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	runCycle(t, set, st.Datasets, 1, []int{0}, nil)
	resDerived := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})

	key := updateBlobPrefix + "/" + resDerived.SetID + "/diff.bin"
	blob, err := st.Blobs.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	blob[0] ^= 0xff // flip one parameter byte
	if err := st.Blobs.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Recover(resDerived.SetID); err == nil {
		t.Fatal("corrupted diff blob recovered without error (hash check failed to fire)")
	}
}

func TestUpdateSaveWithUnknownBase(t *testing.T) {
	u := NewUpdate(NewMemStores())
	set := mustNewSet(t, 2)
	if _, err := u.Save(SaveRequest{Set: set, Base: "up-404"}); !errors.Is(err, ErrSetNotFound) {
		t.Fatal("save against unknown base accepted")
	}
}

func TestUpdateSaveBaseSizeMismatch(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	res := mustSave(t, u, SaveRequest{Set: mustNewSet(t, 4)})
	other := mustNewSet(t, 6)
	if _, err := u.Save(SaveRequest{Set: other, Base: res.SetID}); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("derived save with mismatched set size: err = %v, want ErrBaseMismatch", err)
	}
}

func TestUpdateRecoverUnknownSet(t *testing.T) {
	u := NewUpdate(NewMemStores())
	if _, err := u.Recover("up-404"); !errors.Is(err, ErrSetNotFound) {
		t.Fatal("unknown set recovered")
	}
}
