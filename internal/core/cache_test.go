package core

import (
	"fmt"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/cas"
)

// servingApproach is the intersection of contracts the serving-tier
// matrix exercises: full and selective recovery.
type servingApproach interface {
	Approach
	PartialRecoverer
}

// servingFactories builds each approach over the given stores.
var servingFactories = []struct {
	name string
	make func(st Stores, opts ...Option) servingApproach
}{
	{"baseline", func(st Stores, opts ...Option) servingApproach { return NewBaseline(st, opts...) }},
	{"mmlib", func(st Stores, opts ...Option) servingApproach { return NewMMlibBase(st, opts...) }},
	{"update", func(st Stores, opts ...Option) servingApproach { return NewUpdate(st, opts...) }},
	{"provenance", func(st Stores, opts ...Option) servingApproach { return NewProvenance(st, opts...) }},
}

// TestCacheOnOffRecoveryEquality is the serving tier's core property:
// across the whole approach × codec × dedup matrix, recovery through a
// chunk cache returns byte-identical models to recovery without one —
// cold and warm alike. Each cell saves the same fleet (a full snapshot
// plus one incremental save) into two sibling stores, one cached and
// one not, and compares every recovered parameter.
func TestCacheOnOffRecoveryEquality(t *testing.T) {
	for _, f := range servingFactories {
		for _, codecID := range []string{"none", "zlib", "tlz"} {
			for _, dedup := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/dedup=%v", f.name, codecID, dedup)
				t.Run(name, func(t *testing.T) {
					runCacheEqualityCell(t, f.make, codecID, dedup)
				})
			}
		}
	}
}

func runCacheEqualityCell(t *testing.T, make func(Stores, ...Option) servingApproach, codecID string, dedup bool) {
	t.Helper()
	stOn := NewMemStores()
	// The off-store shares the dataset registry so both sides record —
	// and provenance recovery resolves — the same dataset IDs.
	stOff := NewMemStores()
	stOff.Datasets = stOn.Datasets

	opts := []Option{WithCodec(codecID)}
	if dedup {
		opts = append(opts, WithDedup())
	}
	aOn := make(stOn, append([]Option{WithChunkCache(8 << 20)}, opts...)...)
	aOff := make(stOff, opts...)
	if cas.For(stOff.Blobs).ChunkCache() != nil {
		t.Fatal("uncached store grew a cache")
	}

	set := mustNewSet(t, 4)
	full := SaveRequest{Set: set, Train: testTrainInfo()}
	idOn := mustSave(t, aOn, full).SetID
	idOff := mustSave(t, aOff, full).SetID
	updates := runCycle(t, set, stOn.Datasets, 1, []int{1}, []int{2})
	idOn = mustSave(t, aOn, SaveRequest{
		Set: set, Base: idOn, Updates: updates, Train: testTrainInfo(),
	}).SetID
	idOff = mustSave(t, aOff, SaveRequest{
		Set: set, Base: idOff, Updates: updates, Train: testTrainInfo(),
	}).SetID

	compareFull := func(pass string) {
		got := mustRecover(t, aOn, idOn)
		want := mustRecover(t, aOff, idOff)
		if len(got.Models) != len(set.Models) || len(want.Models) != len(set.Models) {
			t.Fatalf("%s: recovered %d/%d models, want %d", pass, len(got.Models), len(want.Models), len(set.Models))
		}
		for i := range set.Models {
			if !got.Models[i].ParamsEqual(want.Models[i]) {
				t.Fatalf("%s: model %d differs between cached and uncached recovery", pass, i)
			}
			if !got.Models[i].ParamsEqual(set.Models[i]) {
				t.Fatalf("%s: model %d differs from the saved truth", pass, i)
			}
		}
	}
	comparePartial := func(pass string, indices []int) {
		got, err := aOn.RecoverModels(idOn, indices)
		if err != nil {
			t.Fatalf("%s: cached partial recovery: %v", pass, err)
		}
		want, err := aOff.RecoverModels(idOff, indices)
		if err != nil {
			t.Fatalf("%s: uncached partial recovery: %v", pass, err)
		}
		for _, i := range indices {
			if got.Models[i] == nil || want.Models[i] == nil {
				t.Fatalf("%s: model %d missing from partial recovery", pass, i)
			}
			if !got.Models[i].ParamsEqual(want.Models[i]) {
				t.Fatalf("%s: partial model %d differs between cached and uncached", pass, i)
			}
			if !got.Models[i].ParamsEqual(set.Models[i]) {
				t.Fatalf("%s: partial model %d differs from the saved truth", pass, i)
			}
		}
	}

	compareFull("cold")
	compareFull("warm")
	comparePartial("cold", []int{0, 2})
	comparePartial("warm", []int{0, 2})

	c := cas.For(stOn.Blobs).ChunkCache()
	if c == nil {
		t.Fatal("WithChunkCache attached no cache")
	}
	if dedup && c.Stats().Hits == 0 {
		t.Error("warm dedup recovery recorded no cache hits")
	}
}
