package core

import (
	"archive/tar"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/mmm-go/mmm/internal/dataset"
)

// Archive transfer: sets are saved "for analytical and archival
// purposes", and archives eventually move — offsite backup, handover
// to an analysis team, migration between stores. Export writes one
// set's complete recovery chain (metadata documents, binary artifacts,
// and — for Provenance — the referenced dataset specs) into a single
// tar stream; Import restores it into any stores.
//
// Entry layout inside the archive:
//
//	docs/<collection>/<id>.json    document-store entries (raw JSON)
//	blobs/<key>                    blob-store entries
//	datasets/<id>.json             dataset specs referenced by the chain
//
// Exported archives are self-contained for their approach: importing
// into empty stores makes the exported set recoverable there.

// Exporter is implemented by approaches that can export a set's chain.
type Exporter interface {
	// Export writes the archive of setID's full recovery chain to w.
	Export(setID string, w io.Writer) error
}

// setArtifacts enumerates one set's document keys (collection, id) and
// blob-key prefix for export.
type setArtifacts struct {
	docs       [][2]string
	blobPrefix string
	// datasetIDs lists referenced datasets whose specs must travel too.
	datasetIDs []string
}

// exportChain writes the artifacts of every chain element to w as tar.
func exportChain(st Stores, chain []SetInfo, artifactsOf func(SetInfo) (setArtifacts, error), w io.Writer) error {
	tw := tar.NewWriter(w)
	writeEntry := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)),
			ModTime: time.Unix(0, 0), // deterministic archives
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}

	seenDatasets := map[string]bool{}
	for _, info := range chain {
		arts, err := artifactsOf(info)
		if err != nil {
			return err
		}
		for _, dk := range arts.docs {
			var raw json.RawMessage
			if err := st.Docs.Get(dk[0], dk[1], &raw); err != nil {
				return fmt.Errorf("core: exporting %s/%s: %w", dk[0], dk[1], err)
			}
			if err := writeEntry("docs/"+dk[0]+"/"+dk[1]+".json", raw); err != nil {
				return err
			}
		}
		if arts.blobPrefix != "" {
			// Enumerate logical keys so deduplicated sets export too, and
			// read through the CAS layer: archives carry reassembled
			// logical bytes and stay importable into any store, dedup or
			// not.
			keys, err := blobKeysWithPrefix(st, arts.blobPrefix)
			if err != nil {
				return err
			}
			for _, k := range keys {
				data, err := getBlob(st, k)
				if err != nil {
					return fmt.Errorf("core: exporting blob %s: %w", k, err)
				}
				if err := writeEntry("blobs/"+k, data); err != nil {
					return err
				}
			}
		}
		for _, id := range arts.datasetIDs {
			if seenDatasets[id] {
				continue
			}
			seenDatasets[id] = true
			spec, err := st.Datasets.Spec(id)
			if err != nil {
				return fmt.Errorf("core: exporting dataset %s: %w", id, err)
			}
			raw, err := json.Marshal(spec)
			if err != nil {
				return err
			}
			if err := writeEntry("datasets/"+id+".json", raw); err != nil {
				return err
			}
		}
	}
	return tw.Close()
}

// ImportArchive restores an exported archive into st. Existing entries
// with the same keys are overwritten; the imported set IDs keep their
// original names, so import into stores that already contain different
// sets under the same IDs is rejected.
func ImportArchive(st Stores, r io.Reader) error {
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: reading archive: %w", err)
		}
		data, err := io.ReadAll(io.LimitReader(tr, 1<<31))
		if err != nil {
			return fmt.Errorf("core: reading archive entry %s: %w", hdr.Name, err)
		}
		switch {
		case strings.HasPrefix(hdr.Name, "docs/"):
			rest := strings.TrimPrefix(hdr.Name, "docs/")
			slash := strings.IndexByte(rest, '/')
			if slash < 0 || !strings.HasSuffix(rest, ".json") {
				return fmt.Errorf("core: malformed archive entry %q", hdr.Name)
			}
			collection := rest[:slash]
			id := strings.TrimSuffix(rest[slash+1:], ".json")
			if exists, err := st.Docs.Exists(collection, id); err == nil && exists {
				var current json.RawMessage
				if err := st.Docs.Get(collection, id, &current); err == nil && string(current) != string(data) {
					return fmt.Errorf("core: import conflict: %s/%s already exists with different content", collection, id)
				}
			}
			if err := st.Docs.Insert(collection, id, json.RawMessage(data)); err != nil {
				return fmt.Errorf("core: importing %s: %w", hdr.Name, err)
			}
		case strings.HasPrefix(hdr.Name, "blobs/"):
			key := strings.TrimPrefix(hdr.Name, "blobs/")
			if err := st.Blobs.Put(key, data); err != nil {
				return fmt.Errorf("core: importing %s: %w", hdr.Name, err)
			}
		case strings.HasPrefix(hdr.Name, "datasets/"):
			var spec dataset.Spec
			if err := json.Unmarshal(data, &spec); err != nil {
				return fmt.Errorf("core: importing %s: %w", hdr.Name, err)
			}
			if _, err := st.Datasets.Put(spec); err != nil {
				return fmt.Errorf("core: importing %s: %w", hdr.Name, err)
			}
		default:
			return fmt.Errorf("core: unknown archive entry %q", hdr.Name)
		}
	}
}

// Export implements Exporter for Baseline.
func (b *Baseline) Export(setID string, w io.Writer) error {
	chain, err := b.Lineage(setID)
	if err != nil {
		return err
	}
	return exportChain(b.stores, chain, func(info SetInfo) (setArtifacts, error) {
		return setArtifacts{
			docs:       [][2]string{{baselineCollection, info.SetID}},
			blobPrefix: baselineBlobPrefix + "/" + info.SetID + "/",
		}, nil
	}, w)
}

// Export implements Exporter for MMlibBase.
func (m *MMlibBase) Export(setID string, w io.Writer) error {
	chain, err := m.Lineage(setID)
	if err != nil {
		return err
	}
	return exportChain(m.stores, chain, func(info SetInfo) (setArtifacts, error) {
		docs := [][2]string{{mmlibSetCollection, info.SetID}}
		for i := 0; i < info.NumModels; i++ {
			modelID := fmt.Sprintf("%s-m%05d", info.SetID, i)
			docs = append(docs,
				[2]string{mmlibMetaCollection, modelID},
				[2]string{mmlibEnvCollection, modelID},
				[2]string{mmlibCodeCollection, modelID},
			)
		}
		return setArtifacts{
			docs:       docs,
			blobPrefix: mmlibBlobPrefix + "/" + info.SetID + "/",
		}, nil
	}, w)
}

// Export implements Exporter for Update.
func (u *Update) Export(setID string, w io.Writer) error {
	chain, err := u.Lineage(setID)
	if err != nil {
		return err
	}
	return exportChain(u.stores, chain, func(info SetInfo) (setArtifacts, error) {
		docs := [][2]string{
			{updateCollection, info.SetID},
			{updateHashCollection, info.SetID},
		}
		if info.Kind == "derived" {
			docs = append(docs, [2]string{updateDiffCollection, info.SetID})
		}
		return setArtifacts{
			docs:       docs,
			blobPrefix: updateBlobPrefix + "/" + info.SetID + "/",
		}, nil
	}, w)
}

// Export implements Exporter for Provenance: the archive additionally
// carries the dataset specs the chain's training replay needs.
func (p *Provenance) Export(setID string, w io.Writer) error {
	chain, err := p.Lineage(setID)
	if err != nil {
		return err
	}
	return exportChain(p.stores, chain, func(info SetInfo) (setArtifacts, error) {
		arts := setArtifacts{
			docs:       [][2]string{{provenanceCollection, info.SetID}},
			blobPrefix: provenanceBlobPrefix + "/" + info.SetID + "/",
		}
		if info.Kind == "derived" {
			arts.docs = append(arts.docs,
				[2]string{provenanceTrainCollection, info.SetID},
				[2]string{provenanceUpdateCollection, info.SetID},
			)
			var updates updatesDoc
			if err := p.stores.Docs.Get(provenanceUpdateCollection, info.SetID, &updates); err != nil {
				return setArtifacts{}, fmt.Errorf("core: reading update records of %s: %w", info.SetID, err)
			}
			ids := map[string]bool{}
			for _, u := range updates.Updates {
				ids[u.DatasetID] = true
			}
			for id := range ids {
				arts.datasetIDs = append(arts.datasetIDs, id)
			}
			sort.Strings(arts.datasetIDs)
		}
		return arts, nil
	}, w)
}
