package core

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/nn"
)

// PullSource describes where a set's parameters live for chunk-level
// transfer: the architecture to rebuild models with and the blob key of
// the single concatenated parameter file whose CAS recipe the pull
// protocol exposes. Only full snapshots with one params blob qualify —
// derived sets (Update/Provenance deltas) and per-model layouts
// (MMlibBase) recover through chains the client cannot chunk-diff, and
// report ErrPullUnavailable instead so callers fall back to whole-blob
// recovery.
type PullSource struct {
	Arch      *nn.Architecture
	NumModels int
	// ParamsKey is the logical blob key of the concatenated parameter
	// file. Whether a CAS recipe exists under it (the set was saved
	// with dedup) is for the caller to probe: the source only proves
	// the layout is pullable.
	ParamsKey string
	// Codec is the codec ID recorded in the set's metadata.
	Codec string
}

// PullSourcer is implemented by approaches whose full snapshots can be
// served over the chunk-level pull protocol.
type PullSourcer interface {
	// PullSource resolves setID to its parameter-blob source, or an
	// error wrapping ErrPullUnavailable when the set exists but has no
	// single params blob (derived or per-model layout).
	PullSource(setID string) (PullSource, error)
}

// fullPullSource resolves a full-snapshot set saved by fullSave: meta
// plus the architecture blob under the approach's namespace.
func fullPullSource(st Stores, collection, blobPrefix, setID string) (PullSource, error) {
	meta, err := loadMeta(st, collection, setID)
	if err != nil {
		return PullSource{}, err
	}
	if meta.Kind != "full" {
		return PullSource{}, fmt.Errorf("core: set %q is %s, not a full snapshot: %w",
			setID, meta.Kind, ErrPullUnavailable)
	}
	arch, err := loadArchBlob(st, blobPrefix+"/"+setID+"/arch.json")
	if err != nil {
		return PullSource{}, err
	}
	return PullSource{
		Arch:      arch,
		NumModels: meta.NumModels,
		ParamsKey: blobPrefix + "/" + setID + "/params.bin",
		Codec:     meta.Codec,
	}, nil
}

// PullSource implements PullSourcer: every Baseline set is a full
// snapshot.
func (b *Baseline) PullSource(setID string) (PullSource, error) {
	return fullPullSource(b.stores, baselineCollection, baselineBlobPrefix, setID)
}

// PullSource implements PullSourcer for Update's initial (full) sets;
// derived diff chains report ErrPullUnavailable.
func (u *Update) PullSource(setID string) (PullSource, error) {
	return fullPullSource(u.stores, updateCollection, updateBlobPrefix, setID)
}

// PullSource implements PullSourcer for Provenance's initial (full)
// sets; derived chains report ErrPullUnavailable.
func (p *Provenance) PullSource(setID string) (PullSource, error) {
	return fullPullSource(p.stores, provenanceCollection, provenanceBlobPrefix, setID)
}

// PullSource implements PullSourcer. MMlibBase stores one file per
// model, never a single concatenated params blob, so no set it saves is
// pullable — but a known set must still be distinguishable from a
// missing one.
func (m *MMlibBase) PullSource(setID string) (PullSource, error) {
	if _, err := loadMeta(m.stores, mmlibSetCollection, setID); err != nil {
		return PullSource{}, err
	}
	return PullSource{}, fmt.Errorf("core: set %q is stored per-model: %w", setID, ErrPullUnavailable)
}
