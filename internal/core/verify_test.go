package core

import (
	"strings"
	"testing"
)

func TestVerifyCleanStores(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	m := NewMMlibBase(st)
	u := NewUpdate(st)
	p := NewProvenance(st)

	set := mustNewSet(t, 5)
	mustSave(t, b, SaveRequest{Set: set})
	mustSave(t, m, SaveRequest{Set: set})
	saveUpdateChain(t, u, st, 2)
	saveProvenanceChain(t, p, st, 2)

	for _, v := range []Verifier{b, m, u, p} {
		issues, err := v.VerifyStore()
		if err != nil {
			t.Fatal(err)
		}
		if len(issues) != 0 {
			t.Errorf("clean store reports issues: %v", issues)
		}
	}
}

func TestVerifyBaselineDetectsTruncatedBlob(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})
	key := baselineBlobPrefix + "/" + res.SetID + "/params.bin"
	blob, _ := st.Blobs.Get(key)
	if err := st.Blobs.Put(key, blob[:len(blob)-8]); err != nil {
		t.Fatal(err)
	}
	issues, err := b.VerifyStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0].Problem, "parameter blob") {
		t.Fatalf("issues = %v", issues)
	}
}

func TestVerifyBaselineDetectsMissingArch(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})
	if err := st.Blobs.Delete(baselineBlobPrefix + "/" + res.SetID + "/arch.json"); err != nil {
		t.Fatal(err)
	}
	issues, _ := b.VerifyStore()
	if len(issues) == 0 {
		t.Fatal("missing architecture not detected")
	}
}

func TestVerifyMMlibDetectsMissingModelDoc(t *testing.T) {
	st := NewMemStores()
	m := NewMMlibBase(st)
	res := mustSave(t, m, SaveRequest{Set: mustNewSet(t, 3)})
	if err := st.Docs.Delete(mmlibEnvCollection, res.SetID+"-m00001"); err != nil {
		t.Fatal(err)
	}
	issues, _ := m.VerifyStore()
	if len(issues) != 1 || !strings.Contains(issues[0].Problem, "model 1") {
		t.Fatalf("issues = %v", issues)
	}
}

func TestVerifyUpdateDetectsBrokenChain(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	ids, _ := saveUpdateChain(t, u, st, 2)
	// Delete the middle set's documents out from under the chain.
	for _, c := range []string{updateCollection, updateHashCollection, updateDiffCollection} {
		if err := st.Docs.Delete(c, ids[1]); err != nil {
			t.Fatal(err)
		}
	}
	issues, err := u.VerifyStore()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range issues {
		if strings.Contains(i.Problem, "chain broken") {
			found = true
		}
	}
	if !found {
		t.Fatalf("broken chain not detected: %v", issues)
	}
}

func TestVerifyUpdateDetectsDiffSizeMismatch(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	ids, _ := saveUpdateChain(t, u, st, 1)
	key := updateBlobPrefix + "/" + ids[1] + "/diff.bin"
	blob, err := st.Blobs.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Blobs.Put(key, append(blob, 0xde, 0xad)); err != nil {
		t.Fatal(err)
	}
	issues, _ := u.VerifyStore()
	found := false
	for _, i := range issues {
		if strings.Contains(i.Problem, "diff blob has") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diff size mismatch not detected: %v", issues)
	}
}

func TestVerifyProvenanceDetectsLostDataset(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, _ := saveProvenanceChain(t, p, st, 1)

	// Simulate the registry losing a referenced dataset: recoveries of
	// the derived set become impossible, and verify must say so.
	var updates updatesDoc
	if err := st.Docs.Get(provenanceUpdateCollection, ids[1], &updates); err != nil {
		t.Fatal(err)
	}
	updates.Updates[0].DatasetID = "ds-vanished"
	if err := st.Docs.Insert(provenanceUpdateCollection, ids[1], updates); err != nil {
		t.Fatal(err)
	}
	issues, err := p.VerifyStore()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range issues {
		if strings.Contains(i.Problem, "unresolvable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost dataset not detected: %v", issues)
	}
}

func TestVerifyProvenanceDetectsMissingTrainInfo(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, _ := saveProvenanceChain(t, p, st, 1)
	if err := st.Docs.Delete(provenanceTrainCollection, ids[1]); err != nil {
		t.Fatal(err)
	}
	issues, _ := p.VerifyStore()
	found := false
	for _, i := range issues {
		if strings.Contains(i.Problem, "training info") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing training info not detected: %v", issues)
	}
}

func TestIssueString(t *testing.T) {
	i := Issue{SetID: "bl-000001", Problem: "something"}
	if got := i.String(); !strings.Contains(got, "bl-000001") || !strings.Contains(got, "something") {
		t.Fatalf("Issue.String = %q", got)
	}
}
