package core

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/codec"
	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// settings holds the resolved construction options shared by all
// approaches.
type settings struct {
	// workers bounds the approach's per-model concurrency.
	workers int
	// metrics is the registry operations record into (obs.Default when
	// unset).
	metrics *obs.Registry
	// dedup routes blob writes through the content-addressed chunk
	// store.
	dedup bool
	// codec is the compression codec ID blobs are encoded with (""
	// means none; see WithCodec).
	codec string
	// cacheBytes sizes the in-memory serving-tier chunk cache attached
	// to the blob store (0 means no cache; see WithChunkCache).
	cacheBytes int64
}

// Option configures an approach at construction time.
type Option func(*settings)

// WithConcurrency bounds the number of workers an approach uses for
// per-model work during save and recovery. The default is
// runtime.GOMAXPROCS(0). n == 1 runs everything serially on the calling
// goroutine; because parallel workers write into disjoint, pre-offset
// slots and results are committed in model-index order, every setting
// produces byte-identical artifacts and identical set IDs — only the
// wall-clock time changes. Values below 1 are treated as 1.
func WithConcurrency(n int) Option {
	return func(s *settings) {
		if n < 1 {
			n = 1
		}
		s.workers = n
	}
}

// WithMetrics directs an approach's operation metrics (TTS/TTR
// histograms, error and integrity counters) into reg instead of the
// process-wide obs.Default — the isolation tests and embedders with
// their own registries need.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *settings) { s.metrics = reg }
}

// WithDedup routes every blob the approach writes — parameter
// concatenations, architecture definitions, diff blobs, per-model
// files — through the content-addressed chunk store, so bytes shared
// with any previously saved set (unchanged models across saves,
// identical architectures, repeated diffs) are stored once and only
// referenced. Reads are always dedup-aware regardless of this option:
// recovered parameters are bit-identical either way, and one store may
// mix deduplicated and plain sets freely. SaveResult.BytesWritten
// reports physical bytes (new chunks plus the recipe), which is what
// the paper's storage-consumption metric measures.
func WithDedup() Option {
	return func(s *settings) { s.dedup = true }
}

// WithCodec selects the compression codec — by its registered ID
// ("none", "zlib", "tlz", or anything added via codec.Register) — for
// the blobs the approach writes. All four approaches honor it:
//
//   - Update encodes its diff blobs with the codec (keeping the
//     encoded form only when it is smaller), generalizing the old
//     hard-coded zlib bool.
//   - Under WithDedup, every blob's CAS chunk bodies are encoded
//     per chunk, fanned out across the WithConcurrency worker pool;
//     diff blobs are then chunk-compressed rather than pre-compressed
//     so chunk-level deduplication still sees stable boundaries.
//   - Full-snapshot parameter blobs written without dedup stay raw:
//     ranged partial recovery depends on byte offsets into them.
//
// The codec ID is persisted in set metadata, diff documents, and CAS
// recipes, and every encoded artifact is self-describing, so stores
// written with any codec — or none, including stores from before
// codecs existed — are always readable regardless of what later
// writers configure. The ID is validated when a save first runs; an
// unregistered ID fails the save.
func WithCodec(id string) Option {
	return func(s *settings) { s.codec = id }
}

// WithChunkCache attaches an in-memory serving-tier cache of at most
// bytes to the approach's blob store. The cache holds decoded chunk
// bodies (keyed by content address, admission weighted by how many
// sets share the chunk), parsed CAS recipes, and per-set chunk
// indexes, so repeated recoveries of warm sets skip both store round
// trips and codec decode work. The cache lives on the store, not the
// approach: all approaches sharing one blob store share one cache, and
// it is grow-only — the largest budget requested wins. Recovered bytes
// are identical with or without a cache; only latency changes. Values
// <= 0 leave the store uncached.
func WithChunkCache(bytes int64) Option {
	return func(s *settings) { s.cacheBytes = bytes }
}

// attachCache wires the resolved cache budget onto the stores' CAS
// layer. Every approach constructor calls it.
func (s settings) attachCache(st Stores) {
	if s.cacheBytes > 0 {
		cas.For(st.Blobs).EnableCache(s.cacheBytes, s.metrics)
	}
}

// resolveCodec maps a configured codec ID to the codec a saveOp should
// encode with: nil for "" (unset) and "none", the registered codec
// otherwise. Called at save time because construction cannot fail.
func resolveCodec(id string) (codec.Codec, error) {
	if id == "" || id == codec.NoneID {
		return nil, nil
	}
	c, err := codec.Lookup(id)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return c, nil
}

// newSettings resolves opts over the defaults.
func newSettings(opts []Option) settings {
	s := settings{workers: pool.DefaultWorkers(), metrics: obs.Default}
	for _, o := range opts {
		o(&s)
	}
	return s
}
