package core

import (
	"errors"
	"syscall"

	"github.com/mmm-go/mmm/internal/storage/blobstore"
)

// Sentinel errors of the management layer. They are wrapped with
// additional context (set IDs, model indices) via %w, so callers match
// them with errors.Is instead of string comparison.
var (
	// ErrSetNotFound reports that no set is saved under the requested
	// set ID (in the approach's own namespace).
	ErrSetNotFound = errors.New("core: set not found")

	// ErrCorruptBlob reports that a stored artifact failed an integrity
	// check during recovery: wrong size, truncated framing, a layer
	// hash mismatch after applying a diff, or trailing bytes.
	ErrCorruptBlob = errors.New("core: corrupt blob")

	// ErrBudgetExceeded reports that a request exceeds a configured
	// resource budget (e.g. the server's per-save payload limit).
	ErrBudgetExceeded = errors.New("core: budget exceeded")

	// ErrBaseMismatch reports a derived save whose set is structurally
	// incompatible with its declared base (different architecture or
	// parameter count). Accepting such a save would persist a set that
	// recovers corrupt or not at all.
	ErrBaseMismatch = errors.New("core: set incompatible with base")

	// ErrChecksumMismatch reports that a stored blob's bytes no longer
	// match the checksums recorded when it was written — bit rot or
	// external tampering, as opposed to the structural damage
	// ErrCorruptBlob covers. It aliases the blob store's sentinel so
	// callers can match either layer's errors with errors.Is.
	ErrChecksumMismatch = blobstore.ErrChecksumMismatch

	// ErrPullUnavailable reports that a set cannot be served over the
	// chunk-level pull protocol — it has no single content-addressed
	// parameter blob (derived sets, per-model layouts, or sets saved
	// without dedup). Callers fall back to whole-blob recovery.
	ErrPullUnavailable = errors.New("core: pull transfer unavailable for set")

	// ErrNoSpace reports that the storage backend ran out of space
	// mid-operation. Saves roll back cleanly when this happens; the
	// client-facing sentinel lets callers distinguish "disk full, retry
	// after freeing space" from data-dependent save failures.
	ErrNoSpace = errors.New("core: storage out of space")

	// ErrSetExists reports an explicit-ID save (SaveRequest.SetID)
	// whose ID is already taken in the approach's namespace. Set IDs
	// are immutable once written — replication relies on "present means
	// complete" — so the save is rejected rather than overwriting.
	ErrSetExists = errors.New("core: set already exists")
)

// IsNoSpace matches disk-full conditions at any layer: the core
// sentinel (wire round-trips) or a raw syscall.ENOSPC escaping the
// filesystem backend.
func IsNoSpace(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, syscall.ENOSPC)
}
