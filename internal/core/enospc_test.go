package core

import (
	"context"
	"testing"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/storage/backend"
)

// Disk-full regression: a save that hits ENOSPC at ANY write boundary
// must roll back to nothing — in particular no orphaned chunks with
// nonzero refcounts in the dedup namespaces (zero residual raw keys
// subsumes that: no chunk, ref, recipe, or manifest keys at all) — and
// the error must classify as a no-space condition end to end.
func TestDiskFullSaveRollsBackCleanly(t *testing.T) {
	builders := map[string]func(Stores) Approach{
		"Baseline":      func(st Stores) Approach { return NewBaseline(st, WithConcurrency(8)) },
		"BaselineDedup": func(st Stores) Approach { return NewBaseline(st, WithConcurrency(8), WithDedup()) },
		"MMlibBase":     func(st Stores) Approach { return NewMMlibBase(st, WithConcurrency(8)) },
		"UpdateDedup":   func(st Stores) Approach { return NewUpdate(st, WithConcurrency(8), WithDedup()) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for k := 0; ; k++ {
				st, fBlob, _, rawBlob, rawDoc := faultyStores(dataset.NewRegistry())
				a := build(st)
				fBlob.FailPutsAfterWith(k, backend.ErrNoSpace)
				_, err := a.SaveContext(context.Background(), SaveRequest{Set: mustNewSet(t, 5)})
				if err == nil {
					if k == 0 {
						t.Fatal("save succeeded with every Put failing ENOSPC")
					}
					return // k grew past the save's write count
				}
				if !IsNoSpace(err) {
					t.Fatalf("k=%d: save failed with %v, want a no-space condition", k, err)
				}
				if keys := residualKeys(t, rawBlob, rawDoc); len(keys) != 0 {
					t.Fatalf("k=%d: disk-full save left residual keys %v", k, keys)
				}
			}
		})
	}
}

// The store must stay fsck-clean after a disk-full save even when the
// rollback itself is degraded (deletes failing while the disk thrashes):
// whatever debris remains classifies as orphans, never damage.
func TestDiskFullWithFailingRollbackIsRepairable(t *testing.T) {
	st, fBlob, _, rawBlob, rawDoc := faultyStores(dataset.NewRegistry())
	b := NewBaseline(st, WithConcurrency(8), WithDedup())
	fBlob.FailPutsAfterWith(4, backend.ErrNoSpace)
	fBlob.FailNextDeletes(1000)
	if _, err := b.SaveContext(context.Background(), SaveRequest{Set: mustNewSet(t, 5)}); err == nil {
		t.Fatal("save unexpectedly succeeded")
	}
	fBlob.FailNextDeletes(0)
	fBlob.FailPutsAfter(-1)
	if keys := residualKeys(t, rawBlob, rawDoc); len(keys) == 0 {
		t.Skip("rollback succeeded despite injected delete faults")
	}
	report, err := Fsck(st, FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Damaged() {
		t.Fatalf("disk-full debris misclassified as damage:\n%v", report.Issues)
	}
	if keys := residualKeys(t, rawBlob, rawDoc); len(keys) != 0 {
		t.Fatalf("fsck repair left residual keys %v", keys)
	}
}
