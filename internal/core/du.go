package core

import (
	"sort"
	"strings"

	"github.com/mmm-go/mmm/internal/storage/cas"
)

// Storage accounting (du): with deduplication the question "how big is
// this set" splits in two — the logical bytes its blobs hold when
// reassembled, and the physical bytes actually stored. Du answers both
// per set and store-wide, which is what makes dedup savings visible.

// DuSet is one committed set's storage occupancy.
type DuSet struct {
	// Approach is the lower-case approach name owning the set.
	Approach string `json:"approach"`
	SetID    string `json:"set_id"`
	// LogicalBytes is what the set's blobs hold when reassembled.
	LogicalBytes int64 `json:"logical_bytes"`
	// PhysicalBytes is the blob payload the set would occupy alone:
	// raw blob bytes plus the distinct chunks its recipes reference
	// (at their stored — possibly compressed — sizes). Chunks shared
	// between sets count toward each referencing set, so this column
	// sums to more than the store holds whenever dedup is saving space.
	PhysicalBytes int64 `json:"physical_bytes"`
	// Codec is the compression codec ID the set was saved with (""
	// for none).
	Codec string `json:"codec,omitempty"`
}

// DuReport is the result of a storage-accounting scan.
type DuReport struct {
	// Sets lists every committed set, ordered by approach then set ID.
	Sets []DuSet `json:"sets"`
	// LogicalBytes totals the reassembled size of every blob in the
	// managed namespaces (raw blobs plus recipe-recorded sizes).
	LogicalBytes int64 `json:"logical_bytes"`
	// PhysicalBytes totals what the store actually holds: raw blobs,
	// each chunk once, and the recipe documents.
	PhysicalBytes int64 `json:"physical_bytes"`
	// RawBytes, ChunkBytes, and RecipeBytes break PhysicalBytes down.
	RawBytes    int64 `json:"raw_bytes"`
	ChunkBytes  int64 `json:"chunk_bytes"`
	RecipeBytes int64 `json:"recipe_bytes"`
	// Chunks is the number of distinct chunks stored.
	Chunks int `json:"chunks"`
	// QuarantinedCount and QuarantinedBytes account the corrupt bodies
	// the scrubber moved aside. They are outside PhysicalBytes: the data
	// is dead weight pending repair or fsck cleanup, not store content.
	QuarantinedCount int   `json:"quarantined_count,omitempty"`
	QuarantinedBytes int64 `json:"quarantined_bytes,omitempty"`
	// DedupRatioPercent is LogicalBytes*100/PhysicalBytes — over 100
	// means deduplication is saving space.
	DedupRatioPercent int64 `json:"dedup_ratio_percent"`
}

// duApproaches names the four managed namespaces for Du.
var duApproaches = []struct{ name, collection, prefix string }{
	{"baseline", baselineCollection, baselineBlobPrefix},
	{"mmlib", mmlibSetCollection, mmlibBlobPrefix},
	{"provenance", provenanceCollection, provenanceBlobPrefix},
	{"update", updateCollection, updateBlobPrefix},
}

// Du scans the managed blob namespaces and reports logical versus
// physical occupancy per set and store-wide. It never modifies the
// store; unreadable recipes are skipped here and reported by Fsck.
func Du(st Stores) (*DuReport, error) {
	scan, err := cas.ScanStore(st.Blobs)
	if err != nil {
		return nil, err
	}
	keys, err := st.Blobs.Keys()
	if err != nil {
		return nil, err
	}
	report := &DuReport{Sets: []DuSet{}}

	// Raw (non-deduplicated) blob sizes across the managed namespaces.
	rawSizes := map[string]int64{}
	for _, k := range keys {
		if cas.IsKey(k) || ownedPrefix(k) == "" {
			continue
		}
		size, err := st.Blobs.Size(k)
		if err != nil {
			continue // deleted mid-scan; damage is Fsck's department
		}
		rawSizes[k] = size
		report.RawBytes += size
		// Chunk indexes are derived bookkeeping like recipes: physical
		// occupancy, but not part of the set's reassembled content.
		if !isChunkIndexKey(k) {
			report.LogicalBytes += size
		}
	}
	for logical, r := range scan.Recipes {
		if ownedPrefix(logical) == "" {
			continue
		}
		report.LogicalBytes += r.Size
	}
	report.Chunks = len(scan.Chunks)
	for _, size := range scan.Chunks {
		report.ChunkBytes += size
	}
	report.RecipeBytes = scan.RecipeBytes
	report.PhysicalBytes = report.RawBytes + report.ChunkBytes + report.RecipeBytes
	quarantined, err := st.Blobs.Quarantined()
	if err != nil {
		return nil, err
	}
	report.QuarantinedCount = len(quarantined)
	for _, q := range quarantined {
		report.QuarantinedBytes += q.Size
	}
	if report.PhysicalBytes > 0 {
		report.DedupRatioPercent = report.LogicalBytes * 100 / report.PhysicalBytes
	}

	for _, ap := range duApproaches {
		ids, err := st.Docs.IDs(ap.collection)
		if err != nil {
			return nil, err
		}
		sort.Strings(ids)
		for _, id := range ids {
			setPrefix := ap.prefix + "/" + id + "/"
			row := DuSet{Approach: ap.name, SetID: id}
			if meta, err := loadMeta(st, ap.collection, id); err == nil {
				row.Codec = meta.Codec
			}
			for k, size := range rawSizes {
				if strings.HasPrefix(k, setPrefix) {
					if !isChunkIndexKey(k) {
						row.LogicalBytes += size
					}
					row.PhysicalBytes += size
				}
			}
			// Chunks shared between blobs of the same set still count
			// once toward the set's physical footprint.
			seen := map[string]bool{}
			for logical, r := range scan.Recipes {
				if !strings.HasPrefix(logical, setPrefix) {
					continue
				}
				row.LogicalBytes += r.Size
				for _, c := range r.Chunks {
					if !seen[c.Hash] {
						seen[c.Hash] = true
						row.PhysicalBytes += scan.Chunks[c.Hash]
					}
				}
			}
			report.Sets = append(report.Sets, row)
		}
	}
	sort.Slice(report.Sets, func(i, j int) bool {
		a, b := report.Sets[i], report.Sets[j]
		if a.Approach != b.Approach {
			return a.Approach < b.Approach
		}
		return a.SetID < b.SetID
	})
	return report, nil
}
