package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportBaseline(t *testing.T) {
	src := NewMemStores()
	b := NewBaseline(src)
	set := mustNewSet(t, 6)
	res := mustSave(t, b, SaveRequest{Set: set})

	var buf bytes.Buffer
	if err := b.Export(res.SetID, &buf); err != nil {
		t.Fatal(err)
	}
	dst := NewMemStores()
	if err := ImportArchive(dst, &buf); err != nil {
		t.Fatal(err)
	}
	got := mustRecover(t, NewBaseline(dst), res.SetID)
	if !set.Equal(got) {
		t.Fatal("imported baseline set differs")
	}
}

func TestExportImportUpdateChain(t *testing.T) {
	src := NewMemStores()
	u := NewUpdate(src)
	ids, truths := saveUpdateChain(t, u, src, 3)

	// Export only the last set: the archive must carry the whole chain.
	var buf bytes.Buffer
	if err := u.Export(ids[3], &buf); err != nil {
		t.Fatal(err)
	}
	dst := NewMemStores()
	if err := ImportArchive(dst, &buf); err != nil {
		t.Fatal(err)
	}
	got := mustRecover(t, NewUpdate(dst), ids[3])
	if !truths[3].Equal(got) {
		t.Fatal("imported update chain recovered incorrectly")
	}
	// The imported store passes verification.
	issues, err := NewUpdate(dst).VerifyStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("imported store has issues: %v", issues)
	}
}

func TestExportImportProvenanceCarriesDatasets(t *testing.T) {
	src := NewMemStores()
	p := NewProvenance(src)
	ids, truths := saveProvenanceChain(t, p, src, 2)

	var buf bytes.Buffer
	if err := p.Export(ids[2], &buf); err != nil {
		t.Fatal(err)
	}
	archive := buf.String()
	if !strings.Contains(archive, "datasets/ds-") {
		t.Fatal("provenance archive carries no dataset specs")
	}

	// Import into completely fresh stores: recovery must retrain from
	// the carried dataset specs and reproduce the exact parameters.
	dst := NewMemStores()
	if err := ImportArchive(dst, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := mustRecover(t, NewProvenance(dst), ids[2])
	if !truths[2].Equal(got) {
		t.Fatal("imported provenance chain not bit-exact after retraining")
	}
}

func TestExportImportMMlib(t *testing.T) {
	src := NewMemStores()
	m := NewMMlibBase(src)
	set := mustNewSet(t, 4)
	res := mustSave(t, m, SaveRequest{Set: set})

	var buf bytes.Buffer
	if err := m.Export(res.SetID, &buf); err != nil {
		t.Fatal(err)
	}
	dst := NewMemStores()
	if err := ImportArchive(dst, &buf); err != nil {
		t.Fatal(err)
	}
	got := mustRecover(t, NewMMlibBase(dst), res.SetID)
	if !set.Equal(got) {
		t.Fatal("imported mmlib set differs")
	}
}

func TestExportDeterministic(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})
	var a, c bytes.Buffer
	if err := b.Export(res.SetID, &a); err != nil {
		t.Fatal(err)
	}
	if err := b.Export(res.SetID, &c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("two exports of the same set differ byte-wise")
	}
}

func TestImportConflictRejected(t *testing.T) {
	// Import into a store that already holds a *different* set under
	// the same ID must fail rather than silently overwrite.
	src := NewMemStores()
	b := NewBaseline(src)
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})
	var buf bytes.Buffer
	if err := b.Export(res.SetID, &buf); err != nil {
		t.Fatal(err)
	}

	dst := NewMemStores()
	other := NewBaseline(dst)
	// This save allocates the same ID (bl-000001) for different content.
	otherSet, err := NewModelSet(testArch(), 5, 999)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, other, SaveRequest{Set: otherSet})

	if err := ImportArchive(dst, &buf); err == nil {
		t.Fatal("conflicting import accepted")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	dst := NewMemStores()
	if err := ImportArchive(dst, strings.NewReader("this is not a tar stream")); err == nil {
		t.Fatal("garbage archive accepted")
	}
}

func TestImportIdempotent(t *testing.T) {
	src := NewMemStores()
	b := NewBaseline(src)
	set := mustNewSet(t, 3)
	res := mustSave(t, b, SaveRequest{Set: set})
	var buf bytes.Buffer
	if err := b.Export(res.SetID, &buf); err != nil {
		t.Fatal(err)
	}
	dst := NewMemStores()
	data := buf.Bytes()
	if err := ImportArchive(dst, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	// Importing the same archive again is a no-op, not a conflict.
	if err := ImportArchive(dst, bytes.NewReader(data)); err != nil {
		t.Fatalf("re-import rejected: %v", err)
	}
	got := mustRecover(t, NewBaseline(dst), res.SetID)
	if !set.Equal(got) {
		t.Fatal("set wrong after double import")
	}
}
