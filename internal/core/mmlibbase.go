package core

import (
	"context"
	"encoding/binary"
	"fmt"

	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/env"
	"github.com/mmm-go/mmm/internal/nn"
)

// MMlibBase reimplements the paper's reference point: MMlib's baseline
// approach, which is designed for *single*-model management. Every
// model of a set is saved individually with its own metadata document,
// environment snapshot, pipeline code, architecture definition, and a
// parameter file that embeds the parameter dictionary keys. For n
// models this issues O(n) writes to both stores and duplicates roughly
// 8 KB of model-independent data per model — exactly the behaviour the
// paper's approaches optimize away.
type MMlibBase struct {
	stores  Stores
	ids     idAllocator
	workers int
	metrics *approachObs
	dedup   bool
	codec   string
}

// Collections and blob namespace of MMlibBase.
const (
	mmlibSetCollection  = "mmlib_sets"
	mmlibMetaCollection = "mmlib_meta"
	mmlibEnvCollection  = "mmlib_env"
	mmlibCodeCollection = "mmlib_code"
	mmlibBlobPrefix     = "mmlib"
)

// NewMMlibBase returns an MMlibBase approach over the given stores.
func NewMMlibBase(stores Stores, opts ...Option) *MMlibBase {
	s := newSettings(opts)
	s.attachCache(stores)
	return &MMlibBase{stores: stores, ids: idAllocator{prefix: "ml"}, workers: s.workers,
		metrics: newApproachObs(s.metrics, "MMlib-base"), dedup: s.dedup, codec: s.codec}
}

// Name implements Approach.
func (m *MMlibBase) Name() string { return "MMlib-base" }

// modelMeta is the per-model metadata document MMlib keeps.
type modelMeta struct {
	ModelID    string `json:"model_id"`
	SetID      string `json:"set_id"`
	Index      int    `json:"index"`
	ArchName   string `json:"arch_name"`
	ParamCount int    `json:"param_count"`
	SaveFormat string `json:"save_format"`
	CodeDocID  string `json:"code_doc_id"`
	EnvDocID   string `json:"env_doc_id"`
}

// envDoc is the per-model environment snapshot, including the
// dependency freeze MMlib records.
type envDoc struct {
	Info   env.Info `json:"info"`
	Freeze []string `json:"freeze"`
}

// codeDoc is the per-model source snapshot: MMlib pickles the model
// class plus the train-service and data-loading code with every model.
type codeDoc struct {
	ModelClass   string `json:"model_class"`
	Pipeline     string `json:"pipeline"`
	TrainService string `json:"train_service"`
	DataLoader   string `json:"data_loader"`
}

// SaveContext implements Approach. Like Baseline, every save is a full
// snapshot; unlike Baseline, each model is persisted separately. The
// per-model bundles are independent, so they are written by the worker
// pool; the set document that makes the save visible is written last.
func (m *MMlibBase) SaveContext(ctx context.Context, req SaveRequest) (SaveResult, error) {
	sp := m.metrics.begin("save", "")
	res, err := m.save(ctx, req)
	sp.SetID = res.SetID
	m.metrics.endSave(sp, res, err)
	return res, err
}

func (m *MMlibBase) save(ctx context.Context, req SaveRequest) (SaveResult, error) {
	if err := validateSave(req); err != nil {
		return SaveResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return SaveResult{}, err
	}

	existing, err := m.stores.Docs.IDs(mmlibSetCollection)
	if err != nil {
		return SaveResult{}, err
	}
	setID, err := chooseSetID(req, &m.ids, existing)
	if err != nil {
		return SaveResult{}, err
	}

	environment := envDoc{Info: env.Capture(), Freeze: dependencyFreeze()}
	code := codeDoc{
		ModelClass:   modelClassCode(req.Set.Arch),
		Pipeline:     PipelineCode,
		TrainService: trainServiceCode,
		DataLoader:   dataLoaderCode,
	}

	cdc, err := resolveCodec(m.codec)
	if err != nil {
		return SaveResult{}, err
	}
	op := newSaveOp(m.stores, m.dedup, cdc, m.codec, m.workers, m.metrics.reg)
	err = pool.Run(ctx, m.workers, len(req.Set.Models), func(i int) error {
		model := req.Set.Models[i]
		modelID := fmt.Sprintf("%s-m%05d", setID, i)

		// One architecture blob and one framed parameter blob per model:
		// the redundancy O1 targets.
		if err := saveArchBlob(op, fmt.Sprintf("%s/%s/%d/arch.json", mmlibBlobPrefix, setID, i), req.Set.Arch); err != nil {
			return err
		}
		if err := op.putBlob(fmt.Sprintf("%s/%s/%d/params.bin", mmlibBlobPrefix, setID, i), frameParams(model)); err != nil {
			return fmt.Errorf("core: writing params of model %d: %w", i, err)
		}
		// Three documents per model: metadata, environment, code.
		if err := op.insertDoc(mmlibEnvCollection, modelID, environment); err != nil {
			return fmt.Errorf("core: writing env of model %d: %w", i, err)
		}
		if err := op.insertDoc(mmlibCodeCollection, modelID, code); err != nil {
			return fmt.Errorf("core: writing code of model %d: %w", i, err)
		}
		meta := modelMeta{
			ModelID: modelID, SetID: setID, Index: i,
			ArchName:   req.Set.Arch.Name,
			ParamCount: req.Set.Arch.ParamCount(),
			SaveFormat: "framed-state-dict-v1",
			CodeDocID:  modelID, EnvDocID: modelID,
		}
		if err := op.insertDoc(mmlibMetaCollection, modelID, meta); err != nil {
			return fmt.Errorf("core: writing metadata of model %d: %w", i, err)
		}
		return nil
	})
	if err != nil {
		op.rollback()
		return SaveResult{}, err
	}

	setDoc := setMeta{
		SetID: setID, Approach: m.Name(), Kind: "full",
		ArchName: req.Set.Arch.Name, NumModels: len(req.Set.Models),
		ParamCount: req.Set.Arch.ParamCount(), Codec: op.codecID,
	}
	if err := op.insertDoc(mmlibSetCollection, setID, setDoc); err != nil {
		op.rollback()
		return SaveResult{}, fmt.Errorf("core: writing set document: %w", err)
	}

	return op.result(setID), nil
}

// Save implements Approach.
//
// Deprecated: use SaveContext.
func (m *MMlibBase) Save(req SaveRequest) (SaveResult, error) {
	return m.SaveContext(context.Background(), req)
}

// RecoverContext implements Approach: every model is loaded
// individually — metadata, environment, and code documents plus two
// blobs per model, mirroring MMlib's full-bundle restore. These O(n)
// store round trips are why MMlib-base's TTR is an order of magnitude
// above Baseline's. The per-model restores are independent and run on
// the worker pool; model slots commit by index, and the set's shared
// architecture is deterministically taken from model 0's bundle.
func (m *MMlibBase) RecoverContext(ctx context.Context, setID string) (*ModelSet, error) {
	sp := m.metrics.begin("recover", setID)
	set, err := m.recover(ctx, setID)
	m.metrics.endRecover(sp, 0, err)
	return set, err
}

func (m *MMlibBase) recover(ctx context.Context, setID string) (*ModelSet, error) {
	meta, err := loadMeta(m.stores, mmlibSetCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != m.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not MMlib-base", setID, meta.Approach)
	}
	set := &ModelSet{Models: make([]*nn.Model, meta.NumModels)}
	archs := make([]*nn.Architecture, meta.NumModels)
	err = pool.Run(ctx, m.workers, meta.NumModels, func(i int) error {
		model, arch, err := m.recoverOne(setID, i)
		if err != nil {
			return err
		}
		archs[i] = arch
		set.Models[i] = model
		return nil
	})
	if err != nil {
		return nil, err
	}
	if meta.NumModels > 0 {
		set.Arch = archs[0]
	}
	return set, nil
}

// Recover implements Approach.
//
// Deprecated: use RecoverContext.
func (m *MMlibBase) Recover(setID string) (*ModelSet, error) {
	return m.RecoverContext(context.Background(), setID)
}

// SetIDs lists all sets saved by this approach, in save order.
func (m *MMlibBase) SetIDs() ([]string, error) {
	return m.stores.Docs.IDs(mmlibSetCollection)
}

// frameParams serializes a model's parameters as a self-describing
// state dict: for every parameter, a length-prefixed dictionary key
// followed by the length-prefixed raw float bytes. The per-key framing
// is the serialization overhead Baseline eliminates by storing keys
// once in the shared architecture.
func frameParams(m *nn.Model) []byte {
	var buf []byte
	for _, p := range m.Params() {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Name)))
		buf = append(buf, p.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(4*p.Tensor.Len()))
		buf = p.Tensor.AppendBytes(buf)
	}
	return buf
}

// unframeParams reverses frameParams into m, verifying keys and sizes.
func unframeParams(m *nn.Model, buf []byte) error {
	off := 0
	for _, p := range m.Params() {
		if off+2 > len(buf) {
			return fmt.Errorf("core: truncated state dict at key length: %w", ErrCorruptBlob)
		}
		kl := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if off+kl > len(buf) {
			return fmt.Errorf("core: truncated state dict at key: %w", ErrCorruptBlob)
		}
		key := string(buf[off : off+kl])
		off += kl
		if key != p.Name {
			return fmt.Errorf("core: state dict key %q, want %q: %w", key, p.Name, ErrCorruptBlob)
		}
		if off+4 > len(buf) {
			return fmt.Errorf("core: truncated state dict at value length: %w", ErrCorruptBlob)
		}
		vl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if vl != 4*p.Tensor.Len() {
			return fmt.Errorf("core: value of %q has %d bytes, want %d: %w", key, vl, 4*p.Tensor.Len(), ErrCorruptBlob)
		}
		if off+vl > len(buf) {
			return fmt.Errorf("core: truncated state dict at value: %w", ErrCorruptBlob)
		}
		if _, err := p.Tensor.SetFromBytes(buf[off : off+vl]); err != nil {
			return err
		}
		off += vl
	}
	if off != len(buf) {
		return fmt.Errorf("core: %d trailing bytes in state dict: %w", len(buf)-off, ErrCorruptBlob)
	}
	return nil
}

// modelClassCode returns the source snapshot of the model class, as
// MMlib would pickle alongside every saved model.
func modelClassCode(arch *nn.Architecture) string {
	code := "# Model class snapshot saved with every model (MMlib behaviour).\n"
	code += fmt.Sprintf("class %s(Module):\n    def __init__(self):\n", pythonIdent(arch.Name))
	for _, l := range arch.Layers {
		switch l.Kind {
		case nn.KindLinear:
			code += fmt.Sprintf("        self.%s = Linear(%d, %d)\n", l.Name, l.In, l.Out)
		case nn.KindConv2D:
			code += fmt.Sprintf("        self.%s = Conv2d(%d, %d, kernel_size=%d, padding='same')\n",
				l.Name, l.InChannels, l.OutChannels, l.Kernel)
		case nn.KindReLU:
			code += fmt.Sprintf("        self.%s = ReLU()\n", l.Name)
		case nn.KindTanh:
			code += fmt.Sprintf("        self.%s = Tanh()\n", l.Name)
		case nn.KindMaxPool2:
			code += fmt.Sprintf("        self.%s = MaxPool2d(2)\n", l.Name)
		case nn.KindFlatten:
			code += fmt.Sprintf("        self.%s = Flatten()\n", l.Name)
		}
	}
	code += "\n    def forward(self, x):\n"
	for _, l := range arch.Layers {
		code += fmt.Sprintf("        x = self.%s(x)\n", l.Name)
	}
	code += "        return x\n"
	return code
}

func pythonIdent(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		if r == '-' || r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// trainServiceCode is the train-service source snapshot MMlib pickles
// with every model — part of the ~8 KB per-model overhead the paper
// measures for MMlib-base.
const trainServiceCode = `# Train service snapshot (stored per model by MMlib).
class TrainService:
    """Wraps one training run so that it can be re-executed for
    restore checks. The service owns the optimizer, the loss, the
    data loader, and the checkpointing cadence."""

    def __init__(self, model, train_loader, config):
        self.model = model
        self.train_loader = train_loader
        self.config = config
        self.optimizer = SGD(model.parameters(),
                             lr=config.learning_rate,
                             momentum=config.momentum,
                             weight_decay=config.weight_decay)
        self.loss_fn = resolve_loss(config.loss)
        self.device = config.device

    def train(self):
        self.model.to(self.device)
        self.model.train()
        for epoch in range(self.config.epochs):
            running_loss = 0.0
            for batch_idx, (inputs, targets) in enumerate(self.train_loader):
                inputs = inputs.to(self.device, non_blocking=True)
                targets = targets.to(self.device, non_blocking=True)
                self.optimizer.zero_grad()
                outputs = self.model(inputs)
                loss = self.loss_fn(outputs, targets)
                loss.backward()
                self.optimizer.step()
                running_loss += loss.item() * inputs.size(0)
            self.on_epoch_end(epoch, running_loss / len(self.train_loader.dataset))
        return self.model

    def on_epoch_end(self, epoch, epoch_loss):
        if self.config.verbose:
            log.info("epoch %d: loss %.6f", epoch, epoch_loss)
        if self.config.checkpoint_every and epoch % self.config.checkpoint_every == 0:
            self.save_checkpoint(epoch)

    def save_checkpoint(self, epoch):
        state = {
            "epoch": epoch,
            "model_state": self.model.state_dict(),
            "optimizer_state": self.optimizer.state_dict(),
        }
        persist(state, checkpoint_path(self.config.run_id, epoch))

    def validate(self, val_loader):
        self.model.eval()
        total, correct, loss_sum = 0, 0, 0.0
        with no_grad():
            for inputs, targets in val_loader:
                outputs = self.model(inputs.to(self.device))
                loss_sum += self.loss_fn(outputs, targets.to(self.device)).item()
                total += targets.size(0)
        return loss_sum / max(total, 1)
`

// dataLoaderCode is the data-loading source snapshot MMlib stores per
// model.
const dataLoaderCode = `# Data loader snapshot (stored per model by MMlib).
class CellDataset(Dataset):
    """Loads one battery cell's discharge samples: inputs are
    (current, temperature, charge, soc), target is the voltage."""

    def __init__(self, dataset_ref, normalize=True):
        self.frame = load_samples(dataset_ref)
        self.stats = fit_stats(self.frame) if normalize else None

    def __len__(self):
        return len(self.frame)

    def __getitem__(self, idx):
        row = self.frame[idx]
        x = as_tensor([row.current, row.temp_c, row.charge_ah, row.soc])
        y = as_tensor([row.voltage])
        if self.stats is not None:
            x = (x - self.stats.x_mean) / self.stats.x_std
            y = (y - self.stats.y_mean) / self.stats.y_std
        return x, y

def make_loader(dataset_ref, batch_size, seed):
    ds = CellDataset(dataset_ref)
    gen = Generator().manual_seed(seed)
    return DataLoader(ds, batch_size=batch_size, shuffle=True,
                      generator=gen, num_workers=0, drop_last=False)
`

// dependencyFreeze is the pip-freeze-style dependency dump MMlib stores
// with every model's environment. The list mirrors a PyTorch 1.7.1
// environment (the paper's framework) and is the bulk of the per-model
// environment payload.
func dependencyFreeze() []string {
	return []string{
		"absl-py==0.11.0", "argon2-cffi==20.1.0", "astunparse==1.6.3",
		"attrs==20.3.0", "backcall==0.2.0", "bleach==3.2.1",
		"cachetools==4.2.0", "certifi==2020.12.5", "cffi==1.14.4",
		"chardet==4.0.0", "cloudpickle==1.6.0", "cycler==0.10.0",
		"dataclasses==0.6", "decorator==4.4.2", "defusedxml==0.6.0",
		"dill==0.3.3", "entrypoints==0.3", "future==0.18.2",
		"google-auth==1.24.0", "google-auth-oauthlib==0.4.2",
		"google-pasta==0.2.0", "grpcio==1.34.0", "h5py==2.10.0",
		"idna==2.10", "importlib-metadata==3.3.0", "ipykernel==5.4.2",
		"ipython==7.19.0", "ipython-genutils==0.2.0", "jedi==0.18.0",
		"jinja2==2.11.2", "joblib==1.0.0", "jsonschema==3.2.0",
		"jupyter-client==6.1.7", "jupyter-core==4.7.0", "kiwisolver==1.3.1",
		"markdown==3.3.3", "markupsafe==1.1.1", "matplotlib==3.3.3",
		"mistune==0.8.4", "mmlib==0.1.0", "nbclient==0.5.1",
		"nbconvert==6.0.7", "nbformat==5.0.8", "nest-asyncio==1.4.3",
		"notebook==6.1.5", "numpy==1.19.4", "oauthlib==3.1.0",
		"opt-einsum==3.3.0", "packaging==20.8", "pandas==1.2.0",
		"pandocfilters==1.4.3", "parso==0.8.1", "pexpect==4.8.0",
		"pickleshare==0.7.5", "pillow==8.0.1", "prometheus-client==0.9.0",
		"prompt-toolkit==3.0.8", "protobuf==3.14.0", "psutil==5.8.0",
		"ptyprocess==0.7.0", "pyasn1==0.4.8", "pyasn1-modules==0.2.8",
		"pycparser==2.20", "pygments==2.7.3", "pymongo==3.11.2",
		"pyparsing==2.4.7", "pyrsistent==0.17.3", "python-dateutil==2.8.1",
		"pytz==2020.5", "pyzmq==20.0.0", "requests==2.25.1",
		"requests-oauthlib==1.3.0", "rsa==4.6", "scikit-learn==0.24.0",
		"scipy==1.5.4", "send2trash==1.5.0", "six==1.15.0",
		"tensorboard==2.4.0", "terminado==0.9.1", "testpath==0.4.4",
		"threadpoolctl==2.1.0", "torch==1.7.1", "torchvision==0.8.2",
		"tornado==6.1", "traitlets==5.0.5", "typing-extensions==3.7.4.3",
		"urllib3==1.26.2", "wcwidth==0.2.5", "webencodings==0.5.1",
		"werkzeug==1.0.1", "wheel==0.36.2", "zipp==3.4.0",
	}
}
