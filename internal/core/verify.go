package core

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/nn"
)

// Store verification (fsck): saved sets are archives that may be kept
// for years; Verify walks every set of an approach and checks that its
// artifacts exist, have consistent sizes, and that recovery chains and
// dataset references resolve — without materializing any models.

// Issue is one problem found by verification.
type Issue struct {
	SetID   string
	Problem string
}

func (i Issue) String() string { return fmt.Sprintf("%s: %s", i.SetID, i.Problem) }

// Verifier is implemented by approaches that can check store integrity.
type Verifier interface {
	// VerifyStore checks every saved set and returns the issues found
	// (empty means the store is consistent).
	VerifyStore() ([]Issue, error)
}

// verifyFullArtifacts checks the blobs of a fullSave.
func verifyFullArtifacts(st Stores, blobPrefix string, meta setMeta) []Issue {
	var issues []Issue
	if _, err := blobSize(st, blobPrefix+"/"+meta.SetID+"/arch.json"); err != nil {
		issues = append(issues, Issue{meta.SetID, "architecture blob missing"})
	}
	size, err := blobSize(st, blobPrefix+"/"+meta.SetID+"/params.bin")
	if err != nil {
		issues = append(issues, Issue{meta.SetID, "parameter blob missing"})
	} else if want := int64(4 * meta.ParamCount * meta.NumModels); size != want {
		issues = append(issues, Issue{meta.SetID,
			fmt.Sprintf("parameter blob has %d bytes, want %d", size, want)})
	}
	return issues
}

// VerifyStore implements Verifier for Baseline.
func (b *Baseline) VerifyStore() ([]Issue, error) {
	ids, err := b.SetIDs()
	if err != nil {
		return nil, err
	}
	var issues []Issue
	for _, id := range ids {
		meta, err := loadMeta(b.stores, baselineCollection, id)
		if err != nil {
			issues = append(issues, Issue{id, "metadata unreadable"})
			continue
		}
		issues = append(issues, verifyFullArtifacts(b.stores, baselineBlobPrefix, meta)...)
	}
	return issues, nil
}

// VerifyStore implements Verifier for MMlibBase.
func (m *MMlibBase) VerifyStore() ([]Issue, error) {
	ids, err := m.SetIDs()
	if err != nil {
		return nil, err
	}
	var issues []Issue
	for _, id := range ids {
		meta, err := loadMeta(m.stores, mmlibSetCollection, id)
		if err != nil {
			issues = append(issues, Issue{id, "set document unreadable"})
			continue
		}
		for i := 0; i < meta.NumModels; i++ {
			modelID := fmt.Sprintf("%s-m%05d", id, i)
			for _, c := range []string{mmlibMetaCollection, mmlibEnvCollection, mmlibCodeCollection} {
				ok, err := m.stores.Docs.Exists(c, modelID)
				if err != nil || !ok {
					issues = append(issues, Issue{id,
						fmt.Sprintf("model %d: document %s/%s missing", i, c, modelID)})
				}
			}
			for _, blob := range []string{"arch.json", "params.bin"} {
				key := fmt.Sprintf("%s/%s/%d/%s", mmlibBlobPrefix, id, i, blob)
				if _, err := blobSize(m.stores, key); err != nil {
					issues = append(issues, Issue{id,
						fmt.Sprintf("model %d: blob %s missing", i, blob)})
				}
			}
		}
	}
	return issues, nil
}

// VerifyStore implements Verifier for Update. Beyond artifact
// existence it checks that diff lists are consistent with blob sizes,
// hash documents cover every model, and base chains resolve.
func (u *Update) VerifyStore() ([]Issue, error) {
	ids, err := u.SetIDs()
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, id := range ids {
		known[id] = true
	}
	issues := baseChainCycles(u.stores, updateCollection, ids)
	for _, id := range ids {
		meta, err := loadMeta(u.stores, updateCollection, id)
		if err != nil {
			issues = append(issues, Issue{id, "metadata unreadable"})
			continue
		}
		var hashes hashDoc
		if err := u.stores.Docs.Get(updateHashCollection, id, &hashes); err != nil {
			issues = append(issues, Issue{id, "hash document missing"})
		} else if len(hashes.Models) != meta.NumModels {
			issues = append(issues, Issue{id,
				fmt.Sprintf("hash document covers %d models, want %d", len(hashes.Models), meta.NumModels)})
		}

		if meta.Kind == "full" {
			issues = append(issues, verifyFullArtifacts(u.stores, updateBlobPrefix, meta)...)
			continue
		}
		if !known[meta.Base] {
			issues = append(issues, Issue{id, fmt.Sprintf("base set %q missing — chain broken", meta.Base)})
		}
		var diff diffDoc
		if err := u.stores.Docs.Get(updateDiffCollection, id, &diff); err != nil {
			issues = append(issues, Issue{id, "diff document missing"})
			continue
		}
		size, err := blobSize(u.stores, updateBlobPrefix+"/"+id+"/diff.bin")
		if err != nil {
			issues = append(issues, Issue{id, "diff blob missing"})
			continue
		}
		if diffCodecID(diff) == "" {
			arch, archErr := loadArchFromChain(u.stores, updateBlobPrefix, updateCollection, meta)
			if archErr != nil {
				issues = append(issues, Issue{id, "cannot resolve architecture: " + archErr.Error()})
				continue
			}
			sizes := paramByteSizes(arch)
			var want int64
			ok := true
			for _, e := range diff.Entries {
				if e.P < 0 || e.P >= len(sizes) || e.M < 0 || e.M >= meta.NumModels {
					issues = append(issues, Issue{id,
						fmt.Sprintf("diff entry (%d,%d) out of range", e.M, e.P)})
					ok = false
					break
				}
				want += int64(sizes[e.P])
			}
			if ok && size != want {
				issues = append(issues, Issue{id,
					fmt.Sprintf("diff blob has %d bytes, diff list implies %d", size, want)})
			}
		}
	}
	return issues, nil
}

// loadArchFromChain walks a derived set's chain to the full snapshot
// that stores the architecture. Cyclic chains terminate with an error
// instead of walking forever.
func loadArchFromChain(st Stores, blobPrefix, collection string, meta setMeta) (arch *nn.Architecture, err error) {
	seen := map[string]bool{}
	for meta.Kind != "full" {
		if meta.Base == "" {
			return nil, fmt.Errorf("derived set %q has no base", meta.SetID)
		}
		if seen[meta.SetID] {
			return nil, fmt.Errorf("base chain contains a cycle at %q", meta.SetID)
		}
		seen[meta.SetID] = true
		meta, err = loadMeta(st, collection, meta.Base)
		if err != nil {
			return nil, err
		}
	}
	a, err := loadArchBlob(st, blobPrefix+"/"+meta.SetID+"/arch.json")
	if err != nil {
		return nil, err
	}
	return a, nil
}

// baseChainCycles reports every set whose base chain never reaches a
// full snapshot because the metadata forms a cycle. Such a set is
// unrecoverable (recovery fails with ErrCorruptBlob instead of
// recursing forever), so fsck must flag it. Clean walks are memoized,
// keeping the scan linear over healthy stores.
func baseChainCycles(st Stores, collection string, ids []string) []Issue {
	var issues []Issue
	safe := map[string]bool{}
	for _, id := range ids {
		seen := map[string]bool{}
		cur := id
		cyclic := false
		for !safe[cur] {
			if seen[cur] {
				issues = append(issues, Issue{id, fmt.Sprintf("base chain contains a cycle at %q — set unrecoverable", cur)})
				cyclic = true
				break
			}
			seen[cur] = true
			meta, err := loadMeta(st, collection, cur)
			if err != nil || meta.Kind == "full" || meta.Base == "" {
				// Terminates here; unreadable or missing bases are
				// reported by the per-set checks.
				break
			}
			cur = meta.Base
		}
		if !cyclic {
			for s := range seen {
				safe[s] = true
			}
		}
	}
	return issues
}

// VerifyStore implements Verifier for Provenance. It additionally
// resolves every dataset reference against the registry.
func (p *Provenance) VerifyStore() ([]Issue, error) {
	ids, err := p.SetIDs()
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, id := range ids {
		known[id] = true
	}
	issues := baseChainCycles(p.stores, provenanceCollection, ids)
	for _, id := range ids {
		meta, err := loadMeta(p.stores, provenanceCollection, id)
		if err != nil {
			issues = append(issues, Issue{id, "metadata unreadable"})
			continue
		}
		if meta.Kind == "full" {
			issues = append(issues, verifyFullArtifacts(p.stores, provenanceBlobPrefix, meta)...)
			continue
		}
		if !known[meta.Base] {
			issues = append(issues, Issue{id, fmt.Sprintf("base set %q missing — chain broken", meta.Base)})
		}
		var train TrainInfo
		if err := p.stores.Docs.Get(provenanceTrainCollection, id, &train); err != nil {
			issues = append(issues, Issue{id, "training info missing"})
		} else if err := train.Config.Validate(); err != nil {
			issues = append(issues, Issue{id, "training config invalid: " + err.Error()})
		}
		var updates updatesDoc
		if err := p.stores.Docs.Get(provenanceUpdateCollection, id, &updates); err != nil {
			issues = append(issues, Issue{id, "update records missing"})
			continue
		}
		for _, u := range updates.Updates {
			if u.ModelIndex < 0 || u.ModelIndex >= meta.NumModels {
				issues = append(issues, Issue{id,
					fmt.Sprintf("update references model %d outside set of %d", u.ModelIndex, meta.NumModels)})
			}
			if _, err := p.stores.Datasets.Spec(u.DatasetID); err != nil {
				issues = append(issues, Issue{id,
					fmt.Sprintf("dataset %q unresolvable — set unrecoverable", u.DatasetID)})
			}
		}
	}
	return issues, nil
}
