package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/codec"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// Codec acceptance tests: every approach × every registered codec ×
// dedup on/off must recover bit-identically, pass fsck with no flags,
// and report the configured codec through Du; corrupt or unknown codec
// IDs must surface as ErrCorruptBlob, never as garbage models.

var codecMatrixApproaches = []string{"Baseline", "Update", "Provenance", "MMlibBase"}

func TestCodecMatrixRoundTrip(t *testing.T) {
	for _, name := range codecMatrixApproaches {
		for _, id := range []string{"", codec.NoneID, codec.ZlibID, codec.TLZID} {
			for _, dedup := range []bool{false, true} {
				label := id
				if label == "" {
					label = "unset"
				}
				t.Run(fmt.Sprintf("%s/%s/dedup=%v", name, label, dedup), func(t *testing.T) {
					st := NewMemStores()
					var opts []Option
					if id != "" {
						opts = append(opts, WithCodec(id))
					}
					commits := runDedupWorkload(t, st, name, dedup, opts...)

					// Readers are codec-agnostic: recover through an
					// approach configured with a *different* codec.
					reader := buildCodecApproach(t, st, name, WithCodec(codec.TLZID))
					for i, c := range commits {
						got, err := reader.Recover(c.setID)
						if err != nil {
							t.Fatalf("recovering commit %d (%s): %v", i, c.setID, err)
						}
						if !got.Equal(c.want) {
							t.Fatalf("commit %d (%s): recovered set differs from saved state", i, c.setID)
						}
					}

					report, err := Fsck(st, FsckOptions{})
					if err != nil {
						t.Fatalf("fsck: %v", err)
					}
					if n := report.DamagedCount(); n != 0 {
						t.Fatalf("fsck found %d damaged issue(s): %v", n, report.Issues)
					}

					du, err := Du(st)
					if err != nil {
						t.Fatalf("du: %v", err)
					}
					wantCodec := id
					if id == codec.NoneID {
						// "none" resolves to no codec; metadata records
						// the configured ID verbatim.
						wantCodec = codec.NoneID
					}
					for _, row := range du.Sets {
						if row.Codec != wantCodec {
							t.Errorf("du: set %s codec = %q, want %q", row.SetID, row.Codec, wantCodec)
						}
						// Provenance's derived sets hold only documents,
						// so zero blob bytes is legitimate; negatives
						// never are.
						if row.LogicalBytes < 0 || row.PhysicalBytes < 0 {
							t.Errorf("du: set %s has negative accounting: logical %d physical %d",
								row.SetID, row.LogicalBytes, row.PhysicalBytes)
						}
					}
				})
			}
		}
	}
}

// buildCodecApproach constructs one approach over st.
func buildCodecApproach(t *testing.T, st Stores, name string, opts ...Option) Approach {
	t.Helper()
	opts = append([]Option{WithConcurrency(1)}, opts...)
	switch name {
	case "Baseline":
		return NewBaseline(st, opts...)
	case "Update":
		return NewUpdate(st, opts...)
	case "Provenance":
		return NewProvenance(st, opts...)
	case "MMlibBase":
		return NewMMlibBase(st, opts...)
	}
	t.Fatalf("unknown approach %s", name)
	return nil
}

func TestUnknownCodecFailsSave(t *testing.T) {
	st := NewMemStores()
	for _, name := range codecMatrixApproaches {
		a := buildCodecApproach(t, st, name, WithCodec("bogus-42"))
		_, err := a.Save(SaveRequest{Set: mustNewSet(t, 2)})
		if err == nil || !strings.Contains(err.Error(), "bogus-42") {
			t.Errorf("%s: save with unknown codec: err = %v, want mention of bogus-42", name, err)
		}
	}
}

// TestPreCodecStoreReadable pins backward compatibility: sets saved
// with no codec configured (the pre-codec on-disk format: no codec
// fields anywhere) recover through codec-configured readers unchanged.
func TestPreCodecStoreReadable(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	set := mustNewSet(t, 3)
	res := mustSave(t, u, SaveRequest{Set: set})

	var meta setMeta
	if err := st.Docs.Get(updateCollection, res.SetID, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Codec != "" {
		t.Fatalf("uncodec'd save persisted codec %q, want empty", meta.Codec)
	}

	reader := NewUpdate(st, WithCodec(codec.ZlibID))
	got, err := reader.Recover(res.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(set) {
		t.Fatal("pre-codec set recovered differently through codec-configured reader")
	}
}

// TestDiffDocUnknownCodecID corrupts the persisted diff document to
// name a codec this build does not have: recovery must fail with
// ErrCorruptBlob instead of misreading the blob bytes.
func TestDiffDocUnknownCodecID(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st, WithCodec(codec.TLZID))
	id, _ := plantCompressedDiff(t, u, st)

	var diff diffDoc
	if err := st.Docs.Get(updateDiffCollection, id, &diff); err != nil {
		t.Fatal(err)
	}
	diff.Codec = "from-the-future"
	diff.Compressed = false
	if err := st.Docs.Insert(updateDiffCollection, id, diff); err != nil {
		t.Fatal(err)
	}

	if _, err := u.Recover(id); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("recover with unknown diff codec: err = %v, want ErrCorruptBlob", err)
	}
	if _, err := u.RecoverModels(id, []int{0}); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("partial recover with unknown diff codec: err = %v, want ErrCorruptBlob", err)
	}
}

// TestCorruptEncodedChunkBody overwrites a compressed CAS chunk body
// with bytes that frame-decode to garbage: reads must fail with
// ErrCorruptBlob (wrapping cas.ErrCorrupt), and fsck must report the
// damage rather than pass the store.
func TestCorruptEncodedChunkBody(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st, WithDedup(), WithCodec(codec.TLZID))
	// A factory fleet compresses well, guaranteeing encoded (framed)
	// chunk bodies rather than raw keep-if-smaller fallbacks.
	set := factoryFleet(t, testArch(), 4)
	res := mustSave(t, b, SaveRequest{Set: set})

	key := baselineBlobPrefix + "/" + res.SetID + "/params.bin"
	recipe, err := cas.For(st.Blobs).Recipe(key)
	if err != nil {
		t.Fatal(err)
	}
	if recipe.Codec != codec.TLZID {
		t.Fatalf("recipe codec = %q, want %q", recipe.Codec, codec.TLZID)
	}
	var tampered bool
	for _, c := range recipe.Chunks {
		stored, err := st.Blobs.Size(cas.ChunkKey(c.Hash))
		if err != nil {
			t.Fatal(err)
		}
		if stored == c.Size {
			continue // raw body; framing only applies to smaller-encoded ones
		}
		// Valid wire ID, garbage payload, still shorter than logical.
		garbage := append([]byte{1}, make([]byte, int(c.Size)/2)...)
		if err := st.Blobs.Put(cas.ChunkKey(c.Hash), garbage); err != nil {
			t.Fatal(err)
		}
		tampered = true
		break
	}
	if !tampered {
		t.Fatal("no encoded chunk found to tamper with; fleet should compress")
	}

	if _, err := b.Recover(res.SetID); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("recover with corrupt chunk body: err = %v, want ErrCorruptBlob", err)
	}
	report, err := Fsck(st, FsckOptions{})
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if report.DamagedCount() == 0 {
		t.Fatal("fsck passed a store with a corrupt encoded chunk body")
	}
}

// TestDedupCodecSharesChunksAcrossCodecs pins the design decision that
// content addresses cover logical bytes: the same parameters saved
// under different codecs share chunk hashes (one recipe references the
// other's chunks) instead of storing the data twice.
func TestDedupCodecSharesChunksAcrossCodecs(t *testing.T) {
	st := NewMemStores()
	set := factoryFleet(t, testArch(), 4)

	a1 := NewBaseline(st, WithDedup(), WithCodec(codec.TLZID))
	res1 := mustSave(t, a1, SaveRequest{Set: set})
	du1, err := Du(st)
	if err != nil {
		t.Fatal(err)
	}

	a2 := NewBaseline(st, WithDedup(), WithCodec(codec.ZlibID))
	res2 := mustSave(t, a2, SaveRequest{Set: set.Clone()})
	du2, err := Du(st)
	if err != nil {
		t.Fatal(err)
	}
	if du2.Chunks != du1.Chunks {
		t.Fatalf("second save under a different codec created %d new chunk(s); logical addressing should dedup them all",
			du2.Chunks-du1.Chunks)
	}
	for _, id := range []string{res1.SetID, res2.SetID} {
		got, err := a1.Recover(id)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(set) {
			t.Fatalf("set %s recovered differently", id)
		}
	}
}
