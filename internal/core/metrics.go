package core

import (
	"errors"

	"github.com/mmm-go/mmm/internal/obs"
)

// Metric families recorded by the approaches. The names are exported so
// dashboards, the server, and tests reference one definition; the
// backend-level counters live in the backend package.
const (
	// MetricSaveSeconds is the TTS histogram, labeled by approach.
	MetricSaveSeconds = "mmm_save_seconds"
	// MetricRecoverSeconds is the TTR histogram, labeled by approach.
	MetricRecoverSeconds = "mmm_recover_seconds"
	// MetricPartialRecoverSeconds times selective recoveries.
	MetricPartialRecoverSeconds = "mmm_partial_recover_seconds"
	// MetricOps counts operations, labeled by approach and op.
	MetricOps = "mmm_ops_total"
	// MetricOpErrors counts failed operations.
	MetricOpErrors = "mmm_op_errors_total"
	// MetricSaveBytes counts bytes written by successful saves.
	MetricSaveBytes = "mmm_save_bytes_total"
	// MetricSaveWriteOps counts store writes issued by successful saves.
	MetricSaveWriteOps = "mmm_save_write_ops_total"
	// MetricDiffBytes is the per-derived-save diff blob size histogram.
	MetricDiffBytes = "mmm_update_diff_bytes"
	// MetricDiffEntries counts changed layers across derived saves.
	MetricDiffEntries = "mmm_update_diff_entries_total"
	// MetricChainDepth is the recovery-chain length walked per recovery.
	MetricChainDepth = "mmm_recover_chain_depth"
	// MetricIntegrityFailures counts recoveries/saves failing integrity
	// checks, labeled by kind ("checksum" or "corrupt").
	MetricIntegrityFailures = "mmm_integrity_failures_total"
	// MetricDegradedSkips counts models skipped by degraded recoveries
	// (WithPartialResults), labeled by approach.
	MetricDegradedSkips = "mmm_recover_degraded_skips_total"
)

// approachObs records one approach's operations into an obs.Registry:
// TTS/TTR histograms, operation and error counters, diff volumes, chain
// depths, and integrity failures — the paper's evaluation quantities as
// runtime signals.
type approachObs struct {
	reg      *obs.Registry
	approach string
}

func newApproachObs(reg *obs.Registry, approach string) *approachObs {
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe(MetricSaveSeconds, "Time to save a model set (TTS), in seconds.")
	reg.Describe(MetricRecoverSeconds, "Time to recover a model set (TTR), in seconds.")
	reg.Describe(MetricPartialRecoverSeconds, "Time to recover selected models of a set, in seconds.")
	reg.Describe(MetricOps, "Save/recover operations started, by approach and operation.")
	reg.Describe(MetricOpErrors, "Save/recover operations that failed, by approach and operation.")
	reg.Describe(MetricSaveBytes, "Bytes written by successful saves, by approach.")
	reg.Describe(MetricSaveWriteOps, "Store writes issued by successful saves, by approach.")
	reg.Describe(MetricDiffBytes, "Diff blob size per derived Update save, in bytes.")
	reg.Describe(MetricDiffEntries, "Changed layers persisted across derived Update saves.")
	reg.Describe(MetricChainDepth, "Recovery-chain length walked per recovery.")
	reg.Describe(MetricIntegrityFailures, "Operations failed on integrity checks, by approach and kind.")
	reg.Describe(MetricDegradedSkips, "Models skipped by degraded recoveries, by approach.")
	return &approachObs{reg: reg, approach: approach}
}

func (o *approachObs) label() obs.Label { return obs.L("approach", o.approach) }

// begin opens a trace span for op on setID (setID may still be unknown
// for saves; the caller fills it in once allocated).
func (o *approachObs) begin(op, setID string) *obs.Span {
	return obs.StartSpan(op, o.approach, setID)
}

// endSave closes sp and records the save: TTS and write costs on
// success, error and integrity counters on failure.
func (o *approachObs) endSave(sp *obs.Span, res SaveResult, err error) {
	sp.End(err)
	l := o.label()
	o.reg.Counter(MetricOps, l, obs.L("op", sp.Op)).Inc()
	if err != nil {
		o.reg.Counter(MetricOpErrors, l, obs.L("op", sp.Op)).Inc()
		o.integrity(err)
		return
	}
	o.reg.Histogram(MetricSaveSeconds, obs.TimeBuckets, l).Observe(sp.Duration().Seconds())
	o.reg.Counter(MetricSaveBytes, l).Add(res.BytesWritten)
	o.reg.Counter(MetricSaveWriteOps, l).Add(res.WriteOps)
}

// endRecover closes sp and records the recovery: TTR (full or partial,
// by sp.Op) and the chain depth walked on success, error and integrity
// counters on failure. depth < 0 means "no chain" and skips the depth
// histogram.
func (o *approachObs) endRecover(sp *obs.Span, depth int, err error) {
	sp.End(err)
	l := o.label()
	o.reg.Counter(MetricOps, l, obs.L("op", sp.Op)).Inc()
	if err != nil {
		o.reg.Counter(MetricOpErrors, l, obs.L("op", sp.Op)).Inc()
		o.integrity(err)
		return
	}
	name := MetricRecoverSeconds
	if sp.Op == "partial_recover" {
		name = MetricPartialRecoverSeconds
	}
	o.reg.Histogram(name, obs.TimeBuckets, l).Observe(sp.Duration().Seconds())
	if depth >= 0 {
		o.reg.Histogram(MetricChainDepth, obs.DepthBuckets, l).Observe(float64(depth))
	}
}

// integrity classifies err into the integrity-failure counter; other
// error kinds (cancellations, I/O) are counted by MetricOpErrors only.
func (o *approachObs) integrity(err error) {
	var kind string
	switch {
	case errors.Is(err, ErrChecksumMismatch):
		kind = "checksum"
	case errors.Is(err, ErrCorruptBlob):
		kind = "corrupt"
	default:
		return
	}
	o.reg.Counter(MetricIntegrityFailures, o.label(), obs.L("kind", kind)).Inc()
}

// degradedSkips counts models a degraded recovery dropped. Skips are
// recorded instead of aborting, so they surface here, not in
// MetricOpErrors.
func (o *approachObs) degradedSkips(n int) {
	if n > 0 {
		o.reg.Counter(MetricDegradedSkips, o.label()).Add(int64(n))
	}
}

// diffStats records one derived save's diff volume.
func (o *approachObs) diffStats(entries, blobBytes int) {
	o.reg.Histogram(MetricDiffBytes, obs.SizeBuckets, o.label()).Observe(float64(blobBytes))
	o.reg.Counter(MetricDiffEntries, o.label()).Add(int64(entries))
}
