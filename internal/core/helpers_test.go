package core

import (
	"testing"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/env"
	"github.com/mmm-go/mmm/internal/nn"
)

// testArch is a small battery-style architecture that keeps the test
// fleets fast: 4 inputs (like FFNN-48), one hidden layer, one output.
func testArch() *nn.Architecture {
	return nn.FFNN("test-ffnn", 4, []int{8}, 1)
}

// lastLayerOf returns the name of the final linear layer, the layer
// partial updates retrain.
func lastLayerOf(arch *nn.Architecture) string {
	for i := len(arch.Layers) - 1; i >= 0; i-- {
		if arch.Layers[i].Kind == nn.KindLinear {
			return arch.Layers[i].Name
		}
	}
	panic("no linear layer")
}

const testFleetSeed = 1234

// testTrainInfo is the shared per-cycle training description.
func testTrainInfo() *TrainInfo {
	return &TrainInfo{
		Config: nn.TrainConfig{
			Epochs: 2, BatchSize: 16, LearningRate: 0.05, Loss: "mse",
		},
		Environment:  env.Capture(),
		PipelineCode: PipelineCode,
	}
}

// runCycle retrains the chosen models of set in place on cycle-specific
// battery data and returns the update records an approach needs. This
// is the miniature version of what the workload package does at fleet
// scale; core tests use it to produce honest model divergence.
func runCycle(t *testing.T, set *ModelSet, reg *dataset.Registry, cycle int, fullIdx, partialIdx []int) []ModelUpdate {
	t.Helper()
	info := testTrainInfo()
	var updates []ModelUpdate
	train := func(idx int, layers []string) {
		spec := dataset.Spec{
			Kind: dataset.KindBattery, CellID: idx, Cycle: cycle,
			SoH: 1 - 0.02*float64(cycle), Samples: 50, NoiseStd: 0.002,
			Seed: testFleetSeed,
		}
		id, err := reg.Put(spec)
		if err != nil {
			t.Fatal(err)
		}
		data, err := reg.Materialize(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := info.Config
		cfg.Seed = uint64(cycle)*1000 + uint64(idx)
		cfg.TrainLayers = layers
		if _, err := nn.Train(set.Models[idx], data, cfg); err != nil {
			t.Fatal(err)
		}
		updates = append(updates, ModelUpdate{
			ModelIndex: idx, DatasetID: id, TrainLayers: layers, Seed: cfg.Seed,
		})
	}
	for _, idx := range fullIdx {
		train(idx, nil)
	}
	last := lastLayerOf(set.Arch)
	for _, idx := range partialIdx {
		train(idx, []string{last})
	}
	return updates
}

// mustNewSet builds a test fleet or fails the test.
func mustNewSet(t *testing.T, n int) *ModelSet {
	t.Helper()
	return mustNewSetArch(t, testArch(), n)
}

// mustNewSetArch builds a test fleet of the given architecture. Tests
// asserting the paper's storage proportions use the real FFNN-48.
func mustNewSetArch(t *testing.T, arch *nn.Architecture, n int) *ModelSet {
	t.Helper()
	set, err := NewModelSet(arch, n, testFleetSeed)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// testDatasetSpec is a small battery dataset spec for one cell/cycle.
func testDatasetSpec(cellID, cycle int) dataset.Spec {
	return dataset.Spec{
		Kind: dataset.KindBattery, CellID: cellID, Cycle: cycle,
		SoH: 1 - 0.02*float64(cycle), Samples: 50, NoiseStd: 0.002,
		Seed: testFleetSeed,
	}
}

// mustSave fails the test on a save error.
func mustSave(t *testing.T, a Approach, req SaveRequest) SaveResult {
	t.Helper()
	res, err := a.Save(req)
	if err != nil {
		t.Fatalf("%s save: %v", a.Name(), err)
	}
	return res
}

// mustRecover fails the test on a recover error.
func mustRecover(t *testing.T, a Approach, setID string) *ModelSet {
	t.Helper()
	set, err := a.Recover(setID)
	if err != nil {
		t.Fatalf("%s recover %s: %v", a.Name(), setID, err)
	}
	return set
}
