package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/env"
	"github.com/mmm-go/mmm/internal/hashing"
	"github.com/mmm-go/mmm/internal/nn"
)

// Selective recovery implements the paper's motivating access pattern:
// "We save every model ever generated for analytical and archival
// purposes but only recover a selected number of models, for example,
// after an accident." Recovering a handful of cell models out of a
// 5000-model set should not require materializing the whole set; each
// approach supports it with its own strategy:
//
//   - Baseline reads only the selected models' byte ranges out of the
//     concatenated parameter blob (the file layout makes offsets a pure
//     function of the architecture).
//   - MMlibBase loads exactly the selected models' documents and blobs
//     (the per-model layout's one genuine advantage).
//   - Update recovers the selected models' base state recursively and
//     applies only their diff segments, located by computed offsets.
//   - Provenance recovers the selected models' base state recursively
//     and re-executes only their trainings.

// PartialRecovery is the result of recovering selected models: the
// shared architecture plus the recovered models keyed by their index
// in the original set.
type PartialRecovery struct {
	Arch   *nn.Architecture
	Models map[int]*nn.Model
}

// PartialRecoverer is implemented by approaches that can recover a
// subset of a saved set. All four approaches implement it.
type PartialRecoverer interface {
	// RecoverModelsContext recovers the models at the given indices of
	// the set saved under setID, honoring ctx cancellation. Options
	// configure the call; see WithPartialResults for degraded recovery.
	RecoverModelsContext(ctx context.Context, setID string, indices []int, opts ...RecoverOption) (*PartialRecovery, error)
	// RecoverModels recovers the models at the given indices of the set
	// saved under setID.
	//
	// Deprecated: use RecoverModelsContext. RecoverModels is
	// RecoverModelsContext with context.Background().
	RecoverModels(setID string, indices []int) (*PartialRecovery, error)
}

// validateIndices checks the requested indices against the set size and
// returns them deduplicated and sorted.
func validateIndices(indices []int, numModels int) ([]int, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("core: no model indices requested")
	}
	seen := make(map[int]bool, len(indices))
	out := make([]int, 0, len(indices))
	for _, i := range indices {
		if i < 0 || i >= numModels {
			return nil, fmt.Errorf("core: model index %d outside set of %d", i, numModels)
		}
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out, nil
}

// rangedModels reads the selected models out of a fullSave parameter
// blob using ranged reads, one independent read+decode per index. In
// degraded mode (rs), models whose range fails to read or decode are
// skipped instead of failing the call.
func rangedModels(ctx context.Context, st Stores, blobPrefix string, meta setMeta, indices []int, workers int, rs *recoverSettings) (*PartialRecovery, error) {
	arch, err := loadArchBlob(st, blobPrefix+"/"+meta.SetID+"/arch.json")
	if err != nil {
		return nil, err
	}
	perModel := int64(arch.ParamBytes())
	key := blobPrefix + "/" + meta.SetID + "/params.bin"
	// Dedup saves persisted a chunk index: load it once and resolve
	// each model's chunks from it directly. Sets without one (plain
	// saves, pre-index stores) use ranged blob reads — same bytes.
	ix, err := loadChunkIndex(st, blobPrefix, meta.SetID)
	if err != nil {
		return nil, err
	}
	models := make([]*nn.Model, len(indices))
	err = pool.Run(ctx, workers, len(indices), func(k int) error {
		idx := indices[k]
		one := func() error {
			var raw []byte
			var err error
			if ix != nil {
				raw, err = readViaIndex(st, ix, int64(idx)*perModel, perModel)
			} else {
				raw, err = getBlobRange(st, key, int64(idx)*perModel, perModel)
			}
			if err != nil {
				return fmt.Errorf("core: reading model %d: %w", idx, err)
			}
			m, err := nn.NewModelUninitialized(arch)
			if err != nil {
				return err
			}
			if _, err := m.SetParamBytes(raw); err != nil {
				return fmt.Errorf("core: recovering model %d: %w", idx, err)
			}
			models[k] = m
			return nil
		}
		if err := one(); err != nil && !rs.skip(idx, err) {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &PartialRecovery{Arch: arch, Models: make(map[int]*nn.Model, len(indices))}
	for k, idx := range indices {
		if models[k] != nil {
			out.Models[idx] = models[k]
		}
	}
	return out, nil
}

// RecoverModelsContext implements PartialRecoverer for Baseline.
func (b *Baseline) RecoverModelsContext(ctx context.Context, setID string, indices []int, opts ...RecoverOption) (*PartialRecovery, error) {
	rs := newRecoverSettings(opts)
	sp := b.metrics.begin("partial_recover", setID)
	rec, err := b.recoverModels(ctx, setID, indices, rs)
	rec, err = rs.finish(setID, rec, err)
	b.metrics.endRecover(sp, 0, err)
	b.metrics.degradedSkips(rs.skipCount())
	return rec, err
}

func (b *Baseline) recoverModels(ctx context.Context, setID string, indices []int, rs *recoverSettings) (*PartialRecovery, error) {
	meta, err := loadMeta(b.stores, baselineCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != b.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not Baseline", setID, meta.Approach)
	}
	idx, err := validateIndices(indices, meta.NumModels)
	if err != nil {
		return nil, err
	}
	return rangedModels(ctx, b.stores, baselineBlobPrefix, meta, idx, b.workers, rs)
}

// RecoverModels implements PartialRecoverer.
//
// Deprecated: use RecoverModelsContext.
func (b *Baseline) RecoverModels(setID string, indices []int) (*PartialRecovery, error) {
	return b.RecoverModelsContext(context.Background(), setID, indices)
}

// RecoverModelsContext implements PartialRecoverer for MMlibBase.
func (m *MMlibBase) RecoverModelsContext(ctx context.Context, setID string, indices []int, opts ...RecoverOption) (*PartialRecovery, error) {
	rs := newRecoverSettings(opts)
	sp := m.metrics.begin("partial_recover", setID)
	rec, err := m.recoverModels(ctx, setID, indices, rs)
	rec, err = rs.finish(setID, rec, err)
	m.metrics.endRecover(sp, 0, err)
	m.metrics.degradedSkips(rs.skipCount())
	return rec, err
}

func (m *MMlibBase) recoverModels(ctx context.Context, setID string, indices []int, rs *recoverSettings) (*PartialRecovery, error) {
	meta, err := loadMeta(m.stores, mmlibSetCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != m.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not MMlib-base", setID, meta.Approach)
	}
	idx, err := validateIndices(indices, meta.NumModels)
	if err != nil {
		return nil, err
	}
	models := make([]*nn.Model, len(idx))
	archs := make([]*nn.Architecture, len(idx))
	err = pool.Run(ctx, m.workers, len(idx), func(k int) error {
		model, arch, err := m.recoverOne(setID, idx[k])
		if err != nil {
			if rs.skip(idx[k], err) {
				return nil
			}
			return err
		}
		models[k] = model
		archs[k] = arch
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &PartialRecovery{Models: make(map[int]*nn.Model, len(idx))}
	for k, i := range idx {
		if models[k] != nil {
			out.Models[i] = models[k]
			out.Arch = archs[k]
		}
	}
	return out, nil
}

// RecoverModels implements PartialRecoverer.
//
// Deprecated: use RecoverModelsContext.
func (m *MMlibBase) RecoverModels(setID string, indices []int) (*PartialRecovery, error) {
	return m.RecoverModelsContext(context.Background(), setID, indices)
}

// recoverOne loads one model the MMlib way (all three documents plus
// both blobs).
func (m *MMlibBase) recoverOne(setID string, i int) (*nn.Model, *nn.Architecture, error) {
	modelID := fmt.Sprintf("%s-m%05d", setID, i)
	var mm modelMeta
	if err := m.stores.Docs.Get(mmlibMetaCollection, modelID, &mm); err != nil {
		return nil, nil, fmt.Errorf("core: loading metadata of model %d: %w", i, err)
	}
	var ed envDoc
	if err := m.stores.Docs.Get(mmlibEnvCollection, mm.EnvDocID, &ed); err != nil {
		return nil, nil, fmt.Errorf("core: loading env of model %d: %w", i, err)
	}
	var cd codeDoc
	if err := m.stores.Docs.Get(mmlibCodeCollection, mm.CodeDocID, &cd); err != nil {
		return nil, nil, fmt.Errorf("core: loading code of model %d: %w", i, err)
	}
	arch, err := loadArchBlob(m.stores, fmt.Sprintf("%s/%s/%d/arch.json", mmlibBlobPrefix, setID, i))
	if err != nil {
		return nil, nil, fmt.Errorf("core: loading arch of model %d: %w", i, err)
	}
	raw, err := getBlob(m.stores, fmt.Sprintf("%s/%s/%d/params.bin", mmlibBlobPrefix, setID, i))
	if err != nil {
		return nil, nil, fmt.Errorf("core: loading params of model %d: %w", i, err)
	}
	model, err := nn.NewModelUninitialized(arch)
	if err != nil {
		return nil, nil, err
	}
	if err := unframeParams(model, raw); err != nil {
		return nil, nil, fmt.Errorf("core: parsing params of model %d: %w", i, err)
	}
	return model, arch, nil
}

// paramByteSizes returns the byte size of each parameter tensor in
// dictionary order — what locating a diff entry inside the blob needs.
func paramByteSizes(arch *nn.Architecture) []int {
	var sizes []int
	for _, l := range arch.Layers {
		switch l.Kind {
		case nn.KindLinear:
			sizes = append(sizes, 4*l.In*l.Out, 4*l.Out)
		case nn.KindConv2D:
			sizes = append(sizes, 4*l.InChannels*l.OutChannels*l.Kernel*l.Kernel, 4*l.OutChannels)
		}
	}
	return sizes
}

// RecoverModelsContext implements PartialRecoverer for Update.
func (u *Update) RecoverModelsContext(ctx context.Context, setID string, indices []int, opts ...RecoverOption) (*PartialRecovery, error) {
	rs := newRecoverSettings(opts)
	sp := u.metrics.begin("partial_recover", setID)
	visited := map[string]bool{}
	rec, err := u.recoverModels(ctx, setID, indices, visited, rs)
	rec, err = rs.finish(setID, rec, err)
	u.metrics.endRecover(sp, len(visited)-1, err)
	u.metrics.degradedSkips(rs.skipCount())
	return rec, err
}

func (u *Update) recoverModels(ctx context.Context, setID string, indices []int, visited map[string]bool, rs *recoverSettings) (*PartialRecovery, error) {
	if err := checkChain(visited, setID); err != nil {
		return nil, err
	}
	meta, err := loadMeta(u.stores, updateCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != u.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not Update", setID, meta.Approach)
	}
	idx, err := validateIndices(indices, meta.NumModels)
	if err != nil {
		return nil, err
	}
	if meta.Kind == "full" {
		return rangedModels(ctx, u.stores, updateBlobPrefix, meta, idx, u.workers, rs)
	}

	base, err := u.recoverModels(ctx, meta.Base, idx, visited, rs)
	if err != nil {
		return nil, fmt.Errorf("core: recovering base of %q: %w", setID, err)
	}

	var diff diffDoc
	if err := u.stores.Docs.Get(updateDiffCollection, setID, &diff); err != nil {
		return nil, fmt.Errorf("core: loading diff list: %w", err)
	}
	var stored hashDoc
	if err := u.stores.Docs.Get(updateHashCollection, setID, &stored); err != nil {
		return nil, fmt.Errorf("core: loading hash info: %w", err)
	}

	wanted := make(map[int]bool, len(idx))
	for _, i := range idx {
		wanted[i] = true
	}
	sizes := paramByteSizes(base.Arch)
	blobKey := updateBlobPrefix + "/" + setID + "/diff.bin"

	// Walk the diff list once to locate the wanted entries' offsets; the
	// selected segments then read and apply independently. The walk also
	// yields the blob's total (decompressed) size, which bounds the
	// decompression of compressed blobs below.
	type application struct {
		e   diffEntry
		off int64
	}
	var apply []application
	seen := make(map[diffEntry]bool, len(diff.Entries))
	var off int64
	for _, e := range diff.Entries {
		if e.P < 0 || e.P >= len(sizes) {
			return nil, fmt.Errorf("core: diff references parameter %d of model %d", e.P, e.M)
		}
		if wanted[e.M] {
			if seen[e] {
				return nil, fmt.Errorf("core: duplicate diff entry (%d,%d): %w", e.M, e.P, ErrCorruptBlob)
			}
			seen[e] = true
			apply = append(apply, application{e: e, off: off})
		}
		off += int64(sizes[e.P])
	}

	// An encoded blob has no stable offsets; fall back to reading and
	// decoding it whole — capped at the size the diff list implies.
	// Raw blobs support ranged reads.
	var whole []byte
	if id := diffCodecID(diff); id != "" {
		raw, err := getBlob(u.stores, blobKey)
		if err != nil {
			return nil, fmt.Errorf("core: loading diff blob: %w", err)
		}
		if whole, err = decodeDiffBlob(u.metrics.reg, raw, int(off), id); err != nil {
			return nil, err
		}
	}

	err = pool.Run(ctx, u.workers, len(apply), func(k int) error {
		e, off := apply[k].e, apply[k].off
		one := func() error {
			size := int64(sizes[e.P])
			var segment []byte
			if whole != nil {
				if off+size > int64(len(whole)) {
					return fmt.Errorf("core: diff blob truncated at model %d: %w", e.M, ErrCorruptBlob)
				}
				segment = whole[off : off+size]
			} else {
				var err error
				segment, err = getBlobRange(u.stores, blobKey, off, size)
				if err != nil {
					return fmt.Errorf("core: reading diff of model %d: %w", e.M, err)
				}
			}
			model, ok := base.Models[e.M]
			if !ok {
				return fmt.Errorf("core: base recovery missing model %d", e.M)
			}
			t := model.Params()[e.P].Tensor
			if diff.Delta {
				if _, err := t.XORFromBytes(segment); err != nil {
					return fmt.Errorf("core: applying diff for model %d param %d: %w", e.M, e.P, err)
				}
			} else if _, err := t.SetFromBytes(segment); err != nil {
				return fmt.Errorf("core: applying diff for model %d param %d: %w", e.M, e.P, err)
			}
			// A hash document that does not cover the entry would silently
			// disable the integrity check, so it is corruption.
			if e.M >= len(stored.Models) || e.P >= len(stored.Models[e.M]) {
				return fmt.Errorf("core: hash info does not cover model %d param %d: %w", e.M, e.P, ErrCorruptBlob)
			}
			if got := hashing.Tensor(t); got != stored.Models[e.M][e.P] {
				return fmt.Errorf("core: model %d param %d hash mismatch after applying diff: %w", e.M, e.P, ErrCorruptBlob)
			}
			return nil
		}
		// In degraded mode a failed diff application drops model e.M
		// (rs.finish strips it even if other entries applied cleanly);
		// the other requested models keep recovering.
		if err := one(); err != nil && !rs.skip(e.M, err) {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return base, nil
}

// RecoverModels implements PartialRecoverer.
//
// Deprecated: use RecoverModelsContext.
func (u *Update) RecoverModels(setID string, indices []int) (*PartialRecovery, error) {
	return u.RecoverModelsContext(context.Background(), setID, indices)
}

// RecoverModelsContext implements PartialRecoverer for Provenance.
func (p *Provenance) RecoverModelsContext(ctx context.Context, setID string, indices []int, opts ...RecoverOption) (*PartialRecovery, error) {
	rs := newRecoverSettings(opts)
	sp := p.metrics.begin("partial_recover", setID)
	visited := map[string]bool{}
	rec, err := p.recoverModels(ctx, setID, indices, visited, rs)
	rec, err = rs.finish(setID, rec, err)
	p.metrics.endRecover(sp, len(visited)-1, err)
	p.metrics.degradedSkips(rs.skipCount())
	return rec, err
}

func (p *Provenance) recoverModels(ctx context.Context, setID string, indices []int, visited map[string]bool, rs *recoverSettings) (*PartialRecovery, error) {
	if err := checkChain(visited, setID); err != nil {
		return nil, err
	}
	meta, err := loadMeta(p.stores, provenanceCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != p.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not Provenance", setID, meta.Approach)
	}
	idx, err := validateIndices(indices, meta.NumModels)
	if err != nil {
		return nil, err
	}
	if meta.Kind == "full" {
		return rangedModels(ctx, p.stores, provenanceBlobPrefix, meta, idx, p.workers, rs)
	}

	base, err := p.recoverModels(ctx, meta.Base, idx, visited, rs)
	if err != nil {
		return nil, fmt.Errorf("core: recovering base of %q: %w", setID, err)
	}
	var train TrainInfo
	if err := p.stores.Docs.Get(provenanceTrainCollection, setID, &train); err != nil {
		return nil, fmt.Errorf("core: loading training info: %w", err)
	}
	if current := env.Capture(); !train.Environment.Equal(current) {
		return nil, fmt.Errorf("core: recorded environment does not match current; provenance recovery would not reproduce the saved models")
	}
	var updates updatesDoc
	if err := p.stores.Docs.Get(provenanceUpdateCollection, setID, &updates); err != nil {
		return nil, fmt.Errorf("core: loading update records: %w", err)
	}
	wanted := make(map[int]bool, len(idx))
	for _, i := range idx {
		wanted[i] = true
	}
	// Parallel across models, recorded order within each model — same
	// grouping as full recovery.
	order := make([]int, 0, len(idx))
	perModel := make(map[int][]ModelUpdate)
	for _, u := range updates.Updates {
		if !wanted[u.ModelIndex] {
			continue
		}
		if _, ok := perModel[u.ModelIndex]; !ok {
			order = append(order, u.ModelIndex)
		}
		perModel[u.ModelIndex] = append(perModel[u.ModelIndex], u)
	}
	err = pool.Run(ctx, p.workers, len(order), func(k int) error {
		idx := order[k]
		one := func() error {
			for _, u := range perModel[idx] {
				model, ok := base.Models[idx]
				if !ok {
					return fmt.Errorf("core: base recovery missing model %d", idx)
				}
				data, err := p.stores.Datasets.Materialize(u.DatasetID)
				if err != nil {
					return fmt.Errorf("core: resolving dataset of model %d: %w", u.ModelIndex, err)
				}
				cfg := train.Config
				cfg.Seed = u.Seed
				cfg.TrainLayers = u.TrainLayers
				if _, err := nn.Train(model, data, cfg); err != nil {
					return fmt.Errorf("core: re-training model %d: %w", u.ModelIndex, err)
				}
			}
			return nil
		}
		if err := one(); err != nil && !rs.skip(idx, err) {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return base, nil
}

// RecoverModels implements PartialRecoverer.
//
// Deprecated: use RecoverModelsContext.
func (p *Provenance) RecoverModels(setID string, indices []int) (*PartialRecovery, error) {
	return p.RecoverModelsContext(context.Background(), setID, indices)
}

// compile-time interface checks: all four approaches implement the
// context-aware Approach and PartialRecoverer contracts.
var (
	_ Approach         = (*Baseline)(nil)
	_ Approach         = (*Update)(nil)
	_ Approach         = (*Provenance)(nil)
	_ Approach         = (*MMlibBase)(nil)
	_ PartialRecoverer = (*Baseline)(nil)
	_ PartialRecoverer = (*Update)(nil)
	_ PartialRecoverer = (*Provenance)(nil)
	_ PartialRecoverer = (*MMlibBase)(nil)
)
