package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Degraded recovery: the paper's workload saves every model ever
// generated, so a recovery of an n≫1000-model set should not fail
// outright because one model's bytes rotted. WithPartialResults turns
// per-model failures (corrupt blobs, checksum mismatches, unreadable
// documents, unresolvable datasets) into recorded skips: the caller
// gets every model that still recovers plus a RecoveryReport naming
// exactly what was lost and why. Without the option, recovery keeps
// its fail-closed contract — any damage fails the whole set.

// ModelFailure names one model that could not be recovered.
type ModelFailure struct {
	ModelIndex int    `json:"model_index"`
	Error      string `json:"error"`
}

// RecoveryReport is the outcome of a degraded recovery.
type RecoveryReport struct {
	SetID string `json:"set_id"`
	// Requested is the number of distinct models asked for, Recovered
	// how many came back, Skipped how many were dropped on per-model
	// failures. Requested == Recovered + Skipped.
	Requested int `json:"requested"`
	Recovered int `json:"recovered"`
	Skipped   int `json:"skipped"`
	// Failures lists the skipped models in index order.
	Failures []ModelFailure `json:"failures,omitempty"`
}

// Degraded reports whether any model was skipped.
func (r *RecoveryReport) Degraded() bool { return r != nil && r.Skipped > 0 }

func (r *RecoveryReport) String() string {
	if !r.Degraded() {
		return fmt.Sprintf("recovered %d/%d models of %q", r.Recovered, r.Requested, r.SetID)
	}
	return fmt.Sprintf("recovered %d/%d models of %q (%d skipped, first: model %d: %s)",
		r.Recovered, r.Requested, r.SetID, r.Skipped,
		r.Failures[0].ModelIndex, r.Failures[0].Error)
}

// RecoverOption configures one recovery call.
type RecoverOption func(*recoverSettings)

// WithPartialResults switches a recovery to degraded mode: models that
// fail to recover are skipped instead of failing the set, and the
// outcome is written into report (which may be nil to just enable the
// mode). A degraded recovery still fails when nothing at all could be
// recovered, and whole-set damage (unreadable metadata, a broken
// recovery chain) keeps failing regardless.
func WithPartialResults(report *RecoveryReport) RecoverOption {
	return func(rs *recoverSettings) {
		rs.partial = true
		rs.report = report
	}
}

// recoverSettings is the resolved per-call recovery configuration plus
// the skip ledger degraded mode accumulates into.
type recoverSettings struct {
	partial bool
	report  *RecoveryReport

	mu       sync.Mutex
	failures map[int]error
}

func newRecoverSettings(opts []RecoverOption) *recoverSettings {
	rs := &recoverSettings{failures: map[int]error{}}
	for _, o := range opts {
		o(rs)
	}
	return rs
}

// skip records a per-model failure and reports whether degraded mode
// absorbs it. Cancellation is never absorbed: a canceled recovery must
// fail, not masquerade as a degraded one. The first error per model
// index wins; later failures of the same model are deduplicated (a
// model can fail once in a base set and again at every diff layer).
func (rs *recoverSettings) skip(idx int, err error) bool {
	if rs == nil || !rs.partial {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.failures[idx]; !ok {
		rs.failures[idx] = err
	}
	return true
}

// skipCount returns how many models were skipped so far.
func (rs *recoverSettings) skipCount() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.failures)
}

// finish settles a recovery: it strips skipped models from rec, fills
// the caller's report, and enforces the degraded-mode floor — if
// nothing was recovered, the recovery fails with the lowest-index
// failure so "degraded" can never mean "silently empty".
func (rs *recoverSettings) finish(setID string, rec *PartialRecovery, err error) (*PartialRecovery, error) {
	indices := make([]int, 0, len(rs.failures))
	rs.mu.Lock()
	for idx := range rs.failures {
		indices = append(indices, idx)
	}
	rs.mu.Unlock()
	sort.Ints(indices)

	if err == nil && rec != nil {
		// A model that failed at any layer must not surface in the
		// result, even if an earlier layer recovered a stale state.
		for _, idx := range indices {
			delete(rec.Models, idx)
		}
	}

	report := RecoveryReport{SetID: setID}
	if rec != nil {
		report.Recovered = len(rec.Models)
	}
	report.Skipped = len(indices)
	report.Requested = report.Recovered + report.Skipped
	for _, idx := range indices {
		report.Failures = append(report.Failures, ModelFailure{ModelIndex: idx, Error: rs.failures[idx].Error()})
	}
	if rs.report != nil {
		*rs.report = report
	}

	if err != nil {
		return nil, err
	}
	if rs.partial && report.Recovered == 0 && report.Skipped > 0 {
		return nil, fmt.Errorf("core: degraded recovery of %q lost all %d requested models, first failure: %w",
			setID, report.Skipped, rs.failures[indices[0]])
	}
	return rec, nil
}
