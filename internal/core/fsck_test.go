package core

import (
	"reflect"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// rawStores builds in-memory Stores and also exposes the raw backends,
// so tests can corrupt bytes or plant debris underneath the stores.
func rawStores() (Stores, *backend.Mem, *backend.Mem) {
	blobBE := backend.NewMem()
	docBE := backend.NewMem()
	st := Stores{
		Docs:     docstore.New(docBE, latency.CostModel{}, nil),
		Blobs:    blobstore.New(blobBE, latency.CostModel{}, nil),
		Datasets: dataset.NewRegistry(),
	}
	return st, blobBE, docBE
}

// populateAllApproaches saves sets with every approach, including a
// U1→U3 chain for Update and a derived Provenance set, and returns the
// recoverable (approach, setID) pairs.
func populateAllApproaches(t *testing.T, st Stores) map[string][]string {
	t.Helper()
	saved := map[string][]string{}

	set := mustNewSet(t, 3)
	ml := NewMMlibBase(st)
	saved["MMlibBase"] = append(saved["MMlibBase"], mustSave(t, ml, SaveRequest{Set: set}).SetID)

	bl := NewBaseline(st)
	saved["Baseline"] = append(saved["Baseline"], mustSave(t, bl, SaveRequest{Set: set}).SetID)

	up := NewUpdate(st)
	upSet := mustNewSet(t, 3)
	base := mustSave(t, up, SaveRequest{Set: upSet}).SetID
	saved["Update"] = append(saved["Update"], base)
	runCycle(t, upSet, st.Datasets, 1, []int{0}, []int{2})
	derived := mustSave(t, up, SaveRequest{Set: upSet, Base: base}).SetID
	saved["Update"] = append(saved["Update"], derived)

	pv := NewProvenance(st)
	pvSet := mustNewSet(t, 3)
	pvBase := mustSave(t, pv, SaveRequest{Set: pvSet}).SetID
	saved["Provenance"] = append(saved["Provenance"], pvBase)
	updates := runCycle(t, pvSet, st.Datasets, 1, []int{1}, nil)
	pvDerived := mustSave(t, pv, SaveRequest{
		Set: pvSet, Base: pvBase, Updates: updates, Train: testTrainInfo(),
	}).SetID
	saved["Provenance"] = append(saved["Provenance"], pvDerived)

	return saved
}

func mustFsck(t *testing.T, st Stores, opts FsckOptions) *FsckReport {
	t.Helper()
	report, err := Fsck(st, opts)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	return report
}

func TestFsckCleanAfterSaves(t *testing.T) {
	st, _, _ := rawStores()
	populateAllApproaches(t, st)
	report := mustFsck(t, st, FsckOptions{})
	if !report.Clean() {
		t.Fatalf("fsck of healthy store found issues:\n%v", report.Issues)
	}
	if report.Sets != 6 {
		t.Errorf("fsck saw %d sets, want 6", report.Sets)
	}
	if report.BytesVerified == 0 {
		t.Error("fsck verified no bytes")
	}
}

// TestFsckDetectsFlippedByteInEveryBlob is the issue's acceptance
// criterion: a single flipped byte in ANY saved blob must be detected.
func TestFsckDetectsFlippedByteInEveryBlob(t *testing.T) {
	st, blobBE, _ := rawStores()
	populateAllApproaches(t, st)
	keys, err := st.Blobs.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no blobs saved")
	}
	for _, key := range keys {
		raw, err := blobBE.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			continue
		}
		at := len(raw) / 2
		raw[at] ^= 0x01
		if err := blobBE.Put(key, raw); err != nil {
			t.Fatal(err)
		}

		report := mustFsck(t, st, FsckOptions{})
		found := false
		for _, issue := range report.Issues {
			if issue.Kind == FsckChecksum && issue.Key == key {
				found = true
				if issue.Orphan {
					t.Errorf("%s: referenced corrupt blob classified as orphan", key)
				}
			}
		}
		if !found {
			t.Errorf("%s: flipped byte not detected; issues: %v", key, report.Issues)
		}
		if !report.Damaged() {
			t.Errorf("%s: report not marked damaged", key)
		}

		raw[at] ^= 0x01 // restore
		if err := blobBE.Put(key, raw); err != nil {
			t.Fatal(err)
		}
	}
	if report := mustFsck(t, st, FsckOptions{}); !report.Clean() {
		t.Fatalf("store dirty after restores: %v", report.Issues)
	}
}

func TestFsckRepairDeletesOnlyOrphans(t *testing.T) {
	st, blobBE, _ := rawStores()
	saved := populateAllApproaches(t, st)

	// Plant the three kinds of crash debris:
	// an uncommitted blob in an owned namespace…
	if err := st.Blobs.Put("baseline/bl-999999/params.bin", []byte("torn")); err != nil {
		t.Fatal(err)
	}
	// …an uncommitted document (hash info without its set metadata)…
	if err := st.Docs.Insert(updateHashCollection, "up-999999", hashDoc{}); err != nil {
		t.Fatal(err)
	}
	// …and a dangling manifest entry (blob vanished underneath).
	if err := st.Blobs.Put("update/up-888888/diff.bin", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := blobBE.Delete("update/up-888888/diff.bin"); err != nil {
		t.Fatal(err)
	}

	report := mustFsck(t, st, FsckOptions{})
	if len(report.Issues) != 3 {
		t.Fatalf("issues = %v, want 3", report.Issues)
	}
	for _, issue := range report.Issues {
		if !issue.Orphan {
			t.Errorf("debris issue not orphan: %+v", issue)
		}
	}
	if report.Damaged() {
		t.Error("orphans alone must not mark the store damaged")
	}

	repaired := mustFsck(t, st, FsckOptions{Repair: true})
	for _, issue := range repaired.Issues {
		if !issue.Repaired {
			t.Errorf("orphan not repaired: %+v", issue)
		}
	}
	if report := mustFsck(t, st, FsckOptions{}); !report.Clean() {
		t.Fatalf("store dirty after repair: %v", report.Issues)
	}

	// Every committed set still recovers after repair.
	for name, ids := range saved {
		a := approachByName(st, name)
		for _, id := range ids {
			if _, err := a.Recover(id); err != nil {
				t.Errorf("%s recover %s after repair: %v", name, id, err)
			}
		}
	}
}

// TestFsckRepairSparesAuxiliaryDocsOnUnreadableMeta corrupts each
// approach's set metadata document in place — the bit-rot case fsck
// targets — and asserts that repair deletes NOTHING: with the metadata
// unreadable, reference analysis cannot tell the set's auxiliary
// documents (update diffs, per-model mmlib docs, provenance replay
// docs) from crash debris, so none of them may be classified as
// orphans.
func TestFsckRepairSparesAuxiliaryDocsOnUnreadableMeta(t *testing.T) {
	st, blobBE, docBE := rawStores()
	saved := populateAllApproaches(t, st)

	corruptDoc := func(col, id string) {
		t.Helper()
		if err := docBE.Put(col+"/"+id+".json", []byte("{broken")); err != nil {
			t.Fatal(err)
		}
	}
	corruptDoc(mmlibSetCollection, saved["MMlibBase"][0])
	corruptDoc(updateCollection, saved["Update"][1])         // derived set: has diff artifacts
	corruptDoc(provenanceCollection, saved["Provenance"][1]) // derived set: has replay docs

	blobsBefore, err := blobBE.Keys()
	if err != nil {
		t.Fatal(err)
	}
	docsBefore, err := docBE.Keys()
	if err != nil {
		t.Fatal(err)
	}

	report, err := Fsck(st, FsckOptions{Repair: true})
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if report.Clean() {
		t.Fatal("unreadable metadata undetected")
	}
	for _, issue := range report.Issues {
		if issue.Orphan {
			t.Errorf("artifact of set with unreadable metadata classified as orphan: %+v", issue)
		}
	}

	blobsAfter, err := blobBE.Keys()
	if err != nil {
		t.Fatal(err)
	}
	docsAfter, err := docBE.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blobsBefore, blobsAfter) {
		t.Errorf("repair deleted blobs:\nbefore %v\nafter  %v", blobsBefore, blobsAfter)
	}
	if !reflect.DeepEqual(docsBefore, docsAfter) {
		t.Errorf("repair deleted documents:\nbefore %v\nafter  %v", docsBefore, docsAfter)
	}
}

func TestFsckRepairContinuesPastDeleteFailures(t *testing.T) {
	blobBE := backend.NewFaulty(backend.NewMem())
	st := Stores{
		Docs:     docstore.New(backend.NewMem(), latency.CostModel{}, nil),
		Blobs:    blobstore.New(blobBE, latency.CostModel{}, nil),
		Datasets: dataset.NewRegistry(),
	}
	// Two orphan blobs and one orphan document, repair order: the
	// baseline blob first (issues sort by kind, then key).
	if err := st.Blobs.Put("baseline/bl-000001/params.bin", []byte("torn")); err != nil {
		t.Fatal(err)
	}
	if err := st.Blobs.Put("update/up-000002/diff.bin", []byte("torn")); err != nil {
		t.Fatal(err)
	}
	if err := st.Docs.Insert(updateHashCollection, "up-000002", hashDoc{}); err != nil {
		t.Fatal(err)
	}

	blobBE.FailNextDeletes(1)
	report, err := Fsck(st, FsckOptions{Repair: true})
	if err == nil {
		t.Fatal("repair failure not surfaced as an error")
	}
	if report == nil {
		t.Fatal("report discarded on repair failure")
	}
	var failed, repaired int
	for _, issue := range report.Issues {
		switch {
		case issue.RepairError != "":
			failed++
			if issue.Repaired {
				t.Errorf("issue both repaired and failed: %+v", issue)
			}
		case issue.Repaired:
			repaired++
		}
	}
	if failed != 1 || repaired != 2 {
		t.Fatalf("failed=%d repaired=%d, want 1 and 2; issues: %v", failed, repaired, report.Issues)
	}

	// A rerun without faults finishes the job.
	if report := mustFsck(t, st, FsckOptions{Repair: true}); len(report.Issues) != 1 {
		t.Fatalf("rerun issues = %v, want the one surviving orphan", report.Issues)
	}
	if report := mustFsck(t, st, FsckOptions{}); !report.Clean() {
		t.Fatalf("store dirty after rerun: %v", report.Issues)
	}
}

func approachByName(st Stores, name string) Approach {
	switch name {
	case "MMlibBase":
		return NewMMlibBase(st)
	case "Baseline":
		return NewBaseline(st)
	case "Update":
		return NewUpdate(st)
	case "Provenance":
		return NewProvenance(st)
	}
	panic("unknown approach " + name)
}

func TestFsckNeverRepairsCorruptReferencedBlobs(t *testing.T) {
	st, blobBE, _ := rawStores()
	bl := NewBaseline(st)
	id := mustSave(t, bl, SaveRequest{Set: mustNewSet(t, 2)}).SetID
	key := "baseline/" + id + "/params.bin"
	raw, err := blobBE.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := blobBE.Put(key, raw); err != nil {
		t.Fatal(err)
	}

	report := mustFsck(t, st, FsckOptions{Repair: true})
	if report.Clean() {
		t.Fatal("corruption undetected")
	}
	for _, issue := range report.Issues {
		if issue.Repaired {
			t.Errorf("repair touched referenced data: %+v", issue)
		}
	}
	if _, err := blobBE.Get(key); err != nil {
		t.Fatalf("referenced blob deleted by repair: %v", err)
	}
}

func TestFsckSuppressesOrphanClassificationOnUnreadableMeta(t *testing.T) {
	st, _, docBE := rawStores()
	bl := NewBaseline(st)
	id := mustSave(t, bl, SaveRequest{Set: mustNewSet(t, 2)}).SetID

	// Destroy the set's metadata document in place (not deleting it —
	// the set is still listed, but reference analysis cannot see what it
	// points to).
	if err := docBE.Put(baselineCollection+"/"+id+".json", []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	report := mustFsck(t, st, FsckOptions{Repair: true})
	if report.Clean() {
		t.Fatal("unreadable metadata undetected")
	}
	// The set's blobs must NOT be classified (or deleted) as orphans.
	for _, issue := range report.Issues {
		if strings.HasPrefix(issue.Key, "baseline/") && issue.Orphan {
			t.Errorf("blob of set with unreadable metadata treated as orphan: %+v", issue)
		}
	}
	if _, err := st.Blobs.Size("baseline/" + id + "/params.bin"); err != nil {
		t.Fatalf("parameter blob was deleted: %v", err)
	}
}
