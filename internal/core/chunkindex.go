package core

import (
	"fmt"
	"strings"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// Per-set chunk index: dedup saves persist a compact binary index of
// the params blob's chunks (cas.Index) at <prefix>/<setID>/params.idx,
// inside the same commit boundary as the rest of the set's artifacts.
// Selective recovery loads it once — one tiny, cacheable blob — and
// resolves exactly the chunks each requested model's byte range needs,
// instead of going through the recipe on every ranged read. The index
// is strictly an accelerator: recovery of sets without one (plain
// saves, stores from before the index existed) falls back to ranged
// blob reads and returns identical bytes.

// chunkIndexFile is the index's file name under the set's blob prefix.
const chunkIndexFile = "params.idx"

func chunkIndexKey(blobPrefix, setID string) string {
	return blobPrefix + "/" + setID + "/" + chunkIndexFile
}

// isChunkIndexKey reports whether a blob key names a per-set chunk
// index.
func isChunkIndexKey(key string) bool {
	return strings.HasSuffix(key, "/"+chunkIndexFile)
}

// writeChunkIndex persists the chunk index of the set's params blob.
// Only dedup saves have a recipe to index; plain saves write nothing.
// Called after the params blob and before the metadata document, so a
// committed set either has a complete index or (pre-index stores) none.
func writeChunkIndex(op *saveOp, blobPrefix, setID string, stride int64) error {
	if !op.dedup {
		return nil
	}
	r, err := cas.For(op.st.Blobs).Recipe(blobPrefix + "/" + setID + "/params.bin")
	if err != nil {
		return fmt.Errorf("core: reading recipe for chunk index: %w", err)
	}
	ix := cas.BuildIndex(stride, r)
	if err := op.putBlobRaw(chunkIndexKey(blobPrefix, setID), ix.Encode()); err != nil {
		return fmt.Errorf("core: writing chunk index: %w", err)
	}
	return nil
}

// loadChunkIndex returns the parsed chunk index of a set's params
// blob, or nil when the set has none (not an error: the caller falls
// back to ranged reads). A present-but-undecodable index surfaces
// ErrCorruptBlob. Parsed indexes are cached on the store's serving
// tier when one is attached.
func loadChunkIndex(st Stores, blobPrefix, setID string) (*cas.Index, error) {
	key := chunkIndexKey(blobPrefix, setID)
	cs := cas.For(st.Blobs)
	if v, ok := cs.CachedRaw(key); ok {
		return v.(*cas.Index), nil
	}
	raw, err := st.Blobs.Get(key)
	if err != nil {
		if backend.IsNotFound(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("core: reading chunk index of %q: %w", setID, err)
	}
	ix, err := cas.DecodeIndex(raw)
	if err != nil {
		return nil, fmt.Errorf("core: chunk index of %q: %w", setID, mapCorrupt(err))
	}
	cs.CacheRaw(key, &ix, int64(len(raw)))
	return &ix, nil
}

// readViaIndex reads [off, off+length) of the indexed blob by fetching
// exactly the chunks the range overlaps — pinned against concurrent
// GC and served through the chunk cache. The result is a fresh buffer;
// cache-resident chunk bytes are copied, never aliased.
func readViaIndex(st Stores, ix *cas.Index, off, length int64) ([]byte, error) {
	spans, err := ix.Locate(off, length)
	if err != nil {
		return nil, fmt.Errorf("core: %v: %w", err, ErrCorruptBlob)
	}
	cs := cas.For(st.Blobs)
	out := make([]byte, 0, length)
	for _, sp := range spans {
		data, err := cs.GetChunk(sp.Hash, sp.Size)
		if err != nil {
			return nil, mapCorrupt(err)
		}
		out = append(out, data[sp.From:sp.To]...)
	}
	return out, nil
}
