package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

func TestBaselineRoundTrip(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	set := mustNewSet(t, 10)
	res := mustSave(t, b, SaveRequest{Set: set})
	got := mustRecover(t, b, res.SetID)
	if !set.Equal(got) {
		t.Fatal("recovered set differs from saved set")
	}
	if got.Arch.ParamCount() != set.Arch.ParamCount() {
		t.Fatal("recovered architecture differs")
	}
}

func TestBaselineSetsIndependentlyRecoverable(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	reg := st.Datasets

	set := mustNewSet(t, 6)
	res1 := mustSave(t, b, SaveRequest{Set: set})
	snapshot1 := set.Clone()

	runCycle(t, set, reg, 1, []int{0, 1}, []int{2})
	res2 := mustSave(t, b, SaveRequest{Set: set, Base: res1.SetID})
	snapshot2 := set.Clone()

	// Baseline sets never depend on each other: recover in any order.
	if got := mustRecover(t, b, res2.SetID); !snapshot2.Equal(got) {
		t.Fatal("second set wrong")
	}
	if got := mustRecover(t, b, res1.SetID); !snapshot1.Equal(got) {
		t.Fatal("first set wrong")
	}
}

func TestBaselineStorageDominatedByParams(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	set := mustNewSet(t, 50)
	res := mustSave(t, b, SaveRequest{Set: set})

	paramBytes := int64(set.Arch.ParamBytes() * set.Len())
	overhead := res.BytesWritten - paramBytes
	if overhead < 0 {
		t.Fatalf("wrote %d bytes, less than the %d parameter bytes", res.BytesWritten, paramBytes)
	}
	// The paper: Baseline's per-set overhead for architecture and
	// metadata is ~4 KB, independent of n.
	if overhead > 8*1024 {
		t.Fatalf("per-set overhead %d bytes, want < 8 KiB", overhead)
	}
}

func TestBaselineConstantWriteOps(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	small := mustNewSet(t, 2)
	large := mustNewSet(t, 40)
	resSmall := mustSave(t, b, SaveRequest{Set: small})
	resLarge := mustSave(t, b, SaveRequest{Set: large})
	if resSmall.WriteOps != resLarge.WriteOps {
		t.Fatalf("write ops grew with set size: %d vs %d", resSmall.WriteOps, resLarge.WriteOps)
	}
	if resLarge.WriteOps > 4 {
		t.Fatalf("baseline issues %d writes per set, want O(1)", resLarge.WriteOps)
	}
}

func TestBaselineRecoverUnknownSet(t *testing.T) {
	b := NewBaseline(NewMemStores())
	_, err := b.Recover("bl-999999")
	if err == nil {
		t.Fatal("unknown set recovered")
	}
	if !errors.Is(err, ErrSetNotFound) {
		t.Fatalf("err = %v, want ErrSetNotFound", err)
	}
}

func TestBaselineRejectsForeignSet(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	// Forge a metadata document from another approach under Baseline's
	// collection name: recovery must notice.
	meta := setMeta{SetID: "bl-000001", Approach: "Update", Kind: "full"}
	if err := st.Docs.Insert(baselineCollection, "bl-000001", meta); err != nil {
		t.Fatal(err)
	}
	_, err := b.Recover("bl-000001")
	if err == nil || !strings.Contains(err.Error(), "saved by") {
		t.Fatalf("foreign set accepted: %v", err)
	}
}

func TestBaselineSaveFaultSurfaces(t *testing.T) {
	faulty := backend.NewFaulty(backend.NewMem())
	st := NewMemStores()
	st.Blobs = blobstore.New(faulty, latency.CostModel{}, nil)
	b := NewBaseline(st)
	faulty.FailNextPuts(1)
	if _, err := b.Save(SaveRequest{Set: mustNewSet(t, 2)}); err == nil {
		t.Fatal("blob fault not surfaced")
	}
}

func TestBaselineDocFaultSurfaces(t *testing.T) {
	faulty := backend.NewFaulty(backend.NewMem())
	st := NewMemStores()
	st.Docs = docstore.New(faulty, latency.CostModel{}, nil)
	b := NewBaseline(st)
	faulty.FailNextPuts(1)
	if _, err := b.Save(SaveRequest{Set: mustNewSet(t, 2)}); err == nil {
		t.Fatal("doc fault not surfaced")
	}
}

func TestBaselineCorruptParamBlobDetected(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	res := mustSave(t, b, SaveRequest{Set: mustNewSet(t, 3)})
	// Truncate the parameter blob.
	key := baselineBlobPrefix + "/" + res.SetID + "/params.bin"
	blob, err := st.Blobs.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Blobs.Put(key, blob[:len(blob)-4]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recover(res.SetID); err == nil {
		t.Fatal("truncated parameter blob recovered without error")
	}
}

func TestBaselineSetIDs(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	set := mustNewSet(t, 2)
	mustSave(t, b, SaveRequest{Set: set})
	mustSave(t, b, SaveRequest{Set: set})
	ids, err := b.SetIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "bl-000001" || ids[1] != "bl-000002" {
		t.Fatalf("SetIDs = %v", ids)
	}
}

func TestBaselineOnDiskStores(t *testing.T) {
	dir := t.TempDir()
	blobBackend, err := backend.NewDir(dir + "/blobs")
	if err != nil {
		t.Fatal(err)
	}
	docBackend, err := backend.NewDir(dir + "/docs")
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStores()
	st.Blobs = blobstore.New(blobBackend, latency.CostModel{}, nil)
	st.Docs = docstore.New(docBackend, latency.CostModel{}, nil)

	b := NewBaseline(st)
	set := mustNewSet(t, 4)
	res := mustSave(t, b, SaveRequest{Set: set})

	// A fresh approach instance over the same directories must recover.
	st2 := NewMemStores()
	blobBackend2, _ := backend.NewDir(dir + "/blobs")
	docBackend2, _ := backend.NewDir(dir + "/docs")
	st2.Blobs = blobstore.New(blobBackend2, latency.CostModel{}, nil)
	st2.Docs = docstore.New(docBackend2, latency.CostModel{}, nil)
	b2 := NewBaseline(st2)
	got := mustRecover(t, b2, res.SetID)
	if !set.Equal(got) {
		t.Fatal("on-disk round trip lost data")
	}
}
