package core

import (
	"testing"
	"time"
)

// paperScenario is the paper's default deployment: 5000 FFNN-48 models,
// 10% updated per cycle, saves vastly outnumber recoveries.
func paperScenario() Scenario {
	return Scenario{
		NumModels:        5000,
		ParamCount:       4993,
		UpdateRate:       0.10,
		SavesPerRecovery: 1000,
		RetrainCost:      30 * time.Second,
		StorageWeight:    1, SaveWeight: 1, RecoverWeight: 1,
	}
}

func TestAdviseStoragePriorityPicksProvenance(t *testing.T) {
	// §4.5: "Considering that our highest priority is storage
	// consumption and we assume model recoveries to happen rarely,
	// Provenance is the best approach."
	s := paperScenario()
	s.StorageWeight, s.SaveWeight, s.RecoverWeight = 10, 1, 0.01
	rec, err := Advise(s)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Approach != "Provenance" {
		t.Fatalf("storage-priority scenario recommends %s, want Provenance (ranking %v)",
			rec.Approach, rec.Ranking)
	}
}

func TestAdviseRecoverPriorityPicksBaseline(t *testing.T) {
	// §4.5: "If the storage consumption is not important and TTR has
	// the highest priority, Baseline is the best approach."
	s := paperScenario()
	s.StorageWeight, s.SaveWeight, s.RecoverWeight = 0.01, 0.1, 10
	s.SavesPerRecovery = 2 // recoveries are frequent
	rec, err := Advise(s)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Approach != "Baseline" {
		t.Fatalf("recover-priority scenario recommends %s, want Baseline (ranking %v)",
			rec.Approach, rec.Ranking)
	}
}

func TestAdviseBalancedStoragePicksUpdate(t *testing.T) {
	// §4.5: "If this [compute-heavy recovery] is not acceptable, Update
	// is the next best approach; it has a lower storage consumption but
	// only slightly increases the TTR."
	s := paperScenario()
	s.StorageWeight, s.SaveWeight, s.RecoverWeight = 5, 1, 2
	s.RetrainCost = 10 * time.Minute // provenance recovery prohibitive
	rec, err := Advise(s)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Approach != "Update" {
		t.Fatalf("balanced scenario recommends %s, want Update (ranking %v)",
			rec.Approach, rec.Ranking)
	}
}

func TestAdviseNeverPicksMMlibForMultiModel(t *testing.T) {
	// Sweep a grid of weightings: MMlib-base is dominated everywhere in
	// a multi-model scenario.
	weights := []float64{0.01, 1, 10}
	for _, sw := range weights {
		for _, vw := range weights {
			for _, rw := range weights {
				s := paperScenario()
				s.StorageWeight, s.SaveWeight, s.RecoverWeight = sw, vw, rw
				rec, err := Advise(s)
				if err != nil {
					t.Fatal(err)
				}
				if rec.Approach == "MMlib-base" {
					t.Fatalf("weights (%v,%v,%v) recommend MMlib-base", sw, vw, rw)
				}
			}
		}
	}
}

func TestAdviseRankingComplete(t *testing.T) {
	rec, err := Advise(paperScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ranking) != 4 {
		t.Fatalf("ranking has %d entries, want 4", len(rec.Ranking))
	}
	for i := 1; i < len(rec.Ranking); i++ {
		if rec.Ranking[i-1].Cost > rec.Ranking[i].Cost {
			t.Fatal("ranking not sorted by cost")
		}
	}
	if rec.Rationale == "" {
		t.Error("no rationale given")
	}
}

func TestAdviseValidation(t *testing.T) {
	bad := []func(*Scenario){
		func(s *Scenario) { s.NumModels = 0 },
		func(s *Scenario) { s.ParamCount = 0 },
		func(s *Scenario) { s.UpdateRate = -0.1 },
		func(s *Scenario) { s.UpdateRate = 1.5 },
		func(s *Scenario) { s.SavesPerRecovery = 0 },
		func(s *Scenario) { s.StorageWeight = -1 },
		func(s *Scenario) { s.StorageWeight, s.SaveWeight, s.RecoverWeight = 0, 0, 0 },
	}
	for i, mutate := range bad {
		s := paperScenario()
		mutate(&s)
		if _, err := Advise(s); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}
