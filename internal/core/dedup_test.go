package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// Dedup acceptance tests: the content-addressed store behind WithDedup
// must shrink physical parameter bytes for every approach on the
// paper's U1→U3 workload while recovery stays bit-identical, prune must
// report only physically freed bytes under chunk sharing, and crash
// enumeration must hold with dedup writes exactly as it does for raw
// writes.

// factoryFleet builds a fleet whose models all start from the same
// parameters — the realistic dedup case where every model is cloned
// from one factory-trained prototype before per-cell fine-tuning.
func factoryFleet(t *testing.T, arch *nn.Architecture, n int) *ModelSet {
	t.Helper()
	proto := mustNewSetArch(t, arch, 1)
	set := proto.Clone()
	for len(set.Models) < n {
		set.Models = append(set.Models, proto.Clone().Models[0])
	}
	return set
}

// runDedupWorkload saves a 4-model factory fleet through U1, U3-1,
// U3-2, U3-3 (one model retrained per update cycle) and returns the
// commits. Training is deterministic, so a plain and a dedup run over
// fresh stores produce bit-identical parameter histories.
func runDedupWorkload(t *testing.T, st Stores, name string, dedup bool, extra ...Option) []crashCommit {
	t.Helper()
	opts := []Option{WithConcurrency(1)}
	if dedup {
		opts = append(opts, WithDedup())
	}
	opts = append(opts, extra...)
	var a Approach
	switch name {
	case "Baseline":
		a = NewBaseline(st, opts...)
	case "Update":
		a = NewUpdate(st, opts...)
	case "Provenance":
		a = NewProvenance(st, opts...)
	case "MMlibBase":
		a = NewMMlibBase(st, opts...)
	default:
		t.Fatalf("unknown approach %s", name)
	}
	set := factoryFleet(t, nn.FFNN48(), 4)
	base := ""
	var commits []crashCommit
	for cycle := 1; cycle <= 4; cycle++ { // U1, U3-1..U3-3
		req := SaveRequest{Set: set}
		if cycle > 1 {
			updates := runCycle(t, set, st.Datasets, cycle, []int{cycle % 4}, nil)
			switch name {
			case "Update":
				req.Base = base
			case "Provenance":
				req.Base = base
				req.Updates = updates
				req.Train = testTrainInfo()
			}
		}
		res := mustSave(t, a, req)
		commits = append(commits, crashCommit{res.SetID, set.Clone()})
		base = res.SetID
	}
	return commits
}

// TestDedupReducesPhysicalBytesAllApproaches is the headline
// acceptance check: same workload into a plain and a dedup store,
// identical logical bytes, strictly fewer physical bytes for every
// approach (at least 30% fewer for Baseline, which rewrites the whole
// fleet each cycle), and bit-identical recovery from both stores.
func TestDedupReducesPhysicalBytesAllApproaches(t *testing.T) {
	for _, name := range []string{"Baseline", "Update", "Provenance", "MMlibBase"} {
		t.Run(name, func(t *testing.T) {
			plainSt, _, _ := rawStores()
			dedupSt, _, _ := rawStores()
			plainCommits := runDedupWorkload(t, plainSt, name, false)
			dedupCommits := runDedupWorkload(t, dedupSt, name, true)

			duPlain, err := Du(plainSt)
			if err != nil {
				t.Fatal(err)
			}
			duDedup, err := Du(dedupSt)
			if err != nil {
				t.Fatal(err)
			}
			if duDedup.LogicalBytes != duPlain.LogicalBytes {
				t.Fatalf("logical bytes differ: dedup %d, plain %d",
					duDedup.LogicalBytes, duPlain.LogicalBytes)
			}
			if duDedup.PhysicalBytes >= duPlain.PhysicalBytes {
				t.Fatalf("dedup stored %d physical bytes, plain %d — no savings",
					duDedup.PhysicalBytes, duPlain.PhysicalBytes)
			}
			if name == "Baseline" && duDedup.PhysicalBytes > duPlain.PhysicalBytes*7/10 {
				t.Fatalf("Baseline dedup stored %d of %d physical bytes, want <=70%%",
					duDedup.PhysicalBytes, duPlain.PhysicalBytes)
			}

			// Recovery needs no WithDedup: the read path resolves
			// recipes transparently.
			da := approachByName(dedupSt, name)
			pa := approachByName(plainSt, name)
			for i, c := range dedupCommits {
				got := mustRecover(t, da, c.setID)
				if !got.Equal(c.want) {
					t.Fatalf("%s: dedup recovery of %s not bit-identical", name, c.setID)
				}
				if !got.Equal(mustRecover(t, pa, plainCommits[i].setID)) {
					t.Fatalf("%s: dedup and plain recoveries of cycle %d differ", name, i+1)
				}
			}

			report, err := Fsck(dedupSt, FsckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !report.Clean() {
				t.Fatalf("dedup store not fsck-clean after workload:\n%v", report.Issues)
			}
		})
	}
}

// TestDedupPruneFreedBytesUnderSharing is the FreedBytes regression
// test: two saves of identical content share every chunk, so pruning
// one must free only its recipes and documents — never the shared
// chunk bytes — and pruning the last reference must free them all.
func TestDedupPruneFreedBytesUnderSharing(t *testing.T) {
	st, _, _ := rawStores()
	a := NewBaseline(st, WithConcurrency(1), WithDedup())
	set := mustNewSetArch(t, nn.FFNN48(), 4)

	res1 := mustSave(t, a, SaveRequest{Set: set})
	res2 := mustSave(t, a, SaveRequest{Set: set})
	if res2.BytesWritten >= res1.BytesWritten/2 {
		t.Fatalf("second identical save wrote %d physical bytes, first wrote %d — chunks not skipped",
			res2.BytesWritten, res1.BytesWritten)
	}

	before, err := Du(st)
	if err != nil {
		t.Fatal(err)
	}
	if before.Chunks == 0 || before.ChunkBytes == 0 {
		t.Fatal("dedup saves produced no chunks")
	}

	// Prune the first set: every chunk is still referenced by the
	// survivor, so FreedBytes must stay far below the chunk bytes.
	rep1, err := a.Prune([]string{res2.SetID})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.FreedBytes >= before.ChunkBytes/2 {
		t.Fatalf("pruning a sharing set reported %d bytes freed; chunk bytes are %d and all chunks survive",
			rep1.FreedBytes, before.ChunkBytes)
	}
	mid, err := Du(st)
	if err != nil {
		t.Fatal(err)
	}
	if mid.ChunkBytes != before.ChunkBytes {
		t.Fatalf("pruning a sharing set changed chunk bytes from %d to %d",
			before.ChunkBytes, mid.ChunkBytes)
	}
	if !mustRecover(t, a, res2.SetID).Equal(set) {
		t.Fatalf("survivor %s damaged by prune", res2.SetID)
	}

	// Prune the survivor too: now the chunks physically die and the
	// report must say so.
	rep2, err := a.Prune(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FreedBytes < before.ChunkBytes {
		t.Fatalf("pruning the last reference reported %d bytes freed, want >= %d chunk bytes",
			rep2.FreedBytes, before.ChunkBytes)
	}
	after, err := Du(st)
	if err != nil {
		t.Fatal(err)
	}
	if after.Chunks != 0 || after.ChunkBytes != 0 {
		t.Fatalf("store still holds %d chunks (%d bytes) after full prune",
			after.Chunks, after.ChunkBytes)
	}

	// Eager release already deleted the zero-ref chunks; GC confirms
	// there is nothing left and fsck agrees.
	gc, err := GCStore(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gc.ChunksDeleted != 0 {
		t.Fatalf("GC after prune deleted %d chunks; release should have been eager", gc.ChunksDeleted)
	}
	report, err := Fsck(st, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("store not clean after save→prune→GC:\n%v", report.Issues)
	}
}

// TestDedupFsckRepairsPlantedCASDebris plants each kind of CAS debris
// directly and checks fsck classifies all of it as repairable, repairs
// it in one pass, and leaves committed data untouched.
func TestDedupFsckRepairsPlantedCASDebris(t *testing.T) {
	st, _, _ := rawStores()
	a := NewBaseline(st, WithDedup())
	set := mustNewSet(t, 2)
	id := mustSave(t, a, SaveRequest{Set: set}).SetID

	// An orphan chunk with a stale refcount.
	orphan := []byte("orphan chunk payload")
	sum := sha256.Sum256(orphan)
	orphanHash := hex.EncodeToString(sum[:])
	if err := st.Blobs.Put(cas.ChunkKey(orphanHash), orphan); err != nil {
		t.Fatal(err)
	}
	if err := st.Blobs.Put(cas.RefKey(orphanHash), cas.EncodeRefcount(3)); err != nil {
		t.Fatal(err)
	}
	// An unreadable recipe for a set that does not exist.
	if err := st.Blobs.Put(cas.RecipeKey("baseline/bl-999999/params.bin"), []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	// Drifted refcount on a live chunk.
	scan, err := cas.ScanStore(st.Blobs)
	if err != nil {
		t.Fatal(err)
	}
	var liveHash string
	var wantCount int
	for h, n := range scan.Refs {
		if h != orphanHash {
			liveHash, wantCount = h, n
			break
		}
	}
	if liveHash == "" {
		t.Fatal("save produced no live chunks")
	}
	if err := st.Blobs.Put(cas.RefKey(liveHash), cas.EncodeRefcount(99)); err != nil {
		t.Fatal(err)
	}

	report, err := Fsck(st, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Damaged() {
		t.Fatalf("planted debris reported as damage:\n%v", report.Issues)
	}
	kinds := map[string]bool{}
	for _, i := range report.Issues {
		kinds[i.Kind] = true
	}
	for _, want := range []string{FsckCASChunk, FsckCASRecipe, FsckCASRefcount} {
		if !kinds[want] {
			t.Errorf("no %s issue reported; got %v", want, report.Issues)
		}
	}

	if _, err := Fsck(st, FsckOptions{Repair: true}); err != nil {
		t.Fatal(err)
	}
	after, err := Fsck(st, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Clean() {
		t.Fatalf("store not clean after repair:\n%v", after.Issues)
	}

	rescan, err := cas.ScanStore(st.Blobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rescan.Chunks[orphanHash]; ok {
		t.Error("orphan chunk survived repair")
	}
	if got := rescan.Refs[liveHash]; got != wantCount {
		t.Errorf("live refcount is %d after repair, want %d", got, wantCount)
	}
	if !mustRecover(t, a, id).Equal(set) {
		t.Fatalf("committed set %s damaged by repair", id)
	}
}

// TestDedupExportImport checks archives built from a dedup store carry
// reassembled logical bytes: importing into a store that never saw the
// chunk store recovers the chain bit-identically.
func TestDedupExportImport(t *testing.T) {
	src, _, _ := rawStores()
	a := NewUpdate(src, WithConcurrency(1), WithDedup())
	set := mustNewSet(t, 3)
	base := mustSave(t, a, SaveRequest{Set: set}).SetID
	runCycle(t, set, src.Datasets, 2, []int{0}, []int{2})
	id := mustSave(t, a, SaveRequest{Set: set, Base: base}).SetID
	want := set.Clone()

	var buf bytes.Buffer
	if err := a.Export(id, &buf); err != nil {
		t.Fatal(err)
	}

	dst, _, _ := rawStores()
	if err := ImportArchive(dst, &buf); err != nil {
		t.Fatal(err)
	}
	got := mustRecover(t, NewUpdate(dst), id)
	if !got.Equal(want) {
		t.Fatalf("chain recovered from imported archive differs from source")
	}
}

func TestCrashEnumerationDedupBaseline(t *testing.T) {
	runCrashEnumeration(t, "Baseline", func(t *testing.T, st Stores) []crashCommit {
		a := NewBaseline(st, WithConcurrency(1), WithDedup())
		set := mustNewSet(t, 3)
		// Two identical models so chunk sharing is exercised inside the
		// crash sweep, not just distinct-chunk writes.
		set.Models[1] = set.Clone().Models[0]
		var commits []crashCommit
		for cycle := 1; cycle <= 2; cycle++ {
			if cycle > 1 {
				runCycle(t, set, st.Datasets, cycle, []int{1}, []int{2})
			}
			id := mustSave(t, a, SaveRequest{Set: set}).SetID
			commits = append(commits, crashCommit{id, set.Clone()})
		}
		return commits
	})
}

func TestCrashEnumerationDedupUpdate(t *testing.T) {
	runCrashEnumeration(t, "Update", func(t *testing.T, st Stores) []crashCommit {
		a := NewUpdate(st, WithConcurrency(1), WithDedup())
		set := mustNewSet(t, 3)
		var commits []crashCommit
		base := ""
		for cycle := 1; cycle <= 3; cycle++ { // U1, U3-1, U3-2
			if cycle > 1 {
				runCycle(t, set, st.Datasets, cycle, []int{cycle % 3}, nil)
			}
			id := mustSave(t, a, SaveRequest{Set: set, Base: base}).SetID
			commits = append(commits, crashCommit{id, set.Clone()})
			base = id
		}
		return commits
	})
}

// TestCrashEnumerationDedupPruneAndGC sweeps crash points through the
// full chunk lifecycle: two sharing saves, a prune that releases one
// (recipe deletion + refcount decrements), and a GC deleting a
// zero-ref chunk. Every prefix must stay repairable and the surviving
// set recoverable.
func TestCrashEnumerationDedupPruneAndGC(t *testing.T) {
	runCrashEnumeration(t, "Baseline", func(t *testing.T, st Stores) []crashCommit {
		a := NewBaseline(st, WithConcurrency(1), WithDedup())
		set := mustNewSet(t, 2)
		idA := mustSave(t, a, SaveRequest{Set: set}).SetID
		idB := mustSave(t, a, SaveRequest{Set: set}).SetID
		if _, err := a.Prune([]string{idB}); err != nil {
			t.Fatal(err)
		}
		// Plant a zero-ref chunk so GC has real deletions to crash in
		// (eager release leaves none behind on the happy path).
		fodder := []byte("unreferenced chunk for gc")
		sum := sha256.Sum256(fodder)
		h := hex.EncodeToString(sum[:])
		if err := st.Blobs.Put(cas.ChunkKey(h), fodder); err != nil {
			t.Fatal(err)
		}
		if err := st.Blobs.Put(cas.RefKey(h), cas.EncodeRefcount(0)); err != nil {
			t.Fatal(err)
		}
		rep, err := GCStore(st, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ChunksDeleted != 1 {
			t.Fatalf("GC deleted %d chunks, want 1", rep.ChunksDeleted)
		}
		// idA was pruned: checkCommits accepts recoverable-or-absent,
		// which covers both its pre- and post-prune prefixes.
		return []crashCommit{{idA, set.Clone()}, {idB, set.Clone()}}
	})
}
