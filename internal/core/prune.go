package core

import (
	"fmt"
	"sort"
)

// Retention: the paper archives every set ever generated, but a real
// deployment eventually expires old archives. Pruning must respect
// recovery chains — a derived Update or Provenance set is only
// recoverable while its whole base chain exists — so Prune expands the
// keep list to its chain closure before deleting anything.

// PruneReport summarizes a prune operation.
type PruneReport struct {
	// Kept lists the sets that remain, including bases added to keep
	// chains recoverable.
	Kept []string
	// Deleted lists the removed sets.
	Deleted []string
	// FreedBytes is the storage released from both stores.
	FreedBytes int64
}

// Pruner is implemented by approaches that can expire saved sets.
type Pruner interface {
	// Prune deletes every saved set not needed to recover the sets in
	// keep. Bases of kept derived sets are retained automatically.
	Prune(keep []string) (*PruneReport, error)
}

// chainCloser returns the base of a set ("" for full saves); pruning
// uses it to close keep lists over recovery chains.
type chainCloser func(setID string) (base string, err error)

// closeOverChains expands keep with every base reachable from it.
func closeOverChains(keep []string, baseOf chainCloser) (map[string]bool, error) {
	kept := map[string]bool{}
	var walk func(id string) error
	walk = func(id string) error {
		if kept[id] {
			return nil
		}
		kept[id] = true
		base, err := baseOf(id)
		if err != nil {
			return err
		}
		if base != "" {
			return walk(base)
		}
		return nil
	}
	for _, id := range keep {
		if err := walk(id); err != nil {
			return nil, err
		}
	}
	return kept, nil
}

// pruneSets removes all sets of one approach except the closure of
// keep. deleteSet must remove every artifact of one set and return the
// bytes it freed.
func pruneSets(all []string, keep []string, baseOf chainCloser,
	deleteSet func(setID string) (int64, error)) (*PruneReport, error) {

	for _, id := range keep {
		found := false
		for _, a := range all {
			if a == id {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: cannot keep unknown set %q", id)
		}
	}
	kept, err := closeOverChains(keep, baseOf)
	if err != nil {
		return nil, err
	}
	report := &PruneReport{}
	for id := range kept {
		report.Kept = append(report.Kept, id)
	}
	sort.Strings(report.Kept)
	for _, id := range all {
		if kept[id] {
			continue
		}
		freed, err := deleteSet(id)
		if err != nil {
			return nil, fmt.Errorf("core: pruning %q: %w", id, err)
		}
		report.Deleted = append(report.Deleted, id)
		report.FreedBytes += freed
	}
	sort.Strings(report.Deleted)
	return report, nil
}

// deleteDocs removes documents for setID from the listed collections,
// summing freed bytes.
func deleteDocs(st Stores, setID string, collections ...string) (int64, error) {
	var freed int64
	for _, c := range collections {
		if size, err := st.Docs.Size(c, setID); err == nil {
			freed += size
		}
		if err := st.Docs.Delete(c, setID); err != nil {
			return freed, err
		}
	}
	return freed, nil
}

// deleteBlobsWithPrefix removes all logical blobs under prefix — raw
// blobs and deduplicated ones alike — summing the bytes *physically*
// freed. Deleting a deduplicated blob releases its chunk references;
// chunks still referenced by kept sets survive and do not count, so
// PruneReport.FreedBytes stays honest under sharing.
func deleteBlobsWithPrefix(st Stores, prefix string) (int64, error) {
	keys, err := blobKeysWithPrefix(st, prefix)
	if err != nil {
		return 0, err
	}
	var freed int64
	for _, k := range keys {
		n, err := deleteBlob(st, k)
		freed += n
		if err != nil {
			return freed, err
		}
	}
	return freed, nil
}

// Prune implements Pruner for Baseline. Baseline sets are independent,
// so the keep list needs no chain closure.
func (b *Baseline) Prune(keep []string) (*PruneReport, error) {
	all, err := b.SetIDs()
	if err != nil {
		return nil, err
	}
	return pruneSets(all, keep,
		func(string) (string, error) { return "", nil },
		func(id string) (int64, error) {
			freed, err := deleteDocs(b.stores, id, baselineCollection)
			if err != nil {
				return freed, err
			}
			blobFreed, err := deleteBlobsWithPrefix(b.stores, baselineBlobPrefix+"/"+id+"/")
			return freed + blobFreed, err
		})
}

// Prune implements Pruner for MMlibBase.
func (m *MMlibBase) Prune(keep []string) (*PruneReport, error) {
	all, err := m.SetIDs()
	if err != nil {
		return nil, err
	}
	return pruneSets(all, keep,
		func(string) (string, error) { return "", nil },
		func(id string) (int64, error) {
			meta, err := loadMeta(m.stores, mmlibSetCollection, id)
			if err != nil {
				return 0, err
			}
			freed, err := deleteDocs(m.stores, id, mmlibSetCollection)
			if err != nil {
				return freed, err
			}
			for i := 0; i < meta.NumModels; i++ {
				modelID := fmt.Sprintf("%s-m%05d", id, i)
				f, err := deleteDocs(m.stores, modelID,
					mmlibMetaCollection, mmlibEnvCollection, mmlibCodeCollection)
				freed += f
				if err != nil {
					return freed, err
				}
			}
			blobFreed, err := deleteBlobsWithPrefix(m.stores, mmlibBlobPrefix+"/"+id+"/")
			return freed + blobFreed, err
		})
}

// Prune implements Pruner for Update: bases of kept derived sets are
// retained so their diff chains stay recoverable.
func (u *Update) Prune(keep []string) (*PruneReport, error) {
	all, err := u.SetIDs()
	if err != nil {
		return nil, err
	}
	return pruneSets(all, keep,
		func(id string) (string, error) {
			meta, err := loadMeta(u.stores, updateCollection, id)
			if err != nil {
				return "", err
			}
			return meta.Base, nil
		},
		func(id string) (int64, error) {
			freed, err := deleteDocs(u.stores, id,
				updateCollection, updateHashCollection, updateDiffCollection)
			if err != nil {
				return freed, err
			}
			blobFreed, err := deleteBlobsWithPrefix(u.stores, updateBlobPrefix+"/"+id+"/")
			return freed + blobFreed, err
		})
}

// Prune implements Pruner for Provenance: bases of kept derived sets
// are retained so their training chains stay replayable.
func (p *Provenance) Prune(keep []string) (*PruneReport, error) {
	all, err := p.SetIDs()
	if err != nil {
		return nil, err
	}
	return pruneSets(all, keep,
		func(id string) (string, error) {
			meta, err := loadMeta(p.stores, provenanceCollection, id)
			if err != nil {
				return "", err
			}
			return meta.Base, nil
		},
		func(id string) (int64, error) {
			freed, err := deleteDocs(p.stores, id,
				provenanceCollection, provenanceTrainCollection, provenanceUpdateCollection)
			if err != nil {
				return freed, err
			}
			blobFreed, err := deleteBlobsWithPrefix(p.stores, provenanceBlobPrefix+"/"+id+"/")
			return freed + blobFreed, err
		})
}
