package core

import (
	"context"
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

// Fuzzing the binary decoders: archives may be years old or damaged;
// whatever bytes arrive, the decoders must return errors, never panic
// or accept inconsistent data silently.

func FuzzUnframeParams(f *testing.F) {
	arch := nn.FFNN("fuzz", 3, []int{4}, 2)
	model := nn.MustNewModel(arch, 1)
	good := frameParams(model)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := nn.MustNewModel(arch, 2)
		if err := unframeParams(m, data); err == nil {
			// Accepted: must round-trip back to the same bytes.
			out := frameParams(m)
			if len(out) != len(data) {
				t.Fatalf("accepted %d bytes but re-frames to %d", len(data), len(out))
			}
			for i := range out {
				if out[i] != data[i] {
					t.Fatalf("accepted frame does not round-trip at byte %d", i)
				}
			}
		}
	})
}

func FuzzBuildSetFromParams(f *testing.F) {
	arch := nn.FFNN("fuzz", 2, []int{3}, 1)
	set, err := NewModelSet(arch, 2, 1)
	if err != nil {
		f.Fatal(err)
	}
	good, err := concatParams(context.Background(), set, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good, 2)
	f.Add(good[:len(good)-1], 2)
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2, 3}, 1)

	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 8 {
			return
		}
		got, err := buildSetFromParams(context.Background(), arch, n, data, 1)
		if err != nil {
			return
		}
		if got.Len() != n {
			t.Fatalf("decoded %d models, want %d", got.Len(), n)
		}
		if out, err := concatParams(context.Background(), got, 1); err != nil || len(out) != len(data) {
			t.Fatalf("accepted %d bytes but re-encodes to %d", len(data), len(out))
		}
	})
}
