package core

import (
	"errors"
	"fmt"
	"strings"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// Deduplicated storage: WithDedup routes every blob an approach writes
// through the content-addressed chunk store (internal/storage/cas)
// living inside the same blob store under the reserved "cas/"
// namespace. Only the write path is opt-in; the read path below is
// always CAS-aware, trying the raw blob first and falling back to a
// recipe, so one store can hold a mix of deduplicated and plain sets
// and every set stays readable either way.

// getBlob reads a logical blob: raw bytes if present, else through its
// CAS recipe. When both are missing the raw error is returned so
// backend.IsNotFound semantics are preserved.
func getBlob(st Stores, key string) ([]byte, error) {
	data, err := st.Blobs.Get(key)
	if err == nil || !backend.IsNotFound(err) {
		return data, err
	}
	data, cerr := cas.For(st.Blobs).Get(key)
	if cerr == nil {
		return data, nil
	}
	if backend.IsNotFound(cerr) {
		return nil, err
	}
	return nil, mapCorrupt(cerr)
}

// mapCorrupt translates the CAS layer's corruption sentinel — a chunk
// body that is damaged, names an unknown codec, or fails to decode —
// into the core-level ErrCorruptBlob callers test for.
func mapCorrupt(err error) error {
	if errors.Is(err, cas.ErrCorrupt) {
		return fmt.Errorf("core: %v: %w", err, ErrCorruptBlob)
	}
	return err
}

// getBlobRange is getBlob for a byte range.
func getBlobRange(st Stores, key string, off, length int64) ([]byte, error) {
	data, err := st.Blobs.GetRange(key, off, length)
	if err == nil || !backend.IsNotFound(err) {
		return data, err
	}
	data, cerr := cas.For(st.Blobs).GetRange(key, off, length)
	if cerr == nil {
		return data, nil
	}
	if backend.IsNotFound(cerr) {
		return nil, err
	}
	return nil, mapCorrupt(cerr)
}

// blobSize reports a logical blob's size, raw or deduplicated.
func blobSize(st Stores, key string) (int64, error) {
	size, err := st.Blobs.Size(key)
	if err == nil || !backend.IsNotFound(err) {
		return size, err
	}
	size, cerr := cas.For(st.Blobs).Size(key)
	if cerr == nil {
		return size, nil
	}
	if backend.IsNotFound(cerr) {
		return 0, err
	}
	return 0, cerr
}

// deleteBlob removes a logical blob and returns the physical bytes
// actually freed. A raw blob frees its own size; a deduplicated blob
// releases its references and frees only the recipe plus chunks whose
// refcount reached zero — chunks still shared with other sets cost
// nothing to "delete". Missing keys free zero bytes without error.
func deleteBlob(st Stores, key string) (int64, error) {
	size, err := st.Blobs.Size(key)
	switch {
	case err == nil:
		if derr := st.Blobs.Delete(key); derr != nil {
			return size, derr
		}
		// Drop any cached parse of the raw blob (per-set chunk
		// indexes live on the serving-tier cache under their key).
		cas.For(st.Blobs).InvalidateRaw(key)
		return size, nil
	case backend.IsNotFound(err):
		return cas.For(st.Blobs).Release(key, nil)
	default:
		return 0, err
	}
}

// GCReport summarizes a dedup garbage-collection pass.
type GCReport = cas.GCReport

// GCStore deletes every deduplicated chunk no recipe references (and
// whose persisted refcount is zero) from the store's CAS layer,
// recording the deletions in reg (nil means obs.Default is skipped; the
// cas package tolerates nil). Releases already delete chunks eagerly
// when their refcount reaches zero, so GCStore mainly reclaims debris
// left by crashes — typically after an Fsck -repair pass.
func GCStore(st Stores, reg *obs.Registry) (GCReport, error) {
	return cas.For(st.Blobs).GC(reg)
}

// blobKeysWithPrefix enumerates the logical blob keys under prefix:
// raw blobs plus the logical keys of CAS recipes. The CAS namespace
// itself (chunks, refcounts, recipes) is never reported — those are
// physical storage, not logical blobs.
func blobKeysWithPrefix(st Stores, prefix string) ([]string, error) {
	keys, err := st.Blobs.Keys()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range keys {
		if logical, ok := cas.LogicalKey(k); ok {
			if strings.HasPrefix(logical, prefix) {
				out = append(out, logical)
			}
			continue
		}
		if cas.IsKey(k) {
			continue
		}
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out, nil
}
