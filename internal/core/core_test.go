package core

import (
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

func TestNewModelSetDeterministic(t *testing.T) {
	a := mustNewSet(t, 5)
	b := mustNewSet(t, 5)
	if !a.Equal(b) {
		t.Fatal("same fleet seed produced different sets")
	}
}

func TestNewModelSetModelsDistinct(t *testing.T) {
	set := mustNewSet(t, 5)
	for i := 1; i < set.Len(); i++ {
		if set.Models[0].ParamsEqual(set.Models[i]) {
			t.Fatalf("models 0 and %d initialized identically", i)
		}
	}
}

func TestNewModelSetValidation(t *testing.T) {
	if _, err := NewModelSet(testArch(), 0, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewModelSet(&nn.Architecture{Name: "bad"}, 1, 1); err == nil {
		t.Error("invalid architecture accepted")
	}
}

func TestModelSetCloneIndependent(t *testing.T) {
	set := mustNewSet(t, 3)
	c := set.Clone()
	if !set.Equal(c) {
		t.Fatal("clone differs")
	}
	c.Models[1].Params()[0].Tensor.Data[0] += 1
	if set.Equal(c) {
		t.Fatal("clone shares parameter storage")
	}
}

func TestModelSetEqualLengthMismatch(t *testing.T) {
	a := mustNewSet(t, 2)
	b := mustNewSet(t, 3)
	if a.Equal(b) {
		t.Fatal("sets of different size reported equal")
	}
}

func TestValidateSaveErrors(t *testing.T) {
	set := mustNewSet(t, 3)
	if err := validateSave(SaveRequest{}); err == nil {
		t.Error("nil set accepted")
	}
	if err := validateSave(SaveRequest{Set: &ModelSet{Arch: testArch()}}); err == nil {
		t.Error("empty set accepted")
	}
	bad := SaveRequest{Set: set, Updates: []ModelUpdate{{ModelIndex: 99}}}
	if err := validateSave(bad); err == nil {
		t.Error("out-of-range update index accepted")
	}
	mixed := &ModelSet{Arch: testArch(), Models: []*nn.Model{
		nn.MustNewModel(nn.FFNN48(), 1),
	}}
	if err := validateSave(SaveRequest{Set: mixed}); err == nil {
		t.Error("architecture mismatch accepted")
	}
}

func TestIDAllocatorSequence(t *testing.T) {
	a := idAllocator{prefix: "x"}
	if got := a.allocate(nil); got != "x-000001" {
		t.Fatalf("first ID = %s", got)
	}
	if got := a.allocate(nil); got != "x-000002" {
		t.Fatalf("second ID = %s", got)
	}
}

func TestIDAllocatorResumesFromExisting(t *testing.T) {
	a := idAllocator{prefix: "x"}
	if got := a.allocate([]string{"x-000001", "x-000002"}); got != "x-000003" {
		t.Fatalf("resumed ID = %s, want x-000003", got)
	}
}

func TestPipelineCodeNonTrivial(t *testing.T) {
	// The pipeline snapshot is part of the storage accounting; it must
	// be a substantial, meaningful document.
	if len(PipelineCode) < 500 {
		t.Fatalf("pipeline code suspiciously small: %d bytes", len(PipelineCode))
	}
}
