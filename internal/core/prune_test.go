package core

import (
	"strings"
	"testing"
)

func TestPruneBaselineDeletesIndependentSets(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	set := mustNewSet(t, 5)
	r1 := mustSave(t, b, SaveRequest{Set: set})
	r2 := mustSave(t, b, SaveRequest{Set: set})
	r3 := mustSave(t, b, SaveRequest{Set: set})

	report, err := b.Prune([]string{r2.SetID})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Deleted) != 2 || len(report.Kept) != 1 {
		t.Fatalf("report = %+v", report)
	}
	if report.FreedBytes <= 0 {
		t.Error("no bytes freed")
	}
	if _, err := b.Recover(r2.SetID); err != nil {
		t.Errorf("kept set unrecoverable: %v", err)
	}
	for _, id := range []string{r1.SetID, r3.SetID} {
		if _, err := b.Recover(id); err == nil {
			t.Errorf("pruned set %s still recoverable", id)
		}
	}
	// Blobs of pruned sets are actually gone.
	keys, _ := st.Blobs.Keys()
	for _, k := range keys {
		if strings.Contains(k, r1.SetID) || strings.Contains(k, r3.SetID) {
			t.Errorf("leftover blob %s", k)
		}
	}
}

func TestPruneUpdateKeepsChains(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	ids, truths := saveUpdateChain(t, u, st, 3)

	// Keep only the last set: its whole base chain must survive.
	report, err := u.Prune([]string{ids[3]})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Kept) != 4 {
		t.Fatalf("kept %v, want the full chain", report.Kept)
	}
	if len(report.Deleted) != 0 {
		t.Fatalf("deleted %v from a single chain", report.Deleted)
	}
	got := mustRecover(t, u, ids[3])
	if !truths[3].Equal(got) {
		t.Fatal("kept chain recovered incorrectly")
	}
}

func TestPruneUpdateDeletesDanglingBranch(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	set := mustNewSet(t, 6)
	r1 := mustSave(t, u, SaveRequest{Set: set})
	// Two branches off the same base.
	branchA := set.Clone()
	runCycle(t, branchA, st.Datasets, 1, []int{0}, nil)
	ra := mustSave(t, u, SaveRequest{Set: branchA, Base: r1.SetID})
	branchB := set.Clone()
	runCycle(t, branchB, st.Datasets, 2, []int{1}, nil)
	rb := mustSave(t, u, SaveRequest{Set: branchB, Base: r1.SetID})

	report, err := u.Prune([]string{ra.SetID})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Deleted) != 1 || report.Deleted[0] != rb.SetID {
		t.Fatalf("deleted %v, want [%s]", report.Deleted, rb.SetID)
	}
	if got := mustRecover(t, u, ra.SetID); !branchA.Equal(got) {
		t.Fatal("kept branch recovered incorrectly")
	}
	if _, err := u.Recover(rb.SetID); err == nil {
		t.Fatal("pruned branch still recoverable")
	}
}

func TestPruneProvenanceKeepsChains(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, truths := saveProvenanceChain(t, p, st, 2)
	report, err := p.Prune([]string{ids[2]})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Kept) != 3 || len(report.Deleted) != 0 {
		t.Fatalf("report = %+v", report)
	}
	got := mustRecover(t, p, ids[2])
	if !truths[2].Equal(got) {
		t.Fatal("kept provenance chain recovered incorrectly")
	}
}

func TestPruneMMlibRemovesAllModelArtifacts(t *testing.T) {
	st := NewMemStores()
	m := NewMMlibBase(st)
	set := mustNewSet(t, 4)
	r1 := mustSave(t, m, SaveRequest{Set: set})
	r2 := mustSave(t, m, SaveRequest{Set: set})

	report, err := m.Prune([]string{r2.SetID})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Deleted) != 1 {
		t.Fatalf("report = %+v", report)
	}
	// Every per-model document of the pruned set must be gone.
	for _, c := range []string{mmlibMetaCollection, mmlibEnvCollection, mmlibCodeCollection} {
		ids, err := st.Docs.IDs(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if strings.HasPrefix(id, r1.SetID) {
				t.Errorf("leftover document %s/%s", c, id)
			}
		}
	}
	if _, err := m.Recover(r2.SetID); err != nil {
		t.Errorf("kept set unrecoverable: %v", err)
	}
}

func TestPruneUnknownKeepRejected(t *testing.T) {
	b := NewBaseline(NewMemStores())
	if _, err := b.Prune([]string{"bl-999999"}); err == nil {
		t.Fatal("pruning with unknown keep ID accepted")
	}
}

func TestPruneKeepNothing(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	set := mustNewSet(t, 3)
	mustSave(t, b, SaveRequest{Set: set})
	mustSave(t, b, SaveRequest{Set: set})
	report, err := b.Prune(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Deleted) != 2 {
		t.Fatalf("deleted %v, want everything", report.Deleted)
	}
	ids, _ := b.SetIDs()
	if len(ids) != 0 {
		t.Fatalf("sets remain after full prune: %v", ids)
	}
}
