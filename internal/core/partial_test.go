package core

import (
	"errors"
	"testing"

	"github.com/mmm-go/mmm/internal/nn"
)

// checkPartial recovers the given indices and compares each model
// against the truth set.
func checkPartial(t *testing.T, r PartialRecoverer, setID string, truth *ModelSet, indices []int) {
	t.Helper()
	got, err := r.RecoverModels(setID, indices)
	if err != nil {
		t.Fatalf("RecoverModels(%s, %v): %v", setID, indices, err)
	}
	if len(got.Models) != len(uniqueInts(indices)) {
		t.Fatalf("recovered %d models, want %d", len(got.Models), len(uniqueInts(indices)))
	}
	for _, i := range indices {
		m, ok := got.Models[i]
		if !ok {
			t.Fatalf("model %d missing from partial recovery", i)
		}
		if !truth.Models[i].ParamsEqual(m) {
			t.Fatalf("model %d recovered incorrectly", i)
		}
	}
	if got.Arch == nil || got.Arch.ParamCount() != truth.Arch.ParamCount() {
		t.Fatal("partial recovery lost the architecture")
	}
}

func uniqueInts(xs []int) map[int]bool {
	m := map[int]bool{}
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func TestPartialRecoveryBaseline(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	set := mustNewSet(t, 12)
	res := mustSave(t, b, SaveRequest{Set: set})
	checkPartial(t, b, res.SetID, set, []int{0, 5, 11})
	checkPartial(t, b, res.SetID, set, []int{7})
}

func TestPartialRecoveryBaselineReadsOnlySelectedBytes(t *testing.T) {
	// The point of ranged reads: recovering 2 of 50 models must read a
	// small fraction of the parameter blob.
	st := NewMemStores()
	b := NewBaseline(st)
	set := mustNewSetArch(t, nn.FFNN48(), 50)
	res := mustSave(t, b, SaveRequest{Set: set})

	before := st.Blobs.Stats().BytesRead
	if _, err := b.RecoverModels(res.SetID, []int{3, 42}); err != nil {
		t.Fatal(err)
	}
	read := st.Blobs.Stats().BytesRead - before
	// 2 models + the architecture blob; far below the 50-model payload.
	budget := int64(3 * set.Arch.ParamBytes())
	if read > budget {
		t.Fatalf("partial recovery read %d bytes, budget %d", read, budget)
	}
}

func TestPartialRecoveryMMlib(t *testing.T) {
	st := NewMemStores()
	m := NewMMlibBase(st)
	set := mustNewSet(t, 9)
	res := mustSave(t, m, SaveRequest{Set: set})
	checkPartial(t, m, res.SetID, set, []int{2, 8})
}

func TestPartialRecoveryUpdateChain(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	ids, truths := saveUpdateChain(t, u, st, 3)
	for level, id := range ids {
		checkPartial(t, u, id, truths[level], []int{0, 4, 7})
	}
}

func TestPartialRecoveryUpdateTouchedAndUntouched(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	set := mustNewSet(t, 8)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	runCycle(t, set, st.Datasets, 1, []int{2}, []int{5})
	res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})

	// Recover one updated and one untouched model.
	checkPartial(t, u, res.SetID, set, []int{2, 3})
	checkPartial(t, u, res.SetID, set, []int{5})
}

func TestPartialRecoveryUpdateCompressed(t *testing.T) {
	st := NewMemStores()
	u := NewUpdate(st)
	u.Compress = true
	set := mustNewSetArch(t, nn.FFNN48(), 6)
	resFull := mustSave(t, u, SaveRequest{Set: set})
	// Compressible change (sparsified layer) plus a trained change.
	w, err := set.Models[1].LayerParam("fc2.weight")
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Data {
		if i%8 != 0 {
			w.Data[i] = 0
		}
	}
	res := mustSave(t, u, SaveRequest{Set: set, Base: resFull.SetID})
	checkPartial(t, u, res.SetID, set, []int{1, 4})
}

func TestPartialRecoveryProvenanceChain(t *testing.T) {
	st := NewMemStores()
	p := NewProvenance(st)
	ids, truths := saveProvenanceChain(t, p, st, 2)
	for level, id := range ids {
		checkPartial(t, p, id, truths[level], []int{1, 3})
	}
}

func TestPartialRecoveryValidation(t *testing.T) {
	st := NewMemStores()
	b := NewBaseline(st)
	set := mustNewSet(t, 4)
	res := mustSave(t, b, SaveRequest{Set: set})

	if _, err := b.RecoverModels(res.SetID, nil); err == nil {
		t.Error("empty index list accepted")
	}
	if _, err := b.RecoverModels(res.SetID, []int{4}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := b.RecoverModels(res.SetID, []int{-1}); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := b.RecoverModels("bl-404", []int{0}); !errors.Is(err, ErrSetNotFound) {
		t.Error("unknown set accepted")
	}
	// Duplicates are tolerated (deduplicated).
	got, err := b.RecoverModels(res.SetID, []int{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Models) != 2 {
		t.Fatalf("duplicate indices produced %d models, want 2", len(got.Models))
	}
}

func TestPartialRecoveryAllApproachesAgree(t *testing.T) {
	// Integration: one scenario saved by all approaches; partial
	// recovery of the same indices must agree everywhere.
	st := NewMemStores()
	approaches := []struct {
		a Approach
		p PartialRecoverer
	}{}
	bl := NewBaseline(st)
	ml := NewMMlibBase(st)
	up := NewUpdate(st)
	pv := NewProvenance(st)
	approaches = append(approaches,
		struct {
			a Approach
			p PartialRecoverer
		}{bl, bl}, struct {
			a Approach
			p PartialRecoverer
		}{ml, ml}, struct {
			a Approach
			p PartialRecoverer
		}{up, up}, struct {
			a Approach
			p PartialRecoverer
		}{pv, pv})

	set := mustNewSet(t, 10)
	ids := map[string]string{}
	for _, ap := range approaches {
		res := mustSave(t, ap.a, SaveRequest{Set: set})
		ids[ap.a.Name()] = res.SetID
	}
	updates := runCycle(t, set, st.Datasets, 1, []int{3}, []int{6})
	for _, ap := range approaches {
		res := mustSave(t, ap.a, SaveRequest{
			Set: set, Base: ids[ap.a.Name()], Updates: updates, Train: testTrainInfo(),
		})
		ids[ap.a.Name()] = res.SetID
	}
	for _, ap := range approaches {
		checkPartial(t, ap.p, ids[ap.a.Name()], set, []int{3, 6, 9})
	}
}

func TestParamByteSizesMatchModel(t *testing.T) {
	for _, arch := range []*nn.Architecture{nn.FFNN48(), nn.FFNN69(), nn.CIFARNet()} {
		sizes := paramByteSizes(arch)
		m := nn.MustNewModel(arch, 1)
		params := m.Params()
		if len(sizes) != len(params) {
			t.Fatalf("%s: %d sizes for %d params", arch.Name, len(sizes), len(params))
		}
		total := 0
		for i, p := range params {
			if sizes[i] != 4*p.Tensor.Len() {
				t.Fatalf("%s: param %d size %d, want %d", arch.Name, i, sizes[i], 4*p.Tensor.Len())
			}
			total += sizes[i]
		}
		if total != arch.ParamBytes() {
			t.Fatalf("%s: sizes sum to %d, want %d", arch.Name, total, arch.ParamBytes())
		}
	}
}
