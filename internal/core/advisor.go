package core

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// This file implements the heuristic approach selection the paper
// names as future work: "we plan to develop heuristic-based approaches
// that dynamically choose the most suitable strategy for a given
// scenario" (§4.5). The heuristic encodes the paper's own discussion:
// Provenance wins when storage dominates and recoveries are rare but
// pays a compute-heavy TTR; Update is the middle ground; Baseline wins
// when TTR has the highest priority; MMlib-base never wins a
// multi-model scenario.

// Scenario describes a deployment for approach selection.
type Scenario struct {
	// NumModels is the fleet size (n in the paper).
	NumModels int
	// ParamCount is the per-model parameter count.
	ParamCount int
	// UpdateRate is the fraction of models retrained per cycle (the
	// paper's default is 0.10: 5% full + 5% partial).
	UpdateRate float64
	// SavesPerRecovery is how many sets are saved for every recovery.
	// The paper's scenario saves every set but recovers "only a
	// selected number of models, for example, after an accident", so
	// this is typically large.
	SavesPerRecovery float64
	// RetrainCost is the compute cost of re-training one model during
	// provenance recovery.
	RetrainCost time.Duration
	// Weights express what matters; they need not sum to 1.
	StorageWeight float64
	SaveWeight    float64
	RecoverWeight float64
}

// Validate rejects meaningless scenarios.
func (s Scenario) Validate() error {
	switch {
	case s.NumModels <= 0:
		return fmt.Errorf("core: scenario needs a positive model count")
	case s.ParamCount <= 0:
		return fmt.Errorf("core: scenario needs a positive parameter count")
	case s.UpdateRate < 0 || s.UpdateRate > 1:
		return fmt.Errorf("core: update rate must be in [0, 1]")
	case s.SavesPerRecovery <= 0:
		return fmt.Errorf("core: saves-per-recovery must be positive")
	case s.StorageWeight < 0 || s.SaveWeight < 0 || s.RecoverWeight < 0:
		return fmt.Errorf("core: weights must be non-negative")
	case s.StorageWeight+s.SaveWeight+s.RecoverWeight == 0:
		return fmt.Errorf("core: at least one weight must be positive")
	}
	return nil
}

// Recommendation is the advisor's ranked answer.
type Recommendation struct {
	// Approach is the recommended approach name.
	Approach string
	// Ranking lists all approaches from best to worst with their
	// normalized weighted costs (lower is better).
	Ranking []ScoredApproach
	// Rationale explains the choice in one sentence.
	Rationale string
}

// ScoredApproach pairs an approach name with its normalized cost.
type ScoredApproach struct {
	Name string
	Cost float64
}

// Advise recommends a management approach for the scenario.
//
// The cost model uses per-cycle estimates derived from the approaches'
// construction (and validated by this repository's experiments):
// storage in bytes per save, save cost in store operations and bytes,
// recovery cost in bytes re-read plus — for Provenance — retraining
// compute amortized over the save/recover ratio.
func Advise(s Scenario) (Recommendation, error) {
	if err := s.Validate(); err != nil {
		return Recommendation{}, err
	}
	paramBytes := float64(4 * s.ParamCount * s.NumModels)
	updated := s.UpdateRate * float64(s.NumModels)

	// Per-model constant overheads, from the approaches' layouts.
	const mmlibPerModelOverhead = 8 * 1024 // metadata, env, code, arch, keys
	const hashBytesPerModel = 600          // per-layer SHA-256 hex, ~8 layers

	type estimate struct {
		name    string
		storage float64 // bytes per derived save
		save    float64 // store ops per save (the TTS driver) + MB written
		recover float64 // cost to recover one set (bytes read + compute)
	}
	n := float64(s.NumModels)
	est := []estimate{
		{
			name:    "MMlib-base",
			storage: paramBytes + mmlibPerModelOverhead*n,
			save:    5 * n, // 3 docs + 2 blobs per model
			recover: 5 * n,
		},
		{
			name:    "Baseline",
			storage: paramBytes,
			save:    3 + paramBytes/1e6,
			recover: 3 + paramBytes/1e6,
		},
		{
			name:    "Update",
			storage: 4*float64(s.ParamCount)*updated + hashBytesPerModel*n,
			save:    4 + (4*float64(s.ParamCount)*updated+hashBytesPerModel*n)/1e6,
			// Recovery re-reads the whole chain; amortize as ~half the
			// saves since the last snapshot. Without snapshots the chain
			// grows with the save count.
			recover: (3 + paramBytes/1e6) + s.SavesPerRecovery/2*(2+4*float64(s.ParamCount)*updated/1e6),
		},
		{
			name:    "Provenance",
			storage: 120 * updated, // one dataset reference + record per update
			save:    3,
			// Recovery retrains every update in the chain.
			recover: (3 + paramBytes/1e6) + s.SavesPerRecovery*updated*float64(s.RetrainCost)/float64(time.Millisecond),
		},
	}

	// Score each metric as the log of its ratio to the best approach on
	// that metric. Log-ratios keep every metric comparable even when one
	// approach is pathologically bad on one axis (Provenance's recovery
	// can be many orders of magnitude above the rest; plain max
	// normalization would squash all other recovery differences to
	// nothing).
	minStorage, minSave, minRecover := est[0].storage, est[0].save, est[0].recover
	for _, e := range est[1:] {
		minStorage = minFloat(minStorage, e.storage)
		minSave = minFloat(minSave, e.save)
		minRecover = minFloat(minRecover, e.recover)
	}
	scored := make([]ScoredApproach, len(est))
	for i, e := range est {
		cost := s.StorageWeight*logRatio(e.storage, minStorage) +
			s.SaveWeight*logRatio(e.save, minSave) +
			s.RecoverWeight*logRatio(e.recover, minRecover)
		scored[i] = ScoredApproach{Name: e.name, Cost: cost}
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].Cost < scored[j].Cost })

	rec := Recommendation{Approach: scored[0].Name, Ranking: scored}
	switch rec.Approach {
	case "Provenance":
		rec.Rationale = "storage dominates and recoveries are rare enough to pay provenance's compute-heavy recovery"
	case "Update":
		rec.Rationale = "storage matters but recovery time must stay moderate; deltas balance both"
	case "Baseline":
		rec.Rationale = "recovery time has the highest priority; full snapshots recover each set independently"
	default:
		rec.Rationale = "single-model management fits the weighting (unusual for multi-model scenarios)"
	}
	return rec, nil
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// logRatio returns log2 of v relative to the best (smallest) value of
// the metric; the best approach scores 0 on that metric.
func logRatio(v, best float64) float64 {
	if best <= 0 {
		best = 1
	}
	if v <= best {
		return 0
	}
	return math.Log2(v / best)
}
