package core

import (
	"errors"
	"testing"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
	"github.com/mmm-go/mmm/internal/storage/sim"
)

// Crash-point enumeration: every save is a sequence of atomic backend
// mutations, and a crash can land between any two of them. These tests
// run realistic save sequences against a sim.World, then replay the
// durable state at EVERY prefix of the mutation trace and assert the
// durability invariant at each one:
//
//   - fsck finds nothing worse than deletable orphans (no torn sets),
//   - every set whose metadata is visible recovers bit-exactly,
//   - every set whose metadata is not visible is fully absent
//     (recovery fails with ErrSetNotFound, never a partial read), and
//   - after fsck --repair the store is completely clean and the visible
//     sets still recover.
//
// Saves run with WithConcurrency(1) so the recorded traces are
// deterministic across runs.

// simStores builds core Stores over a sim world's "docs" and "blobs"
// nodes.
func simStores(world *sim.World, reg *dataset.Registry) Stores {
	return Stores{
		Docs:     docstore.New(world.Node("docs"), latency.CostModel{}, nil),
		Blobs:    blobstore.New(world.Node("blobs"), latency.CostModel{}, nil),
		Datasets: reg,
	}
}

// crashCommit is one completed save and the exact parameters it must
// recover to.
type crashCommit struct {
	setID string
	want  *ModelSet
}

// crashScript runs an approach's save sequence against st and returns
// the commits in save order.
type crashScript func(t *testing.T, st Stores) []crashCommit

func runCrashEnumeration(t *testing.T, approachName string, script crashScript) {
	t.Helper()
	world := sim.NewWorld()
	reg := dataset.NewRegistry()
	commits := script(t, simStores(world, reg))
	total := world.Len()
	if total == 0 {
		t.Fatal("script recorded no mutations")
	}

	for n := 0; n <= total; n++ {
		replayed := world.Replay(n)
		st := Stores{
			Docs:     docstore.New(replayed["docs"], latency.CostModel{}, nil),
			Blobs:    blobstore.New(replayed["blobs"], latency.CostModel{}, nil),
			Datasets: reg,
		}

		report, err := Fsck(st, FsckOptions{})
		if err != nil {
			t.Fatalf("crash at op %d/%d: fsck: %v", n, total, err)
		}
		if report.Damaged() {
			t.Fatalf("crash at op %d/%d left a torn state:\n%v", n, total, report.Issues)
		}

		a := approachByName(st, approachName)
		visible := checkCommits(t, a, commits, n, total)

		// Repair must leave a completely clean store without harming any
		// visible set.
		if _, err := Fsck(st, FsckOptions{Repair: true}); err != nil {
			t.Fatalf("crash at op %d/%d: fsck repair: %v", n, total, err)
		}
		after, err := Fsck(st, FsckOptions{})
		if err != nil {
			t.Fatalf("crash at op %d/%d: fsck after repair: %v", n, total, err)
		}
		if !after.Clean() {
			t.Fatalf("crash at op %d/%d: store dirty after repair:\n%v", n, total, after.Issues)
		}
		if got := checkCommits(t, a, commits, n, total); got != visible {
			t.Fatalf("crash at op %d/%d: repair changed visible sets from %d to %d", n, total, visible, got)
		}
	}
}

// checkCommits asserts each commit is either fully recoverable or fully
// absent, and returns how many are visible.
func checkCommits(t *testing.T, a Approach, commits []crashCommit, n, total int) int {
	t.Helper()
	visible := 0
	for _, c := range commits {
		got, err := a.Recover(c.setID)
		switch {
		case err == nil:
			visible++
			if !got.Equal(c.want) {
				t.Fatalf("crash at op %d/%d: set %s recovered with wrong parameters", n, total, c.setID)
			}
		case errors.Is(err, ErrSetNotFound):
			// Fully invisible — the acceptable other outcome.
		default:
			t.Fatalf("crash at op %d/%d: set %s neither recoverable nor absent: %v", n, total, c.setID, err)
		}
	}
	return visible
}

func TestCrashEnumerationMMlibBase(t *testing.T) {
	runCrashEnumeration(t, "MMlibBase", func(t *testing.T, st Stores) []crashCommit {
		a := NewMMlibBase(st, WithConcurrency(1))
		set := mustNewSet(t, 2)
		var commits []crashCommit
		for cycle := 1; cycle <= 2; cycle++ {
			if cycle > 1 {
				runCycle(t, set, st.Datasets, cycle, []int{0}, []int{1})
			}
			id := mustSave(t, a, SaveRequest{Set: set}).SetID
			commits = append(commits, crashCommit{id, set.Clone()})
		}
		return commits
	})
}

func TestCrashEnumerationBaseline(t *testing.T) {
	runCrashEnumeration(t, "Baseline", func(t *testing.T, st Stores) []crashCommit {
		a := NewBaseline(st, WithConcurrency(1))
		set := mustNewSet(t, 3)
		var commits []crashCommit
		for cycle := 1; cycle <= 2; cycle++ {
			if cycle > 1 {
				runCycle(t, set, st.Datasets, cycle, []int{1}, []int{2})
			}
			id := mustSave(t, a, SaveRequest{Set: set}).SetID
			commits = append(commits, crashCommit{id, set.Clone()})
		}
		return commits
	})
}

// TestCrashEnumerationUpdate runs the paper's U1→U3-3 sequence: an
// initial full save and three derived saves chained on it. Crashing
// anywhere inside U3-2's save must never corrupt U3-1's recovery — the
// derived chain reads U3-1's artifacts, so this is where write-order
// bugs (metadata committed before auxiliary documents) surface.
func TestCrashEnumerationUpdate(t *testing.T) {
	runCrashEnumeration(t, "Update", func(t *testing.T, st Stores) []crashCommit {
		a := NewUpdate(st, WithConcurrency(1))
		set := mustNewSet(t, 3)
		var commits []crashCommit
		base := ""
		for cycle := 1; cycle <= 4; cycle++ { // U1, U3-1, U3-2, U3-3
			if cycle > 1 {
				runCycle(t, set, st.Datasets, cycle, []int{cycle % 3}, []int{(cycle + 1) % 3})
			}
			id := mustSave(t, a, SaveRequest{Set: set, Base: base}).SetID
			commits = append(commits, crashCommit{id, set.Clone()})
			base = id
		}
		return commits
	})
}

func TestCrashEnumerationProvenance(t *testing.T) {
	runCrashEnumeration(t, "Provenance", func(t *testing.T, st Stores) []crashCommit {
		a := NewProvenance(st, WithConcurrency(1))
		set := mustNewSet(t, 2)
		var commits []crashCommit
		base := ""
		for cycle := 1; cycle <= 3; cycle++ { // U1, U3-1, U3-2
			req := SaveRequest{Set: set}
			if cycle > 1 {
				req.Updates = runCycle(t, set, st.Datasets, cycle, []int{0}, []int{1})
				req.Base = base
				req.Train = testTrainInfo()
			}
			id := mustSave(t, a, req).SetID
			commits = append(commits, crashCommit{id, set.Clone()})
			base = id
		}
		return commits
	})
}

// TestCrashTraceIsNonTrivial guards the enumeration itself: the Update
// U1→U3-3 sequence must produce enough distinct crash points that the
// sweep is meaningful.
func TestCrashTraceIsNonTrivial(t *testing.T) {
	world := sim.NewWorld()
	st := simStores(world, dataset.NewRegistry())
	a := NewUpdate(st, WithConcurrency(1))
	set := mustNewSet(t, 3)
	base := ""
	for cycle := 1; cycle <= 4; cycle++ {
		if cycle > 1 {
			runCycle(t, set, st.Datasets, cycle, []int{cycle % 3}, nil)
		}
		base = mustSave(t, a, SaveRequest{Set: set, Base: base}).SetID
	}
	if world.Len() < 15 {
		t.Fatalf("U1→U3-3 produced only %d mutations; crash sweep too coarse", world.Len())
	}
	for _, op := range world.Ops() {
		if op.Node != "docs" && op.Node != "blobs" {
			t.Fatalf("unexpected node %q in trace", op.Node)
		}
	}
}
