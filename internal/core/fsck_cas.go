package core

import (
	"fmt"
	"sort"

	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// CAS fsck direction: the deduplicating chunk store adds three
// namespaces (chunks, refcounts, recipes) whose mutual consistency the
// generic orphan analysis cannot see — a chunk is live not because a
// set references its key but because a live recipe lists its hash.
// casFsck checks the dedup invariants:
//
//   - every recipe belongs to a committed set (else: orphaned partial
//     write, deletable),
//   - every chunk a live recipe lists exists with the recorded size
//     (else: committed data damaged, report only),
//   - every chunk is listed by at least one surviving recipe (else:
//     orphan chunk, deletable together with its refcount),
//   - every persisted refcount equals the number of surviving recipes
//     listing the chunk (else: metadata drift, rewritable),
//   - no refcount exists for a chunk that is gone (else: bookkeeping
//     debris, deletable).
//
// Saves increment refcounts after writing the recipe and commit by
// writing set metadata last; Release deletes the recipe before
// decrementing. A crash at any prefix therefore leaves stored
// refcounts >= surviving-recipe references and only debris of the
// kinds above — all Orphan-class, so a single Repair pass returns the
// store to Clean without touching committed data.

// Fsck issue kinds of the CAS direction.
const (
	// FsckCASChunk is a chunk that is missing or unreferenced.
	FsckCASChunk = "cas-chunk"
	// FsckCASRecipe is a recipe document that is orphaned or garbled.
	FsckCASRecipe = "cas-recipe"
	// FsckCASRefcount is a persisted refcount that disagrees with the
	// surviving recipes (or outlived its chunk).
	FsckCASRefcount = "cas-refcount"
)

// casRepairKey indexes the side table of CAS repair actions that are
// not plain single-key deletions. Kind+key is unique per issue.
func casRepairKey(kind, key string) string { return kind + "\x00" + key }

// casState is what casFsck hands the rest of Fsck.
type casState struct {
	// orphan lists cas/ blob keys classified as deletable debris, so
	// the checksum direction marks its findings on them Orphan too.
	orphan map[string]bool
	// repairs maps casRepairKey to the repair action where a plain
	// delete of the issue key is not enough.
	repairs map[string]func() error
	// refRewrite maps the ref key of every surviving chunk to a repair
	// that rewrites its refcount from the surviving recipes. Integrity
	// findings on those keys (a crash between a refcount write and its
	// manifest) are repairable drift, never damage — a refcount is
	// derivable metadata, not primary data.
	refRewrite map[string]func() error
}

// casFsck appends CAS issues to the report and returns the side state
// the checksum and repair passes need.
func casFsck(st Stores, refs *refSet, report *FsckReport) (*casState, error) {
	scan, err := cas.ScanStore(st.Blobs)
	if err != nil {
		return nil, err
	}
	state := &casState{
		orphan:     map[string]bool{},
		repairs:    map[string]func() error{},
		refRewrite: map[string]func() error{},
	}
	orphanKeys, repairs := state.orphan, state.repairs

	// A recipe is orphaned when its logical key lies in an owned
	// namespace with complete reference analysis and no committed set
	// references it. Recipes under unsafe prefixes — and any outside
	// the namespaces this system owns — are treated as live.
	orphanRecipe := func(logical string) bool {
		p := ownedPrefix(logical)
		return p != "" && !refs.unsafePrefix[p] && !refs.blobs[logical]
	}

	// Garbled recipes: deletable when orphaned; otherwise committed
	// data is unreadable AND chunk reachability is unknown, so the
	// orphan-chunk/refcount analysis below must not run (it would
	// classify that recipe's chunks as garbage).
	unsafe := false
	badLogical := make([]string, 0, len(scan.BadRecipes))
	for logical := range scan.BadRecipes {
		badLogical = append(badLogical, logical)
	}
	sort.Strings(badLogical)
	for _, logical := range badLogical {
		key := cas.RecipeKey(logical)
		if orphanRecipe(logical) {
			orphanKeys[key] = true
			report.Issues = append(report.Issues, FsckIssue{
				Kind: FsckCASRecipe, Key: key,
				Problem: fmt.Sprintf("unreadable recipe not referenced by any committed set: %v", scan.BadRecipes[logical]),
				Orphan:  true,
			})
			continue
		}
		unsafe = true
		report.Issues = append(report.Issues, FsckIssue{
			Kind: FsckCASRecipe, Key: key,
			Problem: fmt.Sprintf("recipe of committed blob unreadable: %v", scan.BadRecipes[logical]),
		})
	}

	// Surviving recipes (everything not classified orphan) define chunk
	// liveness: liveCount is the number of surviving recipes listing a
	// chunk, which is exactly what each persisted refcount must equal —
	// saves increment once per distinct chunk per recipe.
	logicals := make([]string, 0, len(scan.Recipes))
	for logical := range scan.Recipes {
		logicals = append(logicals, logical)
	}
	sort.Strings(logicals)
	liveCount := map[string]int{}
	missingReported := map[string]bool{}
	for _, logical := range logicals {
		if orphanRecipe(logical) {
			key := cas.RecipeKey(logical)
			orphanKeys[key] = true
			report.Issues = append(report.Issues, FsckIssue{
				Kind: FsckCASRecipe, Key: key,
				Problem: "recipe not referenced by any committed set (orphaned partial write)",
				Orphan:  true,
			})
			continue
		}
		seen := map[string]bool{}
		for _, c := range scan.Recipes[logical].Chunks {
			if !seen[c.Hash] {
				seen[c.Hash] = true
				liveCount[c.Hash]++
			}
			if missingReported[c.Hash] {
				continue
			}
			size, ok := scan.Chunks[c.Hash]
			switch {
			case !ok:
				missingReported[c.Hash] = true
				problem := fmt.Sprintf("chunk missing but listed by recipe of committed blob %s", logical)
				if st.Blobs.HasQuarantined(cas.ChunkKey(c.Hash)) {
					problem = fmt.Sprintf("chunk quarantined as corrupt but listed by recipe of committed blob %s (damaged body preserved under %s; heal with scrub -repair-from)",
						logical, blobstore.QuarantineKey(cas.ChunkKey(c.Hash)))
				}
				report.Issues = append(report.Issues, FsckIssue{
					Kind: FsckCASChunk, Key: cas.ChunkKey(c.Hash),
					Problem: problem,
				})
			case size != c.Size:
				// A stored size below the logical one is what compressed
				// chunk bodies legitimately look like; only a body that no
				// longer decodes to its content address is damage.
				if err := cas.For(st.Blobs).VerifyChunk(c.Hash, c.Size); err != nil {
					missingReported[c.Hash] = true
					report.Issues = append(report.Issues, FsckIssue{
						Kind: FsckCASChunk, Key: cas.ChunkKey(c.Hash),
						Problem: fmt.Sprintf("chunk does not yield the %d bytes the recipe of %s records: %v", c.Size, logical, err),
					})
				}
			}
		}
	}
	// Quarantine listing: the scrubber moves corrupt bodies aside rather
	// than deleting them, so fsck must account for the namespace. A
	// quarantined chunk that surviving recipes still reference was
	// already reported above (the missing-chunk branch names the
	// quarantined copy); everything else in quarantine is either debris
	// of an uncommitted save or a referenced raw blob gone bad.
	quarantined, err := st.Blobs.Quarantined()
	if err != nil {
		return nil, err
	}
	for _, entry := range quarantined {
		orig := entry.Key
		issueKey := blobstore.QuarantineKey(orig)
		h, isHash := cas.ChunkHash(orig)
		isChunk := isHash && orig == cas.ChunkKey(h)
		switch {
		case unsafe:
			// Reachability is unknown (unreadable committed recipes), so
			// nothing in quarantine may be classified deletable.
			report.Issues = append(report.Issues, FsckIssue{
				Kind: FsckQuarantine, Key: issueKey,
				Problem: "quarantined corrupt data; reachability unknown (unreadable recipes), preserved",
			})
		case isChunk && liveCount[h] > 0:
			// Damage already reported by the missing-chunk branch.
		case isChunk:
			report.Issues = append(report.Issues, FsckIssue{
				Kind: FsckQuarantine, Key: issueKey,
				Problem: "quarantined chunk not referenced by any recipe (deletable debris)",
				Orphan:  true,
			})
			repairs[casRepairKey(FsckQuarantine, issueKey)] = func() error {
				return st.Blobs.DeleteQuarantined(orig)
			}
		default:
			p := ownedPrefix(orig)
			if p != "" && !refs.unsafePrefix[p] && !refs.blobs[orig] {
				report.Issues = append(report.Issues, FsckIssue{
					Kind: FsckQuarantine, Key: issueKey,
					Problem: "quarantined blob not referenced by any committed set (deletable debris)",
					Orphan:  true,
				})
				repairs[casRepairKey(FsckQuarantine, issueKey)] = func() error {
					return st.Blobs.DeleteQuarantined(orig)
				}
				continue
			}
			report.Issues = append(report.Issues, FsckIssue{
				Kind: FsckQuarantine, Key: issueKey,
				Problem: "blob quarantined as corrupt; damaged bytes preserved (re-save or repair to heal)",
			})
		}
	}

	if unsafe {
		return state, nil
	}

	// Orphan chunks: no surviving recipe lists them. Deleting one
	// (together with its refcount) can never lose committed data.
	hashes := make([]string, 0, len(scan.Chunks))
	for h := range scan.Chunks {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		if liveCount[h] > 0 {
			continue
		}
		chunkKey, refKey := cas.ChunkKey(h), cas.RefKey(h)
		orphanKeys[chunkKey] = true
		orphanKeys[refKey] = true
		report.Issues = append(report.Issues, FsckIssue{
			Kind: FsckCASChunk, Key: chunkKey,
			Problem: "chunk not referenced by any recipe (orphaned partial write)",
			Orphan:  true,
		})
		repairs[casRepairKey(FsckCASChunk, chunkKey)] = func() error {
			if err := st.Blobs.Delete(chunkKey); err != nil {
				return err
			}
			return st.Blobs.Delete(refKey)
		}
	}

	// Refcount drift on surviving chunks: a crash between recipe and
	// refcount writes (or between recipe deletion and decrements)
	// leaves counts above the recipe references; rewrite to the
	// recomputed value. Garbled and missing ref files repair the same
	// way.
	liveHashes := make([]string, 0, len(liveCount))
	for h := range liveCount {
		liveHashes = append(liveHashes, h)
	}
	sort.Strings(liveHashes)
	for _, h := range liveHashes {
		if _, ok := scan.Chunks[h]; !ok {
			continue // chunk missing: damage reported above, nothing to rewrite
		}
		want := liveCount[h]
		refKey := cas.RefKey(h)
		rewrite := func() error {
			return st.Blobs.Put(refKey, cas.EncodeRefcount(want))
		}
		state.refRewrite[refKey] = rewrite
		stored, hasRef := scan.Refs[h]
		badErr, bad := scan.BadRefs[h]
		if hasRef && !bad && stored == want {
			continue
		}
		problem := fmt.Sprintf("refcount is %d, surviving recipes imply %d", stored, want)
		if bad {
			problem = fmt.Sprintf("refcount unreadable (%v), surviving recipes imply %d", badErr, want)
		} else if !hasRef {
			problem = fmt.Sprintf("refcount missing, surviving recipes imply %d", want)
		}
		report.Issues = append(report.Issues, FsckIssue{
			Kind: FsckCASRefcount, Key: refKey, Problem: problem, Orphan: true,
		})
		repairs[casRepairKey(FsckCASRefcount, refKey)] = rewrite
	}

	// Dangling refcounts: the chunk is gone and nothing references it
	// (GC deletes the chunk before its refcount, so a crash between the
	// two strands the ref). Plain deletion of the issue key suffices.
	dangling := make([]string, 0)
	for h := range scan.Refs {
		dangling = append(dangling, h)
	}
	for h := range scan.BadRefs {
		dangling = append(dangling, h)
	}
	sort.Strings(dangling)
	for _, h := range dangling {
		if _, ok := scan.Chunks[h]; ok {
			continue
		}
		if liveCount[h] > 0 {
			continue // chunk missing under live references: damage, keep the ref
		}
		refKey := cas.RefKey(h)
		if orphanKeys[refKey] {
			continue
		}
		orphanKeys[refKey] = true
		report.Issues = append(report.Issues, FsckIssue{
			Kind: FsckCASRefcount, Key: refKey,
			Problem: "refcount for nonexistent chunk (bookkeeping debris)",
			Orphan:  true,
		})
	}
	return state, nil
}
