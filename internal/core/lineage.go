package core

import "fmt"

// SetInfo is the public view of a saved set's metadata.
type SetInfo struct {
	SetID      string `json:"set_id"`
	Approach   string `json:"approach"`
	Kind       string `json:"kind"` // "full" or "derived"
	Base       string `json:"base,omitempty"`
	Depth      int    `json:"depth"`
	ArchName   string `json:"arch_name"`
	NumModels  int    `json:"num_models"`
	ParamCount int    `json:"param_count"`
	// Codec is the compression codec ID the set was saved with (""
	// for none, including pre-codec sets).
	Codec string `json:"codec,omitempty"`
}

func infoFromMeta(m setMeta) SetInfo {
	return SetInfo{
		SetID: m.SetID, Approach: m.Approach, Kind: m.Kind, Base: m.Base,
		Depth: m.Depth, ArchName: m.ArchName, NumModels: m.NumModels,
		ParamCount: m.ParamCount, Codec: m.Codec,
	}
}

// Lineager exposes a set's recovery chain: the sequence of sets that
// must exist (and, for Update/Provenance, be processed) to recover it.
type Lineager interface {
	// Lineage returns the chain from setID back to its full snapshot,
	// starting with setID itself.
	Lineage(setID string) ([]SetInfo, error)
}

// lineageFrom walks base pointers in collection until a full save.
func lineageFrom(st Stores, collection, setID string) ([]SetInfo, error) {
	var chain []SetInfo
	seen := map[string]bool{}
	for id := setID; id != ""; {
		if seen[id] {
			return nil, fmt.Errorf("core: lineage of %q contains a cycle at %q", setID, id)
		}
		seen[id] = true
		meta, err := loadMeta(st, collection, id)
		if err != nil {
			return nil, err
		}
		chain = append(chain, infoFromMeta(meta))
		if meta.Kind == "full" {
			return chain, nil
		}
		id = meta.Base
	}
	return nil, fmt.Errorf("core: lineage of %q ends without a full snapshot", setID)
}

// Lineage implements Lineager for Baseline (always a single element).
func (b *Baseline) Lineage(setID string) ([]SetInfo, error) {
	meta, err := loadMeta(b.stores, baselineCollection, setID)
	if err != nil {
		return nil, err
	}
	return []SetInfo{infoFromMeta(meta)}, nil
}

// Lineage implements Lineager for MMlibBase (always a single element).
func (m *MMlibBase) Lineage(setID string) ([]SetInfo, error) {
	meta, err := loadMeta(m.stores, mmlibSetCollection, setID)
	if err != nil {
		return nil, err
	}
	return []SetInfo{infoFromMeta(meta)}, nil
}

// Lineage implements Lineager for Update.
func (u *Update) Lineage(setID string) ([]SetInfo, error) {
	return lineageFrom(u.stores, updateCollection, setID)
}

// Lineage implements Lineager for Provenance.
func (p *Provenance) Lineage(setID string) ([]SetInfo, error) {
	return lineageFrom(p.stores, provenanceCollection, setID)
}
