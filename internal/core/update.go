package core

import (
	"context"
	"fmt"
	"time"

	"github.com/mmm-go/mmm/internal/codec"
	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/hashing"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/cas"
	"github.com/mmm-go/mmm/internal/tensor"
)

// Update is the paper's delta approach: the initial set is saved with
// Baseline's logic plus per-layer parameter hashes; every subsequent
// set saves (1) a reference to its base set, (2) fresh hashes for every
// model and layer, (3) the list of hash-detected changed layers, and
// (4) one binary blob concatenating only the changed parameters.
// Recovery is recursive: recover the base set, then apply the diffs.
//
// Two documented extensions from the paper's discussion are included:
//
//   - SnapshotInterval bounds the recursive recovery chain by saving a
//     full snapshot every k-th set ("recursively increasing recovery
//     times ... can be prevented by saving intermediate model
//     snapshots using the baseline approach", §2.2).
//   - WithCodec compresses the diff blob with a pluggable codec (the
//     compression future work of §4.5).
type Update struct {
	stores  Stores
	ids     idAllocator
	workers int
	metrics *approachObs
	dedup   bool
	codec   string

	// SnapshotInterval k > 0 forces a full snapshot whenever the
	// recovery chain would otherwise grow to k. 0 disables snapshots
	// (the paper's evaluated configuration).
	SnapshotInterval int
	// Compress enables zlib compression of derived sets' diff blobs.
	//
	// Deprecated: use WithCodec("zlib") — or another registered codec —
	// at construction instead. The field keeps working as an alias for
	// WithCodec("zlib") when no codec option was given, so existing
	// callers and stores behave exactly as before.
	Compress bool
	// ModelGranularity diffs at whole-model instead of per-layer
	// granularity: if any layer changed, all of the model's parameters
	// are saved. The paper's approach compares "related models on a
	// layer granularity"; this switch exists to ablate that choice
	// (partial updates lose their storage benefit under model
	// granularity).
	ModelGranularity bool
	// DeltaEncoding stores changed layers as XOR deltas against their
	// base values instead of raw floats — the ModelHub-style delta
	// encoding the paper points to as future work ("the storage
	// consumption can be reduced using delta encoding and other
	// compression techniques"). Retrained parameters usually move
	// little, so the XOR stream is mostly zero bytes in the exponent
	// and high-mantissa positions and compresses far better than raw
	// floats; combine with Compress to realize the saving. Saving pays
	// for it by reading the changed models' base values.
	DeltaEncoding bool
}

// Collections and blob namespace of Update.
const (
	updateCollection     = "update_sets"
	updateHashCollection = "update_hashes"
	updateDiffCollection = "update_diffs"
	updateBlobPrefix     = "update"
)

// NewUpdate returns an Update approach over the given stores.
func NewUpdate(stores Stores, opts ...Option) *Update {
	s := newSettings(opts)
	s.attachCache(stores)
	return &Update{stores: stores, ids: idAllocator{prefix: "up"}, workers: s.workers,
		metrics: newApproachObs(s.metrics, "Update"), dedup: s.dedup, codec: s.codec}
}

// Name implements Approach.
func (u *Update) Name() string { return "Update" }

// hashDoc stores every model's per-layer parameter hashes, aligned
// with the architecture's ParamKeys order.
type hashDoc struct {
	Models [][]string `json:"models"`
}

// diffEntry identifies one changed layer: model index and parameter
// index into the architecture's ParamKeys.
type diffEntry struct {
	M int `json:"m"`
	P int `json:"p"`
}

// diffDoc lists a derived set's changes and how its blob is encoded.
type diffDoc struct {
	Entries []diffEntry `json:"entries"`
	// Compressed marks a zlib-encoded blob. It predates Codec and is
	// still written alongside Codec == "zlib" so binaries from before
	// the codec layer can read stores written by newer ones.
	Compressed bool `json:"compressed,omitempty"`
	// Delta marks the blob as XOR deltas against base values.
	Delta bool `json:"delta,omitempty"`
	// Codec is the ID of the codec the blob is encoded with; ""
	// means raw for pre-codec documents (unless Compressed is set).
	Codec string `json:"codec,omitempty"`
}

// diffCodecID resolves the codec a diff blob was stored with: the
// explicit codec ID when present, "zlib" for pre-codec compressed
// blobs, "" for raw bytes.
func diffCodecID(diff diffDoc) string {
	if diff.Codec != "" && diff.Codec != codec.NoneID {
		return diff.Codec
	}
	if diff.Codec == "" && diff.Compressed {
		return codec.ZlibID
	}
	return ""
}

// SaveContext implements Approach.
func (u *Update) SaveContext(ctx context.Context, req SaveRequest) (SaveResult, error) {
	sp := u.metrics.begin("save", "")
	res, err := u.save(ctx, sp, req)
	sp.SetID = res.SetID
	u.metrics.endSave(sp, res, err)
	return res, err
}

func (u *Update) save(ctx context.Context, sp *obs.Span, req SaveRequest) (SaveResult, error) {
	if err := validateSave(req); err != nil {
		return SaveResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return SaveResult{}, err
	}

	existing, err := u.stores.Docs.IDs(updateCollection)
	if err != nil {
		return SaveResult{}, err
	}
	setID, err := chooseSetID(req, &u.ids, existing)
	if err != nil {
		return SaveResult{}, err
	}

	hashes, err := setHashes(ctx, req.Set, u.workers)
	if err != nil {
		return SaveResult{}, err
	}
	sp.Phase("hash")

	full := req.Base == ""
	depth := 0
	if !full {
		baseMeta, err := loadMeta(u.stores, updateCollection, req.Base)
		if err != nil {
			return SaveResult{}, fmt.Errorf("core: update save: %w", err)
		}
		// A derived set must be structurally identical to its base:
		// diffs are positional (model index, parameter index), so a
		// different architecture or model count would persist a set that
		// recovers corrupt or not at all.
		if baseMeta.ArchName != req.Set.Arch.Name || baseMeta.ParamCount != req.Set.Arch.ParamCount() {
			return SaveResult{}, fmt.Errorf("core: update save: base %q is %q with %d params, set is %q with %d params: %w",
				req.Base, baseMeta.ArchName, baseMeta.ParamCount,
				req.Set.Arch.Name, req.Set.Arch.ParamCount(), ErrBaseMismatch)
		}
		if baseMeta.NumModels != len(req.Set.Models) {
			return SaveResult{}, fmt.Errorf("core: update save: base has %d models, set has %d: %w",
				baseMeta.NumModels, len(req.Set.Models), ErrBaseMismatch)
		}
		depth = baseMeta.Depth + 1
		if u.SnapshotInterval > 0 && depth >= u.SnapshotInterval {
			// Cut the recovery chain with a full snapshot.
			full = true
			depth = 0
		}
	}

	// The deprecated Compress bool acts as WithCodec("zlib") when no
	// codec was configured.
	codecID := u.codec
	if codecID == "" && u.Compress {
		codecID = codec.ZlibID
	}
	cdc, err := resolveCodec(codecID)
	if err != nil {
		return SaveResult{}, err
	}
	op := newSaveOp(u.stores, u.dedup, cdc, codecID, u.workers, u.metrics.reg)
	// The hash document is written for full and derived saves alike: it
	// is what lets the *next* save detect changes "without having to
	// load the full representation of the previous model". It must land
	// *before* the set's metadata document — the metadata doc is the
	// commit record, and a crash in between must never yield a visible
	// set whose hash info is missing.
	writeHashes := func() error {
		if err := op.insertDoc(updateHashCollection, setID, hashDoc{Models: hashes}); err != nil {
			return fmt.Errorf("core: writing hash info: %w", err)
		}
		return nil
	}
	if full {
		err = fullSave(ctx, op, updateCollection, updateBlobPrefix, u.Name(), setID, req, func(m *setMeta) {
			m.Depth = 0
		}, writeHashes, u.workers)
	} else {
		err = u.saveDerived(ctx, op, setID, req, hashes, depth, writeHashes)
	}
	if err != nil {
		op.rollback()
		return SaveResult{}, err
	}
	sp.Phase("write")
	return op.result(setID), nil
}

// Save implements Approach.
//
// Deprecated: use SaveContext.
func (u *Update) Save(req SaveRequest) (SaveResult, error) {
	return u.SaveContext(context.Background(), req)
}

// saveDerived persists only the parameters whose hashes changed
// relative to the base set. preMeta runs just before the metadata
// document — the set's commit record — is written.
func (u *Update) saveDerived(ctx context.Context, op *saveOp, setID string, req SaveRequest, hashes [][]string, depth int, preMeta func() error) error {
	var baseHashes hashDoc
	if err := u.stores.Docs.Get(updateHashCollection, req.Base, &baseHashes); err != nil {
		return fmt.Errorf("core: loading base hash info: %w", err)
	}
	if len(baseHashes.Models) != len(req.Set.Models) {
		return fmt.Errorf("core: base hash info covers %d models, set has %d",
			len(baseHashes.Models), len(req.Set.Models))
	}

	var entries []diffEntry
	changedPerModel := map[int][]int{}
	for m := range req.Set.Models {
		changed := hashing.DiffKeys(baseHashes.Models[m], hashes[m])
		if u.ModelGranularity && len(changed) > 0 {
			// Any change saves the whole model (the ablated variant).
			changed = changed[:0]
			for p := range hashes[m] {
				changed = append(changed, p)
			}
		}
		if len(changed) > 0 {
			changedPerModel[m] = changed
		}
		for _, p := range changed {
			entries = append(entries, diffEntry{M: m, P: p})
		}
	}

	// Delta encoding needs the changed models' base values to XOR
	// against; selective recovery fetches exactly those.
	var basePartial *PartialRecovery
	if u.DeltaEncoding && len(changedPerModel) > 0 {
		var changedModels []int
		for m := range changedPerModel {
			changedModels = append(changedModels, m)
		}
		var err error
		// The private entry point skips the partial-recovery metrics: this
		// read is part of the save, not a user-facing recovery.
		basePartial, err = u.recoverModels(ctx, req.Base, changedModels, map[string]bool{}, newRecoverSettings(nil))
		if err != nil {
			return fmt.Errorf("core: reading base values for delta encoding: %w", err)
		}
	}

	// Every entry's bytes land at a precomputed offset, so workers fill
	// disjoint regions of one blob and the layout matches the serial
	// entry-order concatenation exactly.
	offs := make([]int, len(entries)+1)
	for k, e := range entries {
		offs[k+1] = offs[k] + 4*req.Set.Models[e.M].Params()[e.P].Tensor.Len()
	}
	blob := make([]byte, offs[len(entries)])
	err := pool.Run(ctx, u.workers, len(entries), func(k int) error {
		e := entries[k]
		dst := blob[offs[k]:offs[k]:offs[k+1]]
		cur := req.Set.Models[e.M].Params()[e.P].Tensor
		if basePartial != nil {
			base := basePartial.Models[e.M].Params()[e.P].Tensor
			dst = tensor.AppendXORBytes(dst, cur, base)
		} else {
			dst = cur.AppendBytes(dst)
		}
		if len(dst) != offs[k+1]-offs[k] {
			return fmt.Errorf("core: diff entry (%d,%d) serialized to %d bytes, want %d",
				e.M, e.P, len(dst), offs[k+1]-offs[k])
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Encode the diff blob with the configured codec, keeping the
	// encoded form only when it actually shrinks. Under dedup the blob
	// deliberately stays raw at this level: the per-entry boundary
	// hints keep chunk-level deduplication effective, and the CAS layer
	// compresses each chunk body with the same codec on its own.
	encodedWith := ""
	if op.codec != nil && !op.dedup && len(blob) > 0 {
		start := time.Now()
		enc, err := op.codec.Encode(nil, blob)
		if err != nil {
			return fmt.Errorf("core: encoding diff blob: %w", err)
		}
		kept := len(blob)
		if len(enc) < len(blob) {
			blob = enc
			encodedWith = op.codec.ID()
			kept = len(enc)
		}
		codec.ObserveEncode(op.reg, op.codec.ID(), offs[len(entries)], kept, time.Since(start))
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	u.metrics.diffStats(len(entries), len(blob))
	// Chunk the diff blob at its per-entry offsets so a tensor diff
	// repeated across derived sets dedups cleanly. Encoded blobs lose
	// that alignment and chunk as one unit.
	var hints cas.Hints
	if encodedWith == "" {
		hints.Boundaries = offs
	}
	if err := op.putBlobHinted(updateBlobPrefix+"/"+setID+"/diff.bin", blob, hints); err != nil {
		return fmt.Errorf("core: writing diff blob: %w", err)
	}
	doc := diffDoc{
		Entries: entries, Delta: basePartial != nil,
		Codec: encodedWith,
		// Old readers only know the zlib bool; keep it in sync so they
		// can still open stores written by codec-aware binaries.
		Compressed: encodedWith == codec.ZlibID,
	}
	if err := op.insertDoc(updateDiffCollection, setID, doc); err != nil {
		return fmt.Errorf("core: writing diff list: %w", err)
	}
	if preMeta != nil {
		if err := preMeta(); err != nil {
			return err
		}
	}
	meta := setMeta{
		SetID: setID, Approach: u.Name(), Kind: "derived",
		Base: req.Base, Depth: depth,
		ArchName: req.Set.Arch.Name, NumModels: len(req.Set.Models),
		ParamCount: req.Set.Arch.ParamCount(), Codec: op.codecID,
	}
	if err := op.insertDoc(updateCollection, setID, meta); err != nil {
		return fmt.Errorf("core: writing metadata: %w", err)
	}
	return nil
}

// RecoverContext implements Approach. Derived sets recover recursively:
// "to recover a given model set saved in iteration i of U3, we have to
// recover the model saved in the previous iteration to apply the saved
// differences in parameters".
func (u *Update) RecoverContext(ctx context.Context, setID string) (*ModelSet, error) {
	sp := u.metrics.begin("recover", setID)
	visited := map[string]bool{}
	set, err := u.recover(ctx, setID, visited)
	u.metrics.endRecover(sp, len(visited)-1, err)
	return set, err
}

// checkChain guards the recursive recovery walk: every visited set ID
// is recorded, and a revisit fails instead of recursing forever. A
// revisit also subsumes any depth bound — set IDs are unique, so a
// chain longer than the number of sets must repeat one. Corrupt
// metadata is the only way to produce a cycle, hence ErrCorruptBlob.
func checkChain(visited map[string]bool, setID string) error {
	if visited[setID] {
		return fmt.Errorf("core: base chain revisits set %q — metadata cycle: %w", setID, ErrCorruptBlob)
	}
	visited[setID] = true
	return nil
}

func (u *Update) recover(ctx context.Context, setID string, visited map[string]bool) (*ModelSet, error) {
	if err := checkChain(visited, setID); err != nil {
		return nil, err
	}
	meta, err := loadMeta(u.stores, updateCollection, setID)
	if err != nil {
		return nil, err
	}
	if meta.Approach != u.Name() {
		return nil, fmt.Errorf("core: set %q was saved by %s, not Update", setID, meta.Approach)
	}
	if meta.Kind == "full" {
		return fullRecover(ctx, u.stores, updateBlobPrefix, meta, u.workers)
	}

	set, err := u.recover(ctx, meta.Base, visited)
	if err != nil {
		return nil, fmt.Errorf("core: recovering base of %q: %w", setID, err)
	}

	var diff diffDoc
	if err := u.stores.Docs.Get(updateDiffCollection, setID, &diff); err != nil {
		return nil, fmt.Errorf("core: loading diff list: %w", err)
	}
	var stored hashDoc
	if err := u.stores.Docs.Get(updateHashCollection, setID, &stored); err != nil {
		return nil, fmt.Errorf("core: loading hash info: %w", err)
	}

	// Validate the diff list and precompute every entry's blob offset
	// *before* touching the blob: the final offset is the exact
	// decompressed size a compressed blob must inflate to, which bounds
	// decompression below. Entries then apply independently (each
	// touches one tensor).
	offs := make([]int, len(diff.Entries)+1)
	seen := make(map[diffEntry]bool, len(diff.Entries))
	for k, e := range diff.Entries {
		if e.M < 0 || e.M >= len(set.Models) {
			return nil, fmt.Errorf("core: diff references model %d outside set of %d", e.M, len(set.Models))
		}
		params := set.Models[e.M].Params()
		if e.P < 0 || e.P >= len(params) {
			return nil, fmt.Errorf("core: diff references parameter %d of model %d", e.P, e.M)
		}
		if seen[e] {
			return nil, fmt.Errorf("core: duplicate diff entry (%d,%d): %w", e.M, e.P, ErrCorruptBlob)
		}
		seen[e] = true
		offs[k+1] = offs[k] + 4*params[e.P].Tensor.Len()
	}
	want := offs[len(diff.Entries)]

	blob, err := getBlob(u.stores, updateBlobPrefix+"/"+setID+"/diff.bin")
	if err != nil {
		return nil, fmt.Errorf("core: loading diff blob: %w", err)
	}
	if id := diffCodecID(diff); id != "" {
		if blob, err = decodeDiffBlob(u.metrics.reg, blob, want, id); err != nil {
			return nil, err
		}
	}
	if len(blob) != want {
		return nil, fmt.Errorf("core: diff blob has %d bytes, diff list implies %d: %w",
			len(blob), want, ErrCorruptBlob)
	}

	err = pool.Run(ctx, u.workers, len(diff.Entries), func(k int) error {
		e := diff.Entries[k]
		t := set.Models[e.M].Params()[e.P].Tensor
		segment := blob[offs[k]:offs[k+1]]
		var err error
		if diff.Delta {
			// The tensor currently holds the base value; XOR restores
			// the target value.
			_, err = t.XORFromBytes(segment)
		} else {
			_, err = t.SetFromBytes(segment)
		}
		if err != nil {
			return fmt.Errorf("core: applying diff for model %d param %d: %w", e.M, e.P, err)
		}
		// Integrity check: the applied layer must hash to what the save
		// recorded for this set. A hash document that does not cover the
		// entry would silently disable the check, so it is corruption.
		if e.M >= len(stored.Models) || e.P >= len(stored.Models[e.M]) {
			return fmt.Errorf("core: hash info does not cover model %d param %d: %w", e.M, e.P, ErrCorruptBlob)
		}
		if got := hashing.Tensor(t); got != stored.Models[e.M][e.P] {
			return fmt.Errorf("core: model %d param %d hash mismatch after applying diff: %w", e.M, e.P, ErrCorruptBlob)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// decodeDiffBlob decodes an encoded diff blob known to hold exactly
// want bytes. Every codec's Decode enforces the exact-size bound (the
// decompression-bomb guard), so any deviation — including an
// unregistered codec ID — is corruption.
func decodeDiffBlob(reg *obs.Registry, blob []byte, want int, id string) ([]byte, error) {
	c, err := codec.Lookup(id)
	if err != nil {
		return nil, fmt.Errorf("core: diff blob names codec %q this build does not know: %v: %w", id, err, ErrCorruptBlob)
	}
	start := time.Now()
	out, err := c.Decode(blob, want)
	if err != nil {
		return nil, fmt.Errorf("core: decoding diff blob (%s): %v: %w", id, err, ErrCorruptBlob)
	}
	codec.ObserveDecode(reg, id, time.Since(start))
	return out, nil
}

// Recover implements Approach.
//
// Deprecated: use RecoverContext.
func (u *Update) Recover(setID string) (*ModelSet, error) {
	return u.RecoverContext(context.Background(), setID)
}

// SetIDs lists all sets saved by this approach, in save order.
func (u *Update) SetIDs() ([]string, error) {
	return u.stores.Docs.IDs(updateCollection)
}

// ChainDepth returns how many derived sets must be recovered before
// setID (0 for full snapshots) — the quantity SnapshotInterval bounds.
func (u *Update) ChainDepth(setID string) (int, error) {
	meta, err := loadMeta(u.stores, updateCollection, setID)
	if err != nil {
		return 0, err
	}
	return meta.Depth, nil
}

// setHashes hashes every model's layers. Hashing is the save path's
// compute-heavy step and parallelizes per model.
func setHashes(ctx context.Context, set *ModelSet, workers int) ([][]string, error) {
	out := make([][]string, len(set.Models))
	err := pool.Run(ctx, workers, len(set.Models), func(i int) error {
		out[i] = hashing.ModelList(set.Models[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
