package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestKnownValues(t *testing.T) {
	// Pin the algorithm: these are the first SplitMix64 outputs for seed 0,
	// cross-checked against the reference implementation. If these change,
	// provenance recovery of previously saved models breaks.
	r := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Errorf("draw %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(99)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(5)
	s := r.Sample(50, 10)
	if len(s) != 10 {
		t.Fatalf("Sample returned %d elements, want 10", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 50 {
			t.Fatalf("sample value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample value %d", v)
		}
		seen[v] = true
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestDeriveIsOrderIndependent(t *testing.T) {
	a := New(42)
	b := New(42)
	// Deriving in different orders must give the same per-label streams.
	a1 := a.Derive("init")
	a2 := a.Derive("noise")
	b2 := b.Derive("noise")
	b1 := b.Derive("init")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != b1.Uint64() {
			t.Fatal("Derive(init) depends on call order")
		}
		if a2.Uint64() != b2.Uint64() {
			t.Fatal("Derive(noise) depends on call order")
		}
	}
}

func TestDeriveLabelsIndependent(t *testing.T) {
	r := New(42)
	a := r.Derive("model-1")
	b := r.Derive("model-2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("labels produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(8)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams produced %d identical draws out of 100", same)
	}
}

func TestStateRestore(t *testing.T) {
	r := New(123)
	r.Uint64()
	s := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r.Restore(s)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("after Restore, draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(n); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
