// Package rng provides a small, fully deterministic random number
// generator used throughout the library.
//
// Determinism is a functional requirement, not a convenience: the
// Provenance approach recovers models by re-executing their training,
// and recovery is only correct if every random decision (weight
// initialization, data shuffling, noise injection) is bit-for-bit
// reproducible from a recorded seed. The standard library's math/rand
// does not guarantee a stable algorithm across Go releases, so we pin
// our own.
//
// The generator is SplitMix64 (Steele, Lea, Flood 2014): tiny state,
// excellent statistical quality for non-cryptographic use, and trivially
// splittable, which lets us derive independent, reproducible streams for
// separate purposes (e.g. "init of model 17, layer 2" vs "noise of
// cycle 3") from a single recorded root seed.
package rng

import "math"

// RNG is a deterministic SplitMix64 random number generator.
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// golden gamma used by SplitMix64 to advance the state.
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a new, statistically independent generator from r.
// The derived stream is a pure function of r's current state, so a
// fixed sequence of Split/Uint64 calls is fully reproducible.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Derive returns an independent generator for a named purpose.
// Unlike Split, Derive does not advance r: it mixes the label into a
// copy of the current state, so the same (state, label) pair always
// yields the same stream regardless of call order between labels.
func (r *RNG) Derive(label string) *RNG {
	h := r.state
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3 // FNV-1a prime
	}
	// One SplitMix64 finalization round to decorrelate similar labels.
	h += golden
	z := h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform. Box-Muller is
// chosen over ziggurat for its simplicity and bit-stable behaviour.
func (r *RNG) NormFloat64() float64 {
	// Draw u1 in (0, 1] to keep the log argument positive.
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a deterministic pseudo-random permutation of [0, n)
// produced by a Fisher-Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample requires 0 <= k <= n")
	}
	p := r.Perm(n)
	return p[:k]
}

// State returns the current internal state, allowing a stream position
// to be recorded and later resumed with Restore.
func (r *RNG) State() uint64 { return r.state }

// Restore sets the internal state previously obtained from State.
func (r *RNG) Restore(state uint64) { r.state = state }
