package codec

import (
	"time"

	"github.com/mmm-go/mmm/internal/obs"
)

// Compression metric names exposed on /metrics. Every series carries a
// "codec" label so mixed-codec stores stay distinguishable.
const (
	// MetricEncodeSeconds observes wall-clock time spent encoding.
	MetricEncodeSeconds = "mmm_codec_encode_seconds"
	// MetricDecodeSeconds observes wall-clock time spent decoding.
	MetricDecodeSeconds = "mmm_codec_decode_seconds"
	// MetricLogicalBytesTotal counts logical (uncompressed) bytes fed
	// through Encode.
	MetricLogicalBytesTotal = "mmm_codec_logical_bytes_total"
	// MetricEncodedBytesTotal counts encoded bytes produced, as kept:
	// when keep-if-smaller logic stores the raw bytes instead, the raw
	// size is counted, so the ratio of the two counters is the real
	// on-disk compression ratio.
	MetricEncodedBytesTotal = "mmm_codec_encoded_bytes_total"
	// MetricRatio observes per-blob encoded/logical size ratios.
	MetricRatio = "mmm_codec_ratio"
)

// Registry resolves a caller-supplied metrics registry, describing the
// codec families on first use (mirrors the cas package's idiom).
func Registry(reg *obs.Registry) *obs.Registry {
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe(MetricEncodeSeconds, "Wall-clock seconds spent in codec Encode.")
	reg.Describe(MetricDecodeSeconds, "Wall-clock seconds spent in codec Decode.")
	reg.Describe(MetricLogicalBytesTotal, "Logical bytes fed through codec Encode.")
	reg.Describe(MetricEncodedBytesTotal, "Bytes kept after codec Encode (raw size when encoding did not shrink).")
	reg.Describe(MetricRatio, "Per-blob encoded/logical size ratio.")
	return reg
}

// ObserveEncode records one encode: logical input bytes, the bytes
// actually kept (encoded or raw, whichever the keep-if-smaller rule
// chose), and the wall-clock duration.
func ObserveEncode(reg *obs.Registry, id string, logical, kept int, d time.Duration) {
	reg = Registry(reg)
	l := obs.L("codec", id)
	reg.Histogram(MetricEncodeSeconds, obs.TimeBuckets, l).Observe(d.Seconds())
	reg.Counter(MetricLogicalBytesTotal, l).Add(int64(logical))
	reg.Counter(MetricEncodedBytesTotal, l).Add(int64(kept))
	if logical > 0 {
		reg.Histogram(MetricRatio, obs.RatioBuckets, l).Observe(float64(kept) / float64(logical))
	}
}

// ObserveDecode records one decode and its wall-clock duration.
func ObserveDecode(reg *obs.Registry, id string, d time.Duration) {
	reg = Registry(reg)
	reg.Histogram(MetricDecodeSeconds, obs.TimeBuckets, obs.L("codec", id)).Observe(d.Seconds())
}
