package codec

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzShuffle fuzzes the tensor pre-transform: planeUnshuffle must
// invert planeShuffle for every input, including lengths that are not
// multiples of the float32 plane width.
func FuzzShuffle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 255})
	f.Add(bytes.Repeat([]byte{0x3f, 0x80, 0, 0}, 64))
	f.Fuzz(func(t *testing.T, src []byte) {
		shuffled := planeShuffle(src)
		if len(shuffled) != len(src) {
			t.Fatalf("shuffle changed length: %d -> %d", len(src), len(shuffled))
		}
		got := planeUnshuffle(shuffled)
		if !bytes.Equal(got, src) {
			t.Fatalf("unshuffle(shuffle(x)) != x for %d bytes", len(src))
		}
	})
}

// FuzzTLZRoundTrip fuzzes the whole codec: every input must encode,
// decode back bit-identically under the exact-size contract, and do so
// deterministically.
func FuzzTLZRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("abcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 1000))
	f.Fuzz(func(t *testing.T, src []byte) {
		c, err := Lookup(TLZID)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := c.Encode(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decode(enc, len(src))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("round trip diverged for %d bytes", len(src))
		}
	})
}

// FuzzTLZDecode fuzzes the decoder against adversarial streams: it
// must either succeed with exactly the declared size or fail wrapping
// ErrCorrupt — never panic, never over-allocate past the bound.
func FuzzTLZDecode(f *testing.F) {
	f.Add([]byte{}, 10)
	f.Add([]byte{0x80, 0, 0}, 100)
	f.Add([]byte{0x00, 42}, 1)
	f.Fuzz(func(t *testing.T, src []byte, size int) {
		if size < 0 || size > 1<<20 {
			return
		}
		c, err := Lookup(TLZID)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decode(src, size)
		if err == nil && len(dec) != size {
			t.Fatalf("decode returned %d bytes without error, want %d", len(dec), size)
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
		}
	})
}
