package codec

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
)

// zlibCodec wraps the stdlib DEFLATE path the Update approach has
// always used for diff blobs. Decode preserves the decompression-bomb
// guard from that original path: the stream is read through a limit of
// size+1 bytes, so a blob that inflates past the promised size is cut
// off and reported as corrupt instead of ballooning in memory.
type zlibCodec struct{}

func (zlibCodec) ID() string { return ZlibID }
func (zlibCodec) Wire() byte { return zlibWire }

func (zlibCodec) Encode(dst, src []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 64)
	zw := zlib.NewWriter(&buf)
	if _, err := zw.Write(src); err != nil {
		return nil, fmt.Errorf("codec: zlib encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("codec: zlib encode: %w", err)
	}
	return append(dst, buf.Bytes()...), nil
}

func (zlibCodec) Decode(src []byte, size int) ([]byte, error) {
	zr, err := zlib.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, fmt.Errorf("%w: zlib header: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	// Read at most one byte past the promised size: a well-formed blob
	// stops exactly at size, anything longer is a bomb or corruption.
	out, err := io.ReadAll(io.LimitReader(zr, int64(size)+1))
	if err != nil {
		return nil, fmt.Errorf("%w: zlib stream: %v", ErrCorrupt, err)
	}
	if len(out) != size {
		return nil, fmt.Errorf("%w: zlib payload decodes to %d bytes, want %d", ErrCorrupt, len(out), size)
	}
	return out, nil
}
