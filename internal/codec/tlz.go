package codec

import (
	"encoding/binary"
	"fmt"
)

// tlzCodec ("tensor LZ") is a fast pure-Go LZ-class codec tuned for
// the float32 payloads the approaches persist: raw parameter bytes and
// XOR diff blobs.
//
// Encoding runs in two stages:
//
//  1. A byte-plane-shuffle/XOR-delta pre-transform. The payload is
//     viewed as little-endian 4-byte words and regrouped into four
//     planes — all byte-0s, then all byte-1s, byte-2s, byte-3s — and
//     within each plane every byte is XORed with its predecessor.
//     Related float32 values share sign, exponent, and high mantissa
//     bits, so the high planes collapse into long runs of (mostly
//     zero) highly repetitive bytes, exactly what an LZ stage eats.
//     (This composes with the Update approach's XOR-vs-base delta
//     encoding, which removes cross-version redundancy before the
//     codec ever sees the bytes.)
//
//  2. A greedy LZ77 over the transformed bytes with a 64 KiB window,
//     chosen to cover a whole default CAS chunk. The format is a flat
//     op stream: a control byte below 0x80 introduces a literal run
//     of control+1 bytes; a control byte >= 0x80 encodes a match of
//     length (control&0x7f)+4 at a 2-byte little-endian distance-1.
//
// Decode reverses both stages into exactly the promised size; any
// deviation — truncated ops, out-of-window matches, output overrun or
// underrun — reports ErrCorrupt.
type tlzCodec struct{}

func (tlzCodec) ID() string { return TLZID }
func (tlzCodec) Wire() byte { return tlzWire }

const (
	tlzMinMatch = 4
	tlzMaxMatch = tlzMinMatch + 0x7f // 131
	tlzMaxLit   = 0x80               // 128
	tlzWindow   = 1 << 16
	tlzHashBits = 15
)

func (tlzCodec) Encode(dst, src []byte) ([]byte, error) {
	return lzEncode(dst, planeShuffle(src)), nil
}

func (tlzCodec) Decode(src []byte, size int) ([]byte, error) {
	shuffled, err := lzDecode(src, size)
	if err != nil {
		return nil, err
	}
	return planeUnshuffle(shuffled), nil
}

// planeShuffle applies the byte-plane-shuffle/XOR-delta pre-transform.
// The output has the same length as src; the tail (len(src) % 4 bytes)
// is copied verbatim after the four planes.
func planeShuffle(src []byte) []byte {
	n4 := len(src) / 4
	out := make([]byte, len(src))
	for p := 0; p < 4; p++ {
		plane := out[p*n4 : (p+1)*n4]
		prev := byte(0)
		for w := 0; w < n4; w++ {
			b := src[4*w+p]
			plane[w] = b ^ prev
			prev = b
		}
	}
	copy(out[4*n4:], src[4*n4:])
	return out
}

// planeUnshuffle inverts planeShuffle exactly for any input length.
func planeUnshuffle(src []byte) []byte {
	n4 := len(src) / 4
	out := make([]byte, len(src))
	for p := 0; p < 4; p++ {
		plane := src[p*n4 : (p+1)*n4]
		prev := byte(0)
		for w := 0; w < n4; w++ {
			b := plane[w] ^ prev
			out[4*w+p] = b
			prev = b
		}
	}
	copy(out[4*n4:], src[4*n4:])
	return out
}

func tlzHash(x uint32) uint32 {
	return (x * 2654435761) >> (32 - tlzHashBits)
}

// lzEncode appends the greedy LZ77 encoding of src to dst. The hash
// table stores position+1 so the zero value means "empty" and the
// table needs no initialization pass. Identical input always produces
// identical output: CAS chunk bodies written concurrently by
// different savers must be byte-for-byte interchangeable.
func lzEncode(dst, src []byte) []byte {
	var table [1 << tlzHashBits]int32
	anchor := 0
	i := 0
	limit := len(src) - tlzMinMatch
	for i <= limit {
		x := binary.LittleEndian.Uint32(src[i:])
		h := tlzHash(x)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand >= 0 && i-cand <= tlzWindow && binary.LittleEndian.Uint32(src[cand:]) == x {
			mlen := tlzMinMatch
			for i+mlen < len(src) && mlen < tlzMaxMatch && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			dst = emitLiterals(dst, src[anchor:i])
			off := i - cand
			dst = append(dst, 0x80|byte(mlen-tlzMinMatch), byte(off-1), byte((off-1)>>8))
			i += mlen
			anchor = i
		} else {
			// Accelerate through incompressible stretches: the longer
			// the current literal run, the bigger the step.
			i += 1 + (i-anchor)>>6
		}
	}
	return emitLiterals(dst, src[anchor:])
}

func emitLiterals(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		if n > tlzMaxLit {
			n = tlzMaxLit
		}
		dst = append(dst, byte(n-1))
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

// lzDecode decodes an lzEncode stream into exactly size bytes.
func lzDecode(src []byte, size int) ([]byte, error) {
	out := make([]byte, 0, size)
	i := 0
	for i < len(src) {
		c := src[i]
		i++
		if c < 0x80 {
			n := int(c) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("%w: tlz literal run past end of input", ErrCorrupt)
			}
			if len(out)+n > size {
				return nil, fmt.Errorf("%w: tlz output exceeds %d bytes", ErrCorrupt, size)
			}
			out = append(out, src[i:i+n]...)
			i += n
			continue
		}
		if i+2 > len(src) {
			return nil, fmt.Errorf("%w: tlz match op truncated", ErrCorrupt)
		}
		mlen := int(c&0x7f) + tlzMinMatch
		off := 1 + (int(src[i]) | int(src[i+1])<<8)
		i += 2
		if off > len(out) {
			return nil, fmt.Errorf("%w: tlz match distance %d exceeds output %d", ErrCorrupt, off, len(out))
		}
		if len(out)+mlen > size {
			return nil, fmt.Errorf("%w: tlz output exceeds %d bytes", ErrCorrupt, size)
		}
		pos := len(out) - off
		// Byte-by-byte copy: matches may overlap their own output.
		for k := 0; k < mlen; k++ {
			out = append(out, out[pos+k])
		}
	}
	if len(out) != size {
		return nil, fmt.Errorf("%w: tlz payload decodes to %d bytes, want %d", ErrCorrupt, len(out), size)
	}
	return out, nil
}
