// Package codec is the pluggable compression layer behind every blob
// the approaches persist. A Codec turns logical bytes into a (usually
// smaller) encoded form and back; the package keeps a process-global
// registry so that stores can name the codec that wrote a blob and any
// later reader — including one that never configured a codec — can
// decode it.
//
// Two identifiers matter on disk:
//
//   - the string ID ("none", "zlib", "tlz") persisted in diff-doc and
//     CAS-recipe metadata, and
//   - the one-byte wire ID that prefixes an encoded CAS chunk body so
//     chunks are self-describing in mixed-codec stores.
//
// Both are append-only contracts: an ID, once shipped, keeps its
// meaning forever, which is what keeps every old store readable.
//
// Decode takes the exact decoded size as a bound and fails on any
// deviation — the decompression-bomb guard is part of the interface
// contract, not an implementation courtesy.
package codec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Codec encodes and decodes blob payloads. Implementations must be
// safe for concurrent use and deterministic: identical input bytes
// must always produce identical encoded bytes, because CAS chunk
// bodies written concurrently by different savers must be
// byte-for-byte interchangeable.
type Codec interface {
	// ID is the stable string identifier persisted in store metadata.
	ID() string
	// Wire is the stable one-byte identifier that prefixes encoded
	// CAS chunk bodies.
	Wire() byte
	// Encode appends the encoded form of src to dst and returns the
	// extended slice.
	Encode(dst, src []byte) ([]byte, error)
	// Decode decodes src, which must decode to exactly size bytes.
	// Any deviation — short output, trailing garbage, or encoded
	// streams that would expand past size — returns an error wrapping
	// ErrCorrupt.
	Decode(src []byte, size int) ([]byte, error)
}

// ErrCorrupt is wrapped by Decode errors when the encoded payload is
// damaged or does not decode to the promised size.
var ErrCorrupt = errors.New("codec: corrupt encoded data")

// ErrUnknown is wrapped by Lookup/ByWire errors when no registered
// codec matches the requested identifier. Readers treat it like
// corruption: a blob naming a codec this binary does not know cannot
// be decoded.
var ErrUnknown = errors.New("codec: unknown codec")

// Stable identifiers of the built-in codecs.
const (
	NoneID = "none"
	ZlibID = "zlib"
	TLZID  = "tlz"
)

// Wire bytes of the built-in codecs. These prefix encoded CAS chunk
// bodies and must never be reassigned.
const (
	noneWire byte = 0
	zlibWire byte = 1
	tlzWire  byte = 2
)

var (
	regMu   sync.RWMutex
	byID    = map[string]Codec{}
	byWire  = map[byte]Codec{}
	idOrder []string
)

// Register adds c to the process-global registry. Both the string ID
// and the wire byte must be unused; registering a duplicate returns an
// error so tests can assert collisions instead of silently shadowing a
// codec that old stores depend on.
func Register(c Codec) error {
	regMu.Lock()
	defer regMu.Unlock()
	if c == nil {
		return errors.New("codec: Register(nil)")
	}
	id := c.ID()
	if id == "" {
		return errors.New("codec: Register with empty ID")
	}
	if _, ok := byID[id]; ok {
		return fmt.Errorf("codec: codec %q already registered", id)
	}
	if prev, ok := byWire[c.Wire()]; ok {
		return fmt.Errorf("codec: wire byte %d already used by %q", c.Wire(), prev.ID())
	}
	byID[id] = c
	byWire[c.Wire()] = c
	idOrder = append(idOrder, id)
	return nil
}

// mustRegister is Register for the built-ins, which cannot collide.
func mustRegister(c Codec) {
	if err := Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the codec registered under the string id.
func Lookup(id string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, id)
	}
	return c, nil
}

// ByWire returns the codec registered under the one-byte wire id.
func ByWire(b byte) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byWire[b]
	if !ok {
		return nil, fmt.Errorf("%w: wire byte %d", ErrUnknown, b)
	}
	return c, nil
}

// IDs returns the registered codec IDs in sorted order.
func IDs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(idOrder))
	copy(out, idOrder)
	sort.Strings(out)
	return out
}

func init() {
	mustRegister(noneCodec{})
	mustRegister(zlibCodec{})
	mustRegister(tlzCodec{})
}

// noneCodec is the identity codec: blobs are stored raw. It exists so
// "no compression" is an explicit, nameable choice that round-trips
// through metadata like any other codec.
type noneCodec struct{}

func (noneCodec) ID() string { return NoneID }
func (noneCodec) Wire() byte { return noneWire }

func (noneCodec) Encode(dst, src []byte) ([]byte, error) {
	return append(dst, src...), nil
}

func (noneCodec) Decode(src []byte, size int) ([]byte, error) {
	if len(src) != size {
		return nil, fmt.Errorf("%w: none codec payload is %d bytes, want %d", ErrCorrupt, len(src), size)
	}
	out := make([]byte, size)
	copy(out, src)
	return out, nil
}
