package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// testInputs covers the shapes that matter: empty, sub-plane tails,
// exact plane multiples, incompressible noise, runs, and realistic
// float32 tensor bytes (smoothly varying values whose high bytes
// repeat — what the tlz pre-transform exists for).
func testInputs(t *testing.T) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	noise := make([]byte, 64*1024+5)
	rng.Read(noise)
	zeros := make([]byte, 9000)
	ramp := make([]byte, 999)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	floats := make([]byte, 0, 4*10000)
	for i := 0; i < 10000; i++ {
		v := float32(math.Sin(float64(i)/300)) * 0.05
		floats = binary.LittleEndian.AppendUint32(floats, math.Float32bits(v))
	}
	return map[string][]byte{
		"empty":  nil,
		"one":    {42},
		"three":  {1, 2, 3},
		"noise":  noise,
		"zeros":  zeros,
		"ramp":   ramp,
		"floats": floats,
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, id := range IDs() {
		c, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		for name, src := range testInputs(t) {
			enc, err := c.Encode(nil, src)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", id, name, err)
			}
			dec, err := c.Decode(enc, len(src))
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", id, name, err)
			}
			if !bytes.Equal(dec, src) {
				t.Fatalf("%s/%s: round trip diverged (%d in, %d out)", id, name, len(src), len(dec))
			}
		}
	}
}

// TestEncodeAppends pins the append contract: dst's existing bytes
// stay untouched in front of the encoded output.
func TestEncodeAppends(t *testing.T) {
	src := []byte("hello hello hello hello")
	for _, id := range IDs() {
		c, _ := Lookup(id)
		prefix := []byte{0xAA, 0xBB}
		enc, err := c.Encode(append([]byte{}, prefix...), src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc[:2], prefix) {
			t.Fatalf("%s: encode clobbered dst prefix", id)
		}
		dec, err := c.Decode(enc[2:], len(src))
		if err != nil {
			t.Fatalf("%s: decode after prefix strip: %v", id, err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("%s: round trip with prefix diverged", id)
		}
	}
}

// TestDecodeWrongSize pins the exact-size bound: an honest encoding
// declared with the wrong logical size must fail with ErrCorrupt, both
// ways (bomb guard and truncation guard).
func TestDecodeWrongSize(t *testing.T) {
	src := bytes.Repeat([]byte("abcd1234"), 500)
	for _, id := range IDs() {
		c, _ := Lookup(id)
		enc, err := c.Encode(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, wrong := range []int{len(src) - 1, len(src) + 1, 0} {
			if _, err := c.Decode(enc, wrong); !errors.Is(err, ErrCorrupt) {
				t.Errorf("%s: decode with size %d (real %d): err = %v, want ErrCorrupt",
					id, wrong, len(src), err)
			}
		}
	}
}

// TestDecodeGarbage feeds non-encodings to every codec: anything but
// success-with-exact-size must be ErrCorrupt, never a panic.
func TestDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, id := range IDs() {
		c, _ := Lookup(id)
		for trial := 0; trial < 200; trial++ {
			garbage := make([]byte, rng.Intn(300))
			rng.Read(garbage)
			dec, err := c.Decode(garbage, 1000)
			if err == nil && len(dec) != 1000 {
				t.Fatalf("%s: garbage decoded to %d bytes without error", id, len(dec))
			}
			if err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: garbage decode error %v does not wrap ErrCorrupt", id, err)
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	for id, wire := range map[string]byte{NoneID: 0, ZlibID: 1, TLZID: 2} {
		c, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if c.ID() != id || c.Wire() != wire {
			t.Errorf("codec %s: ID=%q Wire=%d, want %q/%d", id, c.ID(), c.Wire(), id, wire)
		}
		byWire, err := ByWire(wire)
		if err != nil {
			t.Fatal(err)
		}
		if byWire != c {
			t.Errorf("ByWire(%d) != Lookup(%s)", wire, id)
		}
	}
	if _, err := Lookup("no-such-codec"); !errors.Is(err, ErrUnknown) {
		t.Errorf("Lookup(unknown): err = %v, want ErrUnknown", err)
	}
	if _, err := ByWire(200); !errors.Is(err, ErrUnknown) {
		t.Errorf("ByWire(unknown): err = %v, want ErrUnknown", err)
	}
}

// collidingCodec registers under arbitrary identifiers for collision
// tests.
type collidingCodec struct {
	id   string
	wire byte
}

func (c collidingCodec) ID() string                             { return c.id }
func (c collidingCodec) Wire() byte                             { return c.wire }
func (c collidingCodec) Encode(dst, src []byte) ([]byte, error) { return append(dst, src...), nil }
func (c collidingCodec) Decode(src []byte, size int) ([]byte, error) {
	return append([]byte(nil), src...), nil
}

func TestRegisterRejectsCollisions(t *testing.T) {
	if err := Register(collidingCodec{id: ZlibID, wire: 77}); err == nil {
		t.Error("Register accepted a duplicate string ID")
	}
	if err := Register(collidingCodec{id: "fresh-id", wire: 1}); err == nil {
		t.Error("Register accepted a duplicate wire ID")
	}
	if err := Register(collidingCodec{id: "", wire: 78}); err == nil {
		t.Error("Register accepted an empty string ID")
	}
	if err := Register(nil); err == nil {
		t.Error("Register accepted a nil codec")
	}
}

// TestTLZDeterministic pins encode determinism — chunk
// interchangeability across stores depends on identical bytes for
// identical input.
func TestTLZDeterministic(t *testing.T) {
	c, _ := Lookup(TLZID)
	for name, src := range testInputs(t) {
		a, err := c.Encode(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Encode(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two encodes of the same input differ", name)
		}
	}
}

// TestTLZBeatsRawOnTensors sanity-checks the codec's purpose: smooth
// float32 tensor data must shrink.
func TestTLZBeatsRawOnTensors(t *testing.T) {
	src := testInputs(t)["floats"]
	c, _ := Lookup(TLZID)
	enc, err := c.Encode(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(src) {
		t.Fatalf("tlz did not compress smooth tensor bytes: %d -> %d", len(src), len(enc))
	}
}

func TestShuffleUnshuffleIdentity(t *testing.T) {
	for name, src := range testInputs(t) {
		got := planeUnshuffle(planeShuffle(src))
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: unshuffle(shuffle(x)) != x", name)
		}
	}
}
