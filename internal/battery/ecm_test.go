package battery

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mmm-go/mmm/internal/rng"
)

func newTestCell(t *testing.T, soh float64) *Cell {
	t.Helper()
	c, err := NewCell(Default18650(), soh)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOCVMonotonic(t *testing.T) {
	prev := OCV(0)
	for soc := 0.01; soc <= 1.0; soc += 0.01 {
		v := OCV(soc)
		if v < prev {
			t.Fatalf("OCV not monotonic at SoC %.2f: %v < %v", soc, v, prev)
		}
		prev = v
	}
}

func TestOCVEndpoints(t *testing.T) {
	if OCV(0) != 3.00 {
		t.Errorf("OCV(0) = %v, want 3.00", OCV(0))
	}
	if OCV(1) != 4.20 {
		t.Errorf("OCV(1) = %v, want 4.20", OCV(1))
	}
	if OCV(-1) != OCV(0) || OCV(2) != OCV(1) {
		t.Error("OCV does not clamp out-of-range SoC")
	}
}

func TestNewCellValidation(t *testing.T) {
	if _, err := NewCell(Default18650(), 0); err == nil {
		t.Error("SoH 0 accepted")
	}
	if _, err := NewCell(Default18650(), 1.5); err == nil {
		t.Error("SoH > 1 accepted")
	}
	bad := Default18650()
	bad.CapacityAh = -1
	if _, err := NewCell(bad, 1); err == nil {
		t.Error("negative capacity accepted")
	}
	bad = Default18650()
	bad.C1 = 0
	if _, err := NewCell(bad, 1); err == nil {
		t.Error("zero capacitance accepted")
	}
	bad = Default18650()
	bad.ThermalR = 0
	if _, err := NewCell(bad, 1); err == nil {
		t.Error("zero thermal resistance accepted")
	}
}

func TestDischargeDropsVoltageAndSoC(t *testing.T) {
	c := newTestCell(t, 1)
	first := c.Step(2.5, 1) // 1C discharge
	var last Sample
	for k := 0; k < 600; k++ {
		last = c.Step(2.5, 1)
	}
	if !(last.SoC < first.SoC) {
		t.Errorf("SoC did not drop: %v -> %v", first.SoC, last.SoC)
	}
	if !(last.Voltage < first.Voltage) {
		t.Errorf("voltage did not drop under sustained load: %v -> %v", first.Voltage, last.Voltage)
	}
	if !(last.ChargeAh > first.ChargeAh) {
		t.Error("discharged charge did not accumulate")
	}
}

func TestVoltageWithinPhysicalBand(t *testing.T) {
	// Terminal voltage stays within OCV(SoC) ± total IR drop.
	c := newTestCell(t, 0.9)
	r := rng.New(4)
	for k := 0; k < 2000; k++ {
		i := 5 * (r.Float64()*2 - 1) // -5..5 A, charge and discharge
		s := c.Step(i, 1)
		maxDrop := math.Abs(i) * (c.effectiveR0() + c.Params.R1 + c.Params.R2)
		// RC voltages are bounded by R*i_max over history; allow the
		// full steady-state bound with a small epsilon.
		bound := maxDrop + 5*(c.Params.R1+c.Params.R2) + 1e-9
		if diff := math.Abs(s.Voltage - OCV(s.SoC)); diff > bound {
			t.Fatalf("step %d: |V - OCV| = %v exceeds bound %v", k, diff, bound)
		}
		if s.SoC < 0 || s.SoC > 1 {
			t.Fatalf("SoC out of [0,1]: %v", s.SoC)
		}
	}
}

func TestCoulombCounting(t *testing.T) {
	c := newTestCell(t, 1)
	// Discharge exactly half the capacity: 1.25 Ah at 2.5 A = 1800 s.
	for k := 0; k < 1800; k++ {
		c.Step(2.5, 1)
	}
	if got := c.State.SoC; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("SoC after half discharge = %v, want 0.5", got)
	}
	if got := c.State.AhOut; math.Abs(got-1.25) > 1e-9 {
		t.Errorf("AhOut = %v, want 1.25", got)
	}
}

func TestAgedCellSagsMore(t *testing.T) {
	// Same load, lower SoH: higher resistance, so lower terminal voltage.
	fresh := newTestCell(t, 1.0)
	aged := newTestCell(t, 0.8)
	var vFresh, vAged float64
	for k := 0; k < 60; k++ {
		vFresh = fresh.Step(2.5, 1).Voltage
		vAged = aged.Step(2.5, 1).Voltage
	}
	if !(vAged < vFresh) {
		t.Errorf("aged cell should sag more: fresh %v, aged %v", vFresh, vAged)
	}
}

func TestAgedCellDrainsFaster(t *testing.T) {
	fresh := newTestCell(t, 1.0)
	aged := newTestCell(t, 0.7)
	for k := 0; k < 1800; k++ {
		fresh.Step(2.5, 1)
		aged.Step(2.5, 1)
	}
	if !(aged.State.SoC < fresh.State.SoC) {
		t.Errorf("aged cell should drain faster: fresh SoC %v, aged SoC %v",
			fresh.State.SoC, aged.State.SoC)
	}
}

func TestHeatingUnderLoad(t *testing.T) {
	c := newTestCell(t, 1)
	for k := 0; k < 900; k++ {
		c.Step(5, 1) // 2C discharge
	}
	if !(c.State.TempC > c.Params.AmbientC) {
		t.Errorf("cell did not heat under 2C load: %v °C", c.State.TempC)
	}
	// And cools back toward ambient at rest.
	hot := c.State.TempC
	for k := 0; k < 900; k++ {
		c.Step(0, 1)
	}
	if !(c.State.TempC < hot) {
		t.Error("cell did not cool at rest")
	}
}

func TestRestRecoversVoltage(t *testing.T) {
	// After a load step, terminal voltage relaxes upward at rest
	// (RC depolarization) — the signature of the 2nd-order model.
	c := newTestCell(t, 1)
	var underLoad float64
	for k := 0; k < 300; k++ {
		underLoad = c.Step(2.5, 1).Voltage
	}
	relaxed := c.Step(0, 1).Voltage
	for k := 0; k < 300; k++ {
		relaxed = c.Step(0, 1).Voltage
	}
	if !(relaxed > underLoad) {
		t.Errorf("no relaxation: %v under load, %v at rest", underLoad, relaxed)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	profile := make([]float64, 500)
	r := rng.New(9)
	for i := range profile {
		profile[i] = 4 * r.Float64()
	}
	a := newTestCell(t, 0.95).Simulate(profile, 1)
	b := newTestCell(t, 0.95).Simulate(profile, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("simulation not deterministic at step %d", i)
		}
	}
}

func TestPerturbBounded(t *testing.T) {
	r := rng.New(2)
	base := Default18650()
	for trial := 0; trial < 100; trial++ {
		p := base.Perturb(0.05, r.Float64)
		if err := p.Validate(); err != nil {
			t.Fatalf("perturbed params invalid: %v", err)
		}
		if p.CapacityAh < base.CapacityAh*0.95 || p.CapacityAh > base.CapacityAh*1.05 {
			t.Fatalf("capacity perturbation out of ±5%%: %v", p.CapacityAh)
		}
	}
}

func TestQuickSoCBounds(t *testing.T) {
	f := func(seed uint64, steps uint16) bool {
		c, err := NewCell(Default18650(), 0.9)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for k := 0; k < int(steps%2000); k++ {
			i := 10 * (r.Float64()*2 - 1)
			s := c.Step(i, 1)
			if s.SoC < 0 || s.SoC > 1 || math.IsNaN(s.Voltage) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEmpty(t *testing.T) {
	c := newTestCell(t, 1)
	if c.Empty() {
		t.Fatal("fresh cell reported empty")
	}
	for k := 0; k < 4000 && !c.Empty(); k++ {
		c.Step(5, 1)
	}
	if !c.Empty() {
		t.Fatal("cell never emptied under sustained 2C discharge")
	}
}
