package battery

import (
	"math"
	"testing"

	"github.com/mmm-go/mmm/internal/rng"
)

func newTestPack(t *testing.T, series, parallel int, spread float64) *Pack {
	t.Helper()
	r := rng.New(42)
	p, err := NewPack(Default18650(), series, parallel, 1.0, spread, r.Float64)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPackShape(t *testing.T) {
	p := newTestPack(t, 4, 3, 0.05)
	if len(p.Strings) != 3 {
		t.Fatalf("pack has %d strings, want 3", len(p.Strings))
	}
	for k, s := range p.Strings {
		if len(s) != 4 {
			t.Fatalf("string %d has %d cells, want 4", k, len(s))
		}
	}
	if got := len(p.Cells()); got != 12 {
		t.Fatalf("Cells returned %d, want 12", got)
	}
}

func TestNewPackValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewPack(Default18650(), 0, 1, 1, 0, r.Float64); err == nil {
		t.Error("zero series accepted")
	}
	if _, err := NewPack(Default18650(), 1, 0, 1, 0, r.Float64); err == nil {
		t.Error("zero parallel accepted")
	}
	if _, err := NewPack(Default18650(), 1, 1, 0, 0, r.Float64); err == nil {
		t.Error("zero SoH accepted")
	}
}

func TestPackCellsDistinct(t *testing.T) {
	p := newTestPack(t, 2, 2, 0.05)
	cells := p.Cells()
	for i := 1; i < len(cells); i++ {
		if cells[0].Params == cells[i].Params {
			t.Fatalf("cells 0 and %d share identical parameters despite spread", i)
		}
	}
}

func TestPackCurrentConservation(t *testing.T) {
	p := newTestPack(t, 3, 4, 0.05)
	for step := 0; step < 100; step++ {
		s := p.Step(8, 1)
		var sum float64
		for _, i := range s.StringCurrents {
			sum += i
		}
		if math.Abs(sum-8) > 1e-9 {
			t.Fatalf("step %d: string currents sum to %v, want 8", step, sum)
		}
	}
}

func TestPackSeriesCellsShareCurrent(t *testing.T) {
	p := newTestPack(t, 3, 2, 0.05)
	s := p.Step(5, 1)
	for k, cellSamples := range s.CellSamples {
		for i, cs := range cellSamples {
			if math.Abs(cs.Current-s.StringCurrents[k]) > 1e-12 {
				t.Fatalf("string %d cell %d current %v, want string current %v",
					k, i, cs.Current, s.StringCurrents[k])
			}
		}
	}
}

func TestPackWeakerStringCarriesLess(t *testing.T) {
	// Build a pack, then age one string's cells: its resistance rises,
	// so it must draw less of the pack current.
	p := newTestPack(t, 2, 2, 0.0)
	for _, c := range p.Strings[0] {
		c.SoH = 0.7
	}
	s := p.Step(6, 1)
	if !(s.StringCurrents[0] < s.StringCurrents[1]) {
		t.Fatalf("aged string draws %v, healthy string %v — expected less",
			s.StringCurrents[0], s.StringCurrents[1])
	}
}

func TestPackInhomogeneityGrows(t *testing.T) {
	// The Neupert & Kowal observation: parameter spread makes SoC
	// diverge over a discharge — the reason for per-cell models.
	p := newTestPack(t, 4, 4, 0.08)
	if p.SoCSpread() != 0 {
		t.Fatalf("fresh pack has SoC spread %v, want 0", p.SoCSpread())
	}
	for step := 0; step < 1200; step++ {
		p.Step(10, 1)
	}
	if !(p.SoCSpread() > 0.005) {
		t.Fatalf("SoC spread after discharge = %v, expected visible divergence", p.SoCSpread())
	}
}

func TestPackNoSpreadStaysHomogeneous(t *testing.T) {
	p := newTestPack(t, 2, 3, 0.0)
	for step := 0; step < 600; step++ {
		p.Step(6, 1)
	}
	if got := p.SoCSpread(); got > 1e-9 {
		t.Fatalf("identical cells diverged: SoC spread %v", got)
	}
}

func TestPackVoltageInPlausibleRange(t *testing.T) {
	p := newTestPack(t, 4, 2, 0.05)
	s := p.Step(5, 1)
	// 4 series cells: between 4×3.0 V (empty) and 4×4.2 V (full OCV).
	if s.PackVoltage < 4*2.8 || s.PackVoltage > 4*4.2 {
		t.Fatalf("pack voltage %v outside plausible 4s range", s.PackVoltage)
	}
}

func TestPackSimulateDeterministic(t *testing.T) {
	profile := []float64{5, 4, 6, 3, 0, -2, 5, 5}
	run := func() []PackSample {
		r := rng.New(9)
		p, err := NewPack(Default18650(), 2, 2, 0.95, 0.05, r.Float64)
		if err != nil {
			t.Fatal(err)
		}
		return p.Simulate(profile, 1)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].PackVoltage != b[i].PackVoltage {
			t.Fatalf("simulation diverged at step %d", i)
		}
	}
}
