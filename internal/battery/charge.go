package battery

import "fmt"

// Charging. Drive cycles only discharge (with short regen bursts);
// between cycles a cell is recharged with the standard constant-
// current / constant-voltage (CC-CV) protocol: charge at a fixed
// current until the terminal voltage hits the limit, then hold the
// voltage and let the current taper until it falls below the cutoff.
// The charge phase matters for data generation because cells re-enter
// the next discharge cycle from a realistic (not perfectly full)
// state, and because charging also ages and heats the cell.

// ChargeSpec parameterizes a CC-CV charge.
type ChargeSpec struct {
	// CurrentA is the CC-phase charging current (positive).
	CurrentA float64
	// LimitV is the CV-phase voltage limit (4.2 V for most 18650s).
	LimitV float64
	// CutoffA ends the CV phase when the charge current tapers below it.
	CutoffA float64
	// MaxSeconds bounds the charge (safety timeout).
	MaxSeconds int
}

// DefaultCharge is a standard 0.5C CC-CV charge for a 2.5 Ah cell.
func DefaultCharge() ChargeSpec {
	return ChargeSpec{CurrentA: 1.25, LimitV: 4.2, CutoffA: 0.05, MaxSeconds: 4 * 3600}
}

// Validate rejects impossible charge specs.
func (s ChargeSpec) Validate() error {
	switch {
	case s.CurrentA <= 0:
		return fmt.Errorf("battery: charge current must be positive")
	case s.LimitV <= OCV(0):
		return fmt.Errorf("battery: voltage limit %v below minimum OCV", s.LimitV)
	case s.CutoffA <= 0 || s.CutoffA >= s.CurrentA:
		return fmt.Errorf("battery: cutoff must be in (0, charge current)")
	case s.MaxSeconds <= 0:
		return fmt.Errorf("battery: charge timeout must be positive")
	}
	return nil
}

// ChargeResult summarizes a completed charge.
type ChargeResult struct {
	// Seconds is the total charge duration.
	Seconds int
	// CCSeconds is the constant-current phase duration.
	CCSeconds int
	// ChargedAh is the charge delivered into the cell.
	ChargedAh float64
	// FinalSoC is the state of charge at termination.
	FinalSoC float64
	// TimedOut reports whether MaxSeconds ended the charge.
	TimedOut bool
}

// Charge runs a CC-CV protocol on the cell (1-second steps) and
// returns the summary. The cell's state is advanced in place.
func (c *Cell) Charge(spec ChargeSpec) (ChargeResult, error) {
	if err := spec.Validate(); err != nil {
		return ChargeResult{}, err
	}
	var res ChargeResult
	inCV := false
	// CV-phase current estimate, refined each step from the voltage
	// surplus over the limit.
	current := spec.CurrentA
	for res.Seconds = 0; res.Seconds < spec.MaxSeconds; res.Seconds++ {
		// Charging current is negative in the discharge-positive
		// convention of Step.
		s := c.Step(-current, 1)
		res.ChargedAh += current / 3600
		res.FinalSoC = s.SoC
		if !inCV {
			res.CCSeconds++
			if s.Voltage >= spec.LimitV {
				inCV = true
			}
			continue
		}
		// CV phase: back the current off proportionally to the voltage
		// overshoot — a simple controller that mimics the exponential
		// taper of a real charger.
		overshoot := s.Voltage - spec.LimitV
		if overshoot > 0 {
			current *= 1 - minFloat64(0.5, overshoot*2)
		} else {
			current *= 1.02 // recover slightly if we undershot
			if current > spec.CurrentA {
				current = spec.CurrentA
			}
		}
		if current <= spec.CutoffA {
			return res, nil
		}
	}
	res.TimedOut = true
	return res, nil
}

func minFloat64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
