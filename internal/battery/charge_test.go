package battery

import (
	"testing"
)

// drainedCell returns a cell discharged to roughly the given SoC.
func drainedCell(t *testing.T, targetSoC float64) *Cell {
	t.Helper()
	c := newTestCell(t, 1)
	for c.State.SoC > targetSoC {
		c.Step(2.5, 1)
	}
	// Let polarization relax so the charge starts from rest.
	for i := 0; i < 600; i++ {
		c.Step(0, 1)
	}
	return c
}

func TestChargeRefillsCell(t *testing.T) {
	c := drainedCell(t, 0.2)
	res, err := c.Charge(DefaultCharge())
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("charge timed out")
	}
	if res.FinalSoC < 0.95 {
		t.Fatalf("final SoC = %v, want near full", res.FinalSoC)
	}
	if res.ChargedAh <= 0 {
		t.Fatal("no charge delivered")
	}
}

func TestChargeHasBothPhases(t *testing.T) {
	c := drainedCell(t, 0.3)
	res, err := c.Charge(DefaultCharge())
	if err != nil {
		t.Fatal(err)
	}
	if res.CCSeconds <= 0 {
		t.Fatal("no constant-current phase")
	}
	if res.Seconds <= res.CCSeconds {
		t.Fatal("no constant-voltage phase — the taper never ran")
	}
	// CC phase dominates when starting from a low SoC.
	if res.CCSeconds*3 < res.Seconds {
		t.Fatalf("CC phase %d s of %d s — implausibly short", res.CCSeconds, res.Seconds)
	}
}

func TestChargeConservesCoulombs(t *testing.T) {
	c := drainedCell(t, 0.4)
	socBefore := c.State.SoC
	res, err := c.Charge(DefaultCharge())
	if err != nil {
		t.Fatal(err)
	}
	gained := (res.FinalSoC - socBefore) * c.effectiveCapacity()
	if diff := res.ChargedAh - gained; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("charged %v Ah but SoC gained %v Ah", res.ChargedAh, gained)
	}
}

func TestChargeNearFullIsShort(t *testing.T) {
	nearFull := drainedCell(t, 0.9)
	empty := drainedCell(t, 0.2)
	resNear, err := nearFull.Charge(DefaultCharge())
	if err != nil {
		t.Fatal(err)
	}
	resEmpty, err := empty.Charge(DefaultCharge())
	if err != nil {
		t.Fatal(err)
	}
	if resNear.Seconds >= resEmpty.Seconds {
		t.Fatalf("charging from 90%% (%d s) not faster than from 20%% (%d s)",
			resNear.Seconds, resEmpty.Seconds)
	}
}

func TestChargeTimeout(t *testing.T) {
	c := drainedCell(t, 0.2)
	spec := DefaultCharge()
	spec.MaxSeconds = 60
	res, err := c.Charge(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("60-second budget did not time out a full charge")
	}
	if res.Seconds != 60 {
		t.Fatalf("ran %d seconds, budget 60", res.Seconds)
	}
}

func TestChargeSpecValidate(t *testing.T) {
	bad := []ChargeSpec{
		{CurrentA: 0, LimitV: 4.2, CutoffA: 0.05, MaxSeconds: 100},
		{CurrentA: 1, LimitV: 2.0, CutoffA: 0.05, MaxSeconds: 100},
		{CurrentA: 1, LimitV: 4.2, CutoffA: 0, MaxSeconds: 100},
		{CurrentA: 1, LimitV: 4.2, CutoffA: 2, MaxSeconds: 100},
		{CurrentA: 1, LimitV: 4.2, CutoffA: 0.05, MaxSeconds: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if err := DefaultCharge().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChargeDeterministic(t *testing.T) {
	a := drainedCell(t, 0.3)
	b := drainedCell(t, 0.3)
	ra, err := a.Charge(DefaultCharge())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Charge(DefaultCharge())
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Fatalf("charge not deterministic: %+v vs %+v", ra, rb)
	}
}
