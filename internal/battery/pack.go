package battery

import "fmt"

// Pack models a battery pack as parallel strings of series-connected
// cells — the configuration whose inhomogeneities motivate per-cell
// models in the first place (Neupert & Kowal study exactly this: cell
// parameter spread makes currents, temperatures, and aging diverge
// across a pack, so "individual models provide a spatial resolution").
//
// The electrical simplifications are standard for drive-cycle studies:
// series cells in one string carry the string current; the pack current
// divides across parallel strings in proportion to their DC
// conductance, recomputed every step so that aging shifts the split.
type Pack struct {
	// Strings[k][i] is the i-th series cell of parallel string k.
	Strings [][]*Cell
}

// NewPack builds a pack of parallel × series cells. Every cell gets
// independently perturbed parameters (spread fraction, via draw) and
// the given initial state of health, so the pack starts realistic:
// nominally identical cells that are not quite identical.
func NewPack(base Params, series, parallel int, soh, spread float64, draw func() float64) (*Pack, error) {
	if series <= 0 || parallel <= 0 {
		return nil, fmt.Errorf("battery: pack needs positive series and parallel counts")
	}
	p := &Pack{Strings: make([][]*Cell, parallel)}
	for k := 0; k < parallel; k++ {
		p.Strings[k] = make([]*Cell, series)
		for i := 0; i < series; i++ {
			cell, err := NewCell(base.Perturb(spread, draw), soh)
			if err != nil {
				return nil, err
			}
			p.Strings[k][i] = cell
		}
	}
	return p, nil
}

// Cells returns all cells in a flat slice (string-major order).
func (p *Pack) Cells() []*Cell {
	var out []*Cell
	for _, s := range p.Strings {
		out = append(out, s...)
	}
	return out
}

// PackSample is one simulation step of the whole pack.
type PackSample struct {
	// PackVoltage is the terminal voltage across the parallel strings.
	PackVoltage float64
	// StringCurrents is the per-string share of the pack current.
	StringCurrents []float64
	// CellSamples[k][i] is the sample of cell i in string k.
	CellSamples [][]Sample
}

// stringResistance returns the DC resistance of one series string.
func stringResistance(cells []*Cell) float64 {
	var r float64
	for _, c := range cells {
		r += c.effectiveR0() + c.Params.R1 + c.Params.R2
	}
	return r
}

// Step advances the pack by dt seconds under packCurrent (positive =
// discharge). The current split follows string conductances, so as
// cells age unevenly the split drifts — the inhomogeneity per-cell
// models are meant to resolve.
func (p *Pack) Step(packCurrent, dt float64) PackSample {
	// Conductance-weighted current division.
	conductance := make([]float64, len(p.Strings))
	var total float64
	for k, s := range p.Strings {
		conductance[k] = 1 / stringResistance(s)
		total += conductance[k]
	}
	out := PackSample{
		StringCurrents: make([]float64, len(p.Strings)),
		CellSamples:    make([][]Sample, len(p.Strings)),
	}
	var voltageSum float64
	for k, s := range p.Strings {
		i := packCurrent * conductance[k] / total
		out.StringCurrents[k] = i
		out.CellSamples[k] = make([]Sample, len(s))
		var stringVoltage float64
		for ci, cell := range s {
			sample := cell.Step(i, dt)
			out.CellSamples[k][ci] = sample
			stringVoltage += sample.Voltage
		}
		voltageSum += stringVoltage
	}
	out.PackVoltage = voltageSum / float64(len(p.Strings))
	return out
}

// Simulate runs a full pack current profile and returns one sample per
// step.
func (p *Pack) Simulate(current []float64, dt float64) []PackSample {
	out := make([]PackSample, len(current))
	for t, i := range current {
		out[t] = p.Step(i, dt)
	}
	return out
}

// SoCSpread returns the difference between the highest and lowest cell
// state of charge — the headline inhomogeneity metric.
func (p *Pack) SoCSpread() float64 {
	first := true
	var lo, hi float64
	for _, s := range p.Strings {
		for _, c := range s {
			soc := c.State.SoC
			if first {
				lo, hi = soc, soc
				first = false
				continue
			}
			if soc < lo {
				lo = soc
			}
			if soc > hi {
				hi = soc
			}
		}
	}
	return hi - lo
}
