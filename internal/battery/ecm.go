// Package battery implements a second-order equivalent-circuit model
// (ECM) of an 18650 lithium-ion cell, following the modeling approach
// of Neupert & Kowal ("Inhomogeneities in Battery Packs", WEVJ 2018)
// that the paper uses to generate its training data.
//
// The circuit is an open-circuit voltage source OCV(SoC) in series with
// an ohmic resistance R0 and two RC pairs (R1‖C1, R2‖C2) capturing fast
// and slow polarization. A lumped thermal node tracks cell temperature
// from ohmic losses. State-of-health (SoH) aging scales capacity down
// and resistances up, which is how the paper makes each update cycle's
// training data drift: "we decrement the state of health (SoH) of the
// batteries every update cycle".
//
// The simulator is deterministic: given equal parameters, initial
// state, and input current series, it produces identical traces.
package battery

import (
	"fmt"
	"math"
)

// Params are the electrical and thermal parameters of one cell.
// Values default to a generic 18650 NMC cell (≈2.5 Ah).
type Params struct {
	CapacityAh float64 // nominal capacity in ampere-hours
	R0         float64 // ohmic resistance in ohm
	R1, C1     float64 // fast RC pair: ohm, farad
	R2, C2     float64 // slow RC pair: ohm, farad
	ThermalC   float64 // lumped heat capacity in J/K
	ThermalR   float64 // thermal resistance to ambient in K/W
	AmbientC   float64 // ambient temperature in °C
}

// Default18650 returns typical parameters for an 18650 NMC cell.
func Default18650() Params {
	return Params{
		CapacityAh: 2.5,
		R0:         0.030,
		R1:         0.015, C1: 2000,
		R2: 0.020, C2: 60000,
		ThermalC: 40,   // ~46 g * 0.9 J/(g·K)
		ThermalR: 3.0,  // natural convection
		AmbientC: 25.0, // room temperature
	}
}

// Perturb returns a copy of p with each electrical parameter scaled by
// an independent factor in [1-spread, 1+spread] drawn via draw (a
// uniform [0,1) source). The paper increases data diversity by
// generating "each cycle with slightly altered model parameters".
func (p Params) Perturb(spread float64, draw func() float64) Params {
	f := func() float64 { return 1 + spread*(2*draw()-1) }
	p.CapacityAh *= f()
	p.R0 *= f()
	p.R1 *= f()
	p.C1 *= f()
	p.R2 *= f()
	p.C2 *= f()
	return p
}

// Validate rejects physically meaningless parameters.
func (p Params) Validate() error {
	switch {
	case p.CapacityAh <= 0:
		return fmt.Errorf("battery: capacity must be positive, got %v", p.CapacityAh)
	case p.R0 < 0 || p.R1 < 0 || p.R2 < 0:
		return fmt.Errorf("battery: resistances must be non-negative")
	case p.C1 <= 0 || p.C2 <= 0:
		return fmt.Errorf("battery: RC capacitances must be positive")
	case p.ThermalC <= 0 || p.ThermalR <= 0:
		return fmt.Errorf("battery: thermal parameters must be positive")
	}
	return nil
}

// ocvTable is the open-circuit voltage of a li-ion cell as a function
// of state of charge, in 5% steps from SoC 0 to 1. Shape follows
// published 18650 NMC curves: steep knee below 10%, plateau around
// 3.6-3.8 V, rise to 4.2 V at full charge.
var ocvTable = []float64{
	3.00, 3.25, 3.37, 3.43, 3.48, 3.52, 3.55, 3.57, 3.59, 3.61,
	3.63, 3.65, 3.68, 3.72, 3.76, 3.81, 3.87, 3.94, 4.02, 4.11,
	4.20,
}

// OCV returns the open-circuit voltage for a state of charge in [0, 1],
// interpolated piecewise-linearly; out-of-range inputs are clamped.
func OCV(soc float64) float64 {
	if soc <= 0 {
		return ocvTable[0]
	}
	if soc >= 1 {
		return ocvTable[len(ocvTable)-1]
	}
	pos := soc * float64(len(ocvTable)-1)
	i := int(pos)
	frac := pos - float64(i)
	return ocvTable[i]*(1-frac) + ocvTable[i+1]*frac
}

// State is the dynamic state of a cell during simulation.
type State struct {
	SoC   float64 // state of charge in [0, 1]
	V1    float64 // voltage across the fast RC pair
	V2    float64 // voltage across the slow RC pair
	TempC float64 // cell temperature in °C
	AhOut float64 // cumulative discharged charge in Ah
}

// Cell simulates one 18650 cell.
type Cell struct {
	Params Params
	SoH    float64 // state of health in (0, 1]; 1 = new cell
	State  State
}

// NewCell returns a fully charged cell at ambient temperature with the
// given state of health.
func NewCell(p Params, soh float64) (*Cell, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if soh <= 0 || soh > 1 {
		return nil, fmt.Errorf("battery: SoH must be in (0, 1], got %v", soh)
	}
	return &Cell{
		Params: p,
		SoH:    soh,
		State:  State{SoC: 1, TempC: p.AmbientC},
	}, nil
}

// effectiveCapacity returns the aged capacity in Ah.
func (c *Cell) effectiveCapacity() float64 {
	return c.Params.CapacityAh * c.SoH
}

// effectiveR0 returns the aged ohmic resistance: resistance grows
// roughly linearly as the cell ages (a standard empirical model).
func (c *Cell) effectiveR0() float64 {
	return c.Params.R0 * (1 + 1.5*(1-c.SoH))
}

// Sample is one time step of a simulated discharge: the quantities the
// paper's battery models consume and predict. Inputs to the DL model
// are (Current, TempC, ChargeAh, SoC); the target is Voltage.
type Sample struct {
	Current  float64 // applied current in A (positive = discharge)
	TempC    float64 // cell temperature in °C
	ChargeAh float64 // cumulative discharged charge in Ah
	SoC      float64 // state of charge in [0, 1]
	Voltage  float64 // terminal voltage in V
}

// Step advances the cell by dt seconds under current i (positive =
// discharge) and returns the resulting sample. Explicit-Euler updates
// with 1 s steps are standard for drive-cycle ECM simulation.
func (c *Cell) Step(i, dt float64) Sample {
	p := c.Params
	s := &c.State

	// RC branch dynamics (exact exponential update, stable for any dt).
	a1 := math.Exp(-dt / (p.R1 * p.C1))
	a2 := math.Exp(-dt / (p.R2 * p.C2))
	s.V1 = s.V1*a1 + p.R1*(1-a1)*i
	s.V2 = s.V2*a2 + p.R2*(1-a2)*i

	// Coulomb counting.
	dAh := i * dt / 3600
	s.AhOut += dAh
	s.SoC -= dAh / c.effectiveCapacity()
	if s.SoC < 0 {
		s.SoC = 0
	}
	if s.SoC > 1 {
		s.SoC = 1
	}

	// Terminal voltage.
	r0 := c.effectiveR0()
	v := OCV(s.SoC) - i*r0 - s.V1 - s.V2

	// Thermal node: ohmic losses heat the cell, convection cools it.
	heat := i * i * (r0 + p.R1 + p.R2)
	s.TempC += dt * (heat - (s.TempC-p.AmbientC)/p.ThermalR) / p.ThermalC

	return Sample{Current: i, TempC: s.TempC, ChargeAh: s.AhOut, SoC: s.SoC, Voltage: v}
}

// Simulate runs a full current profile (one value per dt seconds) from
// the cell's current state and returns one sample per step.
func (c *Cell) Simulate(current []float64, dt float64) []Sample {
	out := make([]Sample, len(current))
	for k, i := range current {
		out[k] = c.Step(i, dt)
	}
	return out
}

// Empty reports whether the cell has reached its discharge cutoff.
func (c *Cell) Empty() bool { return c.State.SoC <= 0 }
