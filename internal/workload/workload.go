// Package workload drives the paper's evaluation scenario (Figure 2):
// one initial use case U1 managing n freshly deployed models, followed
// by iterations of use case U3 in which a subset of models is fully or
// partially retrained on newly collected, aged data.
//
// The paper's defaults, reproduced by DefaultConfig: n = 5000 battery
// cell models (FFNN-48), 5% of models fully updated and 5% partially
// updated per cycle, training data aging via a state-of-health
// decrement per cycle plus fresh measurement noise.
package workload

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/env"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/rng"
)

// Mode selects how model updates are produced.
type Mode string

// Update modes.
const (
	// ModeTrain retrains updated models on their cycle datasets — the
	// real pipeline; provenance recovery reproduces it exactly.
	ModeTrain Mode = "train"
	// ModePerturb applies a deterministic parameter perturbation
	// instead of training. Storage and timing behaviour of all
	// approaches is identical (the same layers change), but provenance
	// recovery cannot reproduce perturbed models; use only for
	// storage/TTS sweeps at large n. Experiments that use it say so.
	ModePerturb Mode = "perturb"
)

// Config parameterizes a fleet scenario.
type Config struct {
	// Arch is the model architecture (default FFNN-48).
	Arch *nn.Architecture
	// NumModels is n; the paper uses 5000.
	NumModels int
	// FullUpdateRate and PartialUpdateRate are the per-cycle fractions
	// of models receiving full and partial updates (paper: 5% + 5%).
	FullUpdateRate    float64
	PartialUpdateRate float64
	// DataKind selects battery or CIFAR data.
	DataKind dataset.Kind
	// SamplesPerDataset is the per-update training-set size.
	SamplesPerDataset int
	// Epochs, BatchSize, LearningRate, Loss configure training.
	Epochs       int
	BatchSize    int
	LearningRate float32
	Loss         string
	// Optimizer selects the SGD variant (zero value: plain SGD). It is
	// part of every cycle's recorded provenance.
	Optimizer nn.OptimizerConfig
	// InitialSoH and SoHDecrement drive battery aging per cycle.
	InitialSoH   float64
	SoHDecrement float64
	// NoiseStd is the measurement noise added to training targets.
	NoiseStd float64
	// Seed is the fleet root seed; everything derives from it.
	Seed uint64
	// Mode selects training or fast perturbation (see Mode docs).
	Mode Mode
	// PartialLayers are the layers a partial update retrains; empty
	// defaults to the final linear layer.
	PartialLayers []string
	// FactoryClone initializes every model as a clone of model 0
	// instead of giving each its own random init. This models fleets
	// deployed from one factory-trained prototype and is the case
	// content-addressed deduplication targets: at U1 all models are
	// byte-identical and diverge only as updates land.
	FactoryClone bool
}

// DefaultConfig returns the paper's default scenario.
func DefaultConfig() Config {
	return Config{
		Arch:              nn.FFNN48(),
		NumModels:         5000,
		FullUpdateRate:    0.05,
		PartialUpdateRate: 0.05,
		DataKind:          dataset.KindBattery,
		SamplesPerDataset: 200,
		Epochs:            2,
		BatchSize:         32,
		LearningRate:      0.05,
		Loss:              "mse",
		InitialSoH:        1.0,
		SoHDecrement:      0.02,
		NoiseStd:          0.002,
		Seed:              2023,
		Mode:              ModeTrain,
	}
}

// CIFARConfig returns the paper's image-classification variant.
func CIFARConfig() Config {
	cfg := DefaultConfig()
	cfg.Arch = nn.CIFARNet()
	cfg.DataKind = dataset.KindCIFAR
	cfg.SamplesPerDataset = 20
	cfg.Epochs = 1
	cfg.BatchSize = 10
	cfg.LearningRate = 0.02
	cfg.Loss = "cross_entropy"
	return cfg
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	switch {
	case c.Arch == nil:
		return fmt.Errorf("workload: architecture required")
	case c.NumModels <= 0:
		return fmt.Errorf("workload: model count must be positive")
	case c.FullUpdateRate < 0 || c.PartialUpdateRate < 0 ||
		c.FullUpdateRate+c.PartialUpdateRate > 1:
		return fmt.Errorf("workload: update rates must be non-negative and sum to at most 1")
	case c.SamplesPerDataset <= 0:
		return fmt.Errorf("workload: samples per dataset must be positive")
	case c.Mode != ModeTrain && c.Mode != ModePerturb:
		return fmt.Errorf("workload: unknown mode %q", c.Mode)
	}
	if c.Mode == ModeTrain {
		if err := c.trainConfig().Validate(); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	return nil
}

func (c Config) trainConfig() nn.TrainConfig {
	return nn.TrainConfig{
		Epochs: c.Epochs, BatchSize: c.BatchSize,
		LearningRate: c.LearningRate, Loss: c.Loss,
		Optimizer: c.Optimizer,
	}
}

// partialLayers resolves the layer set of a partial update.
func (c Config) partialLayers() []string {
	if len(c.PartialLayers) > 0 {
		return c.PartialLayers
	}
	for i := len(c.Arch.Layers) - 1; i >= 0; i-- {
		l := c.Arch.Layers[i]
		if l.Kind == nn.KindLinear || l.Kind == nn.KindConv2D {
			return []string{l.Name}
		}
	}
	return nil
}

// Fleet is a running scenario: the current in-memory state of all
// models plus the cycle counter.
type Fleet struct {
	Config Config
	Set    *core.ModelSet
	// Registry is the external dataset store updates register into.
	Registry *dataset.Registry
	cycle    int
}

// New builds the U1 state: n freshly initialized models.
func New(cfg Config, reg *dataset.Registry) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		return nil, fmt.Errorf("workload: dataset registry required")
	}
	set, err := core.NewModelSet(cfg.Arch, cfg.NumModels, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.FactoryClone {
		for i := 1; i < len(set.Models); i++ {
			set.Models[i] = set.Models[0].Clone()
		}
	}
	return &Fleet{Config: cfg, Set: set, Registry: reg}, nil
}

// Resume continues a scenario from a recovered model set: the fleet
// picks up at the given completed-cycle count, so the next RunCycle is
// cycle+1. Because selection, data, and training are all derived from
// (cfg.Seed, cycle), a resumed fleet produces exactly the updates the
// original would have.
func Resume(cfg Config, reg *dataset.Registry, set *core.ModelSet, cycle int) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		return nil, fmt.Errorf("workload: dataset registry required")
	}
	if set == nil || set.Len() != cfg.NumModels {
		return nil, fmt.Errorf("workload: resumed set must have %d models", cfg.NumModels)
	}
	if cycle < 0 {
		return nil, fmt.Errorf("workload: cycle must be non-negative, got %d", cycle)
	}
	return &Fleet{Config: cfg, Set: set, Registry: reg, cycle: cycle}, nil
}

// Cycle returns the number of completed U3 iterations.
func (f *Fleet) Cycle() int { return f.cycle }

// TrainInfo returns the cycle-shared training description approaches
// persist (Provenance saves it once per set).
func (f *Fleet) TrainInfo() *core.TrainInfo {
	return &core.TrainInfo{
		Config:       f.Config.trainConfig(),
		Environment:  env.Capture(),
		PipelineCode: core.PipelineCode,
	}
}

// RunCycle performs one U3 iteration: it deterministically selects the
// models to update, registers their cycle datasets, updates the models
// in place (training or perturbation), and returns the update records
// a management approach needs to save the resulting set.
func (f *Fleet) RunCycle() ([]core.ModelUpdate, error) {
	f.cycle++
	cfg := f.Config
	n := cfg.NumModels
	numFull := int(cfg.FullUpdateRate * float64(n))
	numPartial := int(cfg.PartialUpdateRate * float64(n))

	// Deterministic selection: a fresh permutation per cycle, first
	// slice fully updated, second slice partially updated.
	selector := rng.New(cfg.Seed).Derive(fmt.Sprintf("select/%d", f.cycle))
	chosen := selector.Sample(n, numFull+numPartial)

	soh := cfg.InitialSoH - cfg.SoHDecrement*float64(f.cycle)
	if soh < 0.1 {
		soh = 0.1 // battery at end of life; clamp to keep specs valid
	}

	updates := make([]core.ModelUpdate, 0, len(chosen))
	for i, idx := range chosen {
		var layers []string
		if i >= numFull {
			layers = cfg.partialLayers()
		}
		spec := dataset.Spec{
			Kind: cfg.DataKind, CellID: idx, Cycle: f.cycle,
			SoH: soh, Samples: cfg.SamplesPerDataset,
			NoiseStd: cfg.NoiseStd, Seed: cfg.Seed,
		}
		if cfg.DataKind == dataset.KindCIFAR {
			spec.SoH = 0 // not meaningful for image data
		}
		id, err := f.Registry.Put(spec)
		if err != nil {
			return nil, fmt.Errorf("workload: registering dataset for model %d: %w", idx, err)
		}
		seed := updateSeed(cfg.Seed, f.cycle, idx)
		if err := f.applyUpdate(idx, id, layers, seed); err != nil {
			return nil, err
		}
		updates = append(updates, core.ModelUpdate{
			ModelIndex: idx, DatasetID: id, TrainLayers: layers, Seed: seed,
		})
	}
	return updates, nil
}

// applyUpdate updates one model in place.
func (f *Fleet) applyUpdate(idx int, datasetID string, layers []string, seed uint64) error {
	switch f.Config.Mode {
	case ModeTrain:
		data, err := f.Registry.Materialize(datasetID)
		if err != nil {
			return fmt.Errorf("workload: materializing dataset of model %d: %w", idx, err)
		}
		cfg := f.Config.trainConfig()
		cfg.Seed = seed
		cfg.TrainLayers = layers
		if _, err := nn.Train(f.Set.Models[idx], data, cfg); err != nil {
			return fmt.Errorf("workload: training model %d: %w", idx, err)
		}
	case ModePerturb:
		perturbModel(f.Set.Models[idx], layers, seed)
	}
	return nil
}

// perturbModel applies a deterministic parameter nudge to the selected
// layers (all layers when layers is empty) — the fast stand-in for
// training in storage/TTS sweeps.
func perturbModel(m *nn.Model, layers []string, seed uint64) {
	selected := func(string) bool { return true }
	if len(layers) > 0 {
		set := make(map[string]bool, len(layers))
		for _, l := range layers {
			set[l] = true
		}
		selected = func(name string) bool { return set[name] }
	}
	r := rng.New(seed).Derive("perturb")
	for _, l := range m.Layers {
		if !selected(l.Name()) {
			continue
		}
		for _, p := range l.Params() {
			for i := range p.Tensor.Data {
				p.Tensor.Data[i] += float32(r.NormFloat64()) * 0.01
			}
		}
	}
}

// updateSeed derives the deterministic training seed of one model
// update from (fleet seed, cycle, model index).
func updateSeed(fleetSeed uint64, cycle, idx int) uint64 {
	s := rng.New(fleetSeed).Derive(fmt.Sprintf("update/%d/%d", cycle, idx))
	return s.Uint64()
}
