package workload

import (
	"testing"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/nn"
)

// smallConfig is a fast battery scenario for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumModels = 20
	cfg.FullUpdateRate = 0.10
	cfg.PartialUpdateRate = 0.10
	cfg.SamplesPerDataset = 40
	cfg.Epochs = 1
	return cfg
}

func newFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg, dataset.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumModels != 5000 {
		t.Errorf("NumModels = %d, want 5000", cfg.NumModels)
	}
	if cfg.Arch.ParamCount() != 4993 {
		t.Errorf("default architecture has %d params, want FFNN-48's 4993", cfg.Arch.ParamCount())
	}
	if cfg.FullUpdateRate != 0.05 || cfg.PartialUpdateRate != 0.05 {
		t.Errorf("update rates = %v/%v, want 0.05/0.05", cfg.FullUpdateRate, cfg.PartialUpdateRate)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCIFARConfigValid(t *testing.T) {
	cfg := CIFARConfig()
	if cfg.Arch.ParamCount() != 6882 {
		t.Errorf("CIFAR arch has %d params, want 6882", cfg.Arch.ParamCount())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Arch = nil },
		func(c *Config) { c.NumModels = 0 },
		func(c *Config) { c.FullUpdateRate = -0.1 },
		func(c *Config) { c.FullUpdateRate, c.PartialUpdateRate = 0.6, 0.6 },
		func(c *Config) { c.SamplesPerDataset = 0 },
		func(c *Config) { c.Mode = "magic" },
		func(c *Config) { c.Epochs = 0 },
	}
	for i, mutate := range mutations {
		cfg := smallConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunCycleUpdatesExpectedCount(t *testing.T) {
	f := newFleet(t, smallConfig())
	updates, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	// 10% full + 10% partial of 20 models = 4 updates.
	if len(updates) != 4 {
		t.Fatalf("cycle produced %d updates, want 4", len(updates))
	}
	full, partial := 0, 0
	for _, u := range updates {
		if len(u.TrainLayers) == 0 {
			full++
		} else {
			partial++
		}
	}
	if full != 2 || partial != 2 {
		t.Fatalf("full/partial split = %d/%d, want 2/2", full, partial)
	}
}

func TestRunCycleModelIndicesDistinct(t *testing.T) {
	f := newFleet(t, smallConfig())
	updates, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, u := range updates {
		if seen[u.ModelIndex] {
			t.Fatalf("model %d updated twice in one cycle", u.ModelIndex)
		}
		seen[u.ModelIndex] = true
	}
}

func TestRunCycleOnlyTouchesSelectedModels(t *testing.T) {
	f := newFleet(t, smallConfig())
	before := f.Set.Clone()
	updates, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	updated := map[int]bool{}
	for _, u := range updates {
		updated[u.ModelIndex] = true
	}
	for i := range f.Set.Models {
		changed := !f.Set.Models[i].ParamsEqual(before.Models[i])
		if updated[i] && !changed {
			t.Errorf("model %d selected for update but unchanged", i)
		}
		if !updated[i] && changed {
			t.Errorf("model %d changed although not selected", i)
		}
	}
}

func TestPartialUpdateTouchesOnlyPartialLayers(t *testing.T) {
	f := newFleet(t, smallConfig())
	before := f.Set.Clone()
	updates, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range updates {
		if len(u.TrainLayers) == 0 {
			continue
		}
		allowed := map[string]bool{}
		for _, l := range u.TrainLayers {
			allowed[l+".weight"] = true
			allowed[l+".bias"] = true
		}
		cur := f.Set.Models[u.ModelIndex].Params()
		prev := before.Models[u.ModelIndex].Params()
		for pi := range cur {
			if !cur[pi].Tensor.Equal(prev[pi].Tensor) && !allowed[cur[pi].Name] {
				t.Errorf("partial update of model %d changed %s", u.ModelIndex, cur[pi].Name)
			}
		}
	}
}

func TestScenarioDeterministic(t *testing.T) {
	run := func() *core.ModelSet {
		f := newFleet(t, smallConfig())
		for c := 0; c < 2; c++ {
			if _, err := f.RunCycle(); err != nil {
				t.Fatal(err)
			}
		}
		return f.Set
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatal("two runs of the same scenario diverged")
	}
}

func TestCyclesDiffer(t *testing.T) {
	f := newFleet(t, smallConfig())
	u1, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	u2, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	// Dataset references must be cycle-specific even for equal models.
	ids := map[string]bool{}
	for _, u := range u1 {
		ids[u.DatasetID] = true
	}
	for _, u := range u2 {
		if ids[u.DatasetID] {
			t.Fatalf("dataset %s reused across cycles", u.DatasetID)
		}
	}
	if f.Cycle() != 2 {
		t.Fatalf("Cycle() = %d, want 2", f.Cycle())
	}
}

func TestPerturbModeChangesSameLayersAsTraining(t *testing.T) {
	cfg := smallConfig()
	cfg.Mode = ModePerturb
	f := newFleet(t, cfg)
	before := f.Set.Clone()
	updates, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range updates {
		cur := f.Set.Models[u.ModelIndex].Params()
		prev := before.Models[u.ModelIndex].Params()
		for pi := range cur {
			changed := !cur[pi].Tensor.Equal(prev[pi].Tensor)
			shouldChange := len(u.TrainLayers) == 0 ||
				cur[pi].Name == u.TrainLayers[0]+".weight" ||
				cur[pi].Name == u.TrainLayers[0]+".bias"
			if changed != shouldChange {
				t.Errorf("perturb model %d param %s: changed=%v, want %v",
					u.ModelIndex, cur[pi].Name, changed, shouldChange)
			}
		}
	}
}

func TestWorkloadProvenanceRoundTrip(t *testing.T) {
	// End-to-end determinism: a provenance save of a workload cycle
	// recovers bit-exactly (training mode only).
	reg := dataset.NewRegistry()
	cfg := smallConfig()
	f, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewMemStores()
	st.Datasets = reg
	p := core.NewProvenance(st)

	res0, err := p.Save(core.SaveRequest{Set: f.Set})
	if err != nil {
		t.Fatal(err)
	}
	updates, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p.Save(core.SaveRequest{
		Set: f.Set, Base: res0.SetID, Updates: updates, Train: f.TrainInfo(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Recover(res1.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Set.Equal(got) {
		t.Fatal("workload provenance recovery not bit-exact")
	}
}

func TestTrainInfoComplete(t *testing.T) {
	f := newFleet(t, smallConfig())
	info := f.TrainInfo()
	if err := info.Config.Validate(); err != nil {
		t.Fatal(err)
	}
	if info.PipelineCode == "" || info.Environment.GoVersion == "" {
		t.Fatal("train info incomplete")
	}
}

func TestPartialLayersDefaultIsLastLinear(t *testing.T) {
	cfg := smallConfig()
	got := cfg.partialLayers()
	if len(got) != 1 || got[0] != "fc4" {
		t.Fatalf("default partial layers = %v, want [fc4]", got)
	}
	cfg.Arch = nn.CIFARNet()
	got = cfg.partialLayers()
	if len(got) != 1 || got[0] != "fc2" {
		t.Fatalf("CIFAR partial layers = %v, want [fc2]", got)
	}
}

func TestWorkloadWithMomentumProvenanceRoundTrip(t *testing.T) {
	// The optimizer choice is part of a cycle's provenance; a fleet
	// trained with momentum must still recover bit-exactly.
	reg := dataset.NewRegistry()
	cfg := smallConfig()
	cfg.Optimizer = nn.OptimizerConfig{Name: "momentum", Momentum: 0.9}
	f, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewMemStores()
	st.Datasets = reg
	p := core.NewProvenance(st)
	res0, err := p.Save(core.SaveRequest{Set: f.Set})
	if err != nil {
		t.Fatal(err)
	}
	updates, err := f.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p.Save(core.SaveRequest{
		Set: f.Set, Base: res0.SetID, Updates: updates, Train: f.TrainInfo(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Recover(res1.SetID)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Set.Equal(got) {
		t.Fatal("momentum-trained fleet not recovered exactly")
	}
}

func TestWorkloadRejectsBadOptimizer(t *testing.T) {
	cfg := smallConfig()
	cfg.Optimizer = nn.OptimizerConfig{Name: "galactic"}
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown optimizer accepted by workload config")
	}
}

func TestResume(t *testing.T) {
	reg := dataset.NewRegistry()
	cfg := smallConfig()
	original, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := original.RunCycle(); err != nil {
		t.Fatal(err)
	}

	// Resume a copy of the state at cycle 1 and run cycle 2 on both:
	// the resumed fleet must match the original exactly.
	resumed, err := Resume(cfg, reg, original.Set.Clone(), original.Cycle())
	if err != nil {
		t.Fatal(err)
	}
	uo, err := original.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	ur, err := resumed.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(uo) != len(ur) {
		t.Fatalf("update counts differ: %d vs %d", len(uo), len(ur))
	}
	for i := range uo {
		if uo[i].ModelIndex != ur[i].ModelIndex || uo[i].DatasetID != ur[i].DatasetID ||
			uo[i].Seed != ur[i].Seed {
			t.Fatalf("update %d differs: %+v vs %+v", i, uo[i], ur[i])
		}
	}
	if !original.Set.Equal(resumed.Set) {
		t.Fatal("resumed fleet diverged from original")
	}
}

func TestResumeValidation(t *testing.T) {
	reg := dataset.NewRegistry()
	cfg := smallConfig()
	f, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(cfg, nil, f.Set, 0); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := Resume(cfg, reg, nil, 0); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := Resume(cfg, reg, f.Set, -1); err == nil {
		t.Error("negative cycle accepted")
	}
	small := cfg
	small.NumModels = cfg.NumModels + 5
	if _, err := Resume(small, reg, f.Set, 0); err == nil {
		t.Error("set size mismatch accepted")
	}
}
