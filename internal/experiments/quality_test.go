package experiments

import (
	"strings"
	"testing"
)

func TestRunModelQuality(t *testing.T) {
	o := testOptions()
	o.NumModels = 40
	o.FullRate = 0.1
	o.PartialRate = 0.0
	o.Cycles = 2
	o.SamplesPerDataset = 120
	o.Epochs = 4

	r, err := RunModelQuality(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cycles) != 2 {
		t.Fatalf("got %d cycles", len(r.Cycles))
	}
	for _, c := range r.Cycles {
		if c.ModelsMeasured == 0 {
			t.Fatalf("cycle %d measured no models", c.Cycle)
		}
		// The premise of U3: retraining on the cycle's fresh data must
		// beat the stale model on that data.
		if !(c.UpdatedLoss < c.StaleLoss) {
			t.Errorf("cycle %d: updated loss %.5f not below stale loss %.5f",
				c.Cycle, c.UpdatedLoss, c.StaleLoss)
		}
	}
	if !strings.Contains(r.Table(), "stale loss") {
		t.Error("table incomplete")
	}
}

func TestRunModelQualityCIFAR(t *testing.T) {
	o := testOptions()
	o.ArchName = "CIFAR"
	o.NumModels = 10
	o.FullRate = 0.2
	o.PartialRate = 0.0
	o.Cycles = 1
	o.SamplesPerDataset = 20
	o.Epochs = 8

	r, err := RunModelQuality(o)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Cycles[0]
	if c.ModelsMeasured == 0 {
		t.Fatal("no models measured")
	}
	if !(c.UpdatedLoss < c.StaleLoss) {
		t.Errorf("CIFAR: updated loss %.5f not below stale loss %.5f", c.UpdatedLoss, c.StaleLoss)
	}
}
