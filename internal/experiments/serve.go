package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// Serve reports the hot-path serving scenario: a manager answering
// high-QPS selective recoveries of a small hot set of models, with the
// parameter store paced to a real SSD cost model (actual slept
// latency, not simulated time). The comparison is the same store cold
// (every request pays store round trips and decode work) versus warm
// (requests answered from the in-memory serving-tier chunk cache).
// Metadata documents are held unpaced — the metadata DB is small and
// assumed resident; the cache covers the blob side.
type Serve struct {
	Approach  string `json:"approach"`
	Store     string `json:"store"`
	Models    int    `json:"models"`
	HotModels int    `json:"hot_models"`
	// Requests is the number of single-model recoveries per phase.
	Requests int     `json:"requests"`
	CacheMB  float64 `json:"cache_mb"`
	// Cold/Warm are per-request latency percentiles in milliseconds.
	ColdP50MS float64 `json:"cold_p50_ms"`
	ColdP99MS float64 `json:"cold_p99_ms"`
	WarmP50MS float64 `json:"warm_p50_ms"`
	WarmP99MS float64 `json:"warm_p99_ms"`
	// SpeedupP50/P99 are cold/warm ratios at each percentile.
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP99 float64 `json:"speedup_p99"`
	// Cache counters after the warm phase.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheBytes   int64 `json:"cache_bytes"`
	CacheEntries int64 `json:"cache_entries"`
}

// serveRequests is the per-phase request count; p99 needs a tail.
const serveRequests = 200

// RunServe saves the scenario's set chain (deduplicated, so the chunk
// cache's refcount-weighted admission sees shared chunks) into a store
// whose blob backend sleeps real time per the setup's SSD cost model,
// then measures single-model recovery latency over a hot set of
// models: one uncached pass, then a cached pass after one warm-up
// sweep. Recovered bytes are asserted identical between the phases.
func RunServe(o Options, cacheBytes int64) (*Serve, error) {
	if cacheBytes <= 0 {
		cacheBytes = 256 << 20
	}
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	st := core.Stores{
		Docs:     docstore.New(backend.NewMem(), latency.CostModel{}, nil),
		Blobs:    blobstore.New(latency.Pace(backend.NewMem(), o.Setup.Blob), latency.CostModel{}, nil),
		Datasets: tr.registry,
	}
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	opts := []core.Option{core.WithDedup(), core.WithConcurrency(workers)}
	saver := &rig{name: "Baseline", stores: st, clock: &latency.Clock{},
		approach: core.NewBaseline(st, opts...)}
	_, ids, err := saveAll(saver, tr)
	if err != nil {
		return nil, err
	}
	last := ids[len(ids)-1]
	truth := tr.states[len(tr.states)-1]

	hot := o.NumModels
	if hot > 16 {
		hot = 16
	}
	measure := func(r core.PartialRecoverer, phase string) ([]time.Duration, error) {
		ds := make([]time.Duration, 0, serveRequests)
		for i := 0; i < serveRequests; i++ {
			idx := i % hot
			start := time.Now()
			rec, err := r.RecoverModelsContext(context.Background(), last, []int{idx})
			if err != nil {
				return nil, fmt.Errorf("%s request %d: %w", phase, i, err)
			}
			ds = append(ds, time.Since(start))
			if m := rec.Models[idx]; m == nil || !m.ParamsEqual(truth.Models[idx]) {
				return nil, fmt.Errorf("%s request %d: model %d recovered incorrectly", phase, i, idx)
			}
		}
		return ds, nil
	}

	// Cold: no cache attached yet; every request walks the paced store.
	cold, err := measure(core.NewBaseline(st, opts...), "cold")
	if err != nil {
		return nil, err
	}

	// Warm: same store, cache-enabled approach, one warm-up sweep.
	cached := core.NewBaseline(st, append([]core.Option{core.WithChunkCache(cacheBytes)}, opts...)...)
	for i := 0; i < hot; i++ {
		if _, err := cached.RecoverModelsContext(context.Background(), last, []int{i}); err != nil {
			return nil, fmt.Errorf("warm-up of model %d: %w", i, err)
		}
	}
	warm, err := measure(cached, "warm")
	if err != nil {
		return nil, err
	}

	out := &Serve{
		Approach:  "Baseline",
		Store:     fmt.Sprintf("mem blobs paced to %s; docs resident", o.Setup.Name),
		Models:    o.NumModels,
		HotModels: hot,
		Requests:  serveRequests,
		CacheMB:   float64(cacheBytes) / 1e6,
		ColdP50MS: percentile(cold, 50).Seconds() * 1e3,
		ColdP99MS: percentile(cold, 99).Seconds() * 1e3,
		WarmP50MS: percentile(warm, 50).Seconds() * 1e3,
		WarmP99MS: percentile(warm, 99).Seconds() * 1e3,
	}
	if out.WarmP50MS > 0 {
		out.SpeedupP50 = out.ColdP50MS / out.WarmP50MS
	}
	if out.WarmP99MS > 0 {
		out.SpeedupP99 = out.ColdP99MS / out.WarmP99MS
	}
	if c := cas.For(st.Blobs).ChunkCache(); c != nil {
		s := c.Stats()
		out.CacheHits, out.CacheMisses = s.Hits, s.Misses
		out.CacheBytes, out.CacheEntries = s.Bytes, s.Entries
	}
	return out, nil
}

// percentile returns the q-th percentile (nearest-rank) of ds.
func percentile(ds []time.Duration, q int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (len(sorted)*q + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Table renders the serving comparison.
func (s *Serve) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot-path serving: %d single-model recoveries over %d hot models (%s, %s)\n",
		s.Requests, s.HotModels, s.Approach, s.Store)
	fmt.Fprintf(&b, "%-8s%14s%14s\n", "phase", "p50 ms", "p99 ms")
	fmt.Fprintf(&b, "%-8s%14.3f%14.3f\n", "cold", s.ColdP50MS, s.ColdP99MS)
	fmt.Fprintf(&b, "%-8s%14.3f%14.3f\n", "warm", s.WarmP50MS, s.WarmP99MS)
	fmt.Fprintf(&b, "speedup %.1fx p50, %.1fx p99 (cache %.0f MB budget: %d hits, %d misses, %d bytes in %d entries)\n",
		s.SpeedupP50, s.SpeedupP99, s.CacheMB, s.CacheHits, s.CacheMisses, s.CacheBytes, s.CacheEntries)
	return b.String()
}
