package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/netchaos"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/server"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// Pull reports the registry-style pull scenario: a fleet of concurrent
// clients recovering a model set from one manager over HTTP via the
// chunk-level pull protocol, then re-pulling a lightly mutated version
// of the same set against their warm local caches, then pulling cold
// through an adversarial network that resets, truncates, and 503s
// mid-transfer.
type Pull struct {
	Models       int     `json:"models"`
	PerModelKB   float64 `json:"per_model_kb"`
	FullSetKB    float64 `json:"full_set_kb"`
	MutatedPct   float64 `json:"mutated_pct"`
	Clients      int     `json:"clients"`
	ChaosClients int     `json:"chaos_clients"`

	// Cold: every client pulls v1 with an empty cache.
	ColdKBPerClient float64 `json:"cold_kb_per_client"`
	ColdChunks      int64   `json:"cold_chunks_fetched"`
	ColdP50MS       float64 `json:"cold_p50_ms"`
	ColdP99MS       float64 `json:"cold_p99_ms"`

	// Warm: the same clients re-pull the mutated v2; only changed
	// chunks (plus the recipe) cross the wire.
	WarmKBPerClient float64 `json:"warm_kb_per_client"`
	WarmChunks      int64   `json:"warm_chunks_fetched"`
	WarmCacheHits   int64   `json:"warm_cache_hits"`
	WarmP50MS       float64 `json:"warm_p50_ms"`
	WarmP99MS       float64 `json:"warm_p99_ms"`
	// WarmRatio is warm bytes over full-set bytes — the acceptance bar
	// is < 0.10 for a ~5% mutation.
	WarmRatio float64 `json:"warm_ratio"`

	// Chaos: fresh clients pull v2 cold through a fault-injecting
	// transport. Every recovery still verifies byte-identical.
	ChaosFaults  int64 `json:"chaos_faults_injected"`
	ChaosResumes int64 `json:"chaos_resumes"`
	ChaosRetries int64 `json:"chaos_retries"`

	// Fallbacks counts clients that gave up on the pull protocol and
	// used the multipart path; the scenario expects zero.
	Fallbacks int64 `json:"fallbacks"`
}

// pullFleetModels caps the set size for the pull scenario: every one
// of the (hundreds of) clients transfers the whole set in the cold
// phase, so the per-client payload — not the fleet size — is what the
// scenario scales with.
const pullFleetModels = 64

// RunPull saves a deduplicated set behind a real HTTP server, mutates
// ~5% of its models into a second version, and drives three client
// waves against it: cold pulls of v1, warm re-pulls of v2 over the
// caches the cold wave filled, and cold chaos pulls of v2 through
// netchaos. Recovered sets are verified equal to the saved truth in
// every phase.
func RunPull(o Options, clients int) (*Pull, error) {
	ctx := context.Background()
	if clients <= 0 {
		clients = 200
	}
	archName := o.ArchName
	if archName == "" {
		archName = "FFNN-48"
	}
	arch, err := nn.ByName(archName)
	if err != nil {
		return nil, err
	}
	models := o.NumModels
	if models <= 0 || models > pullFleetModels {
		models = pullFleetModels
	}

	stores := core.NewMemStores()
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	api := server.NewWithMetrics(stores, obs.New(), core.WithDedup(), core.WithConcurrency(workers))
	ts := httptest.NewServer(api)
	defer ts.Close()

	seed := o.Seed
	if seed == 0 {
		seed = 2023
	}
	v1, err := core.NewModelSet(arch, models, seed)
	if err != nil {
		return nil, err
	}
	admin := &server.Client{BaseURL: ts.URL, Reg: obs.New()}
	res1, err := admin.Save(ctx, "baseline", v1, "", nil, nil)
	if err != nil {
		return nil, fmt.Errorf("saving v1: %w", err)
	}

	// v2: the same fleet with ~5% of the models perturbed — the shape
	// of a partial-update cycle between two pulls.
	v2 := v1.Clone()
	changed := models * 5 / 100
	if changed < 1 {
		changed = 1
	}
	for i := 0; i < changed; i++ {
		idx := (i * models) / changed
		m := v2.Models[idx]
		raw := m.AppendParamBytes(nil)
		for j := range raw {
			raw[j] ^= 0x5a
		}
		if _, err := m.SetParamBytes(raw); err != nil {
			return nil, err
		}
	}
	res2, err := admin.Save(ctx, "baseline", v2, "", nil, nil)
	if err != nil {
		return nil, fmt.Errorf("saving v2: %w", err)
	}

	newCache := func() *server.PullCache {
		return server.NewPullCache(blobstore.New(backend.NewMem(), latency.CostModel{}, nil))
	}
	// One pooled transport for the whole fleet: with the default two
	// idle connections per host, hundreds of concurrent clients spend
	// the experiment churning through ephemeral ports instead of
	// pulling chunks.
	base := &http.Transport{MaxIdleConns: 1024, MaxIdleConnsPerHost: 1024}
	defer base.CloseIdleConnections()
	httpc := &http.Client{Transport: base}
	fleet := make([]*server.Client, clients)
	for i := range fleet {
		fleet[i] = &server.Client{
			BaseURL:     ts.URL,
			HTTP:        httpc,
			Reg:         obs.New(),
			Cache:       newCache(),
			PullWorkers: 2,
		}
	}

	// pullWave recovers setID on every client concurrently, verifies
	// the result against truth, and returns per-request durations.
	pullWave := func(cs []*server.Client, setID string, truth *core.ModelSet, phase string) ([]time.Duration, error) {
		ds := make([]time.Duration, len(cs))
		errs := make([]error, len(cs))
		var wg sync.WaitGroup
		for i, c := range cs {
			wg.Add(1)
			go func(i int, c *server.Client) {
				defer wg.Done()
				start := time.Now()
				got, err := c.Recover(ctx, "baseline", setID)
				ds[i] = time.Since(start)
				if err != nil {
					errs[i] = fmt.Errorf("%s client %d: %w", phase, i, err)
					return
				}
				if !got.Equal(truth) {
					errs[i] = fmt.Errorf("%s client %d: recovered set differs from truth", phase, i)
				}
			}(i, c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return ds, nil
	}
	sum := func(cs []*server.Client, metric string) int64 {
		var total int64
		for _, c := range cs {
			total += c.Reg.Counter(metric).Value()
		}
		return total
	}

	cold, err := pullWave(fleet, res1.SetID, v1, "cold")
	if err != nil {
		return nil, err
	}
	coldBytes := sum(fleet, server.MetricPullBytes)
	coldChunks := sum(fleet, server.MetricPullChunksFetched)

	warm, err := pullWave(fleet, res2.SetID, v2, "warm")
	if err != nil {
		return nil, err
	}
	warmBytes := sum(fleet, server.MetricPullBytes) - coldBytes
	warmChunks := sum(fleet, server.MetricPullChunksFetched) - coldChunks
	warmHits := sum(fleet, server.MetricPullCacheHits)

	// Chaos wave: fresh cold clients behind a fault-injecting
	// transport. MaxFaults is bounded below the retry budget so every
	// client converges; the interesting output is that they converge
	// to byte-identical sets, resuming mid-chunk where truncated.
	chaosN := clients / 8
	if chaosN < 8 {
		chaosN = 8
	}
	if chaosN > clients {
		chaosN = clients
	}
	chaosFleet := make([]*server.Client, chaosN)
	chaosTransports := make([]*netchaos.Transport, chaosN)
	for i := range chaosFleet {
		tr := netchaos.NewTransport(base, netchaos.Config{
			Seed:       seed + uint64(i)*7919,
			Reset:      0.05,
			ServerBusy: 0.08,
			Truncate:   0.08,
			MaxFaults:  5,
		})
		chaosTransports[i] = tr
		chaosFleet[i] = &server.Client{
			BaseURL:     ts.URL,
			HTTP:        &http.Client{Transport: tr},
			Reg:         obs.New(),
			Cache:       newCache(),
			PullWorkers: 2,
			Retry:       &server.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: seed + uint64(i)},
		}
	}
	if _, err := pullWave(chaosFleet, res2.SetID, v2, "chaos"); err != nil {
		return nil, err
	}
	var chaosFaults int64
	for _, tr := range chaosTransports {
		chaosFaults += int64(tr.Injected())
	}

	per := float64(arch.ParamBytes())
	full := per * float64(models)
	out := &Pull{
		Models:          models,
		PerModelKB:      per / 1e3,
		FullSetKB:       full / 1e3,
		MutatedPct:      100 * float64(changed) / float64(models),
		Clients:         clients,
		ChaosClients:    chaosN,
		ColdKBPerClient: float64(coldBytes) / float64(clients) / 1e3,
		ColdChunks:      coldChunks,
		ColdP50MS:       percentile(cold, 50).Seconds() * 1e3,
		ColdP99MS:       percentile(cold, 99).Seconds() * 1e3,
		WarmKBPerClient: float64(warmBytes) / float64(clients) / 1e3,
		WarmChunks:      warmChunks,
		WarmCacheHits:   warmHits,
		WarmP50MS:       percentile(warm, 50).Seconds() * 1e3,
		WarmP99MS:       percentile(warm, 99).Seconds() * 1e3,
		WarmRatio:       float64(warmBytes) / float64(clients) / full,
		ChaosFaults:     chaosFaults,
		ChaosResumes:    sum(chaosFleet, server.MetricPullResumes),
		ChaosRetries:    sum(chaosFleet, server.MetricClientRetries),
		Fallbacks:       sum(fleet, server.MetricPullFallbacks) + sum(chaosFleet, server.MetricPullFallbacks),
	}
	return out, nil
}

// Table renders the pull scenario.
func (p *Pull) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Registry pull: %d clients, %d models x %.1f KB (%.1f KB full set), %.1f%% mutated between pulls\n",
		p.Clients, p.Models, p.PerModelKB, p.FullSetKB, p.MutatedPct)
	fmt.Fprintf(&b, "%-8s%16s%14s%12s%12s\n", "phase", "KB/client", "chunks", "p50 ms", "p99 ms")
	fmt.Fprintf(&b, "%-8s%16.1f%14d%12.3f%12.3f\n", "cold", p.ColdKBPerClient, p.ColdChunks, p.ColdP50MS, p.ColdP99MS)
	fmt.Fprintf(&b, "%-8s%16.1f%14d%12.3f%12.3f\n", "warm", p.WarmKBPerClient, p.WarmChunks, p.WarmP50MS, p.WarmP99MS)
	fmt.Fprintf(&b, "warm re-pull moved %.1f%% of full-set bytes (%d cache hits); fallbacks %d\n",
		100*p.WarmRatio, p.WarmCacheHits, p.Fallbacks)
	fmt.Fprintf(&b, "chaos: %d clients, %d faults injected, %d mid-chunk resumes, %d retries, all recoveries byte-identical\n",
		p.ChaosClients, p.ChaosFaults, p.ChaosResumes, p.ChaosRetries)
	return b.String()
}
