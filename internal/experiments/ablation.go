package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// This file ablates the design choices DESIGN.md calls out: the Update
// approach's snapshot interval, hash granularity, and diff compression,
// and the single-blob parameter layout behind optimizations O1/O3.

// SnapshotAblation reports, per snapshot interval, the total storage of
// the whole scenario and the TTR of the *last* set — the
// storage/recreation trade-off of Bhattacherjee et al. that the paper
// discusses in §2.2.
type SnapshotAblation struct {
	Intervals      []int
	TotalStorageMB []float64
	LastSetTTR     []time.Duration
	LastChainDepth []int
}

// RunSnapshotAblation runs the Update approach at several snapshot
// intervals (0 = never snapshot, the paper's configuration).
func RunSnapshotAblation(o Options, intervals []int) (*SnapshotAblation, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	out := &SnapshotAblation{Intervals: intervals}
	for _, interval := range intervals {
		clock := &latency.Clock{}
		st := core.Stores{
			Docs:     docstore.New(backend.NewMem(), o.Setup.Doc, clock),
			Blobs:    blobstore.New(backend.NewMem(), o.Setup.Blob, clock),
			Datasets: tr.registry,
		}
		u := core.NewUpdate(st)
		u.SnapshotInterval = interval

		var total int64
		base := ""
		var lastID string
		for i, state := range tr.states {
			req := core.SaveRequest{Set: state, Base: base}
			if i > 0 {
				req.Updates = tr.updates[i-1]
			}
			res, err := u.SaveContext(context.Background(), req)
			if err != nil {
				return nil, fmt.Errorf("snapshot interval %d: %w", interval, err)
			}
			total += res.BytesWritten
			base = res.SetID
			lastID = res.SetID
		}
		depth, err := u.ChainDepth(lastID)
		if err != nil {
			return nil, err
		}
		var ds []time.Duration
		runs := o.Runs
		if runs <= 0 {
			runs = 1
		}
		for r := 0; r < runs; r++ {
			sw := latency.StartStopwatch(clock)
			if _, err := u.RecoverContext(context.Background(), lastID); err != nil {
				return nil, fmt.Errorf("snapshot interval %d: %w", interval, err)
			}
			ds = append(ds, sw.Elapsed())
		}
		out.TotalStorageMB = append(out.TotalStorageMB, float64(total)/1e6)
		out.LastSetTTR = append(out.LastSetTTR, median(ds))
		out.LastChainDepth = append(out.LastChainDepth, depth)
	}
	return out, nil
}

// Table renders the snapshot ablation.
func (a *SnapshotAblation) Table() string {
	var b strings.Builder
	b.WriteString("Update snapshot-interval ablation (storage vs recovery of the last set)\n")
	fmt.Fprintf(&b, "%-10s%14s%14s%12s\n", "interval", "storage MB", "last TTR s", "chain depth")
	for i, k := range a.Intervals {
		label := fmt.Sprint(k)
		if k == 0 {
			label = "never"
		}
		fmt.Fprintf(&b, "%-10s%14.3f%14.4f%12d\n",
			label, a.TotalStorageMB[i], a.LastSetTTR[i].Seconds(), a.LastChainDepth[i])
	}
	return b.String()
}

// VariantAblation compares storage of Update variants per use case.
type VariantAblation struct {
	Variants []string
	// StorageMB[v][i] is variant v's bytes for use case i.
	StorageMB [][]float64
	UseCases  []string
}

// RunUpdateVariantAblation compares the paper's per-layer Update
// against model-granularity hashing and codec-compressed diffs (zlib
// and the tensor-tuned tlz, selected via core.WithCodec).
func RunUpdateVariantAblation(o Options) (*VariantAblation, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name      string
		opts      []core.Option
		configure func(*core.Update)
	}{
		{"layer-granularity (paper)", nil, nil},
		{"model-granularity", nil, func(u *core.Update) { u.ModelGranularity = true }},
		{"layer + zlib diffs", []core.Option{core.WithCodec("zlib")}, nil},
		{"layer + tlz diffs", []core.Option{core.WithCodec("tlz")}, nil},
		{"layer + xor-delta + zlib", []core.Option{core.WithCodec("zlib")},
			func(u *core.Update) { u.DeltaEncoding = true }},
		{"layer + xor-delta + tlz", []core.Option{core.WithCodec("tlz")},
			func(u *core.Update) { u.DeltaEncoding = true }},
	}
	out := &VariantAblation{}
	for i := 0; i <= o.Cycles; i++ {
		if i == 0 {
			out.UseCases = append(out.UseCases, "U1")
		} else {
			out.UseCases = append(out.UseCases, fmt.Sprintf("U3-%d", i))
		}
	}
	for _, v := range variants {
		st := core.Stores{
			Docs:     docstore.NewMem(),
			Blobs:    blobstore.NewMem(),
			Datasets: tr.registry,
		}
		u := core.NewUpdate(st, v.opts...)
		if v.configure != nil {
			v.configure(u)
		}
		var row []float64
		base := ""
		for i, state := range tr.states {
			req := core.SaveRequest{Set: state, Base: base}
			if i > 0 {
				req.Updates = tr.updates[i-1]
			}
			res, err := u.SaveContext(context.Background(), req)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.name, err)
			}
			row = append(row, float64(res.BytesWritten)/1e6)
			base = res.SetID
		}
		out.Variants = append(out.Variants, v.name)
		out.StorageMB = append(out.StorageMB, row)
	}
	return out, nil
}

// Table renders the variant ablation.
func (a *VariantAblation) Table() string {
	var b strings.Builder
	b.WriteString("Update variant ablation (storage MB per use case)\n")
	fmt.Fprintf(&b, "%-28s", "variant")
	for _, uc := range a.UseCases {
		fmt.Fprintf(&b, "%10s", uc)
	}
	b.WriteByte('\n')
	for i, v := range a.Variants {
		fmt.Fprintf(&b, "%-28s", v)
		for _, mb := range a.StorageMB[i] {
			fmt.Fprintf(&b, "%10.3f", mb)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BlobLayoutAblation quantifies optimization O1/O3 directly: store
// write operations and bytes for one full save under the per-model
// layout (MMlib-base) versus the single-blob layout (Baseline).
type BlobLayoutAblation struct {
	PerModelOps, SingleBlobOps     int64
	PerModelBytes, SingleBlobBytes int64
}

// RunBlobLayoutAblation measures both layouts on the same U1 set.
func RunBlobLayoutAblation(o Options) (*BlobLayoutAblation, error) {
	o.Cycles = 0
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	out := &BlobLayoutAblation{}
	for _, r := range newRigs(latency.Zero(), tr.registry, o.Workers) {
		res, err := r.approach.SaveContext(context.Background(), core.SaveRequest{Set: tr.states[0], Train: tr.train})
		if err != nil {
			return nil, err
		}
		switch r.name {
		case "MMlib-base":
			out.PerModelOps, out.PerModelBytes = res.WriteOps, res.BytesWritten
		case "Baseline":
			out.SingleBlobOps, out.SingleBlobBytes = res.WriteOps, res.BytesWritten
		}
	}
	return out, nil
}

// Table renders the blob-layout ablation.
func (a *BlobLayoutAblation) Table() string {
	return fmt.Sprintf(`Parameter blob layout ablation (one full save)
%-24s%12s%14s
%-24s%12d%14.3f
%-24s%12d%14.3f
`,
		"layout", "write ops", "MB written",
		"per-model (MMlib)", a.PerModelOps, float64(a.PerModelBytes)/1e6,
		"single blob (Baseline)", a.SingleBlobOps, float64(a.SingleBlobBytes)/1e6)
}
