package experiments

import (
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/latency"
)

func TestRunAccidentRecovery(t *testing.T) {
	o := timingOptions()
	o.Setup = latency.M1()
	o.Runs = 3
	a, err := RunAccidentRecovery(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ApproachOrder {
		// Selective recovery must read far less than full recovery...
		if !(a.PartialMBRead[name] < a.FullMBRead[name]/4) {
			t.Errorf("%s: partial read %.3f MB not ≪ full read %.3f MB",
				name, a.PartialMBRead[name], a.FullMBRead[name])
		}
		// ...and be faster.
		if !(a.PartialTTR[name] < a.FullTTR[name]) {
			t.Errorf("%s: partial TTR %v not below full TTR %v",
				name, a.PartialTTR[name], a.FullTTR[name])
		}
	}
	// MMlib-base's full recovery is the slowest; its partial recovery
	// is competitive (the per-model layout's one upside).
	if !(a.PartialTTR["MMlib-base"] < a.FullTTR["MMlib-base"]/10) {
		t.Errorf("MMlib-base selective recovery (%v) should be ≪ its full recovery (%v)",
			a.PartialTTR["MMlib-base"], a.FullTTR["MMlib-base"])
	}
	if !strings.Contains(a.Table(), "partial") {
		t.Error("table incomplete")
	}
}

func TestRunAccidentRecoveryValidation(t *testing.T) {
	o := testOptions()
	if _, err := RunAccidentRecovery(o, 0); err == nil {
		t.Error("zero selection accepted")
	}
	if _, err := RunAccidentRecovery(o, o.NumModels+1); err == nil {
		t.Error("oversized selection accepted")
	}
}
