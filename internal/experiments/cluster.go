package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"github.com/mmm-go/mmm/internal/cluster"
	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/netchaos"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/server"
)

// Cluster reports the replicated-cluster drill: a 3-node ring at R=2
// behind the stateless router, a save wave, a node killed mid
// recover-wave, quorum-failed saves retried after the membership fix,
// and the two rebalances (departure, rejoin) with their wire
// accounting — the rejoin one must move only the chunk bytes the
// returning node is actually missing.
type Cluster struct {
	Nodes        int `json:"nodes"`
	Replicas     int `json:"replicas"`
	Sets         int `json:"sets"`
	ModelsPerSet int `json:"models_per_set"`

	// Save wave through the router: every set must land on exactly R
	// members.
	SaveWaveSeconds  float64 `json:"save_wave_seconds"`
	ReplicationExact bool    `json:"replication_exact"`

	// Node kill mid recover-wave.
	KilledNode          string  `json:"killed_node"`
	RecoveredBeforeKill int     `json:"recovered_before_kill"`
	RecoveredAfterKill  int     `json:"recovered_after_kill"`
	RecoveryIdentical   bool    `json:"recovery_identical"`
	ReadFailovers       int64   `json:"read_failovers"`
	RecoverWaveSeconds  float64 `json:"recover_wave_seconds"`

	// Saves attempted during the outage: with an owner dead, some miss
	// quorum; after the dead member is removed they must all succeed on
	// retry (same idempotency key — exactly-once).
	OutageSaves         int `json:"outage_saves"`
	OutageQuorumMisses  int `json:"outage_quorum_misses"`
	OutageRetriesOK     int `json:"outage_retries_ok"`

	// Departure rebalance: the survivors re-establish R=2.
	DepartureSynced       int   `json:"departure_synced"`
	DepartureBytesFetched int64 `json:"departure_bytes_fetched"`

	// Rejoin rebalance: the node returns with its store intact, owing
	// only sets saved while it was away — and those share most chunks
	// with bases it already holds, so the wire delta is small.
	RejoinSynced         int     `json:"rejoin_synced"`
	RejoinChunkCacheHits int64   `json:"rejoin_chunk_cache_hits"`
	RejoinBytesFetched   int64   `json:"rejoin_bytes_fetched"`
	RejoinDeltaRatio     float64 `json:"rejoin_delta_ratio"`

	// Steady state after the full cycle.
	ConvergedNoMoves bool `json:"converged_no_moves"`
	FsckCleanAll     bool `json:"fsck_clean_all"`
	FinalIdentical   bool `json:"final_identical"`
}

// clusterNode is one in-process mmserve node behind a NodeGate.
type clusterNode struct {
	name   string
	url    string
	stores core.Stores
	api    *server.Server
	gate   *netchaos.NodeGate
	hs     *http.Server
	client *server.Client
}

func startClusterNode(name string, stores core.Stores) (*clusterNode, error) {
	api := server.NewWithConfig(stores, obs.New(), server.Config{Dedup: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	gate := netchaos.NewNodeGate(ln)
	hs := &http.Server{Handler: api}
	go func() { _ = hs.Serve(gate) }()
	url := "http://" + ln.Addr().String()
	return &clusterNode{
		name: name, url: url, stores: stores, api: api, gate: gate, hs: hs,
		client: &server.Client{BaseURL: url},
	}, nil
}

func (n *clusterNode) stop() { _ = n.hs.Close() }

// restart brings a killed node back on a fresh listener over the same
// stores — the cluster-test model of a process restart on surviving
// disks.
func (n *clusterNode) restart() error {
	_ = n.hs.Close()
	fresh, err := startClusterNode(n.name, n.stores)
	if err != nil {
		return err
	}
	*n = *fresh
	return nil
}

// RunCluster runs the cluster drill end to end. The returned report
// is self-auditing: RecoveryIdentical and FinalIdentical are the
// byte-identity guarantees, RejoinDeltaRatio the wire-efficiency one.
func RunCluster(o Options) (*Cluster, error) {
	ctx := context.Background()
	archName := o.ArchName
	if archName == "" {
		archName = "FFNN-48"
	}
	arch, err := nn.ByName(archName)
	if err != nil {
		return nil, err
	}
	models := o.NumModels
	if models <= 0 || models > 64 {
		models = 8
	}
	seed := o.Seed
	if seed == 0 {
		seed = 2023
	}
	const sets = 12

	// Three nodes, a router at R=2, preflight clean.
	nodes := make([]*clusterNode, 0, 3)
	for i := 0; i < 3; i++ {
		n, err := startClusterNode(fmt.Sprintf("node-%c", 'a'+i), core.NewMemStores())
		if err != nil {
			return nil, err
		}
		defer n.stop()
		nodes = append(nodes, n)
	}
	reg := obs.New()
	rt := cluster.NewRouter(reg, cluster.RouterConfig{Replicas: 2})
	for _, n := range nodes {
		if err := rt.AddMember(n.name, n.url); err != nil {
			return nil, err
		}
	}
	if _, err := rt.CheckMembers(ctx); err != nil {
		return nil, fmt.Errorf("version preflight: %w", err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()
	// Failover is the router's job, not the client's — a tight retry
	// policy keeps the deliberate quorum misses from stretching the
	// drill by minutes of client backoff.
	router := &server.Client{BaseURL: ts.URL, Retry: &server.RetryPolicy{
		MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	}}

	out := &Cluster{Nodes: 3, Replicas: 2, Sets: sets, ModelsPerSet: models}

	// Save wave.
	truth := map[string]*core.ModelSet{}
	var order []string
	saveStart := time.Now()
	for i := 0; i < sets; i++ {
		set, err := core.NewModelSet(arch, models, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		res, err := router.Save(ctx, "baseline", set, "", nil, nil)
		if err != nil {
			return nil, fmt.Errorf("save wave set %d: %w", i, err)
		}
		truth[res.SetID] = set
		order = append(order, res.SetID)
	}
	out.SaveWaveSeconds = time.Since(saveStart).Seconds()

	// Replication invariant before any fault.
	holders := func(setID string) ([]string, error) {
		var hs []string
		for _, n := range nodes {
			if !rt.Table().Usable(n.name) {
				continue
			}
			ids, err := n.client.List(ctx, "baseline")
			if err != nil {
				return nil, fmt.Errorf("listing %s: %w", n.name, err)
			}
			for _, id := range ids {
				if id == setID {
					hs = append(hs, n.name)
				}
			}
		}
		return hs, nil
	}
	out.ReplicationExact = true
	for id := range truth {
		hs, err := holders(id)
		if err != nil {
			return nil, err
		}
		if len(hs) != 2 {
			out.ReplicationExact = false
		}
	}

	// Recover wave; kill node-b halfway through.
	victim := nodes[1]
	out.KilledNode = victim.name
	out.RecoveryIdentical = true
	recoverStart := time.Now()
	for i, id := range order {
		if i == len(order)/2 {
			victim.gate.Kill()
			rt.Probe(ctx)
		}
		got, err := router.Recover(ctx, "baseline", id)
		if err != nil {
			return nil, fmt.Errorf("recover %s (node %s dead: %v): %w",
				id, victim.name, i >= len(order)/2, err)
		}
		if !got.Equal(truth[id]) {
			out.RecoveryIdentical = false
		}
		if i < len(order)/2 {
			out.RecoveredBeforeKill++
		} else {
			out.RecoveredAfterKill++
		}
	}
	out.RecoverWaveSeconds = time.Since(recoverStart).Seconds()
	out.ReadFailovers = reg.Counter(cluster.MetricRouterFailovers).Value()

	// Saves during the outage: keep each save's idempotency key so the
	// retry after the membership fix is exactly-once.
	type pending struct {
		key string
		set *core.ModelSet
	}
	var failed []pending
	for i := 0; i < 6; i++ {
		set, err := core.NewModelSet(arch, models, seed+1000+uint64(i))
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("outage-save-%d", i)
		out.OutageSaves++
		res, err := router.SaveWithKey(ctx, "baseline", key, set, "", nil, nil)
		if err != nil {
			out.OutageQuorumMisses++
			failed = append(failed, pending{key, set})
			continue
		}
		truth[res.SetID] = set
	}

	// Operator removes the dead member; the failed saves retry clean.
	rt.Table().Remove(victim.name)
	for _, p := range failed {
		res, err := router.SaveWithKey(ctx, "baseline", p.key, p.set, "", nil, nil)
		if err != nil {
			return nil, fmt.Errorf("retrying save %s after membership fix: %w", p.key, err)
		}
		truth[res.SetID] = p.set
		out.OutageRetriesOK++
	}

	// Departure rebalance: survivors re-establish R=2.
	rep1, err := rt.Rebalance(ctx)
	if err != nil {
		return nil, fmt.Errorf("departure rebalance: %w", err)
	}
	if rep1.Unplaceable > 0 || len(rep1.Errors) > 0 {
		return nil, fmt.Errorf("departure rebalance incomplete: %+v", rep1)
	}
	out.DepartureSynced = rep1.Synced
	out.DepartureBytesFetched = rep1.BytesFetched

	// While node-b is away: derived siblings of the original wave.
	// Lineage co-location pins each next to its base, and the content
	// overlap is what makes the rejoin delta small.
	for i, baseID := range order {
		sib := truth[baseID].Clone()
		raw := sib.Models[0].AppendParamBytes(nil)
		raw[0] ^= byte(i + 1)
		if _, err := sib.Models[0].SetParamBytes(raw); err != nil {
			return nil, err
		}
		res, err := router.Save(ctx, "baseline", sib, baseID, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("sibling save %d: %w", i, err)
		}
		truth[res.SetID] = sib
	}

	// node-b restarts on its surviving store and rejoins.
	if err := victim.restart(); err != nil {
		return nil, err
	}
	defer victim.stop()
	if err := rt.AddMember(victim.name, victim.url); err != nil {
		return nil, err
	}
	rt.Probe(ctx)
	rep2, err := rt.Rebalance(ctx)
	if err != nil {
		return nil, fmt.Errorf("rejoin rebalance: %w", err)
	}
	if rep2.Unplaceable > 0 || len(rep2.Errors) > 0 {
		return nil, fmt.Errorf("rejoin rebalance incomplete: %+v", rep2)
	}
	out.RejoinSynced = rep2.Synced
	out.RejoinChunkCacheHits = rep2.ChunkCacheHits
	out.RejoinBytesFetched = rep2.BytesFetched
	if rep1.BytesFetched > 0 {
		out.RejoinDeltaRatio = float64(rep2.BytesFetched) / float64(rep1.BytesFetched)
	}

	// Steady state: a further pass moves nothing.
	rep3, err := rt.Rebalance(ctx)
	if err != nil {
		return nil, err
	}
	out.ConvergedNoMoves = rep3.Synced == 0 && rep3.BytesFetched == 0

	// Final audit: everything byte-identical through the router, every
	// node fsck-clean.
	out.FinalIdentical = true
	for id, want := range truth {
		got, err := router.Recover(ctx, "baseline", id)
		if err != nil {
			return nil, fmt.Errorf("final recover %s: %w", id, err)
		}
		if !got.Equal(want) {
			out.FinalIdentical = false
		}
	}
	out.FsckCleanAll = true
	for _, n := range nodes {
		fr, err := n.client.Fsck(ctx, false)
		if err != nil {
			return nil, fmt.Errorf("fsck %s: %w", n.name, err)
		}
		if !fr.Clean() {
			out.FsckCleanAll = false
		}
	}
	return out, nil
}

// Table renders the cluster drill.
func (c *Cluster) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster: %d nodes, R=%d, %d sets x %d models through the router\n",
		c.Nodes, c.Replicas, c.Sets, c.ModelsPerSet)
	fmt.Fprintf(&b, "save wave %.2fs, every set on exactly R nodes: %v\n",
		c.SaveWaveSeconds, c.ReplicationExact)
	fmt.Fprintf(&b, "%s killed mid recover-wave: %d before + %d after all recovered, byte-identical %v (%d read failovers, %.2fs)\n",
		c.KilledNode, c.RecoveredBeforeKill, c.RecoveredAfterKill, c.RecoveryIdentical, c.ReadFailovers, c.RecoverWaveSeconds)
	fmt.Fprintf(&b, "outage saves: %d attempted, %d missed quorum, %d retried OK after membership fix\n",
		c.OutageSaves, c.OutageQuorumMisses, c.OutageRetriesOK)
	fmt.Fprintf(&b, "departure rebalance: %d sets synced, %.1f KB fetched\n",
		c.DepartureSynced, float64(c.DepartureBytesFetched)/1e3)
	fmt.Fprintf(&b, "rejoin rebalance: %d sets synced, %d chunk cache hits, %.1f KB fetched (%.1f%% of departure bytes)\n",
		c.RejoinSynced, c.RejoinChunkCacheHits, float64(c.RejoinBytesFetched)/1e3, c.RejoinDeltaRatio*100)
	fmt.Fprintf(&b, "converged (no further moves) %v, fsck clean on all nodes %v, final byte-identity %v\n",
		c.ConvergedNoMoves, c.FsckCleanAll, c.FinalIdentical)
	return b.String()
}
