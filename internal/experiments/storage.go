package experiments

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/nn"
)

// RunStorage reproduces Figure 3: storage consumption per use case for
// all four approaches, in MB. Variations of the paper's §4.2 (update
// rates, FFNN-69, CIFAR) are the same runner with different Options.
func RunStorage(o Options) (*Series, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Storage consumption per use case (%s, n=%d, %g%%+%g%% updates)",
		o.ArchName, o.NumModels, o.FullRate*100, o.PartialRate*100)
	s := newSeries(title, "MB", o.Cycles)
	for _, r := range newRigs(o.Setup, tr.registry, o.Workers) {
		results, _, err := saveAll(r, tr)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			s.Values[r.name][i] = float64(res.BytesWritten) / 1e6
		}
	}
	return s, nil
}

// RateSweepResult holds RunStorageRateSweep's per-rate series.
type RateSweepResult struct {
	Rates  []float64
	Series []*Series
}

// RunStorageRateSweep reproduces the §4.2 update-rate variation: the
// storage experiment at total update rates of 10%, 20%, and 30%
// (half full, half partial, like the paper).
func RunStorageRateSweep(o Options, rates []float64) (*RateSweepResult, error) {
	out := &RateSweepResult{Rates: rates}
	for _, rate := range rates {
		ro := o
		ro.FullRate = rate / 2
		ro.PartialRate = rate / 2
		s, err := RunStorage(ro)
		if err != nil {
			return nil, fmt.Errorf("rate %.0f%%: %w", rate*100, err)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// SizeComparison reports how each approach's derived-save storage
// scales when the model grows, as the §4.2 model-size variation does:
// MMlib-base ≈1.7× (fixed metadata dampens the growth), Baseline and
// Update ≈2.0× (pure parameter payload), Provenance ≈1.0× (parameter-
// count independent).
type SizeComparison struct {
	SmallArch, LargeArch string
	ParamRatio           float64
	Small, Large         *Series
	// U1Ratio and U3Ratio are per-approach storage ratios large/small
	// at U1 and at the last U3.
	U1Ratio map[string]float64
	U3Ratio map[string]float64
}

// RunStorageSizeComparison runs the storage experiment for two
// architectures and reports the per-approach scaling ratios.
func RunStorageSizeComparison(o Options, smallArch, largeArch string) (*SizeComparison, error) {
	small := o
	small.ArchName = smallArch
	large := o
	large.ArchName = largeArch

	sSmall, err := RunStorage(small)
	if err != nil {
		return nil, err
	}
	sLarge, err := RunStorage(large)
	if err != nil {
		return nil, err
	}
	aSmall, err := nn.ByName(smallArch)
	if err != nil {
		return nil, err
	}
	aLarge, err := nn.ByName(largeArch)
	if err != nil {
		return nil, err
	}
	cmp := &SizeComparison{
		SmallArch: smallArch, LargeArch: largeArch,
		ParamRatio: float64(aLarge.ParamCount()) / float64(aSmall.ParamCount()),
		Small:      sSmall, Large: sLarge,
		U1Ratio: map[string]float64{}, U3Ratio: map[string]float64{},
	}
	last := len(sSmall.UseCases) - 1
	for _, a := range ApproachOrder {
		cmp.U1Ratio[a] = sLarge.Value(a, 0) / sSmall.Value(a, 0)
		cmp.U3Ratio[a] = sLarge.Value(a, last) / sSmall.Value(a, last)
	}
	return cmp, nil
}

// OverheadReport quantifies the §4.2 U1 claim: Baseline and Provenance
// undercut MMlib-base by ~29% because they save metadata, architecture,
// keys, code, and environment once instead of per model.
type OverheadReport struct {
	ParamPayloadMB   float64
	U1MB             map[string]float64
	SavingVsMMlibPct map[string]float64
}

// RunStorageOverhead measures the U1 storage of every approach against
// the raw parameter payload.
func RunStorageOverhead(o Options) (*OverheadReport, error) {
	o.Cycles = 1 // U1 plus one derived save is enough
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	arch, err := nn.ByName(o.ArchName)
	if err != nil {
		return nil, err
	}
	rep := &OverheadReport{
		ParamPayloadMB:   float64(arch.ParamBytes()) * float64(o.NumModels) / 1e6,
		U1MB:             map[string]float64{},
		SavingVsMMlibPct: map[string]float64{},
	}
	for _, r := range newRigs(o.Setup, tr.registry, o.Workers) {
		results, _, err := saveAll(r, tr)
		if err != nil {
			return nil, err
		}
		rep.U1MB[r.name] = float64(results[0].BytesWritten) / 1e6
	}
	mmlib := rep.U1MB["MMlib-base"]
	for name, mb := range rep.U1MB {
		rep.SavingVsMMlibPct[name] = 100 * (1 - mb/mmlib)
	}
	return rep, nil
}
