package experiments

import (
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/codec"
)

func TestRunCompression(t *testing.T) {
	o := testOptions()
	c, err := RunCompression(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != len(CompressionCodecs) {
		t.Fatalf("got %d rows, want %d", len(c.Rows), len(CompressionCodecs))
	}
	var none, tlz *CompressionRow
	for i := range c.Rows {
		r := &c.Rows[i]
		if r.TotalMB <= 0 || r.SaveWall <= 0 || r.RecoverWall <= 0 {
			t.Errorf("row %s has non-positive measurements: %+v", r.Codec, r)
		}
		switch r.Codec {
		case codec.NoneID:
			none = r
		case codec.TLZID:
			tlz = r
		}
	}
	if none == nil || tlz == nil {
		t.Fatal("missing none or tlz row")
	}
	// Trained diffs are dense float32 churn; tlz must not *expand*
	// them (keep-if-smaller bounds it at the raw size).
	if tlz.DerivedMB > none.DerivedMB {
		t.Errorf("tlz derived bytes %.4f MB exceed raw %.4f MB", tlz.DerivedMB, none.DerivedMB)
	}
	if len(c.Pipeline) == 0 {
		t.Fatal("no pipeline measurements")
	}
	for _, p := range c.Pipeline {
		if p.Workers < 8 || p.SerialMS <= 0 || p.ParallelMS <= 0 || p.Speedup <= 0 {
			t.Errorf("pipeline row %+v has degenerate measurements", p)
		}
		if p.Store == "" {
			t.Errorf("pipeline row %s does not name its paced store", p.Codec)
		}
		// The paced store sleeps real per-write latency, so fanning the
		// encode+write tasks across 8 workers must overlap it even on a
		// single-CPU host. Allow slack for scheduler noise on tiny test
		// blobs; the bench artifact is the authoritative measurement.
		if p.Speedup < 1.05 {
			t.Errorf("pipeline row %s: speedup %.2fx shows no overlap from 8 workers",
				p.Codec, p.Speedup)
		}
	}
	table := c.Table()
	for _, want := range []string{"tlz", "zlib", "speedup"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
