package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/mmm-go/mmm/internal/codec"
	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// CompressionRow is one codec's storage and real wall-clock cost for
// the Update approach over the full battery-fleet trace.
type CompressionRow struct {
	// Codec is the codec ID ("none" is the uncompressed reference).
	Codec string `json:"codec"`
	// TotalMB is the trace's total BytesWritten (U1 + all U3 saves).
	TotalMB float64 `json:"total_mb"`
	// DerivedMB is the U3 saves alone — the diff blobs compression
	// actually targets (U1 stays raw in non-dedup mode by design).
	DerivedMB float64 `json:"derived_mb"`
	// SavedVsNonePct is the derived-bytes reduction against "none".
	SavedVsNonePct float64 `json:"saved_vs_none_pct"`
	// SaveWall is the median real wall-clock for replaying every save
	// of the trace (TTS, all use cases).
	SaveWall time.Duration `json:"save_wall_ns"`
	// RecoverWall is the median real wall-clock for recovering the
	// last derived set through its whole chain (TTR).
	RecoverWall time.Duration `json:"recover_wall_ns"`
}

// ChunkPipeline reports how the dedup chunk-encode path scales across
// the worker pool for one large parameter blob. The store is a memory
// backend paced to the paper's M1 SSD cost model with *real* slept
// per-operation and per-byte latency, so the measurement captures what
// the fan-out actually buys: overlapping one chunk's compression with
// another chunk's store write, which holds even when the host has a
// single CPU and the compression itself cannot parallelize.
type ChunkPipeline struct {
	Codec string `json:"codec"`
	// Store names the backend pacing, e.g. "mem+m1-ssd-pacing".
	Store      string  `json:"store"`
	BlobMB     float64 `json:"blob_mb"`
	Workers    int     `json:"workers"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// Compression is the result of RunCompression: the per-codec
// storage/TTS/TTR table and the chunk-pipeline scaling measurement.
type Compression struct {
	Rows     []CompressionRow `json:"rows"`
	Pipeline []ChunkPipeline  `json:"pipeline"`
}

// CompressionCodecs is the codec order RunCompression measures; "none"
// first so every row has its uncompressed reference.
var CompressionCodecs = []string{codec.NoneID, codec.ZlibID, codec.TLZID}

// RunCompression replays the battery-fleet trace through the Update
// approach once per codec and reports, per codec, the storage written
// and the real (not latency-modeled) wall-clock save and recover
// times; timings are medians over o.Runs replays into fresh stores.
// It then measures the dedup chunk-encode pipeline directly: one U1
// parameter blob pushed through cas.PutEncoded at 1 worker versus
// o.Workers (at least 8) workers, against a store paced to the M1 SSD
// cost model with real slept latency.
func RunCompression(o Options) (*Compression, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	out := &Compression{}
	var noneDerived float64
	for _, id := range CompressionCodecs {
		var results []core.SaveResult
		var saveDs, recoverDs []time.Duration
		for r := 0; r < runs; r++ {
			rig := newRig(o.Setup, tr.registry, o.Workers, "Update", false,
				core.WithCodec(id))
			start := time.Now()
			res, ids, err := saveAll(rig, tr)
			saveDs = append(saveDs, time.Since(start))
			if err != nil {
				return nil, fmt.Errorf("codec %s: %w", id, err)
			}
			last := ids[len(ids)-1]
			start = time.Now()
			set, err := rig.approach.RecoverContext(context.Background(), last)
			recoverDs = append(recoverDs, time.Since(start))
			if err != nil {
				return nil, fmt.Errorf("codec %s: recovering %s: %w", id, last, err)
			}
			if !set.Equal(tr.states[len(tr.states)-1]) {
				return nil, fmt.Errorf("codec %s: recovered set differs from saved state", id)
			}
			results = res
		}
		row := CompressionRow{Codec: id,
			SaveWall: median(saveDs), RecoverWall: median(recoverDs)}
		for i, res := range results {
			row.TotalMB += float64(res.BytesWritten) / 1e6
			if i > 0 {
				row.DerivedMB += float64(res.BytesWritten) / 1e6
			}
		}
		if id == codec.NoneID {
			noneDerived = row.DerivedMB
		} else if noneDerived > 0 {
			row.SavedVsNonePct = 100 * (1 - row.DerivedMB/noneDerived)
		}
		out.Rows = append(out.Rows, row)
	}

	// Chunk-pipeline scaling: the U1 parameter concatenation is the
	// largest blob the workload writes; push it through the CAS encode
	// path serially and fanned out, into fresh stores so no run dedups
	// against another's chunks. Each store's backend sleeps the M1 SSD
	// cost per write (latency.Pace), so the fan-out's win — encoding
	// chunk i while chunk j's write is in flight — shows up as real
	// wall-clock speedup regardless of the host's CPU count.
	set := tr.states[0]
	perModel := set.Arch.ParamBytes()
	blob := make([]byte, 0, perModel*set.Len())
	for _, m := range set.Models {
		blob = m.AppendParamBytes(blob)
	}
	workers := o.Workers
	if workers < 8 {
		workers = 8
	}
	for _, id := range CompressionCodecs[1:] { // encoding work only
		c, err := codec.Lookup(id)
		if err != nil {
			return nil, err
		}
		timeAt := func(w int) (time.Duration, error) {
			var ds []time.Duration
			for r := 0; r < runs; r++ {
				bs := blobstore.New(latency.Pace(backend.NewMem(), latency.M1().Blob),
					latency.CostModel{}, nil)
				start := time.Now()
				_, err := cas.For(bs).PutEncoded("bench/params.bin", blob, 0,
					cas.Hints{Stride: perModel}, cas.Encoding{Codec: c, Workers: w}, nil)
				ds = append(ds, time.Since(start))
				if err != nil {
					return 0, fmt.Errorf("codec %s at %d workers: %w", id, w, err)
				}
			}
			return median(ds), nil
		}
		serial, err := timeAt(1)
		if err != nil {
			return nil, err
		}
		parallel, err := timeAt(workers)
		if err != nil {
			return nil, err
		}
		p := ChunkPipeline{Codec: id, Store: "mem+m1-ssd-pacing",
			BlobMB:  float64(len(blob)) / 1e6,
			Workers: workers, SerialMS: serial.Seconds() * 1e3,
			ParallelMS: parallel.Seconds() * 1e3}
		if parallel > 0 {
			p.Speedup = float64(serial) / float64(parallel)
		}
		out.Pipeline = append(out.Pipeline, p)
	}
	return out, nil
}

// Table renders the comparison.
func (c *Compression) Table() string {
	var b strings.Builder
	b.WriteString("Codec comparison, Update approach over the fleet trace (real wall-clock)\n")
	fmt.Fprintf(&b, "%-8s%12s%14s%10s%14s%14s\n",
		"codec", "total MB", "derived MB", "saved", "save wall", "recover wall")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-8s%12.3f%14.3f%9.1f%%%14s%14s\n",
			r.Codec, r.TotalMB, r.DerivedMB, r.SavedVsNonePct,
			r.SaveWall.Round(time.Microsecond), r.RecoverWall.Round(time.Microsecond))
	}
	b.WriteString("\nChunk-encode pipeline scaling (cas.PutEncoded, one U1 parameter blob,\nstore paced to the M1 SSD cost model with real slept latency)\n")
	fmt.Fprintf(&b, "%-8s%10s%12s%14s%14s%10s\n",
		"codec", "blob MB", "workers", "serial ms", "parallel ms", "speedup")
	for _, p := range c.Pipeline {
		fmt.Fprintf(&b, "%-8s%10.3f%12d%14.3f%14.3f%9.2fx\n",
			p.Codec, p.BlobMB, p.Workers, p.SerialMS, p.ParallelMS, p.Speedup)
	}
	return b.String()
}
