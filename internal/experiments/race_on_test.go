//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation slows compute enough to invalidate
// wall-clock shape assertions.
const raceEnabled = true
