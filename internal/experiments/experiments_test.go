package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/latency"
	"github.com/mmm-go/mmm/internal/workload"
)

// testOptions is a miniature scenario that preserves all the paper's
// relative relationships while staying fast: 60 models, 10%+10%
// updates per cycle so diffs are visible at this scale.
func testOptions() Options {
	o := DefaultOptions()
	o.NumModels = 60
	o.FullRate = 0.05
	o.PartialRate = 0.05
	o.Cycles = 3
	o.Runs = 1
	o.SamplesPerDataset = 30
	o.Setup = latency.Zero()
	return o
}

func TestRunStorageShape(t *testing.T) {
	s, err := RunStorage(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.UseCases) != 4 {
		t.Fatalf("use cases = %v", s.UseCases)
	}

	// Figure 3's qualitative claims, at reduced scale:
	for uc := 0; uc < 4; uc++ {
		if !(s.Value("MMlib-base", uc) > s.Value("Baseline", uc)) {
			t.Errorf("use case %d: MMlib-base (%.3f) not above Baseline (%.3f)",
				uc, s.Value("MMlib-base", uc), s.Value("Baseline", uc))
		}
	}
	// Baseline and MMlib-base are flat across use cases.
	for _, a := range []string{"MMlib-base", "Baseline"} {
		for uc := 1; uc < 4; uc++ {
			ratio := s.Value(a, uc) / s.Value(a, 0)
			if ratio < 0.95 || ratio > 1.05 {
				t.Errorf("%s not flat: U1 %.3f vs U3-%d %.3f", a, s.Value(a, 0), uc, s.Value(a, uc))
			}
		}
	}
	// Update and Provenance drop sharply after U1.
	for _, a := range []string{"Update", "Provenance"} {
		for uc := 1; uc < 4; uc++ {
			if !(s.Value(a, uc) < s.Value("Baseline", uc)/2) {
				t.Errorf("%s U3-%d (%.3f MB) not well below Baseline (%.3f MB)",
					a, uc, s.Value(a, uc), s.Value("Baseline", uc))
			}
		}
	}
	// Provenance's derived saves are below Update's (it saves no
	// parameters at all).
	for uc := 1; uc < 4; uc++ {
		if !(s.Value("Provenance", uc) < s.Value("Update", uc)) {
			t.Errorf("U3-%d: Provenance (%.4f) not below Update (%.4f)",
				uc, s.Value("Provenance", uc), s.Value("Update", uc))
		}
	}
	// Baseline ≈ Provenance at U1 (both use Baseline's logic); Update
	// is slightly above (hash info).
	if u1b, u1p := s.Value("Baseline", 0), s.Value("Provenance", 0); u1p < u1b*0.99 || u1p > u1b*1.01 {
		t.Errorf("U1: Provenance (%.4f) should match Baseline (%.4f)", u1p, u1b)
	}
	if !(s.Value("Update", 0) > s.Value("Baseline", 0)) {
		t.Error("U1: Update should exceed Baseline (hash info)")
	}
}

func TestRunStorageRateSweep(t *testing.T) {
	o := testOptions()
	o.Cycles = 1
	res, err := RunStorageRateSweep(o, []float64{0.10, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series", len(res.Series))
	}
	// §4.2: only Update's storage correlates with the update rate...
	low := res.Series[0].Value("Update", 1)
	high := res.Series[1].Value("Update", 1)
	if !(high > low*1.5) {
		t.Errorf("Update storage did not grow with update rate: %.4f -> %.4f", low, high)
	}
	// ...while Baseline's does not change.
	lowB := res.Series[0].Value("Baseline", 1)
	highB := res.Series[1].Value("Baseline", 1)
	if ratio := highB / lowB; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("Baseline storage changed with update rate: %.4f -> %.4f", lowB, highB)
	}
}

func TestRunStorageSizeComparison(t *testing.T) {
	o := testOptions()
	o.Cycles = 1
	cmp, err := RunStorageSizeComparison(o, "FFNN-48", "FFNN-69")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ParamRatio < 2.0 || cmp.ParamRatio > 2.02 {
		t.Fatalf("param ratio = %.3f, want ≈ 2.02", cmp.ParamRatio)
	}
	// §4.2: Baseline and Update grow ≈2.0×, MMlib-base less (its fixed
	// metadata does not scale), Provenance ≈1.0×.
	if r := cmp.U1Ratio["Baseline"]; r < 1.9 || r > 2.1 {
		t.Errorf("Baseline U1 ratio = %.3f, want ≈2.0", r)
	}
	if r := cmp.U1Ratio["MMlib-base"]; !(r < cmp.U1Ratio["Baseline"]) {
		t.Errorf("MMlib-base ratio %.3f not dampened below Baseline's %.3f",
			r, cmp.U1Ratio["Baseline"])
	}
	if r := cmp.U3Ratio["Provenance"]; r < 0.9 || r > 1.1 {
		t.Errorf("Provenance U3 ratio = %.3f, want ≈1.0", r)
	}
	if r := cmp.U3Ratio["Update"]; r < 1.5 {
		t.Errorf("Update U3 ratio = %.3f, want ≈2.0", r)
	}
}

func TestRunStorageOverhead(t *testing.T) {
	o := testOptions()
	rep, err := RunStorageOverhead(o)
	if err != nil {
		t.Fatal(err)
	}
	// §4.2: Baseline/Provenance undercut MMlib-base by a substantial
	// fraction (≈29% at n=5000 with FFNN-48; scale-independent since
	// both overheads are per model).
	if pct := rep.SavingVsMMlibPct["Baseline"]; pct < 20 || pct > 45 {
		t.Errorf("Baseline saves %.1f%% vs MMlib-base, want ≈29%%", pct)
	}
	if rep.U1MB["Baseline"] < rep.ParamPayloadMB {
		t.Error("Baseline U1 below the raw parameter payload — accounting broken")
	}
}

// timingOptions is a larger fleet for TTS/TTR shape tests: the paper's
// timing relationships only emerge once the parameter payload dominates
// fixed per-save costs (a 6 ms metadata read swamps everything at
// n=60). Perturb mode keeps it fast; storage and store traffic are
// identical to training mode (asserted by
// TestPerturbModeMatchesTrainModeStorage).
func timingOptions() Options {
	o := testOptions()
	o.NumModels = 600
	o.Mode = workload.ModePerturb
	return o
}

func TestRunTTSShape(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock shape assertions are meaningless under race-detector instrumentation")
	}
	o := timingOptions()
	o.Setup = latency.M1()
	s, err := RunTTS(o)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4: MMlib-base is far above everyone in every use case.
	for uc := 0; uc < 4; uc++ {
		for _, fast := range []string{"Baseline", "Update", "Provenance"} {
			if !(s.Value("MMlib-base", uc) > 3*s.Value(fast, uc)) {
				t.Errorf("use case %d: MMlib-base TTS (%.4f s) not ≫ %s (%.4f s)",
					uc, s.Value("MMlib-base", uc), fast, s.Value(fast, uc))
			}
		}
	}
	// Provenance's derived saves are the fastest of all (near-zero
	// payload).
	for uc := 1; uc < 4; uc++ {
		if !(s.Value("Provenance", uc) < s.Value("Baseline", uc)) {
			t.Errorf("U3-%d: Provenance TTS (%.4f) not below Baseline (%.4f)",
				uc, s.Value("Provenance", uc), s.Value("Baseline", uc))
		}
	}
}

func TestRunTTSServerFasterForMMlib(t *testing.T) {
	o := timingOptions()
	o.Cycles = 1
	o.Setup = latency.M1()
	m1, err := RunTTS(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Setup = latency.Server()
	server, err := RunTTS(o)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: "a significantly reduced TTS for MMlib-base in all use
	// cases ... faster connections to the document store on the server".
	if !(server.Value("MMlib-base", 0) < m1.Value("MMlib-base", 0)/2) {
		t.Errorf("server MMlib-base TTS (%.4f) not ≪ M1 (%.4f)",
			server.Value("MMlib-base", 0), m1.Value("MMlib-base", 0))
	}
}

func TestRunTTRShape(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock shape assertions are meaningless under race-detector instrumentation")
	}
	o := timingOptions()
	o.Setup = latency.M1()
	// Median of 3 runs, like the paper's median of 5: single-shot
	// recovery timings are dominated by one-time warmup (allocator
	// growth, dataset materialization caching) at this reduced scale.
	o.Runs = 3
	// The shape checks compare real wall-clock components, which on a
	// contended machine can be off by tens of milliseconds (GC pauses,
	// CPU stolen by parallel test binaries). Retry the whole
	// measurement a few times and require one clean pass.
	var problems []string
	for attempt := 0; attempt < 3; attempt++ {
		s, err := RunTTR(o, PaperProvenanceBudget())
		if err != nil {
			t.Fatal(err)
		}
		problems = ttrShapeProblems(s)
		if len(problems) == 0 {
			return
		}
		t.Logf("attempt %d: %v", attempt, problems)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// ttrShapeProblems checks a TTR series against Figure 5's shape and
// returns a description of every violated property.
func ttrShapeProblems(s *Series) []string {
	var problems []string
	// Figure 5: MMlib-base high and ~flat; Baseline low and ~flat.
	for uc := 0; uc < 4; uc++ {
		if !(s.Value("MMlib-base", uc) > 3*s.Value("Baseline", uc)) {
			problems = append(problems, fmt.Sprintf("use case %d: MMlib-base TTR (%.4f) not ≫ Baseline (%.4f)",
				uc, s.Value("MMlib-base", uc), s.Value("Baseline", uc)))
		}
	}
	// Update and Provenance show the staircase: TTR grows with the
	// use-case index. At this reduced scale one chain level adds ~18 ms
	// of modeled store reads while real-compute noise on a loaded
	// 1-core machine can reach several ms, so require strict growth
	// over the full staircase and near-monotonic steps (a small
	// tolerance per step).
	const stepTolerance = 0.008 // seconds
	for _, a := range []string{"Update", "Provenance"} {
		if !(s.Value(a, 3) > s.Value(a, 0)) {
			problems = append(problems, fmt.Sprintf("%s TTR staircase missing: U1 %.5f -> U3-3 %.5f",
				a, s.Value(a, 0), s.Value(a, 3)))
		}
		for uc := 1; uc < 4; uc++ {
			if s.Value(a, uc) < s.Value(a, uc-1)-stepTolerance {
				problems = append(problems, fmt.Sprintf("%s TTR decreasing beyond noise: U%d %.5f -> U%d %.5f",
					a, uc-1, s.Value(a, uc-1), uc, s.Value(a, uc)))
			}
		}
	}
	// Baseline flat: last use case within 2× of the first.
	if s.Value("Baseline", 3) > 2*s.Value("Baseline", 0)+0.001 {
		problems = append(problems, fmt.Sprintf("Baseline TTR not flat: %.4f -> %.4f",
			s.Value("Baseline", 0), s.Value("Baseline", 3)))
	}
	return problems
}

func TestRunProvenanceExtrapolation(t *testing.T) {
	o := testOptions()
	ext, err := RunProvenanceExtrapolation(o, 90000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.TTR) != o.Cycles {
		t.Fatalf("extrapolated %d cycles, want %d", len(ext.TTR), o.Cycles)
	}
	// The paper's staircase: U3-2 ≈ 2×U3-1, U3-3 ≈ 3×U3-1.
	if ext.TTR[1] != 2*ext.TTR[0] || ext.TTR[2] != 3*ext.TTR[0] {
		t.Errorf("staircase broken: %v", ext.TTR)
	}
	if ext.PerSampleStep <= 0 {
		t.Error("per-sample cost not measured")
	}
	if !strings.Contains(ext.Table(), "U3-3") {
		t.Error("extrapolation table incomplete")
	}
}

func TestSeriesTableAndCSV(t *testing.T) {
	o := testOptions()
	o.Cycles = 1
	s, err := RunStorage(o)
	if err != nil {
		t.Fatal(err)
	}
	table := s.Table()
	for _, want := range []string{"U1", "U3-1", "Baseline", "Provenance"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 approaches
		t.Fatalf("CSV has %d lines:\n%s", len(lines), buf.String())
	}
}

func TestPerturbModeMatchesTrainModeStorage(t *testing.T) {
	// The documented equivalence behind ModePerturb: storage results
	// are the same as with real training, because the same layers of
	// the same models change.
	train := testOptions()
	perturb := testOptions()
	perturb.Mode = workload.ModePerturb

	a, err := RunStorage(train)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStorage(perturb)
	if err != nil {
		t.Fatal(err)
	}
	for _, appr := range ApproachOrder {
		for uc := 0; uc < 4; uc++ {
			ratio := a.Value(appr, uc) / b.Value(appr, uc)
			if ratio < 0.99 || ratio > 1.01 {
				t.Errorf("%s use case %d: train %.5f MB vs perturb %.5f MB",
					appr, uc, a.Value(appr, uc), b.Value(appr, uc))
			}
		}
	}
}

func TestBadOptions(t *testing.T) {
	o := testOptions()
	o.ArchName = "resnet"
	if _, err := RunStorage(o); err == nil {
		t.Error("unknown architecture accepted")
	}
	o = testOptions()
	o.NumModels = 0
	if _, err := RunStorage(o); err == nil {
		t.Error("zero models accepted")
	}
}

func TestCIFARTimingSameTrends(t *testing.T) {
	// §4.3/§4.4: "Analyzing the TTS for the larger models FFNN-69 and
	// CIFAR, we find the same trends". Check the headline relations on
	// the CIFAR scenario.
	o := timingOptions()
	o.ArchName = "CIFAR"
	o.Cycles = 1
	o.Setup = latency.M1()
	s, err := RunTTS(o)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.Value("MMlib-base", 0) > 3*s.Value("Baseline", 0)) {
		t.Errorf("CIFAR: MMlib-base TTS (%.4f) not ≫ Baseline (%.4f)",
			s.Value("MMlib-base", 0), s.Value("Baseline", 0))
	}
	if !(s.Value("Provenance", 1) < s.Value("Baseline", 1)) {
		t.Errorf("CIFAR: Provenance U3 TTS (%.4f) not below Baseline (%.4f)",
			s.Value("Provenance", 1), s.Value("Baseline", 1))
	}
}
