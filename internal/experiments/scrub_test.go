package experiments

import "testing"

// RunScrub already enforces the heal contract internally (>= 3 shared
// chunks quarantined, fail-fast reads, repairs from the peer); the test
// runs a small fleet and checks the reported outcome.
func TestRunScrub(t *testing.T) {
	o := DefaultOptions()
	o.NumModels = 8
	res, err := RunScrub(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined < 3 || res.Repaired < 3 {
		t.Fatalf("quarantined %d / repaired %d, want >= 3 each", res.Quarantined, res.Repaired)
	}
	if res.FailFastSets == 0 {
		t.Fatal("no set failed fast while the store was damaged")
	}
	if !res.SetsIdentical {
		t.Fatal("sets not byte-identical after heal")
	}
	if !res.FsckCleanAfter {
		t.Fatal("fsck not clean after heal")
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}
