package experiments

import (
	"github.com/mmm-go/mmm/internal/nn"
)

// trainForMeasurement runs one training for timing purposes.
func trainForMeasurement(m *nn.Model, data nn.Data, cfg nn.TrainConfig) (nn.TrainStats, error) {
	return nn.Train(m, data, cfg)
}
