package experiments

import "testing"

func TestRunServeShape(t *testing.T) {
	// Zero-latency setup: the point here is that both phases recover
	// correct bytes and the cache actually engages, not the speedup
	// (RunServe itself asserts every request against the truth set).
	sv, err := RunServe(testOptions(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Requests != serveRequests || sv.HotModels != 16 {
		t.Fatalf("unexpected shape: %+v", sv)
	}
	if sv.CacheHits == 0 {
		t.Error("warm phase recorded no cache hits")
	}
	if sv.ColdP50MS <= 0 || sv.WarmP50MS <= 0 || sv.ColdP99MS < sv.ColdP50MS || sv.WarmP99MS < sv.WarmP50MS {
		t.Errorf("implausible percentiles: %+v", sv)
	}
	if sv.Table() == "" {
		t.Error("empty table")
	}
}
