package experiments

import "testing"

// RunCluster fails internally on any broken guarantee (unrecoverable
// set, incomplete rebalance, failed retry); the test runs the drill
// small and checks the reported invariants.
func TestRunCluster(t *testing.T) {
	o := DefaultOptions()
	o.NumModels = 6
	res, err := RunCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReplicationExact {
		t.Fatal("save wave did not place every set on exactly R nodes")
	}
	if !res.RecoveryIdentical {
		t.Fatal("recovery after node kill not byte-identical")
	}
	if res.RecoveredBeforeKill+res.RecoveredAfterKill != res.Sets {
		t.Fatalf("recover wave covered %d+%d of %d sets",
			res.RecoveredBeforeKill, res.RecoveredAfterKill, res.Sets)
	}
	if res.OutageRetriesOK != res.OutageQuorumMisses {
		t.Fatalf("%d quorum misses but %d successful retries",
			res.OutageQuorumMisses, res.OutageRetriesOK)
	}
	if res.DepartureSynced == 0 {
		t.Fatal("departure rebalance synced nothing")
	}
	if res.RejoinChunkCacheHits == 0 {
		t.Fatal("rejoin rebalance hit no local chunks — full copies, not deltas")
	}
	if !res.ConvergedNoMoves || !res.FsckCleanAll || !res.FinalIdentical {
		t.Fatalf("end state: converged=%v fsck=%v identical=%v",
			res.ConvergedNoMoves, res.FsckCleanAll, res.FinalIdentical)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}
