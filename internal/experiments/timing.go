package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// RunTTS reproduces Figure 4: the median time-to-save per use case on
// the chosen setup (Figure 4a: latency.M1, Figure 4b: latency.Server).
// Reported times are real compute time plus modeled store time.
func RunTTS(o Options) (*Series, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Median TTS per use case (%s, n=%d, %s setup)",
		o.ArchName, o.NumModels, o.Setup.Name)
	s := newSeries(title, "s", o.Cycles)

	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	// samples[approach][useCase] collects one duration per run.
	samples := map[string][][]time.Duration{}
	for _, name := range ApproachOrder {
		samples[name] = make([][]time.Duration, len(tr.states))
	}
	for run := 0; run < runs; run++ {
		// Fresh stores per run so every run saves the same state.
		for _, r := range newRigs(o.Setup, tr.registry, o.Workers) {
			base := ""
			for i, state := range tr.states {
				req := core.SaveRequest{Set: state, Base: base, Train: tr.train}
				if i > 0 {
					req.Updates = tr.updates[i-1]
				}
				sw := latency.StartStopwatch(r.clock)
				res, err := r.approach.SaveContext(context.Background(), req)
				if err != nil {
					return nil, fmt.Errorf("%s: run %d use case %d: %w", r.name, run, i, err)
				}
				samples[r.name][i] = append(samples[r.name][i], sw.Elapsed())
				base = res.SetID
			}
		}
	}
	for name, perUC := range samples {
		for i, ds := range perUC {
			s.Values[name][i] = median(ds).Seconds()
		}
	}
	return s, nil
}

// RunTTR reproduces Figure 5: the median time-to-recover per use case.
// Exactly like the paper, Provenance recovery is measured with reduced
// training ("we — exclusively for this approach — only train one model
// with reduced data per iteration. This leads to the same trends.");
// pass ProvenanceFull to measure complete retraining instead.
func RunTTR(o Options, provenanceBudget *core.RecoveryBudget) (*Series, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Median TTR per use case (%s, n=%d, %s setup)",
		o.ArchName, o.NumModels, o.Setup.Name)
	s := newSeries(title, "s", o.Cycles)

	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	for _, r := range newRigs(o.Setup, tr.registry, o.Workers) {
		_, ids, err := saveAll(r, tr)
		if err != nil {
			return nil, err
		}
		if p, ok := r.approach.(*core.Provenance); ok {
			p.RecoveryBudget = provenanceBudget
		}
		for i, id := range ids {
			var ds []time.Duration
			for run := 0; run < runs; run++ {
				sw := latency.StartStopwatch(r.clock)
				set, err := r.approach.RecoverContext(context.Background(), id)
				if err != nil {
					return nil, fmt.Errorf("%s: recovering %s: %w", r.name, id, err)
				}
				ds = append(ds, sw.Elapsed())
				if set.Len() != o.NumModels {
					return nil, fmt.Errorf("%s: recovered %d models, want %d", r.name, set.Len(), o.NumModels)
				}
			}
			s.Values[r.name][i] = median(ds).Seconds()
		}
	}
	return s, nil
}

// PaperProvenanceBudget is the reduced-training budget the paper uses
// when measuring Provenance's TTR ("only train one model with reduced
// data per iteration"). The sample/epoch caps are sized so each chain
// level's retraining stays clearly visible above measurement noise,
// like the staircase in the paper's Figure 5.
func PaperProvenanceBudget() *core.RecoveryBudget {
	return &core.RecoveryBudget{MaxUpdatesPerSet: 1, MaxSamples: 2000, MaxEpochs: 2}
}

// Extrapolation is the §4.4 intuition: the TTR of Provenance under a
// realistic training load (the paper: >90,000 samples, 10 epochs →
// ≈6 h for U3-1, ≈12 h for U3-2, ≈18 h for U3-3, a staircase).
type Extrapolation struct {
	// PerSampleStep is the measured cost of one sample's forward +
	// backward + update on this machine.
	PerSampleStep time.Duration
	// Samples and Epochs describe the realistic training load.
	Samples int
	Epochs  int
	// UpdatesPerCycle is how many models each U3 iteration retrains.
	UpdatesPerCycle int
	// TTR[i] is the estimated time-to-recover of use case U3-(i+1).
	TTR []time.Duration
}

// RunProvenanceExtrapolation measures the per-sample training cost of
// the scenario's architecture and extrapolates the Provenance TTR
// staircase for a realistic training volume.
func RunProvenanceExtrapolation(o Options, samples, epochs int) (*Extrapolation, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	if len(tr.updates) == 0 || len(tr.updates[0]) == 0 {
		return nil, fmt.Errorf("experiments: scenario produced no updates to extrapolate from")
	}

	// Measure: retrain one updated model on its recorded dataset and
	// divide by the number of sample steps taken.
	u := tr.updates[0][0]
	data, err := tr.registry.Materialize(u.DatasetID)
	if err != nil {
		return nil, err
	}
	model := tr.states[0].Models[u.ModelIndex].Clone()
	cfg := tr.train.Config
	cfg.Seed = u.Seed
	start := time.Now()
	if _, err := trainForMeasurement(model, data, cfg); err != nil {
		return nil, err
	}
	steps := data.Len() * cfg.Epochs
	perStep := time.Duration(int64(time.Since(start)) / int64(steps))

	ext := &Extrapolation{
		PerSampleStep:   perStep,
		Samples:         samples,
		Epochs:          epochs,
		UpdatesPerCycle: len(tr.updates[0]),
	}
	perModel := time.Duration(int64(perStep) * int64(samples) * int64(epochs))
	perCycle := time.Duration(int64(perModel) * int64(ext.UpdatesPerCycle))
	for c := 1; c <= o.Cycles; c++ {
		ext.TTR = append(ext.TTR, time.Duration(int64(perCycle)*int64(c)))
	}
	return ext, nil
}

// Table renders the extrapolation like the paper reports it.
func (e *Extrapolation) Table() string {
	out := fmt.Sprintf("Provenance TTR extrapolation: %d samples × %d epochs, %d updates/cycle, %.1f µs/sample-step\n",
		e.Samples, e.Epochs, e.UpdatesPerCycle, float64(e.PerSampleStep.Nanoseconds())/1e3)
	for i, d := range e.TTR {
		out += fmt.Sprintf("  U3-%d: %7.2f h\n", i+1, d.Hours())
	}
	return out
}
