package experiments

import (
	"fmt"
	"strings"

	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/workload"
)

// QualityReport validates the evaluation scenario's premise: "Over time
// the model performance decreases, and the models are partially or
// fully updated on locally collected data" (§1). For each update cycle
// it measures, on the cycle's fresh (aged) data, the loss of the model
// *before* its update and *after* it — the before/after gap is the
// reason U3 exists.
type QualityReport struct {
	// Cycles[i] aggregates cycle i+1.
	Cycles []QualityCycle
}

// QualityCycle is one cycle's model-quality measurement, averaged over
// the fully updated models of that cycle.
type QualityCycle struct {
	Cycle int
	// StaleLoss is the mean loss of the pre-update models on the
	// cycle's fresh data (the degradation that triggers the update).
	StaleLoss float64
	// UpdatedLoss is the mean loss after retraining on that data.
	UpdatedLoss float64
	// ModelsMeasured is the number of full updates measured.
	ModelsMeasured int
}

// RunModelQuality runs the scenario in training mode and reports the
// per-cycle stale-vs-updated losses.
func RunModelQuality(o Options) (*QualityReport, error) {
	o.Mode = workload.ModeTrain // quality is undefined for perturbation
	cfg, err := o.workloadConfig()
	if err != nil {
		return nil, err
	}
	reg := dataset.NewRegistry()
	fleet, err := workload.New(cfg, reg)
	if err != nil {
		return nil, err
	}

	report := &QualityReport{}
	for c := 1; c <= o.Cycles; c++ {
		before := fleet.Set.Clone()
		updates, err := fleet.RunCycle()
		if err != nil {
			return nil, err
		}
		qc := QualityCycle{Cycle: c}
		for _, u := range updates {
			if len(u.TrainLayers) != 0 {
				continue // measure full updates; partial ones shift less
			}
			data, err := reg.Materialize(u.DatasetID)
			if err != nil {
				return nil, err
			}
			stale, err := nn.Evaluate(before.Models[u.ModelIndex], data, cfg.Loss)
			if err != nil {
				return nil, err
			}
			updated, err := nn.Evaluate(fleet.Set.Models[u.ModelIndex], data, cfg.Loss)
			if err != nil {
				return nil, err
			}
			qc.StaleLoss += stale
			qc.UpdatedLoss += updated
			qc.ModelsMeasured++
		}
		if qc.ModelsMeasured > 0 {
			qc.StaleLoss /= float64(qc.ModelsMeasured)
			qc.UpdatedLoss /= float64(qc.ModelsMeasured)
		}
		report.Cycles = append(report.Cycles, qc)
	}
	return report, nil
}

// Table renders the quality report.
func (r *QualityReport) Table() string {
	var b strings.Builder
	b.WriteString("Model quality per update cycle (mean loss on the cycle's fresh data)\n")
	fmt.Fprintf(&b, "%-8s%14s%14s%16s\n", "cycle", "stale loss", "updated loss", "models measured")
	for _, c := range r.Cycles {
		fmt.Fprintf(&b, "%-8d%14.5f%14.5f%16d\n", c.Cycle, c.StaleLoss, c.UpdatedLoss, c.ModelsMeasured)
	}
	return b.String()
}
