package experiments

import (
	"context"
	"fmt"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
	"github.com/mmm-go/mmm/internal/workload"
)

// Options parameterizes an experiment run. The zero value is not
// usable; start from DefaultOptions.
type Options struct {
	// ArchName selects FFNN-48 (default), FFNN-69, or CIFAR.
	ArchName string
	// NumModels is the fleet size. The paper uses 5000; benchmarks
	// default lower so `go test -bench` stays tractable.
	NumModels int
	// Cycles is the number of U3 iterations (paper: 3).
	Cycles int
	// FullRate/PartialRate are the per-cycle update fractions.
	FullRate    float64
	PartialRate float64
	// Setup selects the modeled hardware profile for timing runs.
	Setup latency.Setup
	// Runs is the sample count for median timings (paper: 5).
	Runs int
	// Mode selects real training or fast deterministic perturbation
	// (see workload.Mode; storage/TTS results are identical).
	Mode workload.Mode
	// SamplesPerDataset / Epochs bound the per-update training work.
	SamplesPerDataset int
	Epochs            int
	// Seed is the scenario root seed.
	Seed uint64
	// Workers is the per-approach save/recover concurrency
	// (core.WithConcurrency). 0 or 1 keeps the paper-faithful serial
	// execution; results are bit-identical at any setting.
	Workers int
	// FactoryClone initializes the fleet from one cloned prototype
	// (see workload.Config.FactoryClone) — the deployment pattern the
	// dedup storage experiment targets.
	FactoryClone bool
}

// DefaultOptions returns the paper's configuration at a reduced fleet
// size suitable for benchmarks; set NumModels to 5000 for paper scale.
func DefaultOptions() Options {
	return Options{
		ArchName:          "FFNN-48",
		NumModels:         500,
		Cycles:            3,
		FullRate:          0.05,
		PartialRate:       0.05,
		Setup:             latency.M1(),
		Runs:              5,
		Mode:              workload.ModeTrain,
		SamplesPerDataset: 60,
		Epochs:            1,
		Seed:              2023,
		Workers:           1,
	}
}

// workloadConfig translates Options into a workload configuration.
func (o Options) workloadConfig() (workload.Config, error) {
	arch, err := nn.ByName(o.ArchName)
	if err != nil {
		return workload.Config{}, err
	}
	var cfg workload.Config
	if o.ArchName == "CIFAR" {
		cfg = workload.CIFARConfig()
	} else {
		cfg = workload.DefaultConfig()
		cfg.Arch = arch
	}
	cfg.NumModels = o.NumModels
	cfg.FullUpdateRate = o.FullRate
	cfg.PartialUpdateRate = o.PartialRate
	cfg.Mode = o.Mode
	cfg.Seed = o.Seed
	if o.SamplesPerDataset > 0 {
		cfg.SamplesPerDataset = o.SamplesPerDataset
	}
	if o.Epochs > 0 {
		cfg.Epochs = o.Epochs
	}
	cfg.FactoryClone = o.FactoryClone
	return cfg, nil
}

// trace is one executed scenario: the model-set state after U1 and
// after every U3 iteration, plus the update records per iteration.
// Running the scenario once and replaying it through each approach
// keeps the expensive part (training) out of the per-approach loop.
type trace struct {
	cfg      workload.Config
	registry *dataset.Registry
	states   []*core.ModelSet
	updates  [][]core.ModelUpdate
	train    *core.TrainInfo
}

// runScenario executes U1 + Cycles×U3 once.
func runScenario(o Options) (*trace, error) {
	cfg, err := o.workloadConfig()
	if err != nil {
		return nil, err
	}
	reg := dataset.NewRegistry()
	fleet, err := workload.New(cfg, reg)
	if err != nil {
		return nil, err
	}
	tr := &trace{cfg: cfg, registry: reg, train: fleet.TrainInfo()}
	tr.states = append(tr.states, fleet.Set.Clone())
	for c := 0; c < o.Cycles; c++ {
		ups, err := fleet.RunCycle()
		if err != nil {
			return nil, err
		}
		tr.updates = append(tr.updates, ups)
		tr.states = append(tr.states, fleet.Set.Clone())
	}
	return tr, nil
}

// rig is one approach wired to its own instrumented stores and clock.
type rig struct {
	name     string
	approach core.Approach
	stores   core.Stores
	clock    *latency.Clock
}

// newRig builds one approach over fresh in-memory stores using the
// given latency setup. With dedup set, saves write through the
// content-addressed chunk store. extra options (e.g. core.WithCodec)
// are appended after the rig's own.
func newRig(setup latency.Setup, reg *dataset.Registry, workers int, name string, dedup bool, extra ...core.Option) *rig {
	if workers < 1 {
		workers = 1
	}
	clock := &latency.Clock{}
	st := core.Stores{
		Docs:     docstore.New(backend.NewMem(), setup.Doc, clock),
		Blobs:    blobstore.New(backend.NewMem(), setup.Blob, clock),
		Datasets: reg,
	}
	opts := []core.Option{core.WithConcurrency(workers)}
	if dedup {
		opts = append(opts, core.WithDedup())
	}
	opts = append(opts, extra...)
	r := &rig{name: name, stores: st, clock: clock}
	switch name {
	case "MMlib-base":
		r.approach = core.NewMMlibBase(st, opts...)
	case "Baseline":
		r.approach = core.NewBaseline(st, opts...)
	case "Update":
		r.approach = core.NewUpdate(st, opts...)
	case "Provenance":
		r.approach = core.NewProvenance(st, opts...)
	default:
		panic(fmt.Sprintf("experiments: unknown approach %q", name))
	}
	return r
}

// newRigs builds the four approaches over fresh in-memory stores using
// the given latency setup, all sharing the scenario's dataset registry.
func newRigs(setup latency.Setup, reg *dataset.Registry, workers int) []*rig {
	rigs := make([]*rig, len(ApproachOrder))
	for i, name := range ApproachOrder {
		rigs[i] = newRig(setup, reg, workers, name, false)
	}
	return rigs
}

// saveAll replays the trace through one rig and returns the per-use-
// case save results and set IDs.
func saveAll(r *rig, tr *trace) ([]core.SaveResult, []string, error) {
	var results []core.SaveResult
	var ids []string
	base := ""
	for i, state := range tr.states {
		req := core.SaveRequest{Set: state, Base: base, Train: tr.train}
		if i > 0 {
			req.Updates = tr.updates[i-1]
		}
		res, err := r.approach.SaveContext(context.Background(), req)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: saving use case %d: %w", r.name, i, err)
		}
		results = append(results, res)
		ids = append(ids, res.SetID)
		base = res.SetID
	}
	return results, ids, nil
}
