package experiments

import (
	"strings"
	"testing"
)

func TestRunSnapshotAblation(t *testing.T) {
	o := timingOptions()
	o.Cycles = 4
	a, err := RunSnapshotAblation(o, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Never snapshotting gives the deepest chain and the least storage;
	// snapshots trade storage for recovery time.
	if a.LastChainDepth[0] != 4 {
		t.Errorf("interval 0: last depth = %d, want 4", a.LastChainDepth[0])
	}
	if a.LastChainDepth[1] >= 2 {
		t.Errorf("interval 2: last depth = %d, want < 2", a.LastChainDepth[1])
	}
	if !(a.TotalStorageMB[0] < a.TotalStorageMB[1]) {
		t.Errorf("no-snapshot storage (%.3f MB) not below interval-2 storage (%.3f MB)",
			a.TotalStorageMB[0], a.TotalStorageMB[1])
	}
	if !(a.LastSetTTR[1] < a.LastSetTTR[0]) {
		t.Errorf("interval-2 TTR (%v) not below no-snapshot TTR (%v)",
			a.LastSetTTR[1], a.LastSetTTR[0])
	}
	if !strings.Contains(a.Table(), "never") {
		t.Error("ablation table incomplete")
	}
}

func TestRunUpdateVariantAblation(t *testing.T) {
	o := testOptions()
	a, err := RunUpdateVariantAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Variants) != 6 {
		t.Fatalf("got %d variants", len(a.Variants))
	}
	// Model granularity must cost more than layer granularity on every
	// derived save (partial updates lose their benefit).
	layer, model := a.StorageMB[0], a.StorageMB[1]
	for uc := 1; uc < len(layer); uc++ {
		if !(model[uc] > layer[uc]) {
			t.Errorf("use case %d: model granularity (%.4f MB) not above layer granularity (%.4f MB)",
				uc, model[uc], layer[uc])
		}
	}
	if !strings.Contains(a.Table(), "model-granularity") {
		t.Error("ablation table incomplete")
	}
}

func TestRunBlobLayoutAblation(t *testing.T) {
	o := testOptions()
	a, err := RunBlobLayoutAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	// O3: the single-blob layout collapses O(n) writes into O(1).
	if a.SingleBlobOps >= a.PerModelOps/10 {
		t.Errorf("single blob ops = %d, per model ops = %d — expected ≥10× reduction",
			a.SingleBlobOps, a.PerModelOps)
	}
	// O1: and writes fewer bytes.
	if a.SingleBlobBytes >= a.PerModelBytes {
		t.Errorf("single blob bytes = %d not below per-model bytes = %d",
			a.SingleBlobBytes, a.PerModelBytes)
	}
	if !strings.Contains(a.Table(), "single blob") {
		t.Error("ablation table incomplete")
	}
}
