package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// AccidentRecovery reports the paper's motivating access pattern made
// concrete: after an incident, an analyst recovers a handful of cell
// models out of the latest archived set ("only recover a selected
// number of models, for example, after an accident"). It compares the
// time and bytes read for selective recovery against recovering the
// full set, per approach.
type AccidentRecovery struct {
	ModelsRequested int
	Approaches      []string
	// PartialTTR and FullTTR are median times to recover the selected
	// models vs the entire last set.
	PartialTTR map[string]time.Duration
	FullTTR    map[string]time.Duration
	// PartialMBRead and FullMBRead are the store bytes read.
	PartialMBRead map[string]float64
	FullMBRead    map[string]float64
}

// RunAccidentRecovery saves the scenario with every approach and
// measures recovery of k selected models from the final set.
func RunAccidentRecovery(o Options, k int) (*AccidentRecovery, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	if k <= 0 || k > o.NumModels {
		return nil, fmt.Errorf("experiments: invalid selection size %d", k)
	}
	// The "accident": the first k models updated in the last cycle (or
	// the first k indices when nothing was updated).
	var indices []int
	for _, u := range tr.updates[len(tr.updates)-1] {
		if len(indices) < k {
			indices = append(indices, u.ModelIndex)
		}
	}
	for i := 0; len(indices) < k; i++ {
		indices = append(indices, i)
	}

	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	out := &AccidentRecovery{
		ModelsRequested: k,
		Approaches:      append([]string(nil), ApproachOrder...),
		PartialTTR:      map[string]time.Duration{},
		FullTTR:         map[string]time.Duration{},
		PartialMBRead:   map[string]float64{},
		FullMBRead:      map[string]float64{},
	}
	for _, r := range newRigs(o.Setup, tr.registry, o.Workers) {
		_, ids, err := saveAll(r, tr)
		if err != nil {
			return nil, err
		}
		last := ids[len(ids)-1]
		partial, ok := r.approach.(core.PartialRecoverer)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not support selective recovery", r.name)
		}
		if p, isProv := r.approach.(*core.Provenance); isProv {
			// Selective recovery retrains only the chosen models'
			// updates, so no budget trick is needed here.
			p.RecoveryBudget = nil
		}

		var partialDs, fullDs []time.Duration
		var partialRead, fullRead int64
		for run := 0; run < runs; run++ {
			beforeRead := r.stores.Blobs.Stats().BytesRead + r.stores.Docs.Stats().BytesRead
			sw := latency.StartStopwatch(r.clock)
			pr, err := partial.RecoverModelsContext(context.Background(), last, indices)
			if err != nil {
				return nil, fmt.Errorf("%s: selective recovery: %w", r.name, err)
			}
			partialDs = append(partialDs, sw.Elapsed())
			partialRead = r.stores.Blobs.Stats().BytesRead + r.stores.Docs.Stats().BytesRead - beforeRead
			if len(pr.Models) != len(indices) {
				return nil, fmt.Errorf("%s: recovered %d models, want %d", r.name, len(pr.Models), len(indices))
			}

			beforeRead = r.stores.Blobs.Stats().BytesRead + r.stores.Docs.Stats().BytesRead
			sw = latency.StartStopwatch(r.clock)
			if _, err := r.approach.RecoverContext(context.Background(), last); err != nil {
				return nil, fmt.Errorf("%s: full recovery: %w", r.name, err)
			}
			fullDs = append(fullDs, sw.Elapsed())
			fullRead = r.stores.Blobs.Stats().BytesRead + r.stores.Docs.Stats().BytesRead - beforeRead
		}
		out.PartialTTR[r.name] = median(partialDs)
		out.FullTTR[r.name] = median(fullDs)
		out.PartialMBRead[r.name] = float64(partialRead) / 1e6
		out.FullMBRead[r.name] = float64(fullRead) / 1e6
	}
	return out, nil
}

// Table renders the accident-recovery comparison.
func (a *AccidentRecovery) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Selective (post-accident) recovery of %d models vs full set\n", a.ModelsRequested)
	fmt.Fprintf(&b, "%-12s%14s%14s%14s%14s\n",
		"approach", "partial s", "full s", "partial MB", "full MB")
	for _, name := range a.Approaches {
		fmt.Fprintf(&b, "%-12s%14.4f%14.4f%14.3f%14.3f\n",
			name, a.PartialTTR[name].Seconds(), a.FullTTR[name].Seconds(),
			a.PartialMBRead[name], a.FullMBRead[name])
	}
	return b.String()
}
