package experiments

import (
	"fmt"
	"strings"

	"github.com/mmm-go/mmm/internal/core"
)

// DedupRow is one approach's storage consumption with and without the
// content-addressed chunk store.
type DedupRow struct {
	Name string
	// LogicalMB is the logical blob payload (identical either way).
	LogicalMB float64
	// PlainMB and DedupMB are the physical bytes the store holds after
	// the full workload, raw vs deduplicated (chunks + recipes).
	PlainMB float64
	DedupMB float64
	// SavingsPct is the physical reduction dedup achieved.
	SavingsPct float64
	// Chunks is how many distinct chunks the dedup store holds.
	Chunks int
}

// DedupStorage compares each approach's physical storage with and
// without core.WithDedup on the same workload trace.
type DedupStorage struct {
	FactoryClone bool
	Rows         []DedupRow
}

// RunDedupStorage runs the U1 + Cycles×U3 scenario once and replays it
// per approach into a raw store and a deduplicating store, reporting
// the physical bytes each ends up holding. With o.FactoryClone the
// fleet starts from one cloned prototype, the deployment dedup
// targets; without it only content that repeats across saves (e.g.
// Baseline's unchanged models) deduplicates.
func RunDedupStorage(o Options) (*DedupStorage, error) {
	tr, err := runScenario(o)
	if err != nil {
		return nil, err
	}
	out := &DedupStorage{FactoryClone: o.FactoryClone}
	for _, name := range ApproachOrder {
		plain := newRig(o.Setup, tr.registry, o.Workers, name, false)
		dedup := newRig(o.Setup, tr.registry, o.Workers, name, true)
		if _, _, err := saveAll(plain, tr); err != nil {
			return nil, err
		}
		if _, ids, err := saveAll(dedup, tr); err != nil {
			return nil, err
		} else if len(ids) == 0 {
			return nil, fmt.Errorf("%s: workload produced no saves", name)
		}
		duPlain, err := core.Du(plain.stores)
		if err != nil {
			return nil, fmt.Errorf("%s: du of plain store: %w", name, err)
		}
		duDedup, err := core.Du(dedup.stores)
		if err != nil {
			return nil, fmt.Errorf("%s: du of dedup store: %w", name, err)
		}
		if duDedup.LogicalBytes != duPlain.LogicalBytes {
			return nil, fmt.Errorf("%s: logical bytes diverge: plain %d, dedup %d",
				name, duPlain.LogicalBytes, duDedup.LogicalBytes)
		}
		out.Rows = append(out.Rows, DedupRow{
			Name:       name,
			LogicalMB:  float64(duDedup.LogicalBytes) / 1e6,
			PlainMB:    float64(duPlain.PhysicalBytes) / 1e6,
			DedupMB:    float64(duDedup.PhysicalBytes) / 1e6,
			SavingsPct: 100 * (1 - float64(duDedup.PhysicalBytes)/float64(duPlain.PhysicalBytes)),
			Chunks:     duDedup.Chunks,
		})
	}
	return out, nil
}

// Table renders the comparison.
func (d *DedupStorage) Table() string {
	var b strings.Builder
	init := "independent random init"
	if d.FactoryClone {
		init = "factory-cloned fleet"
	}
	fmt.Fprintf(&b, "Physical blob storage, raw vs deduplicated (%s)\n", init)
	fmt.Fprintf(&b, "%-12s%12s%12s%12s%10s%9s\n",
		"approach", "logical MB", "raw MB", "dedup MB", "saved", "chunks")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-12s%12.3f%12.3f%12.3f%9.1f%%%9d\n",
			r.Name, r.LogicalMB, r.PlainMB, r.DedupMB, r.SavingsPct, r.Chunks)
	}
	return b.String()
}
