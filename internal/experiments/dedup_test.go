package experiments

import (
	"strings"
	"testing"
)

func TestRunDedupStorageFactoryClone(t *testing.T) {
	o := testOptions()
	o.FactoryClone = true
	d, err := RunDedupStorage(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != len(ApproachOrder) {
		t.Fatalf("got %d rows, want %d", len(d.Rows), len(ApproachOrder))
	}
	for _, r := range d.Rows {
		if r.DedupMB >= r.PlainMB {
			t.Errorf("%s: dedup holds %.3f MB, raw %.3f MB — no savings",
				r.Name, r.DedupMB, r.PlainMB)
		}
		if r.Chunks == 0 {
			t.Errorf("%s: dedup store holds no chunks", r.Name)
		}
		if r.Name == "Baseline" && r.SavingsPct < 30 {
			t.Errorf("Baseline saved %.1f%%, want >= 30%%", r.SavingsPct)
		}
	}
	table := d.Table()
	for _, want := range []string{"factory-cloned", "dedup MB", "Baseline"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// Without factory cloning only repeated content dedups; Baseline still
// shrinks because unchanged models are rewritten every cycle.
func TestRunDedupStorageIndependentInit(t *testing.T) {
	d, err := RunDedupStorage(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Rows {
		if r.Name == "Baseline" && r.SavingsPct < 30 {
			t.Errorf("Baseline saved %.1f%%, want >= 30%% from cross-cycle dedup", r.SavingsPct)
		}
	}
}
