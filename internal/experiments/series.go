// Package experiments reproduces the paper's evaluation: storage
// consumption (Figure 3 and the §4.2 variations), time-to-save
// (Figure 4a/4b), time-to-recover (Figure 5a/5b), and the §4.4
// realistic-training extrapolation. Each runner executes the workload
// scenario once, replays the resulting sets through all four
// management approaches, and reports the same rows/series the paper
// plots.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ApproachOrder is the paper's plotting order.
var ApproachOrder = []string{"MMlib-base", "Baseline", "Update", "Provenance"}

// Series is one experiment's result: a value per (approach, use case).
type Series struct {
	Title      string
	Metric     string // e.g. "storage MB", "median TTS s"
	UseCases   []string
	Approaches []string
	Values     map[string][]float64
}

// newSeries allocates a series over the standard approaches and the
// use cases U1, U3-1 ... U3-cycles.
func newSeries(title, metric string, cycles int) *Series {
	useCases := []string{"U1"}
	for c := 1; c <= cycles; c++ {
		useCases = append(useCases, fmt.Sprintf("U3-%d", c))
	}
	s := &Series{
		Title: title, Metric: metric,
		UseCases:   useCases,
		Approaches: append([]string(nil), ApproachOrder...),
		Values:     map[string][]float64{},
	}
	for _, a := range s.Approaches {
		s.Values[a] = make([]float64, len(useCases))
	}
	return s
}

// Value returns the metric for an approach and use-case index.
func (s *Series) Value(approach string, useCase int) float64 {
	return s.Values[approach][useCase]
}

// Table renders the series as an aligned text table, one row per
// approach and one column per use case — the paper's figure as rows.
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", s.Title, s.Metric)
	fmt.Fprintf(&b, "%-12s", "approach")
	for _, uc := range s.UseCases {
		fmt.Fprintf(&b, "%12s", uc)
	}
	b.WriteByte('\n')
	for _, a := range s.Approaches {
		fmt.Fprintf(&b, "%-12s", a)
		for i := range s.UseCases {
			fmt.Fprintf(&b, "%12.3f", s.Values[a][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV emits the series as CSV with a header row.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "approach,%s\n", strings.Join(s.UseCases, ",")); err != nil {
		return err
	}
	for _, a := range s.Approaches {
		cells := make([]string, len(s.UseCases)+1)
		cells[0] = a
		for i := range s.UseCases {
			cells[i+1] = fmt.Sprintf("%.6f", s.Values[a][i])
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// median returns the median of a duration sample.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
