package experiments

import "testing"

// The full scenario runs hundreds of clients; tests run a small fleet
// and check the properties the benchmark reports at scale.
func TestRunPull(t *testing.T) {
	o := DefaultOptions()
	o.NumModels = 32
	res, err := RunPull(o, 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 0 {
		t.Fatalf("pull scenario fell back to multipart %d times", res.Fallbacks)
	}
	if res.WarmRatio >= 0.10 {
		t.Fatalf("warm re-pull moved %.1f%% of full-set bytes, want < 10%%", 100*res.WarmRatio)
	}
	if res.WarmChunks >= res.ColdChunks/4 {
		t.Fatalf("warm wave fetched %d chunks vs %d cold — cache not diffing", res.WarmChunks, res.ColdChunks)
	}
	if res.ChaosFaults == 0 {
		t.Fatal("chaos wave injected no faults")
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}
