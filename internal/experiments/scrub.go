package experiments

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"

	"github.com/mmm-go/mmm/internal/core"
	"github.com/mmm-go/mmm/internal/dataset"
	"github.com/mmm-go/mmm/internal/nn"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/scrub"
	"github.com/mmm-go/mmm/internal/server"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// Scrub reports the self-healing scenario: silent bit rot planted in
// chunks shared across a deduplicated fleet, a scrub pass detecting
// and quarantining it (reads fail fast, never serve wrong bytes), and
// a second pass healing everything from a healthy replica over the
// pull protocol.
type Scrub struct {
	Sets         int     `json:"sets"`
	ModelsPerSet int     `json:"models_per_set"`
	StoreChunks  int     `json:"store_chunks"`
	StoreKB      float64 `json:"store_kb"`

	// Rot planted: chunks whose persisted refcount is >= MinShared (rot
	// in a shared chunk damages several sets at once — dedup's dark
	// side).
	RottedChunks  int `json:"rotted_chunks"`
	MinSharedRefs int `json:"min_shared_refs"`

	// Detection (no peer configured): the pass quarantines the rot.
	DetectLatencyMS float64 `json:"detect_latency_ms"`
	ScanMBPerSec    float64 `json:"scan_mb_per_sec"`
	Quarantined     int64   `json:"quarantined"`
	// FailFastSets counts sets whose recovery fails with ErrCorruptBlob
	// while quarantined — the contract is fail fast, never wrong bytes.
	FailFastSets int `json:"fail_fast_sets"`
	// FsckQuarantineIssues counts fsck issues naming the quarantined
	// chunks while the store is damaged.
	FsckQuarantineIssues int `json:"fsck_quarantine_issues"`

	// Heal (healthy peer configured): repairs over the pull protocol.
	Repaired       int64   `json:"repaired"`
	HealedKB       float64 `json:"healed_kb"`
	HealMBPerSec   float64 `json:"heal_mb_per_sec"`
	SetsIdentical  bool    `json:"sets_identical"`
	FsckCleanAfter bool    `json:"fsck_clean_after"`
}

// scrubFleetSets is the fleet size of the scrub scenario: sets sharing
// chunks through dedup, so one rotted chunk damages several of them.
const scrubFleetSets = 10

// RunScrub saves a 10-set deduplicated fleet twice — locally and on a
// healthy HTTP replica — plants bit rot in >= 3 chunks that multiple
// sets share, and runs the self-healing loop: scrub-detect-quarantine
// without a peer (recoveries must fail fast with ErrCorruptBlob, fsck
// must list the quarantined digests), then scrub-repair against the
// replica (every set must come back byte-identical, fsck clean).
func RunScrub(o Options) (*Scrub, error) {
	ctx := context.Background()
	archName := o.ArchName
	if archName == "" {
		archName = "FFNN-48"
	}
	arch, err := nn.ByName(archName)
	if err != nil {
		return nil, err
	}
	models := o.NumModels
	if models <= 0 || models > 64 {
		models = 16
	}
	seed := o.Seed
	if seed == 0 {
		seed = 2023
	}

	// Two stores with raw backend access (the rot goes in underneath
	// every integrity layer), saved identically: local and replica.
	newStores := func() (core.Stores, *backend.Mem) {
		be := backend.NewMem()
		return core.Stores{
			Docs:     docstore.New(backend.NewMem(), latency.CostModel{}, nil),
			Blobs:    blobstore.New(be, latency.CostModel{}, nil),
			Datasets: dataset.NewRegistry(),
		}, be
	}
	local, localBE := newStores()
	peer, _ := newStores()

	// The fleet: set 1 is the factory image; sets 2..N perturb ~1/4 of
	// the models each, so most chunks are shared store-wide.
	truth := make([]*core.ModelSet, 0, scrubFleetSets)
	base, err := core.NewModelSet(arch, models, seed)
	if err != nil {
		return nil, err
	}
	truth = append(truth, base)
	for i := 1; i < scrubFleetSets; i++ {
		v := base.Clone()
		for j := 0; j < models/4+1; j++ {
			idx := (j*7 + i) % models
			m := v.Models[idx]
			raw := m.AppendParamBytes(nil)
			for k := range raw {
				raw[k] ^= byte(i)
			}
			if _, err := m.SetParamBytes(raw); err != nil {
				return nil, err
			}
		}
		truth = append(truth, v)
	}
	saveFleet := func(st core.Stores) ([]string, error) {
		b := core.NewBaseline(st, core.WithDedup())
		ids := make([]string, len(truth))
		for i, v := range truth {
			res, err := b.SaveContext(ctx, core.SaveRequest{Set: v})
			if err != nil {
				return nil, fmt.Errorf("saving fleet set %d: %w", i, err)
			}
			ids[i] = res.SetID
		}
		return ids, nil
	}
	ids, err := saveFleet(local)
	if err != nil {
		return nil, err
	}
	if _, err := saveFleet(peer); err != nil {
		return nil, err
	}

	// Plant rot in chunks that several sets share: highest refcount
	// first, at least 3 chunks.
	scan, err := cas.ScanStore(local.Blobs)
	if err != nil {
		return nil, err
	}
	type shared struct {
		hash string
		refs int
	}
	var candidates []shared
	for h, refs := range scan.Refs {
		if refs >= 2 {
			candidates = append(candidates, shared{h, refs})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].refs != candidates[j].refs {
			return candidates[i].refs > candidates[j].refs
		}
		return candidates[i].hash < candidates[j].hash
	})
	if len(candidates) < 3 {
		return nil, fmt.Errorf("fleet shares only %d chunks; dedup layout changed?", len(candidates))
	}
	rotted := candidates[:3]
	minRefs := rotted[len(rotted)-1].refs
	var rottedBytes int64
	for _, c := range rotted {
		key := cas.ChunkKey(c.hash)
		raw, err := localBE.Get(key)
		if err != nil {
			return nil, fmt.Errorf("reading chunk to rot: %w", err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := localBE.Put(key, raw); err != nil {
			return nil, err
		}
		rottedBytes += int64(len(raw))
	}

	// Phase 1 — detect and quarantine, no repair peer.
	reg := obs.New()
	s := scrub.New(local.Blobs, local.Docs, scrub.Config{Registry: reg})
	detect, err := s.RunPass(ctx)
	if err != nil {
		return nil, fmt.Errorf("detection pass: %w", err)
	}
	quarantined := reg.Counter(scrub.MetricQuarantined).Value()
	if quarantined < 3 {
		return nil, fmt.Errorf("detection pass quarantined %d chunks, want >= 3", quarantined)
	}

	// Reads of damaged sets must fail fast with ErrCorruptBlob — and
	// never return wrong bytes.
	b := core.NewBaseline(local, core.WithDedup())
	failFast := 0
	for i, id := range ids {
		got, err := b.RecoverContext(ctx, id)
		switch {
		case err == nil:
			if !got.Equal(truth[i]) {
				return nil, fmt.Errorf("set %s recovered WRONG BYTES while store damaged", id)
			}
		case errors.Is(err, core.ErrCorruptBlob):
			failFast++
		default:
			return nil, fmt.Errorf("set %s: unexpected recovery error: %w", id, err)
		}
	}
	if failFast == 0 {
		return nil, fmt.Errorf("no set failed fast despite %d quarantined shared chunks", quarantined)
	}

	// fsck lists the quarantined digests as damage.
	report, err := core.Fsck(local, core.FsckOptions{})
	if err != nil {
		return nil, err
	}
	fsckListed := 0
	for _, issue := range report.Issues {
		if strings.Contains(issue.Problem, "quarantined") {
			fsckListed++
		}
	}
	if fsckListed < 3 {
		return nil, fmt.Errorf("fsck listed %d quarantined chunks, want >= 3:\n%v", fsckListed, report.Issues)
	}

	// Phase 2 — heal from the healthy replica over the pull protocol.
	api := server.NewWithMetrics(peer, obs.New(), core.WithDedup())
	ts := httptest.NewServer(api)
	defer ts.Close()
	s2 := scrub.New(local.Blobs, local.Docs, scrub.Config{
		Registry: reg,
		Fetcher:  &server.Client{BaseURL: ts.URL, Reg: obs.New()},
	})
	s2.ResetCursor()
	heal, err := s2.RunPass(ctx)
	if err != nil {
		return nil, fmt.Errorf("heal pass: %w", err)
	}
	repaired := reg.Counter(scrub.MetricRepairs).Value()
	if repaired < 3 {
		return nil, fmt.Errorf("heal pass repaired %d chunks, want >= 3", repaired)
	}

	identical := true
	for i, id := range ids {
		got, err := b.RecoverContext(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("recovering %s after heal: %w", id, err)
		}
		if !got.Equal(truth[i]) {
			identical = false
		}
	}
	after, err := core.Fsck(local, core.FsckOptions{})
	if err != nil {
		return nil, err
	}

	var storeBytes int64
	for _, size := range scan.Chunks {
		storeBytes += size
	}
	healSec := heal.Elapsed.Seconds()
	out := &Scrub{
		Sets:                 scrubFleetSets,
		ModelsPerSet:         models,
		StoreChunks:          len(scan.Chunks),
		StoreKB:              float64(storeBytes) / 1e3,
		RottedChunks:         len(rotted),
		MinSharedRefs:        minRefs,
		DetectLatencyMS:      detect.DetectLatency.Seconds() * 1e3,
		ScanMBPerSec:         mbPerSec(detect.BytesVerified, detect.Elapsed.Seconds()),
		Quarantined:          quarantined,
		FailFastSets:         failFast,
		FsckQuarantineIssues: fsckListed,
		Repaired:             repaired,
		HealedKB:             float64(rottedBytes) / 1e3,
		HealMBPerSec:         mbPerSec(rottedBytes, healSec),
		SetsIdentical:        identical,
		FsckCleanAfter:       after.Clean(),
	}
	return out, nil
}

func mbPerSec(bytes int64, sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / sec
}

// Table renders the scrub scenario.
func (s *Scrub) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Self-healing: %d dedup sets x %d models (%d chunks, %.1f KB stored)\n",
		s.Sets, s.ModelsPerSet, s.StoreChunks, s.StoreKB)
	fmt.Fprintf(&b, "rot planted in %d chunks shared by >= %d sets\n", s.RottedChunks, s.MinSharedRefs)
	fmt.Fprintf(&b, "detect: first finding after %.3f ms into the pass, scan throughput %.1f MB/s, %d quarantined\n",
		s.DetectLatencyMS, s.ScanMBPerSec, s.Quarantined)
	fmt.Fprintf(&b, "while damaged: %d/%d sets fail fast with ErrCorruptBlob (never wrong bytes); fsck lists %d quarantined digests\n",
		s.FailFastSets, s.Sets, s.FsckQuarantineIssues)
	fmt.Fprintf(&b, "heal from peer: %d chunks (%.1f KB) restored at %.1f MB/s\n",
		s.Repaired, s.HealedKB, s.HealMBPerSec)
	fmt.Fprintf(&b, "after heal: all sets byte-identical %v, fsck clean %v\n", s.SetsIdentical, s.FsckCleanAfter)
	return b.String()
}
