// Package drivecycle generates synthetic real-world-like driving
// discharge current profiles for battery simulation.
//
// The paper feeds its equivalent-circuit model with input currents from
// "records of real-world driving discharge cycles provided by
// Steinstraeter et al." (IEEE DataPort, "Battery and Heating Data in
// Real Driving Cycles"). That dataset is an external download we cannot
// ship, so this package synthesizes profiles with the same relevant
// structure: alternating urban/highway phases, acceleration spikes,
// cruising plateaus, idle periods, and regenerative-braking intervals
// (negative current). The management approaches only require that the
// training data differ per model and per cycle, which the seeded
// generator guarantees.
package drivecycle

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/rng"
)

// Config shapes the generated profile. Currents are per-cell amperes;
// positive discharges the cell.
type Config struct {
	// DurationS is the cycle length in seconds (one sample per second).
	DurationS int
	// PeakA is the maximum acceleration current.
	PeakA float64
	// CruiseA is the typical steady-driving current.
	CruiseA float64
	// RegenA is the maximum regenerative charging current (applied as a
	// negative current).
	RegenA float64
	// Seed selects the cycle; equal seeds give identical profiles.
	Seed uint64
}

// DefaultConfig is a plausible per-cell profile for an EV pack:
// cruise around 1 A (~0.4C for a 2.5 Ah cell), peaks near 4 A.
func DefaultConfig(seed uint64) Config {
	return Config{DurationS: 1800, PeakA: 4, CruiseA: 1, RegenA: 2, Seed: seed}
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	switch {
	case c.DurationS <= 0:
		return fmt.Errorf("drivecycle: duration must be positive, got %d", c.DurationS)
	case c.PeakA <= 0 || c.CruiseA <= 0:
		return fmt.Errorf("drivecycle: currents must be positive")
	case c.RegenA < 0:
		return fmt.Errorf("drivecycle: regen current must be non-negative")
	}
	return nil
}

// phase kinds of a drive cycle.
const (
	phaseIdle = iota
	phaseAccel
	phaseCruise
	phaseRegen
)

// Generate returns a current profile of cfg.DurationS one-second
// samples. The profile is a Markov walk over drive phases with
// low-pass-filtered transitions so currents look like measured traces
// rather than square waves.
func Generate(cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed).Derive("drivecycle")
	out := make([]float64, cfg.DurationS)

	phase := phaseIdle
	remaining := 0
	var target float64
	current := 0.0

	for t := 0; t < cfg.DurationS; t++ {
		if remaining == 0 {
			phase = nextPhase(phase, r)
			switch phase {
			case phaseIdle:
				remaining = 5 + r.Intn(20)
				target = 0.05 * cfg.CruiseA * r.Float64() // auxiliaries
			case phaseAccel:
				remaining = 3 + r.Intn(10)
				target = cfg.CruiseA + (cfg.PeakA-cfg.CruiseA)*r.Float64()
			case phaseCruise:
				remaining = 20 + r.Intn(90)
				target = cfg.CruiseA * (0.6 + 0.8*r.Float64())
			case phaseRegen:
				remaining = 2 + r.Intn(8)
				target = -cfg.RegenA * r.Float64()
			}
		}
		remaining--
		// First-order lag toward the phase target plus measurement-scale
		// jitter; alpha 0.35 gives realistic ~3 s current ramps.
		current += 0.35 * (target - current)
		out[t] = current + 0.02*cfg.CruiseA*r.NormFloat64()
	}
	return out, nil
}

// nextPhase is the drive-phase Markov chain: accelerations follow idle
// or regen, cruise follows acceleration, regen or idle follow cruise.
func nextPhase(phase int, r *rng.RNG) int {
	p := r.Float64()
	switch phase {
	case phaseIdle:
		if p < 0.8 {
			return phaseAccel
		}
		return phaseIdle
	case phaseAccel:
		return phaseCruise
	case phaseCruise:
		switch {
		case p < 0.35:
			return phaseRegen
		case p < 0.55:
			return phaseIdle
		case p < 0.75:
			return phaseAccel
		default:
			return phaseCruise
		}
	default: // phaseRegen
		if p < 0.5 {
			return phaseIdle
		}
		return phaseAccel
	}
}
