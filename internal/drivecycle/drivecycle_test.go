package drivecycle

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("profiles diverge at second %d", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(DefaultConfig(1))
	b, _ := Generate(DefaultConfig(2))
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds share %d/%d identical samples", same, len(a))
	}
}

func TestGenerateLengthAndBounds(t *testing.T) {
	cfg := DefaultConfig(7)
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != cfg.DurationS {
		t.Fatalf("profile length %d, want %d", len(p), cfg.DurationS)
	}
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("sample %d not finite: %v", i, v)
		}
		// Lagged first-order response cannot exceed targets plus jitter.
		if v > cfg.PeakA*1.2 || v < -cfg.RegenA*1.2 {
			t.Fatalf("sample %d out of physical range: %v", i, v)
		}
	}
}

func TestGenerateHasAllPhases(t *testing.T) {
	p, err := Generate(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var hasHigh, hasRegen, hasIdle bool
	cfg := DefaultConfig(3)
	for _, v := range p {
		if v > cfg.CruiseA*1.2 {
			hasHigh = true
		}
		if v < -0.1 {
			hasRegen = true
		}
		if v >= 0 && v < cfg.CruiseA*0.2 {
			hasIdle = true
		}
	}
	if !hasHigh {
		t.Error("no acceleration phase in profile")
	}
	if !hasRegen {
		t.Error("no regenerative braking in profile")
	}
	if !hasIdle {
		t.Error("no idle phase in profile")
	}
}

func TestGenerateNetDischarge(t *testing.T) {
	// A driving cycle must discharge the cell overall.
	p, err := Generate(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		t.Fatalf("cycle is net charging: sum = %v", sum)
	}
}

func TestGenerateSmoothness(t *testing.T) {
	// Currents are low-pass filtered: step-to-step jumps stay well below
	// the full peak range.
	cfg := DefaultConfig(11)
	p, _ := Generate(cfg)
	maxJump := 0.0
	for i := 1; i < len(p); i++ {
		if d := math.Abs(p[i] - p[i-1]); d > maxJump {
			maxJump = d
		}
	}
	if maxJump > (cfg.PeakA+cfg.RegenA)*0.6 {
		t.Errorf("profile too jumpy: max step %v", maxJump)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{DurationS: 0, PeakA: 1, CruiseA: 1},
		{DurationS: 10, PeakA: 0, CruiseA: 1},
		{DurationS: 10, PeakA: 1, CruiseA: 0},
		{DurationS: 10, PeakA: 1, CruiseA: 1, RegenA: -1},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultConfig(seed)
		cfg.DurationS = 120
		a, err1 := Generate(cfg)
		b, err2 := Generate(cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
