// Package scrub is the self-healing subsystem of the store: a
// rate-limited background scrubber that incrementally walks every
// persisted artifact — CAS chunk bodies, recipes, refcounts, per-set
// chunk indexes, and checksummed raw blobs — re-verifying digests long
// after the write path succeeded. Corruption is moved to the blob
// store's quarantine namespace (never deleted) so reads fail fast
// instead of serving rot, and, when a healthy peer is configured, the
// damaged or missing chunk is re-fetched by content address, verified,
// and restored in place. Container registries run exactly this loop
// over content-addressed layers; a deduplicated model store needs it
// more, because one rotted shared chunk silently corrupts every model
// set whose recipe references it.
//
// The scrubber holds no locks while reading, paces itself with a
// bytes-per-second budget so foreground traffic is unaffected, and
// persists its position in the document store so a restarted process
// resumes mid-pass instead of starting over.
package scrub

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
	"github.com/mmm-go/mmm/internal/storage/docstore"
)

// Scrub metric names exposed on /metrics.
const (
	// MetricChunksVerified counts CAS chunk bodies whose digests were
	// re-verified.
	MetricChunksVerified = "mmm_scrub_chunks_verified_total"
	// MetricBytes counts stored bytes read and verified by the scrubber.
	MetricBytes = "mmm_scrub_bytes_total"
	// MetricErrorsFound counts verification failures discovered.
	MetricErrorsFound = "mmm_scrub_errors_found_total"
	// MetricRepairs counts artifacts healed from a peer.
	MetricRepairs = "mmm_scrub_repairs_total"
	// MetricQuarantined counts corrupt artifacts moved to quarantine.
	MetricQuarantined = "mmm_scrub_quarantined_total"
)

// stateCollection/stateDoc name the cursor document. The collection is
// internal bookkeeping, like the idempotency journal — fsck's set
// verification does not look at it.
const (
	stateCollection = "scrub_state"
	stateDoc        = "cursor"
)

// ChunkFetcher fetches a chunk's logical bytes by content address from
// a healthy upstream. *server.Client satisfies it; tests substitute
// fakes. The returned bytes are digest-verified again before entering
// the store, so a lying fetcher cannot do damage.
type ChunkFetcher interface {
	FetchChunk(ctx context.Context, hash string, size int64) ([]byte, error)
}

// Config tunes a Scrubber.
type Config struct {
	// RateBytesPerSec caps the scrubber's sustained read throughput so
	// verification never starves foreground reads. <= 0 disables
	// pacing.
	RateBytesPerSec int64
	// BatchKeys is how many keys one Step examines before persisting
	// the cursor. <= 0 uses 256.
	BatchKeys int
	// Fetcher, when set, enables repair-from-peer: quarantined and
	// missing chunks are re-fetched by digest and restored.
	Fetcher ChunkFetcher
	// Registry receives the mmm_scrub_* metrics; nil uses obs.Default.
	Registry *obs.Registry
	// Interval is the idle time between passes for Run. <= 0 uses
	// one minute.
	Interval time.Duration
	// OnPass, when set, is called with the report of every completed
	// pass (Run only).
	OnPass func(Report)
}

// Finding is one problem the scrubber discovered.
type Finding struct {
	// Key is the blob key the finding concerns.
	Key string `json:"key"`
	// Problem describes what failed to verify.
	Problem string `json:"problem"`
	// Quarantined reports that the corrupt bytes were moved to the
	// quarantine namespace during this pass.
	Quarantined bool `json:"quarantined,omitempty"`
	// Repaired reports that a verified replacement was restored from
	// the configured peer.
	Repaired bool `json:"repaired,omitempty"`
	// RepairError is why a repair attempt failed, if one was made.
	RepairError string `json:"repair_error,omitempty"`
}

// Report summarizes scrub progress — one Step's batch, or a whole pass
// when accumulated by RunPass.
type Report struct {
	// KeysScanned counts keys examined.
	KeysScanned int `json:"keys_scanned"`
	// ChunksVerified counts CAS chunk bodies digest-verified.
	ChunksVerified int `json:"chunks_verified"`
	// BytesVerified counts stored bytes read and verified.
	BytesVerified int64 `json:"bytes_verified"`
	// Findings lists the problems discovered, in key order.
	Findings []Finding `json:"findings,omitempty"`
	// Quarantined counts corrupt artifacts moved to quarantine.
	Quarantined int `json:"quarantined"`
	// Repaired counts artifacts healed from the peer.
	Repaired int `json:"repaired"`
	// Completed reports that the pass reached the end of the keyspace.
	Completed bool `json:"completed"`
	// Cursor is the persisted resume position after this batch ("" =
	// pass complete).
	Cursor string `json:"cursor,omitempty"`
	// DetectLatency is the time from pass start to the first finding
	// (0 when nothing was found).
	DetectLatency time.Duration `json:"detect_latency_ns,omitempty"`
	// Elapsed is wall time spent scanning.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Errors reports how many findings remain unhealed (found but not
// repaired).
func (r Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if !f.Repaired {
			n++
		}
	}
	return n
}

// cursorDoc is the persisted scrub position.
type cursorDoc struct {
	// Key is the last key fully processed ("" = start of keyspace).
	Key string `json:"key"`
	// Pass counts completed full passes.
	Pass int `json:"pass"`
}

// Scrubber incrementally verifies one store. Safe for use by one
// goroutine at a time; Step/RunPass serialize themselves with a mutex.
type Scrubber struct {
	blobs *blobstore.Store
	docs  *docstore.Store
	cas   *cas.Store
	cfg   Config
	reg   *obs.Registry

	mu     sync.Mutex
	cursor *cursorDoc // loaded lazily; non-nil once known

	// Pass-scoped inventory of recipes: chunk hash → logical size, and
	// which chunks any recipe references. Rebuilt when a pass starts.
	chunkSizes map[string]int64

	// pacing state
	passStart  time.Time
	pacedBytes int64
}

// New returns a scrubber over the given stores. docs holds the
// persisted cursor; a nil docs keeps the cursor in memory only.
func New(blobs *blobstore.Store, docs *docstore.Store, cfg Config) *Scrubber {
	if cfg.BatchKeys <= 0 {
		cfg.BatchKeys = 256
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe(MetricChunksVerified, "CAS chunk bodies digest-verified by the scrubber.")
	reg.Describe(MetricBytes, "Stored bytes read and verified by the scrubber.")
	reg.Describe(MetricErrorsFound, "Verification failures discovered by the scrubber.")
	reg.Describe(MetricRepairs, "Artifacts healed from the configured peer.")
	reg.Describe(MetricQuarantined, "Corrupt artifacts moved to quarantine by the scrubber.")
	return &Scrubber{blobs: blobs, docs: docs, cas: cas.For(blobs), cfg: cfg, reg: reg}
}

// loadCursor reads the persisted position. Callers hold s.mu.
func (s *Scrubber) loadCursor() *cursorDoc {
	if s.cursor != nil {
		return s.cursor
	}
	c := &cursorDoc{}
	if s.docs != nil {
		_ = s.docs.Get(stateCollection, stateDoc, c) // missing or garbled doc = start over
		if c.Key != "" && !utf8OK(c.Key) {
			*c = cursorDoc{}
		}
	}
	s.cursor = c
	return c
}

// utf8OK guards against a garbled cursor doc steering the walk.
func utf8OK(k string) bool {
	for _, r := range k {
		if r == '�' {
			return false
		}
	}
	return true
}

// saveCursor persists the position. Callers hold s.mu.
func (s *Scrubber) saveCursor() {
	if s.docs != nil && s.cursor != nil {
		_ = s.docs.Insert(stateCollection, stateDoc, s.cursor)
	}
}

// ResetCursor abandons any mid-pass position so the next Step starts a
// fresh pass from the beginning of the keyspace.
func (s *Scrubber) ResetCursor() {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.loadCursor()
	c.Key = ""
	s.saveCursor()
}

// Pass returns the number of completed full passes.
func (s *Scrubber) Pass() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadCursor().Pass
}

// pace sleeps long enough to keep the pass's cumulative read rate
// under the configured budget.
func (s *Scrubber) pace(ctx context.Context, n int64) error {
	if s.cfg.RateBytesPerSec <= 0 {
		return nil
	}
	s.pacedBytes += n
	due := time.Duration(float64(s.pacedBytes) / float64(s.cfg.RateBytesPerSec) * float64(time.Second))
	ahead := due - time.Since(s.passStart)
	if ahead <= 0 {
		return nil
	}
	t := time.NewTimer(ahead)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// inventory rebuilds the pass-scoped map of chunk hash → logical size
// from all readable recipes. Chunks outside the map are unreferenced
// (orphans awaiting GC, or mid-ingest pull-cache fills) and are left
// to their owners.
func (s *Scrubber) inventory() error {
	keys, err := s.blobs.Keys()
	if err != nil {
		return err
	}
	sizes := map[string]int64{}
	for _, k := range keys {
		if _, ok := cas.LogicalKey(k); !ok {
			continue
		}
		raw, err := s.blobs.Get(k)
		if err != nil {
			continue // garbled or vanished recipes are reported when their key is scanned
		}
		r, err := cas.DecodeRecipe(raw)
		if err != nil {
			continue
		}
		for _, c := range r.Chunks {
			sizes[c.Hash] = c.Size
		}
	}
	s.chunkSizes = sizes
	return nil
}

// Step scans one batch of keys from the persisted cursor, quarantining
// and (with a fetcher) repairing what fails verification, then
// persists the new cursor. It returns the batch's report; Completed is
// set when the batch reached the end of the keyspace.
func (s *Scrubber) Step(ctx context.Context) (Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	cur := s.loadCursor()
	if cur.Key == "" || s.chunkSizes == nil {
		if err := s.inventory(); err != nil {
			return Report{}, err
		}
	}
	if cur.Key == "" {
		s.passStart = start
		s.pacedBytes = 0
	}
	keys, err := s.blobs.Keys()
	if err != nil {
		return Report{}, err
	}
	from := sort.SearchStrings(keys, cur.Key)
	for from < len(keys) && keys[from] <= cur.Key {
		from++
	}
	batch := keys[from:]
	if len(batch) > s.cfg.BatchKeys {
		batch = batch[:s.cfg.BatchKeys]
	}
	var rep Report
	for _, key := range batch {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if err := s.scanKey(ctx, key, &rep); err != nil {
			return rep, err
		}
		cur.Key = key
		if rep.DetectLatency == 0 && len(rep.Findings) > 0 {
			rep.DetectLatency = time.Since(s.passStart)
		}
	}
	if from+len(batch) >= len(keys) {
		rep.Completed = true
		cur.Key = ""
		cur.Pass++
		s.chunkSizes = nil
	}
	s.saveCursor()
	rep.Cursor = cur.Key
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// RunPass steps until the current pass completes and returns the
// accumulated report. A cursor left mid-pass by an interrupted
// background scrub is finished, not restarted; use ResetCursor first
// to force a full sweep.
func (s *Scrubber) RunPass(ctx context.Context) (Report, error) {
	var total Report
	for {
		rep, err := s.Step(ctx)
		total.KeysScanned += rep.KeysScanned
		total.ChunksVerified += rep.ChunksVerified
		total.BytesVerified += rep.BytesVerified
		total.Findings = append(total.Findings, rep.Findings...)
		total.Quarantined += rep.Quarantined
		total.Repaired += rep.Repaired
		total.Elapsed += rep.Elapsed
		if total.DetectLatency == 0 {
			total.DetectLatency = rep.DetectLatency
		}
		if err != nil {
			return total, err
		}
		if rep.Completed {
			total.Completed = true
			return total, nil
		}
	}
}

// Run scrubs continuously until ctx is canceled: one pass, then an
// idle interval, then the next. mmserve starts it as a background
// goroutine.
func (s *Scrubber) Run(ctx context.Context) {
	t := time.NewTimer(0)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		rep, err := s.RunPass(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return
			}
		}
		if s.cfg.OnPass != nil {
			s.cfg.OnPass(rep)
		}
		t.Reset(s.cfg.Interval)
	}
}

// scanKey verifies one stored artifact and records what it finds.
func (s *Scrubber) scanKey(ctx context.Context, key string, rep *Report) error {
	rep.KeysScanned++
	switch {
	case isChunkKey(key):
		return s.scanChunk(ctx, key, rep)
	case isRecipeKey(key):
		return s.scanRecipe(ctx, key, rep)
	case cas.IsRefKey(key):
		return s.scanRef(ctx, key, rep)
	case cas.IsKey(key):
		return nil // unknown CAS-internal key; fsck's domain
	case isIndexKey(key):
		return s.scanIndex(ctx, key, rep)
	default:
		return s.scanBlob(ctx, key, rep)
	}
}

func isChunkKey(key string) bool {
	_, ok := cas.ChunkHash(key)
	return ok && !cas.IsRefKey(key)
}

func isRecipeKey(key string) bool {
	_, ok := cas.LogicalKey(key)
	return ok
}

func isIndexKey(key string) bool { return strings.HasSuffix(key, "/params.idx") }

// corruptRead reports whether a read failure means the stored bytes
// are damaged (as opposed to missing or transiently unreadable).
func corruptRead(err error) bool {
	return errors.Is(err, cas.ErrCorrupt) || errors.Is(err, blobstore.ErrChecksumMismatch)
}

// scanChunk digest-verifies one chunk body against the logical size
// its referencing recipes promise. Unreferenced chunks are skipped:
// they are GC's to collect, and without a recipe there is no logical
// size to verify against.
func (s *Scrubber) scanChunk(ctx context.Context, key string, rep *Report) error {
	hash, _ := cas.ChunkHash(key)
	logical, referenced := s.chunkSizes[hash]
	if !referenced {
		return nil
	}
	stored, err := s.blobs.Size(key)
	if err != nil {
		return nil // vanished mid-scan (GC, prune): the store moved on
	}
	if err := s.pace(ctx, stored); err != nil {
		return err
	}
	verr := s.cas.VerifyChunk(hash, logical)
	if verr == nil {
		rep.ChunksVerified++
		rep.BytesVerified += stored
		s.reg.Counter(MetricChunksVerified).Inc()
		s.reg.Counter(MetricBytes).Add(stored)
		return nil
	}
	if backend.IsNotFound(verr) {
		return nil
	}
	if !corruptRead(verr) {
		s.record(rep, Finding{Key: key, Problem: verr.Error()})
		return nil
	}
	f := Finding{Key: key, Problem: verr.Error()}
	moved, qerr := s.cas.QuarantineChunk(hash)
	switch {
	case qerr != nil:
		f.RepairError = fmt.Sprintf("quarantine failed: %v", qerr)
	case moved:
		f.Quarantined = true
		rep.Quarantined++
		s.reg.Counter(MetricQuarantined).Inc()
	default:
		// An in-flight Put or pinned read is relying on the body; leave
		// it for the next pass rather than yank it mid-operation.
		f.RepairError = "skipped: chunk busy (in-flight put or pinned read)"
	}
	if moved {
		s.repairChunk(ctx, hash, logical, &f, rep)
	}
	s.record(rep, f)
	return nil
}

// repairChunk re-fetches a chunk from the peer and restores it.
func (s *Scrubber) repairChunk(ctx context.Context, hash string, logical int64, f *Finding, rep *Report) {
	if s.cfg.Fetcher == nil {
		return
	}
	data, err := s.cfg.Fetcher.FetchChunk(ctx, hash, logical)
	if err != nil {
		f.RepairError = fmt.Sprintf("fetch from peer failed: %v", err)
		return
	}
	if err := s.cas.RestoreChunk(hash, data); err != nil {
		f.RepairError = fmt.Sprintf("restore failed: %v", err)
		return
	}
	f.Repaired = true
	f.RepairError = ""
	rep.Repaired++
	s.reg.Counter(MetricRepairs).Inc()
}

// scanRecipe parses one recipe and checks each referenced chunk is
// present, healing missing or quarantined chunks from the peer.
func (s *Scrubber) scanRecipe(ctx context.Context, key string, rep *Report) error {
	raw, err := s.blobs.Get(key)
	if err != nil {
		if corruptRead(err) {
			s.record(rep, Finding{Key: key, Problem: err.Error()})
		}
		return nil
	}
	if err := s.pace(ctx, int64(len(raw))); err != nil {
		return err
	}
	rep.BytesVerified += int64(len(raw))
	s.reg.Counter(MetricBytes).Add(int64(len(raw)))
	r, err := cas.DecodeRecipe(raw)
	if err != nil {
		// A recipe is primary metadata: quarantining it would only turn
		// "unreadable" into "missing". Report and leave it in place.
		s.record(rep, Finding{Key: key, Problem: fmt.Sprintf("garbled recipe: %v", err)})
		return nil
	}
	seen := map[string]bool{}
	for _, c := range r.Chunks {
		if seen[c.Hash] {
			continue
		}
		seen[c.Hash] = true
		if s.cas.HasChunk(c.Hash) {
			continue
		}
		problem := "chunk " + c.Hash + " missing"
		if s.cas.ChunkQuarantined(c.Hash) {
			problem = "chunk " + c.Hash + " quarantined"
		}
		f := Finding{Key: key, Problem: problem}
		s.repairChunk(ctx, c.Hash, c.Size, &f, rep)
		if !f.Repaired && s.cfg.Fetcher == nil {
			f.RepairError = "no repair peer configured"
		}
		s.record(rep, f)
	}
	return nil
}

// scanRef sanity-checks one persisted refcount.
func (s *Scrubber) scanRef(ctx context.Context, key string, rep *Report) error {
	raw, err := s.blobs.Get(key)
	if err != nil {
		return nil
	}
	if err := s.pace(ctx, int64(len(raw))); err != nil {
		return err
	}
	rep.BytesVerified += int64(len(raw))
	s.reg.Counter(MetricBytes).Add(int64(len(raw)))
	if n, aerr := strconv.Atoi(strings.TrimSpace(string(raw))); aerr != nil || n < 0 {
		// Refcounts are derivable from recipes; fsck -repair rewrites
		// them. Scrub only reports the drift.
		s.record(rep, Finding{Key: key, Problem: fmt.Sprintf("garbled refcount %q", raw)})
	}
	return nil
}

// scanIndex verifies a per-set chunk index both at the byte level
// (CRC manifest) and structurally (it must decode). A corrupt index is
// quarantined: readers fall back to ranged recipe reads when the index
// is missing, so removing a bad one restores service.
func (s *Scrubber) scanIndex(ctx context.Context, key string, rep *Report) error {
	data, err := s.blobs.Get(key)
	if err != nil {
		if corruptRead(err) {
			s.quarantineBlob(key, Finding{Key: key, Problem: err.Error()}, rep)
		}
		return nil
	}
	if err := s.pace(ctx, int64(len(data))); err != nil {
		return err
	}
	rep.BytesVerified += int64(len(data))
	s.reg.Counter(MetricBytes).Add(int64(len(data)))
	if _, derr := cas.DecodeIndex(data); derr != nil {
		s.quarantineBlob(key, Finding{Key: key, Problem: fmt.Sprintf("undecodable chunk index: %v", derr)}, rep)
	}
	return nil
}

// scanBlob verifies a raw (non-CAS) blob against its CRC manifest.
func (s *Scrubber) scanBlob(ctx context.Context, key string, rep *Report) error {
	sz, err := s.blobs.Size(key)
	if err != nil {
		return nil
	}
	if err := s.pace(ctx, sz); err != nil {
		return err
	}
	cerr := s.blobs.Check(key)
	switch {
	case cerr == nil:
		rep.BytesVerified += sz
		s.reg.Counter(MetricBytes).Add(sz)
	case errors.Is(cerr, blobstore.ErrNoChecksum):
		// Pre-checksum blob: nothing to verify against.
	case backend.IsNotFound(cerr):
	case errors.Is(cerr, blobstore.ErrChecksumMismatch):
		// Raw blobs are not content-addressed, so there is no peer
		// primitive to re-fetch them by; quarantine stops the rot from
		// being served and fsck reports the damaged set.
		s.quarantineBlob(key, Finding{Key: key, Problem: cerr.Error()}, rep)
	default:
		s.record(rep, Finding{Key: key, Problem: cerr.Error()})
	}
	return nil
}

// quarantineBlob moves a corrupt raw blob aside and records the
// finding.
func (s *Scrubber) quarantineBlob(key string, f Finding, rep *Report) {
	if _, err := s.blobs.Quarantine(key); err != nil {
		if !backend.IsNotFound(err) {
			f.RepairError = fmt.Sprintf("quarantine failed: %v", err)
		}
	} else {
		f.Quarantined = true
		rep.Quarantined++
		s.reg.Counter(MetricQuarantined).Inc()
		s.cas.InvalidateRaw(key)
	}
	s.record(rep, f)
}

// record appends a finding and bumps the error counter.
func (s *Scrubber) record(rep *Report, f Finding) {
	rep.Findings = append(rep.Findings, f)
	s.reg.Counter(MetricErrorsFound).Inc()
}

// String renders a one-line summary for CLI output.
func (r Report) String() string {
	return fmt.Sprintf("scanned %d keys (%d chunks, %d bytes verified): %d findings, %d quarantined, %d repaired",
		r.KeysScanned, r.ChunksVerified, r.BytesVerified, len(r.Findings), r.Quarantined, r.Repaired)
}
