package scrub

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
	"github.com/mmm-go/mmm/internal/storage/docstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// testStore is one store with its raw backend exposed for rot
// planting.
type testStore struct {
	be    *backend.Mem
	blobs *blobstore.Store
	docs  *docstore.Store
	cas   *cas.Store
}

func newTestStore() *testStore {
	be := backend.NewMem()
	blobs := blobstore.New(be, latency.CostModel{}, nil)
	return &testStore{be: be, blobs: blobs, docs: docstore.NewMem(), cas: cas.For(blobs)}
}

// seed writes n logical dedup blobs and returns their keys.
func (ts *testStore) seed(t *testing.T, n int) []string {
	t.Helper()
	var keys []string
	shared := bytes.Repeat([]byte("shared-tail "), 2048)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("m/%03d/params.bin", i)
		data := append(bytes.Repeat([]byte(fmt.Sprintf("unique-%03d ", i)), 1024), shared...)
		if _, err := ts.cas.Put(key, data, 4096, cas.Hints{}, nil); err != nil {
			t.Fatalf("seeding %s: %v", key, err)
		}
		keys = append(keys, key)
	}
	return keys
}

// rot flips one byte in the stored body of hash, behind every
// checksum.
func (ts *testStore) rot(t *testing.T, hash string) {
	t.Helper()
	key := cas.ChunkKey(hash)
	raw, err := ts.be.Get(key)
	if err != nil {
		t.Fatalf("reading %s: %v", key, err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := ts.be.Put(key, raw); err != nil {
		t.Fatalf("writing rot: %v", err)
	}
}

// chunkOf returns the i-th distinct chunk hash and logical size of a
// logical key.
func (ts *testStore) chunkOf(t *testing.T, key string, i int) (string, int64) {
	t.Helper()
	r, err := ts.cas.Recipe(key)
	if err != nil {
		t.Fatalf("Recipe(%s): %v", key, err)
	}
	return r.Chunks[i].Hash, r.Chunks[i].Size
}

// peerFetcher serves chunks from a healthy sibling store.
type peerFetcher struct{ cas *cas.Store }

func (p *peerFetcher) FetchChunk(_ context.Context, hash string, size int64) ([]byte, error) {
	return p.cas.GetChunk(hash, size)
}

// lyingFetcher returns bytes that do not match the requested address.
type lyingFetcher struct{}

func (lyingFetcher) FetchChunk(_ context.Context, _ string, size int64) ([]byte, error) {
	return bytes.Repeat([]byte{0x42}, int(size)), nil
}

func TestScrubCleanStore(t *testing.T) {
	ts := newTestStore()
	ts.seed(t, 4)
	s := New(ts.blobs, ts.docs, Config{Registry: obs.New()})
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	if !rep.Completed {
		t.Fatal("pass did not complete")
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean store produced findings: %+v", rep.Findings)
	}
	if rep.ChunksVerified == 0 || rep.BytesVerified == 0 {
		t.Fatalf("nothing verified: %+v", rep)
	}
	if s.Pass() != 1 {
		t.Fatalf("Pass() = %d, want 1", s.Pass())
	}
}

func TestScrubQuarantinesRotWithoutPeer(t *testing.T) {
	ts := newTestStore()
	keys := ts.seed(t, 3)
	hash, _ := ts.chunkOf(t, keys[0], 0)
	ts.rot(t, hash)

	reg := obs.New()
	s := New(ts.blobs, ts.docs, Config{Registry: reg})
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (findings: %+v)", rep.Quarantined, rep.Findings)
	}
	if rep.Repaired != 0 {
		t.Fatalf("Repaired = %d without a peer", rep.Repaired)
	}
	if !ts.cas.ChunkQuarantined(hash) {
		t.Fatal("rotted chunk not in quarantine")
	}
	// Reads fail fast with corruption — never wrong bytes, never a
	// bare not-found.
	if _, err := ts.cas.Get(keys[0]); !errors.Is(err, cas.ErrCorrupt) {
		t.Fatalf("Get of damaged set: err = %v, want ErrCorrupt", err)
	}
	if got := reg.Counter(MetricQuarantined).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricQuarantined, got)
	}
	if got := reg.Counter(MetricErrorsFound).Value(); got == 0 {
		t.Fatalf("%s = 0, want > 0", MetricErrorsFound)
	}
}

func TestScrubRepairsFromPeer(t *testing.T) {
	local, peer := newTestStore(), newTestStore()
	keys := local.seed(t, 3)
	peer.seed(t, 3) // identical content → identical chunks

	h0, _ := local.chunkOf(t, keys[0], 0)
	h1, _ := local.chunkOf(t, keys[1], 0)
	local.rot(t, h0)
	local.rot(t, h1)

	want := map[string][]byte{}
	for _, k := range keys {
		data, err := peer.cas.Get(k)
		if err != nil {
			t.Fatalf("peer read %s: %v", k, err)
		}
		want[k] = data
	}

	reg := obs.New()
	s := New(local.blobs, local.docs, Config{Registry: reg, Fetcher: &peerFetcher{cas: peer.cas}})
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	if rep.Repaired < 2 {
		t.Fatalf("Repaired = %d, want >= 2 (findings: %+v)", rep.Repaired, rep.Findings)
	}
	if got := reg.Counter(MetricRepairs).Value(); got < 2 {
		t.Fatalf("%s = %d, want >= 2", MetricRepairs, got)
	}
	for _, k := range keys {
		got, err := local.cas.Get(k)
		if err != nil {
			t.Fatalf("read %s after heal: %v", k, err)
		}
		if !bytes.Equal(got, want[k]) {
			t.Fatalf("%s not byte-identical after heal", k)
		}
	}
	if q, _ := local.cas.QuarantinedChunks(); len(q) != 0 {
		t.Fatalf("quarantine not emptied after repair: %v", q)
	}
}

func TestScrubRepairsMissingChunk(t *testing.T) {
	local, peer := newTestStore(), newTestStore()
	keys := local.seed(t, 2)
	peer.seed(t, 2)
	hash, _ := local.chunkOf(t, keys[0], 0)
	if err := local.blobs.Delete(cas.ChunkKey(hash)); err != nil {
		t.Fatalf("deleting chunk: %v", err)
	}
	s := New(local.blobs, local.docs, Config{Registry: obs.New(), Fetcher: &peerFetcher{cas: peer.cas}})
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("Repaired = %d, want 1 (findings: %+v)", rep.Repaired, rep.Findings)
	}
	if _, err := local.cas.Get(keys[0]); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestScrubRejectsLyingPeer(t *testing.T) {
	ts := newTestStore()
	keys := ts.seed(t, 1)
	hash, _ := ts.chunkOf(t, keys[0], 0)
	ts.rot(t, hash)
	s := New(ts.blobs, ts.docs, Config{Registry: obs.New(), Fetcher: lyingFetcher{}})
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	if rep.Repaired != 0 {
		t.Fatal("a lying peer's bytes were accepted")
	}
	if !ts.cas.ChunkQuarantined(hash) {
		t.Fatal("chunk left quarantine despite failed repair")
	}
	found := false
	for _, f := range rep.Findings {
		if f.RepairError != "" && strings.Contains(f.RepairError, "restore failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no restore-failure recorded: %+v", rep.Findings)
	}
}

func TestScrubCursorResumesAcrossRestart(t *testing.T) {
	ts := newTestStore()
	ts.seed(t, 4)
	reg := obs.New()

	s1 := New(ts.blobs, ts.docs, Config{Registry: reg, BatchKeys: 3})
	rep, err := s1.Step(context.Background())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if rep.Completed || rep.Cursor == "" {
		t.Fatalf("first batch of 3 keys completed the pass: %+v", rep)
	}

	// A fresh scrubber (new process) resumes from the persisted cursor.
	s2 := New(ts.blobs, ts.docs, Config{Registry: reg, BatchKeys: 1 << 20})
	rep2, err := s2.Step(context.Background())
	if err != nil {
		t.Fatalf("resumed Step: %v", err)
	}
	if !rep2.Completed {
		t.Fatalf("resumed step did not finish the pass: %+v", rep2)
	}
	if s2.Pass() != 1 {
		t.Fatalf("Pass() = %d, want 1", s2.Pass())
	}
	// The resumed batch must not rescan what the first batch covered.
	keys, _ := ts.blobs.Keys()
	if rep.KeysScanned+rep2.KeysScanned != len(keys) {
		t.Fatalf("scanned %d + %d keys, store has %d", rep.KeysScanned, rep2.KeysScanned, len(keys))
	}
}

func TestScrubResetCursor(t *testing.T) {
	ts := newTestStore()
	ts.seed(t, 3)
	s := New(ts.blobs, ts.docs, Config{Registry: obs.New(), BatchKeys: 2})
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatalf("Step: %v", err)
	}
	s.ResetCursor()
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	keys, _ := ts.blobs.Keys()
	if rep.KeysScanned != len(keys) {
		t.Fatalf("post-reset pass scanned %d keys, store has %d", rep.KeysScanned, len(keys))
	}
}

func TestScrubQuarantinesCorruptRawBlob(t *testing.T) {
	ts := newTestStore()
	key := "blobs/baseline/bl-000001/params.bin"
	if err := ts.blobs.Put(key, bytes.Repeat([]byte("raw blob "), 512)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	raw, _ := ts.be.Get(key)
	raw[7] ^= 0x80
	if err := ts.be.Put(key, raw); err != nil {
		t.Fatalf("rotting raw blob: %v", err)
	}
	s := New(ts.blobs, ts.docs, Config{Registry: obs.New()})
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (findings: %+v)", rep.Quarantined, rep.Findings)
	}
	if _, err := ts.blobs.Get(key); !blobstore.IsQuarantined(err) {
		t.Fatalf("Get of quarantined raw blob: err = %v", err)
	}
}

func TestScrubQuarantinesUndecodableIndex(t *testing.T) {
	ts := newTestStore()
	ts.seed(t, 1)
	key := "blobs/baseline/bl-000001/params.idx"
	if err := ts.blobs.Put(key, []byte("not an index at all")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s := New(ts.blobs, ts.docs, Config{Registry: obs.New()})
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (findings: %+v)", rep.Quarantined, rep.Findings)
	}
	// With the bad index gone, readers fall back to recipe-based reads.
	if _, err := ts.blobs.Get(key); !blobstore.IsQuarantined(err) {
		t.Fatalf("Get of quarantined index: err = %v", err)
	}
}

func TestScrubSkipsOrphanChunks(t *testing.T) {
	ts := newTestStore()
	ts.seed(t, 1)
	// An unreferenced chunk (mid-pull ingest, or GC debris): scrub must
	// leave it alone even when rotted — it has no recipe to verify
	// against and GC owns its lifecycle.
	orphan := bytes.Repeat([]byte("orphan"), 100)
	sum := orphanHash(orphan)
	if err := ts.cas.PutChunk(sum, orphan); err != nil {
		t.Fatalf("PutChunk: %v", err)
	}
	ts.rot(t, sum)
	s := New(ts.blobs, ts.docs, Config{Registry: obs.New()})
	rep, err := s.RunPass(context.Background())
	if err != nil {
		t.Fatalf("RunPass: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("orphan chunk produced findings: %+v", rep.Findings)
	}
}

func orphanHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func TestScrubRateLimitPacesBytes(t *testing.T) {
	ts := newTestStore()
	ts.seed(t, 2)
	// A generous budget must not stall the pass; an absurdly low one
	// must still finish under a canceled context with an error.
	s := New(ts.blobs, ts.docs, Config{Registry: obs.New(), RateBytesPerSec: 1 << 40})
	if _, err := s.RunPass(context.Background()); err != nil {
		t.Fatalf("RunPass with generous budget: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	slow := New(ts.blobs, docstore.NewMem(), Config{Registry: obs.New(), RateBytesPerSec: 1})
	if _, err := slow.RunPass(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunPass under canceled ctx: err = %v, want context.Canceled", err)
	}
}
