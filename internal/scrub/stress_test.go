package scrub

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/cas"
)

// The scrub-vs-lifecycle races: a background scrubber stepping through
// the keyspace while saves re-add chunks (pending-put guard), releases
// drop them to zero (eager delete), GC sweeps, and pinned readers hold
// chunks mid-read. Run under -race via `make race-stress`. The
// invariants: committed sets always read back byte-identical, a clean
// store is never quarantined, and nothing deadlocks.

func TestStressScrubConcurrentLifecycle(t *testing.T) {
	ts := newTestStore()
	stable := ts.seed(t, 3)
	want := map[string][]byte{}
	for _, k := range stable {
		data, err := ts.cas.Get(k)
		if err != nil {
			t.Fatalf("baseline read %s: %v", k, err)
		}
		want[k] = data
	}
	// Churn content shares its tail with the stable sets, so the
	// save/release cycle constantly re-takes references on chunks the
	// scrubber is walking.
	shared := bytes.Repeat([]byte("shared-tail "), 2048)

	s := New(ts.blobs, ts.docs, Config{Registry: obs.New(), BatchKeys: 16})
	ctx := context.Background()
	const iters = 40
	var wg sync.WaitGroup
	wg.Add(4)
	errc := make(chan error, 4)
	go func() { // saver: put + release churn keys that share chunks
		defer wg.Done()
		for i := 0; i < iters; i++ {
			key := fmt.Sprintf("churn/%02d/params.bin", i%4)
			data := append(bytes.Repeat([]byte(fmt.Sprintf("churn-%02d ", i%8)), 1024), shared...)
			if _, err := ts.cas.Put(key, data, 4096, cas.Hints{}, nil); err != nil {
				errc <- fmt.Errorf("put %s: %w", key, err)
				return
			}
			if _, err := ts.cas.Release(key, nil); err != nil {
				errc <- fmt.Errorf("release %s: %w", key, err)
				return
			}
		}
	}()
	go func() { // GC sweeps
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := ts.cas.GC(nil); err != nil {
				errc <- fmt.Errorf("gc: %w", err)
				return
			}
		}
	}()
	go func() { // pinned readers over the stable sets
		defer wg.Done()
		for i := 0; i < iters*2; i++ {
			k := stable[i%len(stable)]
			data, err := ts.cas.Get(k)
			if err != nil {
				errc <- fmt.Errorf("read %s: %w", k, err)
				return
			}
			if !bytes.Equal(data, want[k]) {
				errc <- fmt.Errorf("read %s returned wrong bytes", k)
				return
			}
		}
	}()
	go func() { // scrubber steps continuously
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := s.Step(ctx); err != nil {
				errc <- fmt.Errorf("scrub step: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Nothing was corrupt, so nothing may have been quarantined.
	if q, err := ts.cas.QuarantinedChunks(); err != nil || len(q) != 0 {
		t.Fatalf("clean store quarantined chunks %v (err %v)", q, err)
	}
	for _, k := range stable {
		data, err := ts.cas.Get(k)
		if err != nil {
			t.Fatalf("final read %s: %v", k, err)
		}
		if !bytes.Equal(data, want[k]) {
			t.Fatalf("final read %s returned wrong bytes", k)
		}
	}
}

func TestStressScrubHealsUnderConcurrentReads(t *testing.T) {
	local, peer := newTestStore(), newTestStore()
	keys := local.seed(t, 3)
	peer.seed(t, 3)
	want := map[string][]byte{}
	for _, k := range keys {
		data, err := peer.cas.Get(k)
		if err != nil {
			t.Fatalf("peer read %s: %v", k, err)
		}
		want[k] = data
	}
	hash, _ := local.chunkOf(t, keys[0], 0)
	local.rot(t, hash)

	s := New(local.blobs, local.docs, Config{Registry: obs.New(), BatchKeys: 8,
		Fetcher: &peerFetcher{cas: peer.cas}})
	var wg sync.WaitGroup
	wg.Add(2)
	errc := make(chan error, 2)
	go func() { // readers: corrupt bytes must never be served
		defer wg.Done()
		for i := 0; i < 80; i++ {
			k := keys[i%len(keys)]
			data, err := local.cas.Get(k)
			if err != nil {
				// Fail-fast is the contract mid-heal: corruption may
				// surface as the CRC mismatch (pre-quarantine) or the
				// quarantined-chunk error (post), never as wrong bytes.
				if errors.Is(err, cas.ErrCorrupt) || errors.Is(err, blobstore.ErrChecksumMismatch) {
					continue
				}
				errc <- fmt.Errorf("read %s: %w", k, err)
				return
			}
			if !bytes.Equal(data, want[k]) {
				errc <- fmt.Errorf("read %s returned wrong bytes", k)
				return
			}
		}
	}()
	go func() { // scrubber hunts and heals concurrently
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := s.Step(context.Background()); err != nil {
				errc <- fmt.Errorf("scrub step: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The rot may have been pinned at the moment the scrubber reached
	// it (guard skip); one quiet pass settles it.
	s.ResetCursor()
	if _, err := s.RunPass(context.Background()); err != nil {
		t.Fatalf("settling pass: %v", err)
	}
	for _, k := range keys {
		data, err := local.cas.Get(k)
		if err != nil {
			t.Fatalf("final read %s: %v", k, err)
		}
		if !bytes.Equal(data, want[k]) {
			t.Fatalf("final read %s not byte-identical", k)
		}
	}
	if q, _ := local.cas.QuarantinedChunks(); len(q) != 0 {
		t.Fatalf("quarantine not emptied: %v", q)
	}
}
