package blobstore

import (
	"bytes"
	"errors"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// corrupt flips one byte of the raw backend value at key, bypassing the
// store so the manifest entry keeps the original checksums.
func corrupt(t *testing.T, b backend.Backend, key string, at int) {
	t.Helper()
	raw, err := b.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	raw[at] ^= 0xff
	if err := b.Put(key, raw); err != nil {
		t.Fatal(err)
	}
}

func TestGetDetectsFlippedByte(t *testing.T) {
	mem := backend.NewMem()
	s := New(mem, latency.CostModel{}, nil)
	data := make([]byte, 3*checksumChunkSize/2) // spans two chunks
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.Put("p/blob.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("p/blob.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("clean get: %v", err)
	}
	if err := s.Check("p/blob.bin"); err != nil {
		t.Fatalf("clean check: %v", err)
	}

	for _, at := range []int{0, checksumChunkSize - 1, checksumChunkSize, len(data) - 1} {
		corrupt(t, mem, "p/blob.bin", at)
		if _, err := s.Get("p/blob.bin"); !errors.Is(err, ErrChecksumMismatch) {
			t.Errorf("flipped byte %d: Get returned %v, want ErrChecksumMismatch", at, err)
		}
		if err := s.Check("p/blob.bin"); !errors.Is(err, ErrChecksumMismatch) {
			t.Errorf("flipped byte %d: Check returned %v, want ErrChecksumMismatch", at, err)
		}
		corrupt(t, mem, "p/blob.bin", at) // restore
	}
}

func TestGetRangeVerifiesOnlyCoveringChunks(t *testing.T) {
	mem := backend.NewMem()
	s := New(mem, latency.CostModel{}, nil)
	data := make([]byte, 4*checksumChunkSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := s.Put("k", data); err != nil {
		t.Fatal(err)
	}

	// Corrupt a byte in chunk 3; reads inside chunks 0-2 must still
	// succeed, reads touching chunk 3 must fail.
	corrupt(t, mem, "k", 3*checksumChunkSize+5)
	got, err := s.GetRange("k", 10, int64(checksumChunkSize))
	if err != nil {
		t.Fatalf("range in clean chunks: %v", err)
	}
	if !bytes.Equal(got, data[10:10+checksumChunkSize]) {
		t.Error("range read returned wrong bytes")
	}
	if _, err := s.GetRange("k", int64(3*checksumChunkSize), 16); !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("range over corrupt chunk returned %v, want ErrChecksumMismatch", err)
	}
	// Unaligned range spanning the clean/corrupt boundary also fails.
	if _, err := s.GetRange("k", int64(3*checksumChunkSize)-8, 16); !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("boundary range returned %v, want ErrChecksumMismatch", err)
	}
}

func TestGetRangeBoundsComeFromManifest(t *testing.T) {
	s := NewMem()
	if err := s.Put("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRange("k", 8, 4); err == nil {
		t.Error("out-of-bounds range succeeded")
	}
	got, err := s.GetRange("k", 8, 2)
	if err != nil || string(got) != "89" {
		t.Fatalf("tail range: %q, %v", got, err)
	}
	if got, err := s.GetRange("k", 4, 0); err != nil || len(got) != 0 {
		t.Fatalf("empty range: %q, %v", got, err)
	}
}

func TestLegacyBlobWithoutManifestReadsUnverified(t *testing.T) {
	mem := backend.NewMem()
	s := New(mem, latency.CostModel{}, nil)
	// Simulate a pre-checksum store: blob written straight to the
	// backend with no manifest entry.
	if err := mem.Put("old/params.bin", []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("old/params.bin")
	if err != nil || string(got) != "legacy" {
		t.Fatalf("legacy get: %q, %v", got, err)
	}
	if got, err := s.GetRange("old/params.bin", 2, 3); err != nil || string(got) != "gac" {
		t.Fatalf("legacy range: %q, %v", got, err)
	}
	if err := s.Check("old/params.bin"); !errors.Is(err, ErrNoChecksum) {
		t.Fatalf("legacy check: %v, want ErrNoChecksum", err)
	}
}

func TestKeysHideManifestEntriesAndReservedKeysRejected(t *testing.T) {
	s := NewMem()
	if err := s.Put("a/b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "a/b" {
		t.Fatalf("Keys() = %v, want [a/b]", keys)
	}
	if err := s.Put(manifestPrefix+"evil", []byte("x")); err == nil {
		t.Error("reserved-namespace Put succeeded")
	}
}

func TestDeleteRemovesManifestEntry(t *testing.T) {
	mem := backend.NewMem()
	s := New(mem, latency.CostModel{}, nil)
	if err := s.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	raw, err := mem.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("delete left backend keys %v", raw)
	}
}

func TestIntegrityScan(t *testing.T) {
	mem := backend.NewMem()
	s := New(mem, latency.CostModel{}, nil)
	for _, k := range []string{"p/a", "p/b", "p/c"} {
		if err := s.Put(k, bytes.Repeat([]byte(k), 100)); err != nil {
			t.Fatal(err)
		}
	}
	issues, _, err := s.Integrity()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("clean store has issues: %v", issues)
	}

	corrupt(t, mem, "p/a", 7)                 // checksum mismatch
	if err := mem.Delete("p/b"); err != nil { // dangling manifest
		t.Fatal(err)
	}
	if err := mem.Put("p/d", []byte("new")); err != nil { // no manifest
		t.Fatal(err)
	}
	issues, _, err = s.Integrity()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]IntegrityIssue{}
	for _, i := range issues {
		byKey[i.Key] = i
	}
	if len(issues) != 3 {
		t.Fatalf("issues = %v, want 3", issues)
	}
	if !byKey["p/a"].Mismatch {
		t.Errorf("p/a: %+v, want mismatch", byKey["p/a"])
	}
	if !byKey["p/b"].Dangling {
		t.Errorf("p/b: %+v, want dangling", byKey["p/b"])
	}
	if i, ok := byKey["p/d"]; !ok || i.Dangling || i.Mismatch {
		t.Errorf("p/d: %+v, want unchecksummed", i)
	}
	// Repairing the dangling entry via Delete clears it.
	if err := s.Delete("p/b"); err != nil {
		t.Fatal(err)
	}
	issues, _, err = s.Integrity()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 2 {
		t.Fatalf("after repair: %v, want 2 issues", issues)
	}
}

// FuzzChecksumRoundTrip puts arbitrary data, reads it back in full and
// by range, and verifies a single flipped byte is always detected.
func FuzzChecksumRoundTrip(f *testing.F) {
	f.Add([]byte("hello blob"), uint16(2), uint16(4), uint16(3))
	f.Add([]byte{}, uint16(0), uint16(0), uint16(0))
	f.Add(bytes.Repeat([]byte{0xaa}, 300), uint16(100), uint16(150), uint16(299))
	f.Fuzz(func(t *testing.T, data []byte, off16, len16, flip16 uint16) {
		mem := backend.NewMem()
		s := New(mem, latency.CostModel{}, nil)
		if err := s.Put("k", data); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("k")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("round trip: %v", err)
		}
		if len(data) > 0 {
			off := int64(off16) % int64(len(data))
			length := int64(len16) % (int64(len(data)) - off + 1)
			r, err := s.GetRange("k", off, length)
			if err != nil {
				t.Fatalf("range [%d,%d): %v", off, off+length, err)
			}
			if !bytes.Equal(r, data[off:off+length]) {
				t.Fatalf("range [%d,%d) returned wrong bytes", off, off+length)
			}
			corrupt(t, mem, "k", int(flip16)%len(data))
			if _, err := s.Get("k"); !errors.Is(err, ErrChecksumMismatch) {
				t.Fatalf("flipped byte undetected: %v", err)
			}
		}
	})
}
