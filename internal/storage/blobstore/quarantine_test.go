package blobstore

import (
	"bytes"
	"errors"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

func TestQuarantineMovesBlobAside(t *testing.T) {
	be := backend.NewMem()
	s := New(be, latency.CostModel{}, nil)
	data := bytes.Repeat([]byte("rotting blob "), 100)
	if err := s.Put("blobs/a/params.bin", data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	n, err := s.Quarantine("blobs/a/params.bin")
	if err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if n != int64(len(data)) {
		t.Fatalf("Quarantine moved %d bytes, want %d", n, len(data))
	}

	// The original key reads as known-corrupt, not missing.
	_, err = s.Get("blobs/a/params.bin")
	if !IsQuarantined(err) || !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("Get of quarantined key: err = %v, want QuarantinedError", err)
	}
	if _, err := s.GetRange("blobs/a/params.bin", 0, 10); !IsQuarantined(err) {
		t.Fatalf("GetRange of quarantined key: err = %v, want QuarantinedError", err)
	}
	if !s.HasQuarantined("blobs/a/params.bin") {
		t.Fatal("HasQuarantined = false after quarantine")
	}

	// The damaged bytes are preserved, raw.
	raw, err := s.GetQuarantined("blobs/a/params.bin")
	if err != nil {
		t.Fatalf("GetQuarantined: %v", err)
	}
	if !bytes.Equal(raw, data) {
		t.Fatal("quarantined bytes differ from what was stored")
	}

	// Quarantined keys are invisible to enumeration and integrity.
	keys, err := s.Keys()
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 0 {
		t.Fatalf("Keys after quarantine = %v, want none", keys)
	}
	issues, _, err := s.Integrity()
	if err != nil {
		t.Fatalf("Integrity: %v", err)
	}
	if len(issues) != 0 {
		t.Fatalf("Integrity after quarantine reports %v, want nothing", issues)
	}

	entries, err := s.Quarantined()
	if err != nil {
		t.Fatalf("Quarantined: %v", err)
	}
	if len(entries) != 1 || entries[0].Key != "blobs/a/params.bin" || entries[0].Size != int64(len(data)) {
		t.Fatalf("Quarantined = %+v", entries)
	}

	// Writing a fresh blob under the key heals it.
	if err := s.Put("blobs/a/params.bin", data); err != nil {
		t.Fatalf("Put over quarantined key: %v", err)
	}
	if got, err := s.Get("blobs/a/params.bin"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after re-put: %v", err)
	}
	if err := s.DeleteQuarantined("blobs/a/params.bin"); err != nil {
		t.Fatalf("DeleteQuarantined: %v", err)
	}
	if s.HasQuarantined("blobs/a/params.bin") {
		t.Fatal("quarantined copy survived DeleteQuarantined")
	}
}

func TestPutRefusesQuarantineNamespace(t *testing.T) {
	s := NewMem()
	if err := s.Put(QuarantinePrefix+"x", []byte("no")); err == nil {
		t.Fatal("Put into the quarantine namespace succeeded")
	}
}

func TestQuarantineMissingKey(t *testing.T) {
	s := NewMem()
	if _, err := s.Quarantine("missing"); !backend.IsNotFound(err) {
		t.Fatalf("Quarantine of missing key: err = %v, want NotFound", err)
	}
}
