// Package blobstore is the binary artifact store of the model
// management system: parameter files, architecture definitions, and
// diff blobs live here. It corresponds to the "file store" in MMlib's
// storage layout.
//
// The store is instrumented — it counts operations and bytes and
// charges a latency.CostModel to a shared clock — because the paper's
// three metrics are exactly "how many bytes were written" (storage
// consumption) and "how long did writing/reading take" (TTS/TTR), and
// optimization O3 is about reducing the *number* of store writes.
package blobstore

import (
	"fmt"
	"hash/crc32"
	"strings"
	"sync"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// Stats counts a store's traffic since creation (or the last Reset).
type Stats struct {
	PutOps       int64
	GetOps       int64
	BytesWritten int64
	BytesRead    int64
}

// Store is an instrumented blob store. Safe for concurrent use if the
// underlying backend is.
type Store struct {
	backend backend.Backend
	model   latency.CostModel
	clock   *latency.Clock

	mu    sync.Mutex
	stats Stats
}

// New returns a store over b, charging costs from model to clock.
// A nil clock disables latency modeling.
func New(b backend.Backend, model latency.CostModel, clock *latency.Clock) *Store {
	return &Store{backend: b, model: model, clock: clock}
}

// NewMem returns an uninstrumented in-memory store, convenient for
// tests and plain library use.
func NewMem() *Store {
	return New(backend.NewMem(), latency.CostModel{}, nil)
}

// Put stores data under key and records its checksums in the store
// manifest. The blob is written first, so a manifest entry's presence
// implies its blob completed; if the manifest write fails, a fresh key
// is removed again so no half-committed pair remains, and an
// overwritten key is restored to its previous committed value — a
// transient bookkeeping failure must not destroy data that was already
// durable. Manifest traffic is bookkeeping and is charged to neither
// the statistics nor the latency model.
func (s *Store) Put(key string, data []byte) error {
	if strings.HasPrefix(key, manifestPrefix) {
		return fmt.Errorf("storage: key %q is in the reserved %q namespace", key, manifestPrefix)
	}
	if strings.HasPrefix(key, QuarantinePrefix) {
		return fmt.Errorf("storage: key %q is in the reserved %q namespace", key, QuarantinePrefix)
	}
	old, oldErr := s.backend.Get(key)
	if err := s.backend.Put(key, data); err != nil {
		return err
	}
	if err := s.writeManifest(key, data); err != nil {
		switch {
		case oldErr == nil:
			// Overwrite: put the old bytes back. Its manifest entry was
			// never touched, so the restored pair verifies again. If the
			// restore itself fails, the new bytes stay behind the old
			// manifest and fsck reports the mismatch instead of losing
			// the key outright.
			_ = s.backend.Put(key, old)
		case backend.IsNotFound(oldErr):
			_ = s.backend.Delete(key)
		default:
			// Existence unknown (the snapshot read failed): deleting
			// could destroy a committed blob, so leave the bytes for
			// fsck.
		}
		return err
	}
	s.mu.Lock()
	s.stats.PutOps++
	s.stats.BytesWritten += int64(len(data))
	s.mu.Unlock()
	if s.clock != nil {
		s.clock.Advance(s.model.WriteCost(len(data)))
	}
	return nil
}

// Get returns the blob stored under key, verified against its recorded
// checksums. Corrupted blobs return an error wrapping
// ErrChecksumMismatch; blobs without a manifest entry (written before
// checksumming existed) are returned unverified.
func (s *Store) Get(key string) ([]byte, error) {
	data, err := s.backend.Get(key)
	if err != nil {
		if backend.IsNotFound(err) && s.HasQuarantined(key) {
			return nil, &QuarantinedError{Key: key}
		}
		return nil, err
	}
	m, ok, err := s.readManifest(key)
	if err != nil {
		return nil, err
	}
	if ok {
		if err := verifyWhole(key, m, data); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.stats.GetOps++
	s.stats.BytesRead += int64(len(data))
	s.mu.Unlock()
	if s.clock != nil {
		s.clock.Advance(s.model.ReadCost(len(data)))
	}
	return data, nil
}

// GetRange returns length bytes starting at off of the blob under key.
// Like Get it counts as one read operation, and only the requested
// bytes are charged — the point of ranged reads when recovering single
// models out of a large parameter blob. Verification is chunked: the
// backend read is widened to chunk boundaries and only the chunks
// overlapping the request are checked, so a small ranged read costs at
// most one extra chunk on each side instead of the whole blob.
func (s *Store) GetRange(key string, off, length int64) ([]byte, error) {
	m, ok, err := s.readManifest(key)
	if err != nil {
		return nil, err
	}
	if !ok {
		data, err := s.backend.GetRange(key, off, length)
		if err != nil {
			if backend.IsNotFound(err) && s.HasQuarantined(key) {
				return nil, &QuarantinedError{Key: key}
			}
			return nil, err
		}
		s.chargeRead(len(data))
		return data, nil
	}
	if off < 0 || length < 0 || off+length > m.Size {
		return nil, &backend.RangeError{Key: key, Off: off, Length: length, Size: m.Size}
	}
	// Widen to chunk boundaries.
	start := off / m.ChunkSize * m.ChunkSize
	end := off + length
	if rem := end % m.ChunkSize; rem != 0 {
		end += m.ChunkSize - rem
	}
	if end > m.Size {
		end = m.Size
	}
	wide, err := s.backend.GetRange(key, start, end-start)
	if err != nil {
		return nil, err
	}
	for i := start / m.ChunkSize; i*m.ChunkSize < end; i++ {
		cs := i * m.ChunkSize
		ce := cs + m.ChunkSize
		if ce > end {
			ce = end
		}
		if int(i) >= len(m.CRCs) {
			return nil, &ChecksumError{Key: key, Chunk: -1}
		}
		if got := crc32.Checksum(wide[cs-start:ce-start], castagnoli); got != m.CRCs[i] {
			return nil, &ChecksumError{Key: key, Chunk: int(i), Want: m.CRCs[i], Got: got}
		}
	}
	data := wide[off-start : off-start+length]
	s.chargeRead(len(data))
	return data, nil
}

// chargeRead accounts one read of n bytes.
func (s *Store) chargeRead(n int) {
	s.mu.Lock()
	s.stats.GetOps++
	s.stats.BytesRead += int64(n)
	s.mu.Unlock()
	if s.clock != nil {
		s.clock.Advance(s.model.ReadCost(n))
	}
}

// Size returns the stored blob's length in bytes without reading it.
func (s *Store) Size(key string) (int64, error) { return s.backend.Size(key) }

// Delete removes key and its manifest entry; missing keys are not an
// error.
func (s *Store) Delete(key string) error {
	if err := s.backend.Delete(key); err != nil {
		return err
	}
	return s.backend.Delete(manifestPrefix + key)
}

// Keys returns all stored blob keys in sorted order. Manifest entries
// are internal and not listed.
func (s *Store) Keys() ([]string, error) {
	keys, err := s.backend.Keys()
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		if !strings.HasPrefix(k, manifestPrefix) && !strings.HasPrefix(k, QuarantinePrefix) {
			out = append(out, k)
		}
	}
	return out, nil
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the traffic counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
}
