// Package blobstore is the binary artifact store of the model
// management system: parameter files, architecture definitions, and
// diff blobs live here. It corresponds to the "file store" in MMlib's
// storage layout.
//
// The store is instrumented — it counts operations and bytes and
// charges a latency.CostModel to a shared clock — because the paper's
// three metrics are exactly "how many bytes were written" (storage
// consumption) and "how long did writing/reading take" (TTS/TTR), and
// optimization O3 is about reducing the *number* of store writes.
package blobstore

import (
	"sync"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// Stats counts a store's traffic since creation (or the last Reset).
type Stats struct {
	PutOps       int64
	GetOps       int64
	BytesWritten int64
	BytesRead    int64
}

// Store is an instrumented blob store. Safe for concurrent use if the
// underlying backend is.
type Store struct {
	backend backend.Backend
	model   latency.CostModel
	clock   *latency.Clock

	mu    sync.Mutex
	stats Stats
}

// New returns a store over b, charging costs from model to clock.
// A nil clock disables latency modeling.
func New(b backend.Backend, model latency.CostModel, clock *latency.Clock) *Store {
	return &Store{backend: b, model: model, clock: clock}
}

// NewMem returns an uninstrumented in-memory store, convenient for
// tests and plain library use.
func NewMem() *Store {
	return New(backend.NewMem(), latency.CostModel{}, nil)
}

// Put stores data under key.
func (s *Store) Put(key string, data []byte) error {
	if err := s.backend.Put(key, data); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.PutOps++
	s.stats.BytesWritten += int64(len(data))
	s.mu.Unlock()
	if s.clock != nil {
		s.clock.Advance(s.model.WriteCost(len(data)))
	}
	return nil
}

// Get returns the blob stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	data, err := s.backend.Get(key)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.GetOps++
	s.stats.BytesRead += int64(len(data))
	s.mu.Unlock()
	if s.clock != nil {
		s.clock.Advance(s.model.ReadCost(len(data)))
	}
	return data, nil
}

// GetRange returns length bytes starting at off of the blob under key.
// Like Get it counts as one read operation, but only the requested
// bytes are charged — the point of ranged reads when recovering single
// models out of a large parameter blob.
func (s *Store) GetRange(key string, off, length int64) ([]byte, error) {
	data, err := s.backend.GetRange(key, off, length)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.GetOps++
	s.stats.BytesRead += int64(len(data))
	s.mu.Unlock()
	if s.clock != nil {
		s.clock.Advance(s.model.ReadCost(len(data)))
	}
	return data, nil
}

// Size returns the stored blob's length in bytes without reading it.
func (s *Store) Size(key string) (int64, error) { return s.backend.Size(key) }

// Delete removes key; missing keys are not an error.
func (s *Store) Delete(key string) error { return s.backend.Delete(key) }

// Keys returns all stored keys in sorted order.
func (s *Store) Keys() ([]string, error) { return s.backend.Keys() }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the traffic counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
}
