package blobstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/mmm-go/mmm/internal/storage/backend"
)

// Corruption quarantine: when a scrub or read-path verification finds a
// blob whose bytes no longer match their recorded digest, the damaged
// bytes are moved — never deleted — into the reserved "quarantine/"
// namespace. Quarantined keys are invisible to Keys, refused by Put,
// and skipped by Integrity, so the rest of the system sees the blob as
// missing-with-a-reason: reads fail fast with a QuarantinedError
// instead of serving rot, fsck can list the damage, and a repair (a
// verified re-fetch from a healthy peer) deletes the quarantined copy
// only after a good replacement is committed. Keeping the corrupt
// bytes preserves forensic evidence and any partially salvageable
// content.

// QuarantinePrefix is the reserved backend namespace holding
// quarantined blobs. A blob quarantined from key K lives at
// QuarantinePrefix+K, preserving the original layout underneath.
const QuarantinePrefix = "quarantine/"

// QuarantineKey returns the quarantine-namespace key for an original
// blob key.
func QuarantineKey(key string) string { return QuarantinePrefix + key }

// QuarantinedOriginal reports whether key is a quarantine-namespace
// key, and if so returns the original blob key it was moved from.
func QuarantinedOriginal(key string) (string, bool) {
	if strings.HasPrefix(key, QuarantinePrefix) {
		return key[len(QuarantinePrefix):], true
	}
	return "", false
}

// QuarantinedError reports a read of a blob whose bytes were moved to
// quarantine after failing verification. It wraps ErrChecksumMismatch:
// the blob is not merely missing, it is known-corrupt.
type QuarantinedError struct{ Key string }

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("storage: blob %q is quarantined as corrupt (preserved at %q)",
		e.Key, QuarantineKey(e.Key))
}

// Unwrap makes errors.Is(err, ErrChecksumMismatch) hold.
func (e *QuarantinedError) Unwrap() error { return ErrChecksumMismatch }

// IsQuarantined reports whether err is, or wraps, a quarantined-blob
// read error.
func IsQuarantined(err error) bool {
	var qe *QuarantinedError
	return errors.As(err, &qe)
}

// QuarantineEntry describes one quarantined blob.
type QuarantineEntry struct {
	// Key is the original blob key the bytes were quarantined from.
	Key string
	// Size is the quarantined payload's size in bytes.
	Size int64
}

// Quarantine moves the bytes stored under key into the quarantine
// namespace and removes the original blob and its manifest entry. The
// bytes are read raw (unverified — they are being quarantined exactly
// because they do not verify). Returns the number of bytes moved. A
// missing key returns the backend's NotFoundError.
func (s *Store) Quarantine(key string) (int64, error) {
	raw, err := s.backend.Get(key)
	if err != nil {
		return 0, err
	}
	if err := s.backend.Put(QuarantineKey(key), raw); err != nil {
		return 0, fmt.Errorf("storage: quarantining %q: %w", key, err)
	}
	if err := s.backend.Delete(key); err != nil {
		return 0, fmt.Errorf("storage: removing quarantined original %q: %w", key, err)
	}
	if err := s.backend.Delete(manifestPrefix + key); err != nil {
		return 0, fmt.Errorf("storage: removing manifest of quarantined %q: %w", key, err)
	}
	return int64(len(raw)), nil
}

// HasQuarantined reports whether key has a quarantined copy.
func (s *Store) HasQuarantined(key string) bool {
	_, err := s.backend.Size(QuarantineKey(key))
	return err == nil
}

// GetQuarantined returns the raw quarantined bytes of key, unverified —
// they are known not to match their original digest.
func (s *Store) GetQuarantined(key string) ([]byte, error) {
	return s.backend.Get(QuarantineKey(key))
}

// DeleteQuarantined discards the quarantined copy of key. Called only
// after a verified replacement is committed (repair) or an operator
// explicitly gives the data up (fsck -repair of an unreferenced
// entry).
func (s *Store) DeleteQuarantined(key string) error {
	return s.backend.Delete(QuarantineKey(key))
}

// Quarantined lists all quarantined blobs by their original key, in
// sorted order.
func (s *Store) Quarantined() ([]QuarantineEntry, error) {
	keys, err := s.backend.Keys()
	if err != nil {
		return nil, err
	}
	var out []QuarantineEntry
	for _, k := range keys {
		orig, ok := QuarantinedOriginal(k)
		if !ok {
			continue
		}
		sz, err := s.backend.Size(k)
		if err != nil && !backend.IsNotFound(err) {
			return nil, err
		}
		out = append(out, QuarantineEntry{Key: orig, Size: sz})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
