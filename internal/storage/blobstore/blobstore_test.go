package blobstore

import (
	"strings"
	"testing"
	"time"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewMem()
	if err := s.Put("params/set1.bin", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("params/set1.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("Get = %v", got)
	}
}

func TestGetMissing(t *testing.T) {
	s := NewMem()
	if _, err := s.Get("nope"); !backend.IsNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
}

func TestStatsCount(t *testing.T) {
	s := NewMem()
	if err := s.Put("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PutOps != 2 || st.BytesWritten != 150 {
		t.Errorf("write stats = %+v", st)
	}
	if st.GetOps != 1 || st.BytesRead != 100 {
		t.Errorf("read stats = %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestStatsNotCountedOnError(t *testing.T) {
	f := backend.NewFaulty(backend.NewMem())
	s := New(f, latency.CostModel{}, nil)
	f.FailNextPuts(1)
	if err := s.Put("a", make([]byte, 10)); err == nil {
		t.Fatal("injected fault not surfaced")
	}
	if st := s.Stats(); st.PutOps != 0 || st.BytesWritten != 0 {
		t.Errorf("failed write counted: %+v", st)
	}
}

func TestPutManifestFailureRollsBackFreshKey(t *testing.T) {
	f := backend.NewFaulty(backend.NewMem())
	s := New(f, latency.CostModel{}, nil)
	f.FailPutsAfter(1) // blob write succeeds, manifest write fails
	if err := s.Put("a", []byte("torn")); err == nil {
		t.Fatal("Put succeeded despite manifest write failure")
	}
	f.FailPutsAfter(-1)
	if _, err := s.Get("a"); !backend.IsNotFound(err) {
		t.Fatalf("half-committed fresh key survived rollback: %v", err)
	}
	if keys, _ := s.Keys(); len(keys) != 0 {
		t.Fatalf("Keys after rollback = %v, want none", keys)
	}
}

// manifestFaulty fails Puts into the manifest namespace while letting
// blob writes (including Put's rollback restore) through, modeling a
// transient failure of exactly the bookkeeping write.
type manifestFaulty struct {
	backend.Backend
	fail bool
}

func (b *manifestFaulty) Put(key string, data []byte) error {
	if b.fail && strings.HasPrefix(key, manifestPrefix) {
		return backend.ErrInjected
	}
	return b.Backend.Put(key, data)
}

func TestPutManifestFailurePreservesOverwrittenBlob(t *testing.T) {
	f := &manifestFaulty{Backend: backend.NewMem()}
	s := New(f, latency.CostModel{}, nil)
	oldValue := []byte("old committed value")
	if err := s.Put("a", oldValue); err != nil {
		t.Fatal(err)
	}
	f.fail = true // blob overwrite succeeds, manifest write fails
	if err := s.Put("a", []byte("replacement")); err == nil {
		t.Fatal("Put succeeded despite manifest write failure")
	}
	f.fail = false
	got, err := s.Get("a")
	if err != nil {
		t.Fatalf("previous committed value unreadable after failed overwrite: %v", err)
	}
	if string(got) != string(oldValue) {
		t.Fatalf("Get = %q, want the previous committed value %q", got, oldValue)
	}
	if issues, _, err := s.Integrity(); err != nil || len(issues) != 0 {
		t.Fatalf("store inconsistent after failed overwrite: %v, %v", issues, err)
	}
}

func TestLatencyCharged(t *testing.T) {
	var clock latency.Clock
	model := latency.CostModel{
		WriteOp: time.Millisecond, ReadOp: 2 * time.Millisecond,
		WriteMBps: 1, ReadMBps: 1, // 1 MB/s: 1e6 bytes = 1 s
	}
	s := New(backend.NewMem(), model, &clock)
	if err := s.Put("big", make([]byte, 1e6)); err != nil {
		t.Fatal(err)
	}
	want := time.Second + time.Millisecond
	if got := clock.Elapsed(); got != want {
		t.Fatalf("after Put clock = %v, want %v", got, want)
	}
	clock.Reset()
	if _, err := s.Get("big"); err != nil {
		t.Fatal(err)
	}
	want = time.Second + 2*time.Millisecond
	if got := clock.Elapsed(); got != want {
		t.Fatalf("after Get clock = %v, want %v", got, want)
	}
}

func TestDeleteAndKeys(t *testing.T) {
	s := NewMem()
	for _, k := range []string{"b", "a"} {
		if err := s.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("Keys = %v", keys)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	keys, _ = s.Keys()
	if len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("Keys after delete = %v", keys)
	}
}
