package blobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/mmm-go/mmm/internal/storage/backend"
)

// Blob integrity: every Put records a manifest entry holding CRC32C
// checksums of the blob's fixed-size chunks, and every Get/GetRange
// verifies the chunks it touches before returning data. Deduplicated
// multi-model storage concentrates blast radius — one shared parameter
// blob stands in for thousands of models — so silent corruption must be
// detected at the read path, not discovered as garbage parameters.
//
// Manifest entries live in the same backend under the reserved
// ".integrity/" key prefix, which the store hides from Keys and refuses
// in Put, so they travel with the data (a directory copy of a Dir
// backend keeps its checksums) without appearing as blobs.

// manifestPrefix is the reserved backend namespace for manifest
// entries. A blob at key K has its manifest entry at manifestPrefix+K.
const manifestPrefix = ".integrity/"

// checksumChunkSize is the granularity of checksum verification.
// Ranged reads verify only the chunks overlapping the request, so the
// chunk size bounds the read amplification of a small GetRange (at most
// two extra chunks) while keeping manifest entries small (8 bytes of
// JSON per 64 KiB of blob).
const checksumChunkSize = 64 * 1024

// castagnoli is the CRC32C polynomial table (iSCSI / ext4 / NeurStore
// tensor pages use the same polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksumMismatch reports that stored bytes do not match the
// checksum recorded when they were written. Errors returned from Get,
// GetRange, and Check wrap it; match with errors.Is.
var ErrChecksumMismatch = errors.New("storage: blob checksum mismatch")

// ErrNoChecksum reports that a blob has no recorded manifest entry, so
// its integrity cannot be verified (a store written before checksumming
// existed, or a blob whose manifest entry was lost).
var ErrNoChecksum = errors.New("storage: no checksum recorded")

// ChecksumError carries the details of one checksum failure.
type ChecksumError struct {
	Key   string
	Chunk int // -1: size mismatch between manifest and blob
	Want  uint32
	Got   uint32
}

func (e *ChecksumError) Error() string {
	if e.Chunk < 0 {
		return fmt.Sprintf("storage: blob %q does not match its recorded size", e.Key)
	}
	return fmt.Sprintf("storage: blob %q chunk %d has CRC32C %08x, recorded %08x",
		e.Key, e.Chunk, e.Got, e.Want)
}

// Unwrap makes errors.Is(err, ErrChecksumMismatch) hold.
func (e *ChecksumError) Unwrap() error { return ErrChecksumMismatch }

// blobManifest is one blob's integrity record.
type blobManifest struct {
	Size      int64    `json:"size"`
	ChunkSize int64    `json:"chunk_size"`
	CRCs      []uint32 `json:"crcs"`
}

// chunkCRCs checksums data in checksumChunkSize chunks.
func chunkCRCs(data []byte) []uint32 {
	n := (len(data) + checksumChunkSize - 1) / checksumChunkSize
	crcs := make([]uint32, 0, n)
	for off := 0; off < len(data); off += checksumChunkSize {
		end := off + checksumChunkSize
		if end > len(data) {
			end = len(data)
		}
		crcs = append(crcs, crc32.Checksum(data[off:end], castagnoli))
	}
	return crcs
}

// writeManifest records data's checksums for key. Called after the blob
// itself is durable, so a manifest entry's presence implies a fully
// written blob.
func (s *Store) writeManifest(key string, data []byte) error {
	m := blobManifest{Size: int64(len(data)), ChunkSize: checksumChunkSize, CRCs: chunkCRCs(data)}
	enc, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("storage: encoding manifest of %q: %w", key, err)
	}
	return s.backend.Put(manifestPrefix+key, enc)
}

// readManifest loads key's manifest entry. ok is false when no entry
// exists (legacy blob).
func (s *Store) readManifest(key string) (m blobManifest, ok bool, err error) {
	raw, err := s.backend.Get(manifestPrefix + key)
	if backend.IsNotFound(err) {
		return blobManifest{}, false, nil
	}
	if err != nil {
		return blobManifest{}, false, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return blobManifest{}, false, fmt.Errorf("storage: parsing manifest of %q: %w", key, err)
	}
	if m.ChunkSize <= 0 {
		return blobManifest{}, false, fmt.Errorf("storage: manifest of %q has chunk size %d", key, m.ChunkSize)
	}
	return m, true, nil
}

// verifyWhole checks all of data against m.
func verifyWhole(key string, m blobManifest, data []byte) error {
	if int64(len(data)) != m.Size {
		return &ChecksumError{Key: key, Chunk: -1}
	}
	got := chunkCRCs(data)
	if len(got) != len(m.CRCs) {
		return &ChecksumError{Key: key, Chunk: -1}
	}
	for i, crc := range got {
		if crc != m.CRCs[i] {
			return &ChecksumError{Key: key, Chunk: i, Want: m.CRCs[i], Got: crc}
		}
	}
	return nil
}

// Check reads the blob at key in full and verifies it against its
// recorded checksums. It returns a ChecksumError (wrapping
// ErrChecksumMismatch) on corruption, ErrNoChecksum if no manifest
// entry exists, and the backend's NotFoundError if the blob is missing.
func (s *Store) Check(key string) error {
	m, ok, err := s.readManifest(key)
	if err != nil {
		return err
	}
	data, err := s.backend.Get(key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("storage: blob %q: %w", key, ErrNoChecksum)
	}
	return verifyWhole(key, m, data)
}

// IntegrityIssue is one problem found by an Integrity scan.
type IntegrityIssue struct {
	// Key is the blob key the issue concerns.
	Key string
	// Problem describes the issue.
	Problem string
	// Dangling marks a manifest entry whose blob is gone; Delete(Key)
	// removes it.
	Dangling bool
	// Mismatch marks a failed checksum verification.
	Mismatch bool
}

func (i IntegrityIssue) String() string { return i.Key + ": " + i.Problem }

// Integrity scans the whole store: every manifest entry must have its
// blob, every blob should have a manifest entry, and every
// blob/manifest pair must verify. It returns the issues found and the
// number of blob bytes read.
func (s *Store) Integrity() ([]IntegrityIssue, int64, error) {
	raw, err := s.backend.Keys()
	if err != nil {
		return nil, 0, err
	}
	manifests := map[string]bool{}
	var blobs []string
	for _, k := range raw {
		if _, quarantined := QuarantinedOriginal(k); quarantined {
			// Quarantined bytes are known-corrupt by construction; fsck
			// reports them from the quarantine listing instead.
			continue
		}
		if len(k) > len(manifestPrefix) && k[:len(manifestPrefix)] == manifestPrefix {
			manifests[k[len(manifestPrefix):]] = true
		} else {
			blobs = append(blobs, k)
		}
	}
	var issues []IntegrityIssue
	var bytesRead int64
	for _, k := range blobs {
		if !manifests[k] {
			issues = append(issues, IntegrityIssue{Key: k, Problem: "no checksum recorded"})
			continue
		}
		delete(manifests, k)
		err := s.Check(k)
		if sz, serr := s.backend.Size(k); serr == nil {
			bytesRead += sz
		}
		if err != nil {
			issues = append(issues, IntegrityIssue{Key: k, Problem: err.Error(),
				Mismatch: errors.Is(err, ErrChecksumMismatch)})
		}
	}
	dangling := make([]string, 0, len(manifests))
	for k := range manifests {
		dangling = append(dangling, k)
	}
	sort.Strings(dangling)
	for _, k := range dangling {
		issues = append(issues, IntegrityIssue{Key: k,
			Problem: "checksum manifest entry without blob (orphaned partial write)", Dangling: true})
	}
	return issues, bytesRead, nil
}
