package sim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/backend"
)

// The oracle tests drive a sim Node and a real filesystem (Dir) backend
// with the same operation sequence and require identical observable
// behavior — values, key listings, and error classes. The sim backend
// is only a trustworthy stand-in for crash testing if it is
// semantically indistinguishable from the backend real stores run on.

// oracleKeys is the pool of keys the oracle draws from. No key is a
// directory-prefix of another: the Dir backend cannot hold both a file
// "a" and a file "a/b", a filesystem restriction the byte-oriented
// backends don't share and which the Backend contract doesn't require
// callers to exercise.
var oracleKeys = []string{"a", "b/c", "d/e/f", "g", "h/i"}

// errClass buckets an error for cross-backend comparison. Messages
// differ between implementations; classes must not.
func errClass(err error) string {
	var rangeErr *backend.RangeError
	switch {
	case err == nil:
		return "nil"
	case backend.IsNotFound(err):
		return "notfound"
	case errors.As(err, &rangeErr):
		return "range"
	default:
		return "other"
	}
}

// oracleStep applies one op (decoded from three bytes) to both backends
// and reports any divergence.
func oracleStep(sim, real backend.Backend, opByte, keyByte, argByte byte) error {
	key := oracleKeys[int(keyByte)%len(oracleKeys)]
	switch opByte % 6 {
	case 0: // Put
		data := bytes.Repeat([]byte{argByte}, int(argByte)%97)
		e1, e2 := sim.Put(key, data), real.Put(key, data)
		if errClass(e1) != errClass(e2) {
			return fmt.Errorf("Put(%q): sim %v, real %v", key, e1, e2)
		}
	case 1: // Get
		v1, e1 := sim.Get(key)
		v2, e2 := real.Get(key)
		if errClass(e1) != errClass(e2) || !bytes.Equal(v1, v2) {
			return fmt.Errorf("Get(%q): sim (%d bytes, %v), real (%d bytes, %v)", key, len(v1), e1, len(v2), e2)
		}
	case 2: // GetRange, off and length from argByte (may be out of bounds)
		off, length := int64(argByte%13), int64(argByte%29)
		v1, e1 := sim.GetRange(key, off, length)
		v2, e2 := real.GetRange(key, off, length)
		if errClass(e1) != errClass(e2) || !bytes.Equal(v1, v2) {
			return fmt.Errorf("GetRange(%q, %d, %d): sim (%q, %v), real (%q, %v)", key, off, length, v1, e1, v2, e2)
		}
	case 3: // Size
		n1, e1 := sim.Size(key)
		n2, e2 := real.Size(key)
		if errClass(e1) != errClass(e2) || n1 != n2 {
			return fmt.Errorf("Size(%q): sim (%d, %v), real (%d, %v)", key, n1, e1, n2, e2)
		}
	case 4: // Delete
		e1, e2 := sim.Delete(key), real.Delete(key)
		if errClass(e1) != errClass(e2) {
			return fmt.Errorf("Delete(%q): sim %v, real %v", key, e1, e2)
		}
	case 5: // Keys
		k1, e1 := sim.Keys()
		k2, e2 := real.Keys()
		if errClass(e1) != errClass(e2) || fmt.Sprint(k1) != fmt.Sprint(k2) {
			return fmt.Errorf("Keys(): sim (%v, %v), real (%v, %v)", k1, e1, k2, e2)
		}
	}
	return nil
}

func TestOracleSimMatchesDirBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		real, err := backend.NewDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		node := NewWorld().Node("oracle")
		for step := 0; step < 200; step++ {
			op, key, arg := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
			if err := oracleStep(node, real, op, key, arg); err != nil {
				t.Fatalf("round %d step %d: %v", round, step, err)
			}
		}
	}
}

// FuzzBackendOracle feeds arbitrary op sequences (three bytes per op)
// to the sim and Dir backends in lockstep.
func FuzzBackendOracle(f *testing.F) {
	f.Add([]byte{0, 0, 5, 1, 0, 0, 4, 0, 0, 1, 0, 0})    // put, get, delete, get
	f.Add([]byte{0, 1, 50, 2, 1, 7, 3, 1, 0, 5, 0, 0})   // put, range, size, keys
	f.Add([]byte{0, 2, 96, 0, 2, 3, 2, 2, 255, 4, 2, 0}) // overwrite, oob range, delete
	f.Fuzz(func(t *testing.T, program []byte) {
		real, err := backend.NewDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		node := NewWorld().Node("oracle")
		for i := 0; i+2 < len(program); i += 3 {
			if err := oracleStep(node, real, program[i], program[i+1], program[i+2]); err != nil {
				t.Fatalf("op %d: %v", i/3, err)
			}
		}
	})
}
