// Package sim provides a simulated storage world for crash-consistency
// testing. A World hands out named Backend nodes (one per store — e.g.
// "docs" and "blobs") that record every mutation into a single shared
// trace while executing against in-memory state. Replay(n) rebuilds the
// durable state after exactly the first n mutations — the state a
// machine would find on disk had it crashed at that point — so a test
// can enumerate *every* crash point of a save and assert that each one
// leaves the store either fully invisible or fully recoverable.
//
// The model matches the Dir backend's semantics: each Put is atomic
// (temp file + rename) and each Delete is atomic, so crashes land
// between operations, never inside one. Reads are not recorded — they
// don't change durable state.
package sim

import (
	"sync"

	"github.com/mmm-go/mmm/internal/storage/backend"
)

// OpKind identifies a mutation type in a trace.
type OpKind int

const (
	// OpPut is a completed Put.
	OpPut OpKind = iota
	// OpDelete is a completed Delete.
	OpDelete
)

func (k OpKind) String() string {
	if k == OpPut {
		return "put"
	}
	return "delete"
}

// Op is one recorded mutation.
type Op struct {
	// Node is the name of the node the mutation hit.
	Node string
	// Kind is the mutation type.
	Kind OpKind
	// Key is the backend key.
	Key string
	// Data is the bytes written (nil for deletes). The slice is a copy;
	// callers may not share state with the writer.
	Data []byte
}

// World is a set of named backend nodes sharing one mutation trace.
// Safe for concurrent use.
type World struct {
	mu    sync.Mutex
	nodes map[string]*Node
	trace []Op
}

// NewWorld returns an empty world.
func NewWorld() *World {
	return &World{nodes: map[string]*Node{}}
}

// Node returns the named backend node, creating it on first use.
func (w *World) Node(name string) *Node {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, ok := w.nodes[name]
	if !ok {
		n = &Node{world: w, name: name, mem: backend.NewMem()}
		w.nodes[name] = n
	}
	return n
}

// Ops returns a copy of the mutation trace so far.
func (w *World) Ops() []Op {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Op(nil), w.trace...)
}

// Len returns the number of recorded mutations.
func (w *World) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.trace)
}

// record appends op to the trace. Called with the node's mutation
// already applied; the append and the application are covered by the
// same world lock, so concurrent writers serialize into a consistent
// order.
func (w *World) record(op Op) {
	w.trace = append(w.trace, op)
}

// Replay returns fresh in-memory backends holding the durable state
// after exactly the first n mutations — the disk a crashed machine
// would reboot to. The returned map has one entry per node name that
// exists in the world (nodes created after the first n ops still appear,
// empty). Replay does not disturb the live world; call it once per
// crash point.
func (w *World) Replay(n int) map[string]backend.Backend {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n > len(w.trace) {
		n = len(w.trace)
	}
	out := make(map[string]backend.Backend, len(w.nodes))
	for name := range w.nodes {
		out[name] = backend.NewMem()
	}
	for _, op := range w.trace[:n] {
		b, ok := out[op.Node]
		if !ok {
			b = backend.NewMem()
			out[op.Node] = b
		}
		switch op.Kind {
		case OpPut:
			_ = b.Put(op.Key, op.Data)
		case OpDelete:
			_ = b.Delete(op.Key)
		}
	}
	return out
}

// Node is one simulated storage node. It implements backend.Backend;
// mutations are applied to in-memory state and recorded in the owning
// world's trace atomically.
type Node struct {
	world *World
	name  string
	mem   *backend.Mem
}

// Name returns the node's name in the world.
func (n *Node) Name() string { return n.name }

// Put implements backend.Backend.
func (n *Node) Put(key string, data []byte) error {
	n.world.mu.Lock()
	defer n.world.mu.Unlock()
	if err := n.mem.Put(key, data); err != nil {
		return err
	}
	n.world.record(Op{Node: n.name, Kind: OpPut, Key: key, Data: append([]byte(nil), data...)})
	return nil
}

// Get implements backend.Backend.
func (n *Node) Get(key string) ([]byte, error) { return n.mem.Get(key) }

// GetRange implements backend.Backend.
func (n *Node) GetRange(key string, off, length int64) ([]byte, error) {
	return n.mem.GetRange(key, off, length)
}

// Size implements backend.Backend.
func (n *Node) Size(key string) (int64, error) { return n.mem.Size(key) }

// Delete implements backend.Backend.
func (n *Node) Delete(key string) error {
	n.world.mu.Lock()
	defer n.world.mu.Unlock()
	if err := n.mem.Delete(key); err != nil {
		return err
	}
	n.world.record(Op{Node: n.name, Kind: OpDelete, Key: key})
	return nil
}

// Keys implements backend.Backend.
func (n *Node) Keys() ([]string, error) { return n.mem.Keys() }
