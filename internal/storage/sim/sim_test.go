package sim

import (
	"bytes"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/backend"
)

func TestWorldRecordsAndReplaysPrefixes(t *testing.T) {
	w := NewWorld()
	blobs := w.Node("blobs")
	docs := w.Node("docs")

	ops := []func() error{
		func() error { return blobs.Put("m/params.bin", []byte("pppp")) },
		func() error { return docs.Put("sets/s1", []byte(`{"id":"s1"}`)) },
		func() error { return blobs.Delete("m/params.bin") },
		func() error { return blobs.Put("m/arch.json", []byte("{}")) },
	}
	for i, op := range ops {
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if w.Len() != 4 {
		t.Fatalf("trace length = %d, want 4", w.Len())
	}

	type state map[string]map[string]string // node -> key -> value
	want := []state{
		{"blobs": {}, "docs": {}},
		{"blobs": {"m/params.bin": "pppp"}, "docs": {}},
		{"blobs": {"m/params.bin": "pppp"}, "docs": {"sets/s1": `{"id":"s1"}`}},
		{"blobs": {}, "docs": {"sets/s1": `{"id":"s1"}`}},
		{"blobs": {"m/arch.json": "{}"}, "docs": {"sets/s1": `{"id":"s1"}`}},
	}
	for n, ws := range want {
		got := w.Replay(n)
		for node, kv := range ws {
			b, ok := got[node]
			if !ok {
				t.Fatalf("replay(%d): node %q missing", n, node)
			}
			keys, err := b.Keys()
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != len(kv) {
				t.Errorf("replay(%d) node %q: keys %v, want %d entries", n, node, keys, len(kv))
			}
			for k, v := range kv {
				data, err := b.Get(k)
				if err != nil || string(data) != v {
					t.Errorf("replay(%d) node %q key %q: %q, %v; want %q", n, node, k, data, err, v)
				}
			}
		}
	}

	// Replaying must not disturb the live world.
	if data, err := blobs.Get("m/arch.json"); err != nil || string(data) != "{}" {
		t.Fatalf("live node after replays: %q, %v", data, err)
	}
	// Out-of-range prefixes clamp.
	if got := w.Replay(99); len(got) != 2 {
		t.Errorf("replay(99) nodes = %d, want 2", len(got))
	}
	if keys, _ := w.Replay(-1)["blobs"].Keys(); len(keys) != 0 {
		t.Errorf("replay(-1) blobs keys = %v, want empty", keys)
	}
}

func TestReplayCopiesData(t *testing.T) {
	w := NewWorld()
	n := w.Node("blobs")
	data := []byte("abc")
	if err := n.Put("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // mutating the caller's slice must not leak into the trace
	got := w.Replay(1)
	v, err := got["blobs"].Get("k")
	if err != nil || !bytes.Equal(v, []byte("abc")) {
		t.Fatalf("replayed value %q, %v; want abc", v, err)
	}
}

func TestFailedOpsAreNotRecorded(t *testing.T) {
	w := NewWorld()
	n := w.Node("blobs")
	if err := n.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get("missing"); !backend.IsNotFound(err) {
		t.Fatalf("Get missing: %v", err)
	}
	if w.Len() != 1 {
		t.Fatalf("trace length = %d after failed read, want 1", w.Len())
	}
	// Reads never extend the trace.
	if _, err := n.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.GetRange("k", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Size("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Keys(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("trace length = %d after reads, want 1", w.Len())
	}
}

func TestNodeIsStablePerName(t *testing.T) {
	w := NewWorld()
	if w.Node("a") != w.Node("a") {
		t.Error("Node returned distinct instances for one name")
	}
	if w.Node("a") == w.Node("b") {
		t.Error("distinct names share a node")
	}
}
