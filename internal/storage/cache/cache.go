// Package cache is the hot-path serving tier's in-memory object cache:
// a sharded, size-bounded segmented-LRU keyed by string (chunk content
// addresses, recipe keys, per-set chunk-index keys) holding immutable
// decoded values.
//
// The policy is a classic SLRU with weighted admission:
//
//   - Each shard splits its byte budget into a probationary and a
//     protected segment. New entries of weight < ProtectedWeight enter
//     probation; a second touch promotes them. Entries admitted with
//     weight >= ProtectedWeight (for chunks: their CAS reference count,
//     i.e. how many saved sets share the bytes) enter protected
//     directly — highly shared chunks are hot by construction, which is
//     the admission signal refcount-weighted dedup caching gives us for
//     free.
//   - Eviction drains the probationary tail first, so a scan of
//     never-touched-again chunks (a one-off full recovery of a cold
//     set) cannot flush the protected working set.
//
// Values are stored decoded — for compressed chunk bodies the cache
// holds the logical bytes, so a hit skips store latency AND codec
// decode. Values must be treated as immutable by every reader: they
// are handed out without copying.
//
// All methods are safe for concurrent use. Per-shard state is guarded
// by one mutex per shard; the cache never calls out to user code while
// holding it (admission weight is a plain argument), so it cannot
// participate in lock-order cycles with its callers.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/mmm-go/mmm/internal/obs"
)

// ProtectedWeight is the admission weight at which an entry skips
// probation and enters the protected segment directly. For chunk
// entries the weight is the CAS refcount, so 2 means "shared by at
// least two saved sets".
const ProtectedWeight = 2

// Cache metric families exposed on /metrics.
const (
	// MetricHits counts lookups served from memory.
	MetricHits = "mmm_chunk_cache_hits_total"
	// MetricMisses counts lookups that fell through to the store.
	MetricMisses = "mmm_chunk_cache_misses_total"
	// MetricEvictions counts entries evicted to stay within budget.
	MetricEvictions = "mmm_chunk_cache_evictions_total"
	// MetricRejects counts entries refused at admission (larger than a
	// shard's whole budget).
	MetricRejects = "mmm_chunk_cache_admission_rejects_total"
	// MetricBytes gauges the bytes currently cached.
	MetricBytes = "mmm_chunk_cache_bytes"
	// MetricEntries gauges the entries currently cached.
	MetricEntries = "mmm_chunk_cache_entries"
)

// segment identifiers.
const (
	segProbation = iota
	segProtected
)

// Config configures a Cache.
type Config struct {
	// MaxBytes bounds the total cached bytes across all shards.
	// Values <= 0 produce a cache that admits nothing.
	MaxBytes int64
	// Shards is the number of independently locked shards; <= 0 uses
	// DefaultShards. Use 1 in tests that assert exact eviction order.
	Shards int
	// ProtectedFrac is the fraction of each shard's budget reserved for
	// the protected segment (0 < f < 1); 0 uses DefaultProtectedFrac.
	ProtectedFrac float64
	// Clock supplies the logical timestamps entries are stamped with on
	// every touch. nil uses an internal monotonic counter. Tests inject
	// a fake clock to make recency deterministic and observable.
	Clock func() int64
	// Registry receives the cache's metrics; nil means obs.Default.
	Registry *obs.Registry
}

// DefaultShards is the shard count when Config.Shards is unset.
const DefaultShards = 16

// DefaultProtectedFrac is the protected-segment share of each shard's
// budget when Config.ProtectedFrac is unset.
const DefaultProtectedFrac = 0.8

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Rejects   int64
	Entries   int64
	Bytes     int64
}

// entry is one cached object.
type entry struct {
	key      string
	val      any
	size     int64
	seg      int8
	lastUsed int64
	elem     *list.Element
}

// shard is one independently locked SLRU.
type shard struct {
	mu        sync.Mutex
	entries   map[string]*entry
	probation *list.List // front = most recent
	protected *list.List
	probBytes int64
	protBytes int64
}

// Cache is a sharded segmented-LRU over immutable values.
type Cache struct {
	shards       []*shard
	shardCap     int64
	protectedCap int64
	clock        func() int64
	tick         atomic.Int64 // default clock

	bytes   atomic.Int64
	entries atomic.Int64

	hits, misses, evictions, rejects *obs.Counter
	bytesGauge, entriesGauge         *obs.Gauge
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	frac := cfg.ProtectedFrac
	if frac <= 0 || frac >= 1 {
		frac = DefaultProtectedFrac
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe(MetricHits, "Chunk-cache lookups served from memory.")
	reg.Describe(MetricMisses, "Chunk-cache lookups that fell through to the store.")
	reg.Describe(MetricEvictions, "Chunk-cache entries evicted to stay within budget.")
	reg.Describe(MetricRejects, "Chunk-cache entries refused at admission (over shard budget).")
	reg.Describe(MetricBytes, "Bytes currently held by the chunk cache.")
	reg.Describe(MetricEntries, "Entries currently held by the chunk cache.")
	c := &Cache{
		shards:       make([]*shard, shards),
		shardCap:     cfg.MaxBytes / int64(shards),
		clock:        cfg.Clock,
		hits:         reg.Counter(MetricHits),
		misses:       reg.Counter(MetricMisses),
		evictions:    reg.Counter(MetricEvictions),
		rejects:      reg.Counter(MetricRejects),
		bytesGauge:   reg.Gauge(MetricBytes),
		entriesGauge: reg.Gauge(MetricEntries),
	}
	c.protectedCap = int64(float64(c.shardCap) * frac)
	for i := range c.shards {
		c.shards[i] = &shard{
			entries:   map[string]*entry{},
			probation: list.New(),
			protected: list.New(),
		}
	}
	return c
}

// MaxBytes returns the configured total byte budget.
func (c *Cache) MaxBytes() int64 { return c.shardCap * int64(len(c.shards)) }

// now returns the current logical time.
func (c *Cache) now() int64 {
	if c.clock != nil {
		return c.clock()
	}
	return c.tick.Add(1)
}

// shardOf picks the shard of key (FNV-1a).
func (c *Cache) shardOf(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Get returns the value cached under key. A hit refreshes the entry's
// recency and promotes probationary entries into the protected segment.
// The returned value is shared — callers must not mutate it.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardOf(key)
	now := c.now()
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	e.lastUsed = now
	if e.seg == segProbation {
		// Second touch: earned a protected slot.
		s.probation.Remove(e.elem)
		s.probBytes -= e.size
		e.seg = segProtected
		e.elem = s.protected.PushFront(e)
		s.protBytes += e.size
		s.demote(c)
	} else {
		s.protected.MoveToFront(e.elem)
	}
	v := e.val
	s.mu.Unlock()
	c.hits.Inc()
	return v, true
}

// Put admits a value of the given size under key. weight >=
// ProtectedWeight admits directly into the protected segment (for
// chunks the weight is the CAS refcount). Values larger than a whole
// shard's budget are rejected. Re-putting an existing key refreshes
// the stored value in place. Returns whether the value was admitted.
// The cache keeps a reference to val — callers must not mutate it.
func (c *Cache) Put(key string, val any, size int64, weight int) bool {
	if size < 0 {
		size = 0
	}
	s := c.shardOf(key)
	now := c.now()
	s.mu.Lock()
	if size > c.shardCap {
		s.mu.Unlock()
		c.rejects.Inc()
		return false
	}
	if e, ok := s.entries[key]; ok {
		// Same key: values are immutable by contract (content-addressed
		// chunks cannot change), so only refresh recency and the stored
		// value/size bookkeeping.
		delta := size - e.size
		e.val, e.size, e.lastUsed = val, size, now
		if e.seg == segProbation {
			s.probBytes += delta
			s.probation.MoveToFront(e.elem)
		} else {
			s.protBytes += delta
			s.protected.MoveToFront(e.elem)
		}
		c.adjust(delta, 0)
		s.evict(c)
		s.mu.Unlock()
		return true
	}
	e := &entry{key: key, val: val, size: size, lastUsed: now}
	if weight >= ProtectedWeight {
		e.seg = segProtected
		e.elem = s.protected.PushFront(e)
		s.protBytes += size
	} else {
		e.seg = segProbation
		e.elem = s.probation.PushFront(e)
		s.probBytes += size
	}
	s.entries[key] = e
	c.adjust(size, 1)
	s.demote(c)
	s.evict(c)
	s.mu.Unlock()
	return true
}

// Delete drops the entry under key, if cached. Callers invalidate on
// chunk deletion (GC, release) — not for correctness, since content
// addresses never change meaning, but so deleted data stops occupying
// budget.
func (c *Cache) Delete(key string) {
	s := c.shardOf(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.remove(e)
		c.adjust(-e.size, -1)
	}
	s.mu.Unlock()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Rejects:   c.rejects.Value(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
	}
}

// Bytes returns the bytes currently cached.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Len returns the entries currently cached.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// adjust applies a bytes/entries delta to the totals and gauges.
func (c *Cache) adjust(bytes, entries int64) {
	c.bytesGauge.Set(c.bytes.Add(bytes))
	c.entriesGauge.Set(c.entries.Add(entries))
}

// remove unlinks e from its segment and the map. Caller holds s.mu.
func (s *shard) remove(e *entry) {
	if e.seg == segProbation {
		s.probation.Remove(e.elem)
		s.probBytes -= e.size
	} else {
		s.protected.Remove(e.elem)
		s.protBytes -= e.size
	}
	delete(s.entries, e.key)
}

// demote moves protected-tail entries down into probation until the
// protected segment fits its budget share. Demotion keeps the bytes
// cached (they may be re-promoted by a touch); only eviction frees
// them. Caller holds s.mu.
func (s *shard) demote(c *Cache) {
	for s.protBytes > c.protectedCap {
		victim := s.protected.Back()
		if victim == nil {
			return
		}
		e := victim.Value.(*entry)
		s.protected.Remove(e.elem)
		s.protBytes -= e.size
		e.seg = segProbation
		e.elem = s.probation.PushFront(e)
		s.probBytes += e.size
	}
}

// evict removes probationary-tail (then protected-tail) entries until
// the shard fits its budget. Caller holds s.mu.
func (s *shard) evict(c *Cache) {
	for s.probBytes+s.protBytes > c.shardCap {
		victim := s.probation.Back()
		if victim == nil {
			victim = s.protected.Back()
		}
		if victim == nil {
			return
		}
		e := victim.Value.(*entry)
		s.remove(e)
		c.adjust(-e.size, -1)
		c.evictions.Inc()
	}
}
