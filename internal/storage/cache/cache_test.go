package cache

import (
	"fmt"
	"testing"

	"github.com/mmm-go/mmm/internal/obs"
)

// fakeClock is a deterministic logical clock tests advance by hand.
type fakeClock struct{ t int64 }

func (f *fakeClock) now() int64 { return f.t }

// newTest builds a single-shard cache with a fake clock so eviction
// order is fully deterministic and observable.
func newTest(t *testing.T, maxBytes int64) (*Cache, *fakeClock, *obs.Registry) {
	t.Helper()
	clk := &fakeClock{}
	reg := obs.New()
	c := New(Config{MaxBytes: maxBytes, Shards: 1, Clock: clk.now, Registry: reg})
	return c, clk, reg
}

func wantSegments(t *testing.T, c *Cache, probation, protected []string) {
	t.Helper()
	gotProb, gotProt := c.segmentKeys()
	if fmt.Sprint(gotProb) != fmt.Sprint(probation) {
		t.Fatalf("probation order = %v, want %v", gotProb, probation)
	}
	if fmt.Sprint(gotProt) != fmt.Sprint(protected) {
		t.Fatalf("protected order = %v, want %v", gotProt, protected)
	}
	if msg := c.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, _, _ := newTest(t, 1024)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	val := []byte("hello")
	if !c.Put("a", val, int64(len(val)), 1) {
		t.Fatal("put rejected")
	}
	got, ok := c.Get("a")
	if !ok {
		t.Fatal("miss after put")
	}
	if string(got.([]byte)) != "hello" {
		t.Fatalf("got %q", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewEntriesStartInProbation(t *testing.T) {
	c, _, _ := newTest(t, 1024)
	c.Put("a", "v", 10, 1)
	c.Put("b", "v", 10, 0)
	if seg := c.segmentOf("a"); seg != "probation" {
		t.Fatalf("a in %q, want probation", seg)
	}
	wantSegments(t, c, []string{"b", "a"}, nil)
}

func TestSecondTouchPromotes(t *testing.T) {
	c, clk, _ := newTest(t, 1024)
	c.Put("a", "v", 10, 1)
	clk.t++
	c.Get("a")
	if seg := c.segmentOf("a"); seg != "protected" {
		t.Fatalf("a in %q after second touch, want protected", seg)
	}
	wantSegments(t, c, nil, []string{"a"})
}

func TestHighWeightAdmitsDirectlyProtected(t *testing.T) {
	c, _, _ := newTest(t, 1024)
	c.Put("shared", "v", 10, ProtectedWeight)
	c.Put("cold", "v", 10, ProtectedWeight-1)
	wantSegments(t, c, []string{"cold"}, []string{"shared"})
}

func TestEvictionDrainsProbationTailFirst(t *testing.T) {
	// Budget of 100: three probation entries of 30 + one protected of
	// 30 fills 120 > 100, so the oldest probation entry must go — not
	// the protected one, even though it is older.
	c, clk, _ := newTest(t, 100)
	c.Put("hot", "v", 30, ProtectedWeight) // protected, t=0
	clk.t++
	c.Put("p1", "v", 30, 1)
	clk.t++
	c.Put("p2", "v", 30, 1)
	clk.t++
	c.Put("p3", "v", 30, 1) // 120 bytes → evict p1 (probation tail)
	wantSegments(t, c, []string{"p3", "p2"}, []string{"hot"})
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 90 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProtectedOverflowEvictsDemotedTail(t *testing.T) {
	c, clk, _ := newTest(t, 100)
	c.Put("h1", "v", 40, ProtectedWeight)
	clk.t++
	c.Put("h2", "v", 40, ProtectedWeight)
	clk.t++
	// 80/100 used, protected cap = 80 → h3 demotes the protected tail
	// (h1) into probation, then eviction removes it.
	c.Put("h3", "v", 40, ProtectedWeight)
	wantSegments(t, c, nil, []string{"h3", "h2"})
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUOrderWithinProbation(t *testing.T) {
	c, clk, _ := newTest(t, 90)
	c.Put("a", "v", 30, 1)
	clk.t++
	c.Put("b", "v", 30, 1)
	clk.t++
	c.Put("c", "v", 30, 1)
	clk.t++
	// Re-put "a" refreshes it to the front; inserting "d" must then
	// evict "b", the true tail.
	c.Put("a", "v", 30, 1)
	clk.t++
	c.Put("d", "v", 30, 1)
	wantSegments(t, c, []string{"d", "a", "c"}, nil)
}

func TestEvictionFallsBackToProtectedWhenProbationEmpty(t *testing.T) {
	// Growing a protected entry in place can push the shard over budget
	// with nothing in probation; eviction must then take the protected
	// tail rather than loop forever.
	c, clk, _ := newTest(t, 100)
	c.Put("h1", "v", 40, ProtectedWeight)
	clk.t++
	c.Put("h2", "v", 40, ProtectedWeight)
	clk.t++
	c.Put("h2", "v", 70, ProtectedWeight) // 110 > 100, probation empty
	wantSegments(t, c, nil, []string{"h2"})
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 70 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProtectedOverflowDemotesNotEvicts(t *testing.T) {
	// Shard budget 100, protected cap 80. Two 40-byte protected
	// entries fit; a third overflows protected and demotes the tail to
	// probation — still cached (total 120 > 100 forces one eviction of
	// the demoted entry; use budget 200 to keep all three).
	clk := &fakeClock{}
	c := New(Config{MaxBytes: 200, Shards: 1, ProtectedFrac: 0.5, Clock: clk.now, Registry: obs.New()})
	c.Put("h1", "v", 40, ProtectedWeight)
	clk.t++
	c.Put("h2", "v", 40, ProtectedWeight)
	clk.t++
	c.Put("h3", "v", 40, ProtectedWeight) // protected cap 100: 120 > 100 → demote h1
	wantSegments(t, c, []string{"h1"}, []string{"h3", "h2"})
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// A touch re-promotes the demoted entry.
	clk.t++
	c.Get("h1")
	if seg := c.segmentOf("h1"); seg != "protected" {
		t.Fatalf("h1 in %q after touch, want protected", seg)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c, _, _ := newTest(t, 100)
	if c.Put("big", "v", 101, 1) {
		t.Fatal("oversized value admitted")
	}
	if st := c.Stats(); st.Rejects != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Fits-exactly is admitted.
	if !c.Put("fits", "v", 100, 1) {
		t.Fatal("exact-size value rejected")
	}
}

func TestZeroBudgetAdmitsNothing(t *testing.T) {
	c := New(Config{MaxBytes: 0, Shards: 1, Registry: obs.New()})
	if c.Put("a", "v", 1, 1) {
		t.Fatal("admitted into zero-budget cache")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit in zero-budget cache")
	}
}

func TestDeleteRemovesAndFreesBudget(t *testing.T) {
	c, _, _ := newTest(t, 100)
	c.Put("a", "v", 60, 1)
	c.Delete("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit after delete")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Freed budget is reusable.
	if !c.Put("b", "v", 100, 1) {
		t.Fatal("put rejected after delete freed budget")
	}
	c.Delete("missing") // no-op
	if msg := c.checkInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestRePutUpdatesValueAndSize(t *testing.T) {
	c, _, _ := newTest(t, 100)
	c.Put("a", "old", 10, 1)
	c.Put("a", "new", 40, 1)
	got, ok := c.Get("a")
	if !ok || got.(string) != "new" {
		t.Fatalf("got %v, %v", got, ok)
	}
	if st := c.Stats(); st.Bytes != 40 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Growing an entry past budget evicts others, not itself
	// (it is front-of-list after the refresh).
	c.Put("b", "v", 50, 1)
	c.Put("a", "wide", 90, 1)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived over-budget refresh of a")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted itself")
	}
}

func TestMetricsRegistered(t *testing.T) {
	c, _, reg := newTest(t, 100)
	c.Put("a", "v", 10, 1)
	c.Get("a")
	c.Get("nope")
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, fam := range snap {
		found[fam.Name] = true
	}
	for _, name := range []string{MetricHits, MetricMisses, MetricEvictions, MetricRejects, MetricBytes, MetricEntries} {
		if !found[name] {
			t.Fatalf("metric %s not in snapshot", name)
		}
	}
}

func TestShardingSpreadsKeys(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 8, Registry: obs.New()})
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i, 64, 1)
	}
	used := 0
	for _, s := range c.shards {
		s.mu.Lock()
		if len(s.entries) > 0 {
			used++
		}
		s.mu.Unlock()
	}
	if used < 4 {
		t.Fatalf("only %d/8 shards used", used)
	}
	if msg := c.checkInvariants(); msg != "" {
		t.Fatal(msg)
	}
}
