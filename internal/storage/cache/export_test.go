package cache

// Test-only introspection: the eviction-policy unit tests assert exact
// segment membership and LRU order, which the public API deliberately
// does not expose.

// segmentKeys returns the keys of every shard's probation and protected
// lists, front (most recent) to back. Tests that assert exact order use
// Shards: 1 so the two slices are globally ordered.
func (c *Cache) segmentKeys() (probation, protected []string) {
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.probation.Front(); el != nil; el = el.Next() {
			probation = append(probation, el.Value.(*entry).key)
		}
		for el := s.protected.Front(); el != nil; el = el.Next() {
			protected = append(protected, el.Value.(*entry).key)
		}
		s.mu.Unlock()
	}
	return probation, protected
}

// segmentOf reports which segment key sits in: "probation",
// "protected", or "" when absent.
func (c *Cache) segmentOf(key string) string {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return ""
	}
	if e.seg == segProbation {
		return "probation"
	}
	return "protected"
}

// checkInvariants re-derives every shard's byte/entry accounting from
// its lists and reports the first inconsistency found, or "".
func (c *Cache) checkInvariants() string {
	var totalBytes, totalEntries int64
	for i, s := range c.shards {
		s.mu.Lock()
		var prob, prot int64
		for el := s.probation.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			prob += e.size
			if got, ok := s.entries[e.key]; !ok || got != e {
				s.mu.Unlock()
				return "probation element not in map: " + e.key
			}
			if e.seg != segProbation {
				s.mu.Unlock()
				return "probation element tagged protected: " + e.key
			}
		}
		for el := s.protected.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			prot += e.size
			if got, ok := s.entries[e.key]; !ok || got != e {
				s.mu.Unlock()
				return "protected element not in map: " + e.key
			}
			if e.seg != segProtected {
				s.mu.Unlock()
				return "protected element tagged probation: " + e.key
			}
		}
		if prob != s.probBytes || prot != s.protBytes {
			s.mu.Unlock()
			return "shard byte accounting drifted"
		}
		if s.probation.Len()+s.protected.Len() != len(s.entries) {
			s.mu.Unlock()
			return "shard entry count drifted"
		}
		if s.probBytes+s.protBytes > c.shardCap {
			s.mu.Unlock()
			return "shard over budget"
		}
		totalBytes += prob + prot
		totalEntries += int64(len(s.entries))
		s.mu.Unlock()
		_ = i
	}
	if totalBytes != c.bytes.Load() {
		return "global byte gauge drifted"
	}
	if totalEntries != c.entries.Load() {
		return "global entry gauge drifted"
	}
	return ""
}
