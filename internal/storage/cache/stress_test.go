package cache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/mmm-go/mmm/internal/obs"
)

// The stress battery hammers one cache from many goroutines and then
// re-derives every shard's accounting from its lists. Run under -race
// (make race-stress wires these into make check with -count=3).

func TestStressConcurrentPutGet(t *testing.T) {
	c := New(Config{MaxBytes: 64 << 10, Shards: 8, Registry: obs.New()})
	const goroutines = 8
	const opsPer = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("k-%d", (g*7+i*13)%256)
				switch i % 3 {
				case 0:
					c.Put(key, []byte(key), int64(64+i%512), 1+i%3)
				case 1:
					if v, ok := c.Get(key); ok {
						if _, isBytes := v.([]byte); !isBytes {
							panic("wrong value type")
						}
					}
				case 2:
					c.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if msg := c.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated after stress: %s", msg)
	}
	st := c.Stats()
	if st.Bytes > c.MaxBytes() {
		t.Fatalf("over budget after stress: %d > %d", st.Bytes, c.MaxBytes())
	}
}

func TestStressEvictionChurn(t *testing.T) {
	// Budget far below the working set so every Put evicts; checks the
	// eviction path under contention and that the budget holds.
	c := New(Config{MaxBytes: 4 << 10, Shards: 4, Registry: obs.New()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("churn-%d-%d", g, i)
				c.Put(key, i, 256, i%4)
				c.Get(key)
				c.Get(fmt.Sprintf("churn-%d-%d", (g+1)%8, i))
			}
		}(g)
	}
	wg.Wait()
	if msg := c.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions under churn")
	}
}

func TestStressSameKeyAllGoroutines(t *testing.T) {
	// Maximum contention: every goroutine re-puts, promotes, and
	// deletes the same key.
	c := New(Config{MaxBytes: 1 << 20, Shards: 1, Registry: obs.New()})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				switch (g + i) % 4 {
				case 0:
					c.Put("hot", []byte{byte(i)}, int64(1+i%128), 1)
				case 1, 2:
					c.Get("hot")
				case 3:
					c.Delete("hot")
				}
			}
		}(g)
	}
	wg.Wait()
	if msg := c.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestStressStatsWhileMutating(t *testing.T) {
	c := New(Config{MaxBytes: 32 << 10, Shards: 4, Registry: obs.New()})
	done := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-done:
				return
			default:
				_ = c.Stats()
				_ = c.Bytes()
				_ = c.Len()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Put(fmt.Sprintf("s-%d", i%128), i, 128, i%3)
				c.Get(fmt.Sprintf("s-%d", (i+g)%128))
			}
		}(g)
	}
	wg.Wait()
	close(done)
	<-readerDone
	if msg := c.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}
