package docstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

type testDoc struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestInsertGetRoundTrip(t *testing.T) {
	s := NewMem()
	in := testDoc{Name: "set-1", Count: 5000}
	if err := s.Insert("metadata", "set-1", in); err != nil {
		t.Fatal(err)
	}
	var out testDoc
	if err := s.Get("metadata", "set-1", &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("Get = %+v, want %+v", out, in)
	}
}

func TestGetMissing(t *testing.T) {
	s := NewMem()
	var out testDoc
	if err := s.Get("metadata", "nope", &out); !backend.IsNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
}

func TestExists(t *testing.T) {
	s := NewMem()
	ok, err := s.Exists("c", "x")
	if err != nil || ok {
		t.Fatalf("Exists on empty store = %v, %v", ok, err)
	}
	if err := s.Insert("c", "x", testDoc{}); err != nil {
		t.Fatal(err)
	}
	ok, err = s.Exists("c", "x")
	if err != nil || !ok {
		t.Fatalf("Exists after insert = %v, %v", ok, err)
	}
}

func TestDelete(t *testing.T) {
	s := NewMem()
	if err := s.Insert("c", "x", testDoc{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("c", "x"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Exists("c", "x"); ok {
		t.Fatal("document survives delete")
	}
}

func TestIDs(t *testing.T) {
	s := NewMem()
	for _, id := range []string{"b", "a", "c"} {
		if err := s.Insert("sets", id, testDoc{Name: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Insert("other", "z", testDoc{}); err != nil {
		t.Fatal(err)
	}
	ids, err := s.IDs("sets")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(ids) != 3 {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestInvalidKeys(t *testing.T) {
	s := NewMem()
	if err := s.Insert("", "id", testDoc{}); err == nil {
		t.Error("empty collection accepted")
	}
	if err := s.Insert("coll", "", testDoc{}); err == nil {
		t.Error("empty id accepted")
	}
	if err := s.Insert("a/b", "id", testDoc{}); err == nil {
		t.Error("collection with '/' accepted")
	}
}

func TestUnmarshalableDoc(t *testing.T) {
	s := NewMem()
	if err := s.Insert("c", "x", make(chan int)); err == nil {
		t.Error("unmarshalable document accepted")
	}
}

func TestStats(t *testing.T) {
	s := NewMem()
	if err := s.Insert("c", "x", testDoc{Name: "n"}); err != nil {
		t.Fatal(err)
	}
	var out testDoc
	if err := s.Get("c", "x", &out); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.InsertOps != 1 || st.GetOps != 1 {
		t.Errorf("ops = %+v", st)
	}
	if st.BytesWritten == 0 || st.BytesRead != st.BytesWritten {
		t.Errorf("bytes = %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestLatencyCharged(t *testing.T) {
	var clock latency.Clock
	model := latency.CostModel{WriteOp: 3 * time.Millisecond, ReadOp: 7 * time.Millisecond}
	s := New(backend.NewMem(), model, &clock)
	if err := s.Insert("c", "x", testDoc{}); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed(); got != 3*time.Millisecond {
		t.Fatalf("after Insert clock = %v, want 3ms", got)
	}
	var out testDoc
	if err := s.Get("c", "x", &out); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed(); got != 10*time.Millisecond {
		t.Fatalf("after Get clock = %v, want 10ms", got)
	}
}

func TestFaultSurfaces(t *testing.T) {
	f := backend.NewFaulty(backend.NewMem())
	s := New(f, latency.CostModel{}, nil)
	f.FailNextPuts(1)
	if err := s.Insert("c", "x", testDoc{}); err == nil {
		t.Fatal("injected fault not surfaced")
	}
	if st := s.Stats(); st.InsertOps != 0 {
		t.Error("failed insert counted in stats")
	}
}

func TestConcurrentInsertGet(t *testing.T) {
	s := NewMem()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := fmt.Sprintf("doc-%d-%d", w, i)
				if err := s.Insert("c", id, testDoc{Name: id, Count: i}); err != nil {
					errs <- err
					return
				}
				var out testDoc
				if err := s.Get("c", id, &out); err != nil {
					errs <- err
					return
				}
				if out.Name != id {
					errs <- fmt.Errorf("read back %q, want %q", out.Name, id)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.InsertOps != 100 || st.GetOps != 100 {
		t.Fatalf("stats = %+v, want 100/100 ops", st)
	}
}
