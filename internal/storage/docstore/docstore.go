// Package docstore is the document store of the model management
// system: metadata, environment descriptions, provenance records, and
// hash documents live here as JSON documents in named collections. It
// plays the role MongoDB plays for MMlib.
//
// Like the blob store it is instrumented: per-document insert/read
// latencies are the mechanism behind the paper's M1-vs-server TTS/TTR
// differences ("the faster connections to the document store on the
// server setup"), and document bytes count toward storage consumption.
package docstore

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// Stats counts a store's traffic since creation (or the last Reset).
type Stats struct {
	InsertOps    int64
	GetOps       int64
	BytesWritten int64
	BytesRead    int64
}

// Store is an instrumented JSON document store.
type Store struct {
	backend backend.Backend
	model   latency.CostModel
	clock   *latency.Clock

	mu    sync.Mutex
	stats Stats
}

// New returns a store over b, charging costs from model to clock.
// A nil clock disables latency modeling.
func New(b backend.Backend, model latency.CostModel, clock *latency.Clock) *Store {
	return &Store{backend: b, model: model, clock: clock}
}

// NewMem returns an uninstrumented in-memory store.
func NewMem() *Store {
	return New(backend.NewMem(), latency.CostModel{}, nil)
}

func docKey(collection, id string) (string, error) {
	if collection == "" || id == "" {
		return "", fmt.Errorf("docstore: collection and id must be non-empty")
	}
	if strings.Contains(collection, "/") {
		return "", fmt.Errorf("docstore: collection %q must not contain '/'", collection)
	}
	return collection + "/" + id + ".json", nil
}

// Insert marshals doc as JSON and stores it under (collection, id),
// overwriting any previous document.
func (s *Store) Insert(collection, id string, doc any) error {
	_, err := s.InsertSized(collection, id, doc)
	return err
}

// InsertSized is Insert, additionally returning the encoded document's
// byte length — the size the store's write statistics are charged with.
// Callers that attribute storage consumption to individual operations
// (e.g. a SaveResult) use it instead of diffing global counters.
func (s *Store) InsertSized(collection, id string, doc any) (int64, error) {
	key, err := docKey(collection, id)
	if err != nil {
		return 0, err
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return 0, fmt.Errorf("docstore: marshaling %s/%s: %w", collection, id, err)
	}
	if err := s.backend.Put(key, data); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.stats.InsertOps++
	s.stats.BytesWritten += int64(len(data))
	s.mu.Unlock()
	if s.clock != nil {
		s.clock.Advance(s.model.WriteCost(len(data)))
	}
	return int64(len(data)), nil
}

// Get unmarshals the document at (collection, id) into out.
func (s *Store) Get(collection, id string, out any) error {
	key, err := docKey(collection, id)
	if err != nil {
		return err
	}
	data, err := s.backend.Get(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.GetOps++
	s.stats.BytesRead += int64(len(data))
	s.mu.Unlock()
	if s.clock != nil {
		s.clock.Advance(s.model.ReadCost(len(data)))
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("docstore: parsing %s/%s: %w", collection, id, err)
	}
	return nil
}

// Exists reports whether a document is stored at (collection, id).
func (s *Store) Exists(collection, id string) (bool, error) {
	key, err := docKey(collection, id)
	if err != nil {
		return false, err
	}
	if _, err := s.backend.Get(key); err != nil {
		if backend.IsNotFound(err) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// Size returns the stored document's encoded length in bytes.
func (s *Store) Size(collection, id string) (int64, error) {
	key, err := docKey(collection, id)
	if err != nil {
		return 0, err
	}
	return s.backend.Size(key)
}

// Delete removes the document at (collection, id); missing documents
// are not an error.
func (s *Store) Delete(collection, id string) error {
	key, err := docKey(collection, id)
	if err != nil {
		return err
	}
	return s.backend.Delete(key)
}

// Collections returns the names of all collections holding at least
// one document, sorted.
func (s *Store) Collections() ([]string, error) {
	keys, err := s.backend.Keys()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, k := range keys {
		if i := strings.IndexByte(k, '/'); i > 0 {
			name := k[:i]
			if len(names) == 0 || names[len(names)-1] != name {
				names = append(names, name)
			}
		}
	}
	return names, nil
}

// IDs returns the ids of all documents in collection, sorted.
func (s *Store) IDs(collection string) ([]string, error) {
	keys, err := s.backend.Keys()
	if err != nil {
		return nil, err
	}
	prefix := collection + "/"
	var ids []string
	for _, k := range keys {
		if strings.HasPrefix(k, prefix) && strings.HasSuffix(k, ".json") {
			ids = append(ids, strings.TrimSuffix(strings.TrimPrefix(k, prefix), ".json"))
		}
	}
	return ids, nil
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the traffic counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
}
