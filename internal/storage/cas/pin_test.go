package cas

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// gatedBackend wraps a backend and blocks Gets of chosen keys until
// released, letting tests freeze a reader mid-fetch.
type gatedBackend struct {
	backend.Backend
	mu      sync.Mutex
	block   func(key string) bool
	entered chan string   // receives the key each time a gated Get parks
	release chan struct{} // closed to let parked Gets proceed
}

func newGatedBackend(inner backend.Backend, block func(string) bool) *gatedBackend {
	return &gatedBackend{
		Backend: inner,
		block:   block,
		entered: make(chan string, 16),
		release: make(chan struct{}),
	}
}

func (g *gatedBackend) Get(key string) ([]byte, error) {
	g.mu.Lock()
	blocked := g.block != nil && g.block(key)
	g.mu.Unlock()
	if blocked {
		g.entered <- key
		<-g.release
	}
	return g.Backend.Get(key)
}

// stopBlocking turns the gate off for future Gets.
func (g *gatedBackend) stopBlocking() {
	g.mu.Lock()
	g.block = nil
	g.mu.Unlock()
}

func TestPinBlocksEagerDeleteAndGC(t *testing.T) {
	s, _ := newTestStore(t)
	data := bytes.Repeat([]byte{42}, 500)
	if _, err := s.Put("doomed", data, 0, Hints{}, reg(t)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, err := s.Recipe("doomed")
	if err != nil {
		t.Fatalf("Recipe: %v", err)
	}
	h := r.Chunks[0].Hash

	s.Pin(h)
	// Release drops the only reference; the pin must keep the chunk's
	// bytes on disk even though its refcount file is gone.
	if _, err := s.Release("doomed", reg(t)); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := s.blobs.Size(ChunkKey(h)); err != nil {
		t.Fatalf("pinned chunk deleted by Release: %v", err)
	}
	// GC must also refuse while the pin is held.
	if _, err := s.GC(reg(t)); err != nil {
		t.Fatalf("GC: %v", err)
	}
	if _, err := s.blobs.Size(ChunkKey(h)); err != nil {
		t.Fatalf("pinned chunk deleted by GC: %v", err)
	}
	// The read can still complete against the surviving chunk.
	got, err := s.getChunk(h, r.Chunks[0].Size)
	if err != nil || !bytes.Equal(got, data[:len(got)]) {
		t.Fatalf("reading pinned chunk: %v", err)
	}

	// Once unpinned the debris is collectable.
	s.Unpin(h)
	if _, err := s.GC(reg(t)); err != nil {
		t.Fatalf("GC after unpin: %v", err)
	}
	if _, err := s.blobs.Size(ChunkKey(h)); err == nil {
		t.Fatal("unpinned orphan chunk survived GC")
	}
}

// TestPinRegressionInFlightRead is the regression for GC racing an
// in-flight cached read: a reader parked inside the backend's Get must
// not have its chunk deleted out from under it by a concurrent
// release + GC of the last reference.
func TestPinRegressionInFlightRead(t *testing.T) {
	gated := newGatedBackend(backend.NewMem(), func(key string) bool {
		return strings.HasPrefix(key, chunkPrefix)
	})
	// Writes must not block: only gate after the save is committed.
	gated.stopBlocking()
	b := blobstore.New(gated, latency.CostModel{}, nil)
	s := For(b)
	data := bytes.Repeat([]byte{7}, 800)
	if _, err := s.Put("victim", data, 0, Hints{}, reg(t)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, err := s.Recipe("victim")
	if err != nil {
		t.Fatalf("Recipe: %v", err)
	}
	h := r.Chunks[0].Hash
	gated.mu.Lock()
	gated.block = func(key string) bool { return key == ChunkKey(h) }
	gated.mu.Unlock()

	readResult := make(chan error, 1)
	go func() {
		// Get pins the recipe's chunks before fetching them.
		got, err := s.Get("victim")
		if err == nil && !bytes.Equal(got, data) {
			err = errors.New("read bytes diverged")
		}
		readResult <- err
	}()

	// Wait until the reader is parked inside the backend with its pins
	// taken.
	select {
	case <-gated.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never reached the backend")
	}

	// Drop the last reference and GC while the read is in flight.
	if _, err := s.Release("victim", reg(t)); err != nil {
		t.Fatalf("Release: %v", err)
	}
	report, err := s.GC(reg(t))
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if report.ChunksDeleted != 0 {
		t.Fatalf("GC deleted %d chunks pinned by the in-flight read", report.ChunksDeleted)
	}
	if _, err := s.blobs.Size(ChunkKey(h)); err != nil {
		t.Fatalf("in-flight read's chunk was deleted: %v", err)
	}

	// Let the read finish: it must see the exact saved bytes.
	gated.stopBlocking()
	close(gated.release)
	if err := <-readResult; err != nil {
		t.Fatalf("in-flight read failed: %v", err)
	}

	// With the read done the pins are gone and GC may collect.
	if _, err := s.GC(reg(t)); err != nil {
		t.Fatalf("final GC: %v", err)
	}
	if _, err := s.blobs.Size(ChunkKey(h)); err == nil {
		t.Fatal("orphan chunk survived GC after the read completed")
	}
}

func TestPinUnpinCountsNest(t *testing.T) {
	s, _ := newTestStore(t)
	data := bytes.Repeat([]byte{3}, 300)
	if _, err := s.Put("k", data, 0, Hints{}, reg(t)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, _ := s.Recipe("k")
	h := r.Chunks[0].Hash
	s.Pin(h)
	s.Pin(h)
	s.Unpin(h)
	// One pin still held.
	if _, err := s.Release("k", reg(t)); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := s.blobs.Size(ChunkKey(h)); err != nil {
		t.Fatal("chunk deleted while still pinned once")
	}
	s.Unpin(h)
	if _, err := s.GC(reg(t)); err != nil {
		t.Fatalf("GC: %v", err)
	}
	if _, err := s.blobs.Size(ChunkKey(h)); err == nil {
		t.Fatal("fully unpinned chunk survived GC")
	}
}
