// Package cas is a content-addressed, deduplicating chunk store
// layered on top of a checksummed blob store. Logical blobs are split
// into deterministic chunks, each chunk is stored once under its
// SHA-256 address, and a per-key "recipe" records how to reassemble
// the original bytes. Persisted reference counts track how many
// recipes use each chunk so that releases and GC() delete only data
// nothing points at anymore.
//
// Everything the package persists lives inside the blob store under
// the reserved "cas/" namespace:
//
//	cas/chunks/<hh>/<sha256-hex>   chunk payload (hh = first two hex digits)
//	cas/refs/<hh>/<sha256-hex>     ASCII-decimal reference count
//	cas/recipes/<logical key>      JSON {size, chunks:[{h,s}]}
//
// Writing through the blob store (rather than the raw backend) means
// every CAS artifact gets the store's CRC32C manifests for free, is
// captured by the crash-simulation backend's mutation trace, and is
// covered by fsck's checksum sweep.
package cas

// DefaultChunkSize is the fixed chunk size used when a caller passes
// chunkSize <= 0. It is deliberately larger than any single test
// tensor: real dedup granularity comes from the Hints callers supply
// (model strides and diff-entry boundaries), with the fixed size only
// bounding worst-case chunk length on large segments.
const DefaultChunkSize = 64 * 1024

// Hints steer chunk-boundary placement so that the chunking of a blob
// is stable under the edits the approaches actually make. A params.bin
// laid out as N back-to-back models chunked with Stride = bytes-per-
// model yields identical chunks for every unchanged model no matter
// which neighbours changed; a diff.bin chunked at its per-entry
// Boundaries dedups repeated tensor diffs without smearing entries
// across chunks.
type Hints struct {
	// Stride > 0 forces a split point at every multiple of Stride.
	Stride int
	// Boundaries lists additional explicit split offsets (need not be
	// sorted or unique; out-of-range values are ignored).
	Boundaries []int
}

// Chunk is one contiguous piece of a blob. Data aliases the input
// slice — callers must not mutate the blob while chunks are in use.
type Chunk struct {
	Offset int
	Data   []byte
}

// Chunks deterministically splits data: split points are every
// multiple of hints.Stride, every hint boundary, and fixed chunkSize
// offsets within each resulting segment. The output covers data
// exactly, in order, with no empty chunks; identical (data, chunkSize,
// hints) always produce identical chunks.
func Chunks(data []byte, chunkSize int, hints Hints) []Chunk {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if len(data) == 0 {
		return nil
	}
	// Collect forced split points as a sorted, deduplicated offset set.
	marks := map[int]bool{}
	if hints.Stride > 0 {
		for off := hints.Stride; off < len(data); off += hints.Stride {
			marks[off] = true
		}
	}
	for _, b := range hints.Boundaries {
		if b > 0 && b < len(data) {
			marks[b] = true
		}
	}
	splits := make([]int, 0, len(marks)+2)
	splits = append(splits, 0)
	for off := range marks {
		splits = append(splits, off)
	}
	sortInts(splits)
	splits = append(splits, len(data))

	var out []Chunk
	for i := 0; i+1 < len(splits); i++ {
		lo, hi := splits[i], splits[i+1]
		for off := lo; off < hi; off += chunkSize {
			end := off + chunkSize
			if end > hi {
				end = hi
			}
			out = append(out, Chunk{Offset: off, Data: data[off:end]})
		}
	}
	return out
}

// sortInts is a small insertion-friendly sort; split sets are tiny
// compared to the chunk payloads, so simplicity beats pulling in
// sort.Slice's reflection here.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
