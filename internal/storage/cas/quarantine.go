package cas

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/storage/backend"
)

// Chunk quarantine and repair. When the scrubber (or any digest
// verification) finds a chunk whose stored body no longer yields the
// bytes its content address promises, the body is moved into the blob
// store's quarantine namespace. The chunk's refcount and every recipe
// referencing it are left untouched — they are correct metadata about
// data that should exist — so a later repair only has to re-ingest a
// verified body to make the store whole again.

// QuarantineChunk moves a chunk's stored body into quarantine unless a
// concurrent writer or reader is relying on it: a chunk with an
// in-flight Put pending may be about to be re-added (the Put skips the
// write when the body exists, then takes a reference — yanking the
// body in that window would commit a recipe over a hole), and a pinned
// chunk has a reader mid-flight that will surface the corruption
// itself. Returns moved=false when the chunk was skipped for either
// reason or its body is already gone.
func (s *Store) QuarantineChunk(hash string) (moved bool, err error) {
	s.refMu.Lock()
	defer s.refMu.Unlock()
	if s.pending[hash] > 0 || s.pinned[hash] > 0 {
		return false, nil
	}
	if _, err := s.blobs.Quarantine(ChunkKey(hash)); err != nil {
		if backend.IsNotFound(err) {
			return false, nil
		}
		return false, fmt.Errorf("cas: quarantining chunk %s: %w", hash, err)
	}
	s.invalidateChunk(hash)
	return true, nil
}

// ChunkQuarantined reports whether the chunk's body sits in quarantine.
func (s *Store) ChunkQuarantined(hash string) bool {
	return s.blobs.HasQuarantined(ChunkKey(hash))
}

// RestoreChunk re-ingests a verified chunk body (fetched from a healthy
// peer) and discards any quarantined copy. The body is digest-verified
// by PutChunk before it is stored; refcounts and recipes were never
// touched by quarantine, so a successful restore fully heals the chunk.
func (s *Store) RestoreChunk(hash string, data []byte) error {
	if err := s.PutChunk(hash, data); err != nil {
		return err
	}
	if err := s.blobs.DeleteQuarantined(ChunkKey(hash)); err != nil {
		return fmt.Errorf("cas: discarding quarantined copy of %s: %w", hash, err)
	}
	s.invalidateChunk(hash)
	return nil
}

// QuarantinedChunks lists the hashes of quarantined chunks, in sorted
// order. Quarantined blobs outside the chunk namespace are not listed.
func (s *Store) QuarantinedChunks() ([]string, error) {
	entries, err := s.blobs.Quarantined()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if h, ok := ChunkHash(e.Key); ok && !IsRefKey(e.Key) {
			out = append(out, h)
		}
	}
	return out, nil
}
