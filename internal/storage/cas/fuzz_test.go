package cas

import (
	"bytes"
	"testing"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
)

// FuzzChunker round-trips arbitrary data through chunking and through
// a full CAS put/get cycle: chunks must reassemble the input exactly,
// cover it in order without empty chunks, and a deduplicated store
// must hand back bit-identical bytes for any (data, chunkSize, stride,
// boundary) combination.
func FuzzChunker(f *testing.F) {
	f.Add([]byte{}, 0, 0, 0)
	f.Add([]byte("hello world"), 4, 0, 0)
	f.Add(bytes.Repeat([]byte{7}, 1000), 64, 100, 250)
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 333), 0, 196, 5)
	f.Add([]byte{0}, 1, 1, 1)
	f.Add(bytes.Repeat([]byte{0xff}, 70000), 0, 0, 65536)
	f.Fuzz(func(t *testing.T, data []byte, chunkSize, stride, boundary int) {
		hints := Hints{Stride: stride, Boundaries: []int{boundary}}
		chunks := Chunks(data, chunkSize, hints)
		off := 0
		var joined []byte
		for i, c := range chunks {
			if len(c.Data) == 0 {
				t.Fatalf("chunk %d is empty", i)
			}
			if c.Offset != off {
				t.Fatalf("chunk %d offset %d, want %d", i, c.Offset, off)
			}
			off += len(c.Data)
			joined = append(joined, c.Data...)
		}
		if !bytes.Equal(joined, data) {
			t.Fatalf("chunks reassemble to %d bytes, want %d", len(joined), len(data))
		}

		s := For(blobstore.NewMem())
		r := obs.New()
		if _, err := s.Put("fuzz", data, chunkSize, hints, r); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := s.Get("fuzz")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("CAS round trip mismatch: %d bytes, want %d", len(got), len(data))
		}
		if size, err := s.Size("fuzz"); err != nil || size != int64(len(data)) {
			t.Fatalf("Size = %d, %v; want %d", size, err, len(data))
		}
		if len(data) > 2 {
			part, err := s.GetRange("fuzz", 1, int64(len(data)-2))
			if err != nil {
				t.Fatalf("GetRange: %v", err)
			}
			if !bytes.Equal(part, data[1:len(data)-1]) {
				t.Fatal("CAS range read mismatch")
			}
		}
	})
}
