package cas

import (
	"bytes"
	"testing"
)

func join(chunks []Chunk) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c.Data...)
	}
	return out
}

func TestChunksRoundTrip(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	cases := []struct {
		name      string
		chunkSize int
		hints     Hints
	}{
		{"plain", 64, Hints{}},
		{"default-size", 0, Hints{}},
		{"stride", 256, Hints{Stride: 100}},
		{"boundaries", 0, Hints{Boundaries: []int{1, 999, 500, 500, -3, 1000, 2000}}},
		{"stride-and-boundaries", 64, Hints{Stride: 300, Boundaries: []int{10, 450}}},
		{"chunk-larger-than-data", 1 << 20, Hints{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chunks := Chunks(data, tc.chunkSize, tc.hints)
			if got := join(chunks); !bytes.Equal(got, data) {
				t.Fatalf("chunks do not reassemble input: got %d bytes, want %d", len(got), len(data))
			}
			off := 0
			for i, c := range chunks {
				if c.Offset != off {
					t.Fatalf("chunk %d offset %d, want %d", i, c.Offset, off)
				}
				if len(c.Data) == 0 {
					t.Fatalf("chunk %d is empty", i)
				}
				off += len(c.Data)
			}
		})
	}
}

func TestChunksEmpty(t *testing.T) {
	if got := Chunks(nil, 64, Hints{Stride: 8}); got != nil {
		t.Fatalf("Chunks(nil) = %v, want nil", got)
	}
}

// TestChunksStrideStability is the property the dedup design rests
// on: with a stride of one model's bytes, editing one model changes
// only that model's chunks.
func TestChunksStrideStability(t *testing.T) {
	const perModel = 100
	a := bytes.Repeat([]byte{7}, perModel*5)
	b := append([]byte(nil), a...)
	for i := 2 * perModel; i < 3*perModel; i++ {
		b[i] ^= 0xff
	}
	ca := Chunks(a, 0, Hints{Stride: perModel})
	cb := Chunks(b, 0, Hints{Stride: perModel})
	if len(ca) != len(cb) {
		t.Fatalf("chunk counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		same := bytes.Equal(ca[i].Data, cb[i].Data)
		wantSame := i != 2
		if same != wantSame {
			t.Fatalf("chunk %d: same=%v, want %v", i, same, wantSame)
		}
	}
}

func TestChunksDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3}, 500)
	h := Hints{Stride: 77, Boundaries: []int{5, 800, 801}}
	a := Chunks(data, 50, h)
	b := Chunks(data, 50, h)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic chunk count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Offset != b[i].Offset || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("nondeterministic chunk %d", i)
		}
	}
}
