package cas

import (
	"bytes"
	"testing"

	"github.com/mmm-go/mmm/internal/codec"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// pipelineBlob builds a blob of distinct, compressible 4 KiB chunks so
// an encoding PutEncoded has many independent encode+write tasks.
func pipelineBlob(n int) []byte {
	var blob []byte
	for i := 0; i < n; i++ {
		blob = append(blob, bytes.Repeat([]byte{byte(i)}, 4096)...)
	}
	return blob
}

// TestPutEncodedParallelIdentical pins the fan-out contract: the bytes
// a parallel encode+write pipeline stores are identical to a serial
// run's, chunk for chunk, so concurrency can never change what lands
// on disk.
func TestPutEncodedParallelIdentical(t *testing.T) {
	zlib, err := codec.Lookup(codec.ZlibID)
	if err != nil {
		t.Fatal(err)
	}
	blob := pipelineBlob(32)
	stores := map[int]*blobstore.Store{}
	for _, w := range []int{1, 8} {
		b := blobstore.NewMem()
		if _, err := For(b).PutEncoded("k", blob, 4096, Hints{},
			Encoding{Codec: zlib, Workers: w}, nil); err != nil {
			t.Fatalf("PutEncoded at %d workers: %v", w, err)
		}
		got, err := For(b).Get("k")
		if err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("round trip at %d workers: %v", w, err)
		}
		stores[w] = b
	}
	serialKeys, err := stores[1].Keys()
	if err != nil {
		t.Fatal(err)
	}
	parallelKeys, err := stores[8].Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(serialKeys) != len(parallelKeys) {
		t.Fatalf("serial wrote %d keys, parallel %d", len(serialKeys), len(parallelKeys))
	}
	for _, k := range serialKeys {
		sv, err1 := stores[1].Get(k)
		pv, err2 := stores[8].Get(k)
		if err1 != nil || err2 != nil || !bytes.Equal(sv, pv) {
			t.Fatalf("key %s differs between serial and parallel runs", k)
		}
	}
}

// TestPutEncodedParallelUndo fails the backend partway through the
// parallel chunk fan-out and checks the undo path still accounts for
// every chunk that made it down before the failure: no recipe, no
// orphaned chunks, no leaked pending entries.
func TestPutEncodedParallelUndo(t *testing.T) {
	zlib, err := codec.Lookup(codec.ZlibID)
	if err != nil {
		t.Fatal(err)
	}
	faulty := backend.NewFaulty(backend.NewMem())
	b := blobstore.New(faulty, latency.CostModel{}, nil)
	s := For(b)
	// Let a handful of backend writes land (each chunk costs a data put
	// plus a manifest put), then die mid-save.
	faulty.FailPutsAfter(5)
	if _, err := s.PutEncoded("k", pipelineBlob(32), 4096, Hints{},
		Encoding{Codec: zlib, Workers: 8}, nil); err == nil {
		t.Fatal("PutEncoded succeeded on a dying store")
	}
	if s.Has("k") {
		t.Fatal("failed PutEncoded left its recipe behind")
	}
	faulty.FailPutsAfter(-1)
	scan, err := ScanStore(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Chunks) != 0 {
		t.Fatalf("failed PutEncoded orphaned %d chunks", len(scan.Chunks))
	}
	s.refMu.Lock()
	leaked := len(s.pending)
	s.refMu.Unlock()
	if leaked != 0 {
		t.Fatalf("failed PutEncoded leaked %d pending entries", leaked)
	}
}
