package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// The per-set chunk index is a compact binary rendition of a params
// blob's recipe, persisted alongside the set's metadata. Selective
// recovery reads it once (one small blob, cacheable) and resolves
// exactly the chunks a model's byte range needs — no full-recipe JSON
// parse, no chunk probing, O(models-recovered) instead of
// O(blob-size) store traffic on the warm path.
//
// Wire format (all integers unsigned varints unless noted):
//
//	magic   "MMCI" (4 bytes)
//	version 1      (1 byte)
//	stride         bytes per model in the fixed-stride params layout
//	size           logical blob size
//	nchunks        number of chunk records
//	nchunks × ( hash [32 raw bytes] | chunkSize )
//
// Chunk records are in blob order; their sizes must sum to size.
// Decoding is strict — any deviation is corruption, surfaced as an
// error wrapping ErrCorrupt and mapped to the caller's corruption
// sentinel (never a panic; see FuzzIndexDecode).

// indexMagic and indexVersion pin the wire format.
const (
	indexMagic   = "MMCI"
	indexVersion = 1
)

// IndexChunk is one chunk reference in an Index, in blob order.
type IndexChunk struct {
	Hash string // hex SHA-256 of the logical chunk bytes
	Size int64  // logical chunk length
}

// Index locates chunks by byte range inside one logical blob.
type Index struct {
	// Stride is the bytes every model occupies in the blob (the
	// fixed-stride layout all approaches use); 0 when unknown.
	Stride int64
	// Size is the logical blob size.
	Size int64
	// Chunks lists the blob's chunks in order.
	Chunks []IndexChunk
}

// BuildIndex derives the index of a blob from its recipe.
func BuildIndex(stride int64, r Recipe) Index {
	ix := Index{Stride: stride, Size: r.Size, Chunks: make([]IndexChunk, len(r.Chunks))}
	for i, c := range r.Chunks {
		ix.Chunks[i] = IndexChunk{Hash: c.Hash, Size: c.Size}
	}
	return ix
}

// Encode renders the index in its wire format.
func (ix Index) Encode() []byte {
	out := make([]byte, 0, 5+3*binary.MaxVarintLen64+len(ix.Chunks)*(sha256.Size+binary.MaxVarintLen64))
	out = append(out, indexMagic...)
	out = append(out, indexVersion)
	out = binary.AppendUvarint(out, uint64(ix.Stride))
	out = binary.AppendUvarint(out, uint64(ix.Size))
	out = binary.AppendUvarint(out, uint64(len(ix.Chunks)))
	for _, c := range ix.Chunks {
		raw, err := hex.DecodeString(c.Hash)
		if err != nil || len(raw) != sha256.Size {
			// Hashes come from recipes, which are validated on decode;
			// an unencodable hash is a programming error, but corrupt
			// output would be worse than a short one — emit zeros.
			raw = make([]byte, sha256.Size)
		}
		out = append(out, raw...)
		out = binary.AppendUvarint(out, uint64(c.Size))
	}
	return out
}

// corruptIndex builds a DecodeIndex error wrapping ErrCorrupt.
func corruptIndex(format string, args ...any) error {
	return fmt.Errorf("%w: chunk index: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// DecodeIndex parses and validates wire-format index bytes. Every
// failure wraps ErrCorrupt; malformed input never panics and never
// allocates more than the input's length justifies.
func DecodeIndex(raw []byte) (Index, error) {
	if len(raw) < len(indexMagic)+1 {
		return Index{}, corruptIndex("truncated header (%d bytes)", len(raw))
	}
	if string(raw[:len(indexMagic)]) != indexMagic {
		return Index{}, corruptIndex("bad magic %q", raw[:len(indexMagic)])
	}
	if raw[len(indexMagic)] != indexVersion {
		return Index{}, corruptIndex("unsupported version %d", raw[len(indexMagic)])
	}
	rest := raw[len(indexMagic)+1:]
	next := func(what string) (int64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > 1<<62 {
			return 0, corruptIndex("garbled %s", what)
		}
		rest = rest[n:]
		return int64(v), nil
	}
	stride, err := next("stride")
	if err != nil {
		return Index{}, err
	}
	size, err := next("size")
	if err != nil {
		return Index{}, err
	}
	nchunks, err := next("chunk count")
	if err != nil {
		return Index{}, err
	}
	// Each record needs at least hash + one varint byte; an nchunks the
	// remaining bytes cannot hold is corruption, caught before any
	// allocation sized by it.
	if nchunks > int64(len(rest))/(sha256.Size+1) {
		return Index{}, corruptIndex("chunk count %d exceeds payload", nchunks)
	}
	ix := Index{Stride: stride, Size: size, Chunks: make([]IndexChunk, 0, nchunks)}
	var total int64
	for i := int64(0); i < nchunks; i++ {
		if int64(len(rest)) < sha256.Size+1 {
			return Index{}, corruptIndex("truncated at chunk %d", i)
		}
		hash := hex.EncodeToString(rest[:sha256.Size])
		rest = rest[sha256.Size:]
		csize, err := next("chunk size")
		if err != nil {
			return Index{}, err
		}
		if csize <= 0 {
			return Index{}, corruptIndex("chunk %d has size %d", i, csize)
		}
		total += csize
		ix.Chunks = append(ix.Chunks, IndexChunk{Hash: hash, Size: csize})
	}
	if len(rest) != 0 {
		return Index{}, corruptIndex("%d trailing bytes", len(rest))
	}
	if total != size {
		return Index{}, corruptIndex("chunk sizes sum to %d, want %d", total, size)
	}
	return ix, nil
}

// IndexSpan is one chunk's contribution to a located byte range.
type IndexSpan struct {
	Hash string // chunk content address
	Size int64  // full logical chunk length (what GetChunk needs)
	From int64  // first wanted byte within the chunk
	To   int64  // one past the last wanted byte within the chunk
}

// Locate resolves the byte range [off, off+length) to the chunk spans
// covering it, in blob order. The range must lie inside the blob.
func (ix Index) Locate(off, length int64) ([]IndexSpan, error) {
	if off < 0 || length < 0 || off+length > ix.Size {
		return nil, fmt.Errorf("cas: index range [%d,%d) outside blob of %d bytes", off, off+length, ix.Size)
	}
	var spans []IndexSpan
	var pos int64
	for _, c := range ix.Chunks {
		lo, hi := pos, pos+c.Size
		pos = hi
		if hi <= off {
			continue
		}
		if lo >= off+length {
			break
		}
		sp := IndexSpan{Hash: c.Hash, Size: c.Size, From: 0, To: c.Size}
		if off > lo {
			sp.From = off - lo
		}
		if off+length < hi {
			sp.To = off + length - lo
		}
		spans = append(spans, sp)
	}
	return spans, nil
}
