package cas

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// countingBackend counts Gets per key so tests can prove cache hits
// skip the store.
type countingBackend struct {
	backend.Backend
	mu   sync.Mutex
	gets map[string]int
}

func newCountingBackend() *countingBackend {
	return &countingBackend{Backend: backend.NewMem(), gets: map[string]int{}}
}

func (c *countingBackend) Get(key string) ([]byte, error) {
	c.mu.Lock()
	c.gets[key]++
	c.mu.Unlock()
	return c.Backend.Get(key)
}

func (c *countingBackend) getCount(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gets[key]
}

func TestCacheServesRepeatReadsFromMemory(t *testing.T) {
	cb := newCountingBackend()
	b := blobstore.New(cb, latency.CostModel{}, nil)
	s := For(b)
	s.EnableCache(1<<20, obs.New())
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 2000)
	if _, err := s.Put("k", data, 1024, Hints{}, reg(t)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, err := s.Recipe("k")
	if err != nil {
		t.Fatalf("Recipe: %v", err)
	}
	first, err := s.Get("k")
	if err != nil || !bytes.Equal(first, data) {
		t.Fatalf("cold Get: %v", err)
	}
	chunkGets := 0
	for _, c := range r.Chunks {
		chunkGets += cb.getCount(ChunkKey(c.Hash))
	}
	for i := 0; i < 5; i++ {
		warm, err := s.Get("k")
		if err != nil || !bytes.Equal(warm, data) {
			t.Fatalf("warm Get %d: %v", i, err)
		}
	}
	after := 0
	for _, c := range r.Chunks {
		after += cb.getCount(ChunkKey(c.Hash))
	}
	if after != chunkGets {
		t.Fatalf("warm Gets hit the store: %d chunk reads, want %d", after, chunkGets)
	}
	if st := s.ChunkCache().Stats(); st.Hits == 0 {
		t.Fatalf("no cache hits recorded: %+v", st)
	}
}

func TestCacheOnOffByteIdentity(t *testing.T) {
	mk := func(enable bool) []byte {
		b := blobstore.NewMem()
		s := For(b)
		if enable {
			s.EnableCache(1<<20, obs.New())
		}
		data := make([]byte, 10000)
		for i := range data {
			data[i] = byte(i * 31)
		}
		if _, err := s.Put("k", data, 777, Hints{}, reg(t)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		out1, err := s.Get("k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		out2, err := s.Get("k") // cached path when enabled
		if err != nil {
			t.Fatalf("Get 2: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatal("cold and warm reads diverged")
		}
		rng, err := s.GetRange("k", 1234, 4321)
		if err != nil {
			t.Fatalf("GetRange: %v", err)
		}
		return append(out1, rng...)
	}
	if !bytes.Equal(mk(true), mk(false)) {
		t.Fatal("cache-on and cache-off reads diverged")
	}
}

func TestCacheInvalidatedOnReleaseAndGC(t *testing.T) {
	s, _ := newTestStore(t)
	s.EnableCache(1<<20, obs.New())
	data := bytes.Repeat([]byte{9}, 1000)
	if _, err := s.Put("k", data, 0, Hints{}, reg(t)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	r, _ := s.Recipe("k")
	h := r.Chunks[0].Hash
	if _, ok := s.ChunkCache().Get(h); !ok {
		t.Fatal("chunk not cached after read")
	}
	if _, err := s.Release("k", reg(t)); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, ok := s.ChunkCache().Get(h); ok {
		t.Fatal("released chunk still cached")
	}
	if _, ok := s.ChunkCache().Get(recipeKeyPrefix + "k"); ok {
		t.Fatal("released recipe still cached")
	}
}

func TestEnableCacheGrowOnly(t *testing.T) {
	s, _ := newTestStore(t)
	s.EnableCache(1<<20, obs.New())
	big := s.ChunkCache()
	s.EnableCache(1<<10, obs.New())
	if s.ChunkCache() != big {
		t.Fatal("smaller EnableCache replaced the larger cache")
	}
	s.EnableCache(1<<21, obs.New())
	if s.ChunkCache() == big || s.ChunkCache().MaxBytes() < 1<<21 {
		t.Fatal("larger EnableCache did not grow the cache")
	}
}

func TestVerifyChunkBypassesCache(t *testing.T) {
	s, b := newTestStore(t)
	s.EnableCache(1<<20, obs.New())
	data := bytes.Repeat([]byte{5}, 600)
	if _, err := s.Put("k", data, 0, Hints{}, reg(t)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	r, _ := s.Recipe("k")
	h := r.Chunks[0].Hash
	// Corrupt the stored chunk behind the cache's back. VerifyChunk
	// must see the damage even though the cache still has good bytes.
	if err := b.Put(ChunkKey(h), []byte("not the chunk")); err != nil {
		t.Fatalf("corrupting chunk: %v", err)
	}
	if err := s.VerifyChunk(h, r.Chunks[0].Size); err == nil {
		t.Fatal("VerifyChunk was satisfied by the cache over a corrupt store")
	}
}

// TestStressCASReadWriteGC hammers one CAS store with concurrent
// saves, cached reads, releases, and GC passes. Run under -race via
// make race-stress; correctness assertion is that every successful
// read returns exactly the bytes its key was last saved with.
func TestStressCASReadWriteGC(t *testing.T) {
	s, _ := newTestStore(t)
	s.EnableCache(256<<10, obs.New())
	registry := obs.New()
	payload := func(id int) []byte {
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(id + i*7)
		}
		return data
	}
	const keys = 8
	for k := 0; k < keys; k++ {
		if _, err := s.Put(fmt.Sprintf("blob-%d", k), payload(k), 512, Hints{}, registry); err != nil {
			t.Fatalf("seed Put: %v", err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Readers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				k := (g + i) % keys
				got, err := s.Get(fmt.Sprintf("blob-%d", k))
				if err != nil {
					continue // key may be mid-rewrite by the churn writer
				}
				if !bytes.Equal(got, payload(k)) {
					errs <- fmt.Errorf("reader got wrong bytes for blob-%d", k)
					return
				}
				if i%3 == 0 {
					if _, err := s.GetRange(fmt.Sprintf("blob-%d", k), 100, 1000); err == nil {
						continue
					}
				}
			}
		}(g)
	}
	// Writer churning extra keys (same content per key → stable dedup).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			key := fmt.Sprintf("churn-%d", i%4)
			if _, err := s.Put(key, payload(100+i%4), 512, Hints{}, registry); err != nil {
				errs <- fmt.Errorf("churn Put: %w", err)
				return
			}
			if i%2 == 1 {
				if _, err := s.Release(key, registry); err != nil {
					errs <- fmt.Errorf("churn Release: %w", err)
					return
				}
			}
		}
	}()
	// GC sweeper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := s.GC(registry); err != nil {
				errs <- fmt.Errorf("GC: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The stable keys must still read back exactly.
	for k := 0; k < keys; k++ {
		got, err := s.Get(fmt.Sprintf("blob-%d", k))
		if err != nil || !bytes.Equal(got, payload(k)) {
			t.Fatalf("blob-%d damaged after stress: %v", k, err)
		}
	}
}
