package cas

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
)

func newTestStore(t *testing.T) (*Store, *blobstore.Store) {
	t.Helper()
	b := blobstore.NewMem()
	return For(b), b
}

func reg(t *testing.T) *obs.Registry {
	t.Helper()
	return obs.New()
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newTestStore(t)
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5}, 100)
	res, err := s.Put("a/params.bin", data, 64, Hints{}, reg(t))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if res.NewChunks == 0 || res.PhysicalBytes == 0 {
		t.Fatalf("first Put reported no new data: %+v", res)
	}
	got, err := s.Get("a/params.bin")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d bytes, want %d", len(got), len(data))
	}
	size, err := s.Size("a/params.bin")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Size = %d, %v; want %d", size, err, len(data))
	}
}

func TestPutDeduplicates(t *testing.T) {
	s, _ := newTestStore(t)
	data := bytes.Repeat([]byte{9}, 1000)
	first, err := s.Put("one", data, 100, Hints{}, reg(t))
	if err != nil {
		t.Fatalf("Put one: %v", err)
	}
	// Identical content chunked identically: the second logical blob
	// must cost only its recipe.
	second, err := s.Put("two", data, 100, Hints{}, reg(t))
	if err != nil {
		t.Fatalf("Put two: %v", err)
	}
	if second.NewChunks != 0 {
		t.Fatalf("second Put wrote %d new chunks, want 0", second.NewChunks)
	}
	if second.DedupBytes != int64(len(data)) {
		t.Fatalf("second Put deduped %d bytes, want %d", second.DedupBytes, len(data))
	}
	if second.PhysicalBytes >= first.PhysicalBytes {
		t.Fatalf("second Put cost %d physical bytes, first cost %d", second.PhysicalBytes, first.PhysicalBytes)
	}
	// All-identical chunks within one blob collapse to a single chunk.
	if first.NewChunks != 1 {
		t.Fatalf("first Put of repeated bytes wrote %d chunks, want 1", first.NewChunks)
	}
}

func TestGetRange(t *testing.T) {
	s, _ := newTestStore(t)
	data := make([]byte, 997)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := s.Put("k", data, 100, Hints{Boundaries: []int{333}}, reg(t)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, r := range [][2]int64{{0, 50}, {95, 120}, {300, 400}, {0, 997}, {996, 1}, {500, 0}} {
		got, err := s.GetRange("k", r[0], r[1])
		if err != nil {
			t.Fatalf("GetRange(%d, %d): %v", r[0], r[1], err)
		}
		if !bytes.Equal(got, data[r[0]:r[0]+r[1]]) {
			t.Fatalf("GetRange(%d, %d) mismatch", r[0], r[1])
		}
	}
	if _, err := s.GetRange("k", 990, 100); err == nil {
		t.Fatal("out-of-range GetRange succeeded")
	} else {
		var re *backend.RangeError
		if !errors.As(err, &re) {
			t.Fatalf("out-of-range GetRange error = %v, want RangeError", err)
		}
	}
}

func TestReleaseFreesOnlyUnshared(t *testing.T) {
	s, b := newTestStore(t)
	shared := bytes.Repeat([]byte{1}, 400)
	only := bytes.Repeat([]byte{2}, 400)
	if _, err := s.Put("a", append(append([]byte{}, shared...), only...), 100, Hints{Stride: 400}, reg(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", shared, 100, Hints{}, reg(t)); err != nil {
		t.Fatal(err)
	}
	freed, err := s.Release("a", reg(t))
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	// "a"'s unshared chunk (400 bytes) plus its recipe must be freed;
	// the shared chunk stays for "b".
	if freed < 400 {
		t.Fatalf("Release freed %d bytes, want >= 400", freed)
	}
	if got, err := s.Get("b"); err != nil || !bytes.Equal(got, shared) {
		t.Fatalf("shared blob damaged after release: %v", err)
	}
	if _, err := s.Get("a"); !backend.IsNotFound(err) {
		t.Fatalf("released blob still readable: %v", err)
	}
	// Releasing again is a no-op.
	if freed, err := s.Release("a", reg(t)); err != nil || freed != 0 {
		t.Fatalf("second Release = %d, %v; want 0, nil", freed, err)
	}
	// No unreferenced chunks remain.
	scan, err := ScanStore(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Chunks) != 1 {
		t.Fatalf("store holds %d chunks after release, want 1", len(scan.Chunks))
	}
}

func TestGCDeletesOnlyUnreferenced(t *testing.T) {
	s, b := newTestStore(t)
	if _, err := s.Put("live", bytes.Repeat([]byte{5}, 300), 100, Hints{}, reg(t)); err != nil {
		t.Fatal(err)
	}
	// Fabricate crash debris: a chunk with no recipe and no refcount.
	orphan := bytes.Repeat([]byte{6}, 123)
	if err := b.Put(ChunkKey(hashChunk(orphan)), orphan); err != nil {
		t.Fatal(err)
	}
	// And a dangling refcount whose chunk is gone.
	if err := b.Put(RefKey(strings.Repeat("ab", 32)), EncodeRefcount(2)); err != nil {
		t.Fatal(err)
	}
	report, err := s.GC(reg(t))
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if report.ChunksDeleted != 1 || report.BytesFreed != 123 {
		t.Fatalf("GC deleted %d chunks / %d bytes, want 1 / 123", report.ChunksDeleted, report.BytesFreed)
	}
	if report.RefsDeleted != 1 {
		t.Fatalf("GC deleted %d dangling refs, want 1", report.RefsDeleted)
	}
	if got, err := s.Get("live"); err != nil || len(got) != 300 {
		t.Fatalf("GC damaged live data: %v", err)
	}
}

func TestPutUndoOnRefFailure(t *testing.T) {
	// Garble a refcount so the acquire step fails, and check Put
	// removed its recipe and its new chunks but left the other key's
	// data untouched.
	s, b := newTestStore(t)
	keep := bytes.Repeat([]byte{1}, 200)
	if _, err := s.Put("keep", keep, 100, Hints{}, reg(t)); err != nil {
		t.Fatal(err)
	}
	bad := bytes.Repeat([]byte{1}, 100) // shares chunk 0 with "keep"
	bad = append(bad, bytes.Repeat([]byte{3}, 100)...)
	h := hashChunk(bad[:100])
	if err := b.Put(RefKey(h), []byte("not-a-number")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("bad", bad, 100, Hints{}, reg(t)); err == nil {
		t.Fatal("Put with garbled refcount succeeded")
	}
	if s.Has("bad") {
		t.Fatal("failed Put left its recipe behind")
	}
	scan, err := ScanStore(b)
	if err != nil {
		t.Fatal(err)
	}
	// Only "keep"'s single (repeated) chunk may remain.
	if len(scan.Chunks) != 1 {
		t.Fatalf("failed Put left %d chunks, want 1", len(scan.Chunks))
	}
	if got, err := s.Get("keep"); err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("failed Put damaged other key: %v", err)
	}
}

func TestUsage(t *testing.T) {
	s, _ := newTestStore(t)
	data := bytes.Repeat([]byte{8}, 500)
	if _, err := s.Put("x", data, 100, Hints{}, reg(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("y", data, 100, Hints{}, reg(t)); err != nil {
		t.Fatal(err)
	}
	u, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Recipes != 2 || u.LogicalBytes != 1000 {
		t.Fatalf("Usage logical: %+v", u)
	}
	if u.Chunks != 1 || u.ChunkBytes != 100 {
		t.Fatalf("Usage physical: %+v", u)
	}
}

func TestForSharesRefLock(t *testing.T) {
	b := blobstore.NewMem()
	if For(b) != For(b) {
		t.Fatal("For returned distinct stores for one blobstore")
	}
	if For(blobstore.NewMem()) == For(b) {
		t.Fatal("For shared a store across distinct blobstores")
	}
}

func TestMetricsRecorded(t *testing.T) {
	s, _ := newTestStore(t)
	r := obs.New()
	data := bytes.Repeat([]byte{4}, 3000)
	if _, err := s.Put("m1", data, 1000, Hints{}, r); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("m2", data, 1000, Hints{}, r); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter(MetricChunksTotal).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricChunksTotal, got)
	}
	if got := r.Counter(MetricDedupBytesTotal).Value(); got != 2000+3000 {
		// m1 dedups its 2nd and 3rd identical chunks, m2 all 3000.
		t.Fatalf("%s = %d, want 5000", MetricDedupBytesTotal, got)
	}
	if got := r.Gauge(MetricDedupRatio).Value(); got <= 100 {
		t.Fatalf("%s = %d, want > 100", MetricDedupRatio, got)
	}
}
