package cas

import (
	"bytes"
	"errors"
	"testing"

	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
	"github.com/mmm-go/mmm/internal/storage/latency"
)

// corruptChunk flips one byte of a chunk's stored body behind the blob
// store's back, leaving its CRC manifest stale — the scrubber's target
// condition.
func corruptChunk(t *testing.T, be backend.Backend, hash string) {
	t.Helper()
	key := ChunkKey(hash)
	raw, err := be.Get(key)
	if err != nil {
		t.Fatalf("reading chunk body: %v", err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := be.Put(key, raw); err != nil {
		t.Fatalf("writing corrupted body: %v", err)
	}
}

func TestQuarantineChunkMovesBodyAndFailsReads(t *testing.T) {
	be := backend.NewMem()
	blobs := blobstore.New(be, latency.CostModel{}, nil)
	s := For(blobs)
	data := bytes.Repeat([]byte("quarantine me "), 1000)
	if _, err := s.Put("q/blob", data, 4096, Hints{}, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, err := s.Recipe("q/blob")
	if err != nil {
		t.Fatalf("Recipe: %v", err)
	}
	hash := r.Chunks[0].Hash

	moved, err := s.QuarantineChunk(hash)
	if err != nil || !moved {
		t.Fatalf("QuarantineChunk = (%v, %v), want (true, nil)", moved, err)
	}
	if s.HasChunk(hash) {
		t.Fatal("chunk body still present after quarantine")
	}
	if !s.ChunkQuarantined(hash) {
		t.Fatal("chunk not reported quarantined")
	}
	// Reads must fail fast with corruption, not absence, and never
	// return wrong bytes.
	if _, err := s.Get("q/blob"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get after quarantine: err = %v, want ErrCorrupt", err)
	}
	if err := s.VerifyChunk(hash, r.Chunks[0].Size); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyChunk after quarantine: err = %v, want ErrCorrupt", err)
	}
	// Quarantining an already-quarantined (now missing) chunk is a
	// clean no-op.
	if moved, err := s.QuarantineChunk(hash); err != nil || moved {
		t.Fatalf("second QuarantineChunk = (%v, %v), want (false, nil)", moved, err)
	}
}

func TestRestoreChunkHealsQuarantine(t *testing.T) {
	be := backend.NewMem()
	blobs := blobstore.New(be, latency.CostModel{}, nil)
	s := For(blobs)
	data := bytes.Repeat([]byte("restore target "), 1000)
	if _, err := s.Put("q/blob", data, 4096, Hints{}, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, _ := s.Recipe("q/blob")
	hash := r.Chunks[0].Hash
	good, err := s.GetChunk(hash, r.Chunks[0].Size)
	if err != nil {
		t.Fatalf("GetChunk: %v", err)
	}
	if moved, err := s.QuarantineChunk(hash); err != nil || !moved {
		t.Fatalf("QuarantineChunk = (%v, %v)", moved, err)
	}

	// A body that does not match the address must be rejected.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0x01
	if err := s.RestoreChunk(hash, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("RestoreChunk with wrong bytes: err = %v, want ErrCorrupt", err)
	}
	if !s.ChunkQuarantined(hash) {
		t.Fatal("failed restore discarded the quarantined copy")
	}

	if err := s.RestoreChunk(hash, good); err != nil {
		t.Fatalf("RestoreChunk: %v", err)
	}
	if s.ChunkQuarantined(hash) {
		t.Fatal("quarantined copy survived a successful restore")
	}
	back, err := s.Get("q/blob")
	if err != nil {
		t.Fatalf("Get after restore: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("restored blob differs from the original")
	}
}

func TestQuarantineChunkRespectsPinsAndPending(t *testing.T) {
	be := backend.NewMem()
	blobs := blobstore.New(be, latency.CostModel{}, nil)
	s := For(blobs)
	data := bytes.Repeat([]byte("pinned chunk "), 1000)
	if _, err := s.Put("q/blob", data, 1<<20, Hints{}, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, _ := s.Recipe("q/blob")
	hash := r.Chunks[0].Hash

	// A pinned chunk (in-flight read) must not be yanked.
	s.Pin(hash)
	if moved, err := s.QuarantineChunk(hash); err != nil || moved {
		t.Fatalf("QuarantineChunk of pinned chunk = (%v, %v), want (false, nil)", moved, err)
	}
	s.Unpin(hash)

	// A chunk with an in-flight Put pending must not be yanked either:
	// the Put may have skipped the write because the body existed and
	// is about to take a reference.
	s.refMu.Lock()
	s.pending[hash]++
	s.refMu.Unlock()
	if moved, err := s.QuarantineChunk(hash); err != nil || moved {
		t.Fatalf("QuarantineChunk of pending chunk = (%v, %v), want (false, nil)", moved, err)
	}
	s.refMu.Lock()
	delete(s.pending, hash)
	s.refMu.Unlock()

	if moved, err := s.QuarantineChunk(hash); err != nil || !moved {
		t.Fatalf("QuarantineChunk after unpin = (%v, %v), want (true, nil)", moved, err)
	}
}

func TestQuarantinedChunksListsHashes(t *testing.T) {
	be := backend.NewMem()
	blobs := blobstore.New(be, latency.CostModel{}, nil)
	s := For(blobs)
	if _, err := s.Put("q/blob", bytes.Repeat([]byte("list me "), 2000), 4096, Hints{}, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, _ := s.Recipe("q/blob")
	corruptChunk(t, be, r.Chunks[0].Hash)
	if _, err := s.QuarantineChunk(r.Chunks[0].Hash); err != nil {
		t.Fatalf("QuarantineChunk: %v", err)
	}
	got, err := s.QuarantinedChunks()
	if err != nil {
		t.Fatalf("QuarantinedChunks: %v", err)
	}
	if len(got) != 1 || got[0] != r.Chunks[0].Hash {
		t.Fatalf("QuarantinedChunks = %v, want [%s]", got, r.Chunks[0].Hash)
	}
}
