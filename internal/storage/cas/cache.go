package cas

import (
	"sync/atomic"

	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/cache"
)

// The serving-tier cache sits directly on the Store: every consumer of
// one blob store shares one *cas.Store (see For), so attaching the
// cache here makes it transparently shared by all four approaches'
// read paths with zero plumbing in the callers.
//
// Cache key namespaces (one flat cache, byte budget shared by all
// three — hot recipes and indexes are tiny next to chunks but save a
// store round-trip each, so letting them compete for the same budget
// favors exactly the metadata the hot path re-reads):
//
//	<64 hex chars>   decoded logical chunk bytes, keyed by content address
//	"rcp:"+logical   parsed Recipe of a logical key
//	"idx:"+blobKey   caller-owned raw blobs (per-set chunk indexes)
//
// Values handed out of the cache are shared and must not be mutated.

const (
	recipeKeyPrefix = "rcp:"
	indexKeyPrefix  = "idx:"
)

// EnableCache attaches an in-memory chunk cache of at most maxBytes to
// the store. It is idempotent and grow-only: the largest budget any
// caller asked for wins, and an attached cache is never detached —
// consumers that did not opt in simply share the hits. Safe for
// concurrent use.
func (s *Store) EnableCache(maxBytes int64, reg *obs.Registry) {
	if maxBytes <= 0 {
		return
	}
	for {
		cur := s.cache.Load()
		if cur != nil && cur.MaxBytes() >= maxBytes {
			return
		}
		next := cache.New(cache.Config{MaxBytes: maxBytes, Registry: reg})
		if s.cache.CompareAndSwap(cur, next) {
			return
		}
	}
}

// ChunkCache returns the attached cache, nil when none is enabled.
func (s *Store) ChunkCache() *cache.Cache { return s.cache.Load() }

// Pin marks chunk hashes as held by an in-flight read: Release's eager
// delete-at-zero, GC, and a failed Put's undo all refuse to delete a
// pinned chunk, exactly like chunks of in-flight Puts. Every Pin must
// be paired with an Unpin of the same hashes.
func (s *Store) Pin(hashes ...string) {
	s.refMu.Lock()
	for _, h := range hashes {
		s.pinned[h]++
	}
	s.refMu.Unlock()
}

// Unpin releases pins taken by Pin.
func (s *Store) Unpin(hashes ...string) {
	s.refMu.Lock()
	for _, h := range hashes {
		if s.pinned[h]--; s.pinned[h] <= 0 {
			delete(s.pinned, h)
		}
	}
	s.refMu.Unlock()
}

// pinCount returns the live pins on h. Callers must hold refMu.
func (s *Store) pinCount(h string) int { return s.pinned[h] }

// chunkWeight is the cache admission weight of a chunk: its persisted
// reference count, i.e. how many committed blobs share it. Computed
// with a brief refMu acquisition — never while holding cache locks, so
// the cache stays a leaf in the lock order.
func (s *Store) chunkWeight(hash string) int {
	s.refMu.Lock()
	n, err := s.readRef(hash)
	s.refMu.Unlock()
	if err != nil {
		return 0
	}
	return n
}

// getChunkCached returns the logical bytes of a chunk, serving from
// the cache when possible and admitting store reads weighted by the
// chunk's refcount. The returned slice may be cache-resident: callers
// must copy before mutating.
func (s *Store) getChunkCached(hash string, want int64) ([]byte, error) {
	c := s.cache.Load()
	if c == nil {
		return s.getChunk(hash, want)
	}
	if v, ok := c.Get(hash); ok {
		return v.([]byte), nil
	}
	data, err := s.getChunk(hash, want)
	if err != nil {
		return nil, err
	}
	c.Put(hash, data, int64(len(data)), s.chunkWeight(hash))
	return data, nil
}

// readRecipeCached returns the parsed recipe of a logical key, cached
// under "rcp:"+key. The raw bytes are only loaded on a miss; cached
// hits return rawLen = the recipe document's size (for Release's freed
// accounting callers re-read on the uncached path instead).
func (s *Store) readRecipeCached(key string) (Recipe, error) {
	c := s.cache.Load()
	if c == nil {
		r, _, err := s.readRecipe(key)
		return r, err
	}
	ck := recipeKeyPrefix + key
	if v, ok := c.Get(ck); ok {
		return v.(Recipe), nil
	}
	r, raw, err := s.readRecipe(key)
	if err != nil {
		return Recipe{}, err
	}
	// Weight 1: recipes earn protection by reuse, not refcount.
	c.Put(ck, r, int64(len(raw)), 1)
	return r, nil
}

// invalidateRecipe drops the cached recipe of a logical key. Called on
// every recipe write and delete so the cache never outlives the store.
func (s *Store) invalidateRecipe(key string) {
	if c := s.cache.Load(); c != nil {
		c.Delete(recipeKeyPrefix + key)
	}
}

// invalidateChunk drops a chunk's cached bytes after its blob is
// deleted (GC, release-at-zero) so dead data stops occupying budget.
func (s *Store) invalidateChunk(hash string) {
	if c := s.cache.Load(); c != nil {
		c.Delete(hash)
	}
}

// CacheRaw caches caller-owned raw bytes (per-set chunk indexes) under
// "idx:"+blobKey in the shared budget. val may be any immutable parsed
// form; size should be its approximate footprint.
func (s *Store) CacheRaw(blobKey string, val any, size int64) {
	if c := s.cache.Load(); c != nil {
		c.Put(indexKeyPrefix+blobKey, val, size, 1)
	}
}

// CachedRaw returns a value stored with CacheRaw.
func (s *Store) CachedRaw(blobKey string) (any, bool) {
	c := s.cache.Load()
	if c == nil {
		return nil, false
	}
	return c.Get(indexKeyPrefix + blobKey)
}

// InvalidateRaw drops a CacheRaw entry; core calls it when the
// underlying blob is deleted or overwritten.
func (s *Store) InvalidateRaw(blobKey string) {
	if c := s.cache.Load(); c != nil {
		c.Delete(indexKeyPrefix + blobKey)
	}
}

// GetChunk returns the logical bytes of one chunk by content address,
// pinned against concurrent GC/release for the duration of the fetch
// and served through the cache. The returned slice may be shared with
// the cache: callers must treat it as read-only.
func (s *Store) GetChunk(hash string, size int64) ([]byte, error) {
	s.Pin(hash)
	defer s.Unpin(hash)
	return s.getChunkCached(hash, size)
}

// cachePointer is split into its own type alias to keep the Store
// declaration in cas.go dependency-light.
type cachePointer = atomic.Pointer[cache.Cache]
