package cas

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mmm-go/mmm/internal/codec"
	"github.com/mmm-go/mmm/internal/core/pool"
	"github.com/mmm-go/mmm/internal/obs"
	"github.com/mmm-go/mmm/internal/storage/backend"
	"github.com/mmm-go/mmm/internal/storage/blobstore"
)

// ErrCorrupt is wrapped by read errors when a chunk's stored bytes can
// no longer be turned into the payload its content address promises —
// a damaged raw chunk, a framed chunk naming an unregistered codec, or
// an encoded body that fails to decode. Callers map it onto their own
// corruption sentinel.
var ErrCorrupt = errors.New("cas: corrupt chunk")

// Key-space layout inside the blob store. Everything is under Prefix,
// which the blob-store consumers (fsck's orphan analysis, prune's
// prefix enumeration) treat as a reserved namespace.
const (
	Prefix       = "cas/"
	chunkPrefix  = Prefix + "chunks/"
	refPrefix    = Prefix + "refs/"
	recipePrefix = Prefix + "recipes/"
)

// Dedup metric names exposed on /metrics.
const (
	// MetricChunksTotal counts chunks newly written to the store.
	MetricChunksTotal = "mmm_cas_chunks_total"
	// MetricDedupBytesTotal counts logical bytes that cost zero blob
	// writes because their chunk was already present (the dedup win).
	MetricDedupBytesTotal = "mmm_cas_dedup_bytes_total"
	// MetricGCDeletedTotal counts chunks deleted by GC.
	MetricGCDeletedTotal = "mmm_cas_gc_deleted_total"
	// MetricDedupRatio is logical bytes stored per 100 physical bytes
	// written, cumulative over the store's lifetime (an integer gauge:
	// 100 = no dedup, 250 = 2.5× dedup).
	MetricDedupRatio = "mmm_cas_dedup_ratio_percent"
)

// ChunkKey returns the blob key of the chunk with the given SHA-256
// hex hash, fanned out by the first two hex digits.
func ChunkKey(hash string) string { return chunkPrefix + hash[:2] + "/" + hash }

// RefKey returns the blob key of a chunk's persisted reference count.
func RefKey(hash string) string { return refPrefix + hash[:2] + "/" + hash }

// RecipeKey returns the blob key of the recipe for a logical key.
func RecipeKey(logical string) string { return recipePrefix + logical }

// LogicalKey inverts RecipeKey.
func LogicalKey(recipeKey string) (string, bool) {
	if !strings.HasPrefix(recipeKey, recipePrefix) {
		return "", false
	}
	return recipeKey[len(recipePrefix):], true
}

// ChunkHash extracts the hash from a chunk or ref key; ok is false for
// keys outside those namespaces or with a malformed fan-out.
func ChunkHash(key string) (hash string, ok bool) {
	rest := ""
	switch {
	case strings.HasPrefix(key, chunkPrefix):
		rest = key[len(chunkPrefix):]
	case strings.HasPrefix(key, refPrefix):
		rest = key[len(refPrefix):]
	default:
		return "", false
	}
	fan, hash, found := strings.Cut(rest, "/")
	if !found || len(fan) != 2 || len(hash) != sha256.Size*2 || !strings.HasPrefix(hash, fan) {
		return "", false
	}
	return hash, true
}

// IsKey reports whether key lives in the reserved CAS namespace.
func IsKey(key string) bool { return strings.HasPrefix(key, Prefix) }

// IsRefKey reports whether key is a persisted refcount key. Fsck uses
// this to treat integrity findings on refcounts as repairable — a
// refcount is derivable from the recipes, never primary data.
func IsRefKey(key string) bool {
	_, ok := ChunkHash(key)
	return ok && strings.HasPrefix(key, refPrefix)
}

// EncodeRefcount renders a reference count the way the store persists
// it (ASCII decimal) — fsck uses this to rewrite drifted counts.
func EncodeRefcount(n int) []byte { return []byte(strconv.Itoa(n)) }

// RecipeChunk is one chunk reference inside a recipe, in blob order.
// Hash addresses the LOGICAL (uncompressed) chunk bytes and Size is
// their logical length: content addressing is codec-independent, so a
// chunk written by a zlib saver deduplicates against the same bytes
// written by a tlz saver. How a chunk body is stored on disk is the
// chunk's own business (see the frame format in getChunk).
type RecipeChunk struct {
	Hash string `json:"h"`
	Size int64  `json:"s"`
}

// Recipe reassembles a logical blob from its chunks. Codec records the
// codec ID the writer was configured with ("" for pre-codec recipes
// and uncompressed writes); it is introspective metadata — readers
// never need it, because chunk bodies are self-describing.
type Recipe struct {
	Size   int64         `json:"size"`
	Chunks []RecipeChunk `json:"chunks"`
	Codec  string        `json:"codec,omitempty"`
}

// Encoding selects per-chunk compression for a Put. The zero value
// stores chunk bodies raw, matching every store written before codecs
// existed.
type Encoding struct {
	// Codec compresses each newly written chunk body, keeping the
	// encoded form only when it is strictly smaller than the raw
	// chunk. nil (or the "none" codec) stores bodies raw.
	Codec codec.Codec
	// Workers bounds the encode fan-out across chunks; <= 0 uses one
	// worker per CPU.
	Workers int
}

// encoder returns the effective codec of the Encoding, nil when
// encoding is a no-op.
func (e Encoding) encoder() codec.Codec {
	if e.Codec == nil || e.Codec.ID() == codec.NoneID {
		return nil
	}
	return e.Codec
}

// PutResult reports the physical cost of one deduplicated write.
type PutResult struct {
	// PhysicalBytes is what the write actually cost the store: newly
	// written chunk bytes plus the recipe document.
	PhysicalBytes int64
	// WriteOps counts chunk and recipe blob writes (refcount updates
	// are bookkeeping and excluded).
	WriteOps int64
	// NewChunks is how many chunks this write added to the store.
	NewChunks int
	// DedupBytes is how many logical bytes were skipped because their
	// chunk was already present.
	DedupBytes int64
}

// GCReport summarizes one garbage-collection pass.
type GCReport struct {
	// ChunksDeleted counts chunks removed (unreferenced by any recipe
	// and with a zero or missing refcount).
	ChunksDeleted int `json:"chunks_deleted"`
	// BytesFreed is the payload bytes of the deleted chunks.
	BytesFreed int64 `json:"bytes_freed"`
	// RefsDeleted counts refcount files removed (their chunk was gone
	// or collected).
	RefsDeleted int `json:"refs_deleted"`
	// ChunksKept counts chunks that survived the pass.
	ChunksKept int `json:"chunks_kept"`
}

// Store is the content-addressed view over one blob store. Use For to
// obtain the Store of a blob store: the refcount mutex must be shared
// by every writer touching the same underlying bytes.
type Store struct {
	blobs *blobstore.Store

	// refMu serializes refcount read-modify-write cycles and the
	// delete-at-zero decisions that depend on them.
	refMu sync.Mutex
	// pending counts in-flight Puts per chunk hash. A chunk some Put
	// has registered must not be eagerly deleted even at refcount
	// zero: the Put may have skipped writing it because it existed and
	// is about to take a reference.
	pending map[string]int
	// pinned counts in-flight reads per chunk hash (see Pin). Pinned
	// chunks are shielded from eager deletion exactly like pending
	// ones; unlike pending, pins are taken by readers.
	pinned map[string]int

	// cache is the optional serving-tier object cache (see cache.go);
	// nil until a consumer calls EnableCache.
	cache cachePointer

	// Cumulative logical/physical byte counters feeding the dedup
	// ratio gauge.
	logical, physical atomic.Int64
}

// stores maps *blobstore.Store → *Store so that all writers over one
// blob store share refcount serialization.
var stores sync.Map

// For returns the CAS view of b, creating it on first use.
func For(b *blobstore.Store) *Store {
	if s, ok := stores.Load(b); ok {
		return s.(*Store)
	}
	s, _ := stores.LoadOrStore(b, &Store{blobs: b, pending: map[string]int{}, pinned: map[string]int{}})
	return s.(*Store)
}

// registry resolves a caller-supplied metrics registry, describing the
// CAS families on first use.
func registry(reg *obs.Registry) *obs.Registry {
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe(MetricChunksTotal, "Chunks newly written to the content-addressed store.")
	reg.Describe(MetricDedupBytesTotal, "Logical bytes skipped because their chunk already existed.")
	reg.Describe(MetricGCDeletedTotal, "Chunks deleted by CAS garbage collection.")
	reg.Describe(MetricDedupRatio, "Cumulative logical bytes stored per 100 physical bytes written.")
	return reg
}

func hashChunk(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// readRef returns a chunk's persisted reference count; a missing ref
// file reads as zero. Callers must hold refMu.
func (s *Store) readRef(hash string) (int, error) {
	raw, err := s.blobs.Get(RefKey(hash))
	if err != nil {
		if backend.IsNotFound(err) {
			return 0, nil
		}
		return 0, err
	}
	n, err := strconv.Atoi(string(bytes.TrimSpace(raw)))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("cas: refcount of %s is garbled: %q", hash, raw)
	}
	return n, nil
}

// Put stores data under the logical key: chunks it, writes only the
// chunks the store does not already have, writes the recipe, and then
// takes one reference per distinct chunk. A failed Put undoes exactly
// what it did (its own increments, its recipe, its genuinely new
// chunks) so a shared chunk is never released by a save that never
// referenced it.
//
// The write order — chunks, recipe, refcounts — is chosen for crash
// safety: at every prefix of a crashed Put, persisted refcounts are at
// least the references held by committed sets, so the eager
// delete-at-zero in Release can never destroy live data. Debris from
// a crash (orphan chunks, an unreferenced recipe, over-counted refs)
// is exactly what fsck's CAS pass detects and repairs.
func (s *Store) Put(key string, data []byte, chunkSize int, hints Hints, reg *obs.Registry) (PutResult, error) {
	return s.PutEncoded(key, data, chunkSize, hints, Encoding{}, reg)
}

// PutEncoded is Put with per-chunk compression: newly written chunk
// bodies are encoded with enc.Codec (fanned out across enc.Workers)
// and stored framed — one wire-ID byte followed by the encoded payload
// — whenever that is strictly smaller than the raw chunk. Content
// addresses and recipes always describe the logical bytes, so
// deduplication is codec-independent and a store may freely mix codecs
// across writes.
func (s *Store) PutEncoded(key string, data []byte, chunkSize int, hints Hints, enc Encoding, reg *obs.Registry) (PutResult, error) {
	reg = registry(reg)
	chunks := Chunks(data, chunkSize, hints)
	recipe := Recipe{Size: int64(len(data)), Chunks: make([]RecipeChunk, len(chunks))}
	if enc.Codec != nil {
		recipe.Codec = enc.Codec.ID()
	}
	distinct := make([]string, 0, len(chunks))
	sizeOf := map[string]int64{}
	for i, c := range chunks {
		h := hashChunk(c.Data)
		recipe.Chunks[i] = RecipeChunk{Hash: h, Size: int64(len(c.Data))}
		if _, ok := sizeOf[h]; !ok {
			distinct = append(distinct, h)
			sizeOf[h] = int64(len(c.Data))
		}
	}

	// Shield every chunk this Put relies on from concurrent eager
	// deletion before we decide which ones already exist.
	s.refMu.Lock()
	for _, h := range distinct {
		s.pending[h]++
	}
	s.refMu.Unlock()
	defer func() {
		s.refMu.Lock()
		for _, h := range distinct {
			if s.pending[h]--; s.pending[h] <= 0 {
				delete(s.pending, h)
			}
		}
		s.refMu.Unlock()
	}()

	var res PutResult
	chunkData := map[string][]byte{}
	for i, c := range chunks {
		if _, dup := chunkData[recipe.Chunks[i].Hash]; !dup {
			chunkData[recipe.Chunks[i].Hash] = c.Data
		}
	}
	var newChunks []string
	undo := func(recipeWritten bool, committed map[string]int) {
		if recipeWritten {
			_ = s.blobs.Delete(RecipeKey(key))
			s.invalidateRecipe(key)
		}
		s.refMu.Lock()
		defer s.refMu.Unlock()
		for h, prev := range committed {
			if prev == 0 {
				_ = s.blobs.Delete(RefKey(h))
			} else {
				_ = s.blobs.Put(RefKey(h), EncodeRefcount(prev))
			}
		}
		for _, h := range newChunks {
			n, err := s.readRef(h)
			if err == nil && n == 0 && s.pending[h] == 1 && s.pinned[h] == 0 {
				_ = s.blobs.Delete(ChunkKey(h))
				_ = s.blobs.Delete(RefKey(h))
				s.invalidateChunk(h)
			}
		}
	}

	missing := make([]string, 0, len(distinct))
	for _, h := range distinct {
		_, err := s.blobs.Size(ChunkKey(h))
		switch {
		case err == nil:
		case backend.IsNotFound(err):
			missing = append(missing, h)
		default:
			undo(false, nil)
			return PutResult{}, fmt.Errorf("cas: probing chunk %s: %w", h, err)
		}
	}

	// Encode and store the missing chunk bodies, fanned out across the
	// worker pool: each task compresses one chunk and immediately
	// writes it, so one chunk's encode overlaps another chunk's store
	// latency. The hashes in missing are distinct and every slot is
	// disjoint, so the stored bytes are identical at any concurrency.
	// An encoded body is kept only when it shrinks; otherwise the raw
	// chunk is stored exactly as a pre-codec store would have.
	// bodyLen[i] > 0 records a completed write (chunk bodies are never
	// empty) so undo stays exact even when a later task fails. Plain
	// Put call sites (no codec, no worker count) keep their serial,
	// index-ordered writes.
	c := enc.encoder()
	workers := enc.Workers
	if workers <= 0 {
		if c != nil {
			workers = pool.DefaultWorkers()
		} else {
			workers = 1
		}
	}
	bodyLen := make([]int64, len(missing))
	var logicalIn, keptOut atomic.Int64
	start := time.Now()
	runErr := pool.Run(context.Background(), workers, len(missing), func(i int) error {
		h := missing[i]
		body := chunkData[h]
		if c != nil {
			framed, err := encodeFrame(c, body)
			if err != nil {
				return fmt.Errorf("cas: encoding chunk %s with %s: %w", h, c.ID(), err)
			}
			logicalIn.Add(int64(len(body)))
			if framed != nil {
				body = framed
			}
			keptOut.Add(int64(len(body)))
		}
		if err := s.blobs.Put(ChunkKey(h), body); err != nil {
			return fmt.Errorf("cas: writing chunk %s: %w", h, err)
		}
		bodyLen[i] = int64(len(body))
		return nil
	})
	if c != nil && len(missing) > 0 {
		codec.ObserveEncode(reg, c.ID(), int(logicalIn.Load()), int(keptOut.Load()), time.Since(start))
	}

	var newBytes int64
	for i, h := range missing {
		if bodyLen[i] == 0 {
			continue
		}
		newChunks = append(newChunks, h)
		newBytes += sizeOf[h]
		res.PhysicalBytes += bodyLen[i]
		res.WriteOps++
		res.NewChunks++
	}
	if runErr != nil {
		undo(false, nil)
		return PutResult{}, runErr
	}
	// Everything not physically written — repeats within this blob and
	// chunks other blobs already stored — was deduplicated.
	res.DedupBytes = int64(len(data)) - newBytes

	recipeBytes, err := json.Marshal(recipe)
	if err != nil {
		undo(false, nil)
		return PutResult{}, fmt.Errorf("cas: marshaling recipe for %q: %w", key, err)
	}
	if err := s.blobs.Put(RecipeKey(key), recipeBytes); err != nil {
		undo(true, nil)
		return PutResult{}, fmt.Errorf("cas: writing recipe for %q: %w", key, err)
	}
	// An overwrite replaced the recipe: drop any cached parse of the
	// old one.
	s.invalidateRecipe(key)
	res.PhysicalBytes += int64(len(recipeBytes))
	res.WriteOps++

	s.refMu.Lock()
	committed := map[string]int{}
	for _, h := range distinct {
		n, err := s.readRef(h)
		if err == nil {
			err = s.blobs.Put(RefKey(h), EncodeRefcount(n+1))
		}
		if err != nil {
			s.refMu.Unlock()
			undo(true, committed)
			return PutResult{}, fmt.Errorf("cas: acquiring ref on %s: %w", h, err)
		}
		committed[h] = n
	}
	s.refMu.Unlock()

	reg.Counter(MetricChunksTotal).Add(int64(res.NewChunks))
	reg.Counter(MetricDedupBytesTotal).Add(res.DedupBytes)
	logical := s.logical.Add(int64(len(data)))
	physical := s.physical.Add(res.PhysicalBytes)
	if physical > 0 {
		reg.Gauge(MetricDedupRatio).Set(logical * 100 / physical)
	}
	return res, nil
}

// readRecipe loads and validates the recipe of a logical key. The
// error preserves backend.IsNotFound for missing recipes.
func (s *Store) readRecipe(key string) (Recipe, []byte, error) {
	raw, err := s.blobs.Get(RecipeKey(key))
	if err != nil {
		return Recipe{}, nil, err
	}
	r, err := DecodeRecipe(raw)
	if err != nil {
		return Recipe{}, nil, fmt.Errorf("cas: recipe for %q: %w", key, err)
	}
	return r, raw, nil
}

// DecodeRecipe parses and validates recipe bytes.
func DecodeRecipe(raw []byte) (Recipe, error) {
	var r Recipe
	if err := json.Unmarshal(raw, &r); err != nil {
		return Recipe{}, fmt.Errorf("cas: garbled recipe: %w", err)
	}
	var total int64
	for _, c := range r.Chunks {
		if len(c.Hash) != sha256.Size*2 || c.Size <= 0 {
			return Recipe{}, fmt.Errorf("cas: garbled recipe entry %q/%d", c.Hash, c.Size)
		}
		total += c.Size
	}
	if total != r.Size || r.Size < 0 {
		return Recipe{}, fmt.Errorf("cas: recipe chunk sizes sum to %d, want %d", total, r.Size)
	}
	return r, nil
}

// Recipe returns the stored recipe for a logical key — the
// introspective view of how the blob is chunked and which codec its
// bodies were encoded with.
func (s *Store) Recipe(key string) (Recipe, error) {
	r, _, err := s.readRecipe(key)
	return r, err
}

// Has reports whether a recipe exists for the logical key.
func (s *Store) Has(key string) bool {
	_, err := s.blobs.Size(RecipeKey(key))
	return err == nil
}

// Size returns the logical size of the blob stored under key.
func (s *Store) Size(key string) (int64, error) {
	r, _, err := s.readRecipe(key)
	if err != nil {
		return 0, err
	}
	return r.Size, nil
}

// encodeFrame returns the framed encoded body of raw under c — the
// codec's wire byte followed by the encoded payload — or nil when the
// frame would not be strictly smaller than the raw chunk, in which
// case the caller stores raw bytes. Strict shrinkage is what makes
// stored bodies unambiguous: a raw body always has exactly the logical
// length, a framed body never does.
func encodeFrame(c codec.Codec, raw []byte) ([]byte, error) {
	framed := make([]byte, 1, len(raw))
	framed[0] = c.Wire()
	framed, err := c.Encode(framed, raw)
	if err != nil {
		return nil, err
	}
	if len(framed) >= len(raw) {
		return nil, nil
	}
	return framed, nil
}

// getChunk reads one chunk body and returns the logical bytes its
// content address promises — a defense-in-depth check on top of the
// blob store's CRC32C manifests.
func (s *Store) getChunk(hash string, want int64) ([]byte, error) {
	data, err := s.blobs.Get(ChunkKey(hash))
	if err != nil {
		if blobstore.IsQuarantined(err) {
			// The chunk's bytes were moved to quarantine after failing
			// verification: surface it as corruption, not absence, so
			// readers fail fast instead of treating the set as missing.
			return nil, fmt.Errorf("%w: chunk %s is quarantined: %v", ErrCorrupt, hash, err)
		}
		return nil, fmt.Errorf("cas: reading chunk %s: %w", hash, err)
	}
	return decodeChunkBody(hash, want, data)
}

// decodeChunkBody turns a stored chunk body back into logical bytes.
// Bodies are self-describing: a body of exactly the logical size that
// hashes to the content address is raw (the only format pre-codec
// stores ever wrote); anything else must be a frame — wire-ID byte
// plus encoded payload — that decodes to bytes matching the address.
// Everything that fits neither reading is damage.
func decodeChunkBody(hash string, want int64, body []byte) ([]byte, error) {
	if int64(len(body)) == want && hashChunk(body) == hash {
		return body, nil
	}
	if len(body) == 0 || int64(len(body)) >= want {
		return nil, fmt.Errorf("%w: chunk %s does not match its content address", ErrCorrupt, hash)
	}
	c, err := codec.ByWire(body[0])
	if err != nil {
		return nil, fmt.Errorf("%w: chunk %s: %v", ErrCorrupt, hash, err)
	}
	start := time.Now()
	out, err := c.Decode(body[1:], int(want))
	if err != nil {
		return nil, fmt.Errorf("%w: chunk %s (%s): %v", ErrCorrupt, hash, c.ID(), err)
	}
	if hashChunk(out) != hash {
		return nil, fmt.Errorf("%w: chunk %s (%s): decoded bytes do not match the content address", ErrCorrupt, hash, c.ID())
	}
	codec.ObserveDecode(nil, c.ID(), time.Since(start))
	return out, nil
}

// VerifyChunk reads a chunk's stored body and verifies it still yields
// the logical bytes its content address promises. fsck uses it to tell
// compressed chunk bodies (whose stored size legitimately differs from
// the recipe's logical size) apart from genuine damage.
func (s *Store) VerifyChunk(hash string, logicalSize int64) error {
	_, err := s.getChunk(hash, logicalSize)
	return err
}

// HasChunk reports whether a chunk body is stored under the content
// address. The pull client uses it to diff a remote recipe against the
// local cache before fetching.
func (s *Store) HasChunk(hash string) bool {
	_, err := s.blobs.Size(ChunkKey(hash))
	return err == nil
}

// PutChunk stores logical chunk bytes under their content address after
// verifying the digest, so a corrupted or tampered body can never enter
// the store under a hash it does not match. It is the ingestion path of
// pull-mode caches and mirrors: chunks arrive individually, unreferenced
// by any recipe, and are stored raw. Writing an already-present chunk is
// a no-op (content addressing makes the write idempotent).
func (s *Store) PutChunk(hash string, data []byte) error {
	if hashChunk(data) != hash {
		return fmt.Errorf("%w: chunk body does not match content address %s", ErrCorrupt, hash)
	}
	if s.HasChunk(hash) {
		return nil
	}
	if err := s.blobs.Put(ChunkKey(hash), data); err != nil {
		return fmt.Errorf("cas: writing chunk %s: %w", hash, err)
	}
	return nil
}

// Get reassembles the logical blob stored under key. Chunk fetch and
// decode fan out across one worker per CPU into disjoint slots of the
// preallocated result, so decompression of large blobs scales with
// cores while remaining byte-identical to a serial read. The chunks
// being read are pinned for the duration, so a concurrent prune or GC
// of the last other reference cannot delete them mid-read.
func (s *Store) Get(key string) ([]byte, error) {
	r, err := s.readRecipeCached(key)
	if err != nil {
		return nil, err
	}
	pins := distinctHashes(r.Chunks)
	s.Pin(pins...)
	defer s.Unpin(pins...)
	out := make([]byte, r.Size)
	offs := make([]int64, len(r.Chunks))
	var pos int64
	for i, c := range r.Chunks {
		offs[i] = pos
		pos += c.Size
	}
	err = pool.Run(context.Background(), pool.DefaultWorkers(), len(r.Chunks), func(i int) error {
		c := r.Chunks[i]
		data, err := s.getChunkCached(c.Hash, c.Size)
		if err != nil {
			return err
		}
		copy(out[offs[i]:offs[i]+c.Size], data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// distinctHashes returns each chunk hash once, in first-seen order.
func distinctHashes(chunks []RecipeChunk) []string {
	out := make([]string, 0, len(chunks))
	seen := make(map[string]struct{}, len(chunks))
	for _, c := range chunks {
		if _, ok := seen[c.Hash]; !ok {
			seen[c.Hash] = struct{}{}
			out = append(out, c.Hash)
		}
	}
	return out
}

// GetRange reads length bytes at offset off from the logical blob,
// fetching only the chunks the range overlaps.
func (s *Store) GetRange(key string, off, length int64) ([]byte, error) {
	r, err := s.readRecipeCached(key)
	if err != nil {
		return nil, err
	}
	if off < 0 || length < 0 || off+length > r.Size {
		return nil, &backend.RangeError{Key: key, Off: off, Length: length, Size: r.Size}
	}
	var overlap []string
	var scan int64
	for _, c := range r.Chunks {
		lo, hi := scan, scan+c.Size
		scan = hi
		if hi > off && lo < off+length {
			overlap = append(overlap, c.Hash)
		}
	}
	s.Pin(overlap...)
	defer s.Unpin(overlap...)
	out := make([]byte, 0, length)
	var pos int64
	for _, c := range r.Chunks {
		lo, hi := pos, pos+c.Size
		pos = hi
		if hi <= off {
			continue
		}
		if lo >= off+length {
			break
		}
		data, err := s.getChunkCached(c.Hash, c.Size)
		if err != nil {
			return nil, err
		}
		from, to := int64(0), c.Size
		if off > lo {
			from = off - lo
		}
		if off+length < hi {
			to = off + length - lo
		}
		out = append(out, data[from:to]...)
	}
	return out, nil
}

// Release drops the references the logical key holds and deletes its
// recipe. Chunks whose refcount reaches zero (and that no in-flight
// Put is relying on) are deleted eagerly; the returned count is the
// physical bytes actually freed, recipe included. Releasing a key
// with no recipe is a no-op — retried prunes and crash replays must
// converge.
//
// The recipe is deleted before any refcount is decremented so that a
// crash mid-release leaves counts too high (orphan-class debris fsck
// repairs), never too low.
func (s *Store) Release(key string, reg *obs.Registry) (freed int64, err error) {
	_ = registry(reg)
	r, raw, err := s.readRecipe(key)
	if err != nil {
		if backend.IsNotFound(err) {
			return 0, nil
		}
		return 0, err
	}
	if err := s.blobs.Delete(RecipeKey(key)); err != nil {
		return 0, fmt.Errorf("cas: deleting recipe for %q: %w", key, err)
	}
	s.invalidateRecipe(key)
	freed = int64(len(raw))

	distinct := make([]string, 0, len(r.Chunks))
	sizeOf := map[string]int64{}
	for _, c := range r.Chunks {
		if _, ok := sizeOf[c.Hash]; !ok {
			distinct = append(distinct, c.Hash)
			sizeOf[c.Hash] = c.Size
		}
	}
	s.refMu.Lock()
	defer s.refMu.Unlock()
	for _, h := range distinct {
		n, err := s.readRef(h)
		if err != nil {
			// A garbled refcount is fsck's to rebuild; skipping the
			// decrement only leaves the count too high, which is safe.
			continue
		}
		if n > 1 {
			if err := s.blobs.Put(RefKey(h), EncodeRefcount(n-1)); err != nil {
				return freed, fmt.Errorf("cas: releasing ref on %s: %w", h, err)
			}
			continue
		}
		if err := s.blobs.Delete(RefKey(h)); err != nil {
			return freed, fmt.Errorf("cas: deleting ref of %s: %w", h, err)
		}
		if s.pending[h] > 0 || s.pinned[h] > 0 {
			continue
		}
		// Report the stored (possibly compressed) size, not the logical
		// one: freed bytes are a physical-occupancy number.
		size, serr := s.blobs.Size(ChunkKey(h))
		if serr != nil {
			size = sizeOf[h]
		}
		if err := s.blobs.Delete(ChunkKey(h)); err != nil {
			return freed, fmt.Errorf("cas: deleting chunk %s: %w", h, err)
		}
		s.invalidateChunk(h)
		freed += size
	}
	return freed, nil
}

// GC deletes every chunk that no recipe references and whose persisted
// refcount is zero or missing, plus refcount files whose chunk is
// gone. It is the safety net for crash debris Release could not see;
// a chunk referenced by any recipe — even an uncommitted one — is
// never collected. GC fails without deleting anything if a recipe is
// unreadable: run fsck first.
func (s *Store) GC(reg *obs.Registry) (GCReport, error) {
	reg = registry(reg)
	s.refMu.Lock()
	defer s.refMu.Unlock()

	keys, err := s.blobs.Keys()
	if err != nil {
		return GCReport{}, err
	}
	referenced := map[string]bool{}
	chunks := map[string]bool{}
	var refs []string
	for _, k := range keys {
		switch {
		case strings.HasPrefix(k, recipePrefix):
			logical, _ := LogicalKey(k)
			r, _, err := s.readRecipe(logical)
			if err != nil {
				return GCReport{}, fmt.Errorf("cas: gc: %w", err)
			}
			for _, c := range r.Chunks {
				referenced[c.Hash] = true
			}
		case strings.HasPrefix(k, chunkPrefix):
			if h, ok := ChunkHash(k); ok {
				chunks[h] = true
			}
		case strings.HasPrefix(k, refPrefix):
			if h, ok := ChunkHash(k); ok {
				refs = append(refs, h)
			}
		}
	}

	var report GCReport
	deleted := map[string]bool{}
	for h := range chunks {
		if referenced[h] || s.pending[h] > 0 || s.pinned[h] > 0 {
			report.ChunksKept++
			continue
		}
		n, err := s.readRef(h)
		if err != nil || n > 0 {
			report.ChunksKept++
			continue
		}
		size, err := s.blobs.Size(ChunkKey(h))
		if err != nil && !backend.IsNotFound(err) {
			return report, err
		}
		if err := s.blobs.Delete(ChunkKey(h)); err != nil {
			return report, err
		}
		if err := s.blobs.Delete(RefKey(h)); err != nil {
			return report, err
		}
		s.invalidateChunk(h)
		deleted[h] = true
		report.ChunksDeleted++
		report.BytesFreed += size
	}
	for _, h := range refs {
		if chunks[h] && !deleted[h] {
			continue
		}
		if deleted[h] {
			continue // ref already deleted alongside its chunk
		}
		if err := s.blobs.Delete(RefKey(h)); err != nil {
			return report, err
		}
		report.RefsDeleted++
	}
	reg.Counter(MetricGCDeletedTotal).Add(int64(report.ChunksDeleted))
	return report, nil
}

// Usage summarizes physical and logical occupancy for `mmstore du`.
type Usage struct {
	// Recipes is the number of logical blobs stored.
	Recipes int `json:"recipes"`
	// LogicalBytes is the sum of the logical sizes of all recipes.
	LogicalBytes int64 `json:"logical_bytes"`
	// Chunks is the number of distinct chunks present.
	Chunks int `json:"chunks"`
	// ChunkBytes is the physical payload bytes of those chunks.
	ChunkBytes int64 `json:"chunk_bytes"`
	// RecipeBytes is the bytes spent on recipe documents.
	RecipeBytes int64 `json:"recipe_bytes"`
}

// Usage scans the CAS namespace and reports occupancy.
func (s *Store) Usage() (Usage, error) {
	scan, err := ScanStore(s.blobs)
	if err != nil {
		return Usage{}, err
	}
	var u Usage
	u.Recipes = len(scan.Recipes) + len(scan.BadRecipes)
	for _, r := range scan.Recipes {
		u.LogicalBytes += r.Size
	}
	u.Chunks = len(scan.Chunks)
	for _, size := range scan.Chunks {
		u.ChunkBytes += size
	}
	u.RecipeBytes = scan.RecipeBytes
	return u, nil
}

// Scan is the raw CAS inventory fsck and du build their checks on.
type Scan struct {
	// Recipes maps logical keys to their parsed recipes.
	Recipes map[string]Recipe
	// BadRecipes maps logical keys to the parse error of their recipe.
	BadRecipes map[string]error
	// Chunks maps chunk hashes to their stored payload size.
	Chunks map[string]int64
	// Refs maps chunk hashes to their parsed persisted refcount.
	Refs map[string]int
	// BadRefs maps chunk hashes to the parse error of their ref file.
	BadRefs map[string]error
	// RecipeBytes is the total size of all recipe documents.
	RecipeBytes int64
}

// ScanStore inventories the CAS namespace of a blob store without
// modifying anything.
func ScanStore(b *blobstore.Store) (*Scan, error) {
	keys, err := b.Keys()
	if err != nil {
		return nil, err
	}
	scan := &Scan{
		Recipes:    map[string]Recipe{},
		BadRecipes: map[string]error{},
		Chunks:     map[string]int64{},
		Refs:       map[string]int{},
		BadRefs:    map[string]error{},
	}
	for _, k := range keys {
		switch {
		case strings.HasPrefix(k, recipePrefix):
			logical, _ := LogicalKey(k)
			raw, err := b.Get(k)
			if err != nil {
				scan.BadRecipes[logical] = err
				continue
			}
			scan.RecipeBytes += int64(len(raw))
			r, err := DecodeRecipe(raw)
			if err != nil {
				scan.BadRecipes[logical] = err
				continue
			}
			scan.Recipes[logical] = r
		case strings.HasPrefix(k, chunkPrefix):
			h, ok := ChunkHash(k)
			if !ok {
				continue
			}
			size, err := b.Size(k)
			if err != nil {
				size = 0
			}
			scan.Chunks[h] = size
		case strings.HasPrefix(k, refPrefix):
			h, ok := ChunkHash(k)
			if !ok {
				continue
			}
			raw, err := b.Get(k)
			if err != nil {
				scan.BadRefs[h] = err
				continue
			}
			n, err := strconv.Atoi(string(bytes.TrimSpace(raw)))
			if err != nil || n < 0 {
				scan.BadRefs[h] = fmt.Errorf("cas: garbled refcount %q", raw)
				continue
			}
			scan.Refs[h] = n
		}
	}
	return scan, nil
}

// RecipeKeys lists the logical keys that have recipes, optionally
// filtered by logical-key prefix.
func (s *Store) RecipeKeys(prefix string) ([]string, error) {
	keys, err := s.blobs.Keys()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range keys {
		if logical, ok := LogicalKey(k); ok && strings.HasPrefix(logical, prefix) {
			out = append(out, logical)
		}
	}
	return out, nil
}
