package cas

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func testIndex(nchunks int) Index {
	ix := Index{Stride: 4096, Chunks: make([]IndexChunk, nchunks)}
	for i := range ix.Chunks {
		size := int64(1000 + i*17)
		ix.Chunks[i] = IndexChunk{Hash: hashChunk([]byte{byte(i), byte(i >> 8)}), Size: size}
		ix.Size += size
	}
	return ix
}

func TestIndexEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		ix := testIndex(n)
		got, err := DecodeIndex(ix.Encode())
		if err != nil {
			t.Fatalf("n=%d: DecodeIndex: %v", n, err)
		}
		if got.Stride != ix.Stride || got.Size != ix.Size || len(got.Chunks) != len(ix.Chunks) {
			t.Fatalf("n=%d: got %+v, want %+v", n, got, ix)
		}
		for i := range got.Chunks {
			if got.Chunks[i] != ix.Chunks[i] {
				t.Fatalf("n=%d chunk %d: got %+v, want %+v", n, i, got.Chunks[i], ix.Chunks[i])
			}
		}
	}
}

func TestBuildIndexMatchesRecipe(t *testing.T) {
	s, _ := newTestStore(t)
	data := bytes.Repeat([]byte{7, 8, 9}, 5000)
	if _, err := s.Put("k", data, 1024, Hints{}, reg(t)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, err := s.Recipe("k")
	if err != nil {
		t.Fatalf("Recipe: %v", err)
	}
	ix := BuildIndex(512, r)
	if ix.Size != r.Size || len(ix.Chunks) != len(r.Chunks) || ix.Stride != 512 {
		t.Fatalf("index %+v does not mirror recipe %+v", ix, r)
	}
	for i, c := range r.Chunks {
		if ix.Chunks[i].Hash != c.Hash || ix.Chunks[i].Size != c.Size {
			t.Fatalf("chunk %d diverged", i)
		}
	}
}

func TestDecodeIndexCorruption(t *testing.T) {
	valid := testIndex(3).Encode()
	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"short header", []byte("MMC")},
		{"bad magic", append([]byte("XXCI"), valid[4:]...)},
		{"bad version", append([]byte("MMCI\x02"), valid[5:]...)},
		{"truncated after header", valid[:6]},
		{"truncated mid chunk", valid[:len(valid)-5]},
		{"trailing bytes", append(append([]byte{}, valid...), 0)},
		{"flipped size byte", flipByte(valid, 6)},
		{"garbage", []byte("MMCI\x01 this is not an index at all")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeIndex(tc.raw)
			if err == nil {
				t.Fatal("corrupt index decoded without error")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

func flipByte(raw []byte, i int) []byte {
	out := append([]byte{}, raw...)
	out[i] ^= 0xff
	return out
}

func TestDecodeIndexHugeChunkCountDoesNotAllocate(t *testing.T) {
	// A forged header claiming 2^40 chunks must be rejected up front,
	// not trusted as an allocation size.
	raw := []byte("MMCI\x01")
	raw = binary.AppendUvarint(raw, 0)       // stride
	raw = binary.AppendUvarint(raw, 1<<40)   // size
	raw = binary.AppendUvarint(raw, 1<<40)   // nchunks
	raw = append(raw, make([]byte, 1024)...) // far too little payload
	_, err := DecodeIndex(raw)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "exceeds payload") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

func TestIndexLocate(t *testing.T) {
	// Three chunks of 100/200/300 bytes: blob offsets [0,100), [100,300), [300,600).
	ix := Index{Size: 600, Chunks: []IndexChunk{
		{Hash: strings.Repeat("aa", 32), Size: 100},
		{Hash: strings.Repeat("bb", 32), Size: 200},
		{Hash: strings.Repeat("cc", 32), Size: 300},
	}}
	cases := []struct {
		off, length int64
		want        []IndexSpan
	}{
		{0, 600, []IndexSpan{
			{ix.Chunks[0].Hash, 100, 0, 100},
			{ix.Chunks[1].Hash, 200, 0, 200},
			{ix.Chunks[2].Hash, 300, 0, 300},
		}},
		{0, 50, []IndexSpan{{ix.Chunks[0].Hash, 100, 0, 50}}},
		{150, 100, []IndexSpan{{ix.Chunks[1].Hash, 200, 50, 150}}},
		{99, 2, []IndexSpan{
			{ix.Chunks[0].Hash, 100, 99, 100},
			{ix.Chunks[1].Hash, 200, 0, 1},
		}},
		{300, 300, []IndexSpan{{ix.Chunks[2].Hash, 300, 0, 300}}},
		{600, 0, nil},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("off=%d,len=%d", tc.off, tc.length), func(t *testing.T) {
			got, err := ix.Locate(tc.off, tc.length)
			if err != nil {
				t.Fatalf("Locate: %v", err)
			}
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
	if _, err := ix.Locate(0, 601); err == nil {
		t.Fatal("out-of-range Locate succeeded")
	}
	if _, err := ix.Locate(-1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// FuzzIndexDecode asserts the index decoder is total: arbitrary bytes
// either decode to a valid index that re-encodes losslessly, or fail
// with an error wrapping ErrCorrupt — never a panic, never a silent
// partial parse.
func FuzzIndexDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MMCI\x01"))
	f.Add(testIndex(0).Encode())
	f.Add(testIndex(1).Encode())
	f.Add(testIndex(7).Encode())
	f.Add(testIndex(7).Encode()[:20])
	f.Fuzz(func(t *testing.T, raw []byte) {
		ix, err := DecodeIndex(raw)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// Valid parses must round-trip semantically (byte equality
		// would be too strong: the varint decoder tolerates
		// non-minimal encodings the encoder never emits).
		again, err := DecodeIndex(ix.Encode())
		if err != nil {
			t.Fatalf("re-encoding a valid index broke it: %v", err)
		}
		if fmt.Sprint(again) != fmt.Sprint(ix) {
			t.Fatalf("decode/encode not lossless: %+v vs %+v", ix, again)
		}
	})
}
