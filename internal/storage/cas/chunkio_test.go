package cas

import (
	"bytes"
	"errors"
	"testing"
)

// TestHasChunkPutChunk covers the single-chunk surface the pull
// protocol's client-side cache is built on: Put verifies the body
// against its content address before storing, re-puts are idempotent,
// and wrong bytes are rejected without ever landing in the store.
func TestHasChunkPutChunk(t *testing.T) {
	s, _ := newTestStore(t)
	data := bytes.Repeat([]byte{0xab, 0xcd}, 500)
	hash := hashChunk(data)

	if s.HasChunk(hash) {
		t.Fatal("HasChunk true before any Put")
	}
	if err := s.PutChunk(hash, data); err != nil {
		t.Fatalf("PutChunk: %v", err)
	}
	if !s.HasChunk(hash) {
		t.Fatal("HasChunk false after Put")
	}
	got, err := s.GetChunk(hash, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("GetChunk after PutChunk: %d bytes, %v", len(got), err)
	}

	// Idempotent re-put.
	if err := s.PutChunk(hash, data); err != nil {
		t.Fatalf("re-PutChunk: %v", err)
	}

	// Wrong bytes for the address: rejected, nothing stored.
	bogus := bytes.Repeat([]byte{0x11}, 100)
	if err := s.PutChunk(hashChunk(bogus), data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("PutChunk with mismatched body: err = %v, want ErrCorrupt", err)
	}
	if s.HasChunk(hashChunk(bogus)) {
		t.Fatal("mismatched PutChunk left a chunk in the store")
	}
}
