package backend

import (
	"github.com/mmm-go/mmm/internal/obs"
)

// Metric families recorded by Instrumented (and, for retries, by the
// OnRetry hook Instrument wires into a Retry wrapper).
const (
	MetricOps        = "mmm_backend_ops_total"
	MetricErrors     = "mmm_backend_errors_total"
	MetricReadBytes  = "mmm_backend_read_bytes_total"
	MetricWriteBytes = "mmm_backend_write_bytes_total"
	MetricRetries    = "mmm_backend_retries_total"
)

// Instrumented wraps a Backend and counts every call into an
// obs.Registry: operations and errors per op kind, bytes read and
// written per store. It adds a handful of atomic increments per call —
// negligible next to any real I/O — and is safe for concurrent use if
// the inner backend is.
//
// Place it *inside* a Retry wrapper (Retry{Inner: Instrumented{...}})
// so every physical attempt is counted, not just the logical operation.
type Instrumented struct {
	Inner Backend

	ops, errs      func(op string) *obs.Counter
	rbytes, wbytes *obs.Counter
}

// Instrument wraps inner, recording into reg under the store name label
// (e.g. "blobs", "docs"). A nil registry records into obs.Default.
func Instrument(inner Backend, reg *obs.Registry, store string) *Instrumented {
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe(MetricOps, "Backend operations issued, by store and operation.")
	reg.Describe(MetricErrors, "Backend operations that returned an error, by store and operation.")
	reg.Describe(MetricReadBytes, "Bytes read from the backend, by store.")
	reg.Describe(MetricWriteBytes, "Bytes written to the backend, by store.")
	storeLabel := obs.L("store", store)
	return &Instrumented{
		Inner:  inner,
		ops:    func(op string) *obs.Counter { return reg.Counter(MetricOps, storeLabel, obs.L("op", op)) },
		errs:   func(op string) *obs.Counter { return reg.Counter(MetricErrors, storeLabel, obs.L("op", op)) },
		rbytes: reg.Counter(MetricReadBytes, storeLabel),
		wbytes: reg.Counter(MetricWriteBytes, storeLabel),
	}
}

// RetryCounter returns the retry counter for store in reg, for wiring
// into Retry.OnRetry so re-issued attempts are observable. A nil
// registry uses obs.Default.
func RetryCounter(reg *obs.Registry, store string) *obs.Counter {
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe(MetricRetries, "Backend operations re-issued after a transient failure, by store.")
	return reg.Counter(MetricRetries, obs.L("store", store))
}

// record accounts one op and its outcome.
func (b *Instrumented) record(op string, err error) {
	b.ops(op).Inc()
	if err != nil {
		b.errs(op).Inc()
	}
}

// Put implements Backend.
func (b *Instrumented) Put(key string, data []byte) error {
	err := b.Inner.Put(key, data)
	b.record("put", err)
	if err == nil {
		b.wbytes.Add(int64(len(data)))
	}
	return err
}

// Get implements Backend.
func (b *Instrumented) Get(key string) ([]byte, error) {
	data, err := b.Inner.Get(key)
	b.record("get", err)
	if err == nil {
		b.rbytes.Add(int64(len(data)))
	}
	return data, err
}

// GetRange implements Backend.
func (b *Instrumented) GetRange(key string, off, length int64) ([]byte, error) {
	data, err := b.Inner.GetRange(key, off, length)
	b.record("get_range", err)
	if err == nil {
		b.rbytes.Add(int64(len(data)))
	}
	return data, err
}

// Size implements Backend.
func (b *Instrumented) Size(key string) (int64, error) {
	n, err := b.Inner.Size(key)
	b.record("size", err)
	return n, err
}

// Delete implements Backend.
func (b *Instrumented) Delete(key string) error {
	err := b.Inner.Delete(key)
	b.record("delete", err)
	return err
}

// Keys implements Backend.
func (b *Instrumented) Keys() ([]string, error) {
	keys, err := b.Inner.Keys()
	b.record("keys", err)
	return keys, err
}
