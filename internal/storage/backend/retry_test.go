package backend

import (
	"errors"
	"testing"
	"time"
)

// newFlakyRetry wires a Faulty under a Retry whose sleeps are recorded
// instead of taken.
func newFlakyRetry(inner Backend) (*Faulty, *Retry, *[]time.Duration) {
	f := NewFaulty(inner)
	var slept []time.Duration
	r := &Retry{Inner: f, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	return f, r, &slept
}

func TestRetryRecoversFromTransientFaults(t *testing.T) {
	f, r, slept := newFlakyRetry(NewMem())

	f.FailNextPuts(2)
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put after 2 transient faults: %v", err)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	if (*slept)[0] != DefaultRetryBackoff || (*slept)[1] != 2*DefaultRetryBackoff {
		t.Errorf("backoffs = %v, want doubling from %v", *slept, DefaultRetryBackoff)
	}

	f.FailNextGets(2)
	got, err := r.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get after 2 transient faults: %q, %v", got, err)
	}

	f.FailNextRangeGets(2)
	got, err = r.GetRange("k", 0, 1)
	if err != nil || string(got) != "v" {
		t.Fatalf("GetRange after 2 transient faults: %q, %v", got, err)
	}

	f.FailNextDeletes(2)
	if err := r.Delete("k"); err != nil {
		t.Fatalf("Delete after 2 transient faults: %v", err)
	}
	if _, err := r.Get("k"); !IsNotFound(err) {
		t.Fatalf("Get after Delete: %v, want not-found", err)
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	f, r, slept := newFlakyRetry(NewMem())
	f.FailNextPuts(3) // default Attempts is 3, so all tries fail
	err := r.Put("k", []byte("v"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Put = %v, want wrapped ErrInjected", err)
	}
	if len(*slept) != 2 {
		t.Errorf("slept %d times, want 2 (between 3 attempts)", len(*slept))
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	mem := NewMem()
	calls := 0
	r := &Retry{Inner: mem, Sleep: func(time.Duration) { calls++ }}

	if _, err := r.Get("missing"); !IsNotFound(err) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := mem.Put("k", []byte("0123")); err != nil {
		t.Fatal(err)
	}
	var rangeErr *RangeError
	if _, err := r.GetRange("k", 2, 10); !errors.As(err, &rangeErr) {
		t.Fatalf("out-of-bounds GetRange: %v", err)
	}
	if calls != 0 {
		t.Errorf("slept %d times on permanent errors, want 0", calls)
	}
}

func TestRetryCustomAttemptsAndPredicate(t *testing.T) {
	f := NewFaulty(NewMem())
	r := &Retry{Inner: f, Attempts: 5, Sleep: func(time.Duration) {}}
	f.FailNextPuts(4)
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put with Attempts=5 after 4 faults: %v", err)
	}

	// A predicate that treats everything as permanent disables retries.
	r.Transient = func(error) bool { return false }
	f.FailNextPuts(1)
	if err := r.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put with never-transient predicate: %v", err)
	}
}

func TestFaultyGetRangeFallsBackToGetBudget(t *testing.T) {
	f := NewFaulty(NewMem())
	if err := f.Put("k", []byte("0123")); err != nil {
		t.Fatal(err)
	}
	f.FailNextGets(1)
	if _, err := f.GetRange("k", 0, 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("GetRange with Get budget: %v, want ErrInjected", err)
	}
	if _, err := f.GetRange("k", 0, 2); err != nil {
		t.Fatalf("budget not consumed: %v", err)
	}
}
