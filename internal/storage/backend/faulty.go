package backend

import (
	"errors"
	"sync"
)

// ErrInjected is the error returned by a Faulty backend when a fault
// fires.
var ErrInjected = errors.New("storage: injected fault")

// Faulty wraps a Backend and fails operations on demand. Tests use it
// to verify that store errors surface through the management approaches
// instead of corrupting saved sets.
type Faulty struct {
	Inner Backend

	mu         sync.Mutex
	failPuts   int // fail the next n Puts
	failGets   int // fail the next n Gets
	failRanges int // fail the next n GetRanges (before falling back to the Get budget)
	failDels   int // fail the next n Deletes
	putsSeen   int
	failAfter  int // fail all Puts after this many succeed (-1: disabled)
}

// NewFaulty wraps inner with fault injection disabled.
func NewFaulty(inner Backend) *Faulty {
	return &Faulty{Inner: inner, failAfter: -1}
}

// FailNextPuts makes the next n Put calls return ErrInjected.
func (f *Faulty) FailNextPuts(n int) {
	f.mu.Lock()
	f.failPuts = n
	f.mu.Unlock()
}

// FailNextGets makes the next n Get calls return ErrInjected.
func (f *Faulty) FailNextGets(n int) {
	f.mu.Lock()
	f.failGets = n
	f.mu.Unlock()
}

// FailNextRangeGets makes the next n GetRange calls return ErrInjected.
// Recovery paths fetch single models out of concatenated blobs through
// GetRange exclusively, so they are untestable under the Get budget
// alone.
func (f *Faulty) FailNextRangeGets(n int) {
	f.mu.Lock()
	f.failRanges = n
	f.mu.Unlock()
}

// FailNextDeletes makes the next n Delete calls return ErrInjected —
// the rollback and prune paths' failure mode.
func (f *Faulty) FailNextDeletes(n int) {
	f.mu.Lock()
	f.failDels = n
	f.mu.Unlock()
}

// FailPutsAfter lets n Puts succeed and fails every Put afterwards,
// simulating a store that dies mid-save.
func (f *Faulty) FailPutsAfter(n int) {
	f.mu.Lock()
	f.failAfter = n
	f.putsSeen = 0
	f.mu.Unlock()
}

// Put implements Backend.
func (f *Faulty) Put(key string, data []byte) error {
	f.mu.Lock()
	if f.failPuts > 0 {
		f.failPuts--
		f.mu.Unlock()
		return ErrInjected
	}
	if f.failAfter >= 0 {
		if f.putsSeen >= f.failAfter {
			f.mu.Unlock()
			return ErrInjected
		}
		f.putsSeen++
	}
	f.mu.Unlock()
	return f.Inner.Put(key, data)
}

// Get implements Backend.
func (f *Faulty) Get(key string) ([]byte, error) {
	f.mu.Lock()
	if f.failGets > 0 {
		f.failGets--
		f.mu.Unlock()
		return nil, ErrInjected
	}
	f.mu.Unlock()
	return f.Inner.Get(key)
}

// GetRange implements Backend. Ranged reads consume their own budget
// first and fall back to sharing the Get budget.
func (f *Faulty) GetRange(key string, off, length int64) ([]byte, error) {
	f.mu.Lock()
	if f.failRanges > 0 {
		f.failRanges--
		f.mu.Unlock()
		return nil, ErrInjected
	}
	if f.failGets > 0 {
		f.failGets--
		f.mu.Unlock()
		return nil, ErrInjected
	}
	f.mu.Unlock()
	return f.Inner.GetRange(key, off, length)
}

// Size implements Backend.
func (f *Faulty) Size(key string) (int64, error) { return f.Inner.Size(key) }

// Delete implements Backend.
func (f *Faulty) Delete(key string) error {
	f.mu.Lock()
	if f.failDels > 0 {
		f.failDels--
		f.mu.Unlock()
		return ErrInjected
	}
	f.mu.Unlock()
	return f.Inner.Delete(key)
}

// Keys implements Backend.
func (f *Faulty) Keys() ([]string, error) { return f.Inner.Keys() }
