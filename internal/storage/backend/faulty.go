package backend

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
)

// ErrInjected is the error returned by a Faulty backend when a fault
// fires.
var ErrInjected = errors.New("storage: injected fault")

// ErrNoSpace is an injectable disk-full error. It wraps syscall.ENOSPC
// so callers classify it exactly like the real thing from a Dir
// backend.
var ErrNoSpace = fmt.Errorf("storage: injected fault: %w", syscall.ENOSPC)

// ErrIO is an injectable device-level I/O error wrapping syscall.EIO —
// the kernel's signature for unrecoverable media failure.
var ErrIO = fmt.Errorf("storage: injected fault: %w", syscall.EIO)

// IsNoSpace reports whether err is, or wraps, a disk-full condition,
// whether injected or raised by a real filesystem.
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// Faulty wraps a Backend and fails operations on demand. Tests use it
// to verify that store errors surface through the management approaches
// instead of corrupting saved sets.
type Faulty struct {
	Inner Backend

	mu          sync.Mutex
	failPuts    int   // fail the next n Puts
	failPutErr  error // error for put failures (nil: ErrInjected)
	failGets    int   // fail the next n Gets
	failGetErr  error // error for get failures (nil: ErrInjected)
	failRanges  int   // fail the next n GetRanges (before falling back to the Get budget)
	failDels    int   // fail the next n Deletes
	putsSeen    int
	failAfter   int // fail all Puts after this many succeed (-1: disabled)
	corruptPuts int // bit-flip one byte in the next n Puts (silent rot)
	tearPuts    int // store only a prefix of the next n Puts (torn write)
}

// NewFaulty wraps inner with fault injection disabled.
func NewFaulty(inner Backend) *Faulty {
	return &Faulty{Inner: inner, failAfter: -1}
}

// FailNextPuts makes the next n Put calls return ErrInjected.
func (f *Faulty) FailNextPuts(n int) {
	f.mu.Lock()
	f.failPuts = n
	f.failPutErr = nil
	f.mu.Unlock()
}

// FailNextPutsWith makes the next n Put calls return err — typically
// ErrNoSpace or ErrIO, so tests can rehearse disk-full and media
// failures distinctly from generic injected faults.
func (f *Faulty) FailNextPutsWith(n int, err error) {
	f.mu.Lock()
	f.failPuts = n
	f.failPutErr = err
	f.mu.Unlock()
}

// FailNextGets makes the next n Get calls return ErrInjected.
func (f *Faulty) FailNextGets(n int) {
	f.mu.Lock()
	f.failGets = n
	f.failGetErr = nil
	f.mu.Unlock()
}

// FailNextGetsWith makes the next n Get calls return err (e.g. ErrIO
// for a dying disk).
func (f *Faulty) FailNextGetsWith(n int, err error) {
	f.mu.Lock()
	f.failGets = n
	f.failGetErr = err
	f.mu.Unlock()
}

// CorruptNextPuts silently flips one bit in the payload of the next n
// Put calls before handing them to the inner backend — bit-rot at
// write time, undetectable until something verifies a digest.
func (f *Faulty) CorruptNextPuts(n int) {
	f.mu.Lock()
	f.corruptPuts = n
	f.mu.Unlock()
}

// TearNextPuts makes the next n Put calls persist only the first half
// of their payload while reporting success — a torn write, as left by
// a crash mid-write on a filesystem without atomic rename.
func (f *Faulty) TearNextPuts(n int) {
	f.mu.Lock()
	f.tearPuts = n
	f.mu.Unlock()
}

// FailNextRangeGets makes the next n GetRange calls return ErrInjected.
// Recovery paths fetch single models out of concatenated blobs through
// GetRange exclusively, so they are untestable under the Get budget
// alone.
func (f *Faulty) FailNextRangeGets(n int) {
	f.mu.Lock()
	f.failRanges = n
	f.mu.Unlock()
}

// FailNextDeletes makes the next n Delete calls return ErrInjected —
// the rollback and prune paths' failure mode.
func (f *Faulty) FailNextDeletes(n int) {
	f.mu.Lock()
	f.failDels = n
	f.mu.Unlock()
}

// FailPutsAfter lets n Puts succeed and fails every Put afterwards,
// simulating a store that dies mid-save.
func (f *Faulty) FailPutsAfter(n int) {
	f.mu.Lock()
	f.failAfter = n
	f.putsSeen = 0
	f.failPutErr = nil
	f.mu.Unlock()
}

// FailPutsAfterWith lets n Puts succeed and fails every later Put with
// err — the disk filling up partway through a save.
func (f *Faulty) FailPutsAfterWith(n int, err error) {
	f.mu.Lock()
	f.failAfter = n
	f.putsSeen = 0
	f.failPutErr = err
	f.mu.Unlock()
}

// Put implements Backend.
func (f *Faulty) Put(key string, data []byte) error {
	f.mu.Lock()
	if f.failPuts > 0 {
		f.failPuts--
		err := f.failPutErr
		f.mu.Unlock()
		if err == nil {
			err = ErrInjected
		}
		return err
	}
	if f.failAfter >= 0 {
		if f.putsSeen >= f.failAfter {
			err := f.failPutErr
			f.mu.Unlock()
			if err == nil {
				err = ErrInjected
			}
			return err
		}
		f.putsSeen++
	}
	corrupt, tear := false, false
	if f.corruptPuts > 0 {
		f.corruptPuts--
		corrupt = true
	}
	if f.tearPuts > 0 {
		f.tearPuts--
		tear = true
	}
	f.mu.Unlock()
	if corrupt && len(data) > 0 {
		cp := append([]byte(nil), data...)
		cp[len(cp)/2] ^= 0x01
		data = cp
	}
	if tear {
		data = data[:len(data)/2]
	}
	return f.Inner.Put(key, data)
}

// Get implements Backend.
func (f *Faulty) Get(key string) ([]byte, error) {
	f.mu.Lock()
	if f.failGets > 0 {
		f.failGets--
		err := f.failGetErr
		f.mu.Unlock()
		if err == nil {
			err = ErrInjected
		}
		return nil, err
	}
	f.mu.Unlock()
	return f.Inner.Get(key)
}

// GetRange implements Backend. Ranged reads consume their own budget
// first and fall back to sharing the Get budget.
func (f *Faulty) GetRange(key string, off, length int64) ([]byte, error) {
	f.mu.Lock()
	if f.failRanges > 0 {
		f.failRanges--
		f.mu.Unlock()
		return nil, ErrInjected
	}
	if f.failGets > 0 {
		f.failGets--
		err := f.failGetErr
		f.mu.Unlock()
		if err == nil {
			err = ErrInjected
		}
		return nil, err
	}
	f.mu.Unlock()
	return f.Inner.GetRange(key, off, length)
}

// Size implements Backend.
func (f *Faulty) Size(key string) (int64, error) { return f.Inner.Size(key) }

// Delete implements Backend.
func (f *Faulty) Delete(key string) error {
	f.mu.Lock()
	if f.failDels > 0 {
		f.failDels--
		f.mu.Unlock()
		return ErrInjected
	}
	f.mu.Unlock()
	return f.Inner.Delete(key)
}

// Keys implements Backend.
func (f *Faulty) Keys() ([]string, error) { return f.Inner.Keys() }
