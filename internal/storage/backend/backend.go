// Package backend provides the byte-level key-value substrate shared by
// the blob and document stores: an in-memory map for tests and
// experiments, a directory-backed implementation for real persistence,
// and a fault-injecting wrapper for failure testing.
package backend

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Backend stores opaque byte values under string keys. Keys may contain
// '/' separators; implementations must treat them opaquely (the Dir
// backend maps them to subdirectories).
type Backend interface {
	// Put stores data under key, overwriting any previous value.
	Put(key string, data []byte) error
	// Get returns the value stored under key.
	Get(key string) ([]byte, error)
	// GetRange returns length bytes starting at offset off of the value
	// stored under key. Ranges outside the value are an error. Ranged
	// reads let recovery fetch single models out of a concatenated
	// parameter blob without loading the whole set.
	GetRange(key string, off, length int64) ([]byte, error)
	// Size returns the stored value's length in bytes.
	Size(key string) (int64, error)
	// Delete removes key. Deleting a missing key is not an error.
	Delete(key string) error
	// Keys returns all stored keys in sorted order.
	Keys() ([]string, error)
}

// RangeError reports an out-of-bounds ranged read.
type RangeError struct {
	Key         string
	Off, Length int64
	Size        int64
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("storage: range [%d, %d) outside value of %d bytes at %q",
		e.Off, e.Off+e.Length, e.Size, e.Key)
}

// NotFoundError reports a missing key.
type NotFoundError struct{ Key string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("storage: key %q not found", e.Key) }

// IsNotFound reports whether err is, or wraps, a missing-key error.
func IsNotFound(err error) bool {
	var nf *NotFoundError
	return errors.As(err, &nf)
}

// Mem is an in-memory backend, safe for concurrent use.
type Mem struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{m: map[string][]byte{}} }

// Put implements Backend.
func (b *Mem) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	b.mu.Lock()
	b.m[key] = cp
	b.mu.Unlock()
	return nil
}

// Get implements Backend.
func (b *Mem) Get(key string) ([]byte, error) {
	b.mu.RLock()
	v, ok := b.m[key]
	b.mu.RUnlock()
	if !ok {
		return nil, &NotFoundError{Key: key}
	}
	return append([]byte(nil), v...), nil
}

// GetRange implements Backend.
func (b *Mem) GetRange(key string, off, length int64) ([]byte, error) {
	b.mu.RLock()
	v, ok := b.m[key]
	b.mu.RUnlock()
	if !ok {
		return nil, &NotFoundError{Key: key}
	}
	if off < 0 || length < 0 || off+length > int64(len(v)) {
		return nil, &RangeError{Key: key, Off: off, Length: length, Size: int64(len(v))}
	}
	return append([]byte(nil), v[off:off+length]...), nil
}

// Size implements Backend.
func (b *Mem) Size(key string) (int64, error) {
	b.mu.RLock()
	v, ok := b.m[key]
	b.mu.RUnlock()
	if !ok {
		return 0, &NotFoundError{Key: key}
	}
	return int64(len(v)), nil
}

// Delete implements Backend.
func (b *Mem) Delete(key string) error {
	b.mu.Lock()
	delete(b.m, key)
	b.mu.Unlock()
	return nil
}

// Keys implements Backend.
func (b *Mem) Keys() ([]string, error) {
	b.mu.RLock()
	keys := make([]string, 0, len(b.m))
	for k := range b.m {
		keys = append(keys, k)
	}
	b.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Dir is a directory-backed backend. Each key maps to a file; '/' in
// keys becomes directory structure. Writes go through a temp file and
// rename, so readers never observe partial values. In durable mode the
// temp file is fsynced before the rename and the parent directory
// after it, so a committed Put survives power loss.
type Dir struct {
	root    string
	durable bool
	mu      sync.Mutex // serializes temp-file naming
	seq     int
}

// NewDir returns a backend rooted at dir, creating it if necessary.
// Writes are atomic (temp file + rename) but not fsynced; use
// NewDirSync when commits must survive power loss.
func NewDir(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", dir, err)
	}
	return &Dir{root: dir}, nil
}

// NewDirSync returns a backend rooted at dir whose Puts and Deletes
// fsync both the file data and the parent directory entry before
// reporting success.
func NewDirSync(dir string) (*Dir, error) {
	b, err := NewDir(dir)
	if err != nil {
		return nil, err
	}
	b.durable = true
	return b, nil
}

// Durable reports whether the backend fsyncs commits.
func (b *Dir) Durable() bool { return b.durable }

// syncDir fsyncs the directory holding path so a just-renamed or
// just-removed entry is on stable storage.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (b *Dir) path(key string) (string, error) {
	if key == "" || strings.Contains(key, "..") || strings.HasPrefix(key, "/") {
		return "", fmt.Errorf("storage: invalid key %q", key)
	}
	return filepath.Join(b.root, filepath.FromSlash(key)), nil
}

// Put implements Backend.
func (b *Dir) Put(key string, data []byte) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: creating parent of %q: %w", key, err)
	}
	b.mu.Lock()
	b.seq++
	tmp := fmt.Sprintf("%s.tmp%d", p, b.seq)
	b.mu.Unlock()
	if b.durable {
		if err := writeFileSync(tmp, data); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("storage: writing %q: %w", key, err)
		}
	} else if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: writing %q: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: committing %q: %w", key, err)
	}
	if b.durable {
		if err := syncDir(p); err != nil {
			return fmt.Errorf("storage: syncing parent of %q: %w", key, err)
		}
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing, so
// the bytes are on stable storage before the commit rename.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Get implements Backend.
func (b *Dir) Get(key string) ([]byte, error) {
	p, err := b.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, &NotFoundError{Key: key}
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading %q: %w", key, err)
	}
	return data, nil
}

// GetRange implements Backend.
func (b *Dir) GetRange(key string, off, length int64) ([]byte, error) {
	p, err := b.path(key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if os.IsNotExist(err) {
		return nil, &NotFoundError{Key: key}
	}
	if err != nil {
		return nil, fmt.Errorf("storage: opening %q: %w", key, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: stating %q: %w", key, err)
	}
	if off < 0 || length < 0 || off+length > info.Size() {
		return nil, &RangeError{Key: key, Off: off, Length: length, Size: info.Size()}
	}
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: ranged read of %q: %w", key, err)
	}
	return buf, nil
}

// Size implements Backend.
func (b *Dir) Size(key string) (int64, error) {
	p, err := b.path(key)
	if err != nil {
		return 0, err
	}
	info, err := os.Stat(p)
	if os.IsNotExist(err) {
		return 0, &NotFoundError{Key: key}
	}
	if err != nil {
		return 0, fmt.Errorf("storage: stating %q: %w", key, err)
	}
	return info.Size(), nil
}

// Delete implements Backend.
func (b *Dir) Delete(key string) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("storage: deleting %q: %w", key, err)
	}
	if b.durable {
		if err := syncDir(p); err != nil {
			return fmt.Errorf("storage: syncing parent of %q: %w", key, err)
		}
	}
	return nil
}

// Keys implements Backend.
func (b *Dir) Keys() ([]string, error) {
	var keys []string
	err := filepath.Walk(b.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || strings.Contains(info.Name(), ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(b.root, path)
		if err != nil {
			return err
		}
		keys = append(keys, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: listing keys: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}
