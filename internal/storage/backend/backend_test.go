package backend

import (
	"fmt"
	"testing"
)

// backendContract runs the behavioural contract every Backend must obey.
func backendContract(t *testing.T, newBackend func(t *testing.T) Backend) {
	t.Run("put get round trip", func(t *testing.T) {
		b := newBackend(t)
		if err := b.Put("a/b/key1", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		got, err := b.Get("a/b/key1")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "hello" {
			t.Fatalf("Get = %q, want hello", got)
		}
	})

	t.Run("get missing", func(t *testing.T) {
		b := newBackend(t)
		_, err := b.Get("missing")
		if !IsNotFound(err) {
			t.Fatalf("Get missing key: err = %v, want NotFoundError", err)
		}
	})

	t.Run("overwrite", func(t *testing.T) {
		b := newBackend(t)
		must(t, b.Put("k", []byte("v1")))
		must(t, b.Put("k", []byte("v2")))
		got, err := b.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "v2" {
			t.Fatalf("Get after overwrite = %q, want v2", got)
		}
	})

	t.Run("delete", func(t *testing.T) {
		b := newBackend(t)
		must(t, b.Put("k", []byte("v")))
		must(t, b.Delete("k"))
		if _, err := b.Get("k"); !IsNotFound(err) {
			t.Fatalf("Get after delete: err = %v, want NotFoundError", err)
		}
		// Deleting a missing key is not an error.
		must(t, b.Delete("k"))
	})

	t.Run("keys sorted", func(t *testing.T) {
		b := newBackend(t)
		for _, k := range []string{"z", "a", "m/n"} {
			must(t, b.Put(k, []byte("x")))
		}
		keys, err := b.Keys()
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"a", "m/n", "z"}
		if len(keys) != len(want) {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("Keys = %v, want %v", keys, want)
			}
		}
	})

	t.Run("stored value isolated from caller mutation", func(t *testing.T) {
		b := newBackend(t)
		data := []byte("orig")
		must(t, b.Put("k", data))
		data[0] = 'X'
		got, err := b.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "orig" {
			t.Fatalf("stored value changed with caller's buffer: %q", got)
		}
	})

	t.Run("empty value", func(t *testing.T) {
		b := newBackend(t)
		must(t, b.Put("k", nil))
		got, err := b.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("Get empty value = %v", got)
		}
	})

	t.Run("ranged read", func(t *testing.T) {
		b := newBackend(t)
		must(t, b.Put("k", []byte("0123456789")))
		got, err := b.GetRange("k", 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "3456" {
			t.Fatalf("GetRange = %q, want 3456", got)
		}
		// Full range and zero-length range are valid.
		if got, err = b.GetRange("k", 0, 10); err != nil || string(got) != "0123456789" {
			t.Fatalf("full GetRange = %q, %v", got, err)
		}
		if got, err = b.GetRange("k", 10, 0); err != nil || len(got) != 0 {
			t.Fatalf("empty GetRange = %q, %v", got, err)
		}
	})

	t.Run("ranged read out of bounds", func(t *testing.T) {
		b := newBackend(t)
		must(t, b.Put("k", []byte("01234")))
		for _, r := range [][2]int64{{3, 3}, {-1, 2}, {0, -1}, {6, 0}} {
			if _, err := b.GetRange("k", r[0], r[1]); err == nil {
				t.Errorf("range [%d,+%d) accepted on 5-byte value", r[0], r[1])
			}
		}
	})

	t.Run("ranged read missing key", func(t *testing.T) {
		b := newBackend(t)
		if _, err := b.GetRange("missing", 0, 1); !IsNotFound(err) {
			t.Fatalf("GetRange on missing key: err = %v, want NotFoundError", err)
		}
	})
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemContract(t *testing.T) {
	backendContract(t, func(t *testing.T) Backend { return NewMem() })
}

func TestDirContract(t *testing.T) {
	backendContract(t, func(t *testing.T) Backend {
		d, err := NewDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
}

func TestDirRejectsBadKeys(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "/absolute"} {
		if err := d.Put(key, []byte("x")); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
}

func TestDirPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	d1, _ := NewDir(dir)
	must(t, d1.Put("sets/abc", []byte("payload")))
	d2, _ := NewDir(dir)
	got, err := d2.Get("sets/abc")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("reopened Get = %q", got)
	}
}

func TestFaultyFailNextPuts(t *testing.T) {
	f := NewFaulty(NewMem())
	f.FailNextPuts(2)
	if err := f.Put("a", nil); err != ErrInjected {
		t.Fatalf("first Put err = %v, want injected", err)
	}
	if err := f.Put("b", nil); err != ErrInjected {
		t.Fatalf("second Put err = %v, want injected", err)
	}
	if err := f.Put("c", nil); err != nil {
		t.Fatalf("third Put err = %v, want nil", err)
	}
}

func TestFaultyFailNextGets(t *testing.T) {
	f := NewFaulty(NewMem())
	must(t, f.Put("k", []byte("v")))
	f.FailNextGets(1)
	if _, err := f.Get("k"); err != ErrInjected {
		t.Fatalf("Get err = %v, want injected", err)
	}
	if _, err := f.Get("k"); err != nil {
		t.Fatalf("second Get err = %v, want nil", err)
	}
}

func TestFaultyFailPutsAfter(t *testing.T) {
	f := NewFaulty(NewMem())
	f.FailPutsAfter(3)
	for i := 0; i < 3; i++ {
		if err := f.Put(fmt.Sprintf("k%d", i), nil); err != nil {
			t.Fatalf("Put %d err = %v", i, err)
		}
	}
	if err := f.Put("k3", nil); err != ErrInjected {
		t.Fatalf("Put after limit err = %v, want injected", err)
	}
}
