package backend

import (
	"errors"
	"testing"
	"time"

	"github.com/mmm-go/mmm/internal/obs"
)

func TestInstrumentedCounts(t *testing.T) {
	reg := obs.New()
	be := Instrument(NewMem(), reg, "blobs")

	if err := be.Put("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := be.GetRange("a", 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Size("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Keys(); err != nil {
		t.Fatal(err)
	}
	if err := be.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Get("missing"); !IsNotFound(err) {
		t.Fatalf("get missing = %v, want not-found", err)
	}

	store := obs.L("store", "blobs")
	for op, want := range map[string]int64{
		"put": 1, "get": 2, "get_range": 1, "size": 1, "keys": 1, "delete": 1,
	} {
		if got := reg.Counter(MetricOps, store, obs.L("op", op)).Value(); got != want {
			t.Errorf("ops{%s} = %d, want %d", op, got, want)
		}
	}
	if got := reg.Counter(MetricErrors, store, obs.L("op", "get")).Value(); got != 1 {
		t.Errorf("errors{get} = %d, want 1", got)
	}
	if got := reg.Counter(MetricWriteBytes, store).Value(); got != 5 {
		t.Errorf("write bytes = %d, want 5", got)
	}
	// 5 from Get + 3 from GetRange; the failed Get adds nothing.
	if got := reg.Counter(MetricReadBytes, store).Value(); got != 8 {
		t.Errorf("read bytes = %d, want 8", got)
	}
}

// flaky fails the first n calls of each operation.
type flaky struct {
	Backend
	failures int
}

func (f *flaky) Put(key string, data []byte) error {
	if f.failures > 0 {
		f.failures--
		return errors.New("transient failure")
	}
	return f.Backend.Put(key, data)
}

func TestRetryOnRetryHook(t *testing.T) {
	reg := obs.New()
	inner := Instrument(&flaky{Backend: NewMem(), failures: 2}, reg, "docs")
	retries := RetryCounter(reg, "docs")
	r := &Retry{
		Inner:    inner,
		Attempts: 3,
		Sleep:    func(time.Duration) {},
		OnRetry:  retries.Inc,
	}
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := retries.Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	// Instrumented sits inside Retry, so each physical attempt counts.
	store := obs.L("store", "docs")
	if got := reg.Counter(MetricOps, store, obs.L("op", "put")).Value(); got != 3 {
		t.Errorf("ops{put} = %d, want 3", got)
	}
	if got := reg.Counter(MetricErrors, store, obs.L("op", "put")).Value(); got != 2 {
		t.Errorf("errors{put} = %d, want 2", got)
	}
}
