package backend

import (
	"errors"
	"fmt"
	"time"
)

// Retry wraps a Backend and re-issues operations that fail with
// transient errors, with exponential backoff between attempts. Every
// Backend operation is safe to retry: Put and Delete are idempotent
// (overwrite / missing-key-is-fine semantics) and reads are pure, so
// the wrapper retries them all uniformly. Flaky disks and remote stores
// that drop the occasional request stop failing whole saves.
type Retry struct {
	Inner Backend

	// Attempts is the total number of tries per operation (first call
	// included). Values below 1 mean the DefaultRetryAttempts.
	Attempts int
	// Backoff is the sleep before the first retry; it doubles on every
	// further retry. Zero means DefaultRetryBackoff.
	Backoff time.Duration
	// Transient reports whether an error is worth retrying. Nil means
	// TransientError.
	Transient func(error) bool
	// Sleep is the sleeping function, replaceable in tests. Nil means
	// time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, if set, is called once per re-issued attempt (not for
	// the first try) — the observability hook for retry counters.
	OnRetry func()
}

// DefaultRetryAttempts is the total try count of a zero-configured
// Retry.
const DefaultRetryAttempts = 3

// DefaultRetryBackoff is the first-retry backoff of a zero-configured
// Retry.
const DefaultRetryBackoff = 10 * time.Millisecond

// NewRetry wraps inner with default retry behavior.
func NewRetry(inner Backend) *Retry { return &Retry{Inner: inner} }

// TransientError is the default retry predicate: everything is
// presumed transient except the errors that deterministically recur —
// missing keys, out-of-bounds ranges, and invalid keys.
func TransientError(err error) bool {
	var rangeErr *RangeError
	return err != nil && !IsNotFound(err) && !errors.As(err, &rangeErr)
}

func (r *Retry) attempts() int {
	if r.Attempts < 1 {
		return DefaultRetryAttempts
	}
	return r.Attempts
}

func (r *Retry) transient(err error) bool {
	if r.Transient != nil {
		return r.Transient(err)
	}
	return TransientError(err)
}

// do runs op up to Attempts times, backing off between tries.
func (r *Retry) do(op func() error) error {
	backoff := r.Backoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !r.transient(err) {
			return err
		}
		if attempt >= r.attempts() {
			return fmt.Errorf("storage: giving up after %d attempts: %w", attempt, err)
		}
		if r.OnRetry != nil {
			r.OnRetry()
		}
		sleep(backoff)
		backoff *= 2
	}
}

// Put implements Backend.
func (r *Retry) Put(key string, data []byte) error {
	return r.do(func() error { return r.Inner.Put(key, data) })
}

// Get implements Backend.
func (r *Retry) Get(key string) (data []byte, err error) {
	err = r.do(func() error { data, err = r.Inner.Get(key); return err })
	return data, err
}

// GetRange implements Backend.
func (r *Retry) GetRange(key string, off, length int64) (data []byte, err error) {
	err = r.do(func() error { data, err = r.Inner.GetRange(key, off, length); return err })
	return data, err
}

// Size implements Backend.
func (r *Retry) Size(key string) (n int64, err error) {
	err = r.do(func() error { n, err = r.Inner.Size(key); return err })
	return n, err
}

// Delete implements Backend.
func (r *Retry) Delete(key string) error {
	return r.do(func() error { return r.Inner.Delete(key) })
}

// Keys implements Backend.
func (r *Retry) Keys() (keys []string, err error) {
	err = r.do(func() error { keys, err = r.Inner.Keys(); return err })
	return keys, err
}
