// Package latency models the I/O cost of the paper's two hardware
// setups so that time-to-save and time-to-recover experiments have the
// paper's *shape* without the paper's hardware.
//
// The paper evaluates on a Threadripper server and an Apple M1 machine
// and attributes their TTS/TTR differences to two knobs: the speed of
// the connection to the document store (the server is much faster,
// which mostly helps MMlib-base and its O(n) store writes) and disk
// throughput (the M1's built-in SSD is faster, which helps the bulk
// parameter writes; note the paper's Baseline TTS is 0.35 s on M1 but
// 0.44 s on the server). We model exactly those knobs: every store
// operation charges a per-operation cost plus a throughput-dependent
// per-byte cost to a virtual Clock. Experiments report
// real compute time + modeled store time.
//
// Absolute calibration (documented in EXPERIMENTS.md) was chosen so the
// simulated figures land near the paper's reported values; the claims
// we reproduce are the relative ones.
package latency

import (
	"sync"
	"time"
)

// Clock accumulates modeled I/O time. It is safe for concurrent use.
// The zero value is a reset clock ready to use.
type Clock struct {
	mu      sync.Mutex
	elapsed time.Duration
}

// Advance adds d to the modeled elapsed time.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Elapsed returns the accumulated modeled time.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Reset zeroes the accumulated time.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.elapsed = 0
	c.mu.Unlock()
}

// CostModel prices the operations of one store.
type CostModel struct {
	// WriteOp and ReadOp are fixed per-operation costs (round trip to
	// the store service, fsync, document insert overhead, ...).
	WriteOp time.Duration
	ReadOp  time.Duration
	// WriteMBps and ReadMBps are streaming throughputs in MB/s.
	// Zero means free (infinitely fast) streaming.
	WriteMBps float64
	ReadMBps  float64
}

// WriteCost returns the modeled cost of writing n bytes in one call.
func (m CostModel) WriteCost(n int) time.Duration {
	return m.WriteOp + throughputCost(n, m.WriteMBps)
}

// ReadCost returns the modeled cost of reading n bytes in one call.
func (m CostModel) ReadCost(n int) time.Duration {
	return m.ReadOp + throughputCost(n, m.ReadMBps)
}

func throughputCost(n int, mbps float64) time.Duration {
	if mbps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (mbps * 1e6) * float64(time.Second))
}

// Setup bundles the cost models of one evaluation machine.
type Setup struct {
	Name string
	// Doc prices the document store (metadata, environment, code).
	Doc CostModel
	// Blob prices the file store (parameter binaries, architectures).
	Blob CostModel
}

// M1 models the paper's Apple M1 Pro setup: a fast built-in SSD but a
// slow connection to the document store.
func M1() Setup {
	return Setup{
		Name: "m1",
		Doc: CostModel{
			WriteOp: 1500 * time.Microsecond,
			ReadOp:  6 * time.Millisecond,
			// Documents are small; streaming cost is negligible but
			// non-zero for realism.
			WriteMBps: 200, ReadMBps: 200,
		},
		Blob: CostModel{
			WriteOp:   100 * time.Microsecond,
			ReadOp:    200 * time.Microsecond,
			WriteMBps: 350, ReadMBps: 600,
		},
	}
}

// Server models the paper's Threadripper server setup: a much faster
// document-store connection (the paper: "faster connections to the
// document store on the server setup") but slightly slower bulk disk
// throughput than the M1's SSD.
func Server() Setup {
	return Setup{
		Name: "server",
		Doc: CostModel{
			WriteOp:   250 * time.Microsecond,
			ReadOp:    1200 * time.Microsecond,
			WriteMBps: 400, ReadMBps: 400,
		},
		Blob: CostModel{
			WriteOp:   50 * time.Microsecond,
			ReadOp:    100 * time.Microsecond,
			WriteMBps: 250, ReadMBps: 500,
		},
	}
}

// Zero is a free setup: no modeled costs. Unit tests and plain library
// use run on Zero so they measure nothing but real work.
func Zero() Setup {
	return Setup{Name: "zero"}
}

// ByName returns a built-in setup by its name.
func ByName(name string) (Setup, bool) {
	switch name {
	case "m1":
		return M1(), true
	case "server":
		return Server(), true
	case "zero", "":
		return Zero(), true
	}
	return Setup{}, false
}

// Stopwatch measures an operation's total modeled duration: real
// wall-clock compute plus whatever the attached Clock accumulated.
type Stopwatch struct {
	clock     *Clock
	startWall time.Time
	startSim  time.Duration
}

// StartStopwatch begins measuring against clock.
func StartStopwatch(clock *Clock) *Stopwatch {
	return &Stopwatch{clock: clock, startWall: time.Now(), startSim: clock.Elapsed()}
}

// Elapsed returns real time since start plus modeled store time charged
// since start.
func (s *Stopwatch) Elapsed() time.Duration {
	return time.Since(s.startWall) + (s.clock.Elapsed() - s.startSim)
}
