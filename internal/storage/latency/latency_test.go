package latency

import (
	"sync"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if got := c.Elapsed(); got != 1500*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 1.5s", got)
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Fatal("Reset did not zero the clock")
	}
}

func TestClockIgnoresNonPositive(t *testing.T) {
	var c Clock
	c.Advance(-time.Second)
	c.Advance(0)
	if c.Elapsed() != 0 {
		t.Fatalf("Elapsed = %v after non-positive advances", c.Elapsed())
	}
}

func TestClockConcurrent(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Elapsed(); got != 8*1000*time.Microsecond {
		t.Fatalf("Elapsed = %v, want 8ms", got)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{
		WriteOp: time.Millisecond, ReadOp: 2 * time.Millisecond,
		WriteMBps: 100, ReadMBps: 200,
	}
	// Writing 100 MB at 100 MB/s = 1 s plus the 1 ms op cost.
	if got := m.WriteCost(100e6); got != time.Second+time.Millisecond {
		t.Errorf("WriteCost = %v, want 1.001s", got)
	}
	if got := m.ReadCost(100e6); got != 500*time.Millisecond+2*time.Millisecond {
		t.Errorf("ReadCost = %v, want 502ms", got)
	}
}

func TestCostModelZeroThroughputIsFree(t *testing.T) {
	m := CostModel{WriteOp: time.Millisecond}
	if got := m.WriteCost(1e9); got != time.Millisecond {
		t.Errorf("WriteCost with zero throughput = %v, want 1ms", got)
	}
	if got := m.ReadCost(1e9); got != 0 {
		t.Errorf("ReadCost of zero model = %v, want 0", got)
	}
}

func TestSetupProfiles(t *testing.T) {
	m1, server := M1(), Server()
	// The load-bearing calibration facts (see latency package comment):
	// the server's document store is much faster per operation...
	if !(server.Doc.WriteOp < m1.Doc.WriteOp) {
		t.Error("server doc writes should be cheaper than M1")
	}
	if !(server.Doc.ReadOp < m1.Doc.ReadOp) {
		t.Error("server doc reads should be cheaper than M1")
	}
	// ...while the M1's built-in SSD streams bulk writes faster.
	if !(m1.Blob.WriteMBps > server.Blob.WriteMBps) {
		t.Error("M1 blob write throughput should exceed server")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"m1", "server", "zero", ""} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("gpu"); ok {
		t.Error("ByName accepted unknown setup")
	}
}

func TestStopwatchIncludesModeledTime(t *testing.T) {
	var c Clock
	sw := StartStopwatch(&c)
	c.Advance(3 * time.Second)
	got := sw.Elapsed()
	if got < 3*time.Second {
		t.Fatalf("Elapsed = %v, want >= 3s of modeled time", got)
	}
	if got > 4*time.Second {
		t.Fatalf("Elapsed = %v, real overhead implausibly large", got)
	}
}
