package latency

import (
	"time"

	"github.com/mmm-go/mmm/internal/storage/backend"
)

// Paced wraps a backend and turns a CostModel into real wall-clock
// delay: every data operation sleeps its modeled cost around the
// underlying call. The Clock-based instrumentation in this package
// charges modeled time to a shared counter, which sums costs and so
// cannot express overlap between concurrent operations; Paced makes
// callers actually wait, so a benchmark of a parallel pipeline over a
// Paced store measures true overlap of compute with store latency —
// the effect a real device or remote store would show. Size, Delete,
// and Keys are metadata traffic and stay free.
type Paced struct {
	inner backend.Backend
	model CostModel
}

// Pace returns b with model's costs imposed as real sleeps.
func Pace(b backend.Backend, model CostModel) *Paced {
	return &Paced{inner: b, model: model}
}

// Put sleeps the modeled write cost, then stores data under key.
func (p *Paced) Put(key string, data []byte) error {
	time.Sleep(p.model.WriteCost(len(data)))
	return p.inner.Put(key, data)
}

// Get returns the stored value after sleeping its modeled read cost.
func (p *Paced) Get(key string) ([]byte, error) {
	v, err := p.inner.Get(key)
	if err == nil {
		time.Sleep(p.model.ReadCost(len(v)))
	}
	return v, err
}

// GetRange returns the requested slice after sleeping its modeled read
// cost.
func (p *Paced) GetRange(key string, off, length int64) ([]byte, error) {
	v, err := p.inner.GetRange(key, off, length)
	if err == nil {
		time.Sleep(p.model.ReadCost(len(v)))
	}
	return v, err
}

// Size reports the stored value's length; metadata probes are free.
func (p *Paced) Size(key string) (int64, error) { return p.inner.Size(key) }

// Delete removes key; free like all metadata traffic.
func (p *Paced) Delete(key string) error { return p.inner.Delete(key) }

// Keys lists the stored keys; free like all metadata traffic.
func (p *Paced) Keys() ([]string, error) { return p.inner.Keys() }
