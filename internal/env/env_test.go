package env

import (
	"encoding/json"
	"runtime"
	"testing"
)

func TestCapturePopulated(t *testing.T) {
	i := Capture()
	if i.OS != runtime.GOOS || i.Arch != runtime.GOARCH {
		t.Errorf("Capture OS/arch = %s/%s", i.OS, i.Arch)
	}
	if i.NumCPU <= 0 {
		t.Error("NumCPU not positive")
	}
	if i.GoVersion == "" || i.FrameworkVer == "" {
		t.Error("version fields empty")
	}
	if len(i.Dependencies) == 0 {
		t.Error("no dependencies recorded")
	}
}

func TestEqual(t *testing.T) {
	a := Capture()
	b := Capture()
	if !a.Equal(b) {
		t.Error("two captures on one machine should be Equal")
	}
	b.FrameworkVer = "other"
	if a.Equal(b) {
		t.Error("different framework versions reported Equal")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := Capture()
	buf, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Info
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Error("JSON round trip changed environment identity")
	}
	if back.Hostname != a.Hostname {
		t.Error("hostname lost in round trip")
	}
}
