// Package env captures execution-environment information.
//
// Environment descriptions play two roles in the paper. First, they are
// part of the redundant per-model payload MMlib-base writes for every
// single model ("MMlib-base additionally saves the model architecture,
// the layer names, the model code, and the environment information for
// every model, accumulating to an overhead of approximately 8 KB per
// model"). Second, the Provenance approach records the environment once
// per set because exact training reproduction is only claimed for
// matching environments.
package env

import (
	"os"
	"runtime"
)

// Info describes the hard- and software environment of a training or
// save operation, in the spirit of MMlib's environment snapshots.
type Info struct {
	OS           string `json:"os"`
	Arch         string `json:"arch"`
	NumCPU       int    `json:"num_cpu"`
	GoVersion    string `json:"go_version"`
	Hostname     string `json:"hostname"`
	LibraryName  string `json:"library_name"`
	LibraryVer   string `json:"library_version"`
	FrameworkVer string `json:"framework_version"`
	// PythonDeps mirrors the pip-freeze-style dependency dump MMlib
	// snapshots; for this Go implementation it lists module
	// dependencies and is mainly ballast with realistic size.
	Dependencies []string `json:"dependencies"`
}

// Capture returns the current environment.
func Capture() Info {
	host, _ := os.Hostname()
	return Info{
		OS:           runtime.GOOS,
		Arch:         runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GoVersion:    runtime.Version(),
		Hostname:     host,
		LibraryName:  "mmm",
		LibraryVer:   Version,
		FrameworkVer: "nn-" + Version,
		Dependencies: []string{
			"tensor " + Version,
			"nn " + Version,
			"battery " + Version,
			"dataset " + Version,
		},
	}
}

// Version is the library version recorded in environment snapshots.
const Version = "1.0.0"

// Equal reports whether two environments match closely enough for
// provenance-exact training reproduction (same OS, architecture, and
// framework version; host name and CPU count are informational).
func (i Info) Equal(o Info) bool {
	return i.OS == o.OS && i.Arch == o.Arch && i.FrameworkVer == o.FrameworkVer
}
