// Package version carries the build stamp every mmm binary and node
// reports. It is its own tiny package so that internal layers (server,
// cluster) can read it without importing the public facade.
package version

// Version identifies this build of the mmm tree. The cluster router
// compares it across member nodes at startup and on revival probes and
// refuses to mix versions: replicas of one save must execute the same
// save logic, or the copies diverge silently.
//
// The minor number tracks the PR sequence growing this repository.
const Version = "0.10.0"
