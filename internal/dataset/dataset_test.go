package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func batterySpec() Spec {
	return Spec{
		Kind: KindBattery, CellID: 1, Cycle: 0, SoH: 1.0,
		Samples: 200, NoiseStd: 0.002, Seed: 42,
	}
}

func TestGenerateBatteryDeterministic(t *testing.T) {
	a, err := Generate(batterySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(batterySpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < a.Len(); i++ {
		ax, ay := a.Sample(i)
		bx, by := b.Sample(i)
		if !ax.Equal(bx) || !ay.Equal(by) {
			t.Fatalf("sample %d differs between identical specs", i)
		}
	}
}

func TestGenerateBatteryShapes(t *testing.T) {
	d, err := Generate(batterySpec())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 {
		t.Fatalf("Len = %d, want 200", d.Len())
	}
	x, y := d.Sample(0)
	if x.Len() != 4 {
		t.Fatalf("feature length %d, want 4", x.Len())
	}
	if y.Len() != 1 {
		t.Fatalf("target length %d, want 1", y.Len())
	}
}

func TestGenerateBatteryNormalized(t *testing.T) {
	d, err := Generate(batterySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Each feature and the target must be ~zero-mean, ~unit-variance.
	for j := 0; j < 4; j++ {
		var sum, sumSq float64
		for i := 0; i < d.Len(); i++ {
			x, _ := d.Sample(i)
			v := float64(x.Data[j])
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(d.Len())
		variance := sumSq/float64(d.Len()) - mean*mean
		if math.Abs(mean) > 0.05 {
			t.Errorf("feature %d mean = %v, want ~0", j, mean)
		}
		if math.Abs(variance-1) > 0.1 {
			t.Errorf("feature %d variance = %v, want ~1", j, variance)
		}
	}
}

func TestDifferentCellsGetDifferentData(t *testing.T) {
	s1, s2 := batterySpec(), batterySpec()
	s2.CellID = 2
	a, _ := Generate(s1)
	b, _ := Generate(s2)
	ax, _ := a.Sample(10)
	bx, _ := b.Sample(10)
	if ax.Equal(bx) {
		t.Fatal("different cells produced identical samples")
	}
}

func TestDifferentCyclesGetDifferentData(t *testing.T) {
	s1, s2 := batterySpec(), batterySpec()
	s2.Cycle = 1
	s2.SoH = 0.98
	a, _ := Generate(s1)
	b, _ := Generate(s2)
	ax, _ := a.Sample(10)
	bx, _ := b.Sample(10)
	if ax.Equal(bx) {
		t.Fatal("different cycles produced identical samples")
	}
}

func TestGenerateCIFAR(t *testing.T) {
	spec := Spec{Kind: KindCIFAR, CellID: 0, Samples: 20, Seed: 7}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 20 {
		t.Fatalf("Len = %d, want 20", d.Len())
	}
	x, y := d.Sample(0)
	if got := x.Shape; len(got) != 3 || got[0] != 3 || got[1] != 32 || got[2] != 32 {
		t.Fatalf("image shape %v, want [3 32 32]", got)
	}
	if y.Len() != 10 {
		t.Fatalf("label length %d, want 10", y.Len())
	}
	var sum float32
	for _, v := range y.Data {
		sum += v
	}
	if sum != 1 {
		t.Fatalf("label is not one-hot: %v", y.Data)
	}
}

func TestSpecIDStable(t *testing.T) {
	a, b := batterySpec(), batterySpec()
	if a.ID() != b.ID() {
		t.Fatal("equal specs have different IDs")
	}
	b.Cycle = 5
	if a.ID() == b.ID() {
		t.Fatal("different specs share an ID")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: "images", Samples: 1, SoH: 1},
		{Kind: KindBattery, Samples: 0, SoH: 1},
		{Kind: KindBattery, Samples: 1, SoH: 0},
		{Kind: KindBattery, Samples: 1, SoH: 2},
		{Kind: KindBattery, Samples: 1, SoH: 1, NoiseStd: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	if err := batterySpec().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestQuickSpecIDDeterministic(t *testing.T) {
	f := func(cell, cycle uint8, seed uint64) bool {
		s := Spec{Kind: KindBattery, CellID: int(cell), Cycle: int(cycle),
			SoH: 0.9, Samples: 10, Seed: seed}
		return s.ID() == s.ID()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
