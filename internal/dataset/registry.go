package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Registry is the external training-data store the Provenance approach
// references into. It maps dataset IDs to specs; data is regenerated
// (and cached) on demand, which mirrors the paper's assumption that the
// training data exists outside the model-management system.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]Spec
	cache map[string]*Dataset
	// dir, when non-empty, persists specs as JSON files so a registry
	// can be reopened across processes.
	dir string
}

// NewRegistry returns an in-memory registry.
func NewRegistry() *Registry {
	return &Registry{specs: map[string]Spec{}, cache: map[string]*Dataset{}}
}

// OpenRegistry returns a registry persisted under dir, loading any
// specs already stored there.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: creating registry dir: %w", err)
	}
	r := NewRegistry()
	r.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading registry dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("dataset: reading spec %s: %w", e.Name(), err)
		}
		var s Spec
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("dataset: parsing spec %s: %w", e.Name(), err)
		}
		r.specs[s.ID()] = s
	}
	return r, nil
}

// Put registers spec and returns its ID. Registering an equal spec
// twice is a no-op returning the same ID.
func (r *Registry) Put(spec Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	id := spec.ID()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[id]; ok {
		return id, nil
	}
	r.specs[id] = spec
	if r.dir != "" {
		b, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(r.dir, id+".json"), b, 0o644); err != nil {
			return "", fmt.Errorf("dataset: persisting spec %s: %w", id, err)
		}
	}
	return id, nil
}

// Spec returns the registered spec for id.
func (r *Registry) Spec(id string) (Spec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[id]
	if !ok {
		return Spec{}, fmt.Errorf("dataset: unknown dataset %q", id)
	}
	return s, nil
}

// Materialize returns the dataset for id, generating it on first use
// and serving the cached copy afterwards.
func (r *Registry) Materialize(id string) (*Dataset, error) {
	r.mu.RLock()
	if d, ok := r.cache[id]; ok {
		r.mu.RUnlock()
		return d, nil
	}
	spec, ok := r.specs[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dataset: unknown dataset %q", id)
	}
	d, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[id] = d
	r.mu.Unlock()
	return d, nil
}

// IDs returns all registered dataset IDs in sorted order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.specs))
	for id := range r.specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.specs)
}

// DropCache releases materialized data, keeping the specs.
func (r *Registry) DropCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = map[string]*Dataset{}
}
