package dataset

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func TestRegistryPutGet(t *testing.T) {
	r := NewRegistry()
	spec := batterySpec()
	id, err := r.Put(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id != spec.ID() {
		t.Fatalf("Put returned %q, want %q", id, spec.ID())
	}
	got, err := r.Spec(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("Spec returned %+v, want %+v", got, spec)
	}
}

func TestRegistryPutIdempotent(t *testing.T) {
	r := NewRegistry()
	id1, _ := r.Put(batterySpec())
	id2, _ := r.Put(batterySpec())
	if id1 != id2 {
		t.Fatal("re-registering a spec changed its ID")
	}
	if r.Len() != 1 {
		t.Fatalf("registry has %d specs, want 1", r.Len())
	}
}

func TestRegistryRejectsInvalid(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Put(Spec{Kind: "junk"}); err == nil {
		t.Fatal("invalid spec registered")
	}
}

func TestRegistryUnknownID(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Spec("ds-nope"); err == nil {
		t.Error("unknown spec ID accepted")
	}
	if _, err := r.Materialize("ds-nope"); err == nil {
		t.Error("unknown materialize ID accepted")
	}
}

func TestRegistryMaterializeCaches(t *testing.T) {
	r := NewRegistry()
	id, _ := r.Put(batterySpec())
	a, err := r.Materialize(id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Materialize(id)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Materialize did not return the cached dataset")
	}
	r.DropCache()
	c, err := r.Materialize(id)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("DropCache did not release the cache")
	}
	// Regenerated data must still be identical.
	ax, _ := a.Sample(0)
	cx, _ := c.Sample(0)
	if !ax.Equal(cx) {
		t.Fatal("regenerated dataset differs from original")
	}
}

func TestRegistryPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "registry")
	r1, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := batterySpec()
	id, err := r1.Put(spec)
	if err != nil {
		t.Fatal(err)
	}

	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r2.Spec(id)
	if err != nil {
		t.Fatalf("reopened registry lost spec: %v", err)
	}
	if got != spec {
		t.Fatalf("reopened spec %+v, want %+v", got, spec)
	}
}

func TestRegistryIDsSorted(t *testing.T) {
	r := NewRegistry()
	for cell := 0; cell < 5; cell++ {
		s := batterySpec()
		s.CellID = cell
		if _, err := r.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	ids := r.IDs()
	if len(ids) != 5 {
		t.Fatalf("IDs returned %d entries, want 5", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	// The registry backs concurrent recoveries (multiple analysts, the
	// HTTP server); Put and Materialize must be race-free and agree.
	r := NewRegistry()
	specs := make([]Spec, 8)
	for i := range specs {
		s := batterySpec()
		s.CellID = i
		s.Samples = 30
		specs[i] = s
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, s := range specs {
				id, err := r.Put(s)
				if err != nil {
					errs <- err
					return
				}
				d, err := r.Materialize(id)
				if err != nil {
					errs <- err
					return
				}
				if d.Len() != s.Samples {
					errs <- fmt.Errorf("dataset %s has %d samples, want %d", id, d.Len(), s.Samples)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if r.Len() != len(specs) {
		t.Fatalf("registry has %d specs, want %d", r.Len(), len(specs))
	}
}
