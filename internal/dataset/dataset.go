// Package dataset turns simulator output into training datasets and
// manages them in a content-addressed registry.
//
// The paper's Provenance approach assumes "the training data are saved
// regardless of the model management (either by the manufacturer for
// analytical or by the user for backup purposes)" and therefore stores
// only a *reference* per model instead of a data snapshot (optimization
// O2). The Registry models that external data store: every dataset has
// a deterministic ID derived from its generation spec, and recovery
// resolves IDs back to data.
package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"github.com/mmm-go/mmm/internal/battery"
	"github.com/mmm-go/mmm/internal/cifar"
	"github.com/mmm-go/mmm/internal/drivecycle"
	"github.com/mmm-go/mmm/internal/rng"
	"github.com/mmm-go/mmm/internal/tensor"
)

// Kind selects a data generator.
type Kind string

// Supported dataset kinds.
const (
	KindBattery Kind = "battery" // ECM discharge samples for one cell
	KindCIFAR   Kind = "cifar"   // synthetic 32×32×3 images, 10 classes
)

// Spec deterministically describes one dataset. Generating the same
// spec twice yields bit-identical data; the spec's hash is the dataset
// ID that Provenance records.
type Spec struct {
	Kind Kind `json:"kind"`
	// CellID identifies the battery cell (or model index for CIFAR):
	// it perturbs the cell parameters so every model sees its own data.
	CellID int `json:"cell_id"`
	// Cycle is the update-cycle index; 0 is the initial training data.
	// Each cycle uses a fresh drive profile and fresh measurement noise.
	Cycle int `json:"cycle"`
	// SoH is the cell's state of health for this cycle. The paper
	// decrements SoH every update cycle to create aging data drift.
	SoH float64 `json:"soh"`
	// Samples is the number of training samples to produce.
	Samples int `json:"samples"`
	// NoiseStd is the measurement-noise standard deviation added to
	// targets (the paper corrupts data "to prevent models from training
	// with equal data").
	NoiseStd float64 `json:"noise_std"`
	// Seed is the fleet-level root seed.
	Seed uint64 `json:"seed"`
}

// Validate rejects specs the generators cannot honor.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindBattery, KindCIFAR:
	default:
		return fmt.Errorf("dataset: unknown kind %q", s.Kind)
	}
	if s.Samples <= 0 {
		return fmt.Errorf("dataset: samples must be positive, got %d", s.Samples)
	}
	if s.Kind == KindBattery && (s.SoH <= 0 || s.SoH > 1) {
		return fmt.Errorf("dataset: SoH must be in (0, 1], got %v", s.SoH)
	}
	if s.NoiseStd < 0 {
		return fmt.Errorf("dataset: noise std must be non-negative, got %v", s.NoiseStd)
	}
	return nil
}

// ID returns the dataset's content address: a hash of the canonical
// JSON encoding of the spec. Two specs with equal fields share an ID.
func (s Spec) ID() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // Spec has no unmarshalable fields
	}
	sum := sha256.Sum256(b)
	return "ds-" + hex.EncodeToString(sum[:8])
}

// Dataset is in-memory training data implementing nn.Data. Inputs and
// targets are normalized; Stats records the applied normalization.
type Dataset struct {
	Spec  Spec
	X     []*tensor.Tensor
	Y     []*tensor.Tensor
	Stats Stats
}

// Stats holds per-feature z-score normalization parameters.
type Stats struct {
	XMean []float32 `json:"x_mean,omitempty"`
	XStd  []float32 `json:"x_std,omitempty"`
	YMean []float32 `json:"y_mean,omitempty"`
	YStd  []float32 `json:"y_std,omitempty"`
}

// Len implements nn.Data.
func (d *Dataset) Len() int { return len(d.X) }

// Sample implements nn.Data.
func (d *Dataset) Sample(i int) (*tensor.Tensor, *tensor.Tensor) { return d.X[i], d.Y[i] }

// Generate materializes the dataset described by spec.
func Generate(spec Spec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindBattery:
		return generateBattery(spec)
	case KindCIFAR:
		return generateCIFAR(spec)
	}
	panic("unreachable")
}

// generateBattery simulates the cell identified by (Seed, CellID) at
// the spec's SoH over a cycle-specific drive profile and converts the
// trace to normalized (current, temperature, charge, SoC) → voltage
// training samples.
func generateBattery(spec Spec) (*Dataset, error) {
	root := rng.New(spec.Seed)
	// Per-cell electrical parameters: stable across cycles, so a cell's
	// data drift comes from aging and the drive profile, not from the
	// cell itself changing identity.
	cellRand := root.Derive(fmt.Sprintf("cell/%d", spec.CellID))
	params := battery.Default18650().Perturb(0.05, cellRand.Float64)
	cell, err := battery.NewCell(params, spec.SoH)
	if err != nil {
		return nil, err
	}

	// One second per sample; a fresh profile per (cell, cycle).
	dcCfg := drivecycle.DefaultConfig(0)
	dcCfg.DurationS = spec.Samples
	dcCfg.Seed = cellRand.Derive(fmt.Sprintf("cycle/%d", spec.Cycle)).Uint64()
	profile, err := drivecycle.Generate(dcCfg)
	if err != nil {
		return nil, err
	}
	trace := cell.Simulate(profile, 1)

	noise := cellRand.Derive(fmt.Sprintf("noise/%d", spec.Cycle))
	raw := make([][5]float64, len(trace))
	for i, s := range trace {
		raw[i] = [5]float64{
			s.Current, s.TempC, s.ChargeAh, s.SoC,
			s.Voltage + spec.NoiseStd*noise.NormFloat64(),
		}
	}
	return normalizeBattery(spec, raw), nil
}

// normalizeBattery z-scores the four features and the voltage target.
func normalizeBattery(spec Spec, raw [][5]float64) *Dataset {
	const nFeat = 4
	var mean, m2 [5]float64
	for n, row := range raw {
		for j, v := range row {
			d := v - mean[j]
			mean[j] += d / float64(n+1)
			m2[j] += d * (v - mean[j])
		}
	}
	var std [5]float64
	for j := range std {
		std[j] = math.Sqrt(m2[j] / float64(len(raw)))
		if std[j] < 1e-9 {
			std[j] = 1 // constant feature: leave centered at zero
		}
	}

	d := &Dataset{Spec: spec}
	d.Stats.XMean = make([]float32, nFeat)
	d.Stats.XStd = make([]float32, nFeat)
	for j := 0; j < nFeat; j++ {
		d.Stats.XMean[j] = float32(mean[j])
		d.Stats.XStd[j] = float32(std[j])
	}
	d.Stats.YMean = []float32{float32(mean[4])}
	d.Stats.YStd = []float32{float32(std[4])}

	for _, row := range raw {
		x := tensor.New(nFeat)
		for j := 0; j < nFeat; j++ {
			x.Data[j] = float32((row[j] - mean[j]) / std[j])
		}
		y := tensor.New(1)
		y.Data[0] = float32((row[4] - mean[4]) / std[4])
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

// generateCIFAR produces synthetic labeled images. CellID keeps model
// streams apart; Cycle refreshes the noise draw per update cycle.
func generateCIFAR(spec Spec) (*Dataset, error) {
	root := rng.New(spec.Seed).
		Derive(fmt.Sprintf("cifar/%d", spec.CellID)).
		Derive(fmt.Sprintf("cycle/%d", spec.Cycle))
	xs, ys := cifar.Batch(spec.Samples, root)
	return &Dataset{Spec: spec, X: xs, Y: ys}, nil
}
