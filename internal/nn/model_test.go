package nn

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/mmm-go/mmm/internal/tensor"
)

func TestNewModelDeterministic(t *testing.T) {
	a := MustNewModel(FFNN48(), 42)
	b := MustNewModel(FFNN48(), 42)
	if !a.ParamsEqual(b) {
		t.Fatal("same (arch, seed) produced different parameters")
	}
	c := MustNewModel(FFNN48(), 43)
	if a.ParamsEqual(c) {
		t.Fatal("different seeds produced identical parameters")
	}
}

func TestModelParamCountMatchesArch(t *testing.T) {
	for _, arch := range []*Architecture{FFNN48(), FFNN69(), CIFARNet()} {
		m := MustNewModel(arch, 1)
		if m.ParamCount() != arch.ParamCount() {
			t.Errorf("%s: model has %d params, arch says %d", arch.Name, m.ParamCount(), arch.ParamCount())
		}
	}
}

func TestParamDictOrderMatchesArchKeys(t *testing.T) {
	arch := CIFARNet()
	m := MustNewModel(arch, 1)
	keys := arch.ParamKeys()
	params := m.Params()
	if len(keys) != len(params) {
		t.Fatalf("arch has %d keys, model has %d params", len(keys), len(params))
	}
	for i := range keys {
		if params[i].Name != keys[i] {
			t.Errorf("param %d: model key %q, arch key %q", i, params[i].Name, keys[i])
		}
	}
}

func TestParamBytesRoundTrip(t *testing.T) {
	src := MustNewModel(FFNN48(), 7)
	dst := MustNewModel(FFNN48(), 99)
	raw := src.ParamBytes()
	if len(raw) != 4*4993 {
		t.Fatalf("ParamBytes length %d, want %d", len(raw), 4*4993)
	}
	n, err := dst.SetParamBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d bytes, want %d", n, len(raw))
	}
	if !src.ParamsEqual(dst) {
		t.Fatal("param byte round trip lost information")
	}
}

func TestSetParamBytesShortBuffer(t *testing.T) {
	m := MustNewModel(FFNN48(), 1)
	if _, err := m.SetParamBytes(make([]byte, 100)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := MustNewModel(FFNN48(), 5)
	c := m.Clone()
	if !m.ParamsEqual(c) {
		t.Fatal("clone differs from original")
	}
	c.Params()[0].Tensor.Data[0] += 1
	if m.ParamsEqual(c) {
		t.Fatal("clone shares parameter storage with original")
	}
}

func TestForwardShapes(t *testing.T) {
	m := MustNewModel(FFNN48(), 1)
	out := m.Forward(tensor.New(4))
	if out.Len() != 1 {
		t.Fatalf("FFNN-48 output length %d, want 1", out.Len())
	}
	cm := MustNewModel(CIFARNet(), 1)
	out = cm.Forward(tensor.New(3, 32, 32))
	if out.Len() != 10 {
		t.Fatalf("CIFAR output length %d, want 10", out.Len())
	}
}

func TestForwardDeterministic(t *testing.T) {
	m := MustNewModel(FFNN48(), 3)
	x := tensor.FromSlice([]float32{0.5, -0.2, 0.9, 0.1}, 4)
	a := m.Forward(x).Clone()
	b := m.Forward(x)
	if !a.Equal(b) {
		t.Fatal("Forward is not deterministic")
	}
}

func TestLayerParam(t *testing.T) {
	m := MustNewModel(FFNN48(), 1)
	w, err := m.LayerParam("fc2.weight")
	if err != nil {
		t.Fatal(err)
	}
	if w.Shape[0] != 48 || w.Shape[1] != 48 {
		t.Fatalf("fc2.weight shape %v, want [48 48]", w.Shape)
	}
	if _, err := m.LayerParam("nope.weight"); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestNewModelRejectsInvalidArch(t *testing.T) {
	if _, err := NewModel(&Architecture{Name: "bad"}, 1); err == nil {
		t.Fatal("invalid architecture accepted")
	}
}

// Gradient check for the whole FFNN model against finite differences.
func TestModelGradientNumerical(t *testing.T) {
	arch := FFNN("grad-test", 3, []int{5}, 2)
	m := MustNewModel(arch, 11)
	x := tensor.FromSlice([]float32{0.3, -0.7, 0.2}, 3)
	y := tensor.FromSlice([]float32{1, -1}, 2)
	loss := MSE{}

	m.ZeroGrad()
	_, grad := loss.Eval(m.Forward(x), y)
	m.Backward(grad)
	analytic := m.Grads()

	const eps = 1e-3
	const tol = 1e-2
	params := m.Params()
	for pi, p := range params {
		for _, i := range []int{0, p.Tensor.Len() - 1} {
			orig := p.Tensor.Data[i]
			p.Tensor.Data[i] = orig + eps
			up, _ := loss.Eval(m.Forward(x), y)
			p.Tensor.Data[i] = orig - eps
			down, _ := loss.Eval(m.Forward(x), y)
			p.Tensor.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			got := float64(analytic[pi].Tensor.Data[i])
			if d := numeric - got; d > tol || d < -tol {
				t.Errorf("%s grad[%d]: numeric %v, analytic %v", p.Name, i, numeric, got)
			}
		}
	}
}

func TestQuickModelSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a := MustNewModel(FFNN48(), seed)
		b := MustNewModel(FFNN48(), seed)
		return bytes.Equal(a.ParamBytes(), b.ParamBytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
