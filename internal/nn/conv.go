package nn

import (
	"math"

	"github.com/mmm-go/mmm/internal/rng"
	"github.com/mmm-go/mmm/internal/tensor"
)

// Conv2D is a stride-1, 'same'-padded 2-D convolution over CHW inputs,
// with kernel (outC, inC, k, k) and per-channel bias.
type Conv2D struct {
	name             string
	K, B             *tensor.Tensor
	gradK, gradB     *tensor.Tensor
	lastIn           *tensor.Tensor
	inC, outC, kSize int
}

// NewConv2D returns a zero-initialized convolution layer.
func NewConv2D(name string, inC, outC, kSize int) *Conv2D {
	return &Conv2D{
		name:  name,
		K:     tensor.New(outC, inC, kSize, kSize),
		B:     tensor.New(outC),
		gradK: tensor.New(outC, inC, kSize, kSize),
		gradB: tensor.New(outC),
		inC:   inC, outC: outC, kSize: kSize,
	}
}

// Init fills the kernel with Glorot-uniform values drawn from r.
func (l *Conv2D) Init(r *rng.RNG) {
	fanIn := l.inC * l.kSize * l.kSize
	fanOut := l.outC * l.kSize * l.kSize
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range l.K.Data {
		l.K.Data[i] = (r.Float32()*2 - 1) * limit
	}
	l.B.Fill(0)
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.name }

// Forward implements Layer for a CHW input.
func (l *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.lastIn = x
	return tensor.Conv2DSame(x, l.K, l.B)
}

// Backward implements Layer.
func (l *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gradX, gradK, gradB := tensor.Conv2DSameBackward(l.lastIn, l.K, grad)
	l.gradK.AddInPlace(gradK)
	l.gradB.AddInPlace(gradB)
	return gradX
}

// Params implements Layer.
func (l *Conv2D) Params() []Param {
	return []Param{
		{Name: l.name + ".weight", Tensor: l.K},
		{Name: l.name + ".bias", Tensor: l.B},
	}
}

// Grads implements Layer.
func (l *Conv2D) Grads() []Param {
	return []Param{
		{Name: l.name + ".weight", Tensor: l.gradK},
		{Name: l.name + ".bias", Tensor: l.gradB},
	}
}

// ZeroGrad implements Layer.
func (l *Conv2D) ZeroGrad() {
	l.gradK.Fill(0)
	l.gradB.Fill(0)
}

// MaxPool2 is a parameter-free 2×2 max-pooling layer with stride 2.
type MaxPool2 struct {
	name      string
	lastShape []int
	lastArg   []int
}

// NewMaxPool2 returns a named 2×2 max-pooling layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{name: name} }

// Name implements Layer.
func (l *MaxPool2) Name() string { return l.name }

// Forward implements Layer.
func (l *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	out, arg := tensor.MaxPool2(x)
	l.lastShape = append(l.lastShape[:0], x.Shape...)
	l.lastArg = arg
	return out
}

// Backward implements Layer.
func (l *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPool2Backward(l.lastShape, l.lastArg, grad)
}

// Params implements Layer.
func (l *MaxPool2) Params() []Param { return nil }

// Grads implements Layer.
func (l *MaxPool2) Grads() []Param { return nil }

// ZeroGrad implements Layer.
func (l *MaxPool2) ZeroGrad() {}
