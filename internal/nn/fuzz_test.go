package nn

import (
	"encoding/json"
	"testing"
)

// FuzzArchitectureJSON ensures stored architecture definitions are
// always either rejected or decode into something Validate accepts and
// a model can be built from.
func FuzzArchitectureJSON(f *testing.F) {
	for _, arch := range []*Architecture{FFNN48(), FFNN69(), CIFARNet()} {
		b, err := json.Marshal(arch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","layers":[{"name":"l","kind":"linear","in":-1,"out":2}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var arch Architecture
		if err := json.Unmarshal(data, &arch); err != nil {
			return
		}
		if err := arch.Validate(); err != nil {
			return
		}
		// A validated architecture must be instantiable, and its model
		// must agree with its own parameter accounting.
		m, err := NewModel(&arch, 1)
		if err != nil {
			t.Fatalf("validated architecture rejected by NewModel: %v", err)
		}
		if m.ParamCount() != arch.ParamCount() {
			t.Fatalf("model has %d params, architecture claims %d", m.ParamCount(), arch.ParamCount())
		}
	})
}

// FuzzSetParamBytes ensures arbitrary parameter buffers either load
// exactly or fail cleanly.
func FuzzSetParamBytes(f *testing.F) {
	arch := FFNN("fuzz", 2, []int{3}, 1)
	m := MustNewModel(arch, 1)
	f.Add(m.ParamBytes())
	f.Add([]byte{})
	f.Add(make([]byte, 10))

	f.Fuzz(func(t *testing.T, data []byte) {
		m := MustNewModel(arch, 2)
		n, err := m.SetParamBytes(data)
		if err != nil {
			return
		}
		if n != 4*m.ParamCount() {
			t.Fatalf("consumed %d bytes, want %d", n, 4*m.ParamCount())
		}
	})
}
