// Package nn is a small, fully deterministic deep-learning framework:
// the substrate the management approaches operate on. It provides the
// paper's model families (fully connected battery models, a small CNN),
// forward/backward passes, and a seeded SGD trainer.
//
// Two properties matter for multi-model management and are guaranteed
// here:
//
//  1. A model's parameters form an *ordered dictionary* of named layer
//     tensors (like PyTorch's state_dict). The Baseline approach saves
//     the keys once and concatenates raw parameter floats; the Update
//     approach hashes and diffs at layer granularity.
//  2. Training is bit-for-bit deterministic given (architecture, seed,
//     data). The Provenance approach depends on this to recover models
//     by re-executing training.
package nn

import "github.com/mmm-go/mmm/internal/tensor"

// Param is a named parameter tensor. Names are hierarchical,
// "layerName.weight" / "layerName.bias", mirroring the parameter
// dictionary keys the paper's approaches deduplicate.
type Param struct {
	Name   string
	Tensor *tensor.Tensor
}

// Layer is one differentiable block of a model.
//
// Layers are stateful across a forward/backward pair: Forward caches
// whatever the backward pass needs, and Backward both returns the
// gradient w.r.t. the layer input and accumulates parameter gradients
// (retrieved via Grads, cleared via ZeroGrad). This single-visitor
// design keeps training loops trivial and allocation-light, at the cost
// of layers not being safe for concurrent use — models are cheap enough
// that each goroutine builds its own.
type Layer interface {
	// Name returns the layer's unique name within its model.
	Name() string
	// Forward computes the layer output for a single sample.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output and
	// returns the gradient w.r.t. the layer input, accumulating
	// parameter gradients as a side effect.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameters in a stable order.
	// Parameter-free layers return nil.
	Params() []Param
	// Grads returns the accumulated gradients, aligned with Params.
	Grads() []Param
	// ZeroGrad clears the accumulated gradients.
	ZeroGrad()
}
