package nn

import (
	"math"

	"github.com/mmm-go/mmm/internal/rng"
	"github.com/mmm-go/mmm/internal/tensor"
)

// Linear is a fully connected layer: y = W·x + b with W of shape
// (out, in) and b of shape (out). Inputs and outputs are 1-D tensors.
type Linear struct {
	name    string
	W, B    *tensor.Tensor
	gradW   *tensor.Tensor
	gradB   *tensor.Tensor
	lastIn  *tensor.Tensor
	inFeat  int
	outFeat int
}

// NewLinear returns a zero-initialized fully connected layer;
// call Init (or Model building, which does) to set weights.
func NewLinear(name string, in, out int) *Linear {
	return &Linear{
		name:    name,
		W:       tensor.New(out, in),
		B:       tensor.New(out),
		gradW:   tensor.New(out, in),
		gradB:   tensor.New(out),
		inFeat:  in,
		outFeat: out,
	}
}

// Init fills W with Glorot-uniform values drawn from r and zeroes b.
// The draw order is fixed (row-major over W), making initialization a
// pure function of the RNG stream.
func (l *Linear) Init(r *rng.RNG) {
	limit := float32(math.Sqrt(6.0 / float64(l.inFeat+l.outFeat)))
	for i := range l.W.Data {
		l.W.Data[i] = (r.Float32()*2 - 1) * limit
	}
	l.B.Fill(0)
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// Forward implements Layer for a 1-D input of length in.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.lastIn = x
	out := tensor.New(l.outFeat)
	for o := 0; o < l.outFeat; o++ {
		row := l.W.Data[o*l.inFeat : (o+1)*l.inFeat]
		s := l.B.Data[o]
		for i, xv := range x.Data {
			s += row[i] * xv
		}
		out.Data[o] = s
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(l.inFeat)
	for o := 0; o < l.outFeat; o++ {
		g := grad.Data[o]
		l.gradB.Data[o] += g
		if g == 0 {
			continue
		}
		row := l.W.Data[o*l.inFeat : (o+1)*l.inFeat]
		gradRow := l.gradW.Data[o*l.inFeat : (o+1)*l.inFeat]
		for i, xv := range l.lastIn.Data {
			gradRow[i] += g * xv
			gradIn.Data[i] += g * row[i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: l.name + ".weight", Tensor: l.W},
		{Name: l.name + ".bias", Tensor: l.B},
	}
}

// Grads implements Layer.
func (l *Linear) Grads() []Param {
	return []Param{
		{Name: l.name + ".weight", Tensor: l.gradW},
		{Name: l.name + ".bias", Tensor: l.gradB},
	}
}

// ZeroGrad implements Layer.
func (l *Linear) ZeroGrad() {
	l.gradW.Fill(0)
	l.gradB.Fill(0)
}
