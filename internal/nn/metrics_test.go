package nn

import (
	"math"
	"testing"

	"github.com/mmm-go/mmm/internal/tensor"
)

// constantModel builds a model whose single linear layer outputs a
// constant (zero weights, fixed bias).
func constantModel(t *testing.T, out []float32) *Model {
	t.Helper()
	m := MustNewModel(FFNN("const", 2, nil, len(out)), 1)
	w, err := m.LayerParam("fc1.weight")
	if err != nil {
		t.Fatal(err)
	}
	w.Fill(0)
	b, err := m.LayerParam("fc1.bias")
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Data, out)
	return m
}

func TestMAEKnown(t *testing.T) {
	m := constantModel(t, []float32{1})
	var d SliceData
	d.X = append(d.X, tensor.New(2), tensor.New(2))
	d.Y = append(d.Y,
		tensor.FromSlice([]float32{0}, 1), // error 1
		tensor.FromSlice([]float32{4}, 1)) // error 3
	got, err := MAE(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("MAE = %v, want 2", got)
	}
}

func TestRMSEKnown(t *testing.T) {
	m := constantModel(t, []float32{1})
	var d SliceData
	d.X = append(d.X, tensor.New(2), tensor.New(2))
	d.Y = append(d.Y,
		tensor.FromSlice([]float32{0}, 1), // sq error 1
		tensor.FromSlice([]float32{4}, 1)) // sq error 9
	got, err := RMSE(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt(5)) > 1e-9 {
		t.Fatalf("RMSE = %v, want sqrt(5)", got)
	}
}

func TestRMSEAtLeastMAE(t *testing.T) {
	// Jensen: RMSE >= MAE always.
	m := MustNewModel(FFNN48(), 3)
	var d SliceData
	for i := 0; i < 20; i++ {
		x := tensor.New(4)
		x.Data[0] = float32(i) / 20
		d.X = append(d.X, x)
		d.Y = append(d.Y, tensor.FromSlice([]float32{float32(i % 3)}, 1))
	}
	mae, err := MAE(m, d)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := RMSE(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if rmse < mae-1e-9 {
		t.Fatalf("RMSE %v < MAE %v", rmse, mae)
	}
}

func TestAccuracyKnown(t *testing.T) {
	m := constantModel(t, []float32{0, 1, 0}) // always predicts class 1
	var d SliceData
	for _, class := range []int{1, 1, 0, 2} {
		d.X = append(d.X, tensor.New(2))
		y := tensor.New(3)
		y.Data[class] = 1
		d.Y = append(d.Y, y)
	}
	got, err := Accuracy(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("Accuracy = %v, want 0.5", got)
	}
}

func TestMetricsRejectEmptyData(t *testing.T) {
	m := constantModel(t, []float32{1})
	if _, err := MAE(m, SliceData{}); err == nil {
		t.Error("MAE accepted empty data")
	}
	if _, err := RMSE(m, SliceData{}); err == nil {
		t.Error("RMSE accepted empty data")
	}
	if _, err := Accuracy(m, SliceData{}); err == nil {
		t.Error("Accuracy accepted empty data")
	}
}
