package nn

import (
	"math"
	"testing"

	"github.com/mmm-go/mmm/internal/rng"
	"github.com/mmm-go/mmm/internal/tensor"
)

// xorData is a tiny nonlinear regression problem the FFNN must be able
// to fit, proving forward/backward/update are wired correctly.
func xorData() SliceData {
	var d SliceData
	for _, c := range [][3]float32{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
	} {
		d.X = append(d.X, tensor.FromSlice([]float32{c[0], c[1]}, 2))
		d.Y = append(d.Y, tensor.FromSlice([]float32{c[2]}, 1))
	}
	return d
}

func TestTrainLearnsXOR(t *testing.T) {
	arch := FFNN("xor", 2, []int{8}, 1)
	m := MustNewModel(arch, 42)
	data := xorData()
	before, err := Evaluate(m, data, "mse")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Train(m, data, TrainConfig{
		Epochs: 2000, BatchSize: 4, LearningRate: 0.5, Seed: 1, Loss: "mse",
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(m, data, "mse")
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("training did not reduce loss: %v -> %v", before, after)
	}
	if after > 0.01 {
		t.Fatalf("XOR not learned, final MSE = %v", after)
	}
}

func TestTrainDeterministic(t *testing.T) {
	// The provenance guarantee: equal (arch seed, data, config) gives
	// bit-identical parameters.
	data := xorData()
	cfg := TrainConfig{Epochs: 50, BatchSize: 2, LearningRate: 0.1, Seed: 9, Loss: "mse"}
	run := func() []byte {
		m := MustNewModel(FFNN("xor", 2, []int{8}, 1), 42)
		if _, err := Train(m, data, cfg); err != nil {
			t.Fatal(err)
		}
		return m.ParamBytes()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs produced different parameter sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training is not bit-deterministic: byte %d differs", i)
		}
	}
}

func TestTrainSeedChangesResult(t *testing.T) {
	data := xorData()
	run := func(seed uint64) []byte {
		m := MustNewModel(FFNN("xor", 2, []int{8}, 1), 42)
		cfg := TrainConfig{Epochs: 20, BatchSize: 1, LearningRate: 0.1, Seed: seed, Loss: "mse"}
		if _, err := Train(m, data, cfg); err != nil {
			t.Fatal(err)
		}
		return m.ParamBytes()
	}
	a, b := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different shuffle seeds produced identical parameters")
	}
}

func TestPartialUpdateOnlyChangesSelectedLayers(t *testing.T) {
	// The paper's partial update: retrain single layers; only their
	// parameters may change.
	m := MustNewModel(FFNN48(), 7)
	before := map[string][]float32{}
	for _, p := range m.Params() {
		before[p.Name] = append([]float32(nil), p.Tensor.Data...)
	}

	r := rng.New(3)
	var data SliceData
	for i := 0; i < 32; i++ {
		x := tensor.New(4)
		for j := range x.Data {
			x.Data[j] = float32(r.NormFloat64())
		}
		data.X = append(data.X, x)
		data.Y = append(data.Y, tensor.FromSlice([]float32{float32(r.NormFloat64())}, 1))
	}

	cfg := TrainConfig{
		Epochs: 3, BatchSize: 8, LearningRate: 0.05, Seed: 4, Loss: "mse",
		TrainLayers: []string{"fc4"},
	}
	if _, err := Train(m, data, cfg); err != nil {
		t.Fatal(err)
	}

	for _, p := range m.Params() {
		changed := false
		for i, v := range p.Tensor.Data {
			if v != before[p.Name][i] {
				changed = true
				break
			}
		}
		isTarget := p.Name == "fc4.weight" || p.Name == "fc4.bias"
		if isTarget && !changed {
			t.Errorf("%s should have changed in partial update", p.Name)
		}
		if !isTarget && changed {
			t.Errorf("%s changed although frozen", p.Name)
		}
	}
}

func TestTrainConfigValidate(t *testing.T) {
	good := TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: "mse"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []TrainConfig{
		{Epochs: 0, BatchSize: 1, LearningRate: 0.1, Loss: "mse"},
		{Epochs: 1, BatchSize: 0, LearningRate: 0.1, Loss: "mse"},
		{Epochs: 1, BatchSize: 1, LearningRate: 0, Loss: "mse"},
		{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: "hinge"},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	m := MustNewModel(FFNN("t", 2, []int{2}, 1), 1)
	cfg := TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: "mse"}
	if _, err := Train(m, SliceData{}, cfg); err == nil {
		t.Error("empty data accepted")
	}
	cfg.TrainLayers = []string{"does-not-exist"}
	if _, err := Train(m, xorDataDim2(), cfg); err == nil {
		t.Error("nonexistent train layer accepted")
	}
}

func xorDataDim2() SliceData {
	var d SliceData
	d.X = append(d.X, tensor.New(2))
	d.Y = append(d.Y, tensor.New(1))
	return d
}

func TestEvaluate(t *testing.T) {
	m := MustNewModel(FFNN("t", 1, []int{2}, 1), 1)
	var d SliceData
	d.X = append(d.X, tensor.FromSlice([]float32{1}, 1))
	d.Y = append(d.Y, m.Forward(d.X[0]).Clone())
	loss, err := Evaluate(m, d, "mse")
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 {
		t.Fatalf("self-consistent target gives loss %v, want 0", loss)
	}
	if _, err := Evaluate(m, SliceData{}, "mse"); err == nil {
		t.Error("empty evaluation data accepted")
	}
}

func TestCIFARNetTrainStep(t *testing.T) {
	// One training step on the CNN must run and reduce loss on a
	// memorization task.
	m := MustNewModel(CIFARNet(), 1)
	r := rng.New(5)
	var d SliceData
	for i := 0; i < 4; i++ {
		x := tensor.New(3, 32, 32)
		for j := range x.Data {
			x.Data[j] = float32(r.NormFloat64()) * 0.5
		}
		y := tensor.New(10)
		y.Data[i%10] = 1
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	before, _ := Evaluate(m, d, "cross_entropy")
	_, err := Train(m, d, TrainConfig{
		Epochs: 30, BatchSize: 4, LearningRate: 0.05, Seed: 2, Loss: "cross_entropy",
	})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := Evaluate(m, d, "cross_entropy")
	if !(after < before) {
		t.Fatalf("CNN training did not reduce loss: %v -> %v", before, after)
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSE{}.Eval(pred, target)
	if math.Abs(loss-2.5) > 1e-6 { // (1+4)/2
		t.Errorf("MSE loss = %v, want 2.5", loss)
	}
	if grad.Data[0] != 1 || grad.Data[1] != 2 { // 2*d/n
		t.Errorf("MSE grad = %v, want [1 2]", grad.Data)
	}
}

func TestCrossEntropyLoss(t *testing.T) {
	pred := tensor.FromSlice([]float32{0, 0, 0}, 3) // uniform softmax
	target := tensor.FromSlice([]float32{1, 0, 0}, 3)
	loss, grad := CrossEntropy{}.Eval(pred, target)
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Errorf("CE loss = %v, want ln(3) = %v", loss, math.Log(3))
	}
	// grad = softmax - target = [1/3-1, 1/3, 1/3]
	if math.Abs(float64(grad.Data[0])+2.0/3.0) > 1e-6 {
		t.Errorf("CE grad[0] = %v, want -2/3", grad.Data[0])
	}
}

func TestCrossEntropyNumericallyStable(t *testing.T) {
	pred := tensor.FromSlice([]float32{1000, -1000}, 2)
	target := tensor.FromSlice([]float32{1, 0}, 2)
	loss, grad := CrossEntropy{}.Eval(pred, target)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("CE loss not stable for large logits: %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(float64(g)) {
			t.Fatal("CE grad contains NaN")
		}
	}
}

func BenchmarkFFNN48Forward(b *testing.B) {
	m := MustNewModel(FFNN48(), 1)
	x := tensor.FromSlice([]float32{0.1, 0.2, 0.3, 0.4}, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(x)
	}
}

func BenchmarkFFNN48TrainEpoch(b *testing.B) {
	m := MustNewModel(FFNN48(), 1)
	r := rng.New(1)
	var d SliceData
	for i := 0; i < 64; i++ {
		x := tensor.New(4)
		for j := range x.Data {
			x.Data[j] = float32(r.NormFloat64())
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, tensor.FromSlice([]float32{float32(r.NormFloat64())}, 1))
	}
	cfg := TrainConfig{Epochs: 1, BatchSize: 16, LearningRate: 0.01, Seed: 1, Loss: "mse"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(m, d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
