package nn

import (
	"fmt"
	"math"

	"github.com/mmm-go/mmm/internal/tensor"
)

// Optimizers. The paper's models are trained with "a variation of a
// stochastic gradient descent algorithm"; this file provides the three
// standard variations. All of them are bit-deterministic: state is
// allocated per training run, updated in fixed parameter order, and
// uses only float32 arithmetic plus float64 scalar constants — so a
// provenance record that names the optimizer reproduces training
// exactly.

// OptimizerConfig selects and parameterizes the SGD variant. The zero
// value means plain SGD, so training records written before this field
// existed decode to the behaviour they were trained with.
type OptimizerConfig struct {
	// Name is "sgd" (default when empty), "momentum", or "adam".
	Name string `json:"name,omitempty"`
	// Momentum is the velocity coefficient for "momentum" (typical 0.9).
	Momentum float32 `json:"momentum,omitempty"`
	// Beta1, Beta2, Eps parameterize "adam"; zero values default to
	// 0.9, 0.999, 1e-8.
	Beta1 float32 `json:"beta1,omitempty"`
	Beta2 float32 `json:"beta2,omitempty"`
	Eps   float32 `json:"eps,omitempty"`
}

// Validate rejects unknown optimizers and nonsensical coefficients.
func (c OptimizerConfig) Validate() error {
	switch c.Name {
	case "", "sgd":
	case "momentum":
		if c.Momentum < 0 || c.Momentum >= 1 {
			return fmt.Errorf("nn: momentum must be in [0, 1), got %v", c.Momentum)
		}
	case "adam":
		if c.Beta1 < 0 || c.Beta1 >= 1 || c.Beta2 < 0 || c.Beta2 >= 1 {
			return fmt.Errorf("nn: adam betas must be in [0, 1)")
		}
		if c.Eps < 0 {
			return fmt.Errorf("nn: adam eps must be non-negative")
		}
	default:
		return fmt.Errorf("nn: unknown optimizer %q", c.Name)
	}
	return nil
}

// optimizer applies one batch update. grads are accumulated (not
// averaged) over the batch; implementations divide by batchSize.
type optimizer interface {
	step(lr float32, batchSize int)
}

// newOptimizer builds the optimizer state for the trainable parameters.
func newOptimizer(cfg OptimizerConfig, params []trainableParam) (optimizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Name {
	case "", "sgd":
		return &sgd{params: params}, nil
	case "momentum":
		o := &momentum{params: params, mu: cfg.Momentum}
		for _, p := range params {
			o.velocity = append(o.velocity, tensor.New(p.param.Shape...))
		}
		return o, nil
	case "adam":
		o := &adam{
			params: params,
			beta1:  defaultF32(cfg.Beta1, 0.9),
			beta2:  defaultF32(cfg.Beta2, 0.999),
			eps:    defaultF32(cfg.Eps, 1e-8),
		}
		for _, p := range params {
			o.m = append(o.m, tensor.New(p.param.Shape...))
			o.v = append(o.v, tensor.New(p.param.Shape...))
		}
		return o, nil
	}
	panic("unreachable")
}

func defaultF32(v, def float32) float32 {
	if v == 0 {
		return def
	}
	return v
}

// sgd is plain stochastic gradient descent.
type sgd struct {
	params []trainableParam
}

func (o *sgd) step(lr float32, batchSize int) {
	scale := -lr / float32(batchSize)
	for _, p := range o.params {
		p.param.AXPYInPlace(scale, p.grad)
	}
}

// momentum is SGD with classical (heavy-ball) momentum.
type momentum struct {
	params   []trainableParam
	velocity []*tensor.Tensor
	mu       float32
}

func (o *momentum) step(lr float32, batchSize int) {
	inv := 1 / float32(batchSize)
	for i, p := range o.params {
		v := o.velocity[i]
		for j := range v.Data {
			v.Data[j] = o.mu*v.Data[j] + p.grad.Data[j]*inv
			p.param.Data[j] -= lr * v.Data[j]
		}
	}
}

// adam is the Adam optimizer (Kingma & Ba 2015) with bias correction.
type adam struct {
	params       []trainableParam
	m, v         []*tensor.Tensor
	beta1, beta2 float32
	eps          float32
	t            int
}

func (o *adam) step(lr float32, batchSize int) {
	o.t++
	inv := 1 / float32(batchSize)
	c1 := 1 - float32(math.Pow(float64(o.beta1), float64(o.t)))
	c2 := 1 - float32(math.Pow(float64(o.beta2), float64(o.t)))
	for i, p := range o.params {
		m, v := o.m[i], o.v[i]
		for j := range m.Data {
			g := p.grad.Data[j] * inv
			m.Data[j] = o.beta1*m.Data[j] + (1-o.beta1)*g
			v.Data[j] = o.beta2*v.Data[j] + (1-o.beta2)*g*g
			mhat := m.Data[j] / c1
			vhat := v.Data[j] / c2
			p.param.Data[j] -= lr * mhat / (float32(math.Sqrt(float64(vhat))) + o.eps)
		}
	}
}
