package nn

import (
	"fmt"
	"math"

	"github.com/mmm-go/mmm/internal/tensor"
)

// Loss computes a scalar loss and its gradient w.r.t. the prediction.
type Loss interface {
	// Eval returns the loss value and d(loss)/d(pred).
	Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor)
	// Name identifies the loss in provenance records.
	Name() string
}

// MSE is mean squared error over the prediction vector — the regression
// loss for battery voltage prediction.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Eval implements Loss.
func (MSE) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if pred.Len() != target.Len() {
		panic(fmt.Sprintf("nn: MSE length mismatch %d vs %d", pred.Len(), target.Len()))
	}
	n := float64(pred.Len())
	grad := tensor.New(pred.Shape...)
	var loss float64
	for i := range pred.Data {
		d := float64(pred.Data[i]) - float64(target.Data[i])
		loss += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return loss / n, grad
}

// CrossEntropy is softmax cross-entropy for classification; the target
// is a one-hot vector (or any distribution over classes).
type CrossEntropy struct{}

// Name implements Loss.
func (CrossEntropy) Name() string { return "cross_entropy" }

// Eval implements Loss.
func (CrossEntropy) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if pred.Len() != target.Len() {
		panic(fmt.Sprintf("nn: CrossEntropy length mismatch %d vs %d", pred.Len(), target.Len()))
	}
	// Numerically stable softmax.
	maxLogit := pred.Data[0]
	for _, v := range pred.Data {
		if v > maxLogit {
			maxLogit = v
		}
	}
	var sum float64
	exps := make([]float64, pred.Len())
	for i, v := range pred.Data {
		exps[i] = math.Exp(float64(v - maxLogit))
		sum += exps[i]
	}
	grad := tensor.New(pred.Shape...)
	var loss float64
	for i := range pred.Data {
		p := exps[i] / sum
		t := float64(target.Data[i])
		if t > 0 {
			loss -= t * math.Log(math.Max(p, 1e-12))
		}
		grad.Data[i] = float32(p - t)
	}
	return loss, grad
}

// LossByName returns the loss implementation for a provenance record.
func LossByName(name string) (Loss, error) {
	switch name {
	case "mse":
		return MSE{}, nil
	case "cross_entropy":
		return CrossEntropy{}, nil
	}
	return nil, fmt.Errorf("nn: unknown loss %q", name)
}
