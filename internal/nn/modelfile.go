package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Single-model file format. Model sets live in the management stores,
// but an individual recovered model often leaves the system — shipped
// to a device, handed to an analysis notebook. SaveModel/LoadModel
// define a small self-contained container for that:
//
//	magic   "MMM1"                        4 bytes
//	archLen uint32 little-endian          4 bytes
//	arch    JSON architecture             archLen bytes
//	params  raw little-endian float32     4·ParamCount bytes
//
// The format is self-describing (the architecture travels along) and
// byte-deterministic for a given model.

// modelFileMagic identifies the single-model container format.
var modelFileMagic = [4]byte{'M', 'M', 'M', '1'}

// SaveModel writes m as a self-contained model file to w.
func SaveModel(m *Model, w io.Writer) error {
	archJSON, err := json.Marshal(m.Arch)
	if err != nil {
		return fmt.Errorf("nn: marshaling architecture: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(modelFileMagic[:]); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(archJSON)))
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := bw.Write(archJSON); err != nil {
		return err
	}
	if _, err := bw.Write(m.ParamBytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadModel reads a model file written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("nn: reading model file magic: %w", err)
	}
	if !bytes.Equal(magic[:], modelFileMagic[:]) {
		return nil, fmt.Errorf("nn: not a model file (magic %q)", magic)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("nn: reading architecture length: %w", err)
	}
	archLen := binary.LittleEndian.Uint32(lenBuf[:])
	const maxArchJSON = 1 << 20
	if archLen == 0 || archLen > maxArchJSON {
		return nil, fmt.Errorf("nn: implausible architecture length %d", archLen)
	}
	archJSON := make([]byte, archLen)
	if _, err := io.ReadFull(br, archJSON); err != nil {
		return nil, fmt.Errorf("nn: reading architecture: %w", err)
	}
	var arch Architecture
	if err := json.Unmarshal(archJSON, &arch); err != nil {
		return nil, fmt.Errorf("nn: parsing architecture: %w", err)
	}
	if err := arch.Validate(); err != nil {
		return nil, fmt.Errorf("nn: model file architecture invalid: %w", err)
	}
	m, err := NewModelUninitialized(&arch)
	if err != nil {
		return nil, err
	}
	params := make([]byte, arch.ParamBytes())
	if _, err := io.ReadFull(br, params); err != nil {
		return nil, fmt.Errorf("nn: reading parameters: %w", err)
	}
	if _, err := m.SetParamBytes(params); err != nil {
		return nil, err
	}
	// Trailing bytes indicate corruption or a format mismatch.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("nn: trailing bytes after model file")
	}
	return m, nil
}
