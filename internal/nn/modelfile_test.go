package nn

import (
	"bytes"
	"testing"
)

func TestModelFileRoundTrip(t *testing.T) {
	for _, arch := range []*Architecture{FFNN48(), FFNN69(), CIFARNet()} {
		src := MustNewModel(arch, 7)
		var buf bytes.Buffer
		if err := SaveModel(src, &buf); err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		got, err := LoadModel(&buf)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if !src.ParamsEqual(got) {
			t.Fatalf("%s: model file round trip lost parameters", arch.Name)
		}
		if got.Arch.Name != arch.Name {
			t.Fatalf("%s: architecture name became %q", arch.Name, got.Arch.Name)
		}
	}
}

func TestModelFileDeterministic(t *testing.T) {
	m := MustNewModel(FFNN48(), 3)
	var a, b bytes.Buffer
	if err := SaveModel(m, &a); err != nil {
		t.Fatal(err)
	}
	if err := SaveModel(m, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same model differ byte-wise")
	}
}

func TestLoadModelRejectsCorruption(t *testing.T) {
	m := MustNewModel(FFNN48(), 3)
	var buf bytes.Buffer
	if err := SaveModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("XXXX"), good[4:]...),
		"truncated":      good[:len(good)-10],
		"trailing bytes": append(append([]byte{}, good...), 1, 2, 3),
		"huge arch len":  append([]byte("MMM1\xff\xff\xff\xff"), good[8:]...),
	}
	for name, data := range cases {
		if _, err := LoadModel(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func FuzzLoadModel(f *testing.F) {
	m := MustNewModel(FFNN("fuzz", 2, []int{3}, 1), 1)
	var buf bytes.Buffer
	if err := SaveModel(m, &buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MMM1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must re-save to the same bytes.
		var out bytes.Buffer
		if err := SaveModel(got, &out); err != nil {
			t.Fatalf("accepted model cannot be re-saved: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("accepted model file does not round-trip byte-wise")
		}
	})
}
