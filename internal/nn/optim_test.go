package nn

import (
	"bytes"
	"testing"
)

func trainXORWith(t *testing.T, opt OptimizerConfig, epochs int, lr float32) (float64, []byte) {
	t.Helper()
	m := MustNewModel(FFNN("xor", 2, []int{8}, 1), 42)
	data := xorData()
	cfg := TrainConfig{
		Epochs: epochs, BatchSize: 4, LearningRate: lr, Seed: 1, Loss: "mse",
		Optimizer: opt,
	}
	if _, err := Train(m, data, cfg); err != nil {
		t.Fatal(err)
	}
	loss, err := Evaluate(m, data, "mse")
	if err != nil {
		t.Fatal(err)
	}
	return loss, m.ParamBytes()
}

func TestMomentumLearnsXOR(t *testing.T) {
	loss, _ := trainXORWith(t, OptimizerConfig{Name: "momentum", Momentum: 0.9}, 800, 0.2)
	if loss > 0.01 {
		t.Fatalf("momentum did not learn XOR: MSE %v", loss)
	}
}

func TestAdamLearnsXOR(t *testing.T) {
	loss, _ := trainXORWith(t, OptimizerConfig{Name: "adam"}, 500, 0.02)
	if loss > 0.01 {
		t.Fatalf("adam did not learn XOR: MSE %v", loss)
	}
}

func TestOptimizersAreDeterministic(t *testing.T) {
	for _, opt := range []OptimizerConfig{
		{}, // plain SGD
		{Name: "momentum", Momentum: 0.9},
		{Name: "adam"},
	} {
		_, a := trainXORWith(t, opt, 50, 0.1)
		_, b := trainXORWith(t, opt, 50, 0.1)
		if !bytes.Equal(a, b) {
			t.Fatalf("optimizer %q is not bit-deterministic", opt.Name)
		}
	}
}

func TestOptimizersDiffer(t *testing.T) {
	_, sgdBytes := trainXORWith(t, OptimizerConfig{}, 50, 0.1)
	_, momBytes := trainXORWith(t, OptimizerConfig{Name: "momentum", Momentum: 0.9}, 50, 0.1)
	_, adamBytes := trainXORWith(t, OptimizerConfig{Name: "adam"}, 50, 0.1)
	if bytes.Equal(sgdBytes, momBytes) {
		t.Error("momentum produced the same parameters as plain SGD")
	}
	if bytes.Equal(sgdBytes, adamBytes) {
		t.Error("adam produced the same parameters as plain SGD")
	}
}

func TestEmptyOptimizerNameIsSGD(t *testing.T) {
	// Back-compat: zero-value optimizer config must behave exactly like
	// explicit "sgd" (old provenance records have no optimizer field).
	_, implicit := trainXORWith(t, OptimizerConfig{}, 50, 0.1)
	_, explicit := trainXORWith(t, OptimizerConfig{Name: "sgd"}, 50, 0.1)
	if !bytes.Equal(implicit, explicit) {
		t.Fatal("empty optimizer name does not match explicit sgd")
	}
}

func TestOptimizerConfigValidate(t *testing.T) {
	good := []OptimizerConfig{
		{},
		{Name: "sgd"},
		{Name: "momentum", Momentum: 0.9},
		{Name: "adam"},
		{Name: "adam", Beta1: 0.8, Beta2: 0.99, Eps: 1e-7},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []OptimizerConfig{
		{Name: "rmsprop"},
		{Name: "momentum", Momentum: 1.0},
		{Name: "momentum", Momentum: -0.1},
		{Name: "adam", Beta1: 1.0},
		{Name: "adam", Beta2: -0.5},
		{Name: "adam", Eps: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTrainConfigValidatesOptimizer(t *testing.T) {
	cfg := TrainConfig{
		Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: "mse",
		Optimizer: OptimizerConfig{Name: "quantum"},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("train config with unknown optimizer accepted")
	}
}

func TestAdamDefaults(t *testing.T) {
	// Zero betas/eps must resolve to the canonical defaults rather than
	// degenerate zero coefficients.
	m := MustNewModel(FFNN("t", 2, []int{2}, 1), 1)
	params := trainableParams(m, nil)
	o, err := newOptimizer(OptimizerConfig{Name: "adam"}, params)
	if err != nil {
		t.Fatal(err)
	}
	a := o.(*adam)
	if a.beta1 != 0.9 || a.beta2 != 0.999 {
		t.Fatalf("adam defaults = %v/%v, want 0.9/0.999", a.beta1, a.beta2)
	}
	if a.eps <= 0 {
		t.Fatal("adam eps not defaulted")
	}
}
