package nn

import (
	"encoding/json"
	"fmt"
)

// LayerKind enumerates the layer types an Architecture can describe.
type LayerKind string

// Supported layer kinds.
const (
	KindLinear   LayerKind = "linear"
	KindReLU     LayerKind = "relu"
	KindTanh     LayerKind = "tanh"
	KindConv2D   LayerKind = "conv2d"
	KindMaxPool2 LayerKind = "maxpool2"
	KindFlatten  LayerKind = "flatten"
)

// LayerSpec declares one layer of an architecture. Only the fields
// relevant for the Kind are set; the rest stay zero and are omitted
// from JSON.
type LayerSpec struct {
	Name string    `json:"name"`
	Kind LayerKind `json:"kind"`
	// Linear:
	In  int `json:"in,omitempty"`
	Out int `json:"out,omitempty"`
	// Conv2D:
	InChannels  int `json:"in_channels,omitempty"`
	OutChannels int `json:"out_channels,omitempty"`
	Kernel      int `json:"kernel,omitempty"`
}

// Architecture is the computational structure shared by all models in a
// set. It is immutable after construction and JSON-serializable: the
// Baseline approach stores it exactly once per model set.
type Architecture struct {
	Name   string      `json:"name"`
	Input  []int       `json:"input"` // input tensor shape, e.g. [4] or [3,32,32]
	Layers []LayerSpec `json:"layers"`
}

// ParamCount returns the total number of trainable parameters.
func (a *Architecture) ParamCount() int {
	n := 0
	for _, l := range a.Layers {
		switch l.Kind {
		case KindLinear:
			n += l.In*l.Out + l.Out
		case KindConv2D:
			n += l.InChannels*l.OutChannels*l.Kernel*l.Kernel + l.OutChannels
		}
	}
	return n
}

// ParamBytes returns the number of bytes the parameters occupy as raw
// 4-byte floats — the unit of the paper's storage accounting.
func (a *Architecture) ParamBytes() int { return 4 * a.ParamCount() }

// ParamKeys returns the ordered parameter dictionary keys
// ("layer.weight", "layer.bias", ...). MMlib-base persists these per
// model; Baseline persists them once via the architecture.
func (a *Architecture) ParamKeys() []string {
	var keys []string
	for _, l := range a.Layers {
		switch l.Kind {
		case KindLinear, KindConv2D:
			keys = append(keys, l.Name+".weight", l.Name+".bias")
		}
	}
	return keys
}

// MarshalJSON is the wire format for saved architectures.
func (a *Architecture) MarshalJSON() ([]byte, error) {
	type plain Architecture
	return json.Marshal((*plain)(a))
}

// UnmarshalJSON parses a saved architecture.
func (a *Architecture) UnmarshalJSON(b []byte) error {
	type plain Architecture
	return json.Unmarshal(b, (*plain)(a))
}

// Validate checks structural consistency: unique layer names, known
// kinds, and positive dimensions on parameterized layers.
func (a *Architecture) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("nn: architecture has no name")
	}
	if len(a.Layers) == 0 {
		return fmt.Errorf("nn: architecture %q has no layers", a.Name)
	}
	seen := make(map[string]bool, len(a.Layers))
	for i, l := range a.Layers {
		if l.Name == "" {
			return fmt.Errorf("nn: architecture %q: layer %d has no name", a.Name, i)
		}
		if seen[l.Name] {
			return fmt.Errorf("nn: architecture %q: duplicate layer name %q", a.Name, l.Name)
		}
		seen[l.Name] = true
		switch l.Kind {
		case KindLinear:
			if l.In <= 0 || l.Out <= 0 {
				return fmt.Errorf("nn: layer %q: linear dimensions must be positive", l.Name)
			}
		case KindConv2D:
			if l.InChannels <= 0 || l.OutChannels <= 0 || l.Kernel <= 0 {
				return fmt.Errorf("nn: layer %q: conv dimensions must be positive", l.Name)
			}
		case KindReLU, KindTanh, KindMaxPool2, KindFlatten:
			// parameter-free, nothing to check
		default:
			return fmt.Errorf("nn: layer %q: unknown kind %q", l.Name, l.Kind)
		}
	}
	return nil
}

// FFNN returns a fully connected architecture with tanh activations
// between layers: inputs -> hidden[0] -> ... -> hidden[k-1] -> outputs.
func FFNN(name string, inputs int, hidden []int, outputs int) *Architecture {
	a := &Architecture{Name: name, Input: []int{inputs}}
	prev := inputs
	for i, h := range hidden {
		a.Layers = append(a.Layers,
			LayerSpec{Name: fmt.Sprintf("fc%d", i+1), Kind: KindLinear, In: prev, Out: h},
			LayerSpec{Name: fmt.Sprintf("act%d", i+1), Kind: KindTanh},
		)
		prev = h
	}
	a.Layers = append(a.Layers, LayerSpec{
		Name: fmt.Sprintf("fc%d", len(hidden)+1), Kind: KindLinear, In: prev, Out: outputs,
	})
	return a
}

// FFNN48 is the paper's default battery-cell model: one of the
// best-performing architectures from the Volkswagen study by Heinrich
// et al. — four fully connected layers, 4,993 parameters. Inputs are
// (current, temperature, charge, state-of-charge); output is voltage.
func FFNN48() *Architecture {
	return FFNN("FFNN-48", 4, []int{48, 48, 48}, 1)
}

// FFNN69 is the paper's larger battery model variant: identical to
// FFNN-48 except for the number of units per layer, 10,075 parameters.
func FFNN69() *Architecture {
	return FFNN("FFNN-69", 4, []int{69, 69, 69}, 1)
}

// CIFARNet is the paper's image-classification model: a convolutional
// network for 32×32×3 CIFAR-10 images with 6,882 parameters
// (conv 3→15 5×5 'same', maxpool, conv 15→9 5×5 'same', maxpool,
// fc 576→4, fc 4→10).
func CIFARNet() *Architecture {
	return &Architecture{
		Name:  "CIFAR",
		Input: []int{3, 32, 32},
		Layers: []LayerSpec{
			{Name: "conv1", Kind: KindConv2D, InChannels: 3, OutChannels: 15, Kernel: 5},
			{Name: "act1", Kind: KindReLU},
			{Name: "pool1", Kind: KindMaxPool2},
			{Name: "conv2", Kind: KindConv2D, InChannels: 15, OutChannels: 9, Kernel: 5},
			{Name: "act2", Kind: KindReLU},
			{Name: "pool2", Kind: KindMaxPool2},
			{Name: "flat", Kind: KindFlatten},
			{Name: "fc1", Kind: KindLinear, In: 9 * 8 * 8, Out: 4},
			{Name: "act3", Kind: KindReLU},
			{Name: "fc2", Kind: KindLinear, In: 4, Out: 10},
		},
	}
}

// ByName returns one of the three paper architectures by its name.
func ByName(name string) (*Architecture, error) {
	switch name {
	case "FFNN-48":
		return FFNN48(), nil
	case "FFNN-69":
		return FFNN69(), nil
	case "CIFAR":
		return CIFARNet(), nil
	}
	return nil, fmt.Errorf("nn: unknown architecture %q", name)
}
