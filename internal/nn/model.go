package nn

import (
	"fmt"

	"github.com/mmm-go/mmm/internal/rng"
	"github.com/mmm-go/mmm/internal/tensor"
)

// Model is an instantiated architecture: the layers plus their
// parameter tensors. All models built from the same Architecture have
// identical structure and parameter dictionary keys, differing only in
// parameter values — the invariant multi-model management exploits.
type Model struct {
	Arch   *Architecture
	Layers []Layer
}

// NewModel instantiates arch with parameters initialized from the
// deterministic stream seeded by seed. Two calls with equal (arch,
// seed) produce bit-identical models.
func NewModel(arch *Architecture, seed uint64) (*Model, error) {
	m, err := NewModelUninitialized(arch)
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	for _, l := range m.Layers {
		// Derive a per-layer stream so initialization is independent of
		// layer order and other layers' sizes.
		switch layer := l.(type) {
		case *Linear:
			layer.Init(root.Derive("init/" + layer.Name()))
		case *Conv2D:
			layer.Init(root.Derive("init/" + layer.Name()))
		}
	}
	return m, nil
}

// NewModelUninitialized instantiates arch with zeroed parameters. Use
// it when the parameters will be overwritten immediately (recovery,
// cloning); it skips the random-initialization cost, which dominates
// when rebuilding thousands of models from a parameter file.
func NewModelUninitialized(arch *Architecture) (*Model, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Arch: arch}
	for _, spec := range arch.Layers {
		switch spec.Kind {
		case KindLinear:
			m.Layers = append(m.Layers, NewLinear(spec.Name, spec.In, spec.Out))
		case KindConv2D:
			m.Layers = append(m.Layers, NewConv2D(spec.Name, spec.InChannels, spec.OutChannels, spec.Kernel))
		case KindReLU:
			m.Layers = append(m.Layers, NewReLU(spec.Name))
		case KindTanh:
			m.Layers = append(m.Layers, NewTanh(spec.Name))
		case KindMaxPool2:
			m.Layers = append(m.Layers, NewMaxPool2(spec.Name))
		case KindFlatten:
			m.Layers = append(m.Layers, NewFlatten(spec.Name))
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q", spec.Kind)
		}
	}
	return m, nil
}

// MustNewModel is NewModel for statically known-good architectures.
func MustNewModel(arch *Architecture, seed uint64) *Model {
	m, err := NewModel(arch, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Forward runs a single sample through all layers.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the output gradient through all layers,
// accumulating parameter gradients.
func (m *Model) Backward(grad *tensor.Tensor) {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
}

// ZeroGrad clears all accumulated parameter gradients.
func (m *Model) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns all parameters in a stable order (layer order, then
// weight before bias) — the model's ordered parameter dictionary.
func (m *Model) Params() []Param {
	var ps []Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns all parameter gradients, aligned with Params.
func (m *Model) Grads() []Param {
	var gs []Param
	for _, l := range m.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// ParamCount returns the total number of trainable parameters.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Tensor.Len()
	}
	return n
}

// AppendParamBytes appends every parameter tensor's raw little-endian
// float32 bytes, in dictionary order, to dst — the exact layout the
// Baseline approach concatenates across models.
func (m *Model) AppendParamBytes(dst []byte) []byte {
	for _, p := range m.Params() {
		dst = p.Tensor.AppendBytes(dst)
	}
	return dst
}

// ParamBytes returns the concatenated raw parameter bytes.
func (m *Model) ParamBytes() []byte {
	return m.AppendParamBytes(make([]byte, 0, 4*m.ParamCount()))
}

// SetParamBytes fills all parameters from concatenated raw bytes and
// returns the number of bytes consumed.
func (m *Model) SetParamBytes(b []byte) (int, error) {
	total := 0
	for _, p := range m.Params() {
		n, err := p.Tensor.SetFromBytes(b[total:])
		if err != nil {
			return total, fmt.Errorf("nn: loading %s: %w", p.Name, err)
		}
		total += n
	}
	return total, nil
}

// LayerParam returns the parameter tensor with the given dictionary
// key, or an error if the key does not exist.
func (m *Model) LayerParam(key string) (*tensor.Tensor, error) {
	for _, p := range m.Params() {
		if p.Name == key {
			return p.Tensor, nil
		}
	}
	return nil, fmt.Errorf("nn: no parameter %q", key)
}

// Clone returns a deep copy of the model (same architecture object,
// copied parameters). Gradient state is not copied.
func (m *Model) Clone() *Model {
	c, err := NewModelUninitialized(m.Arch)
	if err != nil {
		panic(err) // m was built from this architecture
	}
	if _, err := c.SetParamBytes(m.ParamBytes()); err != nil {
		panic(err) // same architecture, cannot happen
	}
	return c
}

// ParamsEqual reports whether m and o hold bit-identical parameters.
func (m *Model) ParamsEqual(o *Model) bool {
	a, b := m.Params(), o.Params()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !a[i].Tensor.Equal(b[i].Tensor) {
			return false
		}
	}
	return true
}
