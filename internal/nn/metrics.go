package nn

import (
	"fmt"
	"math"
)

// Evaluation metrics beyond the raw loss: the battery use case reports
// voltage errors (MAE/RMSE), the image use case classification
// accuracy.

// MAE returns the mean absolute error of m's predictions over data,
// averaged over samples and output elements.
func MAE(m *Model, data Data) (float64, error) {
	n := data.Len()
	if n == 0 {
		return 0, fmt.Errorf("nn: empty evaluation data")
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		x, y := data.Sample(i)
		pred := m.Forward(x)
		for j := range pred.Data {
			sum += math.Abs(float64(pred.Data[j]) - float64(y.Data[j]))
			count++
		}
	}
	return sum / float64(count), nil
}

// RMSE returns the root-mean-square error of m's predictions over data.
func RMSE(m *Model, data Data) (float64, error) {
	n := data.Len()
	if n == 0 {
		return 0, fmt.Errorf("nn: empty evaluation data")
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		x, y := data.Sample(i)
		pred := m.Forward(x)
		for j := range pred.Data {
			d := float64(pred.Data[j]) - float64(y.Data[j])
			sum += d * d
			count++
		}
	}
	return math.Sqrt(sum / float64(count)), nil
}

// Accuracy returns the fraction of samples whose argmax prediction
// matches the argmax of the (one-hot) target.
func Accuracy(m *Model, data Data) (float64, error) {
	n := data.Len()
	if n == 0 {
		return 0, fmt.Errorf("nn: empty evaluation data")
	}
	correct := 0
	for i := 0; i < n; i++ {
		x, y := data.Sample(i)
		if argmax(m.Forward(x).Data) == argmax(y.Data) {
			correct++
		}
	}
	return float64(correct) / float64(n), nil
}

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
