package nn

import (
	"math"

	"github.com/mmm-go/mmm/internal/tensor"
)

// ReLU applies max(0, x) element-wise. Parameter-free.
type ReLU struct {
	name   string
	lastIn *tensor.Tensor
}

// NewReLU returns a named ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.lastIn = x
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gradIn := grad.Clone()
	for i, v := range l.lastIn.Data {
		if v <= 0 {
			gradIn.Data[i] = 0
		}
	}
	return gradIn
}

// Params implements Layer.
func (l *ReLU) Params() []Param { return nil }

// Grads implements Layer.
func (l *ReLU) Grads() []Param { return nil }

// ZeroGrad implements Layer.
func (l *ReLU) ZeroGrad() {}

// Tanh applies tanh element-wise. Parameter-free. The battery models of
// Heinrich et al. use saturating activations; tanh keeps the voltage
// output smooth.
type Tanh struct {
	name    string
	lastOut *tensor.Tensor
}

// NewTanh returns a named tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (l *Tanh) Name() string { return l.name }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	l.lastOut = out
	return out
}

// Backward implements Layer.
func (l *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gradIn := grad.Clone()
	for i, y := range l.lastOut.Data {
		gradIn.Data[i] *= 1 - y*y
	}
	return gradIn
}

// Params implements Layer.
func (l *Tanh) Params() []Param { return nil }

// Grads implements Layer.
func (l *Tanh) Grads() []Param { return nil }

// ZeroGrad implements Layer.
func (l *Tanh) ZeroGrad() {}

// Flatten reshapes any input to a 1-D tensor. Parameter-free.
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten returns a named flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.name }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.lastShape = append(l.lastShape[:0], x.Shape...)
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(l.lastShape...)
}

// Params implements Layer.
func (l *Flatten) Params() []Param { return nil }

// Grads implements Layer.
func (l *Flatten) Grads() []Param { return nil }

// ZeroGrad implements Layer.
func (l *Flatten) ZeroGrad() {}
